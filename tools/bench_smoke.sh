#!/usr/bin/env bash
# Engine smoke benchmark: wall-clock the --quick fig6 grid under all three
# execution engines (interp, compiled, bytecode), check the printed tables
# are byte-identical, emit one JSONL run record per grid cell, and run the
# engine microbenchmark (tools/bench_engine.ml) for per-engine
# simulated-instruction throughput.
# Emits BENCH_engine.json (plus BENCH_records.jsonl), then runs the
# serving smoke (@serve-smoke section below) which emits BENCH_serve.json
# and gates the cache-hit rate and serve throughput.
#
# Run directly from the repo root after `dune build`, or via the dune
# alias: `dune build @bench-smoke` (kept out of the default test alias —
# the grid takes about a minute).
#
# The seed baseline is the measured wall-clock of this grid on the seed
# commit (sequential tree-walking interpreter, same host); override with
# SEED_WALL_S if re-measured. If a previous $OUT exists, the tracing-off
# compiled wall-clock must stay within MAX_REGRESS (default 1.10, i.e.
# +10%) of its compiled_jobs4_wall_s or the script fails — the
# observability hooks must stay free when off.
set -euo pipefail

OUT=${1:-BENCH_engine.json}
RECORDS=${RECORDS:-BENCH_records.jsonl}
MAX_REGRESS=${MAX_REGRESS:-1.10}
MAIN=${MAIN:-_build/default/bench/main.exe}
MICRO=${MICRO:-_build/default/tools/bench_engine.exe}
# Dune expands same-directory deps to bare names; qualify them so execvp
# does not go looking in PATH.
case $MAIN in */*) ;; *) MAIN=./$MAIN ;; esac
case $MICRO in */*) ;; *) MICRO=./$MICRO ;; esac
TIMEOUT_S=${TIMEOUT_S:-900}
SEED_WALL_S=${SEED_WALL_S:-80.6}

now_ms() { date +%s%3N; }

run_grid() { # engine jobs stdout_file stderr_file -> prints wall seconds
  local t0 t1
  t0=$(now_ms)
  timeout "$TIMEOUT_S" "$MAIN" --quick --engine "$1" --jobs "$2" fig6 \
    >"$3" 2>"$4"
  t1=$(now_ms)
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1000 }'
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Wall-clock regression gate: compare against the previous run's recorded
# compiled wall-clock before overwriting $OUT.
prev_compiled_wall=
if [ -f "$OUT" ]; then
  prev_compiled_wall=$(grep -o '"compiled_jobs4_wall_s": [0-9.]*' "$OUT" \
    | grep -o '[0-9.]*$' || true)
fi

interp_wall=$(run_grid interp 1 "$tmp/interp.txt" "$tmp/interp.log")
compiled_wall=$(run_grid compiled 4 "$tmp/compiled.txt" "$tmp/compiled.log")
bytecode_wall=$(run_grid bytecode 4 "$tmp/bytecode.txt" "$tmp/bytecode.log")

# Re-run one bytecode cell set with --records to exercise the JSONL sink
# (cheap: records ride along with the grid's own measurement pass).
rm -f "$RECORDS"
timeout "$TIMEOUT_S" "$MAIN" --quick --engine bytecode --jobs 1 \
  --records "$RECORDS" fig6 >/dev/null 2>"$tmp/records.log"
record_count=$(wc -l <"$RECORDS")
if [ "$record_count" -eq 0 ]; then
  echo "bench_smoke: FAIL — no JSONL run records written to $RECORDS" >&2
  exit 1
fi

if cmp -s "$tmp/interp.txt" "$tmp/compiled.txt" \
   && cmp -s "$tmp/interp.txt" "$tmp/bytecode.txt"; then
  identical=true
else
  identical=false
fi

# stderr tail: "grid: 14 cells, 123 Minstr simulated (engine compiled, 4 jobs)"
cells=$(grep -o 'grid: [0-9]* cells' "$tmp/compiled.log" | grep -o '[0-9]*')
minstr=$(grep -o '[0-9]* Minstr' "$tmp/compiled.log" | grep -o '[0-9]*')

micro=$(timeout "$TIMEOUT_S" "$MICRO" 60000 8 2)

{
  printf '{\n'
  printf '  "grid": "fig6 --quick (%s cells)",\n' "$cells"
  printf '  "host_cpus": %s,\n' "$(nproc)"
  printf '  "simulated_minstr": %s,\n' "$minstr"
  printf '  "seed_interp_wall_s": %s,\n' "$SEED_WALL_S"
  printf '  "interp_wall_s": %s,\n' "$interp_wall"
  printf '  "compiled_jobs4_wall_s": %s,\n' "$compiled_wall"
  printf '  "bytecode_jobs4_wall_s": %s,\n' "$bytecode_wall"
  awk -v s="$SEED_WALL_S" -v i="$interp_wall" -v c="$compiled_wall" \
    -v y="$bytecode_wall" -v m="$minstr" 'BEGIN {
      printf "  \"interp_minstr_per_s\": %.2f,\n", m / i;
      printf "  \"compiled_minstr_per_s\": %.2f,\n", m / c;
      printf "  \"bytecode_minstr_per_s\": %.2f,\n", m / y;
      printf "  \"speedup_vs_seed\": %.2f,\n", s / c;
      printf "  \"speedup_vs_interp\": %.2f,\n", i / c;
      printf "  \"bytecode_speedup_vs_seed\": %.2f,\n", s / y;
      printf "  \"bytecode_speedup_vs_interp\": %.2f,\n", i / y;
      printf "  \"bytecode_vs_compiled\": %.2f,\n", c / y }'
  printf '  "tables_identical": %s,\n' "$identical"
  printf '  "run_records": %s,\n' "$record_count"
  printf '  "microbench":\n'
  printf '%s\n' "$micro" | sed 's/^/  /'
  printf '}\n'
} >"$OUT"

echo "wrote $OUT (interp ${interp_wall}s, compiled+4jobs ${compiled_wall}s," \
  "bytecode+4jobs ${bytecode_wall}s, tables_identical=$identical," \
  "records=$record_count)"

# Bytecode throughput gate: the flat-bytecode engine must stay within 5%
# of the closure compiler on the same-run grid (it is normally ahead; the
# tolerance absorbs host noise on small --quick cells).
if awk -v c="$compiled_wall" -v y="$bytecode_wall" \
     'BEGIN { exit !(c / y < 0.95) }'; then
  echo "bench_smoke: FAIL — bytecode grid ${bytecode_wall}s is slower than" \
    "0.95x compiled ${compiled_wall}s" >&2
  exit 1
fi
echo "bytecode gate: ${bytecode_wall}s vs compiled ${compiled_wall}s" \
  "(>= 0.95x compiled throughput) — ok"

if [ -n "$prev_compiled_wall" ]; then
  if awk -v now="$compiled_wall" -v prev="$prev_compiled_wall" \
       -v lim="$MAX_REGRESS" 'BEGIN { exit !(now > prev * lim) }'; then
    echo "bench_smoke: FAIL — tracing-off compiled wall ${compiled_wall}s" \
      "exceeds ${MAX_REGRESS}x previous ${prev_compiled_wall}s" >&2
    exit 1
  fi
  echo "regression gate: compiled ${compiled_wall}s vs previous" \
    "${prev_compiled_wall}s (limit ${MAX_REGRESS}x) — ok"
fi

# @serve-smoke section: replay the hot/cold Zipf mix through the serving
# scheduler, cache on vs off -> BENCH_serve.json with hit-rate and
# throughput gates (tools/serve_smoke.sh; also its own @serve-smoke
# alias for running without the engine grid).
SERVE_OUT=${SERVE_OUT:-BENCH_serve.json}
bash "$(dirname "$0")/serve_smoke.sh" "$SERVE_OUT"
