#!/usr/bin/env bash
# Serving smoke benchmark: replay the synthetic hot/cold Zipf mix through
# the serving scheduler with the compile/tune cache on and off
# (bench/serve.ml), emit BENCH_serve.json; then run the cold-start
# tuning benchmark (bench/tune.ml: cost-model decisions vs the candidate
# sweep) and emit BENCH_tune.json next to it; then the fleet benchmark
# (bench/fleet.ml: sharded fleet vs single shard, jobs byte-identity)
# and emit BENCH_fleet.json.
#
# Gates:
#   - bench/serve.exe itself fails below a 2x cached-vs-uncached speedup;
#   - the hot-mix cache-hit rate must be >= 0.5;
#   - if a previous $OUT exists, served requests/s must not fall below
#     previous / MAX_REGRESS (default 1.10);
#   - bench/tune.exe fails unless model-mode tuning decisions are at
#     least MIN_TUNE_RATIO (default 3x) faster than the sweep's;
#   - bench/fleet.exe fails unless the FLEET_SHARDS-shard fleet reaches
#     MIN_FLEET_RATIO (default 2x) the single shard's virtual
#     throughput AND its records are byte-identical between --jobs 1
#     and --jobs $SERVE_JOBS.
#
# Run directly after `dune build`, or via `dune build @serve-smoke`
# (also invoked by tools/bench_smoke.sh as its @serve-smoke section).
set -euo pipefail

OUT=${1:-BENCH_serve.json}
TUNE_OUT=${TUNE_OUT:-$(dirname "$OUT")/BENCH_tune.json}
FLEET_OUT=${FLEET_OUT:-$(dirname "$OUT")/BENCH_fleet.json}
MAX_REGRESS=${MAX_REGRESS:-1.10}
SERVE=${SERVE:-_build/default/bench/serve.exe}
TUNE=${TUNE:-_build/default/bench/tune.exe}
FLEET=${FLEET:-_build/default/bench/fleet.exe}
case $SERVE in */*) ;; *) SERVE=./$SERVE ;; esac
case $TUNE in */*) ;; *) TUNE=./$TUNE ;; esac
case $FLEET in */*) ;; *) FLEET=./$FLEET ;; esac
TIMEOUT_S=${TIMEOUT_S:-900}
SERVE_N=${SERVE_N:-300}
SERVE_SEED=${SERVE_SEED:-11}
SERVE_JOBS=${SERVE_JOBS:-4}
MIN_SPEEDUP=${MIN_SPEEDUP:-2.0}
MIN_TUNE_RATIO=${MIN_TUNE_RATIO:-3.0}
TUNE_N=${TUNE_N:-120}
FLEET_N=${FLEET_N:-240}
FLEET_SHARDS=${FLEET_SHARDS:-4}
MIN_FLEET_RATIO=${MIN_FLEET_RATIO:-2.0}
FLEET_SOAK=${FLEET_SOAK:-1000000}
SERVE_ENGINE=${SERVE_ENGINE:-bytecode}

prev_serve_rps=
if [ -f "$OUT" ]; then
  prev_serve_rps=$(grep -o '"serve_req_per_s": [0-9.]*' "$OUT" \
    | grep -o '[0-9.]*$' || true)
fi

timeout "$TIMEOUT_S" "$SERVE" --engine "$SERVE_ENGINE" "$SERVE_N" \
  "$SERVE_SEED" "$SERVE_JOBS" "$MIN_SPEEDUP" >"$OUT"

hit_rate=$(grep -o '"hit_rate": [0-9.]*' "$OUT" | grep -o '[0-9.]*$')
serve_rps=$(grep -o '"serve_req_per_s": [0-9.]*' "$OUT" | grep -o '[0-9.]*$')
serve_speedup=$(grep -o '"cache_speedup": [0-9.]*' "$OUT" \
  | grep -o '[0-9.]*$')

if awk -v h="$hit_rate" 'BEGIN { exit !(h < 0.5) }'; then
  echo "serve_smoke: FAIL — cache-hit rate $hit_rate < 0.5 on the hot" \
    "mix" >&2
  exit 1
fi
echo "wrote $OUT (hit_rate=$hit_rate, ${serve_rps} req/s," \
  "cache_speedup=${serve_speedup}x)"

if [ -n "$prev_serve_rps" ]; then
  if awk -v now="$serve_rps" -v prev="$prev_serve_rps" -v lim="$MAX_REGRESS" \
       'BEGIN { exit !(now * lim < prev) }'; then
    echo "serve_smoke: FAIL — serve throughput ${serve_rps} req/s fell" \
      "below previous ${prev_serve_rps} req/s / ${MAX_REGRESS}" >&2
    exit 1
  fi
  echo "regression gate: serve ${serve_rps} req/s vs previous" \
    "${prev_serve_rps} req/s (limit ${MAX_REGRESS}x) — ok"
fi

# Cold-start tuning: cost-model vs sweep decision throughput, uncached
# build wall and hybrid agreement. tune.exe itself enforces the
# >= MIN_TUNE_RATIO decision-throughput gate (exit 1 below it).
timeout "$TIMEOUT_S" "$TUNE" --engine "$SERVE_ENGINE" "$TUNE_N" \
  "$SERVE_SEED" "$SERVE_JOBS" "$MIN_TUNE_RATIO" >"$TUNE_OUT"

tune_ratio=$(grep -o '"ratio": [0-9.]*' "$TUNE_OUT" | head -1 \
  | grep -o '[0-9.]*$')
agree_rate=$(grep -o '"rate": [0-9.]*' "$TUNE_OUT" | grep -o '[0-9.]*$')
echo "wrote $TUNE_OUT (model/sweep decision ratio=${tune_ratio}x," \
  "hybrid agreement=${agree_rate})"

# Fleet: sharded fleet vs single shard on the multi-tenant Zipf trace,
# plus the ungated FLEET_SOAK-request Zipf soak row (0 skips it).
# fleet.exe itself enforces both gates (>= MIN_FLEET_RATIO virtual
# throughput, records byte-identical between --jobs 1 and --jobs N).
timeout "$TIMEOUT_S" "$FLEET" --engine "$SERVE_ENGINE" \
  --shards "$FLEET_SHARDS" --soak "$FLEET_SOAK" "$FLEET_N" \
  "$SERVE_SEED" "$SERVE_JOBS" "$MIN_FLEET_RATIO" >"$FLEET_OUT"

fleet_speedup=$(grep -o '"fleet_speedup": [0-9.]*' "$FLEET_OUT" \
  | grep -o '[0-9.]*$')
fleet_identical=$(grep -o '"records_jobs_identical": [a-z]*' "$FLEET_OUT" \
  | grep -o '[a-z]*$')
echo "wrote $FLEET_OUT (${FLEET_SHARDS}-shard fleet" \
  "speedup=${fleet_speedup}x, jobs-identical=${fleet_identical})"
if [ "$FLEET_SOAK" -gt 0 ]; then
  soak_rps=$(grep -A4 '"soak"' "$FLEET_OUT" \
    | grep -o '"virtual_rps": [0-9.]*' | grep -o '[0-9.]*$' || true)
  echo "soak: ${FLEET_SOAK} requests, virtual_rps=${soak_rps} (ungated)"
fi
