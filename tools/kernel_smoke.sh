#!/usr/bin/env bash
# Kernel-scenario smoke benchmark: run bench/kernels.exe (SDDMM and
# blocked BSR SpMV, ASaP vs baseline in virtual cycles, plus the
# streaming-update serving replay) and emit BENCH_kernels.json.
#
# Gates (all enforced by kernels.exe itself, exit 1 on violation):
#   - every scenario's ASaP variant is value-correct against the dense
#     reference (max |err| <= 1e-9) and at least MIN_KERNEL_RATIO x the
#     baseline's virtual cycles;
#   - the streaming-update replay's records are byte-identical between
#     --jobs 1 and --jobs $KERNEL_JOBS with updates in flight;
#   - the update stream invalidates at least one cached entry
#     (serve.cache.invalidated > 0) and serves zero stale hits
#     (serve.cache.stale_hit = 0).
#
# Run directly after `dune build`, or via `dune build @kernel-smoke`
# (also pulled in by @bench-smoke).
set -euo pipefail

OUT=${1:-BENCH_kernels.json}
KERNELS=${KERNELS:-_build/default/bench/kernels.exe}
case $KERNELS in */*) ;; *) KERNELS=./$KERNELS ;; esac
TIMEOUT_S=${TIMEOUT_S:-900}
KERNEL_N=${KERNEL_N:-120}
KERNEL_SEED=${KERNEL_SEED:-11}
KERNEL_JOBS=${KERNEL_JOBS:-4}
MIN_KERNEL_RATIO=${MIN_KERNEL_RATIO:-1.0}
KERNEL_UPDATES=${KERNEL_UPDATES:-8}
KERNEL_ENGINE=${KERNEL_ENGINE:-bytecode}

timeout "$TIMEOUT_S" "$KERNELS" --engine "$KERNEL_ENGINE" "$KERNEL_N" \
  "$KERNEL_SEED" "$KERNEL_JOBS" "$MIN_KERNEL_RATIO" "$KERNEL_UPDATES" \
  >"$OUT"

speedups=$(grep -o '"asap_speedup": [0-9.]*' "$OUT" \
  | grep -o '[0-9.]*$' | paste -sd, -)
invalidated=$(grep -o '"invalidated": [0-9]*' "$OUT" | grep -o '[0-9]*$')
stale=$(grep -o '"stale_hits": [0-9]*' "$OUT" | grep -o '[0-9]*$')
identical=$(grep -o '"records_jobs_identical": [a-z]*' "$OUT" \
  | grep -o '[a-z]*$')
echo "wrote $OUT (asap_speedups=${speedups}," \
  "invalidated=${invalidated}, stale_hits=${stale}," \
  "jobs-identical=${identical})"
