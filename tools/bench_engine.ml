(* Engine microbenchmark: host wall-clock and simulated-instruction
   throughput of the three execution engines on identical cells.

   The matrix is generated and packed once; each engine then runs the same
   kernel/variant cells on fresh hierarchies, so the comparison isolates
   engine cost from workload setup. Results go to stdout as JSON (the
   format tracked in BENCH_engine.json by tools/bench_smoke.sh).

   Usage: bench_engine.exe [rows] [avg_deg] [reps] *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Generate = Asap_workloads.Generate

let () =
  let arg i default =
    if Array.length Sys.argv > i then int_of_string Sys.argv.(i) else default
  in
  let rows = arg 1 100_000 in
  let deg = arg 2 8 in
  let reps = arg 3 3 in
  let coo =
    Generate.power_law ~seed:1 ~rows ~cols:rows ~avg_deg:deg ~alpha:2.0 ()
  in
  let enc = Encoding.csr () in
  let st = Asap_tensor.Storage.pack enc coo in
  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let variants =
    [ ("baseline", Pipeline.Baseline);
      ("asap", Pipeline.Asap Asap.default);
      ("aj", Pipeline.Ainsworth_jones Aj.default) ]
  in
  let measure engine =
    (* Warm up allocators and fault in the matrix once, untimed. The
       matrix is packed once above and shared via [~st], so the timed
       region is engine cost, not setup. *)
    ignore (Driver.spmv ~engine ~st machine Pipeline.Baseline enc coo);
    let instrs = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      List.iter
        (fun (_, v) ->
          let r = Driver.spmv ~engine ~st machine v enc coo in
          instrs := !instrs + r.Driver.report.Exec.rp_instructions)
        variants
    done;
    let dt = Unix.gettimeofday () -. t0 in
    (dt, !instrs)
  in
  let ti, ii = measure `Interp in
  let tc, ic = measure `Compiled in
  let tb, ib = measure `Bytecode in
  assert (ii = ic);
  assert (ii = ib);
  (* Seed-commit Minstr/s on this microbench (default arguments, same
     host class), for cross-commit ratios: the per-access hierarchy
     optimisations that rode along with the bytecode engine sped up all
     three engines, so same-run ratios understate the distance travelled
     from the seed's closure engine. *)
  let seed_interp = 4.84 and seed_compiled = 7.18 in
  let mb = float_of_int ib /. tb /. 1e6 in
  Printf.printf
    "{\n\
    \  \"grid\": \"spmv csr x {baseline,asap,aj} x %d reps\",\n\
    \  \"matrix\": \"powerlaw rows=%d avg_deg=%d nnz=%d\",\n\
    \  \"simulated_instructions\": %d,\n\
    \  \"interp\": { \"wall_s\": %.3f, \"minstr_per_s\": %.2f },\n\
    \  \"compiled\": { \"wall_s\": %.3f, \"minstr_per_s\": %.2f },\n\
    \  \"bytecode\": { \"wall_s\": %.3f, \"minstr_per_s\": %.2f },\n\
    \  \"speedup\": %.2f,\n\
    \  \"bytecode_vs_compiled\": %.2f,\n\
    \  \"bytecode_vs_interp\": %.2f,\n\
    \  \"seed_interp_minstr_per_s\": %.2f,\n\
    \  \"seed_compiled_minstr_per_s\": %.2f,\n\
    \  \"bytecode_vs_seed_compiled\": %.2f,\n\
    \  \"bytecode_vs_seed_interp\": %.2f\n\
     }\n"
    reps rows deg (Coo.nnz coo) ii ti
    (float_of_int ii /. ti /. 1e6)
    tc
    (float_of_int ic /. tc /. 1e6)
    tb mb
    (ti /. tc) (tc /. tb) (ti /. tb)
    seed_interp seed_compiled (mb /. seed_compiled) (mb /. seed_interp)
