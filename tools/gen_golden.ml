(* Regenerates the checked-in golden IR listings under test/golden/ and
   verifies the Parse round-trip for each before writing anything.

     dune exec tools/gen_golden.exe -- [output-dir]

   Run after any deliberate change to the emitter, the prefetch passes
   or the printer, then review the diff like any other source change. *)

module Kernel = Asap_lang.Kernel
module Encoding = Asap_tensor.Encoding
module Pipeline = Asap_core.Pipeline
module Printer = Asap_ir.Printer
module Parse = Asap_ir.Parse

let variants =
  [ ("baseline", Pipeline.Baseline);
    ("asap", Pipeline.Asap Asap_prefetch.Asap.default);
    ("aj", Pipeline.Ainsworth_jones Asap_prefetch.Ainsworth_jones.default) ]

let cases =
  let open Encoding in
  [ ("spmv_coo", Kernel.spmv ~enc:(coo ()) ());
    ("spmv_csr", Kernel.spmv ~enc:(csr ()) ());
    ("spmv_csc", Kernel.spmv ~enc:(csc ()) ());
    ("spmv_dcsr", Kernel.spmv ~enc:(dcsr ()) ());
    ("spmv_bsr", Kernel.spmv ~enc:(bsr ~bh:2 ~bw:2 ()) ());
    ("spmm_csr", Kernel.spmm ~enc:(csr ()) ());
    ("sddmm_csr", Kernel.sddmm ~enc:(csr ()) ());
    ("ttv_csf", Kernel.ttv ~enc:(csf 3) ()) ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let failures = ref 0 in
  List.iter
    (fun (kname, k) ->
      List.iter
        (fun (vname, v) ->
          let name = Printf.sprintf "%s_%s" kname vname in
          let c = Pipeline.compile k v in
          let text = Printer.to_string c.Pipeline.fn in
          (match Parse.func_result text with
           | Error m ->
             incr failures;
             Printf.printf "FAIL %-20s parse error: %s\n" name m
           | Ok fn2 ->
             let text2 = Printer.to_string fn2 in
             if text2 <> text then begin
               incr failures;
               Printf.printf "FAIL %-20s reprint differs from source\n" name
             end
             else if not (Parse.equal_func fn2 c.Pipeline.fn) then begin
               incr failures;
               Printf.printf "FAIL %-20s parsed func not alpha-equal\n" name
             end
             else begin
               let path = Filename.concat dir (name ^ ".ir") in
               let oc = open_out path in
               output_string oc text;
               close_out oc;
               Printf.printf "ok   %-20s %4d lines -> %s\n" name
                 (List.length (String.split_on_char '\n' text)) path
             end))
        variants)
    cases;
  if !failures > 0 then begin
    Printf.printf "%d round-trip failure(s)\n" !failures;
    exit 1
  end
