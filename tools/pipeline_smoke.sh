#!/usr/bin/env bash
# Pipeline smoke: run bench/pipeline.exe — Printer/Parse round-trip
# identity over the kernel x variant grid, plus the unroll{f=4} and
# slack{max=8} value-exactness checks and the unroll cycle-parity gate
# on the banded SpMV microbench — and emit BENCH_pipeline.json.
#
# Gates (enforced by pipeline.exe itself, exit 1 on violation):
#   - every kernel x variant listing round-trips (reprint byte-identical
#     AND alpha-structurally equal);
#   - unroll{f=4} and slack{max=8} outputs are bit-identical to the
#     un-transformed pipeline on every case;
#   - "sparsify,unroll{f=4}" reaches >= MIN_RATIO (default 1.0x,
#     parity-or-better) of the baseline's virtual cycles.
#
# Run directly after `dune build`, or via `dune build @pipeline-smoke`
# (also part of @serve-smoke).
set -euo pipefail

OUT=${1:-BENCH_pipeline.json}
PIPELINE=${PIPELINE:-_build/default/bench/pipeline.exe}
case $PIPELINE in */*) ;; *) PIPELINE=./$PIPELINE ;; esac
TIMEOUT_S=${TIMEOUT_S:-600}
PIPE_ROWS=${PIPE_ROWS:-1000}
PIPE_BAND=${PIPE_BAND:-64}
PIPE_SEED=${PIPE_SEED:-7}
MIN_RATIO=${MIN_RATIO:-1.0}
PIPE_ENGINE=${PIPE_ENGINE:-bytecode}

timeout "$TIMEOUT_S" "$PIPELINE" --engine "$PIPE_ENGINE" "$PIPE_ROWS" \
  "$PIPE_BAND" "$PIPE_SEED" "$MIN_RATIO" >"$OUT"

rt_ok=$(grep -o '"roundtrip_ok": [0-9]*' "$OUT" | grep -o '[0-9]*$')
rt_total=$(grep -o '"roundtrip_total": [0-9]*' "$OUT" | grep -o '[0-9]*$')
gate_ratio=$(grep -o '"unroll_gate_ratio": [0-9.]*' "$OUT" \
  | grep -o '[0-9.]*$')
value_exact=$(grep -o '"value_exact": [a-z]*' "$OUT" | head -1 \
  | grep -o '[a-z]*$')

echo "wrote $OUT (roundtrip=${rt_ok}/${rt_total}," \
  "value_exact=${value_exact}, unroll_gate_ratio=${gate_ratio}x)"
