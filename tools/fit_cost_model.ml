(* Offline calibration and validation for the tuning cost model
   (lib/model). For every matrix in the synthetic suite this tool

   - runs the candidate sweep (Tuning.tune) and the feature model
     (Features.extract + Cost_model.predict) side by side;
   - does a FULL simulated run under each side's chosen variant and
     compares end-to-end cycles (the acceptance quantity: the model's
     pick must be within 5% of the sweep's pick on >= 90% of the suite,
     and must agree with every sweep rollback);
   - refits the linear speedup law (speedup ~ intercept + slope * MPKI)
     by least squares of the sweep's own profiled slice speedups against
     the analytic slice-MPKI estimate, and prints the fitted
     coefficients next to the shipped Cost_model.default so drift is
     visible when the simulator or suite changes.

   Exit 1 when either validation gate fails. [--quick] drops the two
   large matrices (seconds instead of minutes). *)

module Coo = Asap_tensor.Coo
module Storage = Asap_tensor.Storage
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Tuning = Asap_core.Tuning
module Asap = Asap_prefetch.Asap
module Generate = Asap_workloads.Generate
module Features = Asap_model.Features
module Cost_model = Asap_model.Cost_model

(* The calibration suite: the irregular matrices the model must send to
   ASaP (with the right distance rung) and the structured / cache-resident
   ones it must roll back, spanning both sides of the MPKI knee. *)
let small_suite =
  [ "powerlaw:3000,6"; "heavytail:2500,10000,10"; "uniform:2500,12000";
    "banded:2500,8"; "stencil2d:50"; "road:2000,3"; "powerlaw:400,5";
    "uniform:300,1200"; "banded:300,4"; "banded:4000,2" ]

let large_suite = [ "powerlaw:120000,8"; "uniform:40000,400000" ]

let variant_to_string = function
  | Pipeline.Baseline -> "baseline"
  | Pipeline.Asap p -> Printf.sprintf "asap-d%d" p.Asap.distance
  | Pipeline.Ainsworth_jones _ -> "aj"

type row = {
  spec : string;
  sweep_pick : Pipeline.variant;
  model_pick : Pipeline.variant;
  agree : bool;
  sweep_cycles : int;   (* full run under the sweep's pick *)
  model_cycles : int;   (* full run under the model's pick *)
  within5 : bool;
  est_mpki : float;
  slice_mpki : float;   (* sweep-measured baseline slice MPKI *)
  slice_speedup : float option;  (* profiled base/best-ASaP cycle ratio *)
}

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let engine =
    if Array.exists (( = ) "--engine") Sys.argv then begin
      let i = ref 0 in
      Array.iteri (fun j a -> if a = "--engine" then i := j + 1) Sys.argv;
      match Exec.engine_of_string Sys.argv.(!i) with
      | Some e -> e
      | None ->
        Printf.eprintf "unknown engine %s (%s)\n" Sys.argv.(!i)
          Exec.valid_engines;
        exit 1
    end
    else Exec.default_engine
  in
  let suite = if quick then small_suite else small_suite @ large_suite in
  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let enc = Encoding.csr () in
  let rows =
    List.map
      (fun spec ->
        let coo =
          match Generate.of_spec spec with
          | Ok c -> c
          | Error e -> Printf.eprintf "fit_cost_model: %s\n" e; exit 1
        in
        let st = Storage.pack enc coo in
        let sweep = Tuning.tune ~engine ~st machine enc coo in
        let f = Features.extract ~machine enc coo in
        let pred = Cost_model.predict machine f in
        let full v = Driver.spmv ~engine ~st machine v enc coo in
        let sweep_run = full sweep.Tuning.chosen in
        let model_run =
          if Cost_model.same_choice sweep.Tuning.chosen pred.Cost_model.p_variant
          then sweep_run
          else full pred.Cost_model.p_variant
        in
        let sc = sweep_run.Driver.report.Exec.rp_cycles
        and mc = model_run.Driver.report.Exec.rp_cycles in
        let base_pe =
          List.find_opt
            (fun pe -> pe.Tuning.pe_distance = None)
            sweep.Tuning.profile
        in
        let best_asap =
          List.filter_map
            (fun pe ->
              match pe.Tuning.pe_distance with
              | Some _ -> Some pe.Tuning.pe_cycles
              | None -> None)
            sweep.Tuning.profile
          |> function [] -> None | l -> Some (List.fold_left min max_int l)
        in
        let slice_mpki =
          match base_pe with Some pe -> pe.Tuning.pe_mpki | None -> 0.
        in
        let slice_speedup =
          match (base_pe, best_asap) with
          | Some pe, Some best when best > 0 ->
            Some (float_of_int pe.Tuning.pe_cycles /. float_of_int best)
          | _ -> None
        in
        { spec;
          sweep_pick = sweep.Tuning.chosen;
          model_pick = pred.Cost_model.p_variant;
          agree =
            Cost_model.same_choice sweep.Tuning.chosen
              pred.Cost_model.p_variant;
          sweep_cycles = sc;
          model_cycles = mc;
          within5 = float_of_int mc <= 1.05 *. float_of_int sc;
          est_mpki = f.Features.f_est_mpki;
          slice_mpki;
          slice_speedup })
      suite
  in
  Printf.printf
    "%-24s %-12s %-12s %5s  %12s %12s %7s  %8s %8s\n"
    "matrix" "sweep" "model" "agree" "sweep-cyc" "model-cyc" "ratio"
    "est-mpki" "slc-mpki";
  List.iter
    (fun r ->
      Printf.printf
        "%-24s %-12s %-12s %5s  %12d %12d %7.3f  %8.2f %8.2f%s\n"
        r.spec
        (variant_to_string r.sweep_pick)
        (variant_to_string r.model_pick)
        (if r.agree then "yes" else "NO")
        r.sweep_cycles r.model_cycles
        (float_of_int r.model_cycles /. float_of_int r.sweep_cycles)
        r.est_mpki r.slice_mpki
        (if r.within5 then "" else "  <-- outside 5%"))
    rows;

  (* --- refit the speedup law over the sweep's own slice measurements -- *)
  let pts =
    List.filter_map
      (fun r ->
        match r.slice_speedup with
        | Some s -> Some (r.est_mpki, s)
        | None -> None)
      rows
  in
  (match pts with
   | [] | [ _ ] -> print_endline "\nfit: not enough points to regress"
   | _ ->
     let n = float_of_int (List.length pts) in
     let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
     let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
     let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
     let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
     let denom = (n *. sxx) -. (sx *. sx) in
     if abs_float denom < 1e-9 then
       print_endline "\nfit: degenerate design (all MPKI equal)"
     else begin
       let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
       let intercept = (sy -. (slope *. sx)) /. n in
       let d = Cost_model.default in
       Printf.printf
         "\nfitted speedup law over %d slice profiles:\n\
         \  speedup ~ %.3f + %.4f * est_mpki\n\
          shipped Cost_model.default:\n\
         \  speedup ~ %.3f + %.4f * est_mpki  (knee %.1f, min %.2f, \
          tiny-nnz %d -> d%d else d%d)\n"
         (List.length pts) intercept slope d.Cost_model.c_intercept
         d.Cost_model.c_slope d.Cost_model.c_rollback_mpki
         d.Cost_model.c_min_speedup d.Cost_model.c_tiny_nnz
         d.Cost_model.c_dist_short d.Cost_model.c_dist_long
     end);

  (* --- validation gates ---------------------------------------------- *)
  let total = List.length rows in
  let n_within = List.length (List.filter (fun r -> r.within5) rows) in
  let within_rate = float_of_int n_within /. float_of_int total in
  let rollback_misses =
    List.filter
      (fun r ->
        r.sweep_pick = Pipeline.Baseline
        && r.model_pick <> Pipeline.Baseline)
      rows
  in
  let n_agree = List.length (List.filter (fun r -> r.agree) rows) in
  Printf.printf
    "\nsummary: %d/%d exact agreement, %d/%d within 5%% full-run cycles \
     (%.0f%%), %d/%d sweep rollbacks matched\n"
    n_agree total n_within total (100. *. within_rate)
    (List.length
       (List.filter (fun r -> r.sweep_pick = Pipeline.Baseline) rows)
     - List.length rollback_misses)
    (List.length
       (List.filter (fun r -> r.sweep_pick = Pipeline.Baseline) rows));
  let ok = ref true in
  if within_rate < 0.90 then begin
    Printf.eprintf
      "fit_cost_model: FAIL — only %.0f%% of the suite within 5%% of the \
       sweep's full-run cycles (need 90%%)\n"
      (100. *. within_rate);
    ok := false
  end;
  if rollback_misses <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf
          "fit_cost_model: FAIL — sweep rolled back %s but the model \
           chose %s\n"
          r.spec
          (variant_to_string r.model_pick))
      rollback_misses;
    ok := false
  end;
  if not !ok then exit 1
