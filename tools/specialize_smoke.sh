#!/usr/bin/env bash
# Specialization smoke benchmark: run bench/specialize.exe (ahead-of-time
# specialized bytecode vs the generic engines on the SpMV/SpMM/SDDMM
# suite) and emit BENCH_specialize.json.
#
# Gates (all enforced by specialize.exe itself, exit 1 on any failure):
#   - every gated scenario's specialized run is >= MIN_SPEC_RATIO
#     (default 1.15x) the generic bytecode run in virtual cycles;
#   - specialized outputs are bit-identical to generic outputs and
#     within 1e-9 of the dense reference;
#   - the specialized report is identical across interp / compiled /
#     bytecode;
#   - steady-state wall-clock geomean of specialized over generic
#     bytecode is > 1.0;
#   - a warm serve replay serves specialized artefacts from cache
#     (serve.spec.hit > 0) with records byte-identical at any --jobs.
#
# Run directly after `dune build`, or via `dune build @spec-smoke`
# (also part of @bench-smoke).
set -euo pipefail

OUT=${1:-BENCH_specialize.json}
SPEC=${SPEC:-_build/default/bench/specialize.exe}
case $SPEC in */*) ;; *) SPEC=./$SPEC ;; esac
TIMEOUT_S=${TIMEOUT_S:-900}
SPEC_N=${SPEC_N:-120}
SPEC_SEED=${SPEC_SEED:-11}
SPEC_JOBS=${SPEC_JOBS:-4}
MIN_SPEC_RATIO=${MIN_SPEC_RATIO:-1.15}
SPEC_REPS=${SPEC_REPS:-12}

timeout "$TIMEOUT_S" "$SPEC" "$SPEC_N" "$SPEC_SEED" "$SPEC_JOBS" \
  "$MIN_SPEC_RATIO" "$SPEC_REPS" >"$OUT"

wall_geomean=$(grep -o '"wall_speedup_geomean": [0-9.]*' "$OUT" \
  | grep -o '[0-9.]*$')
spec_hits=$(grep -o '"spec_hits": [0-9]*' "$OUT" | grep -o '[0-9]*$')
identical=$(grep -o '"records_jobs_identical": [a-z]*' "$OUT" \
  | grep -o '[a-z]*$')
best=$(grep -o '"cycle_speedup": [0-9.]*' "$OUT" | grep -o '[0-9.]*$' \
  | sort -g | tail -1)

echo "wrote $OUT (best cycle speedup=${best}x," \
  "wall geomean=${wall_geomean}x, serve spec_hits=${spec_hits}," \
  "jobs-identical=${identical})"
