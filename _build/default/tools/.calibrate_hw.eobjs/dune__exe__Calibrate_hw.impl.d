tools/calibrate_hw.ml: Array Asap_core Asap_sim Asap_tensor Asap_workloads List Printf String Sys
