tools/calibrate_hw.mli:
