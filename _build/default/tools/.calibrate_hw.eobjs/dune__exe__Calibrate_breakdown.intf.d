tools/calibrate_breakdown.mli:
