tools/calibrate_variants.mli:
