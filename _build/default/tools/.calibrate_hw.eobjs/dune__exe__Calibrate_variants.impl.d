tools/calibrate_variants.ml: Array Asap_core Asap_prefetch Asap_sim Asap_tensor Asap_workloads List Printf Sys
