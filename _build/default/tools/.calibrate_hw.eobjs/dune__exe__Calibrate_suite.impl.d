tools/calibrate_suite.ml: Asap_core Asap_prefetch Asap_sim Asap_tensor Asap_workloads List Printf
