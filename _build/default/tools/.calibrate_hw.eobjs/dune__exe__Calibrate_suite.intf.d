tools/calibrate_suite.mli:
