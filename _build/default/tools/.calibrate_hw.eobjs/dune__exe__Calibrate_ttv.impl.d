tools/calibrate_ttv.ml: Asap_core Asap_lang Asap_prefetch Asap_sim Asap_workloads List Printf
