tools/calibrate_ttv.mli:
