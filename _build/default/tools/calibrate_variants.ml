module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Suite = Asap_workloads.Suite

let () =
  let name = Sys.argv.(1) in
  let coo = (Suite.find name).Suite.gen () in
  let enc = Encoding.csr () in
  let m = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let base = Driver.spmv m Pipeline.Baseline enc coo in
  let tpb = Driver.throughput base in
  Printf.printf "%s nnz=%d baseline %.0f nnz/ms mpki %.1f\n%!" name base.Driver.nnz tpb (Driver.mpki base);
  List.iter (fun (n, v) ->
    let r = Driver.spmv m v enc coo in
    Printf.printf "  %-8s %.2fx (mpki %.1f)\n%!" n (Driver.throughput r /. tpb) (Driver.mpki r))
    [ "asap", Pipeline.Asap Asap.default;
      "aj", Pipeline.Ainsworth_jones Aj.default ]
