(* TTV smoke: CSF rank-3, all variants, correctness + bound recursion. *)
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Generate = Asap_workloads.Generate
module Kernel = Asap_lang.Kernel

let () =
  let c = Pipeline.compile (Kernel.ttv ()) (Pipeline.Asap Asap.default) in
  print_string (Pipeline.listing c);
  Printf.printf "sites: %d\n%!" c.Pipeline.n_prefetch_sites;
  let coo = Generate.tensor3 ~seed:5 ~dims:[|300;400;50_000|] ~nnz:400_000 () in
  let m = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  List.iter (fun (n, v) ->
    let r = Driver.ttv m v coo in
    let err = Driver.check_ttv coo r in
    Printf.printf "%-10s tp %8.0f err %g\n%!" n (Driver.throughput r) err)
    [ "baseline", Pipeline.Baseline;
      "asap", Pipeline.Asap { Asap.default with Asap.distance = 16 };
      "aj", Pipeline.Ainsworth_jones { Aj.default with Aj.distance = 16 } ]
