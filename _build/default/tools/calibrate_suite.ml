module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Suite = Asap_workloads.Suite

let d = 16
let () =
  let enc = Encoding.csr () in
  List.iter (fun name ->
    let coo = (Suite.find name).Suite.gen () in
    let m = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
    let md = Machine.gracemont_scaled ~hw:Machine.hw_default () in
    let base = Driver.spmv m Pipeline.Baseline enc coo in
    let tpb = Driver.throughput base in
    let asap = Driver.spmv m (Pipeline.Asap { Asap.default with Asap.distance = d }) enc coo in
    let asapd = Driver.spmv md (Pipeline.Asap { Asap.default with Asap.distance = d }) enc coo in
    let aj = Driver.spmv m (Pipeline.Ainsworth_jones { Aj.default with Aj.distance = d }) enc coo in
    let mspmm = Machine.gracemont_scaled ~hw:Machine.hw_optimized_spmm () in
    let bm = Driver.spmm mspmm Pipeline.Baseline enc coo in
    let am = Driver.spmm mspmm (Pipeline.Asap { Asap.default with Asap.strategy = Asap.Outer_only; distance = d }) enc coo in
    Printf.printf "%-18s spmv: base-mpki %6.1f asap %4.2fx asap-defhw %4.2fx aj %4.2fx | spmm: mpki %5.1f asap %4.2fx\n%!"
      name (Driver.mpki base) (Driver.throughput asap /. tpb)
      (Driver.throughput asapd /. tpb)
      (Driver.throughput aj /. tpb)
      (Driver.mpki bm)
      (Driver.throughput am /. Driver.throughput bm))
    [ "GAP-twitter"; "hollywood-2009"; "road-central"; "Janna-Serena"; "soc-pokec" ]
