module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Hierarchy = Asap_sim.Hierarchy
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Suite = Asap_workloads.Suite

let () =
  let name = Sys.argv.(1) in
  let coo = (Suite.find name).Suite.gen () in
  let enc = Encoding.csr () in
  let m = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  List.iter (fun (n, v) ->
    let r = Driver.spmv m v enc coo in
    let rp = r.Driver.report in
    let mem = rp.Exec.rp_mem in
    let nnz = float_of_int r.Driver.nnz in
    Printf.printf "%-8s cyc/nnz %6.2f instr/nnz %6.2f l1m/knnz %7.1f l2m/knnz %7.1f l3m/knnz %7.1f dram/knnz %7.1f swpf %d useful %d drop %d\n%!"
      n (float_of_int rp.Exec.rp_cycles /. nnz) (float_of_int rp.Exec.rp_instructions /. nnz)
      (1000. *. float_of_int mem.Hierarchy.st_l1_misses /. nnz)
      (1000. *. float_of_int mem.Hierarchy.st_l2_misses /. nnz)
      (1000. *. float_of_int mem.Hierarchy.st_l3_misses /. nnz)
      (1000. *. float_of_int mem.Hierarchy.st_dram_lines /. nnz)
      mem.Hierarchy.st_sw_issued mem.Hierarchy.st_sw_useful mem.Hierarchy.st_sw_dropped)
    [ "baseline", Pipeline.Baseline;
      "asap", Pipeline.Asap Asap.default;
      "asap-d16", Pipeline.Asap { Asap.default with Asap.distance = 16 };
      "aj", Pipeline.Ainsworth_jones Aj.default ]
