module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Hierarchy = Asap_sim.Hierarchy
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Suite = Asap_workloads.Suite

let () =
  let name = Sys.argv.(1) in
  let coo = (Suite.find name).Suite.gen () in
  let enc = Encoding.csr () in
  let configs = [
    "default", Machine.hw_default;
    "optimized", Machine.hw_optimized;
    "def-nlp-off", { Machine.hw_default with Machine.l1_nlp = false };
    "def-amp-off", { Machine.hw_default with Machine.l2_amp = false };
    "def-ipp-off", { Machine.hw_default with Machine.l1_ipp = false };
    "def-mlc-off", { Machine.hw_default with Machine.mlc_streamer = false };
    "def-llc-off", { Machine.hw_default with Machine.llc_streamer = false };
  ] in
  List.iter (fun (n, hw) ->
    let m = Machine.gracemont_scaled ~hw () in
    let r = Driver.spmv m Pipeline.Baseline enc coo in
    let mem = r.Driver.report.Exec.rp_mem in
    let pf = List.map (fun (pn,c) -> Printf.sprintf "%s:%d" pn c) mem.Hierarchy.st_hw_issued in
    let pfu = List.map (fun (pn,c) -> Printf.sprintf "%s:%d" pn c) mem.Hierarchy.st_hw_useful in
    Printf.printf "%-14s %10.0f nnz/ms  mpki %6.2f dram-lines %9d\n  issued: %s\n  useful: %s\n%!"
      n (Driver.throughput r) (Driver.mpki r) mem.Hierarchy.st_dram_lines
      (String.concat " " pf) (String.concat " " pfu))
    configs
