(* Shared benchmark engine.

   Figures 6, 7 and 11 draw from the same (matrix x variant x prefetcher
   config) measurement grid, so results are memoised per process. All
   simulated runs are deterministic, making every table exactly
   reproducible. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Hierarchy = Asap_sim.Hierarchy
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Suite = Asap_workloads.Suite
module Summary = Asap_metrics.Summary

type hw = Default | Optimized

let hw_name = function Default -> "default" | Optimized -> "optimized"

type vkind = Base | A | Jones

let vkind_name = function
  | Base -> "baseline"
  | A -> "asap"
  | Jones -> "ainsworth-jones"

(* The paper fixes distance 45 for both prefetching variants (§4.3) on the
   real 32 KB-L1 machine; on the capacity-scaled evaluation machine the
   equivalent lookahead is 16 (examples/distance_tuning.ml shows the
   plateau). Both variants use the same distance, as in the paper. *)
let eval_distance = 16

let variant_of ~kernel = function
  | Base -> Pipeline.Baseline
  | A ->
    (match kernel with
     | `Spmv -> Pipeline.Asap { Asap.default with Asap.distance = eval_distance }
     | `Spmm ->
       Pipeline.Asap
         { Asap.default with Asap.strategy = Asap.Outer_only;
           distance = eval_distance })
  | Jones -> Pipeline.Ainsworth_jones { Aj.default with Aj.distance = eval_distance }

let machine_of ~kernel ~threads = function
  | Default -> Machine.gracemont_scaled ~hw:Machine.hw_default ~cores:threads ()
  | Optimized ->
    let hw =
      match kernel with
      | `Spmv -> Machine.hw_optimized
      | `Spmm -> Machine.hw_optimized_spmm
    in
    Machine.gracemont_scaled ~hw ~cores:threads ()

type measurement = {
  m_name : string;
  m_group : string;
  m_nnz : int;
  m_throughput : float;        (* nnz per ms *)
  m_mpki : float;
  m_report : Exec.report;
}

(* Generated matrices and run results are cached per process. *)
let matrix_cache : (string, Coo.t) Hashtbl.t = Hashtbl.create 32
let run_cache : (string, measurement) Hashtbl.t = Hashtbl.create 256

let matrix (e : Suite.entry) =
  match Hashtbl.find_opt matrix_cache e.Suite.name with
  | Some m -> m
  | None ->
    let m = e.Suite.gen () in
    Hashtbl.add matrix_cache e.Suite.name m;
    m

(* Matrices are large; once a matrix's runs are done the cache can be
   dropped to bound memory. *)
let drop_matrix name = Hashtbl.remove matrix_cache name

let verbose = ref true

let log fmt =
  Printf.ksprintf (fun s -> if !verbose then Printf.eprintf "%s\n%!" s) fmt

(** [measure kernel entry vkind hw] runs one cell of the grid (memoised). *)
let measure ?(threads = 1) kernel (e : Suite.entry) vkind hw : measurement =
  let key =
    Printf.sprintf "%s/%s/%s/%s/%d"
      (match kernel with `Spmv -> "spmv" | `Spmm -> "spmm")
      e.Suite.name (vkind_name vkind) (hw_name hw) threads
  in
  match Hashtbl.find_opt run_cache key with
  | Some m -> m
  | None ->
    let coo = matrix e in
    let machine = machine_of ~kernel ~threads hw in
    let variant = variant_of ~kernel vkind in
    let enc = Encoding.csr () in
    log "  running %s ..." key;
    let r =
      match kernel with
      | `Spmv ->
        Driver.spmv ~threads ~binary:e.Suite.binary machine variant enc coo
      | `Spmm ->
        Driver.spmm ~threads ~binary:e.Suite.binary machine variant enc coo
    in
    let m =
      { m_name = e.Suite.name; m_group = e.Suite.group; m_nnz = r.Driver.nnz;
        m_throughput = Driver.throughput r; m_mpki = Driver.mpki r;
        m_report = r.Driver.report }
    in
    Hashtbl.add run_cache key m;
    m

(* --- Matrix selections --------------------------------------------- *)

let quick = ref false

(* In quick mode keep one representative matrix per group. *)
let spmv_entries () =
  if not !quick then Suite.entries
  else
    List.filter_map
      (fun g ->
        match Suite.by_group g with e :: _ -> Some e | [] -> None)
      Suite.groups

let spmm_entries () =
  let all = Suite.spmm_subset in
  if not !quick then all
  else
    List.filteri (fun i _ -> i mod 2 = 0) all

(* --- Formatting ----------------------------------------------------- *)

let header title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 78 '=') title
    (String.make 78 '=')

let subheader title = Printf.printf "\n--- %s ---\n\n" title

(** Equal-work harmonic-mean speedup over a list of (base, variant)
    throughput pairs. *)
let ews pairs =
  let base = Array.of_list (List.map fst pairs) in
  let var = Array.of_list (List.map snd pairs) in
  Summary.ews ~base ~variant:var

(** Group rows for the Fig. 7/10/11-style tables: per matrix group, the
    EWS of each labelled series against the first series. *)
let group_table ~groups ~series ~(rows : (string * (string * float) list) list)
    =
  (* rows: (group, [(series label, throughput)]) one per matrix. *)
  let labels = series in
  Printf.printf "%-12s" "group";
  List.iter (fun l -> Printf.printf " %14s" l) labels;
  Printf.printf "\n";
  let print_group gname matching =
    if matching <> [] then begin
      Printf.printf "%-12s" gname;
      let base = List.map (fun (_, tps) -> List.assoc (List.hd labels) tps)
          matching
      in
      List.iter
        (fun l ->
          let v = List.map (fun (_, tps) -> List.assoc l tps) matching in
          let e =
            Summary.ews ~base:(Array.of_list base) ~variant:(Array.of_list v)
          in
          Printf.printf " %14.2f" e)
        labels;
      Printf.printf "   (%d matrices)\n" (List.length matching)
    end
  in
  List.iter
    (fun g -> print_group g (List.filter (fun (g', _) -> g' = g) rows))
    groups;
  (* Aggregates: Selected = the unstructured groups; Others as-is. *)
  print_group "Selected"
    (List.filter (fun (g, _) -> List.mem g Suite.selected_groups) rows)
