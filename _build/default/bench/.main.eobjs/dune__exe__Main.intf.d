bench/main.mli:
