bench/harness.ml: Array Asap_core Asap_metrics Asap_prefetch Asap_sim Asap_tensor Asap_workloads Hashtbl List Printf String
