(* Profile-guided prefetch tuning (§3.2.3 + the APT-GET/RPG^2 direction
   of §6).

   ASaP leaves the prefetch distance tunable. This example profiles SpMV
   on a leading slice of rows for several inputs:
   - a cache-resident banded matrix — prefetching is rolled back entirely;
   - a memory-bound power-law graph — the best candidate distance wins;
   then runs the full matrix with the chosen configuration and compares
   against always-on defaults. *)

module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Tuning = Asap_core.Tuning
module Asap = Asap_prefetch.Asap
module Generate = Asap_workloads.Generate

let () =
  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let enc = Encoding.csr () in
  let inputs =
    [ ("banded (cache-resident)", Generate.banded ~seed:61 ~n:40_000 ~band:2 ());
      ("power-law (memory-bound)",
       Generate.power_law ~seed:62 ~rows:150_000 ~cols:150_000 ~avg_deg:6
         ~alpha:1.9 ()) ]
  in
  List.iter
    (fun (label, coo) ->
      Printf.printf "=== %s ===\n\n" label;
      let d = Tuning.tune machine enc coo in
      print_string (Tuning.describe d);
      let run v = Driver.throughput (Driver.spmv machine v enc coo) in
      let tuned = run d.Tuning.chosen in
      let always = run (Pipeline.Asap Asap.default) in
      let base = run Pipeline.Baseline in
      Printf.printf
        "\nfull run: baseline %.0f | always-on asap(d=45) %.2fx | tuned %.2fx\n\n%!"
        base (always /. base) (tuned /. base))
    inputs
