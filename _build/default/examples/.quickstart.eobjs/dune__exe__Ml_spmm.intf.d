examples/ml_spmm.mli:
