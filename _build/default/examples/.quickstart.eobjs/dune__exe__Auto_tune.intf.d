examples/auto_tune.mli:
