examples/quickstart.ml: Asap_core Asap_lang Asap_prefetch Asap_sim Asap_tensor List Printf
