examples/format_tour.ml: Asap_core Asap_ir Asap_lang Asap_prefetch Asap_sim Asap_sparsifier Asap_tensor Asap_workloads Ir List Printf String
