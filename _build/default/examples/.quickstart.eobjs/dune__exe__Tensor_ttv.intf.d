examples/tensor_ttv.mli:
