examples/sparse_add.mli:
