examples/ml_spmm.ml: Asap_core Asap_lang Asap_prefetch Asap_sim Asap_tensor Asap_workloads List Printf
