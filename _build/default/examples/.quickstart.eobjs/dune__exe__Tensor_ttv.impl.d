examples/tensor_ttv.ml: Array Asap_core Asap_lang Asap_prefetch Asap_sim Asap_tensor Asap_workloads List Printf
