examples/sparse_add.ml: Array Asap_core Asap_ir Asap_sim Asap_sparsifier Asap_tensor Asap_workloads Hashtbl List Option Printf
