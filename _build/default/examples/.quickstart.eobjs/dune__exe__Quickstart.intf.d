examples/quickstart.mli:
