examples/graph_spmv.mli:
