examples/distance_tuning.mli:
