examples/format_tour.mli:
