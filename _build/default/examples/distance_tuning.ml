(* Prefetch distance tuning (paper §3.2.3).

   ASaP leaves the lookahead distance as a user/profile-tunable parameter:
   too small and prefetches arrive late; too large and lines are evicted
   before use (cache pollution) and the bounded lookahead wastes its
   coverage. This example sweeps the distance on a memory-bound matrix and
   prints the resulting curve together with prefetch-usefulness counters,
   showing the plateau around the paper's chosen 45. *)

module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Hierarchy = Asap_sim.Hierarchy
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Generate = Asap_workloads.Generate

let () =
  let coo =
    Generate.power_law ~seed:33 ~rows:150_000 ~cols:150_000 ~avg_deg:8
      ~alpha:1.9 ()
  in
  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let enc = Encoding.csr () in
  let base = Driver.spmv machine Pipeline.Baseline enc coo in
  Printf.printf "baseline: %.0f nnz/ms at %.1f L2 MPKI\n\n"
    (Driver.throughput base) (Driver.mpki base);
  Printf.printf "%-10s %10s %12s %12s %12s\n" "distance" "speedup" "sw-pf"
    "useful" "dropped";
  List.iter
    (fun d ->
      let r =
        Driver.spmv machine
          (Pipeline.Asap { Asap.default with Asap.distance = d })
          enc coo
      in
      assert (Driver.check_spmv coo r < 1e-9);
      let mem = r.Driver.report.Exec.rp_mem in
      Printf.printf "%-10d %9.2fx %12d %12d %12d\n%!" d
        (Driver.throughput r /. Driver.throughput base)
        mem.Hierarchy.st_sw_issued mem.Hierarchy.st_sw_useful
        mem.Hierarchy.st_sw_dropped)
    [ 1; 2; 4; 8; 16; 32; 45; 64; 96; 128; 256 ]
