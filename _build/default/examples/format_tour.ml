(* Format tour: one matrix, every storage format.

   Walks the paper's §2 pipeline for COO, CSR, CSC and DCSR on a small
   random matrix: coordinate hierarchy trees, serialised buffers, the
   sparsified loop structure, and ASaP's per-format prefetch sites —
   including CSC's *write* prefetch for the scattered output (ASaP handles
   any format expressible in the dialect, contribution 1). Finishes with a
   Matrix Market round trip. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Storage = Asap_tensor.Storage
module Coord_tree = Asap_tensor.Coord_tree
module Matrix_market = Asap_tensor.Matrix_market
module Kernel = Asap_lang.Kernel
module Ig = Asap_sparsifier.Iteration_graph
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Generate = Asap_workloads.Generate
open Asap_ir

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i <= nh - nn && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let () =
  let small =
    Generate.power_law ~seed:11 ~rows:8 ~cols:8 ~avg_deg:2 ~alpha:2.0 ()
  in
  let formats =
    [ Encoding.coo (); Encoding.csr (); Encoding.csc (); Encoding.dcsr () ]
  in
  List.iter
    (fun enc ->
      Printf.printf "==== %s ====\n\n%s\n\n" enc.Encoding.name
        (Encoding.to_string enc);
      let st = Storage.pack enc small in
      Printf.printf "%s\n\n%s\n" (Storage.describe st)
        (Coord_tree.to_string (Coord_tree.of_storage st));
      let kernel = Kernel.spmv ~enc () in
      Printf.printf "iteration graph:\n%s\n\n" (Ig.to_string (Ig.build kernel));
      let c = Pipeline.compile kernel (Pipeline.Asap Asap.default) in
      let counts = Ir.counts c.Pipeline.fn in
      Printf.printf
        "sparsified: %d for(s), %d while(s); ASaP sites %d, prefetches %d\n"
        counts.Ir.n_fors counts.Ir.n_whiles c.Pipeline.n_prefetch_sites
        counts.Ir.n_prefetches;
      (* CSC scatters into the output: the prefetch is a write prefetch. *)
      if enc.Encoding.name = "CSC" then begin
        let listing = Pipeline.listing c in
        assert (contains_sub listing ", write, locality");
        print_endline "CSC output scatter gets a *write* prefetch:";
        List.iter
          (fun line ->
            if contains_sub line "prefetch %a" then
              print_endline ("  " ^ String.trim line))
          (String.split_on_char '\n' listing)
      end;
      (* Every format computes the same result. *)
      let machine = Machine.gracemont_scaled () in
      let r = Driver.spmv machine (Pipeline.Asap Asap.default) enc small in
      assert (Driver.check_spmv small r < 1e-9);
      Printf.printf "SpMV on the simulator: OK (matches dense reference)\n\n")
    formats;
  (* Matrix Market round trip. *)
  let text = Matrix_market.to_string small in
  let back = Matrix_market.of_string text in
  assert (Coo.to_dense back = Coo.to_dense small);
  Printf.printf "Matrix Market round trip: OK (%d bytes of .mtx text)\n"
    (String.length text)
