(* Machine-learning SpMM: sparse weights times dense activations (§1).

   Demonstrates outer-loop prefetching (§5.2, Fig. 9): ASaP places the
   prefetch for the next needed row of the dense matrix C in the middle
   (position) loop, where its overhead is amortised over the whole
   innermost row loop. The Ainsworth & Jones pass inspects only innermost
   loops and generates no prefetches for SpMM at all — reproducing the
   behaviour of the published artifact (§5.3).

   Also shows the structured-matrix regression case: on a banded matrix the
   hardware prefetchers already do the job and ASaP's instruction overhead
   is visible. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Kernel = Asap_lang.Kernel
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Suite = Asap_workloads.Suite

let run_one machine name variant coo ~n =
  let r = Driver.spmm machine variant (Encoding.csr ()) ~n coo in
  let err = Driver.check_spmm coo ~n r in
  if err > 1e-6 then failwith "SpMM result mismatch";
  (name, Driver.throughput r, Driver.mpki r, r)

let () =
  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized_spmm () in

  print_endline "=== Fig. 9: SpMM with ASaP outer-loop prefetching (CSR) ===\n";
  let c =
    Pipeline.compile (Kernel.spmm ())
      (Pipeline.Asap { Asap.default with strategy = Asap.Outer_only })
  in
  print_string (Pipeline.listing c);
  Printf.printf "(%d outer-loop site(s) instrumented)\n\n"
    c.Pipeline.n_prefetch_sites;

  let aj =
    Pipeline.compile (Kernel.spmm ()) (Pipeline.Ainsworth_jones Aj.default)
  in
  Printf.printf
    "Ainsworth & Jones on the same kernel: %d site(s) matched — the\n\
     innermost-loop pattern miss reproduces the artifact's behaviour.\n\n"
    aj.Pipeline.n_prefetch_sites;

  print_endline "=== SpMM on an unstructured weight matrix (GAP-twitter) ===\n";
  let entry = Suite.find "GAP-twitter" in
  let coo = entry.Suite.gen () in
  let variants =
    [ ("baseline", Pipeline.Baseline);
      ("asap-outer", Pipeline.Asap { Asap.default with strategy = Asap.Outer_only });
      ("ainsworth-jones", Pipeline.Ainsworth_jones Aj.default) ]
  in
  Printf.printf "%-16s %12s %9s %9s\n" "variant" "nnz/ms" "L2 MPKI" "speedup";
  let base = ref 0. in
  List.iter
    (fun (vn, v) ->
      let _, tp, mpki, _ = run_one machine vn v coo ~n:8 in
      if vn = "baseline" then base := tp;
      Printf.printf "%-16s %12.0f %9.2f %8.2fx\n%!" vn tp mpki (tp /. !base))
    variants;

  print_endline "\n=== SpMM on a structured matrix (banded): the regression case ===\n";
  let banded = (Suite.find "banded-300k").Suite.gen () in
  Printf.printf "%-16s %12s %9s %9s\n" "variant" "nnz/ms" "L2 MPKI" "speedup";
  let base = ref 0. in
  List.iter
    (fun (vn, v) ->
      let _, tp, mpki, _ = run_one machine vn v banded ~n:8 in
      if vn = "baseline" then base := tp;
      Printf.printf "%-16s %12.0f %9.2f %8.2fx\n%!" vn tp mpki (tp /. !base))
    variants
