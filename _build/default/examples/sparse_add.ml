(* Merge-based co-iteration (§3.1): sparse + sparse.

   When a loop must co-iterate two *sparse* operands, iterate-and-locate
   does not apply — neither side supports O(1) membership — and the
   compiler merges the two sorted coordinate streams instead. This example
   shows the generated two-pointer merge loops for element-wise union
   (add) and intersection (multiply), runs them over two random sparse
   vectors and two CSR matrices, and checks against dense references. *)

module Coo = Asap_tensor.Coo
module Machine = Asap_sim.Machine
module Printer = Asap_ir.Printer
module Merge = Asap_sparsifier.Merge
module Driver = Asap_core.Driver
module Reference = Asap_core.Reference
module Generate = Asap_workloads.Generate
module Rng = Asap_workloads.Rng

let sparse_vec ~seed ~n ~nnz =
  let rng = Rng.create seed in
  let seen = Hashtbl.create nnz in
  let entries = ref [] in
  while Hashtbl.length seen < nnz do
    let i = Rng.int rng n in
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      entries := (i, 1. +. Rng.float rng) :: !entries
    end
  done;
  Coo.create ~dims:[| n |]
    ~coords:(Array.of_list (List.map (fun (i, _) -> [| i |]) !entries))
    ~vals:(Array.of_list (List.map snd !entries))

let () =
  print_endline "=== Generated merge loop (sparse vector union add) ===\n";
  let c = Merge.vector_ewise Merge.Union_add in
  print_string (Printer.to_string c.Merge.m_fn);

  let machine = Machine.gracemont_scaled () in
  let n = 2_000_000 in
  let b = sparse_vec ~seed:71 ~n ~nnz:300_000 in
  let cvec = sparse_vec ~seed:72 ~n ~nnz:250_000 in
  print_endline "\n=== Sparse vector merges ===\n";
  List.iter
    (fun (label, op, reference) ->
      let r = Driver.vector_ewise machine op b cvec in
      let got = Option.get r.Driver.out_f in
      let expect = reference b cvec in
      assert (got = expect);
      Printf.printf "%-22s %9d+%d nnz -> %8.0f nnz/ms (checked)\n%!" label
        (Coo.nnz b) (Coo.nnz cvec) (Driver.throughput r))
    [ ("union add", Merge.Union_add, Reference.ewise_add);
      ("intersection multiply", Merge.Intersect_mul, Reference.ewise_mul) ];

  print_endline "\n=== CSR matrix merges (row-wise) ===\n";
  let bm =
    Generate.power_law ~seed:73 ~rows:2_000 ~cols:2_000 ~avg_deg:8 ~alpha:2.0 ()
    |> Coo.sorted_dedup
  in
  let cm =
    Generate.power_law ~seed:74 ~rows:2_000 ~cols:2_000 ~avg_deg:8 ~alpha:2.0 ()
    |> Coo.sorted_dedup
  in
  List.iter
    (fun (label, op, reference) ->
      let r = Driver.matrix_ewise machine op bm cm in
      assert (Option.get r.Driver.out_f = reference bm cm);
      Printf.printf "%-22s checked against the dense reference\n%!" label)
    [ ("matrix union add", Merge.Union_add, Reference.ewise_add);
      ("matrix intersection", Merge.Intersect_mul, Reference.ewise_mul) ]
