(* Rank-3 tensors: CSF storage and the general bound recursion (§3.2.2).

   The paper's recursive formula

     crd_buf_sz(l1) = l1_pos[1]
     crd_buf_sz(lk) = lk_pos[crd_buf_sz(l(k-1))]

   only shows its full shape beyond two levels. This example contracts a
   rank-3 CSF tensor with a vector — a(i,j) = B(i,j,k) c(k) — and shows
   the three-deep loop nest, the three prefetch sites (two write-prefetch
   scatter sites for a, one gather site for c), the chained bound loads in
   the prologue, and the resulting speedups. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Storage = Asap_tensor.Storage
module Kernel = Asap_lang.Kernel
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Generate = Asap_workloads.Generate

let () =
  print_endline "=== TTV over rank-3 CSF with ASaP prefetching ===\n";
  let c = Pipeline.compile (Kernel.ttv ()) (Pipeline.Asap Asap.default) in
  print_string (Pipeline.listing c);
  Printf.printf "\nprefetch sites: %d (a at levels i and j, c at level k)\n\n"
    c.Pipeline.n_prefetch_sites;

  let dims = [| 400; 500; 200_000 |] in
  let coo = Generate.tensor3 ~seed:21 ~dims ~nnz:600_000 () in
  Printf.printf "tensor %dx%dx%d, %d nnz; %s\n\n" dims.(0) dims.(1) dims.(2)
    (Coo.nnz coo)
    (Storage.describe (Storage.pack (Encoding.csf 3) coo));

  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  Printf.printf "%-18s %12s %9s\n" "variant" "nnz/ms" "speedup";
  let base = ref 0. in
  List.iter
    (fun (vn, v) ->
      let r = Driver.ttv machine v coo in
      let err = Driver.check_ttv coo r in
      if err > 1e-9 then failwith "TTV result mismatch";
      let tp = Driver.throughput r in
      if vn = "baseline" then base := tp;
      Printf.printf "%-18s %12.0f %8.2fx\n%!" vn tp (tp /. !base))
    [ ("baseline", Pipeline.Baseline);
      ("asap", Pipeline.Asap { Asap.default with Asap.distance = 16 });
      ("ainsworth-jones",
       Pipeline.Ainsworth_jones { Aj.default with Aj.distance = 16 }) ];
  print_endline
    "\nASaP instruments all three compressed levels; the low-level pass\n\
     only matches the innermost loop's indirection."
