lib/lang/affine.mli:
