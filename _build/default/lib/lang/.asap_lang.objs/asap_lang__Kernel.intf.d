lib/lang/kernel.mli: Affine Asap_tensor
