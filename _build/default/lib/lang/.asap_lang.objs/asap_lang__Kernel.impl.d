lib/lang/kernel.ml: Affine Array Asap_tensor Buffer List Printf String
