lib/lang/affine.ml: Array Int Printf String
