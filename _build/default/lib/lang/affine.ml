(* Affine indexing maps.

   The paper's kernels only need projection/permutation maps — each result
   of the map is one iteration-space dimension (e.g. SpMV's
   #m_B = (i, j) -> (i, j), #m_c = (i, j) -> (j)). A map is therefore an
   array of dimension indices. *)

type t = { n_dims : int; results : int array }

let make ~n_dims results =
  Array.iter
    (fun d ->
      if d < 0 || d >= n_dims then invalid_arg "Affine.make: dim out of range")
    results;
  { n_dims; results = Array.copy results }

let rank t = Array.length t.results

(** [uses t d] tells whether dimension [d] appears among the results. *)
let uses t d = Array.exists (Int.equal d) t.results

(** [result_of_dim t d] is the result position carrying dimension [d]. *)
let result_of_dim t d =
  let rec go i =
    if i = Array.length t.results then None
    else if t.results.(i) = d then Some i
    else go (i + 1)
  in
  go 0

let dim_names n =
  Array.init n (fun d ->
      if n <= 3 then [| "i"; "j"; "k" |].(d) else Printf.sprintf "d%d" d)

(** [to_string t] renders e.g. "affine_map<(i, j) -> (j)>". *)
let to_string t =
  let names = dim_names t.n_dims in
  Printf.sprintf "affine_map<(%s) -> (%s)>"
    (String.concat ", " (Array.to_list names))
    (String.concat ", "
       (Array.to_list (Array.map (fun d -> names.(d)) t.results)))
