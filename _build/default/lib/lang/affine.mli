(** Affine indexing maps.

    The paper's kernels only need projection/permutation maps — each map
    result is one iteration-space dimension (e.g. SpMV's
    [#m_c = (i, j) -> (j)]). *)

type t = { n_dims : int; results : int array }

(** [make ~n_dims results] validates the dimension indices.
    @raise Invalid_argument when a result is out of range. *)
val make : n_dims:int -> int array -> t

(** [rank t] is the number of results (operand rank). *)
val rank : t -> int

(** [uses t d] tells whether dimension [d] appears among the results. *)
val uses : t -> int -> bool

(** [result_of_dim t d] is the result position carrying dimension [d]. *)
val result_of_dim : t -> int -> int option

(** [dim_names n] is the conventional naming (i, j, k, or d0..) used across
    printers. *)
val dim_names : int -> string array

(** [to_string t] renders e.g. ["affine_map<(i, j) -> (j)>"]. *)
val to_string : t -> string
