(** Merge-based co-iteration (paper §3.1).

    When a dimension receives edges from two {e sparse} operands,
    iterate-and-locate does not apply and the compiler merges the two
    sorted coordinate streams: a two-pointer while loop with coordinate
    compares, conditional stores, and select-based pointer advances;
    union adds two tail loops. *)

open Asap_ir

type op =
  | Union_add                   (** out = B + C, union of coordinates *)
  | Intersect_mul               (** out = B * C, intersection *)

(** Which runtime datum each buffer parameter binds to. *)
type binding =
  | Mpos of [ `B | `C ] * int
  | Mcrd of [ `B | `C ] * int
  | Mvals of [ `B | `C ]
  | Mout

type compiled = {
  m_fn : Ir.func;
  m_op : op;
  m_rank : int;
  m_buffers : (Ir.buffer * binding) list;
  m_scalars : (Ir.value * int) list; (** scalar param -> dimension extent *)
}

(** [vector_ewise op] compiles out = B (+/x) C over two compressed sparse
    vectors into a dense output vector. The result is verified. *)
val vector_ewise : op -> compiled

(** [matrix_ewise op] compiles out = B (+/x) C over two CSR matrices into
    a dense row-major output: a dense outer row loop with a merge of the
    two row segments inside. *)
val matrix_ewise : op -> compiled
