(** Sparsification: lowering a kernel over a sparse encoding to imperative
    IR (paper §2.4 and §3.1).

    The emitter walks the sparse operand's storage levels in
    iteration-graph order, generating one loop per level: dense levels
    become counted loops, compressed levels position loops, the COO pair
    (compressed non-unique over singleton) the while/dedup structure of
    Fig. 3a. Remaining dense-only dimensions (SpMM's k) become innermost
    loops. When a position loop materialises a coordinate that indirectly
    indexes a dense operand — the iterate-and-locate co-iteration of
    Fig. 4c — the emitter calls the prefetch hook with the full semantic
    context ({!Access.site}). *)

module Kernel = Asap_lang.Kernel
open Asap_ir

(** How each buffer parameter of the generated function must be bound at
    run time, in parameter order. *)
type binding =
  | Bpos of int                (** positions buffer of storage level l *)
  | Bcrd of int                (** coordinates buffer of storage level l *)
  | Bvals                      (** values buffer of the sparse operand *)
  | Bdense of string           (** dense operand, by kernel operand name *)

type compiled = {
  fn : Ir.func;
  kernel : Kernel.t;
  buffers : (Ir.buffer * binding) list;
  scalars : (Ir.value * int) list; (** scalar param -> iteration dim extent *)
  n_sites : int;                   (** indirect-access sites encountered *)
}

(** Raised on level chains outside the supported dialect subset (e.g.
    non-unique compressed below the top level). *)
exception Unsupported of string

(** [compile ?hook ?fn_name k] lowers [k]. Prefer {!Sparsify.run}, which
    also verifies the result. *)
val compile : ?hook:Access.hook -> ?fn_name:string -> Kernel.t -> compiled
