(* Merge-based co-iteration (paper §3.1).

   When a dimension node of the iteration graph receives edges from two
   *sparse* operands, iterate-and-locate does not apply (neither side
   supports constant-time membership checks) and the compiler must merge
   the two sorted coordinate streams. This module implements that second
   co-iteration strategy for element-wise kernels over two compressed
   operands:

     out = B (+) C      union merge      (a[i] = B[i] + C[i])
     out = B (x) C      intersection     (a[i] = B[i] * C[i])

   in rank-1 form (two sparse vectors) and rank-2 row-wise form (two CSR
   matrices merged row by row into a dense output).

   The generated loop is the classic two-pointer merge: a while loop
   carrying both positions, coordinate compares, conditional stores, and
   select-based pointer advances; union adds two tail loops. Merge loops
   contain no iterate-and-locate sites, so the prefetch hook does not
   apply here (the scatter into the dense output is segment-ordered and
   streams well). *)

module Encoding = Asap_tensor.Encoding
open Asap_ir

type op = Union_add | Intersect_mul

(* Which runtime datum each buffer parameter binds to. *)
type binding =
  | Mpos of [ `B | `C ] * int   (* positions buffer of a level *)
  | Mcrd of [ `B | `C ] * int
  | Mvals of [ `B | `C ]
  | Mout

type compiled = {
  m_fn : Ir.func;
  m_op : op;
  m_rank : int;
  m_buffers : (Ir.buffer * binding) list;
  m_scalars : (Ir.value * int) list;  (* scalar param -> dimension extent *)
}

(* Emit the two-pointer merge over [blo, bhi) x [clo, chi), writing
   results into [out] at [out_base + coord]. *)
let emit_merge b ~op ~bcrd ~bvals ~ccrd ~cvals ~out ~out_base ~blo ~bhi ~clo
    ~chi =
  let c1 = Builder.index b 1 in
  let out_at coord =
    match out_base with
    | None -> coord
    | Some base -> Builder.iadd b base coord
  in
  let accumulate coord v =
    let addr = out_at coord in
    let cur = Builder.load b ~name:"outv" out addr in
    Builder.store b out addr (Builder.fadd b cur v)
  in
  let results =
    Builder.while_ b ~tag:"merge"
      [ ("bi", Ir.Index, blo); ("ci", Ir.Index, clo) ]
      (fun args ->
        let bi = List.nth args 0 and ci = List.nth args 1 in
        let inb = Builder.icmp b Ir.Ult bi bhi in
        let inc = Builder.icmp b Ir.Ult ci chi in
        Builder.ibin b Ir.Iand inb inc)
      (fun args ->
        let bi = List.nth args 0 and ci = List.nth args 1 in
        let i = Builder.load b ~name:"i" bcrd bi in
        let j = Builder.load b ~name:"j" ccrd ci in
        let eq = Builder.icmp b Ir.Eq i j in
        let lt = Builder.icmp b Ir.Ult i j in
        (match op with
         | Union_add ->
           Builder.if_ b eq
             (fun () ->
               let x = Builder.load b ~name:"bv" bvals bi in
               let y = Builder.load b ~name:"cv" cvals ci in
               accumulate i (Builder.fadd b x y))
             (fun () ->
               Builder.if_ b lt
                 (fun () ->
                   let x = Builder.load b ~name:"bv" bvals bi in
                   accumulate i x)
                 (fun () ->
                   let y = Builder.load b ~name:"cv" cvals ci in
                   accumulate j y))
         | Intersect_mul ->
           Builder.if_ b eq
             (fun () ->
               let x = Builder.load b ~name:"bv" bvals bi in
               let y = Builder.load b ~name:"cv" cvals ci in
               accumulate i (Builder.fmul b x y))
             (fun () -> ()));
        (* Advance: bi when i <= j, ci when j <= i. *)
        let le = Builder.ibin b Ir.Ior eq lt in
        let bstep = Builder.select b le c1 (Builder.index b 0) in
        let cstep =
          Builder.select b lt (Builder.index b 0) c1
        in
        [ Builder.iadd b bi bstep; Builder.iadd b ci cstep ])
  in
  match op with
  | Intersect_mul -> ()
  | Union_add ->
    (* Tails: whichever stream remains contributes alone. *)
    let tail crd vals lo hi =
      let (_ : Ir.value list) =
        Builder.while_ b ~tag:"merge tail"
          [ ("ti", Ir.Index, lo) ]
          (fun args -> Builder.icmp b Ir.Ult (List.hd args) hi)
          (fun args ->
            let ti = List.hd args in
            let i = Builder.load b ~name:"i" crd ti in
            let x = Builder.load b ~name:"v" vals ti in
            accumulate i x;
            [ Builder.iadd b ti c1 ])
      in
      ()
    in
    (match results with
     | [ bfin; cfin ] ->
       tail bcrd bvals bfin bhi;
       tail ccrd cvals cfin chi
     | _ -> assert false)

(* Shared parameter setup for one sparse operand under a given encoding
   level set; only compressed levels are supported here. *)
let sparse_params bld name side rank bindings =
  let add nm elem bind =
    let buffer = Builder.buf bld nm elem in
    bindings := (buffer, bind) :: !bindings;
    buffer
  in
  let pos =
    Array.init rank (fun l ->
        add (Printf.sprintf "%s%d_pos" name l) Ir.EIdx32 (Mpos (side, l)))
  in
  let crd =
    Array.init rank (fun l ->
        add (Printf.sprintf "%s%d_crd" name l) Ir.EIdx32 (Mcrd (side, l)))
  in
  let vals = add (name ^ "_vals") Ir.EF64 (Mvals side) in
  (pos, crd, vals)

(** [vector_ewise op] compiles out = B (+/x) C over two compressed sparse
    vectors into a dense output vector. *)
let vector_ewise (op : op) : compiled =
  let bld = Builder.create () in
  let bindings = ref [] in
  let bpos, bcrd, bvals = sparse_params bld "B" `B 1 bindings in
  let cpos, ccrd, cvals = sparse_params bld "C" `C 1 bindings in
  let out = Builder.buf bld "a" Ir.EF64 in
  bindings := (out, Mout) :: !bindings;
  let n = Builder.scalar_param bld "d_i" Ir.Index in
  let c0 = Builder.index bld 0 and c1 = Builder.index bld 1 in
  let blo = Builder.load bld ~name:"blo" bpos.(0) c0 in
  let bhi = Builder.load bld ~name:"bhi" bpos.(0) c1 in
  let clo = Builder.load bld ~name:"clo" cpos.(0) c0 in
  let chi = Builder.load bld ~name:"chi" cpos.(0) c1 in
  emit_merge bld ~op ~bcrd:bcrd.(0) ~bvals ~ccrd:ccrd.(0) ~cvals ~out
    ~out_base:None ~blo ~bhi ~clo ~chi;
  let name =
    match op with
    | Union_add -> "spvec_add"
    | Intersect_mul -> "spvec_mul"
  in
  let fn = Builder.finish bld name in
  (match Verify.check_result fn with
   | Ok () -> ()
   | Error m -> invalid_arg ("merge vector_ewise: ill-formed IR: " ^ m));
  { m_fn = fn; m_op = op; m_rank = 1; m_buffers = List.rev !bindings;
    m_scalars = [ (n, 0) ] }

(** [matrix_ewise op] compiles out = B (+/x) C over two CSR matrices into
    a dense row-major output: a dense outer row loop and a merge of the
    two row segments inside. *)
let matrix_ewise (op : op) : compiled =
  let bld = Builder.create () in
  let bindings = ref [] in
  (* CSR: level 0 dense (no buffers), level 1 compressed. *)
  let add nm elem bind =
    let buffer = Builder.buf bld nm elem in
    bindings := (buffer, bind) :: !bindings;
    buffer
  in
  let bpos = add "Bj_pos" Ir.EIdx32 (Mpos (`B, 1)) in
  let bcrd = add "Bj_crd" Ir.EIdx32 (Mcrd (`B, 1)) in
  let bvals = add "B_vals" Ir.EF64 (Mvals `B) in
  let cpos = add "Cj_pos" Ir.EIdx32 (Mpos (`C, 1)) in
  let ccrd = add "Cj_crd" Ir.EIdx32 (Mcrd (`C, 1)) in
  let cvals = add "C_vals" Ir.EF64 (Mvals `C) in
  let out = add "a" Ir.EF64 Mout in
  let rows = Builder.scalar_param bld "d_i" Ir.Index in
  let cols = Builder.scalar_param bld "d_j" Ir.Index in
  let c0 = Builder.index bld 0 and c1 = Builder.index bld 1 in
  Builder.for0 bld ~tag:"rows" "i" c0 rows (fun i ->
      let i1 = Builder.iadd bld i c1 in
      let blo = Builder.load bld ~name:"blo" bpos i in
      let bhi = Builder.load bld ~name:"bhi" bpos i1 in
      let clo = Builder.load bld ~name:"clo" cpos i in
      let chi = Builder.load bld ~name:"chi" cpos i1 in
      let base = Builder.imul bld i cols in
      emit_merge bld ~op ~bcrd ~bvals ~ccrd ~cvals ~out ~out_base:(Some base)
        ~blo ~bhi ~clo ~chi);
  let name =
    match op with
    | Union_add -> "spmat_add"
    | Intersect_mul -> "spmat_mul"
  in
  let fn = Builder.finish bld name in
  (match Verify.check_result fn with
   | Ok () -> ()
   | Error m -> invalid_arg ("merge matrix_ewise: ill-formed IR: " ^ m));
  { m_fn = fn; m_op = op; m_rank = 2; m_buffers = List.rev !bindings;
    m_scalars = [ (rows, 0); (cols, 1) ] }
