(** Sparsification driver: kernel -> verified imperative IR.

    Thin wrapper over {!Emitter.compile} that always runs the IR verifier,
    so every compilation path produces well-formed functions. *)

module Kernel = Asap_lang.Kernel

type t = Emitter.compiled

(** [run ?hook ?fn_name k] sparsifies kernel [k]; [hook] is the prefetch
    injection point (see {!Access.hook}).
    @raise Emitter.Unsupported on level chains outside the supported
    dialect subset.
    @raise Invalid_argument if generated IR fails verification (a bug). *)
val run : ?hook:Access.hook -> ?fn_name:string -> Kernel.t -> t

(** [listing c] is the MLIR-flavoured text of the generated function. *)
val listing : t -> string
