lib/sparsifier/sparsify.mli: Access Asap_lang Emitter
