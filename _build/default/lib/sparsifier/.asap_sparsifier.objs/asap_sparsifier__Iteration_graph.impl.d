lib/sparsifier/iteration_graph.ml: Array Asap_lang Asap_tensor Int List Printf String
