lib/sparsifier/access.mli: Asap_ir Builder Ir
