lib/sparsifier/iteration_graph.mli: Asap_lang
