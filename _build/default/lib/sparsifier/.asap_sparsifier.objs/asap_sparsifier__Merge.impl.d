lib/sparsifier/merge.ml: Array Asap_ir Asap_tensor Builder Ir List Printf Verify
