lib/sparsifier/sparsify.ml: Asap_ir Asap_lang Emitter Ir Printer Printf Verify
