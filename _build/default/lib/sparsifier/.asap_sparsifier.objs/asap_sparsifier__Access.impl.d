lib/sparsifier/access.ml: Asap_ir Builder Ir
