lib/sparsifier/emitter.mli: Access Asap_ir Asap_lang Ir
