lib/sparsifier/emitter.ml: Access Array Asap_ir Asap_lang Asap_tensor Builder Ir Iteration_graph List Option Printf String
