lib/sparsifier/merge.mli: Asap_ir Ir
