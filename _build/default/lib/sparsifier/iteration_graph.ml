(* Iteration graphs (paper §3.1, Fig. 4; Kjolstad's sparse iteration
   theory).

   Nodes are iteration-space dimensions; a directed edge d1 -> d2 records
   that d1 must be iterated before d2. Sparse operands contribute the edges
   of their coordinate hierarchy: level l must be visited before level l+1.
   Dense operands add no hard constraints. The topological order prefers
   the textual dimension order, which together with [sorted = true]
   reproduces MLIR's behaviour of never reordering a sorted tensor. *)

module Kernel = Asap_lang.Kernel
module Affine = Asap_lang.Affine
module Encoding = Asap_tensor.Encoding

type t = {
  n : int;
  edges : (int * int) list;            (* (before, after) *)
  order : int array;                   (* topological iteration order *)
  sparse_dims : int array;             (* dims in sparse level order *)
}

exception Cycle of string

(** [build k] constructs the iteration graph of kernel [k] and a
    topological order. Raises [Cycle] if the constraints are unsatisfiable
    (cannot happen with a single sparse operand, but the check keeps the
    module honest for future multi-sparse kernels). *)
let build (k : Kernel.t) : t =
  let n = Kernel.n_dims k in
  let enc = k.Kernel.k_encoding in
  let map = k.Kernel.k_sparse.Kernel.o_map in
  (* Dimension stored at level l: the map result at position dim_to_lvl.(l).
     For the paper's operands the sparse map is the identity projection, so
     the level order over tensor dimensions translates directly to
     iteration dimensions. *)
  let dim_of_level l = map.Affine.results.(enc.Encoding.dim_to_lvl.(l)) in
  let r = Encoding.rank enc in
  let sparse_dims = Array.init r dim_of_level in
  let edges = ref [] in
  for l = 0 to r - 2 do
    edges := (sparse_dims.(l), sparse_dims.(l + 1)) :: !edges
  done;
  (* Kahn's algorithm preferring smaller dim index (textual order). *)
  let indeg = Array.make n 0 in
  List.iter (fun (_, b) -> indeg.(b) <- indeg.(b) + 1) !edges;
  let order = Array.make n (-1) in
  let placed = Array.make n false in
  let next = ref 0 in
  (try
     for slot = 0 to n - 1 do
       let d = ref (-1) in
       for cand = n - 1 downto 0 do
         if (not placed.(cand)) && indeg.(cand) = 0 then d := cand
       done;
       if !d < 0 then raise (Cycle "iteration graph has a cycle");
       placed.(!d) <- true;
       order.(slot) <- !d;
       incr next;
       List.iter
         (fun (a, b) -> if a = !d then indeg.(b) <- indeg.(b) - 1)
         !edges
     done
   with Cycle _ as e -> raise e);
  { n; edges = !edges; order; sparse_dims }

(** Dimensions that are not stored by the sparse operand: they become the
    innermost dense loops (e.g. SpMM's k), in iteration order. *)
let dense_only_dims (g : t) =
  Array.to_list g.order
  |> List.filter (fun d -> not (Array.exists (Int.equal d) g.sparse_dims))

(** [to_string g] draws the graph in the Fig. 4 spirit. *)
let to_string (g : t) =
  let names = Affine.dim_names g.n in
  Printf.sprintf "dims: %s\nedges: %s\norder: %s"
    (String.concat ", " (Array.to_list names))
    (String.concat ", "
       (List.map
          (fun (a, b) -> Printf.sprintf "%s->%s" names.(a) names.(b))
          g.edges))
    (String.concat " "
       (Array.to_list (Array.map (fun d -> names.(d)) g.order)))
