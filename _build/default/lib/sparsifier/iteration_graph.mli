(** Iteration graphs (paper §3.1, Fig. 4; Kjolstad's sparse iteration
    theory).

    Nodes are iteration-space dimensions; an edge [d1 -> d2] records that
    [d1] must be iterated before [d2]. Sparse operands contribute the
    edges of their coordinate hierarchy; dense operands add no hard
    constraints. *)

module Kernel = Asap_lang.Kernel

type t = {
  n : int;                     (** iteration-space rank *)
  edges : (int * int) list;    (** (before, after) *)
  order : int array;           (** topological iteration order *)
  sparse_dims : int array;     (** dims in sparse level order *)
}

exception Cycle of string

(** [build k] constructs the graph and a topological order preferring the
    textual dimension order (which, with [sorted = true], reproduces
    MLIR's no-reorder behaviour).
    @raise Cycle if the constraints are unsatisfiable. *)
val build : Kernel.t -> t

(** Dimensions not stored by the sparse operand: they become the innermost
    dense loops (e.g. SpMM's k), in iteration order. *)
val dense_only_dims : t -> int list

(** [to_string g] draws the graph in the Fig. 4 spirit. *)
val to_string : t -> string
