(* Driver: kernel -> verified imperative IR.

   Thin wrapper over [Emitter.compile] that always runs the IR verifier, so
   that every compilation path in examples, tests and benches produces
   well-formed functions. *)

module Kernel = Asap_lang.Kernel
open Asap_ir

type t = Emitter.compiled

(** [run ?hook ?fn_name k] sparsifies kernel [k]; [hook] is the prefetch
    injection point (see {!Access.hook}). *)
let run ?hook ?fn_name (k : Kernel.t) : t =
  let compiled = Emitter.compile ?hook ?fn_name k in
  (match Verify.check_result compiled.Emitter.fn with
   | Ok () -> ()
   | Error m ->
     invalid_arg
       (Printf.sprintf "sparsify %s: generated ill-formed IR: %s"
          compiled.Emitter.fn.Ir.fn_name m));
  compiled

(** [listing c] is the MLIR-flavoured text of the generated function. *)
let listing (c : t) = Printer.to_string c.Emitter.fn
