lib/core/tuning.mli: Asap_sim Asap_tensor Pipeline
