lib/core/pipeline.mli: Asap_ir Asap_lang Asap_prefetch Asap_sparsifier Ir
