lib/core/reference.mli: Asap_tensor
