lib/core/bindings.ml: Array Asap_ir Asap_sim Asap_sparsifier Asap_tensor Bytes Ir List Printf
