lib/core/bindings.mli: Asap_ir Asap_sim Asap_sparsifier Asap_tensor Bytes Ir
