lib/core/driver.ml: Array Asap_lang Asap_sim Asap_sparsifier Asap_tensor Bindings Bytes Float List Option Pipeline Reference
