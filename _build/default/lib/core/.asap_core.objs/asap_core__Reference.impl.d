lib/core/reference.ml: Array Asap_tensor
