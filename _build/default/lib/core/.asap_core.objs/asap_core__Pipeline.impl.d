lib/core/pipeline.ml: Asap_ir Asap_lang Asap_prefetch Asap_sparsifier Fold Ir Licm Printer
