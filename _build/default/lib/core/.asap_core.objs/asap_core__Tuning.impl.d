lib/core/tuning.ml: Array Asap_lang Asap_prefetch Asap_sim Asap_tensor Bindings Buffer List Option Pipeline Printf
