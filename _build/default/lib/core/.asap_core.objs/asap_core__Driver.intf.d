lib/core/driver.mli: Asap_sim Asap_sparsifier Asap_tensor Bytes Pipeline
