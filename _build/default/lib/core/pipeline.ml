(* Compilation pipeline: kernel + encoding + prefetch variant -> IR.

   The three implementation variants of the paper's §4.3:
   - [Baseline]: sparsification only, no software prefetching;
   - [Asap]: sparsification with the ASaP injection hook (§3);
   - [Ainsworth_jones]: sparsification followed by the post-hoc low-level
     pass, mirroring the prior-art compilation flow. *)

module Kernel = Asap_lang.Kernel
module Sparsify = Asap_sparsifier.Sparsify
module Emitter = Asap_sparsifier.Emitter
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
open Asap_ir

type variant =
  | Baseline
  | Asap of Asap.config
  | Ainsworth_jones of Aj.config

let variant_name = function
  | Baseline -> "baseline"
  | Asap _ -> "asap"
  | Ainsworth_jones _ -> "ainsworth-jones"

type compiled = {
  cc : Emitter.compiled;        (* parameter layout and kernel metadata *)
  fn : Ir.func;                 (* final function (after post-hoc passes) *)
  variant : variant;
  n_prefetch_sites : int;       (* sites instrumented by the variant *)
}

(** [compile ?optimize k variant] lowers kernel [k] and applies the
    variant's prefetching. [optimize] additionally runs constant folding
    and LICM over the final IR (off by default: the emitter already places
    constants and invariants well, so the passes mainly serve IR built by
    other front ends). *)
let compile ?(optimize = false) (k : Kernel.t) (variant : variant) : compiled =
  let c =
    match variant with
    | Baseline ->
      let cc = Sparsify.run k in
      { cc; fn = cc.Emitter.fn; variant; n_prefetch_sites = 0 }
    | Asap cfg ->
      let cc = Sparsify.run ~hook:(Asap.hook cfg) k in
      { cc; fn = cc.Emitter.fn; variant; n_prefetch_sites = cc.Emitter.n_sites }
    | Ainsworth_jones cfg ->
      let cc = Sparsify.run k in
      let fn, stats = Aj.run ~cfg cc.Emitter.fn in
      { cc; fn; variant; n_prefetch_sites = stats.Aj.matched_sites }
  in
  if optimize then begin
    let fn, _ = Fold.run c.fn in
    let fn, _ = Licm.run fn in
    { c with fn }
  end
  else c

let listing c = Printer.to_string c.fn
