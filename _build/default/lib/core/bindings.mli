(** Runtime binding: matching a compiled function's parameters to packed
    sparse storage, dense operands and dimension extents. *)

module Storage = Asap_tensor.Storage
module Emitter = Asap_sparsifier.Emitter
module Runtime = Asap_sim.Runtime
open Asap_ir

(** [float_to_bytes a] converts 0/1-valued floats to the i8 buffer of a
    binary (pattern) matrix. *)
val float_to_bytes : float array -> Bytes.t

(** [vals_rbuf ~binary vals] is the runtime buffer for sparse values. *)
val vals_rbuf : binary:bool -> float array -> Runtime.rbuf

(** [storage_bufs c st ~binary ~dense] resolves every buffer parameter of
    [c]: pos/crd/vals from [st], dense operands from the association list
    (operand name -> runtime buffer).
    @raise Invalid_argument on missing bindings. *)
val storage_bufs :
  Emitter.compiled -> Storage.t -> binary:bool ->
  dense:(string * Runtime.rbuf) list -> (Ir.buffer * Runtime.rbuf) list

(** [scalar_args c ~extents] is the scalar argument list (iteration-space
    extents) in parameter order. *)
val scalar_args : Emitter.compiled -> extents:int array -> int list
