(* Runtime binding: matching a compiled function's parameters to packed
   sparse storage, dense operands and dimension extents. *)

module Storage = Asap_tensor.Storage
module Emitter = Asap_sparsifier.Emitter
module Runtime = Asap_sim.Runtime
open Asap_ir

(** [float_to_bytes a] converts 0/1-valued floats to the i8 buffer of a
    binary (pattern) matrix. *)
let float_to_bytes (a : float array) =
  let b = Bytes.create (Array.length a) in
  Array.iteri (fun i v -> Bytes.set_uint8 b i (if v <> 0. then 1 else 0)) a;
  b

(** [vals_rbuf ~binary vals] is the runtime buffer for the sparse values. *)
let vals_rbuf ~binary vals =
  if binary then Runtime.RB (float_to_bytes vals) else Runtime.RF vals

(** [storage_bufs c st ~binary ~dense] resolves every buffer parameter of
    [c]: pos/crd/vals from the packed storage [st], dense operands from the
    [dense] association list (operand name -> runtime buffer). *)
let storage_bufs (c : Emitter.compiled) (st : Storage.t) ~binary
    ~(dense : (string * Runtime.rbuf) list) :
    (Ir.buffer * Runtime.rbuf) list =
  List.map
    (fun ((buf : Ir.buffer), binding) ->
      let data =
        match binding with
        | Emitter.Bpos l ->
          (match Storage.pos_buf st l with
           | Some pos -> Runtime.RI pos
           | None ->
             invalid_arg
               (Printf.sprintf "Bindings: level %d has no pos buffer" l))
        | Emitter.Bcrd l ->
          (match Storage.crd_buf st l with
           | Some crd -> Runtime.RI crd
           | None ->
             invalid_arg
               (Printf.sprintf "Bindings: level %d has no crd buffer" l))
        | Emitter.Bvals -> vals_rbuf ~binary st.Storage.vals
        | Emitter.Bdense name ->
          (match List.assoc_opt name dense with
           | Some rb -> rb
           | None -> invalid_arg ("Bindings: missing dense operand " ^ name))
      in
      (buf, data))
    c.Emitter.buffers

(** [scalar_args c ~extents] is the scalar argument list (iteration-space
    extents) in parameter order. *)
let scalar_args (c : Emitter.compiled) ~(extents : int array) : int list =
  List.map
    (fun ((_ : Ir.value), dim) ->
      if dim < 0 || dim >= Array.length extents then
        invalid_arg "Bindings.scalar_args: extent missing for dimension";
      extents.(dim))
    c.Emitter.scalars
