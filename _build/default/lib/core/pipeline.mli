(** Compilation pipeline: kernel + encoding + prefetch variant -> IR.

    The three implementation variants of the paper's §4.3. *)

module Kernel = Asap_lang.Kernel
module Emitter = Asap_sparsifier.Emitter
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
open Asap_ir

type variant =
  | Baseline                       (** sparsification only *)
  | Asap of Asap.config            (** ASaP hook during sparsification *)
  | Ainsworth_jones of Aj.config   (** post-hoc low-level pass *)

val variant_name : variant -> string

type compiled = {
  cc : Emitter.compiled;       (** parameter layout and kernel metadata *)
  fn : Ir.func;                (** final function, post-hoc passes applied *)
  variant : variant;
  n_prefetch_sites : int;      (** sites instrumented by the variant *)
}

(** [compile ?optimize k variant] lowers kernel [k] and applies the
    variant's prefetching; the generated IR is always verified.
    [optimize] additionally runs {!Asap_ir.Fold} and {!Asap_ir.Licm}
    (default off — the emitter already canonicalises its output). *)
val compile : ?optimize:bool -> Kernel.t -> variant -> compiled

(** [listing c] is the MLIR-flavoured text of the final function. *)
val listing : compiled -> string
