(* Reference kernel implementations over the COO exchange form.

   Plain OCaml, no IR, no simulator: the ground truth the interpreted
   sparsified code is checked against in tests and examples. *)

module Coo = Asap_tensor.Coo

(** [spmv coo c] computes a = B c. *)
let spmv (coo : Coo.t) (c : float array) : float array =
  if Coo.rank coo <> 2 then invalid_arg "Reference.spmv: not a matrix";
  if Array.length c <> coo.Coo.dims.(1) then
    invalid_arg "Reference.spmv: vector length mismatch";
  let a = Array.make coo.Coo.dims.(0) 0. in
  Array.iteri
    (fun k cd -> a.(cd.(0)) <- a.(cd.(0)) +. (coo.Coo.vals.(k) *. c.(cd.(1))))
    coo.Coo.coords;
  a

(** [spmm coo cm ~n] computes A = B C with row-major C of [n] columns. *)
let spmm (coo : Coo.t) (cm : float array) ~n : float array =
  if Coo.rank coo <> 2 then invalid_arg "Reference.spmm: not a matrix";
  if Array.length cm <> coo.Coo.dims.(1) * n then
    invalid_arg "Reference.spmm: C shape mismatch";
  let a = Array.make (coo.Coo.dims.(0) * n) 0. in
  Array.iteri
    (fun idx cd ->
      let i = cd.(0) and j = cd.(1) in
      let v = coo.Coo.vals.(idx) in
      for k = 0 to n - 1 do
        a.((i * n) + k) <- a.((i * n) + k) +. (v *. cm.((j * n) + k))
      done)
    coo.Coo.coords;
  a

(** [ttv coo c] computes the rank-3 contraction a(i,j) = B(i,j,k) c(k),
    row-major over (i, j). *)
let ttv (coo : Coo.t) (c : float array) : float array =
  if Coo.rank coo <> 3 then invalid_arg "Reference.ttv: not rank 3";
  if Array.length c <> coo.Coo.dims.(2) then
    invalid_arg "Reference.ttv: vector length mismatch";
  let nj = coo.Coo.dims.(1) in
  let a = Array.make (coo.Coo.dims.(0) * nj) 0. in
  Array.iteri
    (fun k cd ->
      let off = (cd.(0) * nj) + cd.(1) in
      a.(off) <- a.(off) +. (coo.Coo.vals.(k) *. c.(cd.(2))))
    coo.Coo.coords;
  a

(** Boolean SpMV for binary matrices: a_i |= B_ij & c_j (paper §4.2). *)
let spmv_binary (coo : Coo.t) (c : int array) : int array =
  let a = Array.make coo.Coo.dims.(0) 0 in
  Array.iteri
    (fun k cd ->
      let b = if coo.Coo.vals.(k) <> 0. then 1 else 0 in
      a.(cd.(0)) <- a.(cd.(0)) lor (b land c.(cd.(1))))
    coo.Coo.coords;
  a

(** Element-wise reference over dense expansions: union add. *)
let ewise_add (b : Coo.t) (c : Coo.t) : float array =
  let db = Coo.to_dense b and dc = Coo.to_dense c in
  Array.mapi (fun i x -> x +. dc.(i)) db

(** Element-wise reference: intersection multiply. *)
let ewise_mul (b : Coo.t) (c : Coo.t) : float array =
  let db = Coo.to_dense b and dc = Coo.to_dense c in
  Array.mapi (fun i x -> x *. dc.(i)) db

(** Boolean SpMM. *)
let spmm_binary (coo : Coo.t) (cm : int array) ~n : int array =
  let a = Array.make (coo.Coo.dims.(0) * n) 0 in
  Array.iteri
    (fun idx cd ->
      let i = cd.(0) and j = cd.(1) in
      let b = if coo.Coo.vals.(idx) <> 0. then 1 else 0 in
      for k = 0 to n - 1 do
        a.((i * n) + k) <- a.((i * n) + k) lor (b land cm.((j * n) + k))
      done)
    coo.Coo.coords;
  a
