lib/tensor/matrix_market.ml: Array Buffer Coo Fun In_channel List Printf Seq String
