lib/tensor/encoding.mli:
