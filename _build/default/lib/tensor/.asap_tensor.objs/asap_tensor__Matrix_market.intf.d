lib/tensor/matrix_market.mli: Coo Seq
