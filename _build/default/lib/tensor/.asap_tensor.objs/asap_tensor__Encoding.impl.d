lib/tensor/encoding.ml: Array Fun List Printf String
