lib/tensor/storage.mli: Coo Encoding
