lib/tensor/coord_tree.mli: Storage
