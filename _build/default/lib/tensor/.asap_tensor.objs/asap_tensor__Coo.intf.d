lib/tensor/coo.mli:
