lib/tensor/coord_tree.ml: Array Buffer Encoding List Printf Storage String
