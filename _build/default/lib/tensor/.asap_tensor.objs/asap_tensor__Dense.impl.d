lib/tensor/dense.ml: Array Float
