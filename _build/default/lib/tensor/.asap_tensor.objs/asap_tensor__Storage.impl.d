lib/tensor/storage.ml: Array Coo Encoding List Printf String
