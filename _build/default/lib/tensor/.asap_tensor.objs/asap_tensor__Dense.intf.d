lib/tensor/dense.mli:
