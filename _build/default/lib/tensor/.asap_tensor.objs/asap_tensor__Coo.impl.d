lib/tensor/coo.ml: Array Fun List Printf
