(** Segmented buffer storage of coordinate hierarchy trees (paper §2.3).

    Node identity at level [l] is the index of the node among all level-[l]
    nodes, making the child relation purely arithmetic: dense children are
    [node * size + v], compressed children are the positions
    [pos.(node), pos.(node+1)), singleton children are [node] itself. *)

type level_storage =
  | Ldense of { lsize : int }
  | Lcompressed of { pos : int array; crd : int array; unique : bool }
  | Lsingleton of { crd : int array }

type t = {
  enc : Encoding.t;
  dims : int array;
  lvls : level_storage array;
  vals : float array;          (** one value per leaf node *)
}

(** [nnz_of t] is the number of stored leaves (including explicit zeros of
    dense leaf levels). *)
val nnz_of : t -> int

(** [pack enc coo] sorts, deduplicates and serialises [coo] under [enc].
    @raise Invalid_argument on rank mismatch. *)
val pack : Encoding.t -> Coo.t -> t

(** [iter f t] visits every stored leaf with its dimension-order
    coordinates. *)
val iter : (int array -> float -> unit) -> t -> unit

(** [to_coo t] recovers the COO form, dropping explicit zeros. *)
val to_coo : t -> Coo.t

(** [convert enc t] re-packs [t] under a different encoding. *)
val convert : Encoding.t -> t -> t

(** [pos_buf t l] is level [l]'s positions buffer, if it has one. *)
val pos_buf : t -> int -> int array option

(** [crd_buf t l] is level [l]'s coordinates buffer, if it has one. *)
val crd_buf : t -> int -> int array option

(** Total bytes of the serialised form (pos + crd at the encoding's index
    width, values as f64). *)
val footprint_bytes : t -> int

(** [describe t] is a one-line human-readable summary. *)
val describe : t -> string
