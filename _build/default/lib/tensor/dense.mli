(** Dense tensors: the non-annotated operands of a kernel (the vector c of
    SpMV, the matrices A and C of SpMM). Row-major. *)

type t = { dims : int array; data : float array }

val create : int array -> t

(** [of_array dims data] wraps existing data.
    @raise Invalid_argument on size mismatch. *)
val of_array : int array -> float array -> t

(** [init dims f] builds a rank-1 or rank-2 tensor from a coordinate
    function. *)
val init : int array -> (int array -> float) -> t

val get1 : t -> int -> float
val get2 : t -> int -> int -> float
val set1 : t -> int -> float -> unit
val set2 : t -> int -> int -> float -> unit
val copy : t -> t
val fill : t -> float -> unit

(** [max_abs_diff a b] is the largest elementwise difference.
    @raise Invalid_argument on shape mismatch. *)
val max_abs_diff : t -> t -> float
