(* Dense tensors: the non-annotated operands of a linalg.generic
   (the vector c of SpMV, the matrices A and C of SpMM). Row-major. *)

type t = { dims : int array; data : float array }

let create dims =
  let total = Array.fold_left ( * ) 1 dims in
  { dims = Array.copy dims; data = Array.make total 0. }

let of_array dims data =
  let total = Array.fold_left ( * ) 1 dims in
  if Array.length data <> total then
    invalid_arg "Dense.of_array: data length does not match dims";
  { dims = Array.copy dims; data }

let init dims f =
  let t = create dims in
  (match Array.length dims with
   | 1 ->
     for i = 0 to dims.(0) - 1 do
       t.data.(i) <- f [| i |]
     done
   | 2 ->
     for i = 0 to dims.(0) - 1 do
       for j = 0 to dims.(1) - 1 do
         t.data.((i * dims.(1)) + j) <- f [| i; j |]
       done
     done
   | _ -> invalid_arg "Dense.init: rank > 2 unsupported");
  t

let get1 t i = t.data.(i)
let get2 t i j = t.data.((i * t.dims.(1)) + j)
let set1 t i v = t.data.(i) <- v
let set2 t i j v = t.data.((i * t.dims.(1)) + j) <- v

let copy t = { dims = Array.copy t.dims; data = Array.copy t.data }

let fill t v = Array.fill t.data 0 (Array.length t.data) v

(** [max_abs_diff a b] is the largest |a_i - b_i|; raises on shape
    mismatch. Used by tests to compare kernel outputs to references. *)
let max_abs_diff a b =
  if a.dims <> b.dims then invalid_arg "Dense.max_abs_diff: shape mismatch";
  let m = ref 0. in
  Array.iteri
    (fun i x ->
      let d = Float.abs (x -. b.data.(i)) in
      if d > !m then m := d)
    a.data;
  !m
