(* Coordinate hierarchy trees (paper §2.2, Fig. 2).

   A viewable tree form of a packed tensor: levels correspond to storage
   levels, nodes carry coordinate values, root-to-leaf paths enumerate the
   stored elements. Used by examples/tests to check storage construction
   against the paper's Fig. 2 drawings. *)

type node = {
  coord : int option;          (* None for the root *)
  children : node list;
  leaf_value : float option;   (* Some v at leaves *)
}

(** [of_storage t] rebuilds the coordinate hierarchy tree of [t]. *)
let of_storage (t : Storage.t) : node =
  let rank = Encoding.rank t.enc in
  let rec level l node_idx coord =
    if l = rank then
      { coord; children = []; leaf_value = Some t.vals.(node_idx) }
    else
      let children =
        match t.lvls.(l) with
        | Storage.Ldense { lsize } ->
          List.init lsize (fun v -> level (l + 1) ((node_idx * lsize) + v) (Some v))
        | Storage.Lcompressed { pos; crd; _ } ->
          List.init
            (pos.(node_idx + 1) - pos.(node_idx))
            (fun k ->
              let p = pos.(node_idx) + k in
              level (l + 1) p (Some crd.(p)))
        | Storage.Lsingleton { crd } ->
          [ level (l + 1) node_idx (Some crd.(node_idx)) ]
      in
      { coord; children; leaf_value = None }
  in
  (* The root wraps level-0 nodes: for a dense or compressed top level the
     single "segment" of level-0 nodes becomes the root's children. *)
  let top =
    match t.lvls.(0) with
    | Storage.Ldense { lsize } ->
      List.init lsize (fun v -> level 1 v (Some v))
      |> fun cs -> { coord = None; children = cs; leaf_value = None }
    | Storage.Lcompressed { pos; crd; _ } ->
      let cs =
        List.init (pos.(1) - pos.(0)) (fun k ->
            let p = pos.(0) + k in
            level 1 p (Some crd.(p)))
      in
      { coord = None; children = cs; leaf_value = None }
    | Storage.Lsingleton _ -> assert false  (* rejected by Encoding.validate *)
  in
  top

let rec depth n =
  match n.children with
  | [] -> 0
  | cs -> 1 + List.fold_left (fun d c -> max d (depth c)) 0 cs

(* Count stored elements: nodes carrying a value. An empty CSR row is a
   childless inner node, not a leaf. *)
let rec leaf_count n =
  match n.leaf_value with
  | Some _ -> 1
  | None -> List.fold_left (fun k c -> k + leaf_count c) 0 n.children

(** [to_string tree] draws the tree with one node per line, indented by
    level, leaves annotated with their value. *)
let to_string (tree : node) =
  let buf = Buffer.create 256 in
  let rec go indent n =
    (match n.coord with
     | None -> Buffer.add_string buf "(root)\n"
     | Some c ->
       Buffer.add_string buf (String.make indent ' ');
       Buffer.add_string buf (string_of_int c);
       (match n.leaf_value with
        | Some v -> Buffer.add_string buf (Printf.sprintf " = %g" v)
        | None -> ());
       Buffer.add_char buf '\n');
    List.iter (go (indent + 2)) n.children
  in
  go 0 tree;
  Buffer.contents buf
