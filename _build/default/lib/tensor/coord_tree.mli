(** Coordinate hierarchy trees (paper §2.2, Fig. 2).

    A viewable tree form of packed storage: levels correspond to storage
    levels, nodes carry coordinate values, root-to-leaf paths enumerate the
    stored elements. *)

type node = {
  coord : int option;          (** [None] for the root *)
  children : node list;
  leaf_value : float option;   (** [Some v] at value leaves *)
}

(** [of_storage t] rebuilds the coordinate hierarchy tree of [t]. *)
val of_storage : Storage.t -> node

(** [depth n] is the number of levels below [n]. *)
val depth : node -> int

(** [leaf_count n] counts stored elements (childless inner nodes — e.g.
    CSR's empty rows — are not leaves). *)
val leaf_count : node -> int

(** [to_string tree] draws the tree, one node per line, indented by level,
    leaves annotated with their value. *)
val to_string : node -> string
