(** Coordinate-list (COO) exchange form.

    The unsorted tuple list every other representation is built from:
    generators and Matrix Market readers produce it, {!Storage.pack}
    consumes it. *)

type t = {
  dims : int array;          (** tensor shape, one extent per dimension *)
  coords : int array array;  (** [coords.(k)] is the coordinate tuple of
                                 non-zero [k], in dimension order *)
  vals : float array;        (** value of each stored entry *)
}

(** [rank t] is the number of dimensions. *)
val rank : t -> int

(** [nnz t] is the number of stored entries (duplicates included). *)
val nnz : t -> int

(** [create ~dims ~coords ~vals] validates shapes and bounds.
    @raise Invalid_argument on rank or bound violations. *)
val create : dims:int array -> coords:int array array -> vals:float array -> t

(** [of_triples ~rows ~cols triples] builds a matrix from [(i, j, v)]
    triples. *)
val of_triples : rows:int -> cols:int -> (int * int * float) list -> t

(** [compare_perm perm a b] compares coordinate tuples lexicographically
    under a dimension permutation: sort-key position [l] is dimension
    [perm.(l)]. *)
val compare_perm : int array -> int array -> int array -> int

(** [sorted_dedup ?perm t] is a copy of [t] sorted lexicographically by the
    (optionally permuted) dimension order with duplicate coordinates summed
    — the canonical form sparsification's [sorted = true] expects. *)
val sorted_dedup : ?perm:int array -> t -> t

(** [to_dense t] materialises a row-major dense array of the full shape. *)
val to_dense : t -> float array

(** Structural statistics used by workload selection (paper §4.2). *)
type stats = {
  s_rows : int;
  s_cols : int;
  s_nnz : int;
  s_row_min : int;            (** fewest entries in any row *)
  s_row_max : int;            (** most entries in any row *)
  s_row_mean : float;
  s_footprint_bytes : int;    (** CSR bytes at the given index width *)
}

(** [matrix_stats ?index_bytes t] computes {!stats} for a rank-2 tensor.
    @raise Invalid_argument if [t] is not a matrix. *)
val matrix_stats : ?index_bytes:int -> t -> stats
