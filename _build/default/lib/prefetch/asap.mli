(** ASaP prefetch injection (paper §3.2, Fig. 5).

    Runs as a sparsification hook: at every iterate-and-locate site it
    emits

    {v
    1. prefetch crd[jj + 2*distance]              (step 1, §3.2.1)
    2. j_ahead = load crd[min(jj + distance, bound)]   (step 2, §3.2.2)
    3. prefetch target[j_ahead * scale]           (step 3, §3.2.3)
    v}

    The defining difference from prior art is the step-2 bound: ASaP uses
    the sparsification-time knowledge of the whole coordinate buffer's
    size (hoisted to the prologue via the recursive pos-chain of §3.2.2),
    so prefetching crosses segment boundaries. *)

module Access = Asap_sparsifier.Access

(** Where prefetches may be injected relative to the loop nest: the paper
    uses innermost-loop prefetching for SpMV (§5.1) and outer-loop
    prefetching for SpMM (§5.2). *)
type strategy = Innermost_only | Outer_only | Both

(** Step-2 bound selection: [Semantic] is ASaP's whole-buffer bound;
    [Segment_local] clamps to the enclosing loop (the prior-art behaviour,
    kept as an ablation). *)
type bound_mode = Semantic | Segment_local

type config = {
  distance : int;              (** lookahead in iterations (paper: 45) *)
  locality : int;              (** prefetch locality hint (paper: 2) *)
  strategy : strategy;
  bound_mode : bound_mode;
  step1 : bool;                (** emit the step-1 crd prefetch *)
}

(** The paper's configuration: distance 45, locality 2, all sites, semantic
    bounds, step 1 enabled. *)
val default : config

(** [hook cfg] is the sparsification hook implementing the scheme; pass it
    to {!Asap_sparsifier.Sparsify.run}. *)
val hook : config -> Access.hook
