lib/prefetch/ainsworth_jones.mli: Asap_ir Ir
