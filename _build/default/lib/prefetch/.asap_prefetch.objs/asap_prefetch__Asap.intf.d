lib/prefetch/asap.mli: Asap_sparsifier
