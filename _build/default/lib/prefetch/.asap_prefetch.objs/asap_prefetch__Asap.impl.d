lib/prefetch/asap.ml: Asap_ir Asap_sparsifier Builder List
