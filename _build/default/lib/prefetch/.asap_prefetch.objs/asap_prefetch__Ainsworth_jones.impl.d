lib/prefetch/ainsworth_jones.ml: Asap_ir Ir List Rewrite Verify
