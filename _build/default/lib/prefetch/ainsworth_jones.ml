(* Ainsworth & Jones (CGO'17 / TOCS'18) software prefetching, as a post-hoc
   low-level IR pass — the prior-art baseline of the paper.

   The pass sees only the generated IR, with no sparse-tensor semantics. It
   scans *innermost* counted loops for the classic indirection pattern

       %j = memref.load %crd[%iv]        (iv = the loop induction variable)
       ... memref.load %target[%j] ...

   and injects the same three-step sequence as ASaP, but with the two
   limitations the paper identifies (§3.2.2, §5.3):

   - the step-2 bound is derived by use-def analysis from the enclosing
     loop's upper limit, i.e. it is *segment-local*: the lookahead clamps at
     the end of the current inner loop, so the first [distance] elements of
     every segment are never covered; and
   - only the innermost loop's induction variable is considered, so
     multi-dimensional accesses like SpMM's C[j*N + k] (where j is loaded in
     an enclosing loop) produce no prefetches at all — the published
     artifact behaves the same way.

   Loop-invariant pieces (constants, the hi-1 bound) are hoisted out of the
   loop, as LLVM's LICM would do in the real compilation flow, so the
   per-iteration overhead matches ASaP's. *)

open Asap_ir

type config = { distance : int; locality : int }

let default = { distance = 45; locality = 2 }

type stats = { matched_sites : int; loops_scanned : int }

(* A candidate coordinate: an index-typed value loaded from some buffer at
   the loop's induction variable. *)
let candidates (fl : Ir.forloop) =
  List.filter_map
    (function
      | Ir.Let (v, Ir.Load (crd, idx))
        when idx.Ir.vid = fl.Ir.f_iv.Ir.vid && v.Ir.vty = Ir.Index ->
        Some (v, crd)
      | _ -> None)
    fl.Ir.f_body

(* Buffers loaded at a given candidate value anywhere in the loop body
   (top level: the emitter generates flat innermost bodies). *)
let targets_of (fl : Ir.forloop) (v : Ir.value) =
  List.filter_map
    (function
      | Ir.Let (_, Ir.Load (tgt, idx)) when idx.Ir.vid = v.Ir.vid -> Some tgt
      | _ -> None)
    fl.Ir.f_body

type shared = { c2d : Ir.value; cd : Ir.value; c1 : Ir.value }

let inject supply (cfg : config) (sh : shared) (fl : Ir.forloop)
    (bound : Ir.value) (matches : (Ir.value * Ir.buffer * Ir.buffer list) list)
    =
  let fresh name = Rewrite.fresh supply name Ir.Index in
  let body =
    List.concat_map
      (fun stmt ->
        match stmt with
        | Ir.Let (v, Ir.Load (_, _))
          when List.exists (fun (c, _, _) -> c.Ir.vid = v.Ir.vid) matches ->
          let _, crd, tgts =
            List.find (fun (c, _, _) -> c.Ir.vid = v.Ir.vid) matches
          in
          let seq = ref [] in
          let emit s = seq := s :: !seq in
          let let_ name rv =
            let x = fresh name in
            emit (Ir.Let (x, rv));
            x
          in
          (* Step 1: prefetch crd[iv + 2*distance]. *)
          let i1 = let_ "aj_i1" (Ir.Ibin (Ir.Iadd, fl.Ir.f_iv, sh.c2d)) in
          emit
            (Ir.Prefetch
               { Ir.pbuf = crd; pidx = i1; pwrite = false;
                 plocality = cfg.locality });
          (* Step 2: bounded load with the loop-derived (segment-local)
             bound. *)
          let raw = let_ "aj_raw" (Ir.Ibin (Ir.Iadd, fl.Ir.f_iv, sh.cd)) in
          let clamped = let_ "aj_min" (Ir.Ibin (Ir.Imin, raw, bound)) in
          let ahead = let_ "aj_ahead" (Ir.Load (crd, clamped)) in
          (* Step 3: prefetch each target. *)
          List.iter
            (fun tgt ->
              emit
                (Ir.Prefetch
                   { Ir.pbuf = tgt; pidx = ahead; pwrite = false;
                     plocality = cfg.locality }))
            tgts;
          stmt :: List.rev !seq
        | _ -> [ stmt ])
      fl.Ir.f_body
  in
  { fl with Ir.f_body = body }

(** [run ?cfg fn] applies the pass, returning the rewritten function and
    match statistics. *)
let run ?(cfg = default) (fn : Ir.func) : Ir.func * stats =
  let supply = Rewrite.supply fn in
  let matched = ref 0 and scanned = ref 0 in
  let sh =
    { c2d = Rewrite.fresh supply "aj_c2d" Ir.Index;
      cd = Rewrite.fresh supply "aj_cd" Ir.Index;
      c1 = Rewrite.fresh supply "aj_c1" Ir.Index }
  in
  let used_shared = ref false in
  let rec go_block (blk : Ir.block) : Ir.block =
    List.concat_map go_stmt blk
  and go_stmt (s : Ir.stmt) : Ir.stmt list =
    match s with
    | Ir.Let _ | Ir.Store _ | Ir.Prefetch _ -> [ s ]
    | Ir.While w ->
      [ Ir.While
          { w with Ir.w_cond = go_block w.Ir.w_cond;
                   w_body = go_block w.Ir.w_body } ]
    | Ir.If (c, t, e) -> [ Ir.If (c, go_block t, go_block e) ]
    | Ir.For fl ->
      let fl = { fl with Ir.f_body = go_block fl.Ir.f_body } in
      if Rewrite.contains_for fl.Ir.f_body then [ Ir.For fl ]
      else begin
        incr scanned;
        let ms =
          List.filter_map
            (fun (v, crd) ->
              match targets_of fl v with
              | [] -> None
              | tgts -> Some (v, crd, tgts))
            (candidates fl)
        in
        if ms = [] then [ Ir.For fl ]
        else begin
          matched := !matched + List.length ms;
          used_shared := true;
          (* The segment-local bound hi - 1 is loop-invariant: LICM places
             it just before the loop. *)
          let bound = Rewrite.fresh supply "aj_bound" Ir.Index in
          [ Ir.Let (bound, Ir.Ibin (Ir.Isub, fl.Ir.f_hi, sh.c1));
            Ir.For (inject supply cfg sh fl bound ms) ]
        end
      end
  in
  let body = go_block fn.Ir.fn_body in
  let body =
    if !used_shared then
      Ir.Let (sh.c2d, Ir.Const (Ir.Cidx (2 * cfg.distance)))
      :: Ir.Let (sh.cd, Ir.Const (Ir.Cidx cfg.distance))
      :: Ir.Let (sh.c1, Ir.Const (Ir.Cidx 1))
      :: body
    else body
  in
  let fn' = Rewrite.with_supply { fn with Ir.fn_body = body } supply in
  (match Verify.check_result fn' with
   | Ok () -> ()
   | Error m -> invalid_arg ("ainsworth_jones: broke the IR: " ^ m));
  (fn', { matched_sites = !matched; loops_scanned = !scanned })
