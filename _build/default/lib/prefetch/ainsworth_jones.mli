(** The Ainsworth & Jones (CGO'17/TOCS'18) software-prefetching pass — the
    prior-art baseline, reimplemented as a post-hoc low-level IR pass.

    It sees only generated IR: it scans {e innermost} counted loops for the
    pattern [load target[load crd[iv]]] and injects the same three-step
    sequence as ASaP, but with the two limitations the paper identifies
    (§3.2.2, §5.3): the step-2 bound is derived from the enclosing loop's
    limit (segment-local, so the first [distance] elements of every segment
    are never covered), and only innermost induction variables are
    considered (so SpMM's C[j*N + k] produces no prefetches, as with the
    published artifact). *)

open Asap_ir

type config = { distance : int; locality : int }

val default : config

type stats = { matched_sites : int; loops_scanned : int }

(** [run ?cfg fn] applies the pass; the result is verified before being
    returned. *)
val run : ?cfg:config -> Ir.func -> Ir.func * stats
