(* The synthetic evaluation collection.

   Named matrices organised into the paper's matrix families (Fig. 7/10/11
   group axis). The first six groups are the unstructured "Selected" set;
   "Others" holds the structured matrices. Sizes are chosen for the scaled
   evaluation machine (see Machine.gracemont_scaled): dense-operand
   footprints range from cache-resident to several times the L3 capacity,
   mirroring the paper's top-5% SuiteSparse selection relative to the real
   caches. Generation is lazy (one matrix alive at a time) and
   deterministic. *)

module Coo = Asap_tensor.Coo

type entry = {
  name : string;
  group : string;
  binary : bool;                (* pattern matrix: i8 values, and/or body *)
  spmm : bool;                  (* member of the SpMM (top-10%) subset *)
  gen : unit -> Coo.t;
}

(** The unstructured groups aggregated as "Selected" in Figs. 7 and 11. *)
let selected_groups =
  [ "SNAP"; "DIMACS10"; "GAP"; "LAW"; "MAWI"; "GenBank" ]

let entries : entry list =
  [ (* SNAP: social networks, power-law degrees, no locality. *)
    { name = "soc-pokec"; group = "SNAP"; binary = false; spmm = true;
      gen = (fun () ->
          Generate.power_law ~seed:101 ~rows:140_000 ~cols:140_000
            ~avg_deg:8 ~alpha:2.1 ()) };
    { name = "soc-livejournal"; group = "SNAP"; binary = false; spmm = true;
      gen = (fun () ->
          Generate.power_law ~seed:102 ~rows:180_000 ~cols:180_000
            ~avg_deg:7 ~alpha:2.2 ()) };
    { name = "com-orkut"; group = "SNAP"; binary = false; spmm = false;
      gen = (fun () ->
          Generate.power_law ~seed:103 ~rows:100_000 ~cols:100_000
            ~avg_deg:13 ~alpha:2.0 ()) };
    { name = "wiki-topcats"; group = "SNAP"; binary = false; spmm = false;
      gen = (fun () ->
          Generate.power_law ~seed:104 ~rows:160_000 ~cols:160_000
            ~avg_deg:7 ~alpha:2.3 ()) };
    (* Long-row unstructured matrix (hollywood-style collaboration
       network): segments well beyond the prefetch distance, where the
       prior art's segment-local bound costs nothing. *)
    { name = "hollywood-2009"; group = "SNAP"; binary = false; spmm = false;
      gen = (fun () ->
          Generate.power_law ~seed:105 ~rows:30_000 ~cols:300_000
            ~avg_deg:40 ~alpha:2.0 ~max_deg_frac:0.002 ()) };
    (* DIMACS10: graph-partitioning instances — road meshes and synthetic
       Kronecker graphs. *)
    { name = "road-central"; group = "DIMACS10"; binary = false; spmm = true;
      gen = (fun () -> Generate.road ~seed:201 ~n:280_000 ~deg:3 ()) };
    { name = "road-usa"; group = "DIMACS10"; binary = false; spmm = false;
      gen = (fun () -> Generate.road ~seed:202 ~n:380_000 ~deg:2 ()) };
    { name = "kron-g500n19"; group = "DIMACS10"; binary = false; spmm = true;
      gen = (fun () ->
          Generate.power_law ~seed:203 ~rows:110_000 ~cols:110_000
            ~avg_deg:11 ~alpha:1.9 ()) };
    { name = "coPapersDBLP"; group = "DIMACS10"; binary = false; spmm = false;
      gen = (fun () ->
          Generate.power_law ~seed:204 ~rows:130_000 ~cols:130_000
            ~avg_deg:10 ~alpha:2.4 ~locality:0.3 ()) };
    (* GAP: the GAP benchmark graphs; twitter is the Fig. 12 subject. *)
    { name = "GAP-twitter"; group = "GAP"; binary = false; spmm = true;
      gen = (fun () ->
          Generate.power_law ~seed:301 ~rows:200_000 ~cols:200_000
            ~avg_deg:9 ~alpha:1.8 ()) };
    { name = "GAP-urand"; group = "GAP"; binary = false; spmm = true;
      gen = (fun () ->
          Generate.uniform ~seed:302 ~rows:160_000 ~cols:160_000
            ~nnz:1_200_000 ()) };
    { name = "GAP-web"; group = "GAP"; binary = false; spmm = false;
      gen = (fun () ->
          Generate.power_law ~seed:303 ~rows:190_000 ~cols:190_000
            ~avg_deg:9 ~alpha:1.9 ~locality:0.5 ()) };
    { name = "GAP-road"; group = "GAP"; binary = false; spmm = false;
      gen = (fun () -> Generate.road ~seed:304 ~n:320_000 ~deg:3 ()) };
    { name = "GAP-kron"; group = "GAP"; binary = false; spmm = false;
      gen = (fun () ->
          Generate.power_law ~seed:305 ~rows:40_000 ~cols:250_000
            ~avg_deg:30 ~alpha:1.9 ~max_deg_frac:0.003 ()) };
    (* LAW: web crawls — power law with strong clustering. *)
    { name = "uk-2002"; group = "LAW"; binary = false; spmm = true;
      gen = (fun () ->
          Generate.power_law ~seed:401 ~rows:180_000 ~cols:180_000
            ~avg_deg:10 ~alpha:1.9 ~locality:0.6 ()) };
    { name = "arabic-2005"; group = "LAW"; binary = false; spmm = false;
      gen = (fun () ->
          Generate.power_law ~seed:402 ~rows:150_000 ~cols:150_000
            ~avg_deg:11 ~alpha:1.85 ~locality:0.55 ()) };
    { name = "webbase-2001"; group = "LAW"; binary = false; spmm = false;
      gen = (fun () ->
          Generate.power_law ~seed:403 ~rows:220_000 ~cols:220_000
            ~avg_deg:5 ~alpha:2.1 ~locality:0.5 ()) };
    { name = "eu-2015"; group = "LAW"; binary = false; spmm = false;
      gen = (fun () ->
          Generate.power_law ~seed:404 ~rows:35_000 ~cols:280_000
            ~avg_deg:35 ~alpha:2.0 ~locality:0.4 ~max_deg_frac:0.003 ()) };
    (* MAWI: backbone packet traces — extreme degree skew. *)
    { name = "mawi-201512012345"; group = "MAWI"; binary = false; spmm = true;
      gen = (fun () ->
          Generate.heavy_tail ~seed:501 ~rows:200_000 ~cols:200_000
            ~nnz:1_000_000 ~hubs:64 ()) };
    { name = "mawi-201512020000"; group = "MAWI"; binary = false; spmm = false;
      gen = (fun () ->
          Generate.heavy_tail ~seed:502 ~rows:240_000 ~cols:240_000
            ~nnz:1_100_000 ~hubs:128 ()) };
    (* GenBank: k-mer graphs — near-uniform small degree, pattern-only
       (binary values, §4.2's boolean arithmetic). *)
    { name = "kmer-V2a"; group = "GenBank"; binary = true; spmm = true;
      gen = (fun () ->
          Generate.power_law ~seed:601 ~rows:280_000 ~cols:280_000
            ~avg_deg:4 ~alpha:3.0 ()) };
    { name = "kmer-U1a"; group = "GenBank"; binary = true; spmm = false;
      gen = (fun () ->
          Generate.power_law ~seed:602 ~rows:230_000 ~cols:230_000
            ~avg_deg:4 ~alpha:3.2 ()) };
    (* Others: structured matrices (FEM, stencils, banded) — the paper's
       regression cases with effective hardware prefetching. *)
    { name = "Janna-Serena"; group = "Others"; binary = false; spmm = true;
      gen = (fun () ->
          Generate.fem_blocks ~seed:701 ~nblocks:9_000 ~blk:6 ~reach:1 ()) };
    { name = "stencil2d-500"; group = "Others"; binary = false; spmm = true;
      gen = (fun () -> Generate.stencil_2d ~seed:702 ~side:400 ()) };
    { name = "stencil3d-60"; group = "Others"; binary = false; spmm = false;
      gen = (fun () -> Generate.stencil_3d ~seed:703 ~side:48 ()) };
    { name = "banded-300k"; group = "Others"; binary = false; spmm = false;
      gen = (fun () -> Generate.banded ~seed:704 ~n:200_000 ~band:2 ()) };
    { name = "tridiag-400k"; group = "Others"; binary = false; spmm = false;
      gen = (fun () -> Generate.banded ~seed:705 ~n:260_000 ~band:1 ()) } ]

let groups =
  selected_groups @ [ "Others" ]

let by_group g = List.filter (fun e -> e.group = g) entries

let spmm_subset = List.filter (fun e -> e.spmm) entries

let find name =
  match List.find_opt (fun e -> e.name = name) entries with
  | Some e -> e
  | None -> invalid_arg ("Suite.find: unknown matrix " ^ name)
