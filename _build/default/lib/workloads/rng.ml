(* SplitMix64: a small, fast, deterministic PRNG.

   Benchmarks must be reproducible run-to-run, so all workload generation
   derives from explicit seeds rather than global randomness. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t n] is uniform in [0, n). *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next_int64 t) Int64.max_int)
                  (Int64.of_int n))

(** [float t] is uniform in [0, 1). *)
let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 (* 2^53 *)

(** [power_law t ~alpha ~x_min ~x_max] samples a discrete bounded Pareto
    value via inverse-transform — row degrees of social/web graphs. *)
let power_law t ~alpha ~x_min ~x_max =
  let a1 = 1.0 -. alpha in
  let l = Float.pow (float_of_int x_min) a1 in
  let h = Float.pow (float_of_int (x_max + 1)) a1 in
  let u = float t in
  let x = Float.pow (l +. (u *. (h -. l))) (1.0 /. a1) in
  max x_min (min x_max (int_of_float x))

(** [exponential t ~mean] samples a rounded exponential. *)
let exponential t ~mean =
  let u = Float.max 1e-12 (float t) in
  int_of_float (Float.round (-.mean *. Float.log u))
