lib/workloads/generate.ml: Array Asap_tensor Float List Rng
