lib/workloads/generate.mli: Asap_tensor
