lib/workloads/rng.mli:
