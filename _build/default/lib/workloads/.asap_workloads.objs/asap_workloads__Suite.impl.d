lib/workloads/suite.ml: Asap_tensor Generate List
