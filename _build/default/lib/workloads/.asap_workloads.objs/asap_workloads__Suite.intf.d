lib/workloads/suite.mli: Asap_tensor
