lib/workloads/rng.ml: Float Int64
