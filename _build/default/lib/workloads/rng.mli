(** SplitMix64: a small, fast, deterministic PRNG.

    Benchmarks must be reproducible run to run, so all workload generation
    derives from explicit seeds rather than global randomness. *)

type t

val create : int -> t

val next_int64 : t -> int64

(** [int t n] is uniform in [0, n). @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [power_law t ~alpha ~x_min ~x_max] samples a discrete bounded Pareto
    value via inverse transform — row degrees of social/web graphs. *)
val power_law : t -> alpha:float -> x_min:int -> x_max:int -> int

(** [exponential t ~mean] samples a rounded exponential. *)
val exponential : t -> mean:float -> int
