(** The synthetic evaluation collection.

    Named matrices organised into the paper's matrix families (the group
    axis of Figs. 7/10/11). The first six groups are the unstructured
    "Selected" set; "Others" holds the structured matrices. Generation is
    lazy (one matrix alive at a time) and deterministic. *)

module Coo = Asap_tensor.Coo

type entry = {
  name : string;
  group : string;
  binary : bool;               (** pattern matrix: i8 values, and/or body *)
  spmm : bool;                 (** member of the SpMM (top-10%) subset *)
  gen : unit -> Coo.t;
}

(** The unstructured groups aggregated as "Selected" in Figs. 7 and 11. *)
val selected_groups : string list

val entries : entry list

(** All group names, "Others" last. *)
val groups : string list

val by_group : string -> entry list

val spmm_subset : entry list

(** [find name] looks an entry up. @raise Invalid_argument when unknown. *)
val find : string -> entry
