(* Machine configuration: the simulated stand-in for the paper's
   experimental platform (Table 1: Alder Lake i9-12900K E-cores, Gracemont)
   and its per-prefetcher controls (Table 2).

   Absolute timings are calibrated for shape, not cycle-accuracy: the core
   model's [rob] is the *effective* out-of-order window (bounded in practice
   by the load queue and scheduler, far below the nominal ROB size), which
   sets the memory-level parallelism a non-prefetched run can extract. *)

(** Table 2: which hardware prefetchers are enabled. *)
type hw_config = {
  l1_nlp : bool;
  l1_ipp : bool;
  l2_nlp : bool;
  mlc_streamer : bool;
  l2_amp : bool;
  llc_streamer : bool;
}

(** Out-of-the-box processor state ("Default On/Off" column of Table 2). *)
let hw_default =
  { l1_nlp = true; l1_ipp = true; l2_nlp = false; mlc_streamer = true;
    l2_amp = true; llc_streamer = true }

(** The paper's optimized setting: L1 NLP and L2 AMP disabled ("Setting"
    column of Table 2, SpMV configuration). *)
let hw_optimized = { hw_default with l1_nlp = false; l2_amp = false }

(** SpMM keeps the AMP enabled to exploit 2-D strides (Table 2). *)
let hw_optimized_spmm = { hw_default with l1_nlp = false }

type t = {
  label : string;
  (* Core *)
  width : int;                 (* issue width, instructions/cycle *)
  rob : int;                   (* effective OoO window, instructions *)
  branch_miss : int;           (* mispredict penalty, cycles *)
  freq_ghz : float;
  (* Memory hierarchy *)
  line_bytes : int;
  l1_kb : int; l1_ways : int; lat_l1 : int;
  l2_kb : int; l2_ways : int; lat_l2 : int;
  l3_kb : int; l3_ways : int; lat_l3 : int;
  mshrs : int;                 (* outstanding misses beyond L2, per cluster *)
  dram_latency : int;          (* cycles *)
  dram_gap : int;              (* cycles per line at full bandwidth *)
  (* Topology *)
  cores : int;
  cores_per_cluster : int;
  hw : hw_config;
}

(** [gracemont ()] models one E-core cluster of the i9-12900K per Table 1:
    2.4 GHz fixed, 32 KB L1D, 2 MB shared L2 per 4-core cluster, 30 MB L3,
    DDR5-4800 dual channel. *)
let gracemont ?(hw = hw_default) ?(cores = 1) () =
  { label = "Intel i9-12900K E-core (Gracemont), simulated";
    width = 3; rob = 96; branch_miss = 6; freq_ghz = 2.4;
    line_bytes = 64;
    l1_kb = 32; l1_ways = 8; lat_l1 = 3;
    l2_kb = 2048; l2_ways = 16; lat_l2 = 17;
    (* Table 1 says 30 MB/12-way; the tag model needs power-of-two sets,
       so the nearest valid geometry is used. *)
    l3_kb = 32 * 1024; l3_ways = 16; lat_l3 = 50;
    mshrs = 32;
    dram_latency = 210; dram_gap = 2;
    cores; cores_per_cluster = 4; hw }

(** [gracemont_scaled ()] is the evaluation machine: identical core and
    latency parameters, cache capacities scaled 1:8 so that the synthetic
    collection's footprints relate to the caches the way the paper's top-5%
    SuiteSparse matrices relate to the real 2 MB/30 MB hierarchy, while
    keeping simulation tractable. *)
let gracemont_scaled ?(hw = hw_default) ?(cores = 1) () =
  { (gracemont ~hw ~cores ()) with
    label = "Gracemont (simulated, caches scaled down)";
    l1_kb = 8; l1_ways = 8;
    l2_kb = 128; l2_ways = 16;
    l3_kb = 1024; l3_ways = 16 }

let clusters t = (t.cores + t.cores_per_cluster - 1) / t.cores_per_cluster

(** [cycles_to_ms t c] converts simulated cycles to milliseconds. *)
let cycles_to_ms t c = float_of_int c /. (t.freq_ghz *. 1e6)

(** [table1 t] renders the Table 1 configuration dump. *)
let table1 t =
  String.concat "\n"
    [ Printf.sprintf "Processor            | %s" t.label;
      Printf.sprintf "Microarchitecture    | Gracemont (E-cores)";
      Printf.sprintf "Cores                | %d, %d per cluster sharing L2"
        t.cores t.cores_per_cluster;
      Printf.sprintf "Frequency            | %.1f GHz, fixed" t.freq_ghz;
      Printf.sprintf "L1D / L2             | %d KB / %s per cluster" t.l1_kb
        (if t.l2_kb >= 1024 then Printf.sprintf "%d MB" (t.l2_kb / 1024)
         else Printf.sprintf "%d KB" t.l2_kb);
      Printf.sprintf "L3                   | %s (inclusive)"
        (if t.l3_kb >= 1024 then Printf.sprintf "%d MB" (t.l3_kb / 1024)
         else Printf.sprintf "%d KB" t.l3_kb);
      Printf.sprintf "DRAM                 | latency %d cyc, %d cyc/line"
        t.dram_latency t.dram_gap;
      Printf.sprintf "Core model           | %d-wide, window %d, br-miss %d cyc"
        t.width t.rob t.branch_miss;
      Printf.sprintf "MSHRs                | %d per cluster" t.mshrs ]

(** [table2 hw] renders the Table 2 prefetcher settings. *)
let table2 hw =
  let onoff b = if b then "On" else "Off" in
  String.concat "\n"
    [ Printf.sprintf "L1 NLP        | next line on L1 miss           | %s"
        (onoff hw.l1_nlp);
      Printf.sprintf "L1 IPP        | per-PC strides (2 streams)     | %s"
        (onoff hw.l1_ipp);
      Printf.sprintf "L2 NLP        | next line on L2 miss           | %s"
        (onoff hw.l2_nlp);
      Printf.sprintf "MLC Streamer  | sequential streams into L2     | %s"
        (onoff hw.mlc_streamer);
      Printf.sprintf "L2 AMP        | repeated-delta (2-D) prefetch  | %s"
        (onoff hw.l2_amp);
      Printf.sprintf "LLC Streamer  | sequential streams into L3     | %s"
        (onoff hw.llc_streamer) ]
