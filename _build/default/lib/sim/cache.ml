(* Set-associative cache tag store with LRU replacement.

   Only tags are modelled (data correctness is the interpreter's job).
   Each line remembers its provenance — demand fill or the id of the
   prefetcher that brought it in — so prefetch-accuracy counters can tell
   useful prefetches from pollution. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bits : int;
  tags : int array;        (* sets*ways; -1 = invalid, else line address *)
  last_use : int array;    (* LRU stamps *)
  prov : int array;        (* provenance: demand = -1, else prefetcher id *)
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
  mutable pf_hits : int;   (* demand hits on prefetched lines *)
}

let demand_prov = -1

let create ~name ~size_bytes ~ways ~line_bytes =
  let lines = size_bytes / line_bytes in
  if lines mod ways <> 0 then invalid_arg "Cache.create: geometry";
  let sets = lines / ways in
  if sets land (sets - 1) <> 0 then invalid_arg "Cache.create: sets not 2^k";
  let line_bits =
    int_of_float (Float.round (Float.log2 (float_of_int line_bytes)))
  in
  { name; sets; ways; line_bits;
    tags = Array.make (sets * ways) (-1);
    last_use = Array.make (sets * ways) 0;
    prov = Array.make (sets * ways) demand_prov;
    stamp = 0; hits = 0; misses = 0; pf_hits = 0 }

let set_of t line = (line land (t.sets - 1)) * t.ways

(* Way index of [line] or -1. *)
let find t line =
  let base = set_of t line in
  let rec go w =
    if w = t.ways then -1
    else if t.tags.(base + w) = line then base + w
    else go (w + 1)
  in
  go 0

(** [lookup t line] checks for [line], updating LRU and hit/miss counters.
    Returns the provenance of the line on a hit. *)
let lookup t line : int option =
  t.stamp <- t.stamp + 1;
  let i = find t line in
  if i >= 0 then begin
    t.hits <- t.hits + 1;
    t.last_use.(i) <- t.stamp;
    let p = t.prov.(i) in
    if p <> demand_prov then begin
      t.pf_hits <- t.pf_hits + 1;
      (* After the first demand use the line counts as demand-resident. *)
      t.prov.(i) <- demand_prov
    end;
    Some p
  end
  else begin
    t.misses <- t.misses + 1;
    None
  end

(** [probe t line] tests presence without touching LRU or counters. *)
let probe t line = find t line >= 0

(** [insert t line ~prov] installs [line], evicting the LRU way. No-op if
    already present (refreshes LRU). *)
let insert t line ~prov =
  t.stamp <- t.stamp + 1;
  let i = find t line in
  if i >= 0 then t.last_use.(i) <- t.stamp
  else begin
    let base = set_of t line in
    let victim = ref base in
    for w = 1 to t.ways - 1 do
      if t.last_use.(base + w) < t.last_use.(!victim) then victim := base + w
    done;
    t.tags.(!victim) <- line;
    t.last_use.(!victim) <- t.stamp;
    t.prov.(!victim) <- prov
  end

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.pf_hits <- 0

let accesses t = t.hits + t.misses
