(** Machine configuration: the simulated stand-in for the paper's
    experimental platform (Table 1: Alder Lake i9-12900K E-cores,
    Gracemont) and its per-prefetcher controls (Table 2).

    Absolute timings are calibrated for shape, not cycle-accuracy: the core
    model's [rob] is the {e effective} out-of-order window (bounded in
    practice by the load queue and scheduler, far below the nominal ROB),
    which sets the memory-level parallelism a non-prefetched run can
    extract. *)

(** Table 2: which hardware prefetchers are enabled. *)
type hw_config = {
  l1_nlp : bool;
  l1_ipp : bool;
  l2_nlp : bool;
  mlc_streamer : bool;
  l2_amp : bool;
  llc_streamer : bool;
}

(** Out-of-the-box processor state ("Default" column of Table 2). *)
val hw_default : hw_config

(** The paper's optimized SpMV setting: L1 NLP and L2 AMP disabled. *)
val hw_optimized : hw_config

(** The SpMM setting: only L1 NLP disabled (AMP kept for 2-D strides). *)
val hw_optimized_spmm : hw_config

type t = {
  label : string;
  width : int;                 (** issue width, instructions/cycle *)
  rob : int;                   (** effective OoO window, instructions *)
  branch_miss : int;           (** mispredict penalty, cycles *)
  freq_ghz : float;
  line_bytes : int;
  l1_kb : int; l1_ways : int; lat_l1 : int;
  l2_kb : int; l2_ways : int; lat_l2 : int;
  l3_kb : int; l3_ways : int; lat_l3 : int;
  mshrs : int;                 (** outstanding misses beyond L2, per cluster *)
  dram_latency : int;
  dram_gap : int;              (** cycles per line at full bandwidth *)
  cores : int;
  cores_per_cluster : int;
  hw : hw_config;
}

(** [gracemont ()] models one E-core cluster of the i9-12900K per
    Table 1. *)
val gracemont : ?hw:hw_config -> ?cores:int -> unit -> t

(** [gracemont_scaled ()] is the evaluation machine: identical core and
    latency parameters with cache capacities scaled down so the synthetic
    collection's footprints relate to the caches as the paper's top-5%
    SuiteSparse selection relates to the real hierarchy. *)
val gracemont_scaled : ?hw:hw_config -> ?cores:int -> unit -> t

(** [clusters t] is the number of L2 clusters. *)
val clusters : t -> int

(** [cycles_to_ms t c] converts simulated cycles to milliseconds at the
    machine's frequency. *)
val cycles_to_ms : t -> int -> float

(** [table1 t] renders the Table-1-style configuration dump. *)
val table1 : t -> string

(** [table2 hw] renders the Table-2-style prefetcher settings. *)
val table2 : hw_config -> string
