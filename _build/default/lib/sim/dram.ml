(* DRAM channel: fixed access latency plus a line-rate bandwidth limit.

   One shared channel serves all fills (demand and prefetch alike) at one
   cache line per [gap] cycles, so inaccurate prefetches delay useful
   traffic — the resource-contention mechanism behind the paper's §5.1
   insight about disabling hardware prefetchers. *)

type t = {
  latency : int;               (* cycles from issue to data *)
  gap : int;                   (* min cycles between line transfers *)
  mutable chan_free : int;     (* next cycle the channel can start a line *)
  mutable lines : int;         (* lines transferred (bandwidth accounting) *)
}

let create ~latency ~gap = { latency; gap; chan_free = 0; lines = 0 }

(** [fill t ~at] schedules one line transfer requested at cycle [at];
    returns the completion cycle. *)
let fill t ~at =
  let start = max at t.chan_free in
  t.chan_free <- start + t.gap;
  t.lines <- t.lines + 1;
  start + t.latency

let reset t =
  t.chan_free <- 0;
  t.lines <- 0
