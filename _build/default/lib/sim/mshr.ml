(* Miss Status Holding Registers: the pool of outstanding fills.

   A demand miss to an in-flight line merges with it. When the pool is
   full, demand misses wait for the earliest completion, while prefetches
   are dropped — matching the hardware behaviour the paper's resource
   argument (§4.1) relies on. *)

type entry = { mutable line : int; mutable done_at : int }

type t = {
  cap : int;
  entries : entry array;
  mutable used : int;
  mutable drops : int;         (* prefetches dropped on a full pool *)
}

let create cap =
  { cap; entries = Array.init cap (fun _ -> { line = -1; done_at = 0 });
    used = 0; drops = 0 }

(** [expire t ~now] retires entries whose fill has completed. *)
let expire t ~now =
  let w = ref 0 in
  for r = 0 to t.used - 1 do
    let e = t.entries.(r) in
    if e.done_at > now then begin
      let d = t.entries.(!w) in
      d.line <- e.line;
      d.done_at <- e.done_at;
      incr w
    end
  done;
  t.used <- !w

(** [find t line] is the completion time of an in-flight fill of [line]. *)
let find t line =
  let rec go i =
    if i = t.used then None
    else if t.entries.(i).line = line then Some t.entries.(i).done_at
    else go (i + 1)
  in
  go 0

let full t = t.used >= t.cap

(** [earliest t] is the soonest completion among in-flight fills. *)
let earliest t =
  if t.used = 0 then None
  else begin
    let m = ref t.entries.(0).done_at in
    for i = 1 to t.used - 1 do
      if t.entries.(i).done_at < !m then m := t.entries.(i).done_at
    done;
    Some !m
  end

let add t line done_at =
  assert (t.used < t.cap);
  let e = t.entries.(t.used) in
  e.line <- line;
  e.done_at <- done_at;
  t.used <- t.used + 1

let reset t =
  t.used <- 0;
  t.drops <- 0
