(** Runtime buffer values and the simulated address space.

    The interpreter computes real results over these buffers while the
    timing model sees their simulated byte addresses. Bases are spaced and
    page-aligned so distinct buffers never share a cache line. *)

open Asap_ir

type rbuf =
  | RI of int array            (** index/position/coordinate buffers *)
  | RF of float array          (** f64 values *)
  | RB of Bytes.t              (** i8 values of binary matrices *)

(** A buffer bound into the address space. *)
type bound = {
  buf : Ir.buffer;
  data : rbuf;
  base : int;                  (** simulated base byte address *)
  ebytes : int;                (** element width for address arithmetic *)
}

val length_of : rbuf -> int

(** [layout fn pairs] assigns addresses to all of the function's buffers;
    the result is indexed by buffer id.
    @raise Invalid_argument on element-kind mismatch, double or missing
    bindings. *)
val layout : Ir.func -> (Ir.buffer * rbuf) list -> bound array

(** Raised by out-of-bounds demand accesses — the access fault the
    paper's step-2 bound must prevent (§3.2). *)
exception Fault of string

(** Formats-and-raises helper for {!Fault}. *)
val fault : ('a, unit, string, 'b) format4 -> 'a

(** [read b i] reads element [i]. @raise Fault when out of bounds. *)
val read : bound -> int -> [ `F of float | `I of int ]

(** [write b i v] writes element [i]. @raise Fault when out of bounds. *)
val write : bound -> int -> [ `F of float | `I of int ] -> unit

(** [addr b i] is the simulated byte address of element [i] (allowed to be
    out of bounds: prefetches never fault). *)
val addr : bound -> int -> int
