lib/sim/exec.ml: Array Asap_ir Hierarchy Interp Ir Machine Multicore Printf Runtime
