lib/sim/hw_prefetcher.ml: Array List
