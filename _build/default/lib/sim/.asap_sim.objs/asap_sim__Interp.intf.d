lib/sim/interp.mli: Asap_ir Ir Runtime
