lib/sim/multicore.ml: Array Asap_ir Effect Hierarchy Interp Machine Option Runtime
