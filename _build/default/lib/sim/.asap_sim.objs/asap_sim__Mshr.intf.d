lib/sim/mshr.mli:
