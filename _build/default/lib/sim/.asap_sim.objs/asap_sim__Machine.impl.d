lib/sim/machine.ml: Printf String
