lib/sim/cache.mli:
