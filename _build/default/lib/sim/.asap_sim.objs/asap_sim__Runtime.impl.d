lib/sim/runtime.ml: Array Asap_ir Bytes Ir List Printf
