lib/sim/interp.ml: Array Asap_ir Bytes Float Ir List Runtime
