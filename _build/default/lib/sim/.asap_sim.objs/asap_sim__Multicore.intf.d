lib/sim/multicore.mli: Asap_ir Hierarchy Interp Machine Runtime
