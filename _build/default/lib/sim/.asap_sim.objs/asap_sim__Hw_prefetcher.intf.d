lib/sim/hw_prefetcher.mli:
