lib/sim/runtime.mli: Asap_ir Bytes Ir
