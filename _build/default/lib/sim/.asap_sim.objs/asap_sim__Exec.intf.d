lib/sim/exec.mli: Asap_ir Hierarchy Ir Machine Runtime
