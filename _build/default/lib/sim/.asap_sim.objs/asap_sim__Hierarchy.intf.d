lib/sim/hierarchy.mli: Machine
