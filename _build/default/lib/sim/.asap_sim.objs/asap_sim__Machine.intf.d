lib/sim/machine.mli:
