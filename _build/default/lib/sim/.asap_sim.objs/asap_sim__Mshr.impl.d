lib/sim/mshr.ml: Array
