lib/sim/dram.mli:
