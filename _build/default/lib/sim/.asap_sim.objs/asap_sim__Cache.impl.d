lib/sim/cache.ml: Array Float
