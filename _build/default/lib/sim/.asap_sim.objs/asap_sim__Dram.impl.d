lib/sim/dram.ml:
