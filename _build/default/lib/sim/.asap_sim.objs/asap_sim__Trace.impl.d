lib/sim/trace.ml: Hashtbl Interp List
