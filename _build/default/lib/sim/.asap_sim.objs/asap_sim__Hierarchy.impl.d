lib/sim/hierarchy.ml: Array Cache Dram Hw_prefetcher List Machine Mshr Option Printf
