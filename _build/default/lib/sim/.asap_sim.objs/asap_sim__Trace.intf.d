lib/sim/trace.mli: Interp
