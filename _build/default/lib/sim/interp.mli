(** Execution-driven interpretation of Ir functions with an
    interval-simulation-style timing model.

    Functional semantics: every operation computes its real value over the
    runtime buffers, so kernel outputs can be checked against references.

    Timing semantics (per core): every SSA value carries a ready time;
    instruction [k] issues at
    [max(k / width, operand ready times, retire of instruction k-R)] where
    [R] is the effective out-of-order window — bounding how far execution
    runs ahead of a stalled miss, which is what limits the memory-level
    parallelism of non-prefetched code. Loads complete when the memory
    system says so; stores and prefetches retire immediately; loop exits
    charge a branch-mispredict bubble. *)

open Asap_ir

(** The memory port: single-core runs wire it to {!Hierarchy} directly;
    multi-core runs route it through effect handlers ({!Multicore}). *)
type mem = {
  m_load : pc:int -> addr:int -> at:int -> int;  (** returns ready time *)
  m_store : pc:int -> addr:int -> at:int -> unit;
  m_prefetch : addr:int -> locality:int -> at:int -> unit;
}

type result = {
  r_cycles : int;
  r_instructions : int;
  r_flops : int;
  r_loads : int;
  r_stores : int;
  r_prefetches : int;
}

(** Raised on dynamic errors (division by zero, bad scalar arity). *)
exception Trap of string

(** [run ?slice ?width ?rob_size ?branch_miss fn ~bufs ~scalars ~mem]
    interprets [fn]. [slice] restricts the outermost loop's iteration range
    (the dense-outer-loop parallelisation); [bufs] is indexed by buffer id
    (see {!Runtime.layout}); [scalars] bind the scalar parameters in
    order.
    @raise Runtime.Fault on out-of-bounds demand accesses.
    @raise Trap on dynamic errors. *)
val run :
  ?slice:int * int -> ?width:int -> ?rob_size:int -> ?branch_miss:int ->
  Ir.func -> bufs:Runtime.bound array -> scalars:int list -> mem:mem ->
  result
