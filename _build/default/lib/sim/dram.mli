(** DRAM channel: fixed access latency plus a line-rate bandwidth limit.

    One shared channel serves all fills (demand and prefetch alike) at one
    cache line per [gap] cycles, so inaccurate prefetches delay useful
    traffic — the resource-contention mechanism behind the paper's §5.1
    insight. *)

type t = {
  latency : int;
  gap : int;
  mutable chan_free : int;
  mutable lines : int;         (** lines transferred (bandwidth counter) *)
}

val create : latency:int -> gap:int -> t

(** [fill t ~at] schedules one line transfer requested at cycle [at];
    returns the completion cycle. *)
val fill : t -> at:int -> int

val reset : t -> unit
