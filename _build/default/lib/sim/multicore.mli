(** Multi-core simulation via effect handlers.

    Each core interprets its slice of the kernel as a fiber that performs
    an effect at every memory event; the scheduler always resumes the fiber
    whose next event is earliest in simulated time, so cores interleave
    deterministically on the shared L2/L3/DRAM resources. This replaces the
    paper's OpenMP dense-outer-loop execution (§4.3). *)

(** [run machine hier fn ~bufs ~scalars ~slices] interprets one copy of
    [fn] per slice (static row partitioning), interleaving their memory
    events on the shared hierarchy [hier]. Returns per-core results. *)
val run :
  Machine.t -> Hierarchy.t -> Asap_ir.Ir.func -> bufs:Runtime.bound array ->
  scalars:int list -> slices:(int * int) array -> Interp.result array
