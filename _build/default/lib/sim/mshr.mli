(** Miss Status Holding Registers: the pool of outstanding fills.

    A demand miss to an in-flight line merges with it. When the pool is
    full, demand misses wait for the earliest completion while prefetches
    are dropped — the resource behaviour the paper's §4.1 argument relies
    on. *)

type t = {
  cap : int;
  entries : entry array;
  mutable used : int;
  mutable drops : int;
}

and entry = { mutable line : int; mutable done_at : int }

val create : int -> t

(** [expire t ~now] retires entries whose fill completed by [now]. *)
val expire : t -> now:int -> unit

(** [find t line] is the completion time of an in-flight fill of [line]. *)
val find : t -> int -> int option

val full : t -> bool

(** [earliest t] is the soonest completion among in-flight fills. *)
val earliest : t -> int option

(** [add t line done_at] registers a fill; the pool must not be full. *)
val add : t -> int -> int -> unit

val reset : t -> unit
