(* Runtime buffer values and the simulated address space.

   The interpreter computes real results over these buffers while the
   timing model sees their simulated byte addresses. Bases are spaced and
   page-aligned so distinct buffers never share a cache line. *)

open Asap_ir

type rbuf =
  | RI of int array            (* index/position/coordinate buffers *)
  | RF of float array          (* f64 values *)
  | RB of Bytes.t              (* i8 values of binary matrices *)

(** A buffer bound into the address space. *)
type bound = {
  buf : Ir.buffer;
  data : rbuf;
  base : int;                  (* simulated base byte address *)
  ebytes : int;                (* element width for address arithmetic *)
}

let length_of = function
  | RI a -> Array.length a
  | RF a -> Array.length a
  | RB b -> Bytes.length b

let check_data (buf : Ir.buffer) data =
  match (buf.Ir.belem, data) with
  | (Ir.EIdx32 | Ir.EIdx64), RI _ -> ()
  | Ir.EF64, RF _ -> ()
  | Ir.EI8, RB _ -> ()
  | _ ->
    invalid_arg
      (Printf.sprintf "Runtime: buffer %s bound to mismatched data"
         buf.Ir.bname)

(** [layout fn pairs] assigns addresses to the function's buffers. The
    result array is indexed by buffer id. *)
let layout (fn : Ir.func) (pairs : (Ir.buffer * rbuf) list) : bound array =
  let page = 4096 in
  let table = Array.make fn.Ir.fn_nbufs None in
  let next = ref page in
  List.iter
    (fun ((buf : Ir.buffer), data) ->
      check_data buf data;
      if buf.Ir.bid < 0 || buf.Ir.bid >= fn.Ir.fn_nbufs then
        invalid_arg "Runtime.layout: buffer id out of range";
      if table.(buf.Ir.bid) <> None then
        invalid_arg ("Runtime.layout: buffer bound twice: " ^ buf.Ir.bname);
      let ebytes = Ir.elem_bytes buf.Ir.belem in
      let bytes = length_of data * ebytes in
      let b = { buf; data; base = !next; ebytes } in
      next := (!next + bytes + page - 1) / page * page;
      next := !next + page;                    (* guard page *)
      table.(buf.Ir.bid) <- Some b)
    pairs;
  Array.mapi
    (fun i -> function
      | Some b -> b
      | None ->
        invalid_arg (Printf.sprintf "Runtime.layout: buffer id %d unbound" i))
    table

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

(** [read b i] reads element [i], raising [Fault] when out of bounds — the
    access fault the step-2 bound must prevent (paper §3.2). *)
let read (b : bound) i =
  let n = length_of b.data in
  if i < 0 || i >= n then
    fault "load %s[%d] out of bounds [0, %d)" b.buf.Ir.bname i n;
  match b.data with
  | RI a -> `I a.(i)
  | RF a -> `F a.(i)
  | RB s -> `I (Bytes.get_uint8 s i)

let write (b : bound) i v =
  let n = length_of b.data in
  if i < 0 || i >= n then
    fault "store %s[%d] out of bounds [0, %d)" b.buf.Ir.bname i n;
  match (b.data, v) with
  | RI a, `I x -> a.(i) <- x
  | RF a, `F x -> a.(i) <- x
  | RB s, `I x -> Bytes.set_uint8 s i (x land 0xff)
  | (RF _ | RB _ | RI _), _ -> fault "store %s: value kind mismatch" b.buf.Ir.bname

(** [addr b i] is the simulated byte address of element [i] (allowed to be
    out of bounds: prefetches never fault). *)
let addr (b : bound) i = b.base + (i * b.ebytes)
