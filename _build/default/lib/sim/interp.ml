(* Execution-driven interpretation of Ir functions with an
   interval-simulation-style timing model.

   Functional semantics: every operation computes its real value over the
   runtime buffers, so kernel outputs can be checked against references.

   Timing semantics (per core):
   - every SSA value carries a ready time;
   - instruction k issues at
       max(k / width, operand ready times, retire time of instruction k-R)
     where R is the effective out-of-order window — the ring of retire
     times bounds how far execution can run ahead of a stalled miss, which
     is what limits the memory-level parallelism of non-prefetched code;
   - loads complete when the memory system says the data is ready; stores
     and prefetches retire immediately (store buffer / no-fault semantics);
   - loop exits charge a branch-mispredict bubble, so short inner segments
     pay the loop-overhead costs the paper associates with short rows. *)

open Asap_ir

(** The memory port: single-core runs wire it to {!Hierarchy} directly,
    multi-core runs route it through effect handlers (see {!Multicore}). *)
type mem = {
  m_load : pc:int -> addr:int -> at:int -> int;     (* returns ready time *)
  m_store : pc:int -> addr:int -> at:int -> unit;
  m_prefetch : addr:int -> locality:int -> at:int -> unit;
}

type result = {
  r_cycles : int;
  r_instructions : int;
  r_flops : int;
  r_loads : int;
  r_stores : int;
  r_prefetches : int;
}

exception Trap of string

let int_lat = 1
let fp_lat = 3
let st_lat = 1

let run ?slice ?(width = 3) ?(rob_size = 64) ?(branch_miss = 6)
    (fn : Ir.func) ~(bufs : Runtime.bound array) ~(scalars : int list)
    ~(mem : mem) : result =
  let n = fn.Ir.fn_nvalues in
  let ienv = Array.make n 0 in
  let fenv = Array.make n 0. in
  let ready = Array.make n 0 in
  (* Core state. *)
  let rob_n = rob_size in
  let rob = Array.make rob_n 0 in
  let icount = ref 0 in
  let last_retire = ref 0 in
  let bubble = ref 0 in
  let flops = ref 0 and loads = ref 0 and stores = ref 0 and pfs = ref 0 in
  let issue ops_ready =
    let slot = !icount mod rob_n in
    let base = (!icount / width) + !bubble in
    (max base (max ops_ready rob.(slot)), slot)
  in
  let retire slot completion =
    let r = max completion !last_retire in
    rob.(slot) <- r;
    last_retire := r;
    incr icount
  in
  let simple_instr ?(lat = int_lat) ops_ready =
    let t, slot = issue ops_ready in
    retire slot (t + lat);
    t + lat
  in
  (* Bind scalar parameters. *)
  let rec bind_scalars params values =
    match (params, values) with
    | [], [] -> ()
    | Ir.Pbuf _ :: ps, vs -> bind_scalars ps vs
    | Ir.Pscalar v :: ps, x :: vs ->
      ienv.(v.Ir.vid) <- x;
      bind_scalars ps vs
    | Ir.Pscalar v :: _, [] ->
      raise (Trap ("missing scalar argument for " ^ v.Ir.vname))
    | [], _ :: _ -> raise (Trap "too many scalar arguments")
  in
  bind_scalars fn.Ir.fn_params scalars;
  let geti (v : Ir.value) = ienv.(v.Ir.vid) in
  let getf (v : Ir.value) = fenv.(v.Ir.vid) in
  let rdy (v : Ir.value) = ready.(v.Ir.vid) in
  let set_i (v : Ir.value) x t =
    ienv.(v.Ir.vid) <- x;
    ready.(v.Ir.vid) <- t
  in
  let set_f (v : Ir.value) x t =
    fenv.(v.Ir.vid) <- x;
    ready.(v.Ir.vid) <- t
  in
  let is_float (v : Ir.value) = v.Ir.vty = Ir.F64 in
  let copy_val (dst : Ir.value) (src : Ir.value) t =
    if is_float dst then set_f dst (getf src) t else set_i dst (geti src) t
  in
  let eval_ibin op a b =
    match op with
    | Ir.Iadd -> a + b
    | Ir.Isub -> a - b
    | Ir.Imul -> a * b
    | Ir.Idiv -> if b = 0 then raise (Trap "division by zero") else a / b
    | Ir.Irem -> if b = 0 then raise (Trap "rem by zero") else a mod b
    | Ir.Imin -> min a b
    | Ir.Imax -> max a b
    | Ir.Iand -> a land b
    | Ir.Ior -> a lor b
    | Ir.Ixor -> a lxor b
    | Ir.Ishl -> a lsl b
  in
  let eval_fbin op a b =
    match op with
    | Ir.Fadd -> a +. b
    | Ir.Fsub -> a -. b
    | Ir.Fmul -> a *. b
    | Ir.Fdiv -> a /. b
    | Ir.Fmin -> Float.min a b
    | Ir.Fmax -> Float.max a b
  in
  let eval_icmp pred a b =
    (* Indices and sizes are non-negative throughout, so signed and
       unsigned orders coincide in practice. *)
    match pred with
    | Ir.Eq -> a = b
    | Ir.Ne -> a <> b
    | Ir.Ult | Ir.Slt -> a < b
    | Ir.Ule | Ir.Sle -> a <= b
    | Ir.Ugt | Ir.Sgt -> a > b
    | Ir.Uge | Ir.Sge -> a >= b
  in
  let exec_let (v : Ir.value) (rv : Ir.rvalue) =
    match rv with
    | Ir.Const c ->
      let t = simple_instr 0 in
      (match c with
       | Ir.Cidx x | Ir.Ci64 x -> set_i v x t
       | Ir.Cf64 x -> set_f v x t
       | Ir.Cbool b -> set_i v (if b then 1 else 0) t)
    | Ir.Ibin (op, a, b) ->
      let t = simple_instr (max (rdy a) (rdy b)) in
      set_i v (eval_ibin op (geti a) (geti b)) t
    | Ir.Fbin (op, a, b) ->
      incr flops;
      let t = simple_instr ~lat:fp_lat (max (rdy a) (rdy b)) in
      set_f v (eval_fbin op (getf a) (getf b)) t
    | Ir.Icmp (pred, a, b) ->
      let t = simple_instr (max (rdy a) (rdy b)) in
      set_i v (if eval_icmp pred (geti a) (geti b) then 1 else 0) t
    | Ir.Select (c, a, b) ->
      let t = simple_instr (max (rdy c) (max (rdy a) (rdy b))) in
      if is_float v then set_f v (if geti c <> 0 then getf a else getf b) t
      else set_i v (if geti c <> 0 then geti a else geti b) t
    | Ir.Load (buf, idx) ->
      incr loads;
      let b = bufs.(buf.Ir.bid) in
      let i = geti idx in
      let t, slot = issue (rdy idx) in
      let done_at =
        mem.m_load ~pc:v.Ir.vid ~addr:(b.Runtime.base + (i * b.Runtime.ebytes))
          ~at:t
      in
      retire slot done_at;
      (* Inlined Runtime.read: loads are the hottest operation and the
         polymorphic-variant return would box every float. *)
      (match b.Runtime.data with
       | Runtime.RI a ->
         if i < 0 || i >= Array.length a then
           Runtime.fault "load %s[%d] out of bounds [0, %d)" buf.Ir.bname i
             (Array.length a);
         ienv.(v.Ir.vid) <- a.(i);
         ready.(v.Ir.vid) <- done_at
       | Runtime.RF a ->
         if i < 0 || i >= Array.length a then
           Runtime.fault "load %s[%d] out of bounds [0, %d)" buf.Ir.bname i
             (Array.length a);
         fenv.(v.Ir.vid) <- a.(i);
         ready.(v.Ir.vid) <- done_at
       | Runtime.RB s ->
         if i < 0 || i >= Bytes.length s then
           Runtime.fault "load %s[%d] out of bounds [0, %d)" buf.Ir.bname i
             (Bytes.length s);
         ienv.(v.Ir.vid) <- Bytes.get_uint8 s i;
         ready.(v.Ir.vid) <- done_at)
    | Ir.Dim buf ->
      let t = simple_instr 0 in
      set_i v (Runtime.length_of bufs.(buf.Ir.bid).Runtime.data) t
    | Ir.Cast (ty, x) ->
      let t = simple_instr (rdy x) in
      (match (ty, x.Ir.vty) with
       | Ir.F64, (Ir.Index | Ir.I64 | Ir.I1) -> set_f v (float_of_int (geti x)) t
       | (Ir.Index | Ir.I64 | Ir.I1), Ir.F64 -> set_i v (int_of_float (getf x)) t
       | _, _ -> copy_val v x t)
  in
  let loop_overhead ops_ready =
    (* Induction update plus compare-and-branch, predicted taken. *)
    let (_ : int) = simple_instr ops_ready in
    let (_ : int) = simple_instr ops_ready in
    ()
  in
  let mispredict () = bubble := !bubble + branch_miss in
  let slice_pending = ref (match slice with None -> None | Some s -> Some s) in
  let rec exec_block ~top (blk : Ir.block) = List.iter (exec_stmt ~top) blk
  and exec_stmt ~top (s : Ir.stmt) =
    match s with
    | Ir.Let (v, rv) -> exec_let v rv
    | Ir.Store (buf, idx, v) ->
      incr stores;
      let b = bufs.(buf.Ir.bid) in
      let i = geti idx in
      let t, slot = issue (max (rdy idx) (rdy v)) in
      mem.m_store ~pc:(buf.Ir.bid lor 0x10000) ~addr:(Runtime.addr b i) ~at:t;
      retire slot (t + st_lat);
      Runtime.write b i (if is_float v then `F (getf v) else `I (geti v))
    | Ir.Prefetch p ->
      incr pfs;
      let b = bufs.(p.Ir.pbuf.Ir.bid) in
      let i = geti p.Ir.pidx in
      let t, slot = issue (rdy p.Ir.pidx) in
      mem.m_prefetch ~addr:(Runtime.addr b i) ~locality:p.Ir.plocality ~at:t;
      retire slot (t + 1)
    | Ir.For f ->
      let lo0 = geti f.Ir.f_lo and hi0 = geti f.Ir.f_hi in
      let step = geti f.Ir.f_step in
      if step <= 0 then raise (Trap "non-positive loop step");
      let lo, hi =
        if top then (
          match !slice_pending with
          | Some (slo, shi) ->
            slice_pending := None;
            (max lo0 slo, min hi0 shi)
          | None -> (lo0, hi0))
        else (lo0, hi0)
      in
      (* Initialise carried values. *)
      List.iter (fun (arg, init) -> copy_val arg init (rdy init)) f.Ir.f_carried;
      let riv = ref (max (rdy f.Ir.f_lo) (rdy f.Ir.f_hi)) in
      let iv = ref lo in
      while !iv < hi do
        set_i f.Ir.f_iv !iv !riv;
        loop_overhead !riv;
        exec_block ~top:false f.Ir.f_body;
        List.iter2
          (fun (arg, _) y -> copy_val arg y (rdy y))
          f.Ir.f_carried f.Ir.f_yield;
        riv := !riv + 1;
        iv := !iv + step
      done;
      mispredict ();
      List.iter2
        (fun r (arg, _) -> copy_val r arg (rdy arg))
        f.Ir.f_results f.Ir.f_carried
    | Ir.While w ->
      List.iter (fun (arg, init) -> copy_val arg init (rdy init)) w.Ir.w_carried;
      let continue_ = ref true in
      while !continue_ do
        exec_block ~top:false w.Ir.w_cond;
        let (_ : int) = simple_instr (rdy w.Ir.w_cond_v) in
        if geti w.Ir.w_cond_v <> 0 then begin
          exec_block ~top:false w.Ir.w_body;
          List.iter2
            (fun (arg, _) y -> copy_val arg y (rdy y))
            w.Ir.w_carried w.Ir.w_yield
        end
        else continue_ := false
      done;
      mispredict ();
      List.iter2
        (fun r (arg, _) -> copy_val r arg (rdy arg))
        w.Ir.w_results w.Ir.w_carried
    | Ir.If (c, then_, else_) ->
      let (_ : int) = simple_instr (rdy c) in
      if geti c <> 0 then exec_block ~top:false then_
      else exec_block ~top:false else_
  in
  exec_block ~top:true fn.Ir.fn_body;
  { r_cycles = !last_retire;
    r_instructions = !icount;
    r_flops = !flops;
    r_loads = !loads;
    r_stores = !stores;
    r_prefetches = !pfs }
