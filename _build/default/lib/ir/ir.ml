(* Core intermediate representation.

   A small, SSA-flavoured, region-based imperative IR modelling the subset of
   MLIR that sparsification emits: arith on index/i64/f64/i1 scalars,
   1-D dynamically-sized buffers (memref<?x...>), structured control flow
   (scf.for with iter_args, scf.while with carried values, scf.if), and
   memref.load / memref.store / memref.prefetch.

   Values are immutable SSA names identified by a dense integer id (used to
   index interpreter environments).  Buffers are function parameters
   identified likewise by a dense id. *)

(** Scalar types. [Index] and [I64] are both machine integers at runtime but
    are kept distinct, as in MLIR, to catch mixing errors in the verifier. *)
type scalar = Index | I64 | F64 | I1

(** Buffer element kinds. [EIdx32]/[EIdx64] hold coordinates/positions and
    load as [Index]; they differ only in their byte width, which matters for
    the simulated address space (the paper uses 32-bit indices when the
    non-zero count permits, 64-bit otherwise). [EI8] holds single-byte values
    of binary matrices and loads as [I64]. *)
type elem = EIdx32 | EIdx64 | EF64 | EI8

(** A buffer (memref) parameter. *)
type buffer = { bid : int; bname : string; belem : elem }

(** An SSA value. *)
type value = { vid : int; vname : string; vty : scalar }

type const = Cidx of int | Ci64 of int | Cf64 of float | Cbool of bool

type ibinop =
  | Iadd | Isub | Imul | Idiv | Irem
  | Imin | Imax | Iand | Ior | Ixor | Ishl

type fbinop = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

(** Integer comparison predicates (MLIR [arith.cmpi]). *)
type icmp = Eq | Ne | Ult | Ule | Ugt | Uge | Slt | Sle | Sgt | Sge

(** Value-producing operations. *)
type rvalue =
  | Const of const
  | Ibin of ibinop * value * value
  | Fbin of fbinop * value * value
  | Icmp of icmp * value * value
  | Select of value * value * value      (* select cond, a, b *)
  | Load of buffer * value               (* memref.load buf[idx] *)
  | Dim of buffer                        (* memref.dim buf, 0 *)
  | Cast of scalar * value               (* index_cast / sitofp-free subset *)

type stmt =
  | Let of value * rvalue
  | Store of buffer * value * value      (* memref.store v, buf[idx] *)
  | Prefetch of prefetch
  | For of forloop
  | While of whileloop
  | If of value * block * block

(** memref.prefetch buf[idx], read|write, locality<n>, data *)
and prefetch = {
  pbuf : buffer;
  pidx : value;
  pwrite : bool;
  plocality : int;                       (* 0..3, paper uses 2 *)
}

(** scf.for with optional iter_args. [f_results] are bound after the loop to
    the final carried values; [f_yield] gives the next-iteration values and
    must match [f_carried] in arity and type. *)
and forloop = {
  f_iv : value;
  f_lo : value;
  f_hi : value;
  f_step : value;
  f_carried : (value * value) list;      (* (region argument, initial value) *)
  f_results : value list;
  f_body : block;
  f_yield : value list;
  f_tag : string;                        (* debug label, e.g. "rows" *)
}

(** scf.while. The condition block is re-evaluated each iteration with the
    carried region arguments in scope; the loop runs while [w_cond_v] is
    true. [w_results] are the final carried values. *)
and whileloop = {
  w_carried : (value * value) list;
  w_results : value list;
  w_cond : block;
  w_cond_v : value;
  w_body : block;
  w_yield : value list;
  w_tag : string;
}

and block = stmt list

type param = Pbuf of buffer | Pscalar of value

(** A function: parameters, a body, and the id-space sizes needed to allocate
    dense interpreter environments. *)
type func = {
  fn_name : string;
  fn_params : param list;
  fn_body : block;
  fn_nvalues : int;                      (* all value ids are < fn_nvalues *)
  fn_nbufs : int;                        (* all buffer ids are < fn_nbufs *)
}

(** [scalar_of_elem e] is the scalar type produced by loading from a buffer
    of element kind [e]. *)
let scalar_of_elem = function
  | EIdx32 | EIdx64 -> Index
  | EF64 -> F64
  | EI8 -> I64

(** [elem_bytes e] is the width in bytes of one element, used to compute
    simulated addresses. *)
let elem_bytes = function
  | EIdx32 -> 4
  | EIdx64 -> 8
  | EF64 -> 8
  | EI8 -> 1

let scalar_name = function
  | Index -> "index"
  | I64 -> "i64"
  | F64 -> "f64"
  | I1 -> "i1"

let elem_name = function
  | EIdx32 -> "i32"
  | EIdx64 -> "i64"
  | EF64 -> "f64"
  | EI8 -> "i8"

let ibinop_name = function
  | Iadd -> "arith.addi" | Isub -> "arith.subi" | Imul -> "arith.muli"
  | Idiv -> "arith.divui" | Irem -> "arith.remui"
  | Imin -> "arith.minui" | Imax -> "arith.maxui"
  | Iand -> "arith.andi" | Ior -> "arith.ori" | Ixor -> "arith.xori"
  | Ishl -> "arith.shli"

let fbinop_name = function
  | Fadd -> "arith.addf" | Fsub -> "arith.subf" | Fmul -> "arith.mulf"
  | Fdiv -> "arith.divf" | Fmin -> "arith.minimumf" | Fmax -> "arith.maximumf"

let icmp_name = function
  | Eq -> "eq" | Ne -> "ne"
  | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"
  | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"

(** Structural statistics used by tests and by the benchmark listings. *)
type op_counts = {
  mutable n_lets : int;
  mutable n_stores : int;
  mutable n_prefetches : int;
  mutable n_fors : int;
  mutable n_whiles : int;
  mutable n_ifs : int;
}

let rec count_block (c : op_counts) (b : block) =
  List.iter (count_stmt c) b

and count_stmt c = function
  | Let _ -> c.n_lets <- c.n_lets + 1
  | Store _ -> c.n_stores <- c.n_stores + 1
  | Prefetch _ -> c.n_prefetches <- c.n_prefetches + 1
  | For f ->
    c.n_fors <- c.n_fors + 1;
    count_block c f.f_body
  | While w ->
    c.n_whiles <- c.n_whiles + 1;
    count_block c w.w_cond;
    count_block c w.w_body
  | If (_, t, e) ->
    c.n_ifs <- c.n_ifs + 1;
    count_block c t;
    count_block c e

(** [counts fn] tallies the operations in [fn], including nested regions. *)
let counts (fn : func) : op_counts =
  let c =
    { n_lets = 0; n_stores = 0; n_prefetches = 0;
      n_fors = 0; n_whiles = 0; n_ifs = 0 }
  in
  count_block c fn.fn_body;
  c
