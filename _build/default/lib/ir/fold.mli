(** Constant folding and algebraic simplification.

    Propagates compile-time-known values through pure operations and
    simplifies identities (x*1, x+0, min(x,x), constant compares and
    selects). Loads, loop-carried values and region arguments stay
    unknown. *)

open Ir

type stats = { folded : int }

(** [run fn] returns the transformed (re-verified) function and the number
    of rewritten operations. *)
val run : func -> func * stats
