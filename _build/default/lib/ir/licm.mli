(** Loop-invariant code motion for pure value computations.

    Hoists [Let]s whose rvalue is side-effect free out of for loops when
    every operand is defined outside the loop — the LLVM LICM equivalent
    of the paper's compilation flow (§4.3). Loads are never moved (they
    may alias stores). *)

open Ir

type stats = { hoisted : int }

(** [run fn] returns the transformed (re-verified) function and hoist
    statistics. *)
val run : func -> func * stats
