(* Generic traversal and use-def utilities over Ir functions.

   These are the "low-level" analyses available to a post-hoc pass such as
   the Ainsworth & Jones baseline: they see only IR structure, with none of
   the sparsification-time semantic context ASaP enjoys. *)

open Ir

(** [def_table fn] maps a value id to the rvalue that defines it, when the
    definition is a [Let]. Region arguments and loop results map to [None]. *)
let def_table (fn : func) : rvalue option array =
  let t = Array.make fn.fn_nvalues None in
  let rec go_block b = List.iter go_stmt b
  and go_stmt = function
    | Let (v, rv) -> t.(v.vid) <- Some rv
    | Store _ | Prefetch _ -> ()
    | For f -> go_block f.f_body
    | While w -> go_block w.w_cond; go_block w.w_body
    | If (_, th, el) -> go_block th; go_block el
  in
  go_block fn.fn_body;
  t

(** [iter_stmts f fn] applies [f] to every statement, outermost first. *)
let iter_stmts f (fn : func) =
  let rec go_block b = List.iter go_stmt b
  and go_stmt s =
    f s;
    match s with
    | Let _ | Store _ | Prefetch _ -> ()
    | For fl -> go_block fl.f_body
    | While w -> go_block w.w_cond; go_block w.w_body
    | If (_, th, el) -> go_block th; go_block el
  in
  go_block fn.fn_body

(** [loads fn] lists every [Load] with its defined value. *)
let loads (fn : func) : (value * buffer * value) list =
  let acc = ref [] in
  iter_stmts
    (function
      | Let (v, Load (b, i)) -> acc := (v, b, i) :: !acc
      | _ -> ())
    fn;
  List.rev !acc

(** [contains_for b] tests whether a block contains a nested for loop. *)
let rec contains_for (b : block) =
  List.exists
    (function
      | For _ -> true
      | While w -> contains_for w.w_cond || contains_for w.w_body
      | If (_, th, el) -> contains_for th || contains_for el
      | Let _ | Store _ | Prefetch _ -> false)
    b

(** [map_fors f fn] rebuilds [fn], replacing every for loop [fl] by
    [f ~innermost fl] where [innermost] says whether [fl] contains no nested
    for loop. Children are transformed before their parents. *)
let map_fors f (fn : func) : func =
  let rec go_block b = List.map go_stmt b
  and go_stmt = function
    | (Let _ | Store _ | Prefetch _) as s -> s
    | For fl ->
      let fl = { fl with f_body = go_block fl.f_body } in
      For (f ~innermost:(not (contains_for fl.f_body)) fl)
    | While w ->
      While { w with w_cond = go_block w.w_cond; w_body = go_block w.w_body }
    | If (c, th, el) -> If (c, go_block th, go_block el)
  in
  { fn with fn_body = go_block fn.fn_body }

(** A fresh-name supply for passes that must add values to an existing
    function (ids continue from [fn_nvalues]). *)
type supply = { mutable next : int }

let supply (fn : func) = { next = fn.fn_nvalues }

let fresh (s : supply) name ty =
  let v = { vid = s.next; vname = name; vty = ty } in
  s.next <- s.next + 1;
  v

(** [with_supply fn s] updates the function's id bound after a pass that
    used [s] to mint new values. *)
let with_supply (fn : func) (s : supply) = { fn with fn_nvalues = s.next }
