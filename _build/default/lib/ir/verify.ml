(* Structural and SSA verification.

   Checks, for a whole function:
   - every value id is defined exactly once (params, lets, region args,
     loop results) and every id is within [0, fn_nvalues);
   - every use is dominated by its definition under structured-region
     scoping (a region sees the values defined before its statement plus its
     own region arguments; values defined inside a region are not visible
     after it, except loop results);
   - operand and yield types are consistent;
   - buffer ids are within [0, fn_nbufs). *)

open Ir

exception Invalid of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

type env = {
  defined : bool array;        (* ever defined anywhere (uniqueness) *)
  mutable scope : int list list; (* visible ids, innermost scope first *)
  nbufs : int;
}

let in_scope env id =
  List.exists (List.exists (Int.equal id)) env.scope

let define env (v : value) =
  if v.vid < 0 || v.vid >= Array.length env.defined then
    fail "value %s has id %d outside [0, %d)" v.vname v.vid
      (Array.length env.defined);
  if env.defined.(v.vid) then fail "value %s (id %d) defined twice" v.vname v.vid;
  env.defined.(v.vid) <- true;
  match env.scope with
  | [] -> fail "no open scope"
  | top :: rest -> env.scope <- (v.vid :: top) :: rest

let use env (v : value) =
  if not (in_scope env v.vid) then
    fail "use of %s (id %d) outside the scope of its definition" v.vname v.vid

let use_buf env (b : buffer) =
  if b.bid < 0 || b.bid >= env.nbufs then
    fail "buffer %s has id %d outside [0, %d)" b.bname b.bid env.nbufs

let push env = env.scope <- [] :: env.scope

let pop env =
  match env.scope with
  | [] -> fail "scope underflow"
  | _ :: rest -> env.scope <- rest

let expect what ty (v : value) =
  if v.vty <> ty then
    fail "%s: %s has type %s, expected %s" what v.vname (scalar_name v.vty)
      (scalar_name ty)

let check_rvalue env (v : value) rv =
  let int_pair what x y =
    use env x; use env y;
    if x.vty <> y.vty then fail "%s: mismatched operand types" what;
    (match x.vty with
     | Index | I64 | I1 -> ()
     | F64 -> fail "%s: integer op on f64" what);
    if v.vty <> x.vty then fail "%s: result type mismatch" what
  in
  match rv with
  | Const (Cidx _) -> expect "const" Index v
  | Const (Ci64 _) -> expect "const" I64 v
  | Const (Cf64 _) -> expect "const" F64 v
  | Const (Cbool _) -> expect "const" I1 v
  | Ibin (op, x, y) -> int_pair (ibinop_name op) x y
  | Fbin (_, x, y) ->
    use env x; use env y;
    expect "fbin" F64 x; expect "fbin" F64 y; expect "fbin" F64 v
  | Icmp (_, x, y) ->
    use env x; use env y;
    if x.vty <> y.vty then fail "cmpi: mismatched operand types";
    expect "cmpi result" I1 v
  | Select (c, x, y) ->
    use env c; use env x; use env y;
    expect "select cond" I1 c;
    if x.vty <> y.vty || v.vty <> x.vty then fail "select: type mismatch"
  | Load (b, i) ->
    use_buf env b; use env i;
    expect "load index" Index i;
    if v.vty <> scalar_of_elem b.belem then fail "load: result type mismatch"
  | Dim b -> use_buf env b; expect "dim" Index v
  | Cast (ty, x) ->
    use env x;
    if v.vty <> ty then fail "cast: result type mismatch"

let check_yield what carried yield =
  if List.length carried <> List.length yield then
    fail "%s: yield arity mismatch" what;
  List.iter2
    (fun ((a : value), (_ : value)) (y : value) ->
      if a.vty <> y.vty then fail "%s: yield type mismatch for %s" what a.vname)
    carried yield

let rec check_block env (b : block) = List.iter (check_stmt env) b

and check_stmt env = function
  | Let (v, rv) ->
    check_rvalue env v rv;
    define env v
  | Store (b, i, v) ->
    use_buf env b; use env i; use env v;
    expect "store index" Index i;
    if v.vty <> scalar_of_elem b.belem then fail "store: value type mismatch"
  | Prefetch p ->
    use_buf env p.pbuf; use env p.pidx;
    expect "prefetch index" Index p.pidx;
    if p.plocality < 0 || p.plocality > 3 then fail "prefetch: bad locality"
  | For f ->
    use env f.f_lo; use env f.f_hi; use env f.f_step;
    expect "for lo" Index f.f_lo;
    expect "for hi" Index f.f_hi;
    expect "for step" Index f.f_step;
    List.iter (fun ((_ : value), init) -> use env init) f.f_carried;
    push env;
    define env f.f_iv;
    expect "for iv" Index f.f_iv;
    List.iter
      (fun ((a : value), (init : value)) ->
        if a.vty <> init.vty then fail "for: iter_arg init type mismatch";
        define env a)
      f.f_carried;
    check_block env f.f_body;
    List.iter (use env) f.f_yield;
    check_yield "scf.for" f.f_carried f.f_yield;
    pop env;
    List.iter2
      (fun (r : value) ((a : value), _) ->
        if r.vty <> a.vty then fail "for: result type mismatch";
        define env r)
      f.f_results f.f_carried
  | While w ->
    List.iter (fun ((_ : value), init) -> use env init) w.w_carried;
    push env;
    List.iter
      (fun ((a : value), (init : value)) ->
        if a.vty <> init.vty then fail "while: carried init type mismatch";
        define env a)
      w.w_carried;
    check_block env w.w_cond;
    use env w.w_cond_v;
    expect "while cond" I1 w.w_cond_v;
    check_block env w.w_body;
    List.iter (use env) w.w_yield;
    check_yield "scf.while" w.w_carried w.w_yield;
    pop env;
    List.iter2
      (fun (r : value) ((a : value), _) ->
        if r.vty <> a.vty then fail "while: result type mismatch";
        define env r)
      w.w_results w.w_carried
  | If (c, t, e) ->
    use env c;
    expect "if cond" I1 c;
    push env; check_block env t; pop env;
    push env; check_block env e; pop env

(** [check fn] raises [Invalid] if [fn] is ill-formed. *)
let check (fn : func) =
  let env =
    { defined = Array.make fn.fn_nvalues false; scope = [ [] ];
      nbufs = fn.fn_nbufs }
  in
  List.iter
    (function
      | Pbuf b -> use_buf env b
      | Pscalar v -> define env v)
    fn.fn_params;
  check_block env fn.fn_body

(** [check_result fn] is [Ok ()] or [Error message]. *)
let check_result fn =
  match check fn with
  | () -> Ok ()
  | exception Invalid m -> Error m
