(** MLIR-flavoured textual rendering of {!Ir} functions.

    Output is close to the scf/memref/arith dialects used by the paper's
    listings (Figs. 3, 5, 9). Duplicate source names are made unique by
    suffixing the SSA id. *)

open Ir

(** [to_string fn] renders the whole function. *)
val to_string : func -> string

(** [print fn] writes {!to_string} to stdout. *)
val print : func -> unit
