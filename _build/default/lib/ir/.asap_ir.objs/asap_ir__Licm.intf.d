lib/ir/licm.mli: Ir
