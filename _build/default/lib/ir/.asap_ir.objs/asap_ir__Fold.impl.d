lib/ir/fold.ml: Float Hashtbl Ir List Verify
