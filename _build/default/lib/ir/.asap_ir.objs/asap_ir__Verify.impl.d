lib/ir/verify.ml: Array Format Int Ir List
