lib/ir/licm.ml: Hashtbl Int Ir List Verify
