lib/ir/printer.ml: Buffer Hashtbl Ir List Printf String
