lib/ir/fold.mli: Ir
