lib/ir/builder.ml: Format Ir List Printf
