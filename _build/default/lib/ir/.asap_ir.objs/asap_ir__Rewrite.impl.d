lib/ir/rewrite.ml: Array Ir List
