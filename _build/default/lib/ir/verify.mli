(** Structural and SSA verification of {!Ir} functions.

    Checks unique definitions, def-before-use under structured-region
    scoping, operand/yield typing, and id-space bounds. Every compilation
    path runs this before IR is executed or rewritten. *)

open Ir

exception Invalid of string

(** [check fn] raises {!Invalid} if [fn] is ill-formed. *)
val check : func -> unit

(** [check_result fn] is [Ok ()] or [Error message]. *)
val check_result : func -> (unit, string) result
