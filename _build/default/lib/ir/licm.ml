(* Loop-invariant code motion for pure value computations.

   Hoists [Let]s whose rvalue is side-effect free (constants, arithmetic,
   comparisons, selects, dims — not loads, which may alias stores) out of
   for loops when every operand is defined outside the loop. Applied
   bottom-up, so invariants bubble as far out as they can.

   The sparsifier already places most invariants well; this pass exists for
   IR built by other means (hand-written tests, future front ends) and to
   keep post-hoc passes honest about per-iteration costs, mirroring the
   LLVM LICM the paper's compilation flow relies on (§4.3). *)

open Ir

let pure = function
  | Const _ | Ibin _ | Fbin _ | Icmp _ | Select _ | Dim _ | Cast _ -> true
  | Load _ -> false

let operands = function
  | Const _ | Dim _ -> []
  | Ibin (_, a, b) | Fbin (_, a, b) | Icmp (_, a, b) -> [ a; b ]
  | Select (a, b, c) -> [ a; b; c ]
  | Load (_, i) -> [ i ]
  | Cast (_, a) -> [ a ]

(* Values defined inside a block (including region-local definitions). *)
let rec defined_in_block acc (blk : block) =
  List.fold_left defined_in_stmt acc blk

and defined_in_stmt acc = function
  | Let (v, _) -> v.vid :: acc
  | Store _ | Prefetch _ -> acc
  | For f ->
    let acc = f.f_iv.vid :: acc in
    let acc = List.fold_left (fun a ((x : value), _) -> x.vid :: a) acc f.f_carried in
    let acc = defined_in_block acc f.f_body in
    List.fold_left (fun a (x : value) -> x.vid :: a) acc f.f_results
  | While w ->
    let acc = List.fold_left (fun a ((x : value), _) -> x.vid :: a) acc w.w_carried in
    let acc = defined_in_block acc w.w_cond in
    let acc = defined_in_block acc w.w_body in
    List.fold_left (fun a (x : value) -> x.vid :: a) acc w.w_results
  | If (_, t, e) -> defined_in_block (defined_in_block acc t) e

type stats = { hoisted : int }

(** [run fn] returns the transformed function and hoist statistics. *)
let run (fn : func) : func * stats =
  let hoisted = ref 0 in
  (* Transform a block; returns (kept statements, hoistable statements)
     where hoistable Lets are pure with no operand defined in [local]. *)
  let rec transform_block (blk : block) : block =
    List.concat_map transform_stmt blk
  and transform_stmt (s : stmt) : stmt list =
    match s with
    | Let _ | Store _ | Prefetch _ -> [ s ]
    | For f ->
      let body = transform_block f.f_body in
      let local = defined_in_stmt [] (For { f with f_body = body }) in
      let is_local vid = List.exists (Int.equal vid) local in
      (* Partition a prefix-closed set of hoistable Lets: a Let can move
         only if its operands are not defined by anything remaining in
         the loop, so iterate until a fixed point over the body order. *)
      let hoistable = Hashtbl.create 8 in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (function
            | Let (v, rv)
              when (not (Hashtbl.mem hoistable v.vid))
                   && pure rv
                   && List.for_all
                        (fun (o : value) ->
                          (not (is_local o.vid)) || Hashtbl.mem hoistable o.vid)
                        (operands rv) ->
              Hashtbl.add hoistable v.vid ();
              changed := true
            | _ -> ())
          body
      done;
      let moved, kept =
        List.partition
          (function
            | Let (v, _) -> Hashtbl.mem hoistable v.vid
            | _ -> false)
          body
      in
      hoisted := !hoisted + List.length moved;
      moved @ [ For { f with f_body = kept } ]
    | While w ->
      (* While bodies re-evaluate conditions with carried values; keep the
         transformation conservative and only recurse. *)
      [ While
          { w with w_cond = transform_block w.w_cond;
                   w_body = transform_block w.w_body } ]
    | If (c, t, e) -> [ If (c, transform_block t, transform_block e) ]
  in
  let body = transform_block fn.fn_body in
  let fn' = { fn with fn_body = body } in
  (match Verify.check_result fn' with
   | Ok () -> ()
   | Error m -> invalid_arg ("licm: broke the IR: " ^ m));
  (fn', { hoisted = !hoisted })
