(* Constant folding and algebraic simplification.

   Propagates compile-time-known integer and float values through pure
   operations, rewriting foldable [Let]s to constants and simplifying the
   identities that the emitter's generic code paths can produce
   (x*1, x+0, min(x,x), select over equal branches).

   Loads, loop-carried values and region arguments are unknown; the pass
   is a simple forward walk per region (values defined before a region are
   visible inside it). *)

open Ir

type known = K_int of int | K_float of float

type stats = { folded : int }

let run (fn : func) : func * stats =
  let known : (int, known) Hashtbl.t = Hashtbl.create 64 in
  let folded = ref 0 in
  let kint (v : value) =
    match Hashtbl.find_opt known v.vid with
    | Some (K_int i) -> Some i
    | Some (K_float _) | None -> None
  in
  let kfloat (v : value) =
    match Hashtbl.find_opt known v.vid with
    | Some (K_float f) -> Some f
    | Some (K_int _) | None -> None
  in
  let rewrite (v : value) (rv : rvalue) : rvalue =
    let keep = rv in
    let const_int i =
      incr folded;
      Hashtbl.replace known v.vid (K_int i);
      match v.vty with
      | Index -> Const (Cidx i)
      | I64 -> Const (Ci64 i)
      | I1 -> Const (Cbool (i <> 0))
      | F64 -> keep
    in
    match rv with
    | Const (Cidx i | Ci64 i) ->
      Hashtbl.replace known v.vid (K_int i);
      keep
    | Const (Cbool bo) ->
      Hashtbl.replace known v.vid (K_int (if bo then 1 else 0));
      keep
    | Const (Cf64 f) ->
      Hashtbl.replace known v.vid (K_float f);
      keep
    | Ibin (op, a, c) ->
      (match (kint a, kint c, op) with
       | Some x, Some y, _ ->
         (match op with
          | Iadd -> const_int (x + y)
          | Isub -> const_int (x - y)
          | Imul -> const_int (x * y)
          | Idiv when y <> 0 -> const_int (x / y)
          | Irem when y <> 0 -> const_int (x mod y)
          | Imin -> const_int (min x y)
          | Imax -> const_int (max x y)
          | Iand -> const_int (x land y)
          | Ior -> const_int (x lor y)
          | Ixor -> const_int (x lxor y)
          | Ishl -> const_int (x lsl y)
          | Idiv | Irem -> keep)
       | _, Some 0, (Iadd | Isub | Ior | Ixor | Ishl) ->
         incr folded;
         Cast (v.vty, a)
       | Some 0, _, (Iadd | Ior | Ixor) ->
         incr folded;
         Cast (v.vty, c)
       | _, Some 1, Imul -> incr folded; Cast (v.vty, a)
       | Some 1, _, Imul -> incr folded; Cast (v.vty, c)
       | _, Some 0, Imul | Some 0, _, (Imul | Iand) -> const_int 0
       | _ -> keep)
    | Fbin (op, a, c) ->
      (match (kfloat a, kfloat c) with
       | Some x, Some y ->
         let r =
           match op with
           | Fadd -> x +. y
           | Fsub -> x -. y
           | Fmul -> x *. y
           | Fdiv -> x /. y
           | Fmin -> Float.min x y
           | Fmax -> Float.max x y
         in
         incr folded;
         Hashtbl.replace known v.vid (K_float r);
         Const (Cf64 r)
       | _ -> keep)
    | Icmp (pred, a, c) ->
      (match (kint a, kint c) with
       | Some x, Some y ->
         let r =
           match pred with
           | Eq -> x = y
           | Ne -> x <> y
           | Ult | Slt -> x < y
           | Ule | Sle -> x <= y
           | Ugt | Sgt -> x > y
           | Uge | Sge -> x >= y
         in
         const_int (if r then 1 else 0)
       | _ when a.vid = c.vid ->
         (match pred with
          | Eq | Ule | Uge | Sle | Sge -> const_int 1
          | Ne | Ult | Ugt | Slt | Sgt -> const_int 0)
       | _ -> keep)
    | Select (cnd, a, c) ->
      (match kint cnd with
       | Some 0 -> incr folded; Cast (v.vty, c)
       | Some _ -> incr folded; Cast (v.vty, a)
       | None -> if a.vid = c.vid then (incr folded; Cast (v.vty, a)) else keep)
    | Cast (_, a) ->
      (match Hashtbl.find_opt known a.vid with
       | Some k -> Hashtbl.replace known v.vid k; keep
       | None -> keep)
    | Load _ | Dim _ -> keep
  in
  let rec go_block blk = List.map go_stmt blk
  and go_stmt = function
    | Let (v, rv) -> Let (v, rewrite v rv)
    | (Store _ | Prefetch _) as s -> s
    | For f -> For { f with f_body = go_block f.f_body }
    | While w ->
      While { w with w_cond = go_block w.w_cond; w_body = go_block w.w_body }
    | If (c, t, e) -> If (c, go_block t, go_block e)
  in
  let fn' = { fn with fn_body = go_block fn.fn_body } in
  (match Verify.check_result fn' with
   | Ok () -> ()
   | Error m -> invalid_arg ("fold: broke the IR: " ^ m));
  (fn', { folded = !folded })
