(** Generic traversal and use-def utilities over {!Ir} functions.

    These are the "low-level" analyses available to a post-hoc pass such as
    the Ainsworth & Jones baseline: IR structure only, none of the
    sparsification-time semantic context ASaP enjoys. *)

open Ir

(** [def_table fn] maps a value id to its defining rvalue when the
    definition is a [Let]; region arguments and loop results map to
    [None]. *)
val def_table : func -> rvalue option array

(** [iter_stmts f fn] applies [f] to every statement, outermost first. *)
val iter_stmts : (stmt -> unit) -> func -> unit

(** [loads fn] lists every load as (defined value, buffer, index). *)
val loads : func -> (value * buffer * value) list

(** [contains_for b] tests whether a block contains a for loop at any
    depth. *)
val contains_for : block -> bool

(** [map_fors f fn] rebuilds [fn], replacing every for loop [fl] by
    [f ~innermost fl]; children are transformed before parents, and
    [innermost] says whether the (transformed) body contains no for
    loop. *)
val map_fors : (innermost:bool -> forloop -> forloop) -> func -> func

(** A fresh-value supply for passes that extend an existing function. *)
type supply

val supply : func -> supply
val fresh : supply -> string -> scalar -> value

(** [with_supply fn s] updates [fn]'s id bound after minting values. *)
val with_supply : func -> supply -> func
