(** Ordinary least squares over (x, y) samples: the linear fits of the
    speedup-vs-MPKI scatter plots (paper Figs. 6 and 8). *)

type fit = { slope : float; intercept : float; r2 : float; n : int }

(** [fit points] computes the OLS line.
    @raise Invalid_argument with fewer than two points or degenerate x. *)
val fit : (float * float) array -> fit

(** [to_string f] renders e.g. ["y = 0.706x + 0.995, R^2 = 0.776 (n = 40)"]. *)
val to_string : fit -> string

(** [x_at f y] solves the fitted line for x — e.g. the break-even MPKI of
    §5.1 is [x_at f 1.0]. *)
val x_at : fit -> float -> float
