lib/metrics/roofline.ml: Float List Printf
