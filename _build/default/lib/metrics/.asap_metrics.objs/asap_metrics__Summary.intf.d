lib/metrics/summary.mli:
