lib/metrics/regress.mli:
