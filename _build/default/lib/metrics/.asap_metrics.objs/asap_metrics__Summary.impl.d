lib/metrics/summary.ml: Array Float
