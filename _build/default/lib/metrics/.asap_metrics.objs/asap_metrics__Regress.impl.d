lib/metrics/regress.ml: Array Printf
