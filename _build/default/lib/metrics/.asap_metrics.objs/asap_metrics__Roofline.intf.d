lib/metrics/roofline.mli:
