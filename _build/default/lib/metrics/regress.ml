(* Ordinary least squares over (x, y) samples: the linear fits of the
   speedup-vs-MPKI scatter plots (Fig. 6 and Fig. 8, e.g.
   y = 0.706x + 0.995, R^2 = 0.776). *)

type fit = { slope : float; intercept : float; r2 : float; n : int }

let fit (points : (float * float) array) : fit =
  let n = Array.length points in
  if n < 2 then invalid_arg "Regress.fit: need at least two points";
  let fn = float_of_int n in
  let sx = ref 0. and sy = ref 0. in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y)
    points;
  let mx = !sx /. fn and my = !sy /. fn in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mx and dy = y -. my in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. dy);
      syy := !syy +. (dy *. dy))
    points;
  if !sxx = 0. then invalid_arg "Regress.fit: degenerate x";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2; n }

let to_string f =
  Printf.sprintf "y = %.3fx + %.3f, R^2 = %.3f (n = %d)" f.slope f.intercept
    f.r2 f.n

(** [x_at f y] solves for x: the break-even MPKI of §5.1 is [x_at fit 1.0]. *)
let x_at f y = (y -. f.intercept) /. f.slope
