(** Summary statistics for performance results.

    The paper summarises throughputs with the harmonic mean and reports
    Equal-Work harmonic-mean Speedups (EWS, Eeckhout 2024): the ratio of
    harmonic means of throughputs, which weighs the work done on each
    input equally — unlike the geometric mean (paper §5). *)

(** Arithmetic mean. @raise Invalid_argument on empty input. *)
val mean : float array -> float

(** Harmonic mean. @raise Invalid_argument on empty or non-positive
    input. *)
val harmonic_mean : float array -> float

(** Geometric mean (for comparison only; see the paper's §5 argument
    against it). *)
val geometric_mean : float array -> float

(** [ews ~base ~variant] is the equal-work harmonic-mean speedup of
    [variant] over [base], both throughputs over the same inputs. *)
val ews : base:float array -> variant:float array -> float

val stddev : float array -> float

(** Coefficient of variation (the paper's §4.2 stability criterion). *)
val cov : float array -> float
