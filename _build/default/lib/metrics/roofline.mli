(** Cache-aware roofline model (Ilic et al.; paper Fig. 12). *)

type ceiling = { c_name : string; c_gbps : float }

type model = {
  peak_gflops : float;
  ceilings : ceiling list;     (** outermost (DRAM) first *)
}

(** [of_machine ~freq_ghz ~width ~line_bytes ~dram_gap ~lat_l2 ~lat_l3
    ~threads ()] derives the roofs from the simulated machine. *)
val of_machine :
  freq_ghz:float -> width:int -> line_bytes:int -> dram_gap:int ->
  lat_l2:int -> lat_l3:int -> threads:int -> unit -> model

(** [attainable m ~ceiling ~ai] is min(peak, bw * ai) for the named roof.
    @raise Invalid_argument for an unknown ceiling name. *)
val attainable : model -> ceiling:string -> ai:float -> float

(** One operating point of a measured kernel. *)
type point = {
  p_label : string;
  p_ai : float;                (** flops per DRAM byte *)
  p_gflops : float;
}

val point_to_string : model -> point -> string
