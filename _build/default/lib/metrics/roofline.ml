(* Cache-aware roofline model (Ilic et al.; paper Fig. 12).

   Ceilings: a compute roof (peak FLOP rate) and one bandwidth roof per
   memory level. A kernel's operating point is (arithmetic intensity,
   attained GFLOP/s); the attainable performance at intensity ai is
   min(peak, bw * ai) for the relevant bandwidth. *)

type ceiling = { c_name : string; c_gbps : float }

type model = {
  peak_gflops : float;
  ceilings : ceiling list;      (* outermost (DRAM) first *)
}

(** [of_machine ~freq_ghz ~width ~line_bytes ~dram_gap ~threads ~lat_l3
    ~lat_l2] derives the roofs from the simulated machine: peak assumes one
    FLOP per issue slot; DRAM bandwidth is one line per [dram_gap] cycles
    (shared); cache bandwidths one line per hit latency per thread. *)
let of_machine ~freq_ghz ~width ~line_bytes ~dram_gap ~lat_l2 ~lat_l3
    ~threads () =
  ignore lat_l2;
  ignore lat_l3;
  let t = float_of_int threads in
  let line = float_of_int line_bytes in
  { peak_gflops = freq_ghz *. float_of_int width *. t /. 2.0;
    (* /2: one fused multiply-add chain per iteration at fp latency ~ half
       the issue slots do useful FLOPs in practice. *)
    ceilings =
      [ (* DRAM: one line per [dram_gap] cycles, shared by all cores. *)
        { c_name = "DRAM"; c_gbps = freq_ghz *. line /. float_of_int dram_gap };
        (* Caches sustain roughly one line per (L2) / per two (L3) cycles
           per cluster — far above DRAM, as in the cache-aware model. *)
        { c_name = "L3"; c_gbps = freq_ghz *. line /. 2.0 *. t };
        { c_name = "L2"; c_gbps = freq_ghz *. line *. t } ] }

(** [attainable m ~ceiling ~ai] is min(peak, bw*ai) for the named roof. *)
let attainable m ~ceiling ~ai =
  match List.find_opt (fun c -> c.c_name = ceiling) m.ceilings with
  | None -> invalid_arg ("Roofline.attainable: no ceiling " ^ ceiling)
  | Some c -> Float.min m.peak_gflops (c.c_gbps *. ai)

(** One operating point of a measured kernel. *)
type point = {
  p_label : string;
  p_ai : float;                 (* flops per DRAM byte *)
  p_gflops : float;
}

let point_to_string m p =
  Printf.sprintf "%-24s ai=%.4f flop/B  perf=%.3f GFLOP/s  (DRAM roof %.3f, peak %.2f)"
    p.p_label p.p_ai p.p_gflops
    (attainable m ~ceiling:"DRAM" ~ai:p.p_ai)
    m.peak_gflops
