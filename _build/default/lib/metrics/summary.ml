(* Summary statistics for performance results.

   The paper summarises throughputs with the harmonic mean and reports
   Equal-Work harmonic-mean Speedups (EWS, Eeckhout 2024): the ratio of
   harmonic means of throughputs, which weighs the work done on each input
   equally — unlike the geometric mean (§5). *)

let mean xs =
  match Array.length xs with
  | 0 -> invalid_arg "Summary.mean: empty"
  | n -> Array.fold_left ( +. ) 0. xs /. float_of_int n

let harmonic_mean xs =
  match Array.length xs with
  | 0 -> invalid_arg "Summary.harmonic_mean: empty"
  | n ->
    Array.iter
      (fun x -> if x <= 0. then invalid_arg "Summary.harmonic_mean: x <= 0")
      xs;
    float_of_int n /. Array.fold_left (fun s x -> s +. (1. /. x)) 0. xs

let geometric_mean xs =
  match Array.length xs with
  | 0 -> invalid_arg "Summary.geometric_mean: empty"
  | n ->
    exp (Array.fold_left (fun s x -> s +. Float.log x) 0. xs /. float_of_int n)

(** [ews ~base ~variant] is the equal-work harmonic-mean speedup of
    [variant] over [base], both arrays of throughputs over the same
    inputs. *)
let ews ~base ~variant =
  if Array.length base <> Array.length variant then
    invalid_arg "Summary.ews: mismatched lengths";
  harmonic_mean variant /. harmonic_mean base

let stddev xs =
  let m = mean xs in
  let v =
    Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0. xs
    /. float_of_int (Array.length xs)
  in
  sqrt v

(** Coefficient of variation (the paper's stability criterion, §4.2). *)
let cov xs = stddev xs /. mean xs
