(* Property tests for the interpreter's functional semantics: random
   arithmetic expression trees are built as IR, interpreted, and compared
   against direct evaluation; control-flow constructs are checked against
   hand computations. *)

module Runtime = Asap_sim.Runtime
module Interp = Asap_sim.Interp
open Asap_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let free_mem =
  { Interp.m_load = (fun ~pc:_ ~addr:_ ~at -> at + 1);
    m_store = (fun ~pc:_ ~addr:_ ~at:_ -> ());
    m_prefetch = (fun ~addr:_ ~locality:_ ~at:_ -> ()) }

(* Random integer expression trees over a small positive domain (keeps
   division and shift well-defined). *)
type iexpr =
  | Lit of int
  | Bin of Ir.ibinop * iexpr * iexpr

let rec eval_iexpr = function
  | Lit i -> i
  | Bin (op, a, b) ->
    let x = eval_iexpr a and y = eval_iexpr b in
    (match op with
     | Ir.Iadd -> x + y
     | Ir.Isub -> x - y
     | Ir.Imul -> x * y
     | Ir.Idiv -> x / y
     | Ir.Irem -> x mod y
     | Ir.Imin -> min x y
     | Ir.Imax -> max x y
     | Ir.Iand -> x land y
     | Ir.Ior -> x lor y
     | Ir.Ixor -> x lxor y
     | Ir.Ishl -> x lsl min y 8)

let rec build_iexpr b = function
  | Lit i -> Builder.index b i
  | Bin (op, x, y) ->
    let vx = build_iexpr b x and vy = build_iexpr b y in
    (match op with
     | Ir.Ishl ->
       (* Clamp the shift as the evaluator does. *)
       let c8 = Builder.index b 8 in
       Builder.ibin b Ir.Ishl vx (Builder.imin b vy c8)
     | op -> Builder.ibin b op vx vy)

let gen_iexpr =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n = 0 then map (fun i -> Lit i) (int_range 1 64)
           else
             frequency
               [ (1, map (fun i -> Lit i) (int_range 1 64));
                 ( 3,
                   let* op =
                     oneofl
                       [ Ir.Iadd; Ir.Isub; Ir.Imul; Ir.Idiv; Ir.Irem;
                         Ir.Imin; Ir.Imax; Ir.Iand; Ir.Ior; Ir.Ixor;
                         Ir.Ishl ]
                   in
                   let* a = self (n / 2) in
                   let* b = self (n / 2) in
                   pure (Bin (op, a, b)) ) ]))

let qcheck_int_expr =
  QCheck2.Test.make ~count:300 ~name:"interp evaluates integer expressions"
    gen_iexpr (fun e ->
      QCheck2.assume
        (match eval_iexpr e with
         | (_ : int) -> true
         | exception Division_by_zero -> false);
      let b = Builder.create () in
      let dst = Builder.buf b "dst" Ir.EIdx64 in
      let v = build_iexpr b e in
      Builder.store b dst (Builder.index b 0) v;
      let fn = Builder.finish b "expr" in
      let out = Array.make 1 0 in
      let bufs = Runtime.layout fn [ (dst, Runtime.RI out) ] in
      let (_ : Interp.result) =
        Interp.run fn ~bufs ~scalars:[] ~mem:free_mem
      in
      out.(0) = eval_iexpr e)

(* Also run the folding pass over the same trees: results must agree. *)
let qcheck_fold_preserves =
  QCheck2.Test.make ~count:300 ~name:"fold preserves expression values"
    gen_iexpr (fun e ->
      QCheck2.assume
        (match eval_iexpr e with
         | (_ : int) -> true
         | exception Division_by_zero -> false);
      let b = Builder.create () in
      let dst = Builder.buf b "dst" Ir.EIdx64 in
      let v = build_iexpr b e in
      Builder.store b dst (Builder.index b 0) v;
      let fn = Builder.finish b "expr" in
      let fn', _ = Fold.run fn in
      let out = Array.make 1 0 in
      let bufs = Runtime.layout fn' [ (dst, Runtime.RI out) ] in
      let (_ : Interp.result) =
        Interp.run fn' ~bufs ~scalars:[] ~mem:free_mem
      in
      out.(0) = eval_iexpr e)

let test_while_gauss () =
  (* sum 0..n-1 via a while loop with two carried values. *)
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let c1 = Builder.index b 1 in
  let results =
    Builder.while_ b
      [ ("i", Ir.Index, c0); ("sum", Ir.Index, c0) ]
      (fun args -> Builder.icmp b Ir.Ult (List.nth args 0) n)
      (fun args ->
        let i = List.nth args 0 and sum = List.nth args 1 in
        [ Builder.iadd b i c1; Builder.iadd b sum i ])
  in
  Builder.store b dst c0 (List.nth results 1);
  let fn = Builder.finish b "gauss" in
  let out = Array.make 1 0 in
  let bufs = Runtime.layout fn [ (dst, Runtime.RI out) ] in
  let (_ : Interp.result) =
    Interp.run fn ~bufs ~scalars:[ 10 ] ~mem:free_mem
  in
  check_int "gauss" 45 out.(0)

let test_if_branches () =
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let c5 = Builder.index b 5 in
  let cond = Builder.icmp b Ir.Ult n c5 in
  Builder.if_ b cond
    (fun () -> Builder.store b dst c0 (Builder.index b 111))
    (fun () -> Builder.store b dst c0 (Builder.index b 222));
  let fn = Builder.finish b "branch" in
  let run n =
    let out = Array.make 1 0 in
    let bufs = Runtime.layout fn [ (dst, Runtime.RI out) ] in
    let (_ : Interp.result) =
      Interp.run fn ~bufs ~scalars:[ n ] ~mem:free_mem
    in
    out.(0)
  in
  check_int "then branch" 111 (run 3);
  check_int "else branch" 222 (run 9)

let test_nested_carried_loops () =
  (* sum of i*j over a 2-D space using nested iter_args. *)
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let outer =
    Builder.for_ b ~carried:[ ("acc", Ir.Index, c0) ] "i" c0 n
      (fun i args ->
        let inner =
          Builder.for_ b
            ~carried:[ ("acc2", Ir.Index, List.hd args) ]
            "j" c0 n
            (fun j args' ->
              [ Builder.iadd b (List.hd args') (Builder.imul b i j) ])
        in
        inner)
  in
  Builder.store b dst c0 (List.hd outer);
  let fn = Builder.finish b "nest" in
  let out = Array.make 1 0 in
  let bufs = Runtime.layout fn [ (dst, Runtime.RI out) ] in
  let (_ : Interp.result) = Interp.run fn ~bufs ~scalars:[ 4 ] ~mem:free_mem in
  (* sum_{i<4} sum_{j<4} i*j = (0+1+2+3)^2 = 36 *)
  check_int "nested sum" 36 out.(0)

let test_dim_and_cast () =
  let b = Builder.create () in
  let src = Builder.buf b "src" Ir.EF64 in
  let dst = Builder.buf b "dst" Ir.EF64 in
  let c0 = Builder.index b 0 in
  let d = Builder.dim b src in
  let f = Builder.cast b Ir.F64 d in
  Builder.store b dst c0 f;
  let fn = Builder.finish b "dim" in
  let out = Array.make 1 0. in
  let bufs =
    Runtime.layout fn
      [ (src, Runtime.RF (Array.make 17 0.)); (dst, Runtime.RF out) ]
  in
  let (_ : Interp.result) = Interp.run fn ~bufs ~scalars:[] ~mem:free_mem in
  check "dim->cast" true (out.(0) = 17.)

let test_byte_buffer_ops () =
  (* i8 loads/stores wrap at 8 bits, as bytes do. *)
  let b = Builder.create () in
  let buf = Builder.buf b "buf" Ir.EI8 in
  let c0 = Builder.index b 0 in
  let x = Builder.load b buf c0 in
  let big = Builder.let_ b "big" Ir.I64 (Ir.Const (Ir.Ci64 300)) in
  let y = Builder.ibin b Ir.Ior x big in
  Builder.store b buf c0 y;
  let fn = Builder.finish b "bytes" in
  let data = Bytes.make 1 '\001' in
  let bufs = Runtime.layout fn [ (buf, Runtime.RB data) ] in
  let (_ : Interp.result) = Interp.run fn ~bufs ~scalars:[] ~mem:free_mem in
  check_int "masked to 8 bits" ((300 lor 1) land 0xff)
    (Bytes.get_uint8 data 0)

let suite =
  [ QCheck_alcotest.to_alcotest qcheck_int_expr;
    QCheck_alcotest.to_alcotest qcheck_fold_preserves;
    Alcotest.test_case "while gauss" `Quick test_while_gauss;
    Alcotest.test_case "if branches" `Quick test_if_branches;
    Alcotest.test_case "nested carried loops" `Quick
      test_nested_carried_loops;
    Alcotest.test_case "dim and cast" `Quick test_dim_and_cast;
    Alcotest.test_case "byte buffers" `Quick test_byte_buffer_ops ]
