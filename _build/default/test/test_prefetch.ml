(* Tests for the prefetch passes: ASaP injection (Fig. 5) and the
   Ainsworth & Jones baseline, including the behavioural differences the
   paper's evaluation turns on. *)

module Kernel = Asap_lang.Kernel
module Encoding = Asap_tensor.Encoding
module Sparsify = Asap_sparsifier.Sparsify
module Emitter = Asap_sparsifier.Emitter
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
open Asap_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile_asap ?(cfg = Asap.default) kernel =
  Sparsify.run ~hook:(Asap.hook cfg) kernel

let test_asap_csr_shape () =
  let c = compile_asap (Kernel.spmv ~enc:(Encoding.csr ()) ()) in
  let k = Ir.counts c.Emitter.fn in
  (* Step 1 (crd) + step 3 (c) prefetches. *)
  check_int "two prefetches" 2 k.Ir.n_prefetches;
  check_int "one site" 1 c.Emitter.n_sites;
  let s = Printer.to_string c.Emitter.fn in
  (* The Fig. 5 sequence: bound from the pos chain, min, bounded load. *)
  check "bound chain load" true
    (Astring_contains.contains s "%Bj_pos_end = memref.load %Bj_pos[%d_i]");
  check "min clamp" true (Astring_contains.contains s "arith.minui");
  check "lookahead load" true (Astring_contains.contains s "%j_ahead");
  check "prefetch c" true
    (Astring_contains.contains s "memref.prefetch %c[")

let test_asap_step1_ablation () =
  let kernel = Kernel.spmv ~enc:(Encoding.csr ()) () in
  let with1 = compile_asap kernel in
  let without1 =
    compile_asap ~cfg:{ Asap.default with Asap.step1 = false } kernel
  in
  let k1 = Ir.counts with1.Emitter.fn in
  let k0 = Ir.counts without1.Emitter.fn in
  check_int "step1 removes one prefetch" (k1.Ir.n_prefetches - 1)
    k0.Ir.n_prefetches

let test_asap_strategy_filter () =
  (* Innermost-only must skip SpMM's middle-loop site; outer-only must
     take it. *)
  let spmm = Kernel.spmm () in
  let inner =
    compile_asap ~cfg:{ Asap.default with Asap.strategy = Asap.Innermost_only }
      spmm
  in
  let outer =
    compile_asap ~cfg:{ Asap.default with Asap.strategy = Asap.Outer_only }
      spmm
  in
  check_int "innermost-only: nothing" 0 (Ir.counts inner.Emitter.fn).Ir.n_prefetches;
  check_int "outer-only: both steps" 2 (Ir.counts outer.Emitter.fn).Ir.n_prefetches

let test_asap_dcsr_two_sites () =
  let c = compile_asap (Kernel.spmv ~enc:(Encoding.dcsr ()) ()) in
  check_int "two sites" 2 c.Emitter.n_sites;
  (* Each site: step-1 prefetch + one target prefetch. *)
  check_int "four prefetches" 4 (Ir.counts c.Emitter.fn).Ir.n_prefetches

let test_asap_csc_write_prefetch () =
  let c = compile_asap (Kernel.spmv ~enc:(Encoding.csc ()) ()) in
  let s = Printer.to_string c.Emitter.fn in
  check "write prefetch for scatter" true
    (Astring_contains.contains s "memref.prefetch %a[")
  ;
  check "write kind" true (Astring_contains.contains s ", write, locality")

let test_asap_spmm_scaled_address () =
  let c =
    compile_asap ~cfg:{ Asap.default with Asap.strategy = Asap.Outer_only }
      (Kernel.spmm ())
  in
  let s = Printer.to_string c.Emitter.fn in
  (* Row prefetch of C needs the j_ahead * N scaling. *)
  check "scaled prefetch address" true
    (Astring_contains.contains s "arith.muli %j_ahead, %d_k")

let test_asap_distance_plumbed () =
  let c =
    compile_asap ~cfg:{ Asap.default with Asap.distance = 7 }
      (Kernel.spmv ~enc:(Encoding.csr ()) ())
  in
  let s = Printer.to_string c.Emitter.fn in
  check "distance constant" true (Astring_contains.contains s "constant 7 :");
  check "doubled distance" true (Astring_contains.contains s "constant 14 :")

let test_asap_verifies () =
  List.iter
    (fun enc ->
      let c = compile_asap (Kernel.spmv ~enc ()) in
      check ("verified " ^ enc.Encoding.name) true
        (Verify.check_result c.Emitter.fn = Ok ()))
    [ Encoding.coo (); Encoding.csr (); Encoding.csc (); Encoding.dcsr () ]

(* --- Ainsworth & Jones --------------------------------------------- *)

let test_aj_matches_spmv () =
  let base = Sparsify.run (Kernel.spmv ~enc:(Encoding.csr ()) ()) in
  let fn, st = Aj.run base.Emitter.fn in
  check_int "one site" 1 st.Aj.matched_sites;
  check_int "two prefetches" 2 (Ir.counts fn).Ir.n_prefetches;
  let s = Printer.to_string fn in
  (* The bound is derived from the loop's upper limit (segment-local). *)
  check "segment bound" true
    (Astring_contains.contains s "%aj_bound = arith.subi %hi");
  check "hoisted before loop" true (Astring_contains.contains s "aj_c2d")

let test_aj_spmm_no_prefetches () =
  let base = Sparsify.run (Kernel.spmm ()) in
  let fn, st = Aj.run base.Emitter.fn in
  (* The paper: the A&J artifact generates no prefetches for SpMM (§5.3). *)
  check_int "no sites" 0 st.Aj.matched_sites;
  check_int "no prefetches" 0 (Ir.counts fn).Ir.n_prefetches

let test_aj_coo_matches_inner_loop () =
  let base = Sparsify.run (Kernel.spmv ~enc:(Encoding.coo ()) ()) in
  let fn, st = Aj.run base.Emitter.fn in
  check_int "matches the element loop" 1 st.Aj.matched_sites;
  check "verifies" true (Verify.check_result fn = Ok ())

let test_aj_dcsr_inner_only () =
  let base = Sparsify.run (Kernel.spmv ~enc:(Encoding.dcsr ()) ()) in
  let (_ : Ir.func), st = Aj.run base.Emitter.fn in
  (* Unlike ASaP's two sites, the low-level pass only sees the innermost
     loop's indirection. *)
  check_int "one site" 1 st.Aj.matched_sites

let test_aj_baseline_unchanged () =
  (* A function with no indirection pattern is returned unmodified. *)
  let b = Builder.create () in
  let src = Builder.buf b "src" Ir.EF64 in
  let dst = Builder.buf b "dst" Ir.EF64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  Builder.for0 b "i" c0 n (fun i ->
      let x = Builder.load b src i in
      Builder.store b dst i x);
  let fn = Builder.finish b "copy" in
  let fn', st = Aj.run fn in
  check_int "no sites" 0 st.Aj.matched_sites;
  check_int "loops scanned" 1 st.Aj.loops_scanned;
  check_int "same op count"
    (Ir.counts fn).Ir.n_lets (Ir.counts fn').Ir.n_lets

let suite =
  [ Alcotest.test_case "asap csr fig5 shape" `Quick test_asap_csr_shape;
    Alcotest.test_case "asap step1 ablation" `Quick test_asap_step1_ablation;
    Alcotest.test_case "asap strategy filter" `Quick test_asap_strategy_filter;
    Alcotest.test_case "asap dcsr two sites" `Quick test_asap_dcsr_two_sites;
    Alcotest.test_case "asap csc write prefetch" `Quick
      test_asap_csc_write_prefetch;
    Alcotest.test_case "asap spmm scaled addr" `Quick
      test_asap_spmm_scaled_address;
    Alcotest.test_case "asap distance plumbed" `Quick
      test_asap_distance_plumbed;
    Alcotest.test_case "asap verifies" `Quick test_asap_verifies;
    Alcotest.test_case "aj matches spmv" `Quick test_aj_matches_spmv;
    Alcotest.test_case "aj spmm no prefetches" `Quick
      test_aj_spmm_no_prefetches;
    Alcotest.test_case "aj coo inner loop" `Quick test_aj_coo_matches_inner_loop;
    Alcotest.test_case "aj dcsr inner only" `Quick test_aj_dcsr_inner_only;
    Alcotest.test_case "aj no-op on clean code" `Quick
      test_aj_baseline_unchanged ]
