(* Tests for kernel descriptions and affine maps. *)

module Affine = Asap_lang.Affine
module Kernel = Asap_lang.Kernel
module Encoding = Asap_tensor.Encoding

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_affine () =
  let m = Affine.make ~n_dims:3 [| 1; 2 |] in
  check_int "rank" 2 (Affine.rank m);
  check "uses j" true (Affine.uses m 1);
  check "not i" false (Affine.uses m 0);
  check "result_of_dim" true (Affine.result_of_dim m 2 = Some 1);
  check "result_of_dim none" true (Affine.result_of_dim m 0 = None);
  check "render" true
    (Affine.to_string m = "affine_map<(i, j, k) -> (j, k)>");
  (try
     let (_ : Affine.t) = Affine.make ~n_dims:2 [| 2 |] in
     Alcotest.fail "accepted out-of-range dim"
   with Invalid_argument _ -> ())

let test_spmv_shape () =
  let k = Kernel.spmv () in
  check_int "dims" 2 (Kernel.n_dims k);
  check "j reduction" true (k.Kernel.k_iterators.(1) = Kernel.Reduction);
  check "sparse is B" true (k.Kernel.k_sparse.Kernel.o_name = "B");
  check "one dense in" true (List.length k.Kernel.k_dense_ins = 1)

let test_spmm_shape () =
  let k = Kernel.spmm () in
  check_int "dims" 3 (Kernel.n_dims k);
  check "k parallel" true (k.Kernel.k_iterators.(2) = Kernel.Parallel);
  check "out is A(i,k)" true
    (k.Kernel.k_out.Kernel.o_map.Affine.results = [| 0; 2 |])

let test_validate_rejects () =
  (* Output indexed by a reduction dimension must be rejected. *)
  (try
     let (_ : Kernel.t) =
       Kernel.validate
         { (Kernel.spmv ()) with
           Kernel.k_out =
             { Kernel.o_name = "a"; o_map = Affine.make ~n_dims:2 [| 1 |] } }
     in
     Alcotest.fail "accepted reduction-indexed output"
   with Invalid_argument _ -> ());
  (* Encoding rank must match the sparse operand. *)
  (try
     let (_ : Kernel.t) =
       Kernel.validate
         { (Kernel.spmv ()) with Kernel.k_encoding = Encoding.csf 3 }
     in
     Alcotest.fail "accepted rank mismatch"
   with Invalid_argument _ -> ())

let test_linalg_text () =
  let s = Kernel.to_linalg_string (Kernel.spmv ()) in
  List.iter
    (fun frag ->
      check ("contains " ^ frag) true (Astring_contains.contains s frag))
    [ "linalg.generic"; "iterator_types"; "\"reduction\""; "arith.mulf";
      "sorted = true" ];
  let sb = Kernel.to_linalg_string (Kernel.spmv ~body:Kernel.And_or ()) in
  check "binary body" true (Astring_contains.contains sb "arith.andi")

let suite =
  [ Alcotest.test_case "affine maps" `Quick test_affine;
    Alcotest.test_case "spmv kernel" `Quick test_spmv_shape;
    Alcotest.test_case "spmm kernel" `Quick test_spmm_shape;
    Alcotest.test_case "kernel validation" `Quick test_validate_rejects;
    Alcotest.test_case "linalg rendering" `Quick test_linalg_text ]
