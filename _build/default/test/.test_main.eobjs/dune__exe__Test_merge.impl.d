test/test_merge.ml: Alcotest Array Asap_core Asap_ir Asap_sim Asap_sparsifier Asap_tensor Ir List Option QCheck2 QCheck_alcotest Verify
