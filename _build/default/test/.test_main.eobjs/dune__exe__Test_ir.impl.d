test/test_ir.ml: Alcotest Array Asap_ir Astring_contains Builder Fold Ir Licm List Printer Rewrite Verify
