test/test_interp_props.ml: Alcotest Array Asap_ir Asap_sim Builder Bytes Fold Ir List QCheck2 QCheck_alcotest
