test/test_core.ml: Alcotest Array Asap_core Asap_ir Asap_lang Asap_metrics Asap_prefetch Asap_sim Asap_tensor Asap_workloads Astring_contains Float List Printf QCheck2 QCheck_alcotest
