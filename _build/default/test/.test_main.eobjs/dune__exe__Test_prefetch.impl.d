test/test_prefetch.ml: Alcotest Asap_ir Asap_lang Asap_prefetch Asap_sparsifier Asap_tensor Astring_contains Builder Ir List Printer Verify
