test/test_trace.ml: Alcotest Array Asap_core Asap_ir Asap_lang Asap_prefetch Asap_sim Asap_tensor Asap_workloads Ir List Printf
