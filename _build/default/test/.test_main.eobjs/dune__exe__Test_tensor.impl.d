test/test_tensor.ml: Alcotest Array Asap_tensor Astring_contains Coo Coord_tree Dense Encoding List Matrix_market QCheck2 QCheck_alcotest Storage
