test/test_main.ml: Alcotest Test_core Test_interp_props Test_ir Test_lang Test_merge Test_prefetch Test_sim Test_sparsifier Test_tensor Test_trace
