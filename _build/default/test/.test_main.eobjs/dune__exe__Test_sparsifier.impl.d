test/test_sparsifier.ml: Alcotest Asap_ir Asap_lang Asap_sparsifier Asap_tensor Astring_contains Ir List Printf Verify
