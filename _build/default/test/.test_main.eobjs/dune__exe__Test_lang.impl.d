test/test_lang.ml: Alcotest Array Asap_lang Asap_tensor Astring_contains List
