test/test_sim.ml: Alcotest Array Asap_ir Asap_sim Astring_contains Builder Ir List
