(* Tests for merge-based co-iteration (§3.1): element-wise union add and
   intersection multiply over two sparse operands. *)

module Coo = Asap_tensor.Coo
module Machine = Asap_sim.Machine
module Merge = Asap_sparsifier.Merge
module Driver = Asap_core.Driver
module Reference = Asap_core.Reference
open Asap_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine = Machine.gracemont_scaled ()

let vec ~n entries =
  Coo.create ~dims:[| n |]
    ~coords:(Array.of_list (List.map (fun (i, _) -> [| i |]) entries))
    ~vals:(Array.of_list (List.map snd entries))

let test_structure () =
  let add = Merge.vector_ewise Merge.Union_add in
  let mul = Merge.vector_ewise Merge.Intersect_mul in
  let ca = Ir.counts add.Merge.m_fn and cm = Ir.counts mul.Merge.m_fn in
  (* Union needs the main merge plus two tail loops; intersection only the
     merge. *)
  check_int "union whiles" 3 ca.Ir.n_whiles;
  check_int "intersection whiles" 1 cm.Ir.n_whiles;
  check "both verify" true
    (Verify.check_result add.Merge.m_fn = Ok ()
     && Verify.check_result mul.Merge.m_fn = Ok ())

let test_vector_union_hand () =
  let b = vec ~n:8 [ (0, 1.); (3, 2.); (5, 3.) ] in
  let c = vec ~n:8 [ (3, 10.); (6, 20.) ] in
  let r = Driver.vector_ewise machine Merge.Union_add b c in
  Alcotest.(check (array (float 1e-12)))
    "union add" [| 1.; 0.; 0.; 12.; 0.; 3.; 20.; 0. |]
    (Option.get r.Driver.out_f)

let test_vector_intersection_hand () =
  let b = vec ~n:8 [ (0, 2.); (3, 2.); (5, 3.) ] in
  let c = vec ~n:8 [ (3, 10.); (5, 4.); (6, 20.) ] in
  let r = Driver.vector_ewise machine Merge.Intersect_mul b c in
  Alcotest.(check (array (float 1e-12)))
    "intersect mul" [| 0.; 0.; 0.; 20.; 0.; 12.; 0.; 0. |]
    (Option.get r.Driver.out_f)

let test_empty_operands () =
  let e = vec ~n:5 [] in
  let b = vec ~n:5 [ (1, 7.) ] in
  let r1 = Driver.vector_ewise machine Merge.Union_add e b in
  check "empty + b = b" true ((Option.get r1.Driver.out_f).(1) = 7.);
  let r2 = Driver.vector_ewise machine Merge.Intersect_mul e b in
  check "empty x b = 0" true
    (Array.for_all (fun x -> x = 0.) (Option.get r2.Driver.out_f))

let gen_vec_pair =
  QCheck2.Gen.(
    let* n = int_range 1 40 in
    let entries k =
      list_size (int_range 0 k)
        (pair (int_range 0 (n - 1))
           (map (fun v -> float_of_int v +. 1.) (int_range 1 20)))
    in
    let* b = entries 25 in
    let* c = entries 25 in
    pure (n, b, c))

(* Duplicates within one operand are summed at pack time; build the
   references from deduplicated COOs. *)
let dedup n entries =
  Coo.sorted_dedup (vec ~n entries)

let qcheck_vector_ops =
  QCheck2.Test.make ~count:200 ~name:"merge vectors = dense reference"
    gen_vec_pair (fun (n, be, ce) ->
      let b = dedup n be and c = dedup n ce in
      let add = Driver.vector_ewise machine Merge.Union_add b c in
      let mul = Driver.vector_ewise machine Merge.Intersect_mul b c in
      Option.get add.Driver.out_f = Reference.ewise_add b c
      && Option.get mul.Driver.out_f = Reference.ewise_mul b c)

let gen_mat_pair =
  QCheck2.Gen.(
    let* rows = int_range 1 10 in
    let* cols = int_range 1 10 in
    let entries k =
      list_size (int_range 0 k)
        (triple (int_range 0 (rows - 1)) (int_range 0 (cols - 1))
           (map (fun v -> float_of_int v +. 1.) (int_range 1 9)))
    in
    let* b = entries 30 in
    let* c = entries 30 in
    pure (rows, cols, b, c))

let qcheck_matrix_ops =
  QCheck2.Test.make ~count:150 ~name:"merge matrices = dense reference"
    gen_mat_pair (fun (rows, cols, be, ce) ->
      let b = Coo.sorted_dedup (Coo.of_triples ~rows ~cols be) in
      let c = Coo.sorted_dedup (Coo.of_triples ~rows ~cols ce) in
      let add = Driver.matrix_ewise machine Merge.Union_add b c in
      let mul = Driver.matrix_ewise machine Merge.Intersect_mul b c in
      Option.get add.Driver.out_f = Reference.ewise_add b c
      && Option.get mul.Driver.out_f = Reference.ewise_mul b c)

let test_shape_validation () =
  let b = vec ~n:5 [ (1, 1.) ] and c = vec ~n:6 [ (1, 1.) ] in
  (try
     let (_ : Driver.result) = Driver.vector_ewise machine Merge.Union_add b c in
     Alcotest.fail "accepted mismatched lengths"
   with Invalid_argument _ -> ())

let suite =
  [ Alcotest.test_case "merge loop structure" `Quick test_structure;
    Alcotest.test_case "vector union by hand" `Quick test_vector_union_hand;
    Alcotest.test_case "vector intersection by hand" `Quick
      test_vector_intersection_hand;
    Alcotest.test_case "empty operands" `Quick test_empty_operands;
    QCheck_alcotest.to_alcotest qcheck_vector_ops;
    QCheck_alcotest.to_alcotest qcheck_matrix_ops;
    Alcotest.test_case "shape validation" `Quick test_shape_validation ]
