(* Tests for sparsification: iteration graphs, emitted loop structure per
   format (Fig. 3 shapes), indirect-access site detection (§3.1). *)

module Kernel = Asap_lang.Kernel
module Encoding = Asap_tensor.Encoding
module Ig = Asap_sparsifier.Iteration_graph
module Sparsify = Asap_sparsifier.Sparsify
module Emitter = Asap_sparsifier.Emitter
module Access = Asap_sparsifier.Access
open Asap_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_iteration_graph_spmv_csr () =
  let g = Ig.build (Kernel.spmv ()) in
  Alcotest.(check (array int)) "order i then j" [| 0; 1 |] g.Ig.order;
  Alcotest.(check (array int)) "sparse dims" [| 0; 1 |] g.Ig.sparse_dims;
  check "edge i->j" true (List.mem (0, 1) g.Ig.edges);
  check_int "no dense-only dims" 0 (List.length (Ig.dense_only_dims g))

let test_iteration_graph_spmv_csc () =
  let g = Ig.build (Kernel.spmv ~enc:(Encoding.csc ()) ()) in
  (* CSC stores columns first: iteration must follow the hierarchy j, i. *)
  Alcotest.(check (array int)) "order j then i" [| 1; 0 |] g.Ig.order;
  check "edge j->i" true (List.mem (1, 0) g.Ig.edges)

let test_iteration_graph_spmm () =
  let g = Ig.build (Kernel.spmm ()) in
  Alcotest.(check (array int)) "order i j k" [| 0; 1; 2 |] g.Ig.order;
  Alcotest.(check (list int)) "k dense-only" [ 2 ] (Ig.dense_only_dims g);
  check "drawing" true (Astring_contains.contains (Ig.to_string g) "i->j")

let counts_of fn = Ir.counts fn

(* Fig. 3b: CSR SpMV is a perfect 2-deep for nest, no whiles. *)
let test_csr_structure () =
  let c = Sparsify.run (Kernel.spmv ~enc:(Encoding.csr ()) ()) in
  let k = counts_of c.Emitter.fn in
  check_int "fors" 2 k.Ir.n_fors;
  check_int "whiles" 0 k.Ir.n_whiles;
  (* Baseline run has no hook, so no sites are recorded and no prefetches
     are emitted. *)
  check_int "no sites" 0 c.Emitter.n_sites;
  check_int "no prefetches" 0 k.Ir.n_prefetches

(* Fig. 3a: COO SpMV has the segment while + dedup while + element for. *)
let test_coo_structure () =
  let c = Sparsify.run (Kernel.spmv ~enc:(Encoding.coo ()) ()) in
  let k = counts_of c.Emitter.fn in
  check_int "whiles" 2 k.Ir.n_whiles;
  check_int "fors" 1 k.Ir.n_fors

(* Fig. 3c: DCSR SpMV is a perfect 2-deep for nest over compressed levels. *)
let test_dcsr_structure () =
  let c = Sparsify.run (Kernel.spmv ~enc:(Encoding.dcsr ()) ()) in
  let k = counts_of c.Emitter.fn in
  check_int "fors" 2 k.Ir.n_fors;
  check_int "whiles" 0 k.Ir.n_whiles

(* Fig. 9: SpMM adds the innermost dense k loop. *)
let test_spmm_structure () =
  let c = Sparsify.run (Kernel.spmm ()) in
  let k = counts_of c.Emitter.fn in
  check_int "fors" 3 k.Ir.n_fors

let collect_sites kernel =
  let sites = ref [] in
  let hook _b (s : Access.site) = sites := s :: !sites in
  let (_ : Emitter.compiled) = Sparsify.run ~hook kernel in
  List.rev !sites

let test_sites_spmv_csr () =
  let sites = collect_sites (Kernel.spmv ~enc:(Encoding.csr ()) ()) in
  check_int "one site" 1 (List.length sites);
  let s = List.hd sites in
  check "innermost" true s.Access.s_innermost;
  check_int "level" 1 s.Access.s_level;
  check_int "dim j" 1 s.Access.s_dim;
  check_int "one target (c)" 1 (List.length s.Access.s_targets);
  let t = List.hd s.Access.s_targets in
  check "target is c" true (t.Access.t_buf.Ir.bname = "c");
  check "read target" true (not t.Access.t_write);
  check "vector scale" true (t.Access.t_scale = None)

let test_sites_spmv_csc () =
  let sites = collect_sites (Kernel.spmv ~enc:(Encoding.csc ()) ()) in
  (* CSC: the inner compressed level resolves i, which scatters into a. *)
  check_int "one site" 1 (List.length sites);
  let s = List.hd sites in
  check_int "dim i" 0 s.Access.s_dim;
  let t = List.hd s.Access.s_targets in
  check "target is out a" true (t.Access.t_buf.Ir.bname = "a");
  check "write target" true t.Access.t_write

let test_sites_spmv_dcsr () =
  let sites = collect_sites (Kernel.spmv ~enc:(Encoding.dcsr ()) ()) in
  (* Level 0 resolves i feeding a (outer site), level 1 resolves j feeding
     c (innermost site). *)
  check_int "two sites" 2 (List.length sites);
  let outer = List.nth sites 0 and inner = List.nth sites 1 in
  check "outer not innermost" false outer.Access.s_innermost;
  check "inner innermost" true inner.Access.s_innermost

let test_sites_spmm_csr () =
  let sites = collect_sites (Kernel.spmm ()) in
  check_int "one site" 1 (List.length sites);
  let s = List.hd sites in
  (* The position loop is a middle loop: outer-loop prefetching (§5.2). *)
  check "not innermost" false s.Access.s_innermost;
  let t = List.hd s.Access.s_targets in
  check "target is C" true (t.Access.t_buf.Ir.bname = "C");
  check "row scale present" true (t.Access.t_scale <> None)

let test_sites_spmv_coo () =
  let sites = collect_sites (Kernel.spmv ~enc:(Encoding.coo ()) ()) in
  (* Only the element loop over the singleton level fires (the while-based
     segment loop does not host prefetch sites). *)
  check_int "one site" 1 (List.length sites);
  check_int "level 1" 1 (List.hd sites).Access.s_level

let test_all_verify () =
  List.iter
    (fun enc ->
      List.iter
        (fun kernel ->
          let c = Sparsify.run kernel in
          check
            (Printf.sprintf "verified %s/%s" c.Emitter.fn.Ir.fn_name
               enc.Encoding.name)
            true
            (Verify.check_result c.Emitter.fn = Ok ()))
        [ Kernel.spmv ~enc (); Kernel.spmv ~enc ~body:Kernel.And_or () ])
    [ Encoding.coo (); Encoding.csr (); Encoding.csc (); Encoding.dcsr () ]

let test_scalar_params_are_extents () =
  let c = Sparsify.run (Kernel.spmm ()) in
  check_int "three extents" 3 (List.length c.Emitter.scalars);
  List.iteri
    (fun i ((_ : Ir.value), d) -> check_int "extent order" i d)
    c.Emitter.scalars

let test_unsupported_singleton_chain () =
  (* Non-unique compressed not followed by singleton is rejected. *)
  let enc =
    Encoding.make "weird"
      [| Encoding.Compressed { unique = false };
         Encoding.Compressed { unique = true } |]
      [| 0; 1 |]
  in
  (try
     let (_ : Emitter.compiled) = Sparsify.run (Kernel.spmv ~enc ()) in
     Alcotest.fail "accepted unsupported level chain"
   with Emitter.Unsupported _ -> ())

let suite =
  [ Alcotest.test_case "iteration graph csr" `Quick
      test_iteration_graph_spmv_csr;
    Alcotest.test_case "iteration graph csc" `Quick
      test_iteration_graph_spmv_csc;
    Alcotest.test_case "iteration graph spmm" `Quick test_iteration_graph_spmm;
    Alcotest.test_case "csr loop structure" `Quick test_csr_structure;
    Alcotest.test_case "coo loop structure" `Quick test_coo_structure;
    Alcotest.test_case "dcsr loop structure" `Quick test_dcsr_structure;
    Alcotest.test_case "spmm loop structure" `Quick test_spmm_structure;
    Alcotest.test_case "sites spmv csr" `Quick test_sites_spmv_csr;
    Alcotest.test_case "sites spmv csc" `Quick test_sites_spmv_csc;
    Alcotest.test_case "sites spmv dcsr" `Quick test_sites_spmv_dcsr;
    Alcotest.test_case "sites spmm csr" `Quick test_sites_spmm_csr;
    Alcotest.test_case "sites spmv coo" `Quick test_sites_spmv_coo;
    Alcotest.test_case "all formats verify" `Quick test_all_verify;
    Alcotest.test_case "scalar params" `Quick test_scalar_params_are_extents;
    Alcotest.test_case "unsupported chain" `Quick
      test_unsupported_singleton_chain ]
