(* Quickstart: the paper's running example end to end.

   Builds the 3x3 sparse matrix of Fig. 2, shows its coordinate hierarchy
   trees and buffers for COO/CSR/DCSR, sparsifies SpMV for each format
   (Fig. 3), injects ASaP prefetches (Fig. 5), runs everything on the
   simulated machine and checks the results against a dense reference. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Storage = Asap_tensor.Storage
module Coord_tree = Asap_tensor.Coord_tree
module Kernel = Asap_lang.Kernel
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let () =
  (* The matrix of Fig. 2: non-zeros at (0,0), (0,2) and (2,2). *)
  let b = Coo.of_triples ~rows:3 ~cols:3 [ (0, 0, 1.); (0, 2, 2.); (2, 2, 3.) ] in

  section "Fig. 1a: SpMV as a linalg.generic operation";
  print_string (Kernel.to_linalg_string (Kernel.spmv ()));

  let formats =
    [ Encoding.coo (); Encoding.csr (); Encoding.dcsr () ]
  in
  section "Fig. 2: coordinate hierarchy trees and buffers";
  List.iter
    (fun enc ->
      let st = Storage.pack enc b in
      Printf.printf "--- %s: %s\n%s\n" enc.Encoding.name
        (Storage.describe st)
        (Coord_tree.to_string (Coord_tree.of_storage st)))
    formats;

  section "Fig. 3: sparsified SpMV per format";
  List.iter
    (fun enc ->
      let c = Pipeline.compile (Kernel.spmv ~enc ()) Pipeline.Baseline in
      Printf.printf "--- %s ---\n%s\n" enc.Encoding.name (Pipeline.listing c))
    formats;

  section "Fig. 5: ASaP prefetch injection (CSR, innermost loop)";
  let asap = Pipeline.Asap { Asap.default with distance = 16 } in
  let c = Pipeline.compile (Kernel.spmv ~enc:(Encoding.csr ()) ()) asap in
  print_string (Pipeline.listing c);
  Printf.printf "(%d indirect-access site(s) instrumented)\n"
    c.Pipeline.n_prefetch_sites;

  section "Running SpMV on the simulated machine";
  let machine = Machine.gracemont_scaled () in
  let module Report = Asap_sim.Exec.Report in
  List.iter
    (fun enc ->
      List.iter
        (fun (vname, variant) ->
          (* One Cfg names the whole execution context; Driver.run takes
             the kernel spec. Counters ride along on the result. *)
          let cfg = Driver.Cfg.make ~machine ~variant () in
          let r = Driver.run cfg (Driver.Spmv enc) b in
          let err = Driver.check_spmv b r in
          Printf.printf "%-5s %-16s cycles=%-6d instrs=%-5d err=%g\n"
            enc.Encoding.name vname
            (Report.cycles r.Driver.report)
            (Report.instructions r.Driver.report) err;
          if err > 1e-9 then failwith "result mismatch!")
        [ ("baseline", Pipeline.Baseline);
          ("asap", asap);
          ("ainsworth-jones",
           Pipeline.Ainsworth_jones Asap_prefetch.Ainsworth_jones.default) ])
    formats;

  section "Named counters (ASaP, CSR)";
  let cfg = Driver.Cfg.make ~machine ~variant:asap () in
  let r = Driver.run cfg (Driver.Spmv (Encoding.csr ())) b in
  List.iter
    (fun (name, v) ->
      if v > 0 && (String.length name < 3 || String.sub name 0 3 <> "op.")
      then Printf.printf "  %-22s %d\n" name v)
    r.Driver.counters;
  print_endline "\nAll results match the dense reference.";
  print_endline "Next: see examples/graph_spmv.ml and examples/ml_spmm.ml."
