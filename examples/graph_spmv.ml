(* Graph-analytics SpMV: the paper's motivating workload (§1, §5.3).

   Runs SpMV over a GAP-twitter-like power-law adjacency matrix — short
   adjacency lists for most vertices, a heavy tail of hubs — and compares
   the three implementation variants under both hardware-prefetcher
   configurations. This is the single-matrix version of Figs. 6/7/11. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Hierarchy = Asap_sim.Hierarchy
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Suite = Asap_workloads.Suite

let () =
  let entry = Suite.find "GAP-twitter" in
  Printf.printf "generating %s (%s)...\n%!" entry.Suite.name entry.Suite.group;
  let coo = entry.Suite.gen () in
  let stats = Coo.matrix_stats coo in
  Printf.printf
    "rows=%d cols=%d nnz=%d row-degree min/mean/max = %d/%.1f/%d\n\n"
    stats.Coo.s_rows stats.Coo.s_cols stats.Coo.s_nnz stats.Coo.s_row_min
    stats.Coo.s_row_mean stats.Coo.s_row_max;
  let enc = Encoding.csr () in
  let variants =
    [ ("baseline", Pipeline.Baseline);
      ("asap", Pipeline.Asap Asap.default);
      ("ainsworth-jones", Pipeline.Ainsworth_jones Aj.default) ]
  in
  let hw_configs =
    [ ("default-hw", Machine.hw_default); ("optimized-hw", Machine.hw_optimized) ]
  in
  Printf.printf "%-16s %-13s %12s %8s %10s %10s\n" "variant" "hw-config"
    "nnz/ms" "L2 MPKI" "sw-pf" "pf-useful";
  let base_tp = ref 0. in
  List.iter
    (fun (hw_name, hw) ->
      let machine = Machine.gracemont_scaled ~hw () in
      List.iter
        (fun (vname, variant) ->
          let cfg = Driver.Cfg.make ~machine ~variant () in
          let r = Driver.run cfg (Driver.Spmv enc) coo in
          let err = Driver.check_spmv coo r in
          if err > 1e-6 then failwith "result mismatch";
          let tp = Driver.throughput r in
          if vname = "baseline" && hw_name = "default-hw" then base_tp := tp;
          Printf.printf "%-16s %-13s %12.0f %8.2f %10d %10d   (%.2fx)\n%!"
            vname hw_name tp (Driver.mpki r)
            (Exec.Report.sw_issued r.Driver.report)
            (Exec.Report.sw_useful r.Driver.report)
            (tp /. !base_tp))
        variants)
    hw_configs
