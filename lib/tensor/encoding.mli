(** Sparse tensor encodings — the per-level storage description of MLIR's
    sparse_tensor dialect (paper §2.2, Fig. 1b).

    An encoding maps tensor dimensions to storage levels of the coordinate
    hierarchy tree. Each level is dense (all coordinates implicit),
    compressed (pos/crd buffer pair, optionally non-unique), or singleton
    (exactly one child per parent, crd buffer only). *)

type level_format =
  | Dense
  | Compressed of { unique : bool }
      (** [unique = false] retains duplicate parent coordinates, as in
          COO's top level. *)
  | Singleton

(** Width of the pos/crd integer elements (paper §4.2: 32-bit indices when
    the non-zero count permits, 64-bit otherwise). *)
type index_width = W32 | W64

type t = {
  name : string;               (** display name, e.g. "CSR" *)
  levels : level_format array; (** one per storage level *)
  dim_to_lvl : int array;      (** level [l] stores dimension [dim_to_lvl.(l)] *)
  width : index_width;
  block : (int * int) option;
      (** [Some (bh, bw)]: levels index the block coordinate space and each
          stored leaf carries [bh*bw] values (row-major within the block). *)
}

(** [rank t] is the number of storage levels (= tensor rank). *)
val rank : t -> int

val level_name : level_format -> string

(** [has_pos l] tells whether level format [l] needs a positions buffer. *)
val has_pos : level_format -> bool

(** [has_crd l] tells whether level format [l] needs a coordinates
    buffer. *)
val has_crd : level_format -> bool

(** [make ?width name levels dim_to_lvl] validates and builds an encoding.
    @raise Invalid_argument if [dim_to_lvl] is not a permutation or the
    first level is singleton. *)
val make : ?width:index_width -> string -> level_format array -> int array -> t

(** Coordinate list: compressed non-unique over singleton (Fig. 1b). *)
val coo : ?width:index_width -> unit -> t

(** Compressed sparse row: dense over compressed. *)
val csr : ?width:index_width -> unit -> t

(** Compressed sparse column: CSR with swapped dimension order. *)
val csc : ?width:index_width -> unit -> t

(** Doubly compressed sparse row: compressed over compressed. *)
val dcsr : ?width:index_width -> unit -> t

(** Rank-1 compressed sparse vector. *)
val sparse_vector : ?width:index_width -> unit -> t

(** [bsr ~bh ~bw ()] is Block Sparse Row with [bh]x[bw] blocks: dense
    block rows over compressed block columns, each stored block holding
    [bh*bw] row-major values (explicit zeros inside a block; edge blocks
    are zero-padded and clamped at iteration time). *)
val bsr : ?width:index_width -> bh:int -> bw:int -> unit -> t

(** [block_elems t] is the number of values per stored leaf — [bh*bw]
    for blocked encodings, 1 otherwise. *)
val block_elems : t -> int

(** [csf r] is the rank-[r] compressed sparse fiber format (all levels
    compressed, identity dimension order). *)
val csf : ?width:index_width -> int -> t

(** [to_string t] renders the [#sparse_tensor.encoding] attribute in the
    style of Fig. 1b. *)
val to_string : t -> string
