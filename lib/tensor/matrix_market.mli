(** Matrix Market (.mtx) coordinate-format reader/writer.

    Supports the subset SuiteSparse distributes: object "matrix", format
    "coordinate", fields real/integer/pattern, symmetries
    general/symmetric/skew-symmetric. Pattern entries get value 1.0;
    symmetric storage is expanded to the full matrix on read. *)

exception Parse_error of string

(** [of_lines lines] parses the line sequence of a .mtx file. Accepts
    CRLF line endings, leading/trailing whitespace, and blank or
    comment lines anywhere after the header; rejects duplicate
    coordinates (including duplicates produced by symmetry expansion).
    @raise Parse_error on malformed input. *)
val of_lines : string Seq.t -> Coo.t

(** [of_string s] parses in-memory .mtx text. *)
val of_string : string -> Coo.t

(** [read path] parses the file at [path]. *)
val read : string -> Coo.t

(** [to_string coo] renders general real coordinate format.
    @raise Invalid_argument if [coo] is not rank 2. *)
val to_string : Coo.t -> string

(** [write path coo] writes [coo] to [path]. *)
val write : string -> Coo.t -> unit
