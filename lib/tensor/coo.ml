(* Coordinate-list (COO) exchange form.

   The unsorted triple/tuple list every other representation is built from:
   generators and Matrix Market readers produce it, [Storage.pack] consumes
   it. Coordinates are stored as an [nnz][rank] array in dimension order. *)

type t = {
  dims : int array;            (* tensor shape, one extent per dimension *)
  coords : int array array;    (* coords.(k) is the rank-length tuple of nnz k *)
  vals : float array;
}

let rank t = Array.length t.dims
let nnz t = Array.length t.vals

let create ~dims ~coords ~vals =
  if Array.length coords <> Array.length vals then
    invalid_arg "Coo.create: coords/vals length mismatch";
  Array.iter
    (fun c ->
      if Array.length c <> Array.length dims then
        invalid_arg "Coo.create: coordinate rank mismatch";
      Array.iteri
        (fun d x ->
          if x < 0 || x >= dims.(d) then
            invalid_arg
              (Printf.sprintf "Coo.create: coordinate %d out of bound %d" x
                 dims.(d)))
        c)
    coords;
  { dims; coords; vals }

(** [of_triples ~rows ~cols triples] builds a matrix from (i, j, v) triples. *)
let of_triples ~rows ~cols triples =
  let n = List.length triples in
  let coords = Array.make n [||] and vals = Array.make n 0. in
  List.iteri
    (fun k (i, j, v) ->
      coords.(k) <- [| i; j |];
      vals.(k) <- v)
    triples;
  create ~dims:[| rows; cols |] ~coords ~vals

(** Lexicographic comparison of coordinates under a permutation: position
    [l] of the sort key is dimension [perm.(l)]. *)
let compare_perm perm a b =
  let rec go l =
    if l = Array.length perm then 0
    else
      let c = compare a.(perm.(l)) b.(perm.(l)) in
      if c <> 0 then c else go (l + 1)
  in
  go 0

(* Number of bits needed to address [n] distinct indices. *)
let index_bits n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  go 0

(* Whether every (permuted lexicographic key, element index) pair fits in
   one tagged int: the key range is the product of the permuted extents,
   shifted left by the index width. Returns the key range, or -1 on
   overflow. *)
let packed_key_range dims perm ~idx_bits =
  let limit = max_int asr idx_bits in
  let rec go l range =
    if l = Array.length perm then range
    else
      let d = dims.(perm.(l)) in
      if d > 0 && range > limit / d then -1 else go (l + 1) (range * d)
  in
  go 0 1

(** [sorted_dedup ?perm t] returns a copy of [t] sorted lexicographically by
    the (optionally permuted) dimension order, with duplicate coordinates
    summed — the canonical form sparsification's [sorted = true] expects. *)
let sorted_dedup ?perm t =
  let perm =
    match perm with Some p -> p | None -> Array.init (rank t) Fun.id
  in
  let n = nnz t in
  let r = Array.length perm in
  let idx_bits = index_bits n in
  if packed_key_range t.dims perm ~idx_bits >= 0 then begin
    (* Fast path: encode each element as key * 2^idx_bits + index and sort
       plain ints. Sorting these is exactly the reference order below —
       key-major, original-index-minor — so the output (including the
       float summation order over duplicates) is bit-identical. *)
    let keys = Array.make n 0 in
    for k = 0 to n - 1 do
      let c = t.coords.(k) in
      let key = ref 0 in
      for l = 0 to r - 1 do
        key := (!key * t.dims.(perm.(l))) + c.(perm.(l))
      done;
      keys.(k) <- (!key lsl idx_bits) lor k
    done;
    Array.sort (fun (a : int) b -> compare a b) keys;
    let mask = (1 lsl idx_bits) - 1 in
    let out_c = Array.make n [||] and out_v = Array.make n 0. in
    let m = ref 0 and k = ref 0 in
    while !k < n do
      let key = keys.(!k) asr idx_bits in
      let first = keys.(!k) land mask in
      let v = ref 0. in
      while !k < n && keys.(!k) asr idx_bits = key do
        v := !v +. t.vals.(keys.(!k) land mask);
        incr k
      done;
      out_c.(!m) <- t.coords.(first);
      out_v.(!m) <- !v;
      incr m
    done;
    { dims = Array.copy t.dims;
      coords = Array.sub out_c 0 !m;
      vals = Array.sub out_v 0 !m }
  end
  else begin
    (* Reference path: comparator over the coordinate tuples, index as the
       tie-break so duplicate groups keep insertion order. *)
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        let c = compare_perm perm t.coords.(a) t.coords.(b) in
        if c <> 0 then c else compare a b)
      order;
    let out_c = ref [] and out_v = ref [] in
    let m = ref 0 and k = ref 0 in
    while !k < n do
      let c = t.coords.(order.(!k)) in
      let v = ref 0. in
      while !k < n && compare_perm perm t.coords.(order.(!k)) c = 0 do
        v := !v +. t.vals.(order.(!k));
        incr k
      done;
      out_c := c :: !out_c;
      out_v := !v :: !out_v;
      incr m
    done;
    { dims = Array.copy t.dims;
      coords = Array.of_list (List.rev !out_c);
      vals = Array.of_list (List.rev !out_v) }
  end

(** [to_dense t] materialises a row-major dense array. *)
let to_dense t =
  let total = Array.fold_left ( * ) 1 t.dims in
  let d = Array.make total 0. in
  let strides = Array.make (rank t) 1 in
  for l = rank t - 2 downto 0 do
    strides.(l) <- strides.(l + 1) * t.dims.(l + 1)
  done;
  Array.iteri
    (fun k c ->
      let off = ref 0 in
      Array.iteri (fun l x -> off := !off + (x * strides.(l))) c;
      d.(!off) <- d.(!off) +. t.vals.(k))
    t.coords;
  d

(** Structural statistics used by workload selection (paper §4.2). *)
type stats = {
  s_rows : int;
  s_cols : int;
  s_nnz : int;
  s_row_min : int;
  s_row_max : int;
  s_row_mean : float;
  s_footprint_bytes : int;     (* CSR with given index width + f64 values *)
}

let matrix_stats ?(index_bytes = 4) t =
  if rank t <> 2 then invalid_arg "Coo.matrix_stats: not a matrix";
  let rows = t.dims.(0) and cols = t.dims.(1) in
  let per_row = Array.make rows 0 in
  Array.iter (fun c -> per_row.(c.(0)) <- per_row.(c.(0)) + 1) t.coords;
  let mn = Array.fold_left min max_int per_row
  and mx = Array.fold_left max 0 per_row in
  let n = nnz t in
  { s_rows = rows; s_cols = cols; s_nnz = n;
    s_row_min = (if rows = 0 then 0 else mn);
    s_row_max = mx;
    s_row_mean = (if rows = 0 then 0. else float_of_int n /. float_of_int rows);
    s_footprint_bytes =
      ((rows + 1) * index_bytes) + (n * index_bytes) + (n * 8) }
