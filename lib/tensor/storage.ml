(* Segmented buffer storage of coordinate hierarchy trees (paper §2.3).

   [pack] serialises a COO tensor into per-level buffers according to an
   encoding: dense levels store nothing, compressed levels a pos/crd pair,
   singleton levels a crd buffer. Node identity at level l is the index of
   the node among all level-l nodes, which makes the child relation purely
   arithmetic: dense children are [node * size + v], compressed children are
   the positions [pos[node], pos[node+1]), singleton children are [node]. *)

type level_storage =
  | Ldense of { lsize : int }
  | Lcompressed of { pos : int array; crd : int array; unique : bool }
  | Lsingleton of { crd : int array }

type t = {
  enc : Encoding.t;
  dims : int array;
  lvls : level_storage array;
  vals : float array;
}

let nnz_of t = Array.length t.vals

(* [pack_plain enc coo] sorts, deduplicates and serialises [coo].

   The construction sweeps levels top-down over the element range,
   maintaining the current segmentation: one (start, end) run of elements
   per node of the previous level. *)
let pack_plain (enc : Encoding.t) (coo : Coo.t) : t =
  let sorted = Coo.sorted_dedup ~perm:enc.dim_to_lvl coo in
  let n = Coo.nnz sorted in
  let rank = Encoding.rank enc in
  let key l k = sorted.coords.(k).(enc.dim_to_lvl.(l)) in
  let segs = ref [| (0, n) |] in
  let lvls = Array.make rank (Ldense { lsize = 0 }) in
  for l = 0 to rank - 1 do
    let parents = !segs in
    let np = Array.length parents in
    (match enc.levels.(l) with
     | Encoding.Dense ->
       let lsize = coo.dims.(enc.dim_to_lvl.(l)) in
       let out = Array.make (np * lsize) (0, 0) in
       Array.iteri
         (fun p (s, e) ->
           let i = ref s in
           for v = 0 to lsize - 1 do
             let s' = !i in
             while !i < e && key l !i = v do incr i done;
             out.((p * lsize) + v) <- (s', !i)
           done;
           assert (!i = e))
         parents;
       lvls.(l) <- Ldense { lsize };
       segs := out
     | Encoding.Compressed { unique = true } ->
       (* At most one node per element: build into n-sized scratch arrays
          and trim, rather than consing per node. *)
       let pos = Array.make (np + 1) 0 in
       let crd = Array.make n 0 in
       let out = Array.make n (0, 0) in
       let count = ref 0 in
       Array.iteri
         (fun p (s, e) ->
           let i = ref s in
           while !i < e do
             let v = key l !i in
             let s' = !i in
             while !i < e && key l !i = v do incr i done;
             crd.(!count) <- v;
             out.(!count) <- (s', !i);
             incr count
           done;
           pos.(p + 1) <- !count)
         parents;
       lvls.(l) <-
         Lcompressed { pos; crd = Array.sub crd 0 !count; unique = true };
       segs := Array.sub out 0 !count
     | Encoding.Compressed { unique = false } ->
       (* One crd entry and one child per element: duplicate parent
          coordinates are retained, as in COO's top level. *)
       let pos = Array.make (np + 1) 0 in
       let crd = Array.make n 0 in
       let out = Array.make n (0, 0) in
       Array.iteri
         (fun p (s, e) ->
           for i = s to e - 1 do
             crd.(i) <- key l i;
             out.(i) <- (i, i + 1)
           done;
           pos.(p + 1) <- e)
         parents;
       lvls.(l) <- Lcompressed { pos; crd; unique = false };
       segs := out
     | Encoding.Singleton ->
       let crd = Array.make n 0 in
       let out = Array.make n (0, 0) in
       Array.iteri
         (fun _ (s, e) ->
           for i = s to e - 1 do
             crd.(i) <- key l i;
             out.(i) <- (i, i + 1)
           done)
         parents;
       lvls.(l) <- Lsingleton { crd };
       segs := out)
  done;
  (* Leaf values: one per leaf node; dense leaf levels imply explicit
     zeros for absent coordinates. *)
  let leaves = !segs in
  let vals = Array.make (Array.length leaves) 0. in
  Array.iteri
    (fun node (s, e) ->
      assert (e - s <= 1);
      if e > s then vals.(node) <- sorted.vals.(s))
    leaves;
  { enc; dims = Array.copy coo.dims; lvls; vals }

(* [pack_blocked enc ~bh ~bw coo] serialises a rank-2 tensor into block
   storage: the pos/crd pair indexes the bh x bw *block* coordinate
   space (dense block rows over compressed block columns), and each
   stored block expands to bh*bw row-major values with explicit zeros
   for the absent coordinates. Edge blocks of non-divisible dimensions
   are zero-padded here and clamped by consumers ({!iter}, the emitter's
   blocked micro-loops). *)
let pack_blocked (enc : Encoding.t) ~bh ~bw (coo : Coo.t) : t =
  let sorted = Coo.sorted_dedup coo in
  let n = Coo.nnz sorted in
  let nbr = (coo.dims.(0) + bh - 1) / bh in
  let tbl = Hashtbl.create (max 16 n) in
  for k = 0 to n - 1 do
    let key = (sorted.coords.(k).(0) / bh, sorted.coords.(k).(1) / bw) in
    if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key 0
  done;
  let blocks =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
    |> List.sort compare |> Array.of_list
  in
  Array.iteri (fun idx k -> Hashtbl.replace tbl k idx) blocks;
  let nb = Array.length blocks in
  let pos = Array.make (nbr + 1) 0 in
  let crd = Array.make nb 0 in
  Array.iteri
    (fun idx (ib, jb) ->
      crd.(idx) <- jb;
      pos.(ib + 1) <- pos.(ib + 1) + 1)
    blocks;
  for r = 1 to nbr do pos.(r) <- pos.(r) + pos.(r - 1) done;
  let be = bh * bw in
  let vals = Array.make (nb * be) 0. in
  for k = 0 to n - 1 do
    let i = sorted.coords.(k).(0) and j = sorted.coords.(k).(1) in
    let idx = Hashtbl.find tbl (i / bh, j / bw) in
    vals.((idx * be) + ((i mod bh) * bw) + (j mod bw)) <- sorted.vals.(k)
  done;
  { enc; dims = Array.copy coo.dims;
    lvls =
      [| Ldense { lsize = nbr }; Lcompressed { pos; crd; unique = true } |];
    vals }

let pack (enc : Encoding.t) (coo : Coo.t) : t =
  if Encoding.rank enc <> Coo.rank coo then
    invalid_arg "Storage.pack: encoding rank does not match tensor rank";
  match enc.Encoding.block with
  | None -> pack_plain enc coo
  | Some (bh, bw) -> pack_blocked enc ~bh ~bw coo

let iter_plain f (t : t) =
  let rank = Encoding.rank t.enc in
  let coord = Array.make rank 0 in
  let rec go l node =
    if l = rank then f (Array.copy coord) t.vals.(node)
    else
      let dim = t.enc.dim_to_lvl.(l) in
      match t.lvls.(l) with
      | Ldense { lsize } ->
        for v = 0 to lsize - 1 do
          coord.(dim) <- v;
          go (l + 1) ((node * lsize) + v)
        done
      | Lcompressed { pos; crd; _ } ->
        for p = pos.(node) to pos.(node + 1) - 1 do
          coord.(dim) <- crd.(p);
          go (l + 1) p
        done
      | Lsingleton { crd } ->
        coord.(dim) <- crd.(node);
        go (l + 1) node
  in
  go 0 0

(** [iter f t] visits every stored leaf (including explicit zeros of dense
    leaf levels) with its dimension-order coordinates. Blocked storage
    visits every in-bounds cell of every stored block. *)
let iter f (t : t) =
  match t.enc.Encoding.block with
  | Some (bh, bw) ->
    (match t.lvls with
     | [| Ldense { lsize }; Lcompressed { pos; crd; _ } |] ->
       let be = bh * bw in
       for ib = 0 to lsize - 1 do
         for p = pos.(ib) to pos.(ib + 1) - 1 do
           let jb = crd.(p) in
           for r = 0 to bh - 1 do
             let i = (ib * bh) + r in
             if i < t.dims.(0) then
               for c = 0 to bw - 1 do
                 let j = (jb * bw) + c in
                 if j < t.dims.(1) then
                   f [| i; j |] t.vals.((p * be) + (r * bw) + c)
               done
           done
         done
       done
     | _ -> invalid_arg "Storage.iter: malformed blocked storage")
  | None -> iter_plain f t

(** [to_coo t] recovers the COO form, dropping explicit zeros. *)
let to_coo (t : t) : Coo.t =
  let cs = ref [] and vs = ref [] and n = ref 0 in
  iter
    (fun c v ->
      if v <> 0. then begin
        cs := c :: !cs;
        vs := v :: !vs;
        incr n
      end)
    t;
  { Coo.dims = Array.copy t.dims;
    coords = Array.of_list (List.rev !cs);
    vals = Array.of_list (List.rev !vs) }

(** [convert enc t] re-packs [t] under a different encoding. *)
let convert enc t = pack enc (to_coo t)

let pos_buf t l =
  match t.lvls.(l) with
  | Lcompressed { pos; _ } -> Some pos
  | Ldense _ | Lsingleton _ -> None

let crd_buf t l =
  match t.lvls.(l) with
  | Lcompressed { crd; _ } | Lsingleton { crd } -> Some crd
  | Ldense _ -> None

(** Total bytes of the serialised form (pos + crd at the encoding's index
    width, values as f64), mirroring the paper's footprint accounting. *)
let footprint_bytes t =
  let ib = match t.enc.width with Encoding.W32 -> 4 | Encoding.W64 -> 8 in
  let acc = ref (Array.length t.vals * 8) in
  Array.iter
    (function
      | Ldense _ -> ()
      | Lcompressed { pos; crd; _ } ->
        acc := !acc + (ib * (Array.length pos + Array.length crd))
      | Lsingleton { crd } -> acc := !acc + (ib * Array.length crd))
    t.lvls;
  !acc

(** [describe t] is a one-line summary used by the CLI and examples. *)
let describe t =
  let lvl = function
    | Ldense { lsize } -> Printf.sprintf "dense(%d)" lsize
    | Lcompressed { pos; crd; unique } ->
      Printf.sprintf "compressed%s(pos:%d, crd:%d)"
        (if unique then "" else "-nu")
        (Array.length pos) (Array.length crd)
    | Lsingleton { crd } -> Printf.sprintf "singleton(crd:%d)" (Array.length crd)
  in
  Printf.sprintf "%s %s [%s] vals:%d" t.enc.name
    (String.concat "x" (Array.to_list (Array.map string_of_int t.dims)))
    (String.concat ", " (Array.to_list (Array.map lvl t.lvls)))
    (Array.length t.vals)
