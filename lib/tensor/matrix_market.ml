(* Matrix Market (.mtx) coordinate-format reader/writer.

   Supports the subset SuiteSparse distributes: object "matrix", format
   "coordinate", fields real/integer/pattern, symmetries general/symmetric/
   skew-symmetric. Pattern entries get value 1.0. Symmetric storage is
   expanded to the full matrix on read. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type field = Real | Integer | Pattern
type symmetry = General | Symmetric | Skew_symmetric

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_header line =
  match split_ws (String.lowercase_ascii line) with
  | bang :: "matrix" :: "coordinate" :: field :: sym :: _
    when bang = "%%matrixmarket" ->
    let field =
      match field with
      | "real" -> Real
      | "integer" -> Integer
      | "pattern" -> Pattern
      | f -> fail "unsupported field %S" f
    in
    let sym =
      match sym with
      | "general" -> General
      | "symmetric" -> Symmetric
      | "skew-symmetric" -> Skew_symmetric
      | s -> fail "unsupported symmetry %S" s
    in
    (field, sym)
  | _ -> fail "bad MatrixMarket header: %S" line

(** [of_lines lines] parses the line sequence of a .mtx file. Tolerant of
    real-world SuiteSparse files: CRLF line endings, leading/trailing
    whitespace, and blank or ["%"]-comment lines anywhere after the
    header are accepted. Duplicate coordinates (including those produced
    by symmetry expansion) are rejected with a clear error — silently
    keeping them would mis-state nnz and skew every per-nnz metric. *)
let of_lines (lines : string Seq.t) : Coo.t =
  (* [String.trim] strips the '\r' of CRLF files along with surrounding
     blanks, so every later stage sees clean tokens. *)
  let lines = Seq.map String.trim lines in
  let lines = Seq.filter (fun l -> l <> "") lines in
  match lines () with
  | Seq.Nil -> fail "empty file"
  | Seq.Cons (header, rest) ->
    let field, sym = parse_header header in
    let rest = Seq.filter (fun l -> l.[0] <> '%') rest in
    (match rest () with
     | Seq.Nil -> fail "missing size line"
     | Seq.Cons (size_line, entries) ->
       let rows, cols, nnz =
         match split_ws size_line with
         | [ r; c; n ] ->
           (try (int_of_string r, int_of_string c, int_of_string n)
            with Failure _ -> fail "bad size line: %S" size_line)
         | _ -> fail "bad size line: %S" size_line
       in
       let triples = ref [] and count = ref 0 in
       let seen = Hashtbl.create (max 16 nnz) in
       let add i j v =
         let key = (i * cols) + j in
         if Hashtbl.mem seen key then
           fail "duplicate entry (%d, %d)" (i + 1) (j + 1);
         Hashtbl.add seen key ();
         triples := (i, j, v) :: !triples
       in
       Seq.iter
         (fun line ->
           let i, j, v =
             match split_ws line, field with
             | [ i; j ], Pattern -> (int_of_string i, int_of_string j, 1.0)
             | [ i; j; v ], (Real | Integer) ->
               (int_of_string i, int_of_string j, float_of_string v)
             | [ i; j; v ], Pattern ->
               (int_of_string i, int_of_string j, float_of_string v)
             | _ -> fail "bad entry line: %S" line
           in
           let i = i - 1 and j = j - 1 in
           if i < 0 || i >= rows || j < 0 || j >= cols then
             fail "entry (%d, %d) out of %dx%d" (i + 1) (j + 1) rows cols;
           add i j v;
           (match sym with
            | General -> ()
            | Symmetric -> if i <> j then add j i v
            | Skew_symmetric -> if i <> j then add j i (-.v));
           incr count)
         entries;
       if !count <> nnz then
         fail "expected %d entries, found %d" nnz !count;
       Coo.of_triples ~rows ~cols (List.rev !triples))

let of_string s = of_lines (String.split_on_char '\n' s |> List.to_seq)

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = In_channel.input_lines ic in
      of_lines (List.to_seq lines))

(** [to_string coo] writes general real coordinate format. *)
let to_string (coo : Coo.t) =
  if Coo.rank coo <> 2 then invalid_arg "Matrix_market.to_string: not a matrix";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "%%MatrixMarket matrix coordinate real general\n";
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d\n" coo.dims.(0) coo.dims.(1) (Coo.nnz coo));
  Array.iteri
    (fun k c ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %.17g\n" (c.(0) + 1) (c.(1) + 1) coo.vals.(k)))
    coo.coords;
  Buffer.contents buf

let write path coo =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string coo))
