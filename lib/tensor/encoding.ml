(* Sparse tensor encodings: the per-level storage description of MLIR's
   sparse_tensor dialect (paper §2.2, Fig. 1b).

   An encoding maps tensor dimensions to storage levels of the coordinate
   hierarchy tree. Each level is dense (all coordinates implicit),
   compressed (pos/crd buffers, optionally non-unique), or singleton (one
   child per parent, crd buffer only). *)

type level_format =
  | Dense
  | Compressed of { unique : bool }
  | Singleton

type index_width = W32 | W64

type t = {
  name : string;               (* "CSR", "COO", ... for printing *)
  levels : level_format array; (* one per storage level *)
  dim_to_lvl : int array;      (* level l stores dimension dim_to_lvl.(l) *)
  width : index_width;         (* pos/crd element width (paper §4.2) *)
  block : (int * int) option;  (* Some (bh, bw): levels index bh*bw blocks *)
}

let rank t = Array.length t.levels

let level_name = function
  | Dense -> "dense"
  | Compressed { unique = true } -> "compressed"
  | Compressed { unique = false } -> "compressed(nonunique)"
  | Singleton -> "singleton"

(** [has_pos l] tells whether level format [l] needs a positions buffer. *)
let has_pos = function Compressed _ -> true | Dense | Singleton -> false

(** [has_crd l] tells whether level format [l] needs a coordinates buffer. *)
let has_crd = function
  | Compressed _ | Singleton -> true
  | Dense -> false

let validate t =
  let r = rank t in
  if Array.length t.dim_to_lvl <> r then
    invalid_arg "Encoding: dim_to_lvl arity mismatch";
  let seen = Array.make r false in
  Array.iter
    (fun d ->
      if d < 0 || d >= r then invalid_arg "Encoding: dim out of range";
      if seen.(d) then invalid_arg "Encoding: dim mapped twice";
      seen.(d) <- true)
    t.dim_to_lvl;
  (match t.levels.(0) with
   | Singleton -> invalid_arg "Encoding: first level cannot be singleton"
   | Dense | Compressed _ -> ());
  (match t.block with
   | None -> ()
   | Some (bh, bw) ->
     if bh < 1 || bw < 1 then
       invalid_arg "Encoding: block sides must be positive";
     if r <> 2 then invalid_arg "Encoding: blocked formats are rank-2";
     (match t.levels with
      | [| Dense; Compressed { unique = true } |]
        when t.dim_to_lvl = [| 0; 1 |] -> ()
      | _ ->
        invalid_arg
          "Encoding: blocked storage requires dense-over-compressed \
           levels in (row, col) order"));
  t

let make ?(width = W32) name levels dim_to_lvl =
  validate { name; levels; dim_to_lvl; width; block = None }

(* The paper's three motivating 2-D formats (Fig. 1b), plus CSC and CSF. *)

let coo ?width () =
  make ?width "COO"
    [| Compressed { unique = false }; Singleton |]
    [| 0; 1 |]

let csr ?width () =
  make ?width "CSR" [| Dense; Compressed { unique = true } |] [| 0; 1 |]

let csc ?width () =
  make ?width "CSC" [| Dense; Compressed { unique = true } |] [| 1; 0 |]

let dcsr ?width () =
  make ?width "DCSR"
    [| Compressed { unique = true }; Compressed { unique = true } |]
    [| 0; 1 |]

(** Rank-1 compressed sparse vector. *)
let sparse_vector ?width () =
  make ?width "SpVec" [| Compressed { unique = true } |] [| 0 |]

(** Block Sparse Row: the matrix is tiled into [bh]x[bw] blocks; storage
    levels index the *block* coordinate space (dense block rows over
    compressed block columns), and each stored block carries bh*bw values
    (row-major, explicit zeros inside a block). Matrix dimensions need
    not divide the block sides — edge blocks are zero-padded in storage
    and clamped at iteration time. *)
let bsr ?(width = W32) ~bh ~bw () =
  validate
    { name = Printf.sprintf "BSR%dx%d" bh bw;
      levels = [| Dense; Compressed { unique = true } |];
      dim_to_lvl = [| 0; 1 |]; width; block = Some (bh, bw) }

(** [block_elems t] is the number of values per stored leaf: bh*bw for
    blocked encodings, 1 otherwise. *)
let block_elems t =
  match t.block with None -> 1 | Some (bh, bw) -> bh * bw

(** Compressed Sparse Fiber: all levels compressed, identity order. *)
let csf ?width r =
  if r < 1 then invalid_arg "Encoding.csf: rank must be positive";
  make ?width "CSF"
    (Array.make r (Compressed { unique = true }))
    (Array.init r Fun.id)

(** [to_string t] renders the #format attribute as in Fig. 1b. *)
let to_string t =
  let lvls =
    Array.to_list
      (Array.mapi
         (fun l fmt ->
           Printf.sprintf "d%d : %s" t.dim_to_lvl.(l) (level_name fmt))
         t.levels)
  in
  let blk =
    match t.block with
    | None -> ""
    | Some (bh, bw) -> Printf.sprintf ", block = %dx%d" bh bw
  in
  Printf.sprintf
    "#sparse_tensor.encoding<{ map = (%s) -> (%s)%s }> // %s"
    (String.concat ", "
       (List.init (rank t) (fun d -> Printf.sprintf "d%d" d)))
    (String.concat ", " lvls) blk t.name
