(** End-to-end experiment driver: COO matrix in, PMU report and verified
    kernel output out. This is the API the examples, the CLI and the
    benchmark harness use. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec

type result = {
  report : Exec.report;
  counters : (string * int) list;
    (** the report's counter registry, sorted by name
        ({!Exec.Report.to_assoc}) *)
  nnz : int;
  out_f : float array option;  (** output of numeric kernels *)
  out_b : Bytes.t option;      (** output of binary kernels *)
}

(** [throughput r] is work throughput in non-zeros per millisecond (the
    paper's §5 metric). *)
val throughput : result -> float

(** [mpki r] is L2 misses per kilo-instruction. *)
val mpki : result -> float

(** Run configuration: everything about {e how} to execute a kernel —
    machine, code variant, engine, parallelism, operand flavour and
    observability sink — leaving {!run} to say {e what} to execute. *)
module Cfg : sig
  type t = {
    machine : Machine.t;
    variant : Pipeline.variant;
    engine : Exec.engine;
    threads : int;                       (** dense-outer-loop slices *)
    binary : bool;                       (** i8 and/or kernels *)
    n : int option;                      (** SpMM dense columns *)
    st : Asap_tensor.Storage.t option;   (** shared pre-packed storage *)
    obs : Asap_obs.Sink.t;               (** event sink (default: off) *)
    tune_mode : Tuning.mode;
      (** how [`Tuned] variant decisions are made by layers that tune
          (the serve build path); {!run} itself never tunes *)
    pipeline : string option;
      (** pass-pipeline spec overriding [variant]'s default
          (see {!Pipeline.compile}) *)
    specialize : bool;
      (** rewrite the post-pipeline function against the resolved
          runtime facts (extents, inner extents, tuned distance) before
          executing — see {!Asap_sim.Specialize}; value- and
          report-exact vs the generic form across engines, faster in
          virtual cycles *)
  }

  (** [make ~machine ~variant ()] with defaults: [Exec.default_engine],
      one thread, numeric kernels, kernel-specific [n], fresh packing, no
      observability, [`Sweep] tuning, no pipeline override, no
      specialization. *)
  val make :
    ?engine:Exec.engine -> ?threads:int -> ?binary:bool -> ?n:int ->
    ?st:Asap_tensor.Storage.t -> ?obs:Asap_obs.Sink.t ->
    ?tune_mode:Tuning.mode -> ?pipeline:string -> ?specialize:bool ->
    machine:Machine.t -> variant:Pipeline.variant -> unit -> t
end

(** [variant_distance v] is the prefetch distance [v] resolves to
    ([None] for [Baseline]) — the distance fact fed to the specializer. *)
val variant_distance : Pipeline.variant -> int option

(** What to execute: the kernel family and the sparse encoding of its
    tensor operand ([Ttv None] defaults to rank-3 CSF). *)
type kernel_spec =
  | Spmv of Encoding.t
  | Spmm of Encoding.t
  | Sddmm of Encoding.t
  | Ttv of Encoding.t option

(** [run cfg spec coo] is the unified entry point: execute the kernel
    named by [spec] on [coo] under configuration [cfg]. The per-kernel
    entry points below are thin wrappers over this. *)
val run : Cfg.t -> kernel_spec -> Coo.t -> result

(** A prepared kernel execution: sparsification, prefetch injection,
    storage packing, buffer layout and (compiled engine) closure staging
    all done once by {!Prep.make}; {!Prep.exec} then re-runs the kernel
    on a fresh memory hierarchy per call, returning results equal to
    {!run} in every field. This is the unit the serve subsystem's
    compile cache stores. *)
module Prep : sig
  type t

  val make : Cfg.t -> kernel_spec -> Coo.t -> t
  val cfg : t -> Cfg.t
  val spec : t -> kernel_spec
  val compiled : t -> Pipeline.compiled
  val nnz : t -> int

  (** [exec ?obs p] re-runs the prepared kernel; [obs] overrides the
      configuration's sink for this run only. The result's
      [out_f]/[out_b] alias [p]'s output buffers (zeroed before each
      run), so a result is only valid until the next [exec] on the same
      [p]. *)
  val exec : ?obs:Asap_obs.Sink.t -> t -> result
end

(** [spmv ?engine ?threads ?binary ?st machine variant enc coo] packs
    [coo] under [enc], compiles SpMV with [variant] and runs it. [engine]
    selects the simulator's execution engine (default
    {!Exec.default_engine}); [threads > 1] uses the dense-outer-loop
    parallelisation (requires a dense top level). [st], if given, must be
    [Storage.pack enc coo] — callers running several variants over one
    matrix pass it to share the packing work. *)
val spmv :
  ?engine:Exec.engine -> ?threads:int -> ?binary:bool ->
  ?st:Asap_tensor.Storage.t -> Machine.t ->
  Pipeline.variant -> Encoding.t -> Coo.t -> result

(** [spmm ?threads ?binary ?n ?st machine variant enc coo] runs SpMM; [n]
    defaults to one cache line per dense row — 8 f64 columns, or 64 i8
    columns for binary matrices (paper §5.2). [st] as for {!spmv}. *)
val spmm :
  ?engine:Exec.engine -> ?threads:int -> ?binary:bool -> ?n:int ->
  ?st:Asap_tensor.Storage.t -> Machine.t ->
  Pipeline.variant -> Encoding.t -> Coo.t -> result

(** [sddmm ?engine ?kk machine variant enc coo] runs the sampled
    dense-dense matrix product O(i,j) = S(i,j) * sum_k A(i,k)*B(k,j) over
    the sparse sample [coo]; [kk] is the contraction depth (default 8).
    The dense contraction loop lowers innermost, inside the sparse (i,j)
    co-iteration. *)
val sddmm :
  ?engine:Exec.engine -> ?kk:int -> ?st:Asap_tensor.Storage.t -> Machine.t ->
  Pipeline.variant -> Encoding.t -> Coo.t -> result

module Merge = Asap_sparsifier.Merge

(** [vector_ewise machine op b c] merges two sparse vectors element-wise
    (union add or intersection multiply) into a dense output — the
    merge-based co-iteration strategy of §3.1. *)
val vector_ewise :
  ?engine:Exec.engine -> Machine.t -> Merge.op -> Coo.t -> Coo.t -> result

(** [matrix_ewise machine op b c] merges two same-shape CSR matrices row
    by row into a dense row-major output. *)
val matrix_ewise :
  ?engine:Exec.engine -> Machine.t -> Merge.op -> Coo.t -> Coo.t -> result

(** [ttv ?enc machine variant coo] runs the rank-3 tensor-times-vector
    contraction a(i,j) = B(i,j,k) c(k); [enc] defaults to rank-3 CSF,
    exercising the full §3.2.2 position-chain bound recursion. *)
val ttv :
  ?engine:Exec.engine -> ?enc:Encoding.t -> Machine.t -> Pipeline.variant ->
  Coo.t -> result

(** [check_ttv coo r] is the max absolute error of a TTV run. *)
val check_ttv : Coo.t -> result -> float

(** [check_spmv coo r] is the max absolute error against the dense
    reference (0 exact for binary kernels). *)
val check_spmv : Coo.t -> result -> float

(** [check_spmm coo ~n r] likewise for SpMM. *)
val check_spmm : Coo.t -> n:int -> result -> float

(** [check_sddmm coo ~kk r] is the max absolute error of an SDDMM run
    (contraction depth [kk]). *)
val check_sddmm : Coo.t -> kk:int -> result -> float
