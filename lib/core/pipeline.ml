(* Compilation pipeline: kernel + encoding + prefetch variant -> IR.

   Since PR 8 this is a thin wrapper over the registered pass pipeline
   (lib/pass): a variant denotes a canonical pipeline spec —

     Baseline          ->  "sparsify"
     Asap cfg          ->  "sparsify,asap{d=..,l=..,strategy=..,bound=..,step1=..}"
     Ainsworth_jones   ->  "sparsify,aj{d=..,l=..}"

   — and [compile] resolves and runs that spec through {!Asap_pass.Runner}.
   An explicit [?pipeline] spec overrides the variant's default, which is
   how per-tenant pipelines reach the driver from serve. *)

module Kernel = Asap_lang.Kernel
module Sparsify = Asap_sparsifier.Sparsify
module Emitter = Asap_sparsifier.Emitter
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Spec = Asap_pass.Spec
module Runner = Asap_pass.Runner
open Asap_ir

type variant =
  | Baseline
  | Asap of Asap.config
  | Ainsworth_jones of Aj.config

let variant_name = function
  | Baseline -> "baseline"
  | Asap _ -> "asap"
  | Ainsworth_jones _ -> "ainsworth-jones"

let strategy_sym = function
  | Asap.Innermost_only -> "inner"
  | Asap.Outer_only -> "outer"
  | Asap.Both -> "both"

let bound_sym = function
  | Asap.Semantic -> "semantic"
  | Asap.Segment_local -> "segment"

let spec_of_variant ?(optimize = false) (variant : variant) : string =
  let entry = { Spec.pi_name = "sparsify"; pi_params = [] } in
  let prefetch =
    match variant with
    | Baseline -> []
    | Asap cfg ->
      [ { Spec.pi_name = "asap";
          pi_params =
            [ ("d", Spec.Vint cfg.Asap.distance);
              ("l", Spec.Vint cfg.Asap.locality);
              ("strategy", Spec.Vsym (strategy_sym cfg.Asap.strategy));
              ("bound", Spec.Vsym (bound_sym cfg.Asap.bound_mode));
              ("step1", Spec.Vsym (string_of_bool cfg.Asap.step1)) ] } ]
    | Ainsworth_jones cfg ->
      [ { Spec.pi_name = "aj";
          pi_params =
            [ ("d", Spec.Vint cfg.Aj.distance);
              ("l", Spec.Vint cfg.Aj.locality) ] } ]
  in
  let opt =
    if optimize then
      [ { Spec.pi_name = "fold"; pi_params = [] };
        { Spec.pi_name = "licm"; pi_params = [] } ]
    else []
  in
  Spec.to_string ((entry :: prefetch) @ opt)

type compiled = {
  cc : Emitter.compiled;        (* parameter layout and kernel metadata *)
  fn : Ir.func;                 (* final function (after the pass tail) *)
  variant : variant;
  n_prefetch_sites : int;       (* sites instrumented by the pipeline *)
}

let compile ?(optimize = false) ?pipeline ?registry (k : Kernel.t)
    (variant : variant) : compiled =
  let spec =
    match pipeline with
    | Some p -> p
    | None -> spec_of_variant ~optimize variant
  in
  let rs = Runner.resolve spec in
  let r = Runner.compile ?registry rs k in
  { cc = r.Runner.cc; fn = r.Runner.fn; variant;
    n_prefetch_sites = r.Runner.sites }

let listing c = Printer.to_string c.fn
