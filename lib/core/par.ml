(* Host-parallel map over OCaml 5 domains.

   The simulator is deterministic and every grid cell builds its own
   Hierarchy, so independent cells are embarrassingly parallel on the
   host. Work is handed out through an atomic counter (dynamic
   load-balancing: cell costs vary by orders of magnitude with matrix
   size) and results land in a preallocated slot array, so the output
   order — and anything printed from it — is identical to a sequential
   run regardless of worker interleaving.

   Caveat for callers: worker functions must not touch domain-unsafe
   shared state (e.g. a Hashtbl cache); do any memoisation on the calling
   domain after [map] returns. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(** [map ~jobs f xs] is [Array.map f xs] computed by [jobs] domains (the
    caller's included). Results are slotted by index, so output order is
    deterministic. The first exception raised by any [f] is re-raised on
    the calling domain after all workers join. *)
let map ~jobs (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 || n <= 1 then Array.map f xs
  else begin
    let results : 'b option array = Array.make n None in
    let first_error = Atomic.make None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f xs.(i) with
         | v -> results.(i) <- Some v
         | exception e ->
           let bt = Printexc.get_raw_backtrace () in
           (* Keep the first failure; drain remaining work quickly. *)
           ignore (Atomic.compare_and_set first_error None (Some (e, bt)));
           Atomic.set next n);
        worker ()
      end
    in
    let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join others;
    match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map Option.get results
  end
