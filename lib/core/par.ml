(* Host-parallel map over a persistent OCaml 5 domain pool.

   The simulator is deterministic and every grid cell builds its own
   Hierarchy, so independent cells are embarrassingly parallel on the
   host. Work is handed out through an atomic counter (dynamic
   load-balancing: cell costs vary by orders of magnitude with matrix
   size) and results land in a preallocated slot array, so the output
   order — and anything printed from it — is identical to a sequential
   run regardless of worker interleaving.

   Worker domains are created once and reused: [pool] spawns a set of
   domains that park on a condition variable between jobs, so repeated
   [map]s (the serve scheduler's batches, [Tuning.tune ~jobs]'s candidate
   sweeps, the benchmark grid's per-figure prewarms) pay the ~ms domain
   spawn cost once instead of per call. [Par.map ~jobs] routes through a
   lazily-created process-global pool and stays byte-compatible with the
   historical spawn-per-call implementation.

   Caveat for callers: worker functions must not touch domain-unsafe
   shared state (e.g. a Hashtbl cache); do any memoisation on the calling
   domain after [map] returns. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

type pool = {
  id : int;                          (* for nested-call detection *)
  lock : Mutex.t;
  work_cv : Condition.t;             (* workers: a new generation exists *)
  done_cv : Condition.t;             (* caller: acks advanced / pool idle *)
  mutable workers : unit Domain.t array;
  mutable gen : int;                 (* generation of the current job *)
  mutable task : (unit -> unit) option;   (* body of generation [gen] *)
  mutable acked : int;               (* workers done with generation [gen] *)
  mutable busy : bool;               (* a job is published *)
  mutable stop : bool;
}

let next_pool_id = Atomic.make 0

(* Which pools the current domain is currently participating in — as a
   worker, or as the caller of an in-flight [map_pool]. A participant
   calling back into the same pool (e.g. a serve worker running
   [Tuning.tune ~jobs], or [f] itself mapping again) must not wait for
   that pool to drain itself — it degrades to a sequential map instead of
   deadlocking. *)
let worker_of : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let in_pool p = List.mem p.id !(Domain.DLS.get worker_of)

(* [birth_gen] is [p.gen] at the moment the spawn was decided (always a
   quiescent point: pool creation, or grow while not busy). Reading
   [p.gen] from inside the worker instead would race with a concurrent
   publish: the worker would mark the new generation "seen" without
   running it and the caller would wait for its ack forever. *)
let worker_loop p birth_gen () =
  let ids = Domain.DLS.get worker_of in
  ids := p.id :: !ids;
  Mutex.lock p.lock;
  let seen = ref birth_gen in
  let rec loop () =
    if p.stop then Mutex.unlock p.lock
    else if p.gen = !seen then begin
      Condition.wait p.work_cv p.lock;
      loop ()
    end
    else begin
      seen := p.gen;
      let body = p.task in
      Mutex.unlock p.lock;
      (match body with Some f -> f () | None -> ());
      Mutex.lock p.lock;
      p.acked <- p.acked + 1;
      Condition.broadcast p.done_cv;
      loop ()
    end
  in
  loop ()

let spawn_workers p n =
  let birth_gen = p.gen in
  let fresh = Array.init n (fun _ -> Domain.spawn (worker_loop p birth_gen)) in
  p.workers <- Array.append p.workers fresh

(** [pool ~workers] spawns [workers] parked helper domains (the calling
    domain is the implicit extra participant of every [map_pool]). *)
let pool ~workers =
  let p =
    { id = Atomic.fetch_and_add next_pool_id 1;
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      workers = [||];
      gen = 0; task = None; acked = 0; busy = false; stop = false }
  in
  spawn_workers p (max 0 workers);
  p

let pool_size p = Array.length p.workers

(* The shared drain loop: the caller and every participating worker pull
   indices from one atomic counter; results are slotted by index. *)
let drain_loop (type a b) ~(f : a -> b) ~(xs : a array)
    ~(results : b option array) ~first_error ~next () =
  let n = Array.length xs in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      (match f xs.(i) with
       | v -> results.(i) <- Some v
       | exception e ->
         let bt = Printexc.get_raw_backtrace () in
         (* Keep the first failure; drain remaining work quickly. *)
         ignore (Atomic.compare_and_set first_error None (Some (e, bt)));
         Atomic.set next n);
      worker ()
    end
  in
  worker ()

(** [map_pool p ~jobs f xs] is [Array.map f xs] computed by up to [jobs]
    participants: the calling domain plus at most [jobs - 1] pool workers
    (ticket-gated, so a small job never wakes the whole pool into the
    drain loop). Concurrent callers serialise on the pool; a worker
    calling into its own pool degrades to a sequential map. *)
let map_pool (type a b) p ~jobs (f : a -> b) (xs : a array) : b array =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 || n <= 1 || pool_size p = 0 || in_pool p then Array.map f xs
  else begin
    let results : b option array = Array.make n None in
    let first_error = Atomic.make None in
    let next = Atomic.make 0 in
    let drain =
      drain_loop ~f ~xs ~results ~first_error ~next
    in
    (* Tickets bound the number of workers that actually enter the drain
       loop to [jobs - 1]; latecomers see no ticket and ack immediately. *)
    let tickets = Atomic.make (jobs - 1) in
    let body () = if Atomic.fetch_and_add tickets (-1) > 0 then drain () in
    Mutex.lock p.lock;
    while p.busy do Condition.wait p.done_cv p.lock done;
    if p.stop then begin
      Mutex.unlock p.lock;
      invalid_arg "Par.map_pool: pool is shut down"
    end;
    p.busy <- true;
    p.task <- Some body;
    p.acked <- 0;
    p.gen <- p.gen + 1;
    Condition.broadcast p.work_cv;
    Mutex.unlock p.lock;
    (* Mark the caller a participant of [p] while it drains, so an [f]
       that maps on the same pool runs sequentially instead of waiting on
       [busy] (which this very call holds). *)
    let ids = Domain.DLS.get worker_of in
    ids := p.id :: !ids;
    Fun.protect ~finally:(fun () -> ids := List.tl !ids) drain;
    Mutex.lock p.lock;
    while p.acked < Array.length p.workers do
      Condition.wait p.done_cv p.lock
    done;
    p.task <- None;
    p.busy <- false;
    Condition.broadcast p.done_cv;
    Mutex.unlock p.lock;
    match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map Option.get results
  end

(** [shutdown p] joins every worker domain; subsequent [map_pool]s run
    sequentially (the pool is empty). Idempotent. *)
let shutdown p =
  Mutex.lock p.lock;
  while p.busy do Condition.wait p.done_cv p.lock done;
  p.stop <- true;
  Condition.broadcast p.work_cv;
  Mutex.unlock p.lock;
  Array.iter Domain.join p.workers;
  p.workers <- [||]

(* --- Slice leasing --------------------------------------------------- *)

(* A lease partitions a pool's worker budget among [shards] consumers
   without splitting the domains themselves: each slice is the same pool
   with a per-slice [jobs] cap, so shard s's builds use at most its
   share of the helpers (plus the calling domain). Slices of one pool
   must be DRAINED by a single caller (map_pool serialises concurrent
   callers anyway); the win is a deterministic, documented budget per
   shard rather than true concurrency between slices. *)

type slice = { sl_pool : pool; sl_jobs : int }

(** [lease p ~shards] partitions [pool_size p] helper domains into
    [shards] slices: slice [i] gets [size/shards] helpers plus one of
    the remainder for [i < size mod shards], plus the calling domain —
    so [slice_jobs] is at least 1 and sums to [pool_size p + shards].
    @raise Invalid_argument if [shards < 1]. *)
let lease p ~shards =
  if shards < 1 then invalid_arg "Par.lease: shards < 1";
  let size = pool_size p in
  let base = size / shards and rem = size mod shards in
  Array.init shards (fun i ->
      let helpers = base + if i < rem then 1 else 0 in
      { sl_pool = p; sl_jobs = helpers + 1 })

let slice_jobs s = s.sl_jobs

(** [map_slice s f xs] is {!map_pool} bounded by the slice's budget. *)
let map_slice s f xs = map_pool s.sl_pool ~jobs:s.sl_jobs f xs

(* --- The process-global pool behind [Par.map] ----------------------- *)

let global : pool option ref = ref None
let global_lock = Mutex.create ()

(* Grow-on-demand: [map ~jobs] may ask for more workers than any earlier
   call; matching the historical semantics (spawn [jobs - 1] domains)
   means growing the pool rather than clamping the job. *)
let global_pool ~workers =
  Mutex.lock global_lock;
  let p =
    match !global with
    | Some p when not p.stop ->
      if pool_size p < workers then begin
        Mutex.lock p.lock;
        while p.busy do Condition.wait p.done_cv p.lock done;
        spawn_workers p (workers - pool_size p);
        Mutex.unlock p.lock
      end;
      p
    | _ ->
      let p = pool ~workers in
      global := Some p;
      at_exit (fun () -> shutdown p);
      p
  in
  Mutex.unlock global_lock;
  p

(** [map ~jobs f xs] is [Array.map f xs] computed by [jobs] domains (the
    caller's included). Results are slotted by index, so output order is
    deterministic. The first exception raised by any [f] is re-raised on
    the calling domain after all workers join. *)
let map ~jobs (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 || n <= 1 then Array.map f xs
  else map_pool (global_pool ~workers:(jobs - 1)) ~jobs f xs
