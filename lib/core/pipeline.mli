(** Compilation pipeline: kernel + encoding + prefetch variant -> IR.

    A thin wrapper over the registered pass pipeline ({!Asap_pass}): the
    three §4.3 variants denote canonical pipeline specs, and an explicit
    spec can override them (the per-tenant pipeline path from serve). *)

module Kernel = Asap_lang.Kernel
module Emitter = Asap_sparsifier.Emitter
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
open Asap_ir

type variant =
  | Baseline                       (** sparsification only *)
  | Asap of Asap.config            (** ASaP hook during sparsification *)
  | Ainsworth_jones of Aj.config   (** post-hoc low-level pass *)

val variant_name : variant -> string

(** [spec_of_variant ?optimize v] is the pipeline spec [compile] runs for
    [v]: ["sparsify"], ["sparsify,asap{..}"] or ["sparsify,aj{..}"], with
    [",fold,licm"] appended when [optimize] is set. *)
val spec_of_variant : ?optimize:bool -> variant -> string

type compiled = {
  cc : Emitter.compiled;       (** parameter layout and kernel metadata *)
  fn : Ir.func;                (** final function, pass tail applied *)
  variant : variant;
  n_prefetch_sites : int;      (** sites instrumented by the pipeline *)
}

(** [compile ?optimize ?pipeline ?registry k variant] lowers kernel [k]
    through the variant's pipeline spec; the generated IR is always
    verified.  [pipeline] overrides the variant's spec entirely (it must
    start with an entry pass, e.g. ["sparsify,asap{d=16},unroll{f=4}"]).
    [optimize] is a deprecated alias for appending [",fold,licm"] to the
    variant's spec; it is ignored when [pipeline] is given.  [registry]
    receives per-pass [pass.<name>.runs/.rewrites/.ns] counters.
    @raise Invalid_argument on an invalid [pipeline] spec. *)
val compile :
  ?optimize:bool -> ?pipeline:string -> ?registry:Asap_obs.Registry.t ->
  Kernel.t -> variant -> compiled

(** [listing c] is the MLIR-flavoured text of the final function. *)
val listing : compiled -> string
