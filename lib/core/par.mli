(** Host-parallel map over OCaml 5 domains.

    Independent simulation cells (each with its own {!Asap_sim.Hierarchy})
    are embarrassingly parallel on the host; this helper farms them to a
    small domain pool with dynamic load-balancing and index-slotted
    results, so output order is deterministic and anything printed from it
    stays byte-identical to a sequential run.

    Worker functions must not touch domain-unsafe shared state (e.g. a
    [Hashtbl] cache) — memoise on the calling domain after [map]
    returns. *)

(** A sensible default worker count: the host's recommended domain count
    minus one (keeping the calling domain responsive), at least 1. *)
val default_jobs : unit -> int

(** [map ~jobs f xs] is [Array.map f xs] computed by [jobs] domains (the
    caller's included; [jobs <= 1] runs sequentially). The first exception
    raised by any [f] is re-raised on the calling domain after all workers
    join. *)
val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
