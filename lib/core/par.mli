(** Deterministic host-parallel map over a persistent domain pool.

    Independent simulation cells (each with its own {!Asap_sim.Hierarchy})
    are embarrassingly parallel on the host; this helper farms them to a
    domain pool with dynamic load-balancing and index-slotted results, so
    output order is deterministic and anything printed from it stays
    byte-identical to a sequential run.

    Worker functions must not touch domain-unsafe shared state (e.g. a
    [Hashtbl] cache) — memoise on the calling domain after [map]
    returns. *)

(** A sensible default worker count: the host's recommended domain count
    minus one (keeping the calling domain responsive), at least 1. *)
val default_jobs : unit -> int

(** [map ~jobs f xs] is [Array.map f xs] computed by [jobs] domains (the
    caller's included; [jobs <= 1] runs sequentially). Helper domains come
    from a lazily-created process-global {!pool} that persists across
    calls, grows on demand, and is shut down at process exit — repeated
    maps pay the domain-spawn cost once. The first exception raised by any
    [f] is re-raised on the calling domain after all workers join. *)
val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** {1 Explicit pools}

    Long-lived components (the serve scheduler) that want control over
    worker lifetime can own a pool instead of sharing the global one. *)

(** A set of parked worker domains, created once and reused by every
    {!map_pool} call on it. *)
type pool

(** [pool ~workers] spawns [workers] helper domains that park between
    jobs. [workers = 0] is valid: maps on such a pool run sequentially. *)
val pool : workers:int -> pool

(** Number of live helper domains ([0] after {!shutdown}). *)
val pool_size : pool -> int

(** [map_pool p ~jobs f xs] is {!map} computed by the calling domain plus
    at most [min (jobs - 1) (pool_size p)] pool workers. Concurrent
    callers serialise on the pool. A worker domain calling back into its
    own pool degrades to [Array.map] (no deadlock). Raises
    [Invalid_argument] if [p] has been {!shutdown} and parallelism was
    requested (degenerate calls still run sequentially). *)
val map_pool : pool -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** Joins every worker domain, waiting for an in-flight map to finish
    first. Idempotent. After shutdown the pool is empty and sequential. *)
val shutdown : pool -> unit

(** {1 Slice leasing}

    A lease partitions a pool's worker {e budget} among several
    consumers (the fleet's shards) without splitting the domains: each
    slice is the pool with a per-slice [jobs] cap. Slices serialise on
    the underlying pool like any other [map_pool] callers — the point
    is a deterministic per-shard budget, not concurrency between
    slices. *)

type slice

(** [lease p ~shards] splits [pool_size p] helpers into [shards]
    slices: slice [i] gets [size/shards] helpers (+1 for
    [i < size mod shards]) plus the calling domain, so every slice has
    [slice_jobs >= 1]. @raise Invalid_argument if [shards < 1]. *)
val lease : pool -> shards:int -> slice array

(** The slice's participant budget (helpers + the calling domain). *)
val slice_jobs : slice -> int

(** [map_slice s f xs] is {!map_pool} on the slice's pool bounded by
    its budget. *)
val map_slice : slice -> ('a -> 'b) -> 'a array -> 'b array
