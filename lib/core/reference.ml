(* Reference kernel implementations over the COO exchange form.

   Plain OCaml, no IR, no simulator: the ground truth the interpreted
   sparsified code is checked against in tests and examples. *)

module Coo = Asap_tensor.Coo

(** [spmv coo c] computes a = B c. *)
let spmv (coo : Coo.t) (c : float array) : float array =
  if Coo.rank coo <> 2 then invalid_arg "Reference.spmv: not a matrix";
  if Array.length c <> coo.Coo.dims.(1) then
    invalid_arg "Reference.spmv: vector length mismatch";
  let a = Array.make coo.Coo.dims.(0) 0. in
  Array.iteri
    (fun k cd -> a.(cd.(0)) <- a.(cd.(0)) +. (coo.Coo.vals.(k) *. c.(cd.(1))))
    coo.Coo.coords;
  a

(** [spmm coo cm ~n] computes A = B C with row-major C of [n] columns. *)
let spmm (coo : Coo.t) (cm : float array) ~n : float array =
  if Coo.rank coo <> 2 then invalid_arg "Reference.spmm: not a matrix";
  if Array.length cm <> coo.Coo.dims.(1) * n then
    invalid_arg "Reference.spmm: C shape mismatch";
  let a = Array.make (coo.Coo.dims.(0) * n) 0. in
  Array.iteri
    (fun idx cd ->
      let i = cd.(0) and j = cd.(1) in
      let v = coo.Coo.vals.(idx) in
      for k = 0 to n - 1 do
        a.((i * n) + k) <- a.((i * n) + k) +. (v *. cm.((j * n) + k))
      done)
    coo.Coo.coords;
  a

(** [sddmm coo am bm ~kk] computes the sampled dense-dense product
    O(i,j) = S(i,j) * sum_k A(i,k) * B(k,j) with row-major A (rows x kk)
    and B (kk x cols); the result is the dense row-major rows x cols
    array, zero wherever S has no stored entry. *)
let sddmm (coo : Coo.t) (am : float array) (bm : float array) ~kk :
    float array =
  if Coo.rank coo <> 2 then invalid_arg "Reference.sddmm: not a matrix";
  let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
  if Array.length am <> rows * kk then
    invalid_arg "Reference.sddmm: A shape mismatch";
  if Array.length bm <> kk * cols then
    invalid_arg "Reference.sddmm: B shape mismatch";
  let o = Array.make (rows * cols) 0. in
  Array.iteri
    (fun idx cd ->
      let i = cd.(0) and j = cd.(1) in
      let s = coo.Coo.vals.(idx) in
      (* Accumulate in k order with the sample factored into each term,
         matching the lowered loop (out += S*A*B per k) bit for bit. *)
      let acc = ref o.((i * cols) + j) in
      for k = 0 to kk - 1 do
        acc := !acc +. (s *. am.((i * kk) + k) *. bm.((k * cols) + j))
      done;
      o.((i * cols) + j) <- !acc)
    coo.Coo.coords;
  o

(** [ttv coo c] computes the rank-3 contraction a(i,j) = B(i,j,k) c(k),
    row-major over (i, j). *)
let ttv (coo : Coo.t) (c : float array) : float array =
  if Coo.rank coo <> 3 then invalid_arg "Reference.ttv: not rank 3";
  if Array.length c <> coo.Coo.dims.(2) then
    invalid_arg "Reference.ttv: vector length mismatch";
  let nj = coo.Coo.dims.(1) in
  let a = Array.make (coo.Coo.dims.(0) * nj) 0. in
  Array.iteri
    (fun k cd ->
      let off = (cd.(0) * nj) + cd.(1) in
      a.(off) <- a.(off) +. (coo.Coo.vals.(k) *. c.(cd.(2))))
    coo.Coo.coords;
  a

(** Boolean SpMV for binary matrices: a_i |= B_ij & c_j (paper §4.2). *)
let spmv_binary (coo : Coo.t) (c : int array) : int array =
  let a = Array.make coo.Coo.dims.(0) 0 in
  Array.iteri
    (fun k cd ->
      let b = if coo.Coo.vals.(k) <> 0. then 1 else 0 in
      a.(cd.(0)) <- a.(cd.(0)) lor (b land c.(cd.(1))))
    coo.Coo.coords;
  a

(** Element-wise reference over dense expansions: union add. *)
let ewise_add (b : Coo.t) (c : Coo.t) : float array =
  let db = Coo.to_dense b and dc = Coo.to_dense c in
  Array.mapi (fun i x -> x +. dc.(i)) db

(** Element-wise reference: intersection multiply. *)
let ewise_mul (b : Coo.t) (c : Coo.t) : float array =
  let db = Coo.to_dense b and dc = Coo.to_dense c in
  Array.mapi (fun i x -> x *. dc.(i)) db

(** Boolean SpMM. *)
let spmm_binary (coo : Coo.t) (cm : int array) ~n : int array =
  let a = Array.make (coo.Coo.dims.(0) * n) 0 in
  Array.iteri
    (fun idx cd ->
      let i = cd.(0) and j = cd.(1) in
      let b = if coo.Coo.vals.(idx) <> 0. then 1 else 0 in
      for k = 0 to n - 1 do
        a.((i * n) + k) <- a.((i * n) + k) lor (b land cm.((j * n) + k))
      done)
    coo.Coo.coords;
  a
