(* Profile-guided prefetch tuning.

   The paper leaves the lookahead distance user- or profile-tunable
   (§3.2.3) and points to APT-GET and RPG^2 as orthogonal profile-guided
   techniques (§6): selecting distances dynamically, and rolling
   prefetching back when it does not pay. This module implements both
   ideas over the simulator: kernels are profiled on a slice of the
   outermost loop, then the full run uses the winning configuration.

   Profiling is honest about cost: every profiled configuration is a real
   (sliced) simulation on a cold hierarchy, and the chosen decision is
   returned with the profile so callers can report it.

   The sweep is one of three tuning modes (the others live in lib/model,
   which predicts the decision from cheap matrix features instead of
   simulating candidates); the [mode] type is defined here so every layer
   — Driver.Cfg, serve requests, the CLI — names modes the same way. *)

module Coo = Asap_tensor.Coo
module Storage = Asap_tensor.Storage
module Encoding = Asap_tensor.Encoding
module Kernel = Asap_lang.Kernel
module Runtime = Asap_sim.Runtime
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Asap = Asap_prefetch.Asap

(** How a [`Tuned] decision is made: [`Sweep] simulates every candidate
    distance on a profiling slice (this module); [`Model] predicts the
    configuration from one-pass matrix features (lib/model), skipping
    the sweep entirely; [`Hybrid] serves the sweep's decision while also
    running the model and recording agreement. *)
type mode = [ `Sweep | `Model | `Hybrid ]

let default_mode : mode = `Sweep

let mode_to_string : mode -> string = function
  | `Sweep -> "sweep"
  | `Model -> "model"
  | `Hybrid -> "hybrid"

let mode_of_string : string -> mode option = function
  | "sweep" -> Some `Sweep
  | "model" -> Some `Model
  | "hybrid" -> Some `Hybrid
  | _ -> None

let valid_modes = "sweep|model|hybrid"

type profile_entry = {
  pe_label : string;
  pe_distance : int option;    (* None for the baseline *)
  pe_cycles : int;
  pe_mpki : float;
}

type decision = {
  chosen : Pipeline.variant;
  profile : profile_entry list;
  profile_rows : int;          (* outer iterations profiled per entry *)
}

let default_candidates = [ 4; 8; 16; 32; 64 ]
let default_profile_fraction = 0.05

(* One sliced profiling run of SpMV under [variant]. The packed storage
   and the kernel are variant-independent, so the caller builds them once
   and every candidate run shares them. *)
let profile_run ?engine machine ~kernel ~st ~rows ~cols ~slice variant =
  let compiled = Pipeline.compile kernel variant in
  let out = Array.make rows 0. in
  let dense =
    [ ("c", Runtime.RF (Array.make cols 1.0)); ("a", Runtime.RF out) ]
  in
  let bufs = Bindings.storage_bufs compiled.Pipeline.cc st ~binary:false ~dense in
  let scalars =
    Bindings.scalar_args compiled.Pipeline.cc ~extents:[| rows; cols |]
  in
  Exec.run ?engine ~slice machine compiled.Pipeline.fn ~bufs ~scalars

(** [profile_cycles d] is the summed simulated cycles of the decision's
    profile runs — the virtual cost the serve scheduler charges a cache
    miss for sweep-mode tuning. *)
let profile_cycles (d : decision) : int =
  List.fold_left (fun acc e -> acc + e.pe_cycles) 0 d.profile

(** [tune ?engine ?jobs ?candidates ?mpki_threshold ?profile_fraction ?st
    machine enc coo] profiles SpMV over [coo] on a leading slice of rows
    and decides:

    - if the baseline slice shows less memory pressure than
      [mpki_threshold] (default 2.0 L2 MPKI), prefetching is rolled back
      entirely (the RPG^2 idea) and {!Pipeline.Baseline} is chosen;
    - otherwise ASaP is chosen with the candidate distance that minimised
      profiled cycles (the APT-GET idea); ties break towards the smaller
      distance, so the decision is independent of candidate order.

    [st], if given, must be [Storage.pack enc coo] — callers that already
    packed the matrix (the serve build path) pass it to skip re-packing;
    otherwise one shared packing is built here and reused by every
    profile run. Candidate profiling runs are independent simulations, so
    [jobs > 1] farms them to a {!Par} domain pool; the decision is
    deterministic either way. The top storage level must support slicing
    (dense outer loop). *)
let tune ?engine ?(jobs = 1) ?(candidates = default_candidates)
    ?(mpki_threshold = 2.0) ?(profile_fraction = default_profile_fraction) ?st
    (machine : Machine.t) (enc : Encoding.t) (coo : Coo.t) : decision =
  (match enc.Encoding.levels.(0) with
   | Encoding.Dense -> ()
   | Encoding.Compressed _ | Encoding.Singleton ->
     invalid_arg "Tuning.tune: profiling slices need a dense outer loop");
  if candidates = [] then
    invalid_arg "Tuning.tune: empty candidate list (nothing to sweep)";
  let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
  let prof_rows = max 1 (int_of_float (float_of_int rows *. profile_fraction)) in
  let slice = (0, prof_rows) in
  (* Variant-independent state, shared by the baseline and every
     candidate run: one packing, one kernel. *)
  let st = match st with Some st -> st | None -> Storage.pack enc coo in
  let kernel = Kernel.spmv ~enc () in
  let run variant =
    profile_run ?engine machine ~kernel ~st ~rows ~cols ~slice variant
  in
  let base = run Pipeline.Baseline in
  let base_entry =
    { pe_label = "baseline"; pe_distance = None;
      pe_cycles = base.Exec.rp_cycles; pe_mpki = Exec.l2_mpki base }
  in
  if Exec.l2_mpki base < mpki_threshold then
    { chosen = Pipeline.Baseline; profile = [ base_entry ];
      profile_rows = prof_rows }
  else begin
    let entries =
      Par.map ~jobs
        (fun d ->
          let r = run (Pipeline.Asap { Asap.default with Asap.distance = d }) in
          { pe_label = Printf.sprintf "asap-d%d" d; pe_distance = Some d;
            pe_cycles = r.Exec.rp_cycles; pe_mpki = Exec.l2_mpki r })
        (Array.of_list candidates)
      |> Array.to_list
    in
    let better e acc =
      (* Strictly fewer cycles wins; equal cycles prefer the smaller
         distance, making the pick independent of candidate order. *)
      e.pe_cycles < acc.pe_cycles
      || (e.pe_cycles = acc.pe_cycles && e.pe_distance < acc.pe_distance)
    in
    let best =
      List.fold_left
        (fun acc e -> if better e acc then e else acc)
        (List.hd entries) (List.tl entries)
    in
    let chosen =
      if best.pe_cycles < base.Exec.rp_cycles then
        Pipeline.Asap
          { Asap.default with Asap.distance = Option.get best.pe_distance }
      else Pipeline.Baseline
    in
    { chosen; profile = base_entry :: entries; profile_rows = prof_rows }
  end

(** [describe d] renders the decision for logs and examples. *)
let describe (d : decision) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "profiled %d outer rows:\n" d.profile_rows);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %-10s %10d cycles  %6.2f MPKI\n" e.pe_label
           e.pe_cycles e.pe_mpki))
    d.profile;
  Buffer.add_string buf
    (Printf.sprintf "chosen: %s\n" (Pipeline.variant_name d.chosen));
  Buffer.contents buf
