(** Reference kernel implementations over the COO exchange form.

    Plain OCaml, no IR, no simulator: the ground truth the interpreted
    sparsified code is checked against. *)

module Coo = Asap_tensor.Coo

(** [spmv coo c] computes a = B c.
    @raise Invalid_argument on shape mismatch. *)
val spmv : Coo.t -> float array -> float array

(** [spmm coo cm ~n] computes A = B C with row-major C of [n] columns. *)
val spmm : Coo.t -> float array -> n:int -> float array

(** [sddmm coo am bm ~kk] computes the sampled dense-dense product
    O(i,j) = S(i,j) * sum_k A(i,k) * B(k,j) with row-major A (rows x kk)
    and B (kk x cols), dense row-major output. *)
val sddmm : Coo.t -> float array -> float array -> kk:int -> float array

(** [ttv coo c] computes the rank-3 contraction a(i,j) = B(i,j,k) c(k),
    row-major over (i, j). *)
val ttv : Coo.t -> float array -> float array

(** Boolean SpMV for binary matrices: a_i |= B_ij & c_j (paper §4.2). *)
val spmv_binary : Coo.t -> int array -> int array

(** Element-wise references over dense expansions (for the merge-based
    co-iteration kernels): union add and intersection multiply. *)
val ewise_add : Coo.t -> Coo.t -> float array
val ewise_mul : Coo.t -> Coo.t -> float array

(** Boolean SpMM. *)
val spmm_binary : Coo.t -> int array -> n:int -> int array
