(* End-to-end experiment driver: COO matrix in, PMU report and kernel
   output out. This is the API the examples and the benchmark harness
   use. *)

module Coo = Asap_tensor.Coo
module Storage = Asap_tensor.Storage
module Encoding = Asap_tensor.Encoding
module Kernel = Asap_lang.Kernel
module Emitter = Asap_sparsifier.Emitter
module Runtime = Asap_sim.Runtime
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Specialize = Asap_sim.Specialize

type result = {
  report : Exec.report;
  counters : (string * int) list;  (* Exec.Report.to_assoc of the report *)
  nnz : int;
  out_f : float array option;   (* numeric kernels *)
  out_b : Bytes.t option;       (* binary kernels *)
}

let mk_result report nnz out_f out_b =
  { report; counters = Exec.Report.to_assoc report; nnz; out_f; out_b }

let throughput r = Exec.throughput_nnz_per_ms r.report ~nnz:r.nnz
let mpki r = Exec.l2_mpki r.report

(** Run configuration: everything about {e how} to execute a kernel —
    machine, code variant, engine, parallelism, operand flavour and
    observability sink — leaving {!run} to say {e what} to execute.
    Build with {!Cfg.make}; the optional-argument kernel entry points
    ({!spmv} etc.) are thin wrappers over this. *)
module Cfg = struct
  type t = {
    machine : Machine.t;
    variant : Pipeline.variant;
    engine : Exec.engine;
    threads : int;                       (* dense-outer-loop slices *)
    binary : bool;                       (* i8 and/or kernels *)
    n : int option;                      (* SpMM dense columns *)
    st : Storage.t option;               (* shared pre-packed storage *)
    obs : Asap_obs.Sink.t;               (* event sink (default: off) *)
    tune_mode : Tuning.mode;             (* how `Tuned decisions are made *)
    pipeline : string option;            (* pass-pipeline spec override *)
    specialize : bool;                   (* AoT-specialize before running *)
  }

  let make ?(engine = Exec.default_engine) ?(threads = 1) ?(binary = false)
      ?n ?st ?(obs = Asap_obs.Sink.null) ?(tune_mode = Tuning.default_mode)
      ?pipeline ?(specialize = false) ~machine ~variant () =
    { machine; variant; engine; threads; binary; n; st; obs; tune_mode;
      pipeline; specialize }
end

(* The prefetch distance a variant resolves to — a specialization fact
   ([Some 0] lets the specializer strip dead prefetch hooks). *)
let variant_distance = function
  | Pipeline.Baseline -> None
  | Pipeline.Asap (c : Asap_prefetch.Asap.config) ->
    Some c.Asap_prefetch.Asap.distance
  | Pipeline.Ainsworth_jones (c : Asap_prefetch.Ainsworth_jones.config) ->
    Some c.Asap_prefetch.Ainsworth_jones.distance

(** What to execute: the kernel family and the sparse encoding of its
    tensor operand ([Ttv None] defaults to rank-3 CSF). *)
type kernel_spec =
  | Spmv of Encoding.t
  | Spmm of Encoding.t
  | Sddmm of Encoding.t
  | Ttv of Encoding.t option

(* Deterministic dense operand contents (values are irrelevant to timing
   but must be varied enough for correctness checks). *)
let dense_f n = Array.init n (fun i -> 1.0 +. (float_of_int (i mod 97) /. 97.))
let dense_b n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set_uint8 b i ((i * 2654435761) lsr 7 land 1)
  done;
  b

let run_compiled ?spec ~engine ~obs (c : Pipeline.compiled) ~machine ~threads
    ~outer_extent ~bufs ~scalars =
  if threads <= 1 then
    Exec.run_prepared ~obs
      (Exec.prepare ~engine ?spec machine c.Pipeline.fn ~bufs)
      ~scalars
  else begin
    (match c.Pipeline.cc.Emitter.kernel.Kernel.k_encoding.Encoding.levels.(0)
     with
     | Encoding.Dense -> ()
     | Encoding.Compressed _ | Encoding.Singleton ->
       invalid_arg
         "Driver: dense-outer-loop parallelisation needs a dense top level");
    (* The parallel path specializes the IR only — the per-fiber engines
       compile it generically, which is value- and report-identical. *)
    let fn =
      match spec with
      | None -> c.Pipeline.fn
      | Some facts -> fst (Specialize.apply facts c.Pipeline.fn)
    in
    Exec.run_parallel ~engine ~obs machine ~threads ~outer_extent fn ~bufs
      ~scalars
  end

(* The kernel-specific assembly shared by the one-shot entry points and
   {!Prep}: sparsify + prefetch-inject, pack storage, allocate outputs,
   bind buffers, compute scalar arguments. Everything here is
   run-independent — {!Prep} does it once and re-executes many times. *)
type assembled = {
  a_nnz : int;
  a_compiled : Pipeline.compiled;
  a_bufs : (Asap_ir.Ir.buffer * Runtime.rbuf) list;
  a_scalars : int list;
  a_threads : int;
  a_outer_extent : int;
  a_out_f : float array option;
  a_out_b : Bytes.t option;
}

let assemble_spmv (cfg : Cfg.t) (enc : Encoding.t) (coo : Coo.t) : assembled =
  let binary = cfg.Cfg.binary in
  let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
  let body = if binary then Kernel.And_or else Kernel.Mul_add in
  let kernel = Kernel.spmv ~enc ~body () in
  let compiled =
    Pipeline.compile ?pipeline:cfg.Cfg.pipeline kernel cfg.Cfg.variant
  in
  let st =
    match cfg.Cfg.st with Some st -> st | None -> Storage.pack enc coo
  in
  let out_f = if binary then None else Some (Array.make rows 0.) in
  let out_b = if binary then Some (Bytes.make rows '\000') else None in
  let dense =
    if binary then
      [ ("c", Runtime.RB (dense_b cols));
        ("a", Runtime.RB (Option.get out_b)) ]
    else
      [ ("c", Runtime.RF (dense_f cols));
        ("a", Runtime.RF (Option.get out_f)) ]
  in
  let bufs = Bindings.storage_bufs compiled.Pipeline.cc st ~binary ~dense in
  let scalars =
    Bindings.scalar_args compiled.Pipeline.cc ~extents:[| rows; cols |]
  in
  { a_nnz = Coo.nnz coo; a_compiled = compiled; a_bufs = bufs;
    a_scalars = scalars; a_threads = cfg.Cfg.threads; a_outer_extent = rows;
    a_out_f = out_f; a_out_b = out_b }

let assemble_spmm (cfg : Cfg.t) (enc : Encoding.t) (coo : Coo.t) : assembled =
  let binary = cfg.Cfg.binary in
  let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
  let n =
    match cfg.Cfg.n with Some n -> n | None -> if binary then 64 else 8
  in
  let body = if binary then Kernel.And_or else Kernel.Mul_add in
  let kernel = Kernel.spmm ~enc ~body () in
  let compiled =
    Pipeline.compile ?pipeline:cfg.Cfg.pipeline kernel cfg.Cfg.variant
  in
  let st =
    match cfg.Cfg.st with Some st -> st | None -> Storage.pack enc coo
  in
  let out_f = if binary then None else Some (Array.make (rows * n) 0.) in
  let out_b = if binary then Some (Bytes.make (rows * n) '\000') else None in
  let dense =
    if binary then
      [ ("C", Runtime.RB (dense_b (cols * n)));
        ("A", Runtime.RB (Option.get out_b)) ]
    else
      [ ("C", Runtime.RF (dense_f (cols * n)));
        ("A", Runtime.RF (Option.get out_f)) ]
  in
  let bufs = Bindings.storage_bufs compiled.Pipeline.cc st ~binary ~dense in
  let scalars =
    Bindings.scalar_args compiled.Pipeline.cc ~extents:[| rows; cols; n |]
  in
  { a_nnz = Coo.nnz coo; a_compiled = compiled; a_bufs = bufs;
    a_scalars = scalars; a_threads = cfg.Cfg.threads; a_outer_extent = rows;
    a_out_f = out_f; a_out_b = out_b }

(* SDDMM samples a dense product: O(i,j) = S(i,j) * sum_k A(i,k)*B(k,j).
   [cfg.n] is the contraction depth kk (default 8, as for SpMM's dense
   columns). Only the numeric body is assembled — the binary flag is
   ignored, as for TTV. *)
let assemble_sddmm (cfg : Cfg.t) (enc : Encoding.t) (coo : Coo.t) :
    assembled =
  let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
  let kk = match cfg.Cfg.n with Some n -> n | None -> 8 in
  let kernel = Kernel.sddmm ~enc () in
  let compiled =
    Pipeline.compile ?pipeline:cfg.Cfg.pipeline kernel cfg.Cfg.variant
  in
  let st =
    match cfg.Cfg.st with Some st -> st | None -> Storage.pack enc coo
  in
  let out = Array.make (rows * cols) 0. in
  let dense =
    [ ("A", Runtime.RF (dense_f (rows * kk)));
      ("C", Runtime.RF (dense_f (kk * cols)));
      ("O", Runtime.RF out) ]
  in
  let bufs =
    Bindings.storage_bufs compiled.Pipeline.cc st ~binary:false ~dense
  in
  let scalars =
    Bindings.scalar_args compiled.Pipeline.cc ~extents:[| rows; cols; kk |]
  in
  { a_nnz = Coo.nnz coo; a_compiled = compiled; a_bufs = bufs;
    a_scalars = scalars; a_threads = cfg.Cfg.threads; a_outer_extent = rows;
    a_out_f = Some out; a_out_b = None }

(* The specialization facts of an assembled kernel: its resolved scalar
   arguments (extents, inner extents, block shapes) and the variant's
   prefetch distance. [None] unless the configuration opts in. *)
let spec_facts (cfg : Cfg.t) (a : assembled) : Specialize.facts option =
  if not cfg.Cfg.specialize then None
  else
    Some
      (Specialize.make
         ?distance:(variant_distance cfg.Cfg.variant)
         ~scalars:a.a_scalars ())

let run_assembled (cfg : Cfg.t) (a : assembled) : result =
  let report =
    run_compiled ?spec:(spec_facts cfg a) ~engine:cfg.Cfg.engine
      ~obs:cfg.Cfg.obs a.a_compiled ~machine:cfg.Cfg.machine
      ~threads:a.a_threads ~outer_extent:a.a_outer_extent ~bufs:a.a_bufs
      ~scalars:a.a_scalars
  in
  mk_result report a.a_nnz a.a_out_f a.a_out_b

let run_spmv (cfg : Cfg.t) (enc : Encoding.t) (coo : Coo.t) : result =
  run_assembled cfg (assemble_spmv cfg enc coo)

let run_spmm (cfg : Cfg.t) (enc : Encoding.t) (coo : Coo.t) : result =
  run_assembled cfg (assemble_spmm cfg enc coo)

(** [sddmm ?engine ?kk machine variant enc coo] runs the sampled
    dense-dense matrix product O(i,j) = S(i,j) * sum_k A(i,k)*B(k,j) over
    the sparse sample [coo]; [kk] is the contraction depth (default 8). *)
let sddmm ?engine ?kk ?st (machine : Machine.t)
    (variant : Pipeline.variant) (enc : Encoding.t) (coo : Coo.t) : result =
  let cfg = Cfg.make ?engine ?n:kk ?st ~machine ~variant () in
  run_assembled cfg (assemble_sddmm cfg enc coo)

(** [spmv ?engine ?threads ?binary ?st machine variant enc coo] packs
    [coo] under [enc], compiles SpMV with [variant], and runs it. [st], if
    given, must be [Storage.pack enc coo] — callers running several
    variants over one matrix pass it to share the packing work. *)
let spmv ?engine ?threads ?binary ?st (machine : Machine.t)
    (variant : Pipeline.variant) (enc : Encoding.t) (coo : Coo.t) : result =
  run_spmv (Cfg.make ?engine ?threads ?binary ?st ~machine ~variant ()) enc coo

(** [spmm ?engine ?threads ?binary ?n machine variant enc coo] runs SpMM. The
    dense operand has [n] columns — by default sized so one row fills one
    cache line: 8 f64 columns, or 64 i8 columns for binary matrices
    (paper §5.2). *)
let spmm ?engine ?threads ?binary ?n ?st (machine : Machine.t)
    (variant : Pipeline.variant) (enc : Encoding.t) (coo : Coo.t) : result =
  run_spmm (Cfg.make ?engine ?threads ?binary ?n ?st ~machine ~variant ())
    enc coo

module Merge = Asap_sparsifier.Merge

(* Resolve a Merge compiled function's parameters against two packed
   storages and a dense output. *)
let merge_bufs (m : Merge.compiled) (stb : Storage.t) (stc : Storage.t) out =
  List.map
    (fun (buffer, binding) ->
      let st = function `B -> stb | `C -> stc in
      let data =
        match binding with
        | Merge.Mpos (side, l) ->
          Runtime.RI (Option.get (Storage.pos_buf (st side) l))
        | Merge.Mcrd (side, l) ->
          Runtime.RI (Option.get (Storage.crd_buf (st side) l))
        | Merge.Mvals side -> Runtime.RF (st side).Storage.vals
        | Merge.Mout -> Runtime.RF out
      in
      (buffer, data))
    m.Merge.m_buffers

(** [vector_ewise machine op b c] merges two sparse vectors element-wise
    (union add or intersection multiply) into a dense output — the
    merge-based co-iteration strategy of §3.1. *)
let vector_ewise ?(engine = Exec.default_engine) (machine : Machine.t)
    (op : Merge.op) (b : Coo.t) (c : Coo.t) : result =
  if Coo.rank b <> 1 || Coo.rank c <> 1 || b.Coo.dims.(0) <> c.Coo.dims.(0)
  then invalid_arg "Driver.vector_ewise: need equal-length sparse vectors";
  let n = b.Coo.dims.(0) in
  let enc = Encoding.sparse_vector () in
  let m = Merge.vector_ewise op in
  let stb = Storage.pack enc b and stc = Storage.pack enc c in
  let out = Array.make n 0. in
  let bufs = merge_bufs m stb stc out in
  let scalars = List.map (fun (_, d) -> [| n |].(d)) m.Merge.m_scalars in
  let report = Exec.run ~engine machine m.Merge.m_fn ~bufs ~scalars in
  mk_result report (Coo.nnz b + Coo.nnz c) (Some out) None

(** [matrix_ewise machine op b c] merges two CSR matrices row by row into
    a dense row-major output. *)
let matrix_ewise ?(engine = Exec.default_engine) (machine : Machine.t)
    (op : Merge.op) (b : Coo.t) (c : Coo.t) : result =
  if Coo.rank b <> 2 || b.Coo.dims <> c.Coo.dims then
    invalid_arg "Driver.matrix_ewise: need same-shape matrices";
  let rows = b.Coo.dims.(0) and cols = b.Coo.dims.(1) in
  let enc = Encoding.csr () in
  let m = Merge.matrix_ewise op in
  let stb = Storage.pack enc b and stc = Storage.pack enc c in
  let out = Array.make (rows * cols) 0. in
  let bufs = merge_bufs m stb stc out in
  let scalars =
    List.map (fun (_, d) -> [| rows; cols |].(d)) m.Merge.m_scalars
  in
  let report = Exec.run ~engine machine m.Merge.m_fn ~bufs ~scalars in
  mk_result report (Coo.nnz b + Coo.nnz c) (Some out) None

(* TTV has no parallel path: the paper only evaluates it single-threaded,
   so the assembly pins threads to 1 regardless of the configuration. *)
let assemble_ttv (cfg : Cfg.t) (enc : Encoding.t option) (coo : Coo.t) :
    assembled =
  let enc = match enc with Some e -> e | None -> Encoding.csf 3 in
  let di = coo.Coo.dims.(0) and dj = coo.Coo.dims.(1) and dk = coo.Coo.dims.(2) in
  let kernel = Kernel.ttv ~enc () in
  let compiled =
    Pipeline.compile ?pipeline:cfg.Cfg.pipeline kernel cfg.Cfg.variant
  in
  let st =
    match cfg.Cfg.st with Some st -> st | None -> Storage.pack enc coo
  in
  let out = Array.make (di * dj) 0. in
  let dense =
    [ ("c", Runtime.RF (dense_f dk)); ("a", Runtime.RF out) ]
  in
  let bufs = Bindings.storage_bufs compiled.Pipeline.cc st ~binary:false ~dense in
  let scalars =
    Bindings.scalar_args compiled.Pipeline.cc ~extents:[| di; dj; dk |]
  in
  { a_nnz = Coo.nnz coo; a_compiled = compiled; a_bufs = bufs;
    a_scalars = scalars; a_threads = 1; a_outer_extent = di;
    a_out_f = Some out; a_out_b = None }

let run_ttv (cfg : Cfg.t) (enc : Encoding.t option) (coo : Coo.t) : result =
  run_assembled cfg (assemble_ttv cfg enc coo)

(** [ttv machine variant enc coo] runs the rank-3 tensor-times-vector
    contraction a(i,j) = B(i,j,k) c(k); [enc] defaults to rank-3 CSF, where
    the step-2 bound needs the full position-chain recursion (§3.2.2). *)
let ttv ?engine ?enc (machine : Machine.t) (variant : Pipeline.variant)
    (coo : Coo.t) : result =
  run_ttv (Cfg.make ?engine ~machine ~variant ()) enc coo

(** [run cfg spec coo] is the unified entry point: execute the kernel
    named by [spec] on [coo] under configuration [cfg]. The per-kernel
    entry points ({!spmv}, {!spmm}, {!ttv}) are thin wrappers over this. *)
let assemble (cfg : Cfg.t) (spec : kernel_spec) (coo : Coo.t) : assembled =
  match spec with
  | Spmv enc -> assemble_spmv cfg enc coo
  | Spmm enc -> assemble_spmm cfg enc coo
  | Sddmm enc -> assemble_sddmm cfg enc coo
  | Ttv enc -> assemble_ttv cfg enc coo

let run (cfg : Cfg.t) (spec : kernel_spec) (coo : Coo.t) : result =
  run_assembled cfg (assemble cfg spec coo)

(** A prepared kernel execution: sparsification, prefetch injection,
    storage packing, buffer layout and (compiled engine) closure staging
    all done once by {!Prep.make}; {!Prep.exec} then re-runs the kernel on
    a fresh memory hierarchy per call. This is what the serve subsystem's
    compile cache stores — repeat requests for the same fingerprint skip
    straight to [exec]. *)
module Prep = struct
  type t = {
    p_cfg : Cfg.t;
    p_spec : kernel_spec;
    p_a : assembled;
    p_prepared : Exec.prepared option;   (* Some iff single-threaded *)
  }

  let make (cfg : Cfg.t) (spec : kernel_spec) (coo : Coo.t) : t =
    let a = assemble cfg spec coo in
    let prepared =
      if a.a_threads <= 1 then
        Some
          (Exec.prepare ~engine:cfg.Cfg.engine ?spec:(spec_facts cfg a)
             cfg.Cfg.machine a.a_compiled.Pipeline.fn ~bufs:a.a_bufs)
      else None
    in
    { p_cfg = cfg; p_spec = spec; p_a = a; p_prepared = prepared }

  let cfg p = p.p_cfg
  let spec p = p.p_spec
  let compiled p = p.p_a.a_compiled
  let nnz p = p.p_a.a_nnz

  (** [exec ?obs p] re-runs the prepared kernel; [obs] overrides the
      configuration's sink for this run only. The result's [out_f]/[out_b]
      alias [p]'s output buffers (zeroed before each run — the kernels
      accumulate into their outputs), so a result is only valid until the
      next [exec] on the same [p]. *)
  let exec ?obs (p : t) : result =
    let obs = match obs with Some s -> s | None -> p.p_cfg.Cfg.obs in
    let a = p.p_a in
    (match a.a_out_f with
     | Some o -> Array.fill o 0 (Array.length o) 0.
     | None -> ());
    (match a.a_out_b with
     | Some o -> Bytes.fill o 0 (Bytes.length o) '\000'
     | None -> ());
    let report =
      match p.p_prepared with
      | Some pr -> Exec.run_prepared ~obs pr ~scalars:a.a_scalars
      | None ->
        run_compiled ?spec:(spec_facts p.p_cfg a) ~engine:p.p_cfg.Cfg.engine
          ~obs a.a_compiled ~machine:p.p_cfg.Cfg.machine ~threads:a.a_threads
          ~outer_extent:a.a_outer_extent ~bufs:a.a_bufs ~scalars:a.a_scalars
    in
    mk_result report a.a_nnz a.a_out_f a.a_out_b
end

(** [check_ttv coo r] is the max absolute error of a TTV run against the
    reference. *)
let check_ttv (coo : Coo.t) (r : result) : float =
  match r.out_f with
  | None -> invalid_arg "check_ttv: binary TTV unsupported"
  | Some a ->
    let expect = Reference.ttv coo (dense_f coo.Coo.dims.(2)) in
    let m = ref 0. in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. expect.(i)) in
        if d > !m then m := d)
      a;
    !m

(** [check_spmv coo r] compares an SpMV result against the reference;
    returns the max absolute error (0 for binary matches). *)
let check_spmv (coo : Coo.t) (r : result) : float =
  match (r.out_f, r.out_b) with
  | Some a, _ ->
    let expect = Reference.spmv coo (dense_f coo.Coo.dims.(1)) in
    let m = ref 0. in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. expect.(i)) in
        if d > !m then m := d)
      a;
    !m
  | None, Some b ->
    let cb = dense_b coo.Coo.dims.(1) in
    let c = Array.init (Bytes.length cb) (Bytes.get_uint8 cb) in
    let expect = Reference.spmv_binary coo c in
    let ok = ref true in
    Array.iteri (fun i e -> if Bytes.get_uint8 b i <> e then ok := false)
      expect;
    if !ok then 0. else 1.
  | None, None -> assert false

(** [check_sddmm coo ~kk r] is the max absolute error of an SDDMM run
    against the reference (contraction depth [kk]). *)
let check_sddmm (coo : Coo.t) ~kk (r : result) : float =
  match r.out_f with
  | None -> invalid_arg "check_sddmm: binary SDDMM unsupported"
  | Some o ->
    let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
    let expect =
      Reference.sddmm coo (dense_f (rows * kk)) (dense_f (kk * cols)) ~kk
    in
    let m = ref 0. in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. expect.(i)) in
        if d > !m then m := d)
      o;
    !m

(** [check_spmm coo ~n r] likewise for SpMM. *)
let check_spmm (coo : Coo.t) ~n (r : result) : float =
  match (r.out_f, r.out_b) with
  | Some a, _ ->
    let expect = Reference.spmm coo (dense_f (coo.Coo.dims.(1) * n)) ~n in
    let m = ref 0. in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. expect.(i)) in
        if d > !m then m := d)
      a;
    !m
  | None, Some b ->
    let cb = dense_b (coo.Coo.dims.(1) * n) in
    let c = Array.init (Bytes.length cb) (Bytes.get_uint8 cb) in
    let expect = Reference.spmm_binary coo c ~n in
    let ok = ref true in
    Array.iteri (fun i e -> if Bytes.get_uint8 b i <> e then ok := false)
      expect;
    if !ok then 0. else 1.
  | None, None -> assert false
