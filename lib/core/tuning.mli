(** Profile-guided prefetch tuning.

    The paper leaves the lookahead distance user- or profile-tunable
    (§3.2.3) and cites APT-GET and RPG^2 as orthogonal profile-guided
    directions (§6). [tune] implements both over the simulator: SpMV is
    profiled on a leading slice of rows; prefetching is rolled back when
    the slice shows low memory pressure, otherwise the cycle-minimising
    candidate distance is selected. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine

type profile_entry = {
  pe_label : string;
  pe_distance : int option;    (** [None] for the baseline entry *)
  pe_cycles : int;
  pe_mpki : float;
}

type decision = {
  chosen : Pipeline.variant;
  profile : profile_entry list;
  profile_rows : int;
}

val default_candidates : int list

(** [tune ?engine ?jobs ?candidates ?mpki_threshold ?profile_fraction
    machine enc coo] profiles and decides. The encoding's top level must
    be dense (the profiling slice is a row range). [engine] selects the
    simulator's execution engine; candidate profiling runs are independent
    simulations, so [jobs > 1] farms them to a {!Par} domain pool — the
    decision is deterministic either way.
    @raise Invalid_argument otherwise. *)
val tune :
  ?engine:Asap_sim.Exec.engine -> ?jobs:int ->
  ?candidates:int list -> ?mpki_threshold:float -> ?profile_fraction:float ->
  Machine.t -> Encoding.t -> Coo.t -> decision

(** [describe d] renders the decision for logs and examples. *)
val describe : decision -> string
