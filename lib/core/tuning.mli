(** Profile-guided prefetch tuning.

    The paper leaves the lookahead distance user- or profile-tunable
    (§3.2.3) and cites APT-GET and RPG^2 as orthogonal profile-guided
    directions (§6). [tune] implements both over the simulator: SpMV is
    profiled on a leading slice of rows; prefetching is rolled back when
    the slice shows low memory pressure, otherwise the cycle-minimising
    candidate distance is selected. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine

(** How a [`Tuned] decision is made: [`Sweep] simulates every candidate
    distance on a profiling slice (this module); [`Model] predicts the
    configuration from one-pass matrix features
    ({!Asap_model.Cost_model}), skipping the sweep entirely; [`Hybrid]
    serves the sweep's decision while also running the model and
    recording agreement. Defined here so Driver.Cfg, serve requests and
    the CLI all name modes identically. *)
type mode = [ `Sweep | `Model | `Hybrid ]

val default_mode : mode
val mode_to_string : mode -> string
val mode_of_string : string -> mode option

(** ["sweep|model|hybrid"], for CLI error messages. *)
val valid_modes : string

type profile_entry = {
  pe_label : string;
  pe_distance : int option;    (** [None] for the baseline entry *)
  pe_cycles : int;
  pe_mpki : float;
}

type decision = {
  chosen : Pipeline.variant;
  profile : profile_entry list;
  profile_rows : int;
}

val default_candidates : int list

(** Fraction of outer rows profiled per candidate (0.05). Exposed so the
    cost model's analytic slice estimate ({!Asap_model.Features}) mirrors
    exactly the slice the sweep measures. *)
val default_profile_fraction : float

(** [profile_cycles d] is the summed simulated cycles of the decision's
    profile runs — the virtual cost a serve cache miss is charged for
    sweep-mode tuning. *)
val profile_cycles : decision -> int

(** [tune ?engine ?jobs ?candidates ?mpki_threshold ?profile_fraction ?st
    machine enc coo] profiles and decides. The encoding's top level must
    be dense (the profiling slice is a row range). [engine] selects the
    simulator's execution engine; candidate profiling runs are independent
    simulations, so [jobs > 1] farms them to a {!Par} domain pool — the
    decision is deterministic either way, and independent of candidate
    order (cycle ties break towards the smaller distance). [st], if
    given, must be [Storage.pack enc coo]; callers that already packed
    the matrix pass it so the variant-independent packing is not redone —
    otherwise one shared packing is built and reused across all profile
    runs.
    @raise Invalid_argument on a compressed outer level or an empty
    candidate list. *)
val tune :
  ?engine:Asap_sim.Exec.engine -> ?jobs:int ->
  ?candidates:int list -> ?mpki_threshold:float -> ?profile_fraction:float ->
  ?st:Asap_tensor.Storage.t ->
  Machine.t -> Encoding.t -> Coo.t -> decision

(** [describe d] renders the decision for logs and examples. *)
val describe : decision -> string
