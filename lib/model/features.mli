(** One-pass structural features of a sparse matrix — the cheap inputs
    the cost model predicts prefetch configurations from, replacing the
    candidate sweep's sliced simulations. O(nnz + rows + cols), two small
    allocations. The quantities mirror what the paper's evaluation plots
    against: segment-length distribution (§3.2.2) and an analytic
    L2-MPKI estimate for the irregular gather (Fig. 6/8 x-axis),
    computed over exactly the profiling slice {!Tuning.tune} measures. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine

(** Number of log2 buckets in the segment-length histogram. *)
val hist_buckets : int

type t = {
  f_rows : int;
  f_cols : int;
  f_nnz : int;
  f_row_mean : float;          (** nnz/row mean (inner segment length) *)
  f_row_cov : float;           (** coefficient of variation of row lengths *)
  f_row_max : int;
  f_empty_frac : float;        (** fraction of rows with no entries *)
  f_hist : int array;          (** log2 segment-length histogram (rows) *)
  f_tail_mass : float;         (** nnz fraction in rows > 4x mean length *)
  f_band_frac : float;         (** mean |col − diag| / cols; 0 = diagonal *)
  f_gather_bytes : int;        (** dense-operand footprint: cols × 8 *)
  f_stream_bytes : int;        (** pos+crd+vals bytes streamed once *)
  f_slice_nnz : int;           (** gather accesses in the profiling slice *)
  f_slice_lines : int;         (** distinct gather lines the slice touches *)
  f_l1_ratio : float;          (** touched gather footprint / L1 *)
  f_l2_ratio : float;          (** touched gather footprint / L2 *)
  f_l3_ratio : float;          (** touched gather footprint / L3 *)
  f_est_mpki : float;          (** analytic slice L2-MPKI of the gather *)
  f_block_elems : int;         (** values per stored leaf: bh*bw for blocked
                                   encodings, 1 otherwise *)
  f_block_fill : float;        (** nnz / stored values — the explicit-zero
                                   price of a blocked layout; 1.0 unblocked *)
  f_extract_cycles : int;      (** virtual cycles charged for extraction *)
}

(** [extract ~machine enc coo] computes the feature vector for a rank-2
    tensor (the same restriction as the sweep it replaces); [coo] need
    not be sorted or deduplicated. [profile_fraction] defaults to
    {!Tuning.default_profile_fraction} so the slice estimate mirrors the
    sweep's measurement exactly.
    @raise Invalid_argument on other ranks. *)
val extract :
  ?profile_fraction:float -> machine:Machine.t -> Encoding.t -> Coo.t -> t

(** Scalar features as a name/value list (histogram elided), for logs
    and the fit tool. *)
val to_assoc : t -> (string * float) list

val pp : Format.formatter -> t -> unit
