(* Tuning-mode dispatch: one entry point that turns a [`Tuned] request
   into a concrete variant under any of the three modes.

   - [`Sweep]  — Tuning.tune's sliced candidate simulations (the
     profile-guided path the repo has always had);
   - [`Model]  — Features.extract + Cost_model.predict: O(nnz) integer
     work instead of O(candidates) simulations; this is the cold-start
     fast path;
   - [`Hybrid] — runs both, *serves the sweep's decision* (so hybrid
     replays are byte-identical to sweep replays) and records whether
     the model agreed and how many profiled cycles its pick would have
     cost relative to the sweep's.

   The returned decision also carries [d_tune_cycles], the virtual
   cycles the serve scheduler charges a cache miss for making the
   decision — profiled simulation cycles for the sweep, the feature
   extractor's O(nnz) cost for the model, their sum for hybrid. *)

module Coo = Asap_tensor.Coo
module Storage = Asap_tensor.Storage
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Pipeline = Asap_core.Pipeline
module Tuning = Asap_core.Tuning
module Asap = Asap_prefetch.Asap

type decision = {
  d_mode : Tuning.mode;
  d_chosen : Pipeline.variant;        (* the variant actually served *)
  d_features : Features.t option;     (* Some for `Model and `Hybrid *)
  d_model : Cost_model.prediction option;
  d_sweep : Tuning.decision option;   (* Some for `Sweep and `Hybrid *)
  d_agree : bool option;              (* `Hybrid: model = sweep choice? *)
  d_delta_cycles : int option;
    (* `Hybrid: profiled slice cycles of the model's pick minus the
       sweep's pick (0 when they agree; the model's distance is mapped
       to the nearest profiled candidate) *)
  d_tune_cycles : int;                (* virtual cost of deciding *)
}

(* Profiled slice cycles of [variant] according to a sweep's profile.
   A model distance absent from the candidate list is charged as the
   nearest profiled candidate — the sweep never measured it, and on the
   plateau neighbours are the honest stand-in. *)
let profile_lookup (sweep : Tuning.decision) (variant : Pipeline.variant) :
    int option =
  let entries = sweep.Tuning.profile in
  match variant with
  | Pipeline.Baseline ->
    List.find_opt (fun e -> e.Tuning.pe_distance = None) entries
    |> Option.map (fun e -> e.Tuning.pe_cycles)
  | Pipeline.Asap c ->
    let d = c.Asap.distance in
    List.filter (fun e -> e.Tuning.pe_distance <> None) entries
    |> List.fold_left
         (fun acc e ->
           let ed = Option.get e.Tuning.pe_distance in
           match acc with
           | None -> Some (abs (ed - d), e.Tuning.pe_cycles)
           | Some (gap, _) when abs (ed - d) < gap ->
             Some (abs (ed - d), e.Tuning.pe_cycles)
           | Some _ -> acc)
         None
    |> Option.map snd
  | Pipeline.Ainsworth_jones _ -> None

let decide ?engine ?jobs ?coeffs ?candidates ?mpki_threshold
    ?profile_fraction ?st ~(mode : Tuning.mode) (machine : Machine.t)
    (enc : Encoding.t) (coo : Coo.t) : decision =
  let sweep () =
    Tuning.tune ?engine ?jobs ?candidates ?mpki_threshold ?profile_fraction
      ?st machine enc coo
  in
  let model () =
    let f = Features.extract ?profile_fraction ~machine enc coo in
    (f, Cost_model.predict ?coeffs machine f)
  in
  match mode with
  | `Sweep ->
    let s = sweep () in
    { d_mode = mode; d_chosen = s.Tuning.chosen; d_features = None;
      d_model = None; d_sweep = Some s; d_agree = None;
      d_delta_cycles = None; d_tune_cycles = Tuning.profile_cycles s }
  | `Model ->
    let f, p = model () in
    { d_mode = mode; d_chosen = p.Cost_model.p_variant;
      d_features = Some f; d_model = Some p; d_sweep = None;
      d_agree = None; d_delta_cycles = None;
      d_tune_cycles = f.Features.f_extract_cycles }
  | `Hybrid ->
    (* The sweep's decision is served — hybrid exists to measure the
       model against ground truth without changing behaviour. *)
    let f, p = model () in
    let s = sweep () in
    let agree = Cost_model.same_choice p.Cost_model.p_variant s.Tuning.chosen in
    let delta =
      if agree then Some 0
      else
        match
          ( profile_lookup s p.Cost_model.p_variant,
            profile_lookup s s.Tuning.chosen )
        with
        | Some m, Some c -> Some (m - c)
        | _ -> None
    in
    { d_mode = mode; d_chosen = s.Tuning.chosen; d_features = Some f;
      d_model = Some p; d_sweep = Some s; d_agree = Some agree;
      d_delta_cycles = delta;
      d_tune_cycles = Tuning.profile_cycles s + f.Features.f_extract_cycles }

let describe (d : decision) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "tune mode: %s\n" (Tuning.mode_to_string d.d_mode));
  (match d.d_sweep with
   | Some s -> Buffer.add_string buf (Tuning.describe s)
   | None -> ());
  (match d.d_model with
   | Some p -> Buffer.add_string buf (Cost_model.describe p)
   | None -> ());
  (match d.d_agree with
   | Some a ->
     Buffer.add_string buf
       (Printf.sprintf "model vs sweep: %s%s\n"
          (if a then "agree" else "disagree")
          (match d.d_delta_cycles with
           | Some dc when dc <> 0 ->
             Printf.sprintf " (model pick %+d profiled cycles)" dc
           | _ -> ""))
   | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "serving: %s\n" (Pipeline.variant_name d.d_chosen));
  Buffer.contents buf
