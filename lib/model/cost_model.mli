(** The interpretable feature → prefetch-configuration cost model:
    a rollback knee (below [c_rollback_mpki] estimated MPKI the matrix
    is cache-resident and prefetching only adds overhead), a linear
    Fig. 6-style speedup estimate over estimated MPKI, and a two-rung
    distance ladder keyed on stored-element count. Coefficients are
    calibrated offline by [tools/fit_cost_model.ml]. *)

module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline

type coeffs = {
  c_rollback_mpki : float;  (** roll back below this estimated MPKI *)
  c_intercept : float;      (** predicted speedup at MPKI → 0 *)
  c_slope : float;          (** predicted speedup gain per unit MPKI *)
  c_min_speedup : float;    (** choose ASaP only above this *)
  c_tiny_nnz : int;         (** stored-element count splitting the ladder *)
  c_dist_short : int;       (** distance for tiny matrices *)
  c_dist_long : int;        (** distance for everything else *)
}

(** Fitted values (see tools/fit_cost_model.ml). *)
val default : coeffs

type prediction = {
  p_variant : Pipeline.variant;
  p_speedup : float;        (** predicted ASaP speedup over baseline *)
  p_distance : int option;  (** [Some] iff ASaP was chosen *)
  p_reason : string;        (** one-line explanation, for logs *)
}

(** [predict ?coeffs machine f] maps features to a variant. Pure and
    O(1): all the measurement happened in {!Features.extract}. *)
val predict : ?coeffs:coeffs -> Machine.t -> Features.t -> prediction

(** [same_choice a b] — do two variants name the same code? Same
    constructor, and for ASaP the same distance (the only field tuning
    varies). Used for hybrid-mode agreement accounting. *)
val same_choice : Pipeline.variant -> Pipeline.variant -> bool

val describe : prediction -> string
