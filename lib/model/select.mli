(** Tuning-mode dispatch: turn a [`Tuned] request into a concrete
    variant under [`Sweep] (sliced candidate simulations), [`Model]
    (one-pass features + cost model — the cold-start fast path) or
    [`Hybrid] (serve the sweep's decision, record whether the model
    agreed). *)

module Coo = Asap_tensor.Coo
module Storage = Asap_tensor.Storage
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Tuning = Asap_core.Tuning

type decision = {
  d_mode : Tuning.mode;
  d_chosen : Pipeline.variant;     (** the variant actually served *)
  d_features : Features.t option;  (** [Some] for [`Model] and [`Hybrid] *)
  d_model : Cost_model.prediction option;
  d_sweep : Tuning.decision option;  (** [Some] for [`Sweep] and [`Hybrid] *)
  d_agree : bool option;   (** [`Hybrid]: did the model match the sweep? *)
  d_delta_cycles : int option;
    (** [`Hybrid] disagreements: profiled slice cycles of the model's
        pick minus the sweep's (model distances absent from the
        candidate list are charged as the nearest profiled candidate) *)
  d_tune_cycles : int;
    (** virtual cycles charged for making the decision: profiled
        simulation cycles ([`Sweep]), the feature extractor's O(nnz)
        cost ([`Model]), or their sum ([`Hybrid]) *)
}

(** [decide ~mode machine enc coo] decides a variant. [`Hybrid] always
    serves the sweep's choice, so hybrid replays are byte-identical to
    sweep replays. Optional arguments are forwarded to {!Tuning.tune}
    ([engine], [jobs], [candidates], [mpki_threshold],
    [profile_fraction], [st]) and {!Cost_model.predict} ([coeffs]);
    [st], if given, must be [Storage.pack enc coo].
    @raise Invalid_argument as {!Tuning.tune} and {!Features.extract}
    do (compressed outer level, empty candidates, non-rank-2). *)
val decide :
  ?engine:Asap_sim.Exec.engine -> ?jobs:int ->
  ?coeffs:Cost_model.coeffs -> ?candidates:int list ->
  ?mpki_threshold:float -> ?profile_fraction:float ->
  ?st:Storage.t -> mode:Tuning.mode ->
  Machine.t -> Encoding.t -> Coo.t -> decision

(** [describe d] renders the decision (profile, prediction, agreement)
    for logs and the CLI. *)
val describe : decision -> string
