(* The interpretable feature -> prefetch-configuration cost model.

   Ahrens & Kjolstad's asymptotic-cost-model direction (PAPERS.md),
   specialised to the one decision our tuner makes: Baseline (roll
   prefetching back) versus ASaP at some lookahead distance. The model
   is two calibrated pieces, both readable straight off the paper's
   evaluation:

   - a rollback knee: below [c_rollback_mpki] estimated L2 MPKI the
     matrix is cache-resident and prefetching only adds overhead
     (Fig. 6's y < 1 region, EXPERIMENTS.md brackets the break-even in
     [0.9, 5.8] MPKI);
   - a linear speedup estimate [c_intercept + c_slope * est_mpki]
     (Fig. 6/8's regression form): ASaP is chosen only when the
     predicted speedup clears [c_min_speedup];
   - a distance ladder: EXPERIMENTS.md's distance sweep shows 0.92x at
     d=4 rising to a 1.66-1.75x plateau over d=16..128 on the scaled
     machine, so the model only distinguishes tiny matrices (under
     [c_tiny_nnz] stored elements the operand set is cache-resident
     after first touch; prefetching only covers the short cold sweep and
     shallow lookahead wins) from everything else (the plateau).

   Coefficients are calibrated offline by tools/fit_cost_model.ml, which
   sweeps the synthetic suite once and checks model-vs-sweep agreement;
   [default] holds the fitted values. *)

module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Asap = Asap_prefetch.Asap

type coeffs = {
  c_rollback_mpki : float;   (* roll back below this estimated MPKI *)
  c_intercept : float;       (* predicted speedup at MPKI -> 0 *)
  c_slope : float;           (* predicted speedup gain per unit MPKI *)
  c_min_speedup : float;     (* choose ASaP only above this *)
  c_tiny_nnz : int;          (* stored-element count splitting the ladder *)
  c_dist_short : int;        (* distance for tiny matrices *)
  c_dist_long : int;         (* distance for everything else *)
}

let default =
  { c_rollback_mpki = 2.0;   (* the sweep's own knee (Tuning.tune) *)
    c_intercept = 0.90;      (* Fig. 6: ~10% overhead at MPKI -> 0 *)
    c_slope = 0.013;         (* break-even near 7.7 est MPKI *)
    c_min_speedup = 1.0;
    c_tiny_nnz = 4096;
    c_dist_short = 8;
    c_dist_long = 32 }       (* mid-plateau; the sweep's usual pick *)

type prediction = {
  p_variant : Pipeline.variant;
  p_speedup : float;           (* predicted ASaP speedup over baseline *)
  p_distance : int option;     (* Some iff ASaP was chosen *)
  p_reason : string;           (* one-line explanation, for logs *)
}

(** [predict ?coeffs machine f] maps features to a variant. Pure and
    O(1): all the work happened in {!Features.extract}. *)
let predict ?(coeffs = default) (_machine : Machine.t) (f : Features.t) :
    prediction =
  let mpki = f.Features.f_est_mpki in
  let speedup = coeffs.c_intercept +. (coeffs.c_slope *. mpki) in
  if mpki < coeffs.c_rollback_mpki then
    { p_variant = Pipeline.Baseline; p_speedup = speedup; p_distance = None;
      p_reason =
        Printf.sprintf "rollback: est %.2f MPKI < %.2f knee" mpki
          coeffs.c_rollback_mpki }
  else if speedup <= coeffs.c_min_speedup then
    { p_variant = Pipeline.Baseline; p_speedup = speedup; p_distance = None;
      p_reason =
        Printf.sprintf
          "rollback: predicted speedup %.3f <= %.2f at est %.2f MPKI"
          speedup coeffs.c_min_speedup mpki }
  else begin
    let d =
      if f.Features.f_nnz < coeffs.c_tiny_nnz then coeffs.c_dist_short
      else coeffs.c_dist_long
    in
    { p_variant = Pipeline.Asap { Asap.default with Asap.distance = d };
      p_speedup = speedup; p_distance = Some d;
      p_reason =
        Printf.sprintf
          "asap d=%d: est %.2f MPKI, predicted speedup %.3f, %d stored"
          d mpki speedup f.Features.f_nnz }
  end

(** Variants compare equal for agreement accounting when they name the
    same code: same constructor, and for ASaP the same distance (the
    only field tuning varies). *)
let same_choice (a : Pipeline.variant) (b : Pipeline.variant) : bool =
  match (a, b) with
  | Pipeline.Baseline, Pipeline.Baseline -> true
  | Pipeline.Asap ca, Pipeline.Asap cb ->
    ca.Asap.distance = cb.Asap.distance
  | Pipeline.Ainsworth_jones _, Pipeline.Ainsworth_jones _ -> true
  | _ -> false

let describe (p : prediction) : string =
  Printf.sprintf "model: %s (%s)\n"
    (Pipeline.variant_name p.p_variant)
    p.p_reason
