(* One-pass structural features of a sparse matrix.

   Everything the cost model needs to predict a prefetch configuration
   without simulating candidate sweeps: the row-length (= inner segment
   length) distribution, how far the column stream strays from the
   diagonal (the locality of the gather into the dense operand), and an
   analytic estimate of the L2 MPKI the tuning sweep would measure on
   its profiling slice. Extraction is two passes over the COO coordinate
   arrays plus one over a rows-sized counter array — O(nnz + rows + cols)
   with two small allocations (row counters and a gather-line bitmap) —
   against O(candidates x sliced simulation) for the sweep it replaces.

   The features deliberately mirror the quantities the paper's evaluation
   plots against (Fig. 6/8: speedup vs L2 MPKI; §3.2.2: segment lengths
   vs prefetch distance), so the model over them stays interpretable. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Tuning = Asap_core.Tuning

(* Segment-length histogram buckets: log2 row lengths 2^0 .. 2^(n-1),
   last bucket open-ended. *)
let hist_buckets = 12

type t = {
  f_rows : int;
  f_cols : int;
  f_nnz : int;
  f_row_mean : float;          (* nnz/row mean (segment length) *)
  f_row_cov : float;           (* coefficient of variation of row lengths *)
  f_row_max : int;
  f_empty_frac : float;        (* fraction of rows with no entries *)
  f_hist : int array;          (* log2 segment-length histogram (rows) *)
  f_tail_mass : float;         (* nnz fraction in rows > 4x mean length *)
  f_band_frac : float;         (* mean |col - diag| / cols: 0 = diagonal *)
  f_gather_bytes : int;        (* dense-operand footprint: cols * 8 *)
  f_stream_bytes : int;        (* pos+crd+vals bytes streamed once *)
  f_slice_nnz : int;           (* gather accesses in the profiling slice *)
  f_slice_lines : int;         (* distinct gather lines the slice touches *)
  f_l1_ratio : float;          (* touched gather footprint / L1 capacity *)
  f_l2_ratio : float;          (* touched gather footprint / L2 capacity *)
  f_l3_ratio : float;          (* touched gather footprint / L3 capacity *)
  f_est_mpki : float;          (* analytic L2-MPKI estimate for the gather *)
  f_block_elems : int;         (* values per stored leaf: bh*bw blocked, 1 *)
  f_block_fill : float;        (* nnz / stored values; 1.0 unblocked *)
  f_extract_cycles : int;      (* virtual cost charged for extraction *)
}

(* Instruction cost of one CSR-style SpMV element on the simulated
   machine: load crd, load vals, load c[j], fma, loop overhead. Used
   only to scale the analytic miss estimate to a per-kilo-instruction
   rate, mirroring Exec.l2_mpki's denominator. *)
let instrs_per_nnz = 9.
let instrs_per_row = 6.

(** [est_mpki] — analytic L2 misses per kilo-instruction of the gather
    stream over the tuning sweep's profiling slice (the leading
    [profile_fraction] of rows — the quantity {!Tuning.tune}'s rollback
    test actually thresholds). Two components:

    - compulsory: every distinct dense-operand line the slice touches
      ([slice_lines], counted exactly) misses once — the slice runs on
      a cold hierarchy, so first-touch dominates for scattered gathers;
    - capacity: when the touched footprint overflows L2, the accesses
      beyond first touch miss with the overflow probability
      [1 - l2 / touched_bytes].

    The streamed pos/crd/vals buffers are next-line-prefetchable and
    largely hidden by the baseline hardware prefetchers; they are
    excluded, as Fig. 6's x-axis (demand misses of the gather)
    effectively is. The estimate is deliberately prefetcher-blind for
    the gather itself, so it over-reads sequential column streams
    (banded/stencil matrices); the model's speedup term absorbs that. *)
let est_mpki ~slice_nnz ~slice_rows ~slice_lines ~l2_bytes =
  if slice_nnz = 0 then 0.
  else begin
    let n = float_of_int slice_nnz in
    let touched = float_of_int (slice_lines * 64) in
    let p_capacity =
      if touched <= float_of_int l2_bytes then 0.
      else 1. -. (float_of_int l2_bytes /. touched)
    in
    let misses =
      float_of_int slice_lines
      +. (Float.max 0. (n -. float_of_int slice_lines) *. p_capacity)
    in
    let instrs =
      (n *. instrs_per_nnz) +. (float_of_int slice_rows *. instrs_per_row)
    in
    misses /. instrs *. 1000.
  end

(** [extract ~machine enc coo] computes the feature vector. Rank-2 only
    (the same restriction as the sweep it replaces); [profile_fraction]
    must match the sweep's for the slice estimate to mirror it.
    @raise Invalid_argument on other ranks. *)
let extract ?(profile_fraction = Tuning.default_profile_fraction)
    ~(machine : Machine.t) (enc : Encoding.t) (coo : Coo.t) : t =
  if Coo.rank coo <> 2 then
    invalid_arg "Features.extract: rank-2 tensors only";
  let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
  let nnz = Coo.nnz coo in
  let prof_rows =
    max 1 (int_of_float (float_of_int rows *. profile_fraction))
  in
  let counts = Array.make (max 1 rows) 0 in
  (* One gather line covers 8 f64 elements; the bitmap marks the lines
     of the dense operand the profiling slice touches. *)
  let n_lines = (cols + 7) / 8 in
  let touched = Bytes.make (max 1 ((n_lines + 7) / 8)) '\000' in
  let slice_nnz = ref 0 and slice_lines = ref 0 in
  (* Pass 1 over the coordinates: row lengths, diagonal deviation, and
     the slice's exact gather-line footprint. COO need not be sorted or
     deduplicated; duplicates are counted as stored entries, matching
     what a packed non-unique level streams. *)
  let dev_sum = ref 0. in
  let scale = float_of_int cols /. float_of_int (max 1 rows) in
  for k = 0 to nnz - 1 do
    let c = coo.Coo.coords.(k) in
    let i = c.(0) and j = c.(1) in
    counts.(i) <- counts.(i) + 1;
    dev_sum :=
      !dev_sum +. Float.abs (float_of_int j -. (float_of_int i *. scale));
    if i < prof_rows then begin
      incr slice_nnz;
      let line = j / 8 in
      let byte = Char.code (Bytes.get touched (line lsr 3)) in
      let bit = 1 lsl (line land 7) in
      if byte land bit = 0 then begin
        Bytes.set touched (line lsr 3) (Char.chr (byte lor bit));
        incr slice_lines
      end
    end
  done;
  let band_frac =
    if nnz = 0 || cols = 0 then 0.
    else !dev_sum /. float_of_int nnz /. float_of_int cols
  in
  (* Pass 2 over the row counts: moments, histogram, tail mass. *)
  let mean = float_of_int nnz /. float_of_int (max 1 rows) in
  let var = ref 0. and row_max = ref 0 and empty = ref 0 in
  let hist = Array.make hist_buckets 0 in
  let tail_cut = 4. *. mean in
  let tail = ref 0 in
  for i = 0 to rows - 1 do
    let l = counts.(i) in
    if l = 0 then incr empty
    else begin
      let b =
        min (hist_buckets - 1)
          (int_of_float (Float.log2 (float_of_int l)))
      in
      hist.(b) <- hist.(b) + 1
    end;
    if l > !row_max then row_max := l;
    if float_of_int l > tail_cut then tail := !tail + l;
    let d = float_of_int l -. mean in
    var := !var +. (d *. d)
  done;
  let cov =
    if mean <= 0. then 0.
    else sqrt (!var /. float_of_int (max 1 rows)) /. mean
  in
  let gather_bytes = cols * 8 in
  let index_bytes =
    match enc.Encoding.width with Encoding.W32 -> 4 | Encoding.W64 -> 8
  in
  (* Blocked layouts stream whole blocks: the value stream carries the
     explicit zeros of partially filled blocks, and pos/crd index the
     block coordinate space. The fill ratio (nnz / stored values) is the
     price of the layout and a direct input to the streaming estimate. *)
  let block_elems = Encoding.block_elems enc in
  let n_blocks =
    match enc.Encoding.block with
    | None -> 0
    | Some (bh, bw) ->
      let seen = Hashtbl.create (max 16 nnz) in
      for k = 0 to nnz - 1 do
        let c = coo.Coo.coords.(k) in
        let key = ((c.(0) / bh) * ((cols / bw) + 1)) + (c.(1) / bw) in
        if not (Hashtbl.mem seen key) then Hashtbl.add seen key ()
      done;
      Hashtbl.length seen
  in
  let stream_bytes =
    match enc.Encoding.block with
    | None -> (nnz * (index_bytes + 8)) + ((rows + 1) * index_bytes)
    | Some (bh, _) ->
      let nbr = (rows + bh - 1) / bh in
      (n_blocks * block_elems * 8)
      + (n_blocks * index_bytes)
      + ((nbr + 1) * index_bytes)
  in
  let stored_vals =
    match enc.Encoding.block with
    | None -> nnz
    | Some _ -> n_blocks * block_elems
  in
  let block_fill =
    if stored_vals = 0 then 1.
    else float_of_int nnz /. float_of_int stored_vals
  in
  let l1 = machine.Machine.l1_kb * 1024
  and l2 = machine.Machine.l2_kb * 1024
  and l3 = machine.Machine.l3_kb * 1024 in
  let touched_bytes = !slice_lines * 64 in
  let ratio c = float_of_int touched_bytes /. float_of_int c in
  { f_rows = rows; f_cols = cols; f_nnz = nnz;
    f_row_mean = mean; f_row_cov = cov; f_row_max = !row_max;
    f_empty_frac = float_of_int !empty /. float_of_int (max 1 rows);
    f_hist = hist;
    f_tail_mass =
      (if nnz = 0 then 0. else float_of_int !tail /. float_of_int nnz);
    f_band_frac = band_frac;
    f_gather_bytes = gather_bytes; f_stream_bytes = stream_bytes;
    f_slice_nnz = !slice_nnz; f_slice_lines = !slice_lines;
    f_l1_ratio = ratio l1; f_l2_ratio = ratio l2; f_l3_ratio = ratio l3;
    f_est_mpki =
      est_mpki ~slice_nnz:!slice_nnz ~slice_rows:prof_rows
        ~slice_lines:!slice_lines ~l2_bytes:l2;
    f_block_elems = block_elems;
    f_block_fill = block_fill;
    (* Extraction is two O(nnz) passes of simple integer work: charge
       ~2 simulated cycles per element plus one per row — microseconds
       of virtual time, where the sweep charges six sliced simulations.
       Blocked layouts add the block-census hash pass. *)
    f_extract_cycles = (2 * nnz) + rows + (if n_blocks > 0 then nnz else 0) }

(** [to_assoc f] exports the scalar features (histogram elided) for
    logs, JSON records and the fit tool. *)
let to_assoc (f : t) : (string * float) list =
  [ ("rows", float_of_int f.f_rows);
    ("cols", float_of_int f.f_cols);
    ("nnz", float_of_int f.f_nnz);
    ("row_mean", f.f_row_mean);
    ("row_cov", f.f_row_cov);
    ("row_max", float_of_int f.f_row_max);
    ("empty_frac", f.f_empty_frac);
    ("tail_mass", f.f_tail_mass);
    ("band_frac", f.f_band_frac);
    ("gather_bytes", float_of_int f.f_gather_bytes);
    ("stream_bytes", float_of_int f.f_stream_bytes);
    ("slice_nnz", float_of_int f.f_slice_nnz);
    ("slice_lines", float_of_int f.f_slice_lines);
    ("l1_ratio", f.f_l1_ratio);
    ("l2_ratio", f.f_l2_ratio);
    ("l3_ratio", f.f_l3_ratio);
    ("est_mpki", f.f_est_mpki);
    ("block_elems", float_of_int f.f_block_elems);
    ("block_fill", f.f_block_fill) ]

let pp ppf (f : t) =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-14s %12.4f@." k v)
    (to_assoc f);
  Format.fprintf ppf "%-14s" "seg_hist";
  Array.iter (fun c -> Format.fprintf ppf " %d" c) f.f_hist;
  Format.fprintf ppf "@."
