(** Multi-core simulation via effect handlers.

    Each core interprets its slice of the kernel as a fiber that performs
    an effect at every memory event; the scheduler always resumes the fiber
    whose next event is earliest in simulated time, so cores interleave
    deterministically on the shared L2/L3/DRAM resources. This replaces the
    paper's OpenMP dense-outer-loop execution (§4.3). *)

(** [run ?engine machine hier fn ~bufs ~scalars ~slices] executes one
    copy of [fn] per slice (static row partitioning), interleaving their
    memory events on the shared hierarchy [hier]. Returns per-core
    results. [engine] selects the tree-walking interpreter, the staged
    closure compiler or the flat-bytecode engine (default [`Bytecode];
    all agree cycle-exactly — with the staged engines the function is
    compiled once and shared by all fibers). *)
val run :
  ?engine:[ `Interp | `Compiled | `Bytecode ] ->
  Machine.t -> Hierarchy.t -> Asap_ir.Ir.func -> bufs:Runtime.bound array ->
  scalars:int list -> slices:(int * int) array -> Interp.result array
