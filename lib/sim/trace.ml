(* Memory-trace recording.

   Wraps an {!Interp.mem} port and records every event in program order.
   Used by tests and tools to validate prefetching *mechanically*: e.g.
   that every demand access to the indirectly-indexed operand was covered
   by an earlier software prefetch of the same line (§3.2's coverage
   claim), independent of any timing model. *)

type event =
  | Load of { pc : int; addr : int; at : int }
  | Store of { pc : int; addr : int; at : int }
  | Prefetch of { addr : int; locality : int; at : int }

type t = { mutable events : event list; mutable count : int }

let create () = { events = []; count = 0 }

let record t e =
  t.events <- e :: t.events;
  t.count <- t.count + 1

(** [wrap t mem] records every event flowing through [mem]. *)
let wrap (t : t) (mem : Interp.mem) : Interp.mem =
  { Interp.m_load =
      (fun ~pc ~addr ~at ->
        record t (Load { pc; addr; at });
        mem.Interp.m_load ~pc ~addr ~at);
    m_store =
      (fun ~pc ~addr ~at ->
        record t (Store { pc; addr; at });
        mem.Interp.m_store ~pc ~addr ~at);
    m_prefetch =
      (fun ~addr ~locality ~at ->
        record t (Prefetch { addr; locality; at });
        mem.Interp.m_prefetch ~addr ~locality ~at) }

(** [events t] in program order. *)
let events t = List.rev t.events

(** [sink t] records the hierarchy's event stream into [t], making the
    trace a first-class {!Asap_obs.Sink.t}: demand loads, stores and
    software prefetches land in the same program-order event list that
    {!wrap} produces (hardware-prefetch and drop events have no
    program-order meaning here and are skipped). *)
let sink (t : t) : Asap_obs.Sink.t =
  Asap_obs.Sink.make (fun (e : Asap_obs.Sink.ev) ->
      match e with
      | Asap_obs.Sink.Load { pc; addr; at; _ } ->
        record t (Load { pc; addr; at })
      | Asap_obs.Sink.Store { pc; addr; at; _ } ->
        record t (Store { pc; addr; at })
      | Asap_obs.Sink.Sw_prefetch { addr; locality; at; _ } ->
        record t (Prefetch { addr; locality; at })
      | Asap_obs.Sink.Hw_prefetch _ | Asap_obs.Sink.Drop _ -> ())

(** A free-running port (every load one cycle): traces functional access
    order without a memory hierarchy. *)
let free_mem : Interp.mem =
  { Interp.m_load = (fun ~pc:_ ~addr:_ ~at -> at + 1);
    m_store = (fun ~pc:_ ~addr:_ ~at:_ -> ());
    m_prefetch = (fun ~addr:_ ~locality:_ ~at:_ -> ()) }

(** [coverage ?late t ~range ~line_bytes] computes, over demand loads
    whose address falls in [range) — typically one operand's buffer — the
    fraction of accessed lines that were software-prefetched before their
    first demand touch. With [~late:n], a prefetch only counts when it ran
    at least [n] time units before that first touch — prefetches inside
    the cutoff were issued too late to hide the fill. Default [0]: any
    earlier prefetch counts. *)
let coverage ?(late = 0) (t : t) ~range:(lo, hi) ~line_bytes =
  let prefetched = Hashtbl.create 64 in        (* line -> earliest pf time *)
  let covered = ref 0 and total = ref 0 in
  let seen = Hashtbl.create 64 in
  List.iter
    (function
      | Prefetch { addr; at; _ } when addr >= lo && addr < hi ->
        let line = addr / line_bytes in
        if not (Hashtbl.mem prefetched line) then
          Hashtbl.add prefetched line at
      | Load { addr; at; _ } when addr >= lo && addr < hi ->
        let line = addr / line_bytes in
        if not (Hashtbl.mem seen line) then begin
          Hashtbl.add seen line ();
          incr total;
          match Hashtbl.find_opt prefetched line with
          | Some pf_at when at - pf_at >= late -> incr covered
          | Some _ | None -> ()
        end
      | Load _ | Store _ | Prefetch _ -> ())
    (events t);
  (!covered, !total)
