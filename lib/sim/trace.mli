(** Memory-trace recording.

    Wraps an {!Interp.mem} port and records every event in program order —
    used to validate prefetching {e mechanically} (e.g. §3.2.2's coverage
    claim), independent of the timing model. *)

type event =
  | Load of { pc : int; addr : int; at : int }
  | Store of { pc : int; addr : int; at : int }
  | Prefetch of { addr : int; locality : int; at : int }

type t

val create : unit -> t

(** [wrap t mem] records every event flowing through [mem]. *)
val wrap : t -> Interp.mem -> Interp.mem

(** [events t] in program order. *)
val events : t -> event list

(** [sink t] records the hierarchy's event stream into [t]: demand loads,
    stores and software prefetches land in the same program-order list
    {!wrap} produces (hardware-prefetch and drop events are skipped). *)
val sink : t -> Asap_obs.Sink.t

(** A free-running port (every load one cycle): traces functional access
    order without a memory hierarchy. *)
val free_mem : Interp.mem

(** [coverage ?late t ~range ~line_bytes] is (covered, total): over demand
    loads whose address falls in [range), how many distinct lines were
    software-prefetched before their first demand touch. With [~late:n] a
    prefetch only counts when it ran at least [n] time units before that
    touch (default 0). *)
val coverage : ?late:int -> t -> range:int * int -> line_bytes:int -> int * int
