(* The full memory system: per-core L1s, per-cluster L2s + MSHR pools,
   a shared inclusive L3, one DRAM channel, and the Table-2 hardware
   prefetchers observing the demand stream at their levels.

   Fills install tags immediately and park the completion time in the
   cluster's MSHR pool, so later accesses to an in-flight line wait for the
   fill instead of re-requesting it. Demand misses on a full pool stall
   until the earliest completion; hardware and software prefetches are
   dropped instead. *)

module Hp = Hw_prefetcher
module Sink = Asap_obs.Sink

let sw_prov = Hp.n_ids           (* provenance id of software prefetches *)
let n_prov = Hp.n_ids + 1

(* Stable dotted-counter-name component per provenance id. *)
let slug_of_prov i = if i = sw_prov then "sw" else Hp.slug_of_id i

(* Sink levels are plain ints (1 = L1 .. 4 = DRAM, 0 = MSHR merge). *)
let level_int = function Hp.L1 -> 1 | Hp.L2 -> 2 | Hp.L3 -> 3

type cluster = {
  l2 : Cache.t;
  mshr : Mshr.t;
  l2_pfs : Hp.t list;
}

type t = {
  cfg : Machine.t;
  line_shift : int;              (* log2 of the line size, from Machine *)
  l1s : Cache.t array;           (* per core *)
  l1_pfs : Hp.t list array;      (* per core *)
  clusters : cluster array;
  cluster_of_core : cluster array;
    (* per-core alias into [clusters]: the hot path resolves a core's
       cluster with one load instead of an integer division per access *)
  l3 : Cache.t;
  l3_pfs : Hp.t list;
  dram : Dram.t;
  (* Observability: hierarchy code tests [obs_on] (a plain bool) before
     building any event, so a null sink costs one branch per access. *)
  obs : Sink.t;
  obs_on : bool;
  (* Scratch buffers the prefetchers write their requested lines into —
     the per-access observation path allocates nothing. [pf_out] serves
     the demand-level firing; [pf_out_nested] serves the L2 observation
     an L1-level fill triggers inside [fetch_line] while [pf_out] is
     still being drained (nesting stops there: L2/L3-level fills observe
     nothing further). *)
  pf_out : int array;
  pf_out_nested : int array;
  (* Statistics *)
  pf_issued : int array;         (* per provenance id *)
  pf_useful : int array;
  pf_drop_mshr : int array;      (* dropped: no MSHR free *)
  pf_drop_present : int array;   (* dropped: line present or in flight *)
  pf_late : int array;           (* demand arrived while fill in flight *)
  pf_evicted : int array;        (* evicted before any demand use *)
  mutable sw_dropped : int;
  mutable demand_loads : int;
  mutable demand_stores : int;
  mutable l1_demand_misses : int;
  mutable l2_demand_misses : int;  (* went past L2: L3 hit or DRAM *)
  mutable l3_demand_misses : int;
  (* Per-PC load-miss attribution (pc = Ir vid of the load; stores and
     prefetcher-observation pcs carry tag bits >= 0x10000 and are
     excluded). Arrays grow on demand — vids are small and dense. *)
  mutable pc_l1_miss : int array;
  mutable pc_l2_miss : int array;
}

let create ?(obs = Sink.null) (cfg : Machine.t) : t =
  let line = cfg.Machine.line_bytes in
  let mk_l1 c =
    Cache.create ~name:(Printf.sprintf "L1-%d" c)
      ~size_bytes:(cfg.Machine.l1_kb * 1024) ~ways:cfg.Machine.l1_ways
      ~line_bytes:line
  in
  let mk_l1_pfs _ =
    List.concat
      [ (if cfg.Machine.hw.Machine.l1_nlp then [ Hp.l1_nlp () ] else []);
        (if cfg.Machine.hw.Machine.l1_ipp then [ Hp.l1_ipp () ] else []) ]
  in
  let mk_cluster k =
    { l2 =
        Cache.create ~name:(Printf.sprintf "L2-%d" k)
          ~size_bytes:(cfg.Machine.l2_kb * 1024) ~ways:cfg.Machine.l2_ways
          ~line_bytes:line;
      mshr = Mshr.create cfg.Machine.mshrs;
      l2_pfs =
        List.concat
          [ (if cfg.Machine.hw.Machine.l2_nlp then [ Hp.l2_nlp () ] else []);
            (if cfg.Machine.hw.Machine.mlc_streamer then [ Hp.mlc_streamer () ]
             else []);
            (if cfg.Machine.hw.Machine.l2_amp then [ Hp.l2_amp () ] else []) ] }
  in
  let clusters = Array.init (Machine.clusters cfg) mk_cluster in
  { cfg;
    line_shift = Cache.line_shift ~line_bytes:line;
    l1s = Array.init cfg.Machine.cores mk_l1;
    l1_pfs = Array.init cfg.Machine.cores mk_l1_pfs;
    clusters;
    cluster_of_core =
      Array.init cfg.Machine.cores (fun c ->
          clusters.(c / cfg.Machine.cores_per_cluster));
    l3 =
      Cache.create ~name:"L3" ~size_bytes:(cfg.Machine.l3_kb * 1024)
        ~ways:cfg.Machine.l3_ways ~line_bytes:line;
    l3_pfs =
      (if cfg.Machine.hw.Machine.llc_streamer then [ Hp.llc_streamer () ]
       else []);
    dram = Dram.create ~latency:cfg.Machine.dram_latency
        ~gap:cfg.Machine.dram_gap;
    obs; obs_on = obs.Sink.enabled;
    pf_out = Array.make Hp.max_requests 0;
    pf_out_nested = Array.make Hp.max_requests 0;
    pf_issued = Array.make n_prov 0;
    pf_useful = Array.make n_prov 0;
    pf_drop_mshr = Array.make n_prov 0;
    pf_drop_present = Array.make n_prov 0;
    pf_late = Array.make n_prov 0;
    pf_evicted = Array.make n_prov 0;
    sw_dropped = 0; demand_loads = 0; demand_stores = 0;
    l1_demand_misses = 0; l2_demand_misses = 0; l3_demand_misses = 0;
    pc_l1_miss = Array.make 64 0; pc_l2_miss = Array.make 64 0 }

let cluster_of t core = t.cluster_of_core.(core)

let note_useful t prov = if prov >= 0 then t.pf_useful.(prov) <- t.pf_useful.(prov) + 1

(* A prefetched line evicted before its first demand use: [lookup] clears
   provenance on first use, so a surviving prefetch provenance on the
   victim means the prefetch never paid off. *)
let note_evict t vp = if vp >= 0 then t.pf_evicted.(vp) <- t.pf_evicted.(vp) + 1

(* Demand arrived while the prefetched fill was still in flight: the
   prefetch was issued but not early enough (it still hid part of the
   latency, but the core stalled). Attributed at most once per fill via
   [Mshr.take_prov]. *)
let note_late t prov = if prov >= 0 then t.pf_late.(prov) <- t.pf_late.(prov) + 1

(* Per-PC load-miss attribution; arrays grow on demand. *)
let bump_pc t which pc =
  let a = if which = 1 then t.pc_l1_miss else t.pc_l2_miss in
  if pc >= Array.length a then begin
    let a' = Array.make (max (2 * Array.length a) (pc + 1)) 0 in
    Array.blit a 0 a' 0 (Array.length a);
    if which = 1 then t.pc_l1_miss <- a' else t.pc_l2_miss <- a';
    a'.(pc) <- 1
  end
  else a.(pc) <- a.(pc) + 1

(* Loads carry their Ir vid as pc; stores and prefetcher observations are
   tagged with bits >= 0x10000 (see Interp/Compile) and are excluded. *)
let attributable pc = pc >= 0 && pc < 0x10000

(* Install a line at [level] and the levels outward of it (inclusive L3).
   The provenance tag is set only at the innermost level installed so that
   a prefetched line counts as useful at most once; each eviction of a
   still-tagged (never-used) prefetched victim is counted. *)
let install t ~core ~prov ~level line =
  let cl = cluster_of t core in
  (match level with
   | Hp.L1 ->
     note_evict t (Cache.insert_evict t.l1s.(core) line ~prov);
     note_evict t (Cache.insert_evict cl.l2 line ~prov:Cache.demand_prov);
     note_evict t (Cache.insert_evict t.l3 line ~prov:Cache.demand_prov)
   | Hp.L2 ->
     note_evict t (Cache.insert_evict cl.l2 line ~prov);
     note_evict t (Cache.insert_evict t.l3 line ~prov:Cache.demand_prov)
   | Hp.L3 -> note_evict t (Cache.insert_evict t.l3 line ~prov))

(* Bring [line] in from wherever it is, without waiting (prefetch / store
   fill). Returns true if a request was actually issued somewhere.

   An L1-level fill that misses L1 traverses the L2, so the L2-level
   prefetchers observe it exactly as real hardware's do — without this, an
   enabled L1 NLP would hide every stream from the MLC streamer. *)
let rec fetch_line t ~core ~prov ~level ~at line =
  let cl = cluster_of t core in
  Mshr.expire cl.mshr ~now:at;
  let present =
    match level with
    | Hp.L1 -> Cache.probe t.l1s.(core) line
    | Hp.L2 -> Cache.probe cl.l2 line
    | Hp.L3 -> Cache.probe t.l3 line
  in
  if present || Mshr.find cl.mshr line >= 0 then begin
    if prov >= 0 then begin
      t.pf_drop_present.(prov) <- t.pf_drop_present.(prov) + 1;
      if t.obs_on then
        t.obs.Sink.emit
          (Sink.Drop { core; prov; line; at; level = level_int level;
                       reason = Sink.Present })
    end;
    false
  end
  else begin
    let in_l2 = Cache.probe cl.l2 line in
    (match level with
     | Hp.L1 ->
       if cl.l2_pfs <> [] then
         (* The nested scratch buffer: [pf_out] may still be mid-drain in
            the [issue_requests] walk that called us. The L2 units only
            request L2-level fills, so this never nests further. *)
         fire_pfs t ~core ~at ~buf:t.pf_out_nested cl.l2_pfs
           ~pc:(prov lor 0x40000) ~addr:(line lsl t.line_shift) ~line
           ~hit:in_l2
     | Hp.L2 | Hp.L3 -> ());
    if in_l2 || Cache.probe t.l3 line then begin
      (* Move inward from L2/L3: cheap, no MSHR needed in this model. *)
      install t ~core ~prov ~level line;
      true
    end
    else if Mshr.full cl.mshr then begin
      if prov = sw_prov then t.sw_dropped <- t.sw_dropped + 1;
      if prov >= 0 then begin
        t.pf_drop_mshr.(prov) <- t.pf_drop_mshr.(prov) + 1;
        if t.obs_on then
          t.obs.Sink.emit
            (Sink.Drop { core; prov; line; at; level = level_int level;
                         reason = Sink.Mshr_full })
      end;
      false
    end
    else begin
      let done_at = Dram.fill t.dram ~at in
      Mshr.add ~prov cl.mshr line done_at;
      install t ~core ~prov ~level line;
      true
    end
  end

(* Push one unit's fill requests (lines [buf.(i .. n-1)]) through the
   shared paths; fills go to the unit's own level and are attributed to
   its id. A plain index walk — this runs on every demand access. *)
and issue_requests t ~core ~at ~src ~level ~buf i n =
  if i < n then begin
    let line = buf.(i) in
    if fetch_line t ~core ~prov:src ~level ~at line then begin
      t.pf_issued.(src) <- t.pf_issued.(src) + 1;
      if t.obs_on then
        t.obs.Sink.emit
          (Sink.Hw_prefetch
             { core; src; line; at; level = level_int level })
    end;
    issue_requests t ~core ~at ~src ~level ~buf (i + 1) n
  end

(* Each unit's burst is drained before the next unit observes, so [buf]
   is reusable across the walk (same order as the old per-unit lists). *)
and fire_pfs t ~core ~at ~buf pfs ~pc ~addr ~line ~hit =
  match pfs with
  | [] -> ()
  | (pf : Hp.t) :: rest ->
    let n = pf.Hp.pf_observe ~pc ~addr ~line ~hit ~out:buf in
    if n > 0 then
      issue_requests t ~core ~at ~src:pf.Hp.pf_id ~level:pf.Hp.pf_level
        ~buf 0 n;
    fire_pfs t ~core ~at ~buf rest ~pc ~addr ~line ~hit

(* [fire_level] walks the prefetchers of a level over one demand access.
   Allocation-free: the observation is passed unpacked and requests land
   in the demand scratch buffer. *)
let fire_level t ~core ~at pfs ~pc ~addr ~line hit =
  if pfs <> [] then
    fire_pfs t ~core ~at ~buf:t.pf_out pfs ~pc ~addr ~line ~hit

(* Trace emission for a serviced demand load, factored out so [load]'s
   return points stay expressions. *)
let emit_load t ~core ~pc ~addr ~at ~ready ~level =
  t.obs.Sink.emit (Sink.Load { core; pc; addr; at; ready; level })

(** [load t ~core ~pc ~addr ~at] performs a demand load issued at cycle
    [at]; returns the cycle the data is ready. *)
let load t ~core ~pc ~addr ~at =
  t.demand_loads <- t.demand_loads + 1;
  let line = addr asr t.line_shift in
  let l1 = t.l1s.(core) in
  let cl = cluster_of t core in
  Mshr.expire cl.mshr ~now:at;
  let lat1 = at + t.cfg.Machine.lat_l1 in
  let p1 = Cache.lookup l1 line in
  if p1 <> Cache.no_hit then begin
    note_useful t p1;
    fire_level t ~core ~at t.l1_pfs.(core) ~pc ~addr ~line true;
    (* The tag may be present while the fill is still in flight; find
       returns -1 when nothing is in flight, so max yields lat1 then. *)
    let d = Mshr.find cl.mshr line in
    if d > lat1 then begin
      (* The prefetched fill is still in flight: issued, but too late to
         fully hide the latency. *)
      let mp = Mshr.take_prov cl.mshr line in
      note_late t (if p1 >= 0 then p1 else mp);
      if t.obs_on then emit_load t ~core ~pc ~addr ~at ~ready:d ~level:0;
      d
    end
    else begin
      if t.obs_on then emit_load t ~core ~pc ~addr ~at ~ready:lat1 ~level:1;
      lat1
    end
  end
  else begin
    t.l1_demand_misses <- t.l1_demand_misses + 1;
    if attributable pc then bump_pc t 1 pc;
    fire_level t ~core ~at t.l1_pfs.(core) ~pc ~addr ~line false;
    (* Every install below uses [insert_absent]: the level in question
       just missed in [lookup], and no prefetcher ever requests the
       observed line itself, so absence still holds — this skips a
       redundant tag re-scan per level on the whole demand-miss path. *)
    let d = Mshr.find cl.mshr line in
    if d >= 0 then begin
      note_evict t (Cache.insert_absent l1 line ~prov:Cache.demand_prov);
      if d > lat1 then begin
        note_late t (Mshr.take_prov cl.mshr line);
        if t.obs_on then emit_load t ~core ~pc ~addr ~at ~ready:d ~level:0;
        d
      end
      else begin
        if t.obs_on then emit_load t ~core ~pc ~addr ~at ~ready:lat1 ~level:0;
        lat1
      end
    end
    else begin
      let p2 = Cache.lookup cl.l2 line in
      if p2 <> Cache.no_hit then begin
        note_useful t p2;
        fire_level t ~core ~at cl.l2_pfs ~pc ~addr ~line true;
        note_evict t (Cache.insert_absent l1 line ~prov:Cache.demand_prov);
        let ready = at + t.cfg.Machine.lat_l2 in
        if t.obs_on then emit_load t ~core ~pc ~addr ~at ~ready ~level:2;
        ready
      end
      else begin
        fire_level t ~core ~at cl.l2_pfs ~pc ~addr ~line false;
        t.l2_demand_misses <- t.l2_demand_misses + 1;
        if attributable pc then bump_pc t 2 pc;
        let p3 = Cache.lookup t.l3 line in
        if p3 <> Cache.no_hit then begin
          note_useful t p3;
          fire_level t ~core ~at t.l3_pfs ~pc ~addr ~line true;
          note_evict t (Cache.insert_absent l1 line ~prov:Cache.demand_prov);
          note_evict t
            (Cache.insert_absent cl.l2 line ~prov:Cache.demand_prov);
          (* No L3 install: the hit [lookup] just refreshed its LRU. *)
          let ready = at + t.cfg.Machine.lat_l3 in
          if t.obs_on then emit_load t ~core ~pc ~addr ~at ~ready ~level:3;
          ready
        end
        else begin
          fire_level t ~core ~at t.l3_pfs ~pc ~addr ~line false;
          t.l3_demand_misses <- t.l3_demand_misses + 1;
          (* Wait for an MSHR if the pool is exhausted. *)
          let at' =
            if Mshr.full cl.mshr then begin
              (* earliest is -1 only on an empty pool, impossible here. *)
              let now = max at (Mshr.earliest cl.mshr) in
              Mshr.expire cl.mshr ~now;
              now
            end
            else at
          in
          let done_at = Dram.fill t.dram ~at:at' in
          Mshr.add ~prov:Cache.demand_prov cl.mshr line done_at;
          note_evict t (Cache.insert_absent l1 line ~prov:Cache.demand_prov);
          note_evict t
            (Cache.insert_absent cl.l2 line ~prov:Cache.demand_prov);
          note_evict t (Cache.insert_absent t.l3 line ~prov:Cache.demand_prov);
          if t.obs_on then
            emit_load t ~core ~pc ~addr ~at ~ready:done_at ~level:4;
          done_at
        end
      end
    end
  end

(** [store t ~core ~pc ~addr ~at] performs a write-allocate store; it never
    stalls the core (completion is hidden by the store buffer), but misses
    consume fill bandwidth. *)
let store t ~core ~pc ~addr ~at =
  t.demand_stores <- t.demand_stores + 1;
  let line = addr asr t.line_shift in
  let l1 = t.l1s.(core) in
  let p = Cache.lookup l1 line in
  (if p <> Cache.no_hit then note_useful t p
   else begin
     t.l1_demand_misses <- t.l1_demand_misses + 1;
     let cl = cluster_of t core in
     if not (Cache.probe cl.l2 line) && not (Cache.probe t.l3 line) then begin
       (* Absent everywhere: the write-allocate fill comes from DRAM, so it
          misses both L2 and L3. *)
       t.l2_demand_misses <- t.l2_demand_misses + 1;
       t.l3_demand_misses <- t.l3_demand_misses + 1
     end;
     let (_ : bool) =
       fetch_line t ~core ~prov:Cache.demand_prov ~level:Hp.L1 ~at line
     in
     note_evict t (Cache.insert_evict l1 line ~prov:Cache.demand_prov)
   end);
  if t.obs_on then t.obs.Sink.emit (Sink.Store { core; pc; addr; at })

(** [prefetch t ~core ~addr ~locality ~at] performs a software prefetch.
    Locality maps to the fill level: 3-2 into L1, 1 into L2, 0 into L3. *)
let prefetch t ~core ~addr ~locality ~at =
  let line = addr asr t.line_shift in
  let level =
    if locality >= 2 then Hp.L1 else if locality = 1 then Hp.L2 else Hp.L3
  in
  let issued = fetch_line t ~core ~prov:sw_prov ~level ~at line in
  if issued then t.pf_issued.(sw_prov) <- t.pf_issued.(sw_prov) + 1;
  if t.obs_on then
    t.obs.Sink.emit (Sink.Sw_prefetch { core; addr; locality; at; issued })

(** Per-prefetcher lifecycle breakdown (one per provenance id, software
    included). Issued counts fills actually requested; the drop counters
    classify requests that never became fills; late and evicted classify
    issued fills that missed their window. *)
type pf_stat = {
  p_issued : int;
  p_useful : int;
  p_late : int;            (** demand arrived while the fill was in flight *)
  p_drop_mshr : int;       (** dropped: no MSHR free *)
  p_drop_present : int;    (** dropped: line already present or in flight *)
  p_evicted : int;         (** evicted before any demand use *)
}

(** Statistics snapshot for the PMU-style report (paper §4.4). *)
type stats = {
  st_demand_loads : int;
  st_demand_stores : int;
  st_l1_misses : int;
  st_l2_misses : int;
  st_l3_misses : int;
  st_dram_lines : int;
  st_sw_issued : int;
  st_sw_dropped : int;
  st_sw_useful : int;
  st_hw_issued : (string * int) list;
  st_hw_useful : (string * int) list;
  st_pf : (string * pf_stat) list;
    (** keyed by counter-name slug ("sw", "l1_ipp", ...), provenance order *)
  st_pc_l1_miss : (int * int) list;
    (** load-miss counts by Ir vid (pc ascending, zero counts omitted) *)
  st_pc_l2_miss : (int * int) list;
}

let pc_assoc (a : int array) =
  let acc = ref [] in
  for pc = Array.length a - 1 downto 0 do
    if a.(pc) > 0 then acc := (pc, a.(pc)) :: !acc
  done;
  !acc

let stats t =
  { st_demand_loads = t.demand_loads;
    st_demand_stores = t.demand_stores;
    st_l1_misses = t.l1_demand_misses;
    st_l2_misses = t.l2_demand_misses;
    st_l3_misses = t.l3_demand_misses;
    st_dram_lines = t.dram.Dram.lines;
    st_sw_issued = t.pf_issued.(sw_prov);
    st_sw_dropped = t.sw_dropped;
    st_sw_useful = t.pf_useful.(sw_prov);
    st_hw_issued =
      List.init Hp.n_ids (fun i -> (Hp.name_of_id i, t.pf_issued.(i)));
    st_hw_useful =
      List.init Hp.n_ids (fun i -> (Hp.name_of_id i, t.pf_useful.(i)));
    st_pf =
      List.init n_prov (fun i ->
          ( slug_of_prov i,
            { p_issued = t.pf_issued.(i);
              p_useful = t.pf_useful.(i);
              p_late = t.pf_late.(i);
              p_drop_mshr = t.pf_drop_mshr.(i);
              p_drop_present = t.pf_drop_present.(i);
              p_evicted = t.pf_evicted.(i) } ));
    st_pc_l1_miss = pc_assoc t.pc_l1_miss;
    st_pc_l2_miss = pc_assoc t.pc_l2_miss }
