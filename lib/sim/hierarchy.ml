(* The full memory system: per-core L1s, per-cluster L2s + MSHR pools,
   a shared inclusive L3, one DRAM channel, and the Table-2 hardware
   prefetchers observing the demand stream at their levels.

   Fills install tags immediately and park the completion time in the
   cluster's MSHR pool, so later accesses to an in-flight line wait for the
   fill instead of re-requesting it. Demand misses on a full pool stall
   until the earliest completion; hardware and software prefetches are
   dropped instead. *)

module Hp = Hw_prefetcher

let sw_prov = Hp.n_ids           (* provenance id of software prefetches *)
let n_prov = Hp.n_ids + 1

type cluster = {
  l2 : Cache.t;
  mshr : Mshr.t;
  l2_pfs : Hp.t list;
}

type t = {
  cfg : Machine.t;
  line_shift : int;              (* log2 of the line size, from Machine *)
  l1s : Cache.t array;           (* per core *)
  l1_pfs : Hp.t list array;      (* per core *)
  clusters : cluster array;
  l3 : Cache.t;
  l3_pfs : Hp.t list;
  dram : Dram.t;
  (* Statistics *)
  pf_issued : int array;         (* per provenance id *)
  pf_useful : int array;
  mutable sw_dropped : int;
  mutable demand_loads : int;
  mutable demand_stores : int;
  mutable l1_demand_misses : int;
  mutable l2_demand_misses : int;  (* went past L2: L3 hit or DRAM *)
  mutable l3_demand_misses : int;
}

let create (cfg : Machine.t) : t =
  let line = cfg.Machine.line_bytes in
  let mk_l1 c =
    Cache.create ~name:(Printf.sprintf "L1-%d" c)
      ~size_bytes:(cfg.Machine.l1_kb * 1024) ~ways:cfg.Machine.l1_ways
      ~line_bytes:line
  in
  let mk_l1_pfs _ =
    List.concat
      [ (if cfg.Machine.hw.Machine.l1_nlp then [ Hp.l1_nlp () ] else []);
        (if cfg.Machine.hw.Machine.l1_ipp then [ Hp.l1_ipp () ] else []) ]
  in
  let mk_cluster k =
    { l2 =
        Cache.create ~name:(Printf.sprintf "L2-%d" k)
          ~size_bytes:(cfg.Machine.l2_kb * 1024) ~ways:cfg.Machine.l2_ways
          ~line_bytes:line;
      mshr = Mshr.create cfg.Machine.mshrs;
      l2_pfs =
        List.concat
          [ (if cfg.Machine.hw.Machine.l2_nlp then [ Hp.l2_nlp () ] else []);
            (if cfg.Machine.hw.Machine.mlc_streamer then [ Hp.mlc_streamer () ]
             else []);
            (if cfg.Machine.hw.Machine.l2_amp then [ Hp.l2_amp () ] else []) ] }
  in
  { cfg;
    line_shift = Cache.line_shift ~line_bytes:line;
    l1s = Array.init cfg.Machine.cores mk_l1;
    l1_pfs = Array.init cfg.Machine.cores mk_l1_pfs;
    clusters = Array.init (Machine.clusters cfg) mk_cluster;
    l3 =
      Cache.create ~name:"L3" ~size_bytes:(cfg.Machine.l3_kb * 1024)
        ~ways:cfg.Machine.l3_ways ~line_bytes:line;
    l3_pfs =
      (if cfg.Machine.hw.Machine.llc_streamer then [ Hp.llc_streamer () ]
       else []);
    dram = Dram.create ~latency:cfg.Machine.dram_latency
        ~gap:cfg.Machine.dram_gap;
    pf_issued = Array.make n_prov 0;
    pf_useful = Array.make n_prov 0;
    sw_dropped = 0; demand_loads = 0; demand_stores = 0;
    l1_demand_misses = 0; l2_demand_misses = 0; l3_demand_misses = 0 }

let cluster_of t core = t.clusters.(core / t.cfg.Machine.cores_per_cluster)

let note_useful t prov = if prov >= 0 then t.pf_useful.(prov) <- t.pf_useful.(prov) + 1

(* Install a line at [level] and the levels outward of it (inclusive L3).
   The provenance tag is set only at the innermost level installed so that
   a prefetched line counts as useful at most once. *)
let install t ~core ~prov ~level line =
  let cl = cluster_of t core in
  (match level with
   | Hp.L1 ->
     Cache.insert t.l1s.(core) line ~prov;
     Cache.insert cl.l2 line ~prov:Cache.demand_prov;
     Cache.insert t.l3 line ~prov:Cache.demand_prov
   | Hp.L2 ->
     Cache.insert cl.l2 line ~prov;
     Cache.insert t.l3 line ~prov:Cache.demand_prov
   | Hp.L3 -> Cache.insert t.l3 line ~prov)

(* Bring [line] in from wherever it is, without waiting (prefetch / store
   fill). Returns true if a request was actually issued somewhere.

   An L1-level fill that misses L1 traverses the L2, so the L2-level
   prefetchers observe it exactly as real hardware's do — without this, an
   enabled L1 NLP would hide every stream from the MLC streamer. *)
let rec fetch_line t ~core ~prov ~level ~at line =
  let cl = cluster_of t core in
  Mshr.expire cl.mshr ~now:at;
  let present =
    match level with
    | Hp.L1 -> Cache.probe t.l1s.(core) line
    | Hp.L2 -> Cache.probe cl.l2 line
    | Hp.L3 -> Cache.probe t.l3 line
  in
  if present || Mshr.find cl.mshr line >= 0 then false
  else begin
    let in_l2 = Cache.probe cl.l2 line in
    (match level with
     | Hp.L1 ->
       if cl.l2_pfs <> [] then
         fire_pfs t ~core ~at cl.l2_pfs
           { Hp.pc = prov lor 0x40000; addr = line lsl t.line_shift; line;
             hit = in_l2 }
     | Hp.L2 | Hp.L3 -> ());
    if in_l2 || Cache.probe t.l3 line then begin
      (* Move inward from L2/L3: cheap, no MSHR needed in this model. *)
      install t ~core ~prov ~level line;
      true
    end
    else if Mshr.full cl.mshr then begin
      if prov = sw_prov then t.sw_dropped <- t.sw_dropped + 1;
      false
    end
    else begin
      let done_at = Dram.fill t.dram ~at in
      Mshr.add cl.mshr line done_at;
      install t ~core ~prov ~level line;
      true
    end
  end

(* Push a prefetcher's fill requests through the shared paths. A plain
   recursive walk (not List.iter) keeps the per-access path closure-free —
   these run on every demand access. *)
and issue_requests t ~core ~at = function
  | [] -> ()
  | (r : Hp.request) :: rest ->
    if r.Hp.r_line >= 0 then begin
      if fetch_line t ~core ~prov:r.Hp.r_src ~level:r.Hp.r_level ~at
           r.Hp.r_line
      then t.pf_issued.(r.Hp.r_src) <- t.pf_issued.(r.Hp.r_src) + 1
    end;
    issue_requests t ~core ~at rest

and fire_pfs t ~core ~at pfs ev =
  match pfs with
  | [] -> ()
  | (pf : Hp.t) :: rest ->
    issue_requests t ~core ~at (pf.Hp.pf_observe ev);
    fire_pfs t ~core ~at rest ev

(* [fire_level] builds the observation event and walks the prefetchers.
   A plain function (not a closure over the access) so the per-load path
   allocates only when a level actually has prefetchers attached. *)
let fire_level t ~core ~at pfs ~pc ~addr ~line hit =
  if pfs <> [] then fire_pfs t ~core ~at pfs { Hp.pc; addr; line; hit }

(** [load t ~core ~pc ~addr ~at] performs a demand load issued at cycle
    [at]; returns the cycle the data is ready. *)
let load t ~core ~pc ~addr ~at =
  t.demand_loads <- t.demand_loads + 1;
  let line = addr asr t.line_shift in
  let l1 = t.l1s.(core) in
  let cl = cluster_of t core in
  Mshr.expire cl.mshr ~now:at;
  let lat1 = at + t.cfg.Machine.lat_l1 in
  let p1 = Cache.lookup l1 line in
  if p1 <> Cache.no_hit then begin
    note_useful t p1;
    fire_level t ~core ~at t.l1_pfs.(core) ~pc ~addr ~line true;
    (* The tag may be present while the fill is still in flight; find
       returns -1 when nothing is in flight, so max yields lat1 then. *)
    let d = Mshr.find cl.mshr line in
    if d > lat1 then d else lat1
  end
  else begin
    t.l1_demand_misses <- t.l1_demand_misses + 1;
    fire_level t ~core ~at t.l1_pfs.(core) ~pc ~addr ~line false;
    let d = Mshr.find cl.mshr line in
    if d >= 0 then begin
      Cache.insert l1 line ~prov:Cache.demand_prov;
      if d > lat1 then d else lat1
    end
    else begin
      let p2 = Cache.lookup cl.l2 line in
      if p2 <> Cache.no_hit then begin
        note_useful t p2;
        fire_level t ~core ~at cl.l2_pfs ~pc ~addr ~line true;
        Cache.insert l1 line ~prov:Cache.demand_prov;
        at + t.cfg.Machine.lat_l2
      end
      else begin
        fire_level t ~core ~at cl.l2_pfs ~pc ~addr ~line false;
        t.l2_demand_misses <- t.l2_demand_misses + 1;
        let p3 = Cache.lookup t.l3 line in
        if p3 <> Cache.no_hit then begin
          note_useful t p3;
          fire_level t ~core ~at t.l3_pfs ~pc ~addr ~line true;
          install t ~core ~prov:Cache.demand_prov ~level:Hp.L1 line;
          at + t.cfg.Machine.lat_l3
        end
        else begin
          fire_level t ~core ~at t.l3_pfs ~pc ~addr ~line false;
          t.l3_demand_misses <- t.l3_demand_misses + 1;
          (* Wait for an MSHR if the pool is exhausted. *)
          let at' =
            if Mshr.full cl.mshr then begin
              (* earliest is -1 only on an empty pool, impossible here. *)
              let now = max at (Mshr.earliest cl.mshr) in
              Mshr.expire cl.mshr ~now;
              now
            end
            else at
          in
          let done_at = Dram.fill t.dram ~at:at' in
          Mshr.add cl.mshr line done_at;
          install t ~core ~prov:Cache.demand_prov ~level:Hp.L1 line;
          done_at
        end
      end
    end
  end

(** [store t ~core ~pc ~addr ~at] performs a write-allocate store; it never
    stalls the core (completion is hidden by the store buffer), but misses
    consume fill bandwidth. *)
let store t ~core ~pc:_ ~addr ~at =
  t.demand_stores <- t.demand_stores + 1;
  let line = addr asr t.line_shift in
  let l1 = t.l1s.(core) in
  let p = Cache.lookup l1 line in
  if p <> Cache.no_hit then note_useful t p
  else begin
    t.l1_demand_misses <- t.l1_demand_misses + 1;
    let cl = cluster_of t core in
    if not (Cache.probe cl.l2 line) && not (Cache.probe t.l3 line) then begin
      (* Absent everywhere: the write-allocate fill comes from DRAM, so it
         misses both L2 and L3. *)
      t.l2_demand_misses <- t.l2_demand_misses + 1;
      t.l3_demand_misses <- t.l3_demand_misses + 1
    end;
    let (_ : bool) =
      fetch_line t ~core ~prov:Cache.demand_prov ~level:Hp.L1 ~at line
    in
    Cache.insert l1 line ~prov:Cache.demand_prov
  end

(** [prefetch t ~core ~addr ~locality ~at] performs a software prefetch.
    Locality maps to the fill level: 3-2 into L1, 1 into L2, 0 into L3. *)
let prefetch t ~core ~addr ~locality ~at =
  let line = addr asr t.line_shift in
  let level =
    if locality >= 2 then Hp.L1 else if locality = 1 then Hp.L2 else Hp.L3
  in
  if fetch_line t ~core ~prov:sw_prov ~level ~at line then
    t.pf_issued.(sw_prov) <- t.pf_issued.(sw_prov) + 1

(** Statistics snapshot for the PMU-style report (paper §4.4). *)
type stats = {
  st_demand_loads : int;
  st_demand_stores : int;
  st_l1_misses : int;
  st_l2_misses : int;
  st_l3_misses : int;
  st_dram_lines : int;
  st_sw_issued : int;
  st_sw_dropped : int;
  st_sw_useful : int;
  st_hw_issued : (string * int) list;
  st_hw_useful : (string * int) list;
}

let stats t =
  { st_demand_loads = t.demand_loads;
    st_demand_stores = t.demand_stores;
    st_l1_misses = t.l1_demand_misses;
    st_l2_misses = t.l2_demand_misses;
    st_l3_misses = t.l3_demand_misses;
    st_dram_lines = t.dram.Dram.lines;
    st_sw_issued = t.pf_issued.(sw_prov);
    st_sw_dropped = t.sw_dropped;
    st_sw_useful = t.pf_useful.(sw_prov);
    st_hw_issued =
      List.init Hp.n_ids (fun i -> (Hp.name_of_id i, t.pf_issued.(i)));
    st_hw_useful =
      List.init Hp.n_ids (fun i -> (Hp.name_of_id i, t.pf_useful.(i))) }
