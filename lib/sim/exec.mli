(** Top-level execution drivers and the PMU-style report (paper §4.4). *)

open Asap_ir

type report = {
  rp_machine : Machine.t;
  rp_threads : int;
  rp_cycles : int;             (** max over cores *)
  rp_instructions : int;       (** summed over cores *)
  rp_flops : int;
  rp_loads : int;
  rp_stores : int;
  rp_prefetch_instrs : int;
  rp_mem : Hierarchy.stats;
}

(** The execution engine: the tree-walking interpreter ({!Interp}) or the
    staged closure compiler ({!Compile}). The two are cycle-exact and
    value-exact drop-ins for each other (differential-tested), so the
    choice is purely a host-speed trade-off. *)
type engine = [ `Interp | `Compiled ]

(** [`Compiled] — the faster engine is the default everywhere. *)
val default_engine : engine

(** Parses ["interp"] / ["compiled"] (and close synonyms); [None]
    otherwise. *)
val engine_of_string : string -> engine option

val engine_to_string : engine -> string

(** [run ?engine ?slice machine fn ~bufs ~scalars] executes [fn] on one
    core of a fresh memory hierarchy; [slice] restricts the outermost
    loop's iteration range (used by profile-guided tuning). *)
val run :
  ?engine:engine -> ?slice:int * int -> Machine.t -> Ir.func ->
  bufs:(Ir.buffer * Runtime.rbuf) list -> scalars:int list -> report

(** [run_parallel ?engine machine ~threads ~outer_extent fn ~bufs
    ~scalars] executes [fn] with the dense-outer-loop strategy: the
    outermost loop range [0, outer_extent) is split into [threads]
    contiguous slices, one per core, on a shared hierarchy. *)
val run_parallel :
  ?engine:engine -> Machine.t -> threads:int -> outer_extent:int -> Ir.func ->
  bufs:(Ir.buffer * Runtime.rbuf) list -> scalars:int list -> report

(** [l2_mpki r] is demand L2 misses per kilo-instruction. *)
val l2_mpki : report -> float

(** [throughput_nnz_per_ms r ~nnz] is the paper's work-throughput metric. *)
val throughput_nnz_per_ms : report -> nnz:int -> float

(** [gflops r] is attained FLOP rate at the simulated frequency. *)
val gflops : report -> float

(** [arithmetic_intensity r] is flops per DRAM byte moved (roofline x). *)
val arithmetic_intensity : report -> float

(** [summary r] is a one-line textual digest. *)
val summary : report -> string
