(** Top-level execution drivers and the PMU-style report (paper §4.4). *)

open Asap_ir

(** One load site of the executed function, resolved from its pc (the
    load's Ir vid) to the buffer it reads and the source loop nest it sits
    in, with the misses attributed to it. *)
type op_miss = {
  om_pc : int;                 (** the load's Ir vid *)
  om_buf : string;             (** buffer read by the load *)
  om_loop : string;            (** loop-tag path, e.g. "rows/cols"; "top" *)
  om_depth : int;              (** loop nesting depth of the site *)
  om_l1_miss : int;
  om_l2_miss : int;
}

type report = {
  rp_machine : Machine.t;
  rp_threads : int;
  rp_cycles : int;             (** max over cores *)
  rp_instructions : int;       (** summed over cores *)
  rp_flops : int;
  rp_loads : int;
  rp_stores : int;
  rp_prefetch_instrs : int;
  rp_mem : Hierarchy.stats;
  rp_op_misses : op_miss list; (** pc-ascending, zero-miss sites omitted *)
}

(** The execution engine: the tree-walking interpreter ({!Interp}), the
    staged closure compiler ({!Compile}), or the flat-bytecode engine
    with superinstruction fusion ({!Bytecode}). All three are cycle-exact
    and value-exact drop-ins for each other (differential-tested), so the
    choice is purely a host-speed trade-off. *)
type engine = [ `Interp | `Compiled | `Bytecode ]

(** [`Bytecode] — the fastest engine is the default everywhere. *)
val default_engine : engine

(** Canonical engine names (["interp|compiled|bytecode"]), for option
    docs and error messages. *)
val valid_engines : string

(** Parses ["interp"] / ["compiled"] / ["bytecode"] (and close
    synonyms); [None] otherwise. *)
val engine_of_string : string -> engine option

val engine_to_string : engine -> string

(** A prepared single-core execution: the simulated address layout and
    (for the staged engines) the compiled form, computed once by
    {!prepare} and reusable across {!run_prepared} calls. The buffer
    binding is captured — re-running reads whatever the bound arrays
    contain at that moment — but the memory hierarchy is fresh per run,
    so repeat runs are independent simulations. This is the amortisation
    point the serve subsystem's compile cache stores. *)
type prepared

(** [prepare ?engine ?spec machine fn ~bufs] is the run-independent half
    of {!run}: layout plus (staged engines) program/closure compilation.
    With [spec], the function is first rewritten by {!Specialize.apply}
    against those facts (works under any engine so the differential
    suite can cross-check the specialized IR; the bytecode engine
    additionally bakes constant loop bounds into its loop table). *)
val prepare :
  ?engine:engine -> ?spec:Specialize.facts -> Machine.t -> Ir.func ->
  bufs:(Ir.buffer * Runtime.rbuf) list -> prepared

(** The engine [p] was prepared for. *)
val prepared_engine : prepared -> engine

(** Specialization statistics, [Some] iff [p] was prepared with [~spec]. *)
val prepared_spec : prepared -> Specialize.stats option

(** [run_prepared ?obs ?slice p ~scalars] executes [p] on one core of a
    fresh memory hierarchy; equal in every report field to the {!run} it
    was prepared from. *)
val run_prepared :
  ?obs:Asap_obs.Sink.t -> ?slice:int * int -> prepared ->
  scalars:int list -> report

(** [run ?engine ?obs ?slice machine fn ~bufs ~scalars] executes [fn] on
    one core of a fresh memory hierarchy; [obs] receives the hierarchy's
    event stream (default: disabled, zero cost); [slice] restricts the
    outermost loop's iteration range (used by profile-guided tuning).
    Equivalent to [prepare] + [run_prepared]. *)
val run :
  ?engine:engine -> ?obs:Asap_obs.Sink.t -> ?slice:int * int -> Machine.t ->
  Ir.func -> bufs:(Ir.buffer * Runtime.rbuf) list -> scalars:int list -> report

(** [run_parallel ?engine ?obs machine ~threads ~outer_extent fn ~bufs
    ~scalars] executes [fn] with the dense-outer-loop strategy: the
    outermost loop range [0, outer_extent) is split into [threads]
    contiguous slices, one per core, on a shared hierarchy. *)
val run_parallel :
  ?engine:engine -> ?obs:Asap_obs.Sink.t -> Machine.t -> threads:int ->
  outer_extent:int -> Ir.func ->
  bufs:(Ir.buffer * Runtime.rbuf) list -> scalars:int list -> report

(** [l2_mpki r] is demand L2 misses per kilo-instruction. *)
val l2_mpki : report -> float

(** [throughput_nnz_per_ms r ~nnz] is the paper's work-throughput metric. *)
val throughput_nnz_per_ms : report -> nnz:int -> float

(** [gflops r] is attained FLOP rate at the simulated frequency. *)
val gflops : report -> float

(** [arithmetic_intensity r] is flops per DRAM byte moved (roofline x). *)
val arithmetic_intensity : report -> float

(** Stable accessors over {!report} plus the named-counter registry.
    Consumers should read reports through these rather than record fields:
    the functions are the compatibility surface, the record layout is not.
    The counter-name catalogue is documented in DESIGN.md §3c. *)
module Report : sig
  type t = report

  val machine : t -> Machine.t
  val threads : t -> int
  val cycles : t -> int
  val instructions : t -> int
  val flops : t -> int
  val loads : t -> int
  val stores : t -> int
  val prefetch_instrs : t -> int
  val mem : t -> Hierarchy.stats
  val op_misses : t -> op_miss list
  val demand_loads : t -> int
  val demand_stores : t -> int
  val l1_misses : t -> int
  val l2_misses : t -> int
  val l3_misses : t -> int
  val dram_lines : t -> int
  val sw_issued : t -> int
  val sw_dropped : t -> int
  val sw_useful : t -> int

  (** [registry r] is every counter of the report under its stable dotted
      name (the DESIGN.md §3c catalogue: [core.*], [mem.*],
      [l1./l2./l3./dram.*], [pf.<slug>.*], [op.<buf>@<loop>.*]). *)
  val registry : t -> Asap_obs.Registry.t

  (** [to_assoc r] is the canonical export: counters sorted by name. *)
  val to_assoc : t -> (string * int) list

  (** [pp ppf r] prints the registry, one [name value] line per counter. *)
  val pp : Format.formatter -> t -> unit
end

(** [summary r] is a one-line textual digest. *)
val summary : report -> string
