(** Flat-bytecode execution engine with superinstruction fusion.

    Compiles an [Ir.func] bound to its runtime buffers into a flat
    [int array] instruction stream — int-coded opcodes with operand and
    register indices into unboxed [int array]/[float array] register
    files, buffer bases and bounds resolved to immediates — executed by
    a single tight dispatch loop. Adjacent statements matching the
    shapes sparsification emits (crd/val load pairs, the gather-FMA
    inner-body tail, compressed pos-bounds pairs and full
    [load pos ; load pos ; for] headers) fuse into superinstructions:
    one dispatch, the identical sequence of per-instruction timing
    events.

    A drop-in for {!Interp.run} and {!Compile.run}: same memory port,
    same result type, same timing model, same traps, faults and load-pc
    attribution — the engines agree cycle-exactly and value-exactly
    (enforced by the differential tests in [test/test_engine.ml]). *)

open Asap_ir

(** A compiled program: reusable across runs over the same buffer
    binding. Slices, scalars and the memory port bind at {!run} time. *)
type prog

(** [compile ?fuse ?spec fn ~bufs] flattens [fn] over the bound buffer
    array (as produced by {!Runtime.layout}). [fuse] (default [true])
    enables superinstruction fusion; disabling it emits one opcode per
    IR operation — the two forms agree cycle-for-cycle (fusion only
    batches dispatch, never timing events). [spec] (default [false])
    turns on specialization-aware emission for pre-specialized
    functions (see {!Specialize}): loop bounds proven constant are
    baked into the loop table, the entry guard of statically-taken
    non-top loops becomes a guard-free [FOR_KENTER], and the bound
    reload plus step trap vanish from loop entry — the same timing
    events issue either way, so [spec] never changes a report. *)
val compile : ?fuse:bool -> ?spec:bool -> Ir.func -> bufs:Runtime.bound array -> prog

(** Number of superinstructions emitted (0 when compiled with
    [~fuse:false]); exposed for tests and diagnostics. *)
val fused_count : prog -> int

(** [run ?slice ?width ?rob_size ?branch_miss p ~scalars ~mem] executes
    a compiled program. Parameters and defaults are identical to
    {!Interp.run}.
    @raise Runtime.Fault on out-of-bounds demand accesses.
    @raise Interp.Trap on dynamic errors. *)
val run :
  ?slice:int * int -> ?width:int -> ?rob_size:int -> ?branch_miss:int ->
  prog -> scalars:int list -> mem:Interp.mem -> Interp.result
