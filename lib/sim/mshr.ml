(* Miss Status Holding Registers: the pool of outstanding fills.

   A demand miss to an in-flight line merges with it. When the pool is
   full, demand misses wait for the earliest completion, while prefetches
   are dropped — matching the hardware behaviour the paper's resource
   argument (§4.1) relies on.

   The pool is consulted on every simulated memory access, so entries live
   in two parallel int arrays (no pointer chasing) and [expire] keeps the
   exact minimum completion time so the common nothing-to-retire case is a
   single comparison. [mask] summarises the in-flight line addresses
   (one bit per [line mod 63]-ish hash), letting [find] answer the common
   "nothing in flight for this line" case without scanning the pool.
   Completion times must be positive; [find] and [earliest] return -1 for
   "absent" so callers stay allocation-free. *)

type t = {
  cap : int;
  lines : int array;           (* line addresses of in-flight fills *)
  dones : int array;           (* their completion cycles (always > 0) *)
  provs : int array;           (* provenance of each fill; -1 = demand *)
  mutable used : int;
  mutable min_done : int;      (* exact min of dones.(0..used-1); max_int when empty *)
  mutable mask : int;          (* or of [bit line] over live entries (may
                                  over-approximate until next [compact]) *)
  mutable drops : int;         (* prefetches dropped on a full pool *)
}

(* One of 63 bits per line (62..0 of the OCaml int): a cleared bit proves
   the line is absent; a set bit means "maybe present, scan". *)
let bit line = 1 lsl (line mod 62)

let create cap =
  { cap; lines = Array.make cap 0; dones = Array.make cap 0;
    provs = Array.make cap (-1);
    used = 0; min_done = max_int; mask = 0; drops = 0 }

(* Top-level loops (a local [let rec] capturing state would allocate a
   closure per call; these run on every simulated access). *)

let rec compact t ~now r w m mask =
  if r = t.used then begin
    t.used <- w;
    t.min_done <- m;
    t.mask <- mask
  end
  else begin
    let d = t.dones.(r) in
    if d > now then begin
      let line = t.lines.(r) in
      if r <> w then begin
        t.lines.(w) <- line;
        t.dones.(w) <- d;
        t.provs.(w) <- t.provs.(r)
      end;
      compact t ~now (r + 1) (w + 1) (if d < m then d else m)
        (mask lor bit line)
    end
    else compact t ~now (r + 1) w m mask
  end

let rec scan_lines (lines : int array) (dones : int array) (line : int) i used =
  if i = used then -1
  else if lines.(i) = line then dones.(i)
  else scan_lines lines dones line (i + 1) used

(** [expire t ~now] retires entries whose fill has completed. *)
let expire t ~now = if t.min_done <= now then compact t ~now 0 0 max_int 0

(** [find t line] is the completion time of an in-flight fill of [line],
    or -1 if none is in flight. *)
let find t line =
  if t.mask land bit line = 0 then -1
  else scan_lines t.lines t.dones line 0 t.used

let full t = t.used >= t.cap

(** [earliest t] is the soonest completion among in-flight fills, or -1
    when the pool is empty. *)
let earliest t = if t.used = 0 then -1 else t.min_done

(* Index of [line]'s entry, or -1. Same shape as [scan_lines] — a plain
   loop over the live prefix, no closure. *)
let rec scan_index (lines : int array) (line : int) i used =
  if i = used then -1
  else if lines.(i) = line then i
  else scan_index lines line (i + 1) used

(** [take_prov t line] is the provenance of the in-flight fill of [line]
    (-1 for demand fills or when nothing is in flight); clears it so the
    same fill is attributed at most once. *)
let take_prov t line =
  let i = scan_index t.lines line 0 t.used in
  if i < 0 then -1
  else begin
    let p = t.provs.(i) in
    t.provs.(i) <- -1;
    p
  end

(* [prov] is a required label: an optional argument here would box a
   [Some] per registered fill on the miss path. *)
let add ~prov t line done_at =
  assert (t.used < t.cap && done_at > 0);
  t.lines.(t.used) <- line;
  t.dones.(t.used) <- done_at;
  t.provs.(t.used) <- prov;
  t.used <- t.used + 1;
  t.mask <- t.mask lor bit line;
  if done_at < t.min_done then t.min_done <- done_at

let reset t =
  t.used <- 0;
  t.min_done <- max_int;
  t.mask <- 0;
  t.drops <- 0
