(** Hardware prefetchers of the Alder Lake E-core (paper Table 2).

    Each prefetcher observes the demand-access stream at its cache level
    and emits fill requests; the hierarchy pushes those through the
    shared MSHR/bandwidth paths, so inaccurate prefetchers genuinely cost
    the resources the paper's §5.1 insight is about.

    The observation path runs on every demand access and is
    allocation-free: {!t.pf_observe} writes target line addresses into a
    caller-owned scratch buffer (see {!max_requests}) instead of
    returning a request list. Requests fill at the observing unit's own
    {!t.pf_level} and are attributed to its {!t.pf_id}. *)

type level = L1 | L2 | L3

(** {1 Prefetcher ids (accuracy-counter indices)} *)

val id_l1_nlp : int
val id_l1_ipp : int
val id_l2_nlp : int
val id_mlc : int
val id_amp : int
val id_llc : int
val n_ids : int
val name_of_id : int -> string

(** [slug_of_id i] is the stable dotted-counter-name component for
    prefetcher [i] (e.g. ["mlc_streamer"] in ["pf.mlc_streamer.issued"]). *)
val slug_of_id : int -> string

(** Upper bound on the lines one observation can request; scratch buffers
    passed as [out] must have at least this length. *)
val max_requests : int

type t = {
  pf_id : int;
  pf_level : level;            (** where it observes and fills *)
  pf_observe :
    pc:int -> addr:int -> line:int -> hit:bool -> out:int array -> int;
    (** [pf_observe ~pc ~addr ~line ~hit ~out] feeds one demand access at
        the unit's level ([hit] is the hit/miss outcome there) and writes
        the target line addresses (all non-negative) of any fill requests
        into [out.(0 .. n-1)], returning [n]. *)
}

(** L1 next-line: on a miss, fetch the following line (inaccurate on
    irregular streams; "Default On", disabled by the paper). *)
val l1_nlp : unit -> t

(** L2 next-line ("Default Off"). *)
val l2_nlp : unit -> t

(** L1 instruction-pointer prefetcher: per-PC stride detection with a
    small stream capacity (the paper observes 2 concurrent streams,
    §3.2.1) and replacement hysteresis. *)
val l1_ipp : ?streams:int -> ?lookahead:int -> unit -> t

(** Generic forward streamer within 4 KiB pages (high-water-mark based). *)
val streamer :
  pf_id:int -> level:level -> ?entries:int -> ?degree:int -> unit -> t

(** Mid-level-cache streamer (into L2). *)
val mlc_streamer : unit -> t

(** Last-level-cache streamer (into L3). *)
val llc_streamer : unit -> t

(** L2 adaptive multipath: fires on repeated line deltas — covers 2-D
    strided walks, pollutes on random streams (disabled for SpMV by the
    paper). *)
val l2_amp : ?degree:int -> unit -> t
