(* Flat-bytecode execution engine with superinstruction fusion.

   The closure-compiled engine ({!Compile}) removes interpretation
   overhead but still pays an indirect call per simulated statement, and
   the closure tree scatters operands across environment blocks. This
   engine flattens an [Ir.func] into a single [int array] instruction
   stream — int-coded opcodes followed by their operands (register
   indices into the unboxed [ienv]/[fenv]/[ready] files, plus immediates
   such as buffer bases and bounds resolved at compile time) — executed
   by one tail-recursive dispatch loop whose [match] compiles to a jump
   table. Structured control flow becomes explicit jump targets;
   carried-value lists become preallocated vid arrays; loop state lives
   in per-static-loop slots (no recursion in the IR, so one slot per
   loop suffices).

   On top of the flat form, adjacent statements matching the shapes
   sparsification always emits are fused into superinstructions, so one
   dispatch covers the whole sequence:

   - [LD2]     load crd[jj] ; load val[jj]        (int load + float load)
   - [LDFMA]   load c[j] ; mulf ; addf            (gather + FMA tail)
   - [POS2]    load pos[i] ; load pos[i+1]        (compressed bounds pair)
   - [POS2FOR] load pos ; load pos ; for          (full compressed header)
   - [FOR_LOOP] yield ; advance ; test ; branch   (fused loop back-edge)

   Fusion changes dispatch count only: each superinstruction performs
   the identical sequence of issue/retire timing events, memory-port
   calls (same pcs, so {!Exec.load_sites} attribution is unchanged),
   bounds checks and register writes as its unfused constituents, in the
   same order. Cycle-exactness and value-exactness against {!Interp.run}
   therefore hold by construction, and are enforced by the differential
   tests in [test/test_engine.ml] (including fused-vs-unfused runs via
   the [?fuse] knob). *)

open Asap_ir

let int_lat = 1
let fp_lat = 3
let st_lat = 1

(* --- Opcode table ----------------------------------------------------

   Operands follow the opcode inline; sizes include the opcode slot.
   Register operands (d, a, b, c, ix, v, cv, ivd) index ienv/fenv/ready
   by Ir vid; base/eb/n are immediates resolved from the buffer binding;
   l/w index the static loop/while tables; jump operands are absolute
   code positions.

    0 HALT                               1
    1 CONST_I  d imm                     3
    2 CONST_F  d fidx                    3
    3 IADD     d a b                     4    (4 ISUB, 5 IMUL, 6 IDIV,
                                              7 IREM, 8 IMIN, 9 IMAX,
                                              10 IAND, 11 IOR, 12 IXOR,
                                              13 ISHL)
   14 FADD     d a b                     4    (15 FSUB, 16 FMUL, 17 FDIV,
                                              18 FMIN, 19 FMAX)
   20 CEQ      d a b                     4    (21 CNE, 22 CLT, 23 CLE,
                                              24 CGT, 25 CGE)
   26 SELI     d c a b                   5
   27 SELF     d c a b                   5
   28 LOADI    d ix bid base eb n        7
   29 LOADF    d ix bid base eb n        7
   30 LOADB    d ix bid base eb n        7
   31 DIM      d n                       3
   32 I2F      d x                       3
   33 F2I      d x                       3
   34 MOVF     d x                       3
   35 MOVI     d x                       3
   36 STOREF   bid ix v base eb n        7
   37 STOREI   bid ix v base eb n        7
   38 STOREB   bid ix v base eb n        7
   39 STOREG   bid ix v base eb isf      7
   40 PREFETCH ix base eb loc            5
   41 FOR_INIT l                         2    (falls through to FOR_TEST)
   42 FOR_TEST l ivd exit                4
   43 FOR_NEXT l head                    3
   44 FOR_EXIT l                         2
   45 WHILE_INIT w                       2
   46 WHILE_TEST cv exit                 3
   47 WHILE_NEXT w cond                  3
   48 WHILE_EXIT w                       2
   49 IF       cv else                   3
   50 JUMP     t                         2
   51 LD2      d1 ix1 bid1 base1 eb1 n1
               d2 ix2 bid2 base2 eb2 n2  13
   52 LDFMA    dl ixl bid base eb n
               dm am bm  da ga ha        13
   53 POS2     d1 ix1 bid1 base1 eb1 n1
               d2 ix2 bid2 base2 eb2 n2  13
   54 POS2FOR  (POS2 operands) l         14   (falls through to FOR_TEST)
   55 FOR_LOOP l ivd body                4    (fused FOR_NEXT + FOR_TEST at
                                              the loop tail; falls through
                                              to FOR_EXIT when done)
   56 FOR_KENTER l ivd                   3    (spec-only entry for non-top
                                              loops with constant bounds and
                                              trip >= 1: the statically-taken
                                              FOR_TEST without the guard
                                              compare; same timing events) *)

let op_halt = 0
let op_const_i = 1
let op_const_f = 2
let op_iadd = 3 (* .. op_iadd + 10 = ISHL, order of Ir.ibin_op *)
let op_fadd = 14 (* .. op_fadd + 5 = FMAX, order of Ir.fbin_op *)
let op_ceq = 20 (* CEQ CNE CLT CLE CGT CGE *)
let op_seli = 26
let op_self = 27
let op_loadi = 28
let op_loadf = 29
let op_loadb = 30
let op_dim = 31
let op_i2f = 32
let op_f2i = 33
let op_movf = 34
let op_movi = 35
let op_storef = 36
let op_storei = 37
let op_storeb = 38
let op_storeg = 39
let op_prefetch = 40
let op_for_init = 41
let op_for_test = 42
let op_for_next = 43
let op_for_exit = 44
let op_while_init = 45
let op_while_test = 46
let op_while_next = 47
let op_while_exit = 48
let op_if = 49
let op_jump = 50
let op_ld2 = 51
let op_ldfma = 52
let op_pos2 = 53
let op_pos2for = 54
let op_for_loop = 55
let op_for_kenter = 56

(* Carried-value plumbing, staged exactly as in Compile: vids of
   destinations and sources plus per-slot float-ness. *)
type carry = {
  car_dst : int array;
  car_src : int array;
  car_isf : bool array;
}

let carry_of (pairs : (Ir.value * Ir.value) list) : carry =
  let a = Array.of_list pairs in
  { car_dst = Array.map (fun ((d : Ir.value), _) -> d.Ir.vid) a;
    car_src = Array.map (fun (_, (s : Ir.value)) -> s.Ir.vid) a;
    car_isf = Array.map (fun ((d : Ir.value), _) -> d.Ir.vty = Ir.F64) a }

(* Static per-loop data: bound/step vids, slice eligibility and the three
   carry tables. The dynamic loop state (iv, hi, step, riv) lives in
   per-run slot arrays indexed by the same loop id. *)
type loop_info = {
  l_lo : int;
  l_hi : int;
  l_step : int;
  l_top : bool;
  l_const : (int * int * int) option;
      (* spec mode: (lo, hi, step) immediates when all three bounds are
         literal constants in the stream — the loop entry then skips the
         bound reload and the step trap (timing-neutral: the same ready
         times and events are produced) *)
  l_init : carry;
  l_yield : carry;
  l_res : carry;
}

type while_info = {
  w_init : carry;
  w_yield : carry;
  w_res : carry;
}

type prog = {
  p_fn : Ir.func;
  p_code : int array;
  p_fpool : float array;          (* Cf64 constants *)
  p_loops : loop_info array;
  p_whiles : while_info array;
  p_bi : int array array;         (* bid -> RI backing array, or [||] *)
  p_bf : float array array;       (* bid -> RF backing array, or [||] *)
  p_bb : Bytes.t array;           (* bid -> RB backing bytes, or empty *)
  p_bname : string array;         (* bid -> buffer name (fault messages) *)
  p_bounds : Runtime.bound array; (* kind-mismatch store fallback *)
  p_fused : int;                  (* superinstructions emitted *)
}

let fused_count p = p.p_fused

(* --- Compilation ----------------------------------------------------- *)

type emitter = {
  mutable e_code : int array;
  mutable e_len : int;
  mutable e_fpool : float list;        (* reversed *)
  mutable e_nf : int;
  mutable e_loops : loop_info list;    (* reversed *)
  mutable e_nloops : int;
  mutable e_whiles : while_info list;  (* reversed *)
  mutable e_nwhiles : int;
  mutable e_fused : int;
}

let emit e x =
  let n = Array.length e.e_code in
  if e.e_len = n then begin
    let c = Array.make (2 * n) 0 in
    Array.blit e.e_code 0 c 0 n;
    e.e_code <- c
  end;
  e.e_code.(e.e_len) <- x;
  e.e_len <- e.e_len + 1

let pos e = e.e_len
let patch e at x = e.e_code.(at) <- x

let add_float e x =
  let i = e.e_nf in
  e.e_fpool <- x :: e.e_fpool;
  e.e_nf <- i + 1;
  i

let add_loop e info =
  let i = e.e_nloops in
  e.e_loops <- info :: e.e_loops;
  e.e_nloops <- i + 1;
  i

let add_while e info =
  let i = e.e_nwhiles in
  e.e_whiles <- info :: e.e_whiles;
  e.e_nwhiles <- i + 1;
  i

(* Load/store operand tails are uniform: bid base eb n. *)
let emit_buf_operands e (b : Runtime.bound) bid =
  emit e bid;
  emit e b.Runtime.base;
  emit e b.Runtime.ebytes;
  emit e (Runtime.length_of b.Runtime.data)

type buf_kind = KI | KF | KB

let kind_of (b : Runtime.bound) =
  match b.Runtime.data with
  | Runtime.RI _ -> KI
  | Runtime.RF _ -> KF
  | Runtime.RB _ -> KB

let ibin_code = function
  | Ir.Iadd -> op_iadd
  | Ir.Isub -> op_iadd + 1
  | Ir.Imul -> op_iadd + 2
  | Ir.Idiv -> op_iadd + 3
  | Ir.Irem -> op_iadd + 4
  | Ir.Imin -> op_iadd + 5
  | Ir.Imax -> op_iadd + 6
  | Ir.Iand -> op_iadd + 7
  | Ir.Ior -> op_iadd + 8
  | Ir.Ixor -> op_iadd + 9
  | Ir.Ishl -> op_iadd + 10

let fbin_code = function
  | Ir.Fadd -> op_fadd
  | Ir.Fsub -> op_fadd + 1
  | Ir.Fmul -> op_fadd + 2
  | Ir.Fdiv -> op_fadd + 3
  | Ir.Fmin -> op_fadd + 4
  | Ir.Fmax -> op_fadd + 5

(* Signed and unsigned orders coincide (indices are non-negative), as in
   Interp and Compile. *)
let icmp_code = function
  | Ir.Eq -> op_ceq
  | Ir.Ne -> op_ceq + 1
  | Ir.Ult | Ir.Slt -> op_ceq + 2
  | Ir.Ule | Ir.Sle -> op_ceq + 3
  | Ir.Ugt | Ir.Sgt -> op_ceq + 4
  | Ir.Uge | Ir.Sge -> op_ceq + 5

let compile ?(fuse = true) ?(spec = false) (fn : Ir.func)
    ~(bufs : Runtime.bound array) : prog =
  let e =
    { e_code = Array.make 256 0; e_len = 0;
      e_fpool = []; e_nf = 0;
      e_loops = []; e_nloops = 0;
      e_whiles = []; e_nwhiles = 0;
      e_fused = 0 }
  in
  (* Literal integer constants seen so far (vid -> value). In spec mode
     loop bounds found here are baked into [l_const]; SSA dominance
     guarantees a bound's defining let is emitted before its loop. *)
  let consts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let emit_load ~d ~ix (buf : Ir.buffer) =
    let b = bufs.(buf.Ir.bid) in
    let op =
      match kind_of b with KI -> op_loadi | KF -> op_loadf | KB -> op_loadb
    in
    emit e op;
    emit e d;
    emit e ix;
    emit_buf_operands e b buf.Ir.bid
  in
  (* Operand tail of one load inside a superinstruction (no opcode). *)
  let emit_load_tail ~d ~ix (buf : Ir.buffer) =
    emit e d;
    emit e ix;
    emit_buf_operands e bufs.(buf.Ir.bid) buf.Ir.bid
  in
  let emit_let (v : Ir.value) (rv : Ir.rvalue) =
    let d = v.Ir.vid in
    match rv with
    | Ir.Const c ->
      (match c with
       | Ir.Cidx x | Ir.Ci64 x ->
         Hashtbl.replace consts d x;
         emit e op_const_i; emit e d; emit e x
       | Ir.Cbool b ->
         emit e op_const_i; emit e d; emit e (if b then 1 else 0)
       | Ir.Cf64 x ->
         emit e op_const_f; emit e d; emit e (add_float e x))
    | Ir.Ibin (op, a, b) ->
      emit e (ibin_code op); emit e d; emit e a.Ir.vid; emit e b.Ir.vid
    | Ir.Fbin (op, a, b) ->
      emit e (fbin_code op); emit e d; emit e a.Ir.vid; emit e b.Ir.vid
    | Ir.Icmp (pred, a, b) ->
      emit e (icmp_code pred); emit e d; emit e a.Ir.vid; emit e b.Ir.vid
    | Ir.Select (c, a, b) ->
      emit e (if v.Ir.vty = Ir.F64 then op_self else op_seli);
      emit e d; emit e c.Ir.vid; emit e a.Ir.vid; emit e b.Ir.vid
    | Ir.Load (buf, idx) -> emit_load ~d ~ix:idx.Ir.vid buf
    | Ir.Dim buf ->
      emit e op_dim; emit e d;
      emit e (Runtime.length_of bufs.(buf.Ir.bid).Runtime.data)
    | Ir.Cast (ty, x) ->
      let op =
        match (ty, x.Ir.vty) with
        | Ir.F64, (Ir.Index | Ir.I64 | Ir.I1) -> op_i2f
        | (Ir.Index | Ir.I64 | Ir.I1), Ir.F64 -> op_f2i
        | _, _ -> if v.Ir.vty = Ir.F64 then op_movf else op_movi
      in
      emit e op; emit e d; emit e x.Ir.vid
  in
  let rec emit_block ~top (blk : Ir.block) =
    match blk with
    (* POS2 / POS2FOR: two adjacent int loads (the compressed-level
       pos[i]/pos[i+1] bounds pair), optionally straight into the [for]
       they bound. *)
    | Ir.Let (v1, Ir.Load (b1, x1)) :: Ir.Let (v2, Ir.Load (b2, x2)) :: rest
      when fuse
           && kind_of bufs.(b1.Ir.bid) = KI
           && kind_of bufs.(b2.Ir.bid) = KI -> (
        let emit_pair op =
          e.e_fused <- e.e_fused + 1;
          emit e op;
          emit_load_tail ~d:v1.Ir.vid ~ix:x1.Ir.vid b1;
          emit_load_tail ~d:v2.Ir.vid ~ix:x2.Ir.vid b2
        in
        match rest with
        | Ir.For f :: rest'
          when (f.Ir.f_lo.Ir.vid = v1.Ir.vid && f.Ir.f_hi.Ir.vid = v2.Ir.vid)
            || (f.Ir.f_lo.Ir.vid = v2.Ir.vid && f.Ir.f_hi.Ir.vid = v1.Ir.vid)
          ->
          emit_pair op_pos2for;
          let l, li = loop_of ~top f in
          emit e l;
          emit_for_tail l li f;
          emit_block ~top rest'
        | _ ->
          emit_pair op_pos2;
          emit_block ~top rest)
    (* LD2: crd/val pair — int load then float load (typically sharing
       the compressed-position index). *)
    | Ir.Let (v1, Ir.Load (b1, x1)) :: Ir.Let (v2, Ir.Load (b2, x2)) :: rest
      when fuse
           && kind_of bufs.(b1.Ir.bid) = KI
           && kind_of bufs.(b2.Ir.bid) = KF ->
      e.e_fused <- e.e_fused + 1;
      emit e op_ld2;
      emit_load_tail ~d:v1.Ir.vid ~ix:x1.Ir.vid b1;
      emit_load_tail ~d:v2.Ir.vid ~ix:x2.Ir.vid b2;
      emit_block ~top rest
    (* LDFMA: gather + multiply-accumulate tail of the SpMV/SpMM inner
       body — float load feeding a mulf feeding an addf. *)
    | Ir.Let (vl, Ir.Load (bl, xl))
      :: Ir.Let (vm, Ir.Fbin (Ir.Fmul, ma, mb))
      :: Ir.Let (va, Ir.Fbin (Ir.Fadd, ga, gb))
      :: rest
      when fuse
           && kind_of bufs.(bl.Ir.bid) = KF
           && (ma.Ir.vid = vl.Ir.vid || mb.Ir.vid = vl.Ir.vid)
           && (ga.Ir.vid = vm.Ir.vid || gb.Ir.vid = vm.Ir.vid) ->
      e.e_fused <- e.e_fused + 1;
      emit e op_ldfma;
      emit_load_tail ~d:vl.Ir.vid ~ix:xl.Ir.vid bl;
      emit e vm.Ir.vid; emit e ma.Ir.vid; emit e mb.Ir.vid;
      emit e va.Ir.vid; emit e ga.Ir.vid; emit e gb.Ir.vid;
      emit_block ~top rest
    | s :: rest ->
      emit_stmt ~top s;
      emit_block ~top rest
    | [] -> ()
  and emit_stmt ~top (s : Ir.stmt) =
    match s with
    | Ir.Let (v, rv) -> emit_let v rv
    | Ir.Store (buf, idx, v) ->
      let b = bufs.(buf.Ir.bid) in
      let isf = v.Ir.vty = Ir.F64 in
      (match (kind_of b, isf) with
       | KF, true ->
         emit e op_storef;
         emit e buf.Ir.bid; emit e idx.Ir.vid; emit e v.Ir.vid;
         emit e b.Runtime.base; emit e b.Runtime.ebytes;
         emit e (Runtime.length_of b.Runtime.data)
       | KI, false ->
         emit e op_storei;
         emit e buf.Ir.bid; emit e idx.Ir.vid; emit e v.Ir.vid;
         emit e b.Runtime.base; emit e b.Runtime.ebytes;
         emit e (Runtime.length_of b.Runtime.data)
       | KB, false ->
         emit e op_storeb;
         emit e buf.Ir.bid; emit e idx.Ir.vid; emit e v.Ir.vid;
         emit e b.Runtime.base; emit e b.Runtime.ebytes;
         emit e (Runtime.length_of b.Runtime.data)
       | _, _ ->
         (* Kind mismatch: defer to Runtime.write for the same fault. *)
         emit e op_storeg;
         emit e buf.Ir.bid; emit e idx.Ir.vid; emit e v.Ir.vid;
         emit e b.Runtime.base; emit e b.Runtime.ebytes;
         emit e (if isf then 1 else 0))
    | Ir.Prefetch p ->
      let b = bufs.(p.Ir.pbuf.Ir.bid) in
      emit e op_prefetch;
      emit e p.Ir.pidx.Ir.vid;
      emit e b.Runtime.base; emit e b.Runtime.ebytes;
      emit e p.Ir.plocality
    | Ir.For f ->
      emit e op_for_init;
      let l, li = loop_of ~top f in
      emit e l;
      emit_for_tail l li f
    | Ir.While w ->
      let wi =
        add_while e
          { w_init = carry_of w.Ir.w_carried;
            w_yield =
              carry_of
                (List.map2 (fun (arg, _) y -> (arg, y)) w.Ir.w_carried
                   w.Ir.w_yield);
            w_res =
              carry_of
                (List.map2 (fun r (arg, _) -> (r, arg)) w.Ir.w_results
                   w.Ir.w_carried) }
      in
      emit e op_while_init;
      emit e wi;
      let cond_head = pos e in
      emit_block ~top:false w.Ir.w_cond;
      emit e op_while_test;
      emit e w.Ir.w_cond_v.Ir.vid;
      let exit_ph = pos e in
      emit e 0;
      emit_block ~top:false w.Ir.w_body;
      emit e op_while_next;
      emit e wi;
      emit e cond_head;
      patch e exit_ph (pos e);
      emit e op_while_exit;
      emit e wi
    | Ir.If (c, then_, else_) ->
      emit e op_if;
      emit e c.Ir.vid;
      let else_ph = pos e in
      emit e 0;
      emit_block ~top:false then_;
      (match else_ with
       | [] -> patch e else_ph (pos e)
       | _ ->
         emit e op_jump;
         let end_ph = pos e in
         emit e 0;
         patch e else_ph (pos e);
         emit_block ~top:false else_;
         patch e end_ph (pos e))
  and loop_of ~top (f : Ir.forloop) =
    let l_const =
      if not spec then None
      else
        match
          ( Hashtbl.find_opt consts f.Ir.f_lo.Ir.vid,
            Hashtbl.find_opt consts f.Ir.f_hi.Ir.vid,
            Hashtbl.find_opt consts f.Ir.f_step.Ir.vid )
        with
        | Some lo, Some hi, Some step when step > 0 -> Some (lo, hi, step)
        | _ -> None
    in
    let info =
      { l_lo = f.Ir.f_lo.Ir.vid;
        l_hi = f.Ir.f_hi.Ir.vid;
        l_step = f.Ir.f_step.Ir.vid;
        l_top = top;
        l_const;
        l_init = carry_of f.Ir.f_carried;
        l_yield =
          carry_of
            (List.map2 (fun (arg, _) y -> (arg, y)) f.Ir.f_carried
               f.Ir.f_yield);
        l_res =
          carry_of
            (List.map2 (fun r (arg, _) -> (r, arg)) f.Ir.f_results
               f.Ir.f_carried) }
    in
    (add_loop e info, info)
  (* Everything after the loop's init — the init opcode (FOR_INIT or a
     fused POS2FOR) falls through to this. *)
  and emit_for_tail l (li : loop_info) (f : Ir.forloop) =
    (* Constant bounds with trip >= 1 on a non-top loop: the entry guard
       is statically taken, so emit FOR_KENTER instead of the entry
       FOR_TEST (same ivd write and the same two loop-overhead events,
       no guard compare). Needs the fused FOR_LOOP back-edge — the
       unfused FOR_NEXT jumps back through the entry test. Top loops
       keep the guard: a run-time slice can empty their range. *)
    let kenter =
      fuse && (not li.l_top)
      && (match li.l_const with
          | Some (lo, hi, _) -> lo < hi
          | None -> false)
    in
    if kenter then begin
      emit e op_for_kenter;
      emit e l;
      emit e f.Ir.f_iv.Ir.vid;
      let body = pos e in
      emit_block ~top:false f.Ir.f_body;
      e.e_fused <- e.e_fused + 1;
      emit e op_for_loop;
      emit e l;
      emit e f.Ir.f_iv.Ir.vid;
      emit e body;
      emit e op_for_exit;
      emit e l
    end
    else begin
      emit e op_for_test;
      emit e l;
      emit e f.Ir.f_iv.Ir.vid;
      let exit_ph = pos e in
      emit e 0;
      let body = pos e in
      emit_block ~top:false f.Ir.f_body;
      if fuse then begin
        (* Fused back-edge: FOR_NEXT and the taken FOR_TEST in one
           dispatch; the entry FOR_TEST above still guards iteration 0. *)
        e.e_fused <- e.e_fused + 1;
        emit e op_for_loop;
        emit e l;
        emit e f.Ir.f_iv.Ir.vid;
        emit e body
      end
      else begin
        emit e op_for_next;
        emit e l;
        (* Back to the FOR_TEST, 4 slots before the body. *)
        emit e (body - 4)
      end;
      patch e exit_ph (pos e);
      emit e op_for_exit;
      emit e l
    end
  in
  emit_block ~top:true fn.Ir.fn_body;
  emit e op_halt;
  { p_fn = fn;
    p_code = Array.sub e.e_code 0 e.e_len;
    p_fpool = Array.of_list (List.rev e.e_fpool);
    p_loops = Array.of_list (List.rev e.e_loops);
    p_whiles = Array.of_list (List.rev e.e_whiles);
    p_bi =
      Array.map
        (fun b ->
          match b.Runtime.data with Runtime.RI a -> a | _ -> [||])
        bufs;
    p_bf =
      Array.map
        (fun b ->
          match b.Runtime.data with Runtime.RF a -> a | _ -> [||])
        bufs;
    p_bb =
      Array.map
        (fun b ->
          match b.Runtime.data with Runtime.RB s -> s | _ -> Bytes.empty)
        bufs;
    p_bname = Array.map (fun b -> b.Runtime.buf.Ir.bname) bufs;
    p_bounds = bufs;
    p_fused = e.e_fused }

(* --- Execution ------------------------------------------------------- *)

(* Per-run mutable state: identical timing core to Compile.state, plus
   the per-static-loop slot arrays (iv, hi, step, riv). *)
type state = {
  ienv : int array;
  fenv : float array;
  ready : int array;
  rob : int array;
  rob_n : int;
  width : int;
  branch_miss : int;
  mem : Interp.mem;
  mutable icount : int;
  mutable slot : int;            (* icount mod rob_n, kept incrementally *)
  mutable qbase : int;           (* icount / width, kept incrementally *)
  mutable qrem : int;            (* icount mod width *)
  mutable last_retire : int;
  mutable bubble : int;
  mutable flops : int;
  mutable loads : int;
  mutable stores : int;
  mutable pfs : int;
  mutable slice : (int * int) option;
  liv : int array;               (* per-loop induction value *)
  lhi : int array;               (* per-loop upper bound *)
  lstep : int array;             (* per-loop step *)
  lriv : int array;              (* per-loop induction ready time *)
}

let[@inline] imax (a : int) (b : int) = if a >= b then a else b

(* Issue/retire arithmetic — byte-for-byte the Compile engine's, which is
   itself Interp's [issue] with the division and modulo maintained
   incrementally. *)
let[@inline] issue_at st ops_ready =
  imax (st.qbase + st.bubble)
    (imax ops_ready (Array.unsafe_get st.rob st.slot))

let[@inline] retire st completion =
  let r =
    if completion >= st.last_retire then completion else st.last_retire
  in
  Array.unsafe_set st.rob st.slot r;
  st.last_retire <- r;
  st.icount <- st.icount + 1;
  let s = st.slot + 1 in
  st.slot <- (if s = st.rob_n then 0 else s);
  let q = st.qrem + 1 in
  if q = st.width then begin
    st.qrem <- 0;
    st.qbase <- st.qbase + 1
  end
  else st.qrem <- q

let[@inline] simple st lat ops_ready =
  let t = issue_at st ops_ready + lat in
  retire st t;
  t

let[@inline] copy_carry st (c : carry) =
  for k = 0 to Array.length c.car_dst - 1 do
    let s = Array.unsafe_get c.car_src k in
    let d = Array.unsafe_get c.car_dst k in
    if Array.unsafe_get c.car_isf k then
      Array.unsafe_set st.fenv d (Array.unsafe_get st.fenv s)
    else Array.unsafe_set st.ienv d (Array.unsafe_get st.ienv s);
    Array.unsafe_set st.ready d (Array.unsafe_get st.ready s)
  done

(* Loop entry: bounds read, step trap, top-level slice, carried init and
   the induction ready time — exactly Interp's [For] prologue. Shared by
   FOR_INIT and the fused POS2FOR. *)
let for_init st (loops : loop_info array) l =
  let info = Array.unsafe_get loops l in
  let ready = st.ready and ienv = st.ienv in
  let lo0, hi0, step =
    match info.l_const with
    | Some (lo, hi, step) ->
      (* Specialized: bounds baked in at compile time — no env reload
         and the positive-step trap is statically discharged. The
         induction ready time below still reads [ready] so virtual
         timing matches the generic stream exactly. *)
      (lo, hi, step)
    | None ->
      let lo0 = ienv.(info.l_lo) and hi0 = ienv.(info.l_hi) in
      let step = ienv.(info.l_step) in
      if step <= 0 then raise (Interp.Trap "non-positive loop step");
      (lo0, hi0, step)
  in
  let lov, hiv =
    if info.l_top then (
      match st.slice with
      | Some (slo, shi) ->
        st.slice <- None;
        (imax lo0 slo, (if hi0 <= shi then hi0 else shi))
      | None -> (lo0, hi0))
    else (lo0, hi0)
  in
  copy_carry st info.l_init;
  Array.unsafe_set st.lriv l (imax ready.(info.l_lo) ready.(info.l_hi));
  Array.unsafe_set st.liv l lov;
  Array.unsafe_set st.lhi l hiv;
  Array.unsafe_set st.lstep l step

(* Scalar-parameter binding, identical traps to Interp. *)
let rec bind_scalars ienv params values =
  match (params, values) with
  | [], [] -> ()
  | Ir.Pbuf _ :: ps, vs -> bind_scalars ienv ps vs
  | Ir.Pscalar (v : Ir.value) :: ps, x :: vs ->
    ienv.(v.Ir.vid) <- x;
    bind_scalars ienv ps vs
  | Ir.Pscalar v :: _, [] ->
    raise (Interp.Trap ("missing scalar argument for " ^ v.Ir.vname))
  | [], _ :: _ -> raise (Interp.Trap "too many scalar arguments")

let run ?slice ?(width = 3) ?(rob_size = 64) ?(branch_miss = 6) (p : prog)
    ~(scalars : int list) ~(mem : Interp.mem) : Interp.result =
  let n = p.p_fn.Ir.fn_nvalues in
  let nl = Array.length p.p_loops in
  let st =
    { ienv = Array.make n 0;
      fenv = Array.make n 0.;
      ready = Array.make n 0;
      rob = Array.make rob_size 0;
      rob_n = rob_size;
      width;
      branch_miss;
      mem;
      icount = 0; slot = 0; qbase = 0; qrem = 0;
      last_retire = 0; bubble = 0;
      flops = 0; loads = 0; stores = 0; pfs = 0;
      slice;
      liv = Array.make (imax 1 nl) 0;
      lhi = Array.make (imax 1 nl) 0;
      lstep = Array.make (imax 1 nl) 0;
      lriv = Array.make (imax 1 nl) 0 }
  in
  bind_scalars st.ienv p.p_fn.Ir.fn_params scalars;
  let code = p.p_code in
  let ienv = st.ienv and fenv = st.fenv and ready = st.ready in
  let fpool = p.p_fpool in
  let loops = p.p_loops and whiles = p.p_whiles in
  let bi = p.p_bi and bf = p.p_bf and bb = p.p_bb in
  let bname = p.p_bname and bounds = p.p_bounds in
  let mem = st.mem in
  let[@inline] opnd k = Array.unsafe_get code k in
  (* The int/float load bodies below (LOADI/LOADF and the load slots of
     LD2/LDFMA/POS2/POS2FOR) are deliberately written out at each opcode
     — classic ocamlopt does not inline a local helper into the dispatch
     loop, and the call costs ~5% of engine throughput on SpMV. Each copy
     is the exact Interp ordering: issue on the index, present the
     (possibly OOB) address to the memory port with the destination vid
     as pc, retire at the fill time, then bounds-check. The operand tail
     is [d ix bid base eb n] at the given offset. POS2/POS2FOR run once
     per compressed row — cold next to the per-nonzero opcodes — so
     their int-load pair stays an outlined helper. *)
  let pos_pair pc =
    st.loads <- st.loads + 1;
    let d = opnd (pc + 1) and ix = opnd (pc + 2) in
    let i = Array.unsafe_get ienv ix in
    let t = issue_at st (Array.unsafe_get ready ix) in
    let done_at =
      mem.Interp.m_load ~pc:d ~addr:(opnd (pc + 4) + (i * opnd (pc + 5)))
        ~at:t
    in
    retire st done_at;
    if i < 0 || i >= opnd (pc + 6) then
      Runtime.fault "load %s[%d] out of bounds [0, %d)"
        (Array.unsafe_get bname (opnd (pc + 3))) i (opnd (pc + 6));
    Array.unsafe_set ienv d
      (Array.unsafe_get (Array.unsafe_get bi (opnd (pc + 3))) i);
    Array.unsafe_set ready d done_at;
    st.loads <- st.loads + 1;
    let d = opnd (pc + 7) and ix = opnd (pc + 8) in
    let i = Array.unsafe_get ienv ix in
    let t = issue_at st (Array.unsafe_get ready ix) in
    let done_at =
      mem.Interp.m_load ~pc:d ~addr:(opnd (pc + 10) + (i * opnd (pc + 11)))
        ~at:t
    in
    retire st done_at;
    if i < 0 || i >= opnd (pc + 12) then
      Runtime.fault "load %s[%d] out of bounds [0, %d)"
        (Array.unsafe_get bname (opnd (pc + 9))) i (opnd (pc + 12));
    Array.unsafe_set ienv d
      (Array.unsafe_get (Array.unsafe_get bi (opnd (pc + 9))) i);
    Array.unsafe_set ready d done_at
  in
  let rec go pc =
    match Array.unsafe_get code pc with
    | 0 (* HALT *) -> ()
    | 1 (* CONST_I *) ->
      let d = opnd (pc + 1) in
      let t = simple st int_lat 0 in
      Array.unsafe_set ienv d (opnd (pc + 2));
      Array.unsafe_set ready d t;
      go (pc + 3)
    | 2 (* CONST_F *) ->
      let d = opnd (pc + 1) in
      let t = simple st int_lat 0 in
      Array.unsafe_set fenv d (Array.unsafe_get fpool (opnd (pc + 2)));
      Array.unsafe_set ready d t;
      go (pc + 3)
    | 3 (* IADD *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (Array.unsafe_get ienv a + Array.unsafe_get ienv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 4 (* ISUB *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (Array.unsafe_get ienv a - Array.unsafe_get ienv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 5 (* IMUL *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (Array.unsafe_get ienv a * Array.unsafe_get ienv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 6 (* IDIV *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      let bv = Array.unsafe_get ienv b in
      if bv = 0 then raise (Interp.Trap "division by zero");
      Array.unsafe_set ienv d (Array.unsafe_get ienv a / bv);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 7 (* IREM *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      let bv = Array.unsafe_get ienv b in
      if bv = 0 then raise (Interp.Trap "rem by zero");
      Array.unsafe_set ienv d (Array.unsafe_get ienv a mod bv);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 8 (* IMIN *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      let av = Array.unsafe_get ienv a and bv = Array.unsafe_get ienv b in
      Array.unsafe_set ienv d (if av <= bv then av else bv);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 9 (* IMAX *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      let av = Array.unsafe_get ienv a and bv = Array.unsafe_get ienv b in
      Array.unsafe_set ienv d (if av >= bv then av else bv);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 10 (* IAND *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (Array.unsafe_get ienv a land Array.unsafe_get ienv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 11 (* IOR *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (Array.unsafe_get ienv a lor Array.unsafe_get ienv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 12 (* IXOR *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (Array.unsafe_get ienv a lxor Array.unsafe_get ienv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 13 (* ISHL *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (Array.unsafe_get ienv a lsl Array.unsafe_get ienv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 14 (* FADD *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      st.flops <- st.flops + 1;
      let t =
        simple st fp_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set fenv d
        (Array.unsafe_get fenv a +. Array.unsafe_get fenv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 15 (* FSUB *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      st.flops <- st.flops + 1;
      let t =
        simple st fp_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set fenv d
        (Array.unsafe_get fenv a -. Array.unsafe_get fenv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 16 (* FMUL *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      st.flops <- st.flops + 1;
      let t =
        simple st fp_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set fenv d
        (Array.unsafe_get fenv a *. Array.unsafe_get fenv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 17 (* FDIV *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      st.flops <- st.flops + 1;
      let t =
        simple st fp_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set fenv d
        (Array.unsafe_get fenv a /. Array.unsafe_get fenv b);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 18 (* FMIN *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      st.flops <- st.flops + 1;
      let t =
        simple st fp_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set fenv d
        (Float.min (Array.unsafe_get fenv a) (Array.unsafe_get fenv b));
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 19 (* FMAX *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      st.flops <- st.flops + 1;
      let t =
        simple st fp_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set fenv d
        (Float.max (Array.unsafe_get fenv a) (Array.unsafe_get fenv b));
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 20 (* CEQ *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (if Array.unsafe_get ienv a = Array.unsafe_get ienv b then 1 else 0);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 21 (* CNE *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (if Array.unsafe_get ienv a <> Array.unsafe_get ienv b then 1 else 0);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 22 (* CLT *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (if Array.unsafe_get ienv a < Array.unsafe_get ienv b then 1 else 0);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 23 (* CLE *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (if Array.unsafe_get ienv a <= Array.unsafe_get ienv b then 1 else 0);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 24 (* CGT *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (if Array.unsafe_get ienv a > Array.unsafe_get ienv b then 1 else 0);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 25 (* CGE *) ->
      let d = opnd (pc + 1) and a = opnd (pc + 2) and b = opnd (pc + 3) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b))
      in
      Array.unsafe_set ienv d
        (if Array.unsafe_get ienv a >= Array.unsafe_get ienv b then 1 else 0);
      Array.unsafe_set ready d t;
      go (pc + 4)
    | 26 (* SELI *) ->
      let d = opnd (pc + 1) and c = opnd (pc + 2) in
      let a = opnd (pc + 3) and b = opnd (pc + 4) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready c)
             (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b)))
      in
      Array.unsafe_set ienv d
        (if Array.unsafe_get ienv c <> 0 then Array.unsafe_get ienv a
         else Array.unsafe_get ienv b);
      Array.unsafe_set ready d t;
      go (pc + 5)
    | 27 (* SELF *) ->
      let d = opnd (pc + 1) and c = opnd (pc + 2) in
      let a = opnd (pc + 3) and b = opnd (pc + 4) in
      let t =
        simple st int_lat
          (imax (Array.unsafe_get ready c)
             (imax (Array.unsafe_get ready a) (Array.unsafe_get ready b)))
      in
      Array.unsafe_set fenv d
        (if Array.unsafe_get ienv c <> 0 then Array.unsafe_get fenv a
         else Array.unsafe_get fenv b);
      Array.unsafe_set ready d t;
      go (pc + 5)
    | 28 (* LOADI *) ->
      st.loads <- st.loads + 1;
      let d = opnd (pc + 1) and ix = opnd (pc + 2) in
      let i = Array.unsafe_get ienv ix in
      let t = issue_at st (Array.unsafe_get ready ix) in
      let done_at =
        mem.Interp.m_load ~pc:d ~addr:(opnd (pc + 4) + (i * opnd (pc + 5)))
          ~at:t
      in
      retire st done_at;
      if i < 0 || i >= opnd (pc + 6) then
        Runtime.fault "load %s[%d] out of bounds [0, %d)"
          (Array.unsafe_get bname (opnd (pc + 3))) i (opnd (pc + 6));
      Array.unsafe_set ienv d
        (Array.unsafe_get (Array.unsafe_get bi (opnd (pc + 3))) i);
      Array.unsafe_set ready d done_at;
      go (pc + 7)
    | 29 (* LOADF *) ->
      st.loads <- st.loads + 1;
      let d = opnd (pc + 1) and ix = opnd (pc + 2) in
      let i = Array.unsafe_get ienv ix in
      let t = issue_at st (Array.unsafe_get ready ix) in
      let done_at =
        mem.Interp.m_load ~pc:d ~addr:(opnd (pc + 4) + (i * opnd (pc + 5)))
          ~at:t
      in
      retire st done_at;
      if i < 0 || i >= opnd (pc + 6) then
        Runtime.fault "load %s[%d] out of bounds [0, %d)"
          (Array.unsafe_get bname (opnd (pc + 3))) i (opnd (pc + 6));
      Array.unsafe_set fenv d
        (Array.unsafe_get (Array.unsafe_get bf (opnd (pc + 3))) i);
      Array.unsafe_set ready d done_at;
      go (pc + 7)
    | 30 (* LOADB *) ->
      st.loads <- st.loads + 1;
      let d = opnd (pc + 1) and ix = opnd (pc + 2) in
      let i = Array.unsafe_get ienv ix in
      let t = issue_at st (Array.unsafe_get ready ix) in
      let done_at =
        st.mem.Interp.m_load ~pc:d ~addr:(opnd (pc + 4) + (i * opnd (pc + 5)))
          ~at:t
      in
      retire st done_at;
      if i < 0 || i >= opnd (pc + 6) then
        Runtime.fault "load %s[%d] out of bounds [0, %d)"
          (Array.unsafe_get bname (opnd (pc + 3))) i (opnd (pc + 6));
      Array.unsafe_set ienv d
        (Bytes.get_uint8 (Array.unsafe_get bb (opnd (pc + 3))) i);
      Array.unsafe_set ready d done_at;
      go (pc + 7)
    | 31 (* DIM *) ->
      let d = opnd (pc + 1) in
      let t = simple st int_lat 0 in
      Array.unsafe_set ienv d (opnd (pc + 2));
      Array.unsafe_set ready d t;
      go (pc + 3)
    | 32 (* I2F *) ->
      let d = opnd (pc + 1) and x = opnd (pc + 2) in
      let t = simple st int_lat (Array.unsafe_get ready x) in
      Array.unsafe_set fenv d (float_of_int (Array.unsafe_get ienv x));
      Array.unsafe_set ready d t;
      go (pc + 3)
    | 33 (* F2I *) ->
      let d = opnd (pc + 1) and x = opnd (pc + 2) in
      let t = simple st int_lat (Array.unsafe_get ready x) in
      Array.unsafe_set ienv d (int_of_float (Array.unsafe_get fenv x));
      Array.unsafe_set ready d t;
      go (pc + 3)
    | 34 (* MOVF *) ->
      let d = opnd (pc + 1) and x = opnd (pc + 2) in
      let t = simple st int_lat (Array.unsafe_get ready x) in
      Array.unsafe_set fenv d (Array.unsafe_get fenv x);
      Array.unsafe_set ready d t;
      go (pc + 3)
    | 35 (* MOVI *) ->
      let d = opnd (pc + 1) and x = opnd (pc + 2) in
      let t = simple st int_lat (Array.unsafe_get ready x) in
      Array.unsafe_set ienv d (Array.unsafe_get ienv x);
      Array.unsafe_set ready d t;
      go (pc + 3)
    | 36 (* STOREF *) ->
      st.stores <- st.stores + 1;
      let bid = opnd (pc + 1) and ix = opnd (pc + 2) and v = opnd (pc + 3) in
      let i = Array.unsafe_get ienv ix in
      let t =
        issue_at st
          (imax (Array.unsafe_get ready ix) (Array.unsafe_get ready v))
      in
      st.mem.Interp.m_store ~pc:(bid lor 0x10000)
        ~addr:(opnd (pc + 4) + (i * opnd (pc + 5)))
        ~at:t;
      retire st (t + st_lat);
      if i < 0 || i >= opnd (pc + 6) then
        Runtime.fault "store %s[%d] out of bounds [0, %d)"
          (Array.unsafe_get bname bid) i (opnd (pc + 6));
      Array.unsafe_set (Array.unsafe_get bf bid) i (Array.unsafe_get fenv v);
      go (pc + 7)
    | 37 (* STOREI *) ->
      st.stores <- st.stores + 1;
      let bid = opnd (pc + 1) and ix = opnd (pc + 2) and v = opnd (pc + 3) in
      let i = Array.unsafe_get ienv ix in
      let t =
        issue_at st
          (imax (Array.unsafe_get ready ix) (Array.unsafe_get ready v))
      in
      st.mem.Interp.m_store ~pc:(bid lor 0x10000)
        ~addr:(opnd (pc + 4) + (i * opnd (pc + 5)))
        ~at:t;
      retire st (t + st_lat);
      if i < 0 || i >= opnd (pc + 6) then
        Runtime.fault "store %s[%d] out of bounds [0, %d)"
          (Array.unsafe_get bname bid) i (opnd (pc + 6));
      Array.unsafe_set (Array.unsafe_get bi bid) i (Array.unsafe_get ienv v);
      go (pc + 7)
    | 38 (* STOREB *) ->
      st.stores <- st.stores + 1;
      let bid = opnd (pc + 1) and ix = opnd (pc + 2) and v = opnd (pc + 3) in
      let i = Array.unsafe_get ienv ix in
      let t =
        issue_at st
          (imax (Array.unsafe_get ready ix) (Array.unsafe_get ready v))
      in
      st.mem.Interp.m_store ~pc:(bid lor 0x10000)
        ~addr:(opnd (pc + 4) + (i * opnd (pc + 5)))
        ~at:t;
      retire st (t + st_lat);
      if i < 0 || i >= opnd (pc + 6) then
        Runtime.fault "store %s[%d] out of bounds [0, %d)"
          (Array.unsafe_get bname bid) i (opnd (pc + 6));
      Bytes.set_uint8 (Array.unsafe_get bb bid) i
        (Array.unsafe_get ienv v land 0xff);
      go (pc + 7)
    | 39 (* STOREG *) ->
      st.stores <- st.stores + 1;
      let bid = opnd (pc + 1) and ix = opnd (pc + 2) and v = opnd (pc + 3) in
      let i = Array.unsafe_get ienv ix in
      let t =
        issue_at st
          (imax (Array.unsafe_get ready ix) (Array.unsafe_get ready v))
      in
      st.mem.Interp.m_store ~pc:(bid lor 0x10000)
        ~addr:(opnd (pc + 4) + (i * opnd (pc + 5)))
        ~at:t;
      retire st (t + st_lat);
      Runtime.write (Array.unsafe_get bounds bid) i
        (if opnd (pc + 6) <> 0 then `F (Array.unsafe_get fenv v)
         else `I (Array.unsafe_get ienv v));
      go (pc + 7)
    | 40 (* PREFETCH *) ->
      st.pfs <- st.pfs + 1;
      let ix = opnd (pc + 1) in
      let i = Array.unsafe_get ienv ix in
      let t = issue_at st (Array.unsafe_get ready ix) in
      st.mem.Interp.m_prefetch
        ~addr:(opnd (pc + 2) + (i * opnd (pc + 3)))
        ~locality:(opnd (pc + 4)) ~at:t;
      retire st (t + 1);
      go (pc + 5)
    | 41 (* FOR_INIT *) ->
      for_init st loops (opnd (pc + 1));
      go (pc + 2)
    | 42 (* FOR_TEST *) ->
      let l = opnd (pc + 1) in
      let i = Array.unsafe_get st.liv l in
      if i < Array.unsafe_get st.lhi l then begin
        let riv = Array.unsafe_get st.lriv l in
        let ivd = opnd (pc + 2) in
        Array.unsafe_set ienv ivd i;
        Array.unsafe_set ready ivd riv;
        (* Loop overhead: induction update + compare-and-branch. *)
        let (_ : int) = simple st int_lat riv in
        let (_ : int) = simple st int_lat riv in
        go (pc + 4)
      end
      else go (opnd (pc + 3))
    | 43 (* FOR_NEXT *) ->
      let l = opnd (pc + 1) in
      copy_carry st (Array.unsafe_get loops l).l_yield;
      Array.unsafe_set st.lriv l (Array.unsafe_get st.lriv l + 1);
      Array.unsafe_set st.liv l
        (Array.unsafe_get st.liv l + Array.unsafe_get st.lstep l);
      go (opnd (pc + 2))
    | 44 (* FOR_EXIT *) ->
      st.bubble <- st.bubble + st.branch_miss;
      copy_carry st (Array.unsafe_get loops (opnd (pc + 1))).l_res;
      go (pc + 2)
    | 45 (* WHILE_INIT *) ->
      copy_carry st (Array.unsafe_get whiles (opnd (pc + 1))).w_init;
      go (pc + 2)
    | 46 (* WHILE_TEST *) ->
      let cv = opnd (pc + 1) in
      let (_ : int) = simple st int_lat (Array.unsafe_get ready cv) in
      if Array.unsafe_get ienv cv <> 0 then go (pc + 3)
      else go (opnd (pc + 2))
    | 47 (* WHILE_NEXT *) ->
      copy_carry st (Array.unsafe_get whiles (opnd (pc + 1))).w_yield;
      go (opnd (pc + 2))
    | 48 (* WHILE_EXIT *) ->
      st.bubble <- st.bubble + st.branch_miss;
      copy_carry st (Array.unsafe_get whiles (opnd (pc + 1))).w_res;
      go (pc + 2)
    | 49 (* IF *) ->
      let cv = opnd (pc + 1) in
      let (_ : int) = simple st int_lat (Array.unsafe_get ready cv) in
      if Array.unsafe_get ienv cv <> 0 then go (pc + 3)
      else go (opnd (pc + 2))
    | 50 (* JUMP *) -> go (opnd (pc + 1))
    | 51 (* LD2: int load ; float load *) ->
      st.loads <- st.loads + 1;
      let d = opnd (pc + 1) and ix = opnd (pc + 2) in
      let i = Array.unsafe_get ienv ix in
      let t = issue_at st (Array.unsafe_get ready ix) in
      let done_at =
        mem.Interp.m_load ~pc:d ~addr:(opnd (pc + 4) + (i * opnd (pc + 5)))
          ~at:t
      in
      retire st done_at;
      if i < 0 || i >= opnd (pc + 6) then
        Runtime.fault "load %s[%d] out of bounds [0, %d)"
          (Array.unsafe_get bname (opnd (pc + 3))) i (opnd (pc + 6));
      Array.unsafe_set ienv d
        (Array.unsafe_get (Array.unsafe_get bi (opnd (pc + 3))) i);
      Array.unsafe_set ready d done_at;
      st.loads <- st.loads + 1;
      let d = opnd (pc + 7) and ix = opnd (pc + 8) in
      let i = Array.unsafe_get ienv ix in
      let t = issue_at st (Array.unsafe_get ready ix) in
      let done_at =
        mem.Interp.m_load ~pc:d ~addr:(opnd (pc + 10) + (i * opnd (pc + 11)))
          ~at:t
      in
      retire st done_at;
      if i < 0 || i >= opnd (pc + 12) then
        Runtime.fault "load %s[%d] out of bounds [0, %d)"
          (Array.unsafe_get bname (opnd (pc + 9))) i (opnd (pc + 12));
      Array.unsafe_set fenv d
        (Array.unsafe_get (Array.unsafe_get bf (opnd (pc + 9))) i);
      Array.unsafe_set ready d done_at;
      go (pc + 13)
    | 52 (* LDFMA: float load ; fmul ; fadd *) ->
      st.loads <- st.loads + 1;
      let d = opnd (pc + 1) and ix = opnd (pc + 2) in
      let i = Array.unsafe_get ienv ix in
      let t = issue_at st (Array.unsafe_get ready ix) in
      let done_at =
        mem.Interp.m_load ~pc:d ~addr:(opnd (pc + 4) + (i * opnd (pc + 5)))
          ~at:t
      in
      retire st done_at;
      if i < 0 || i >= opnd (pc + 6) then
        Runtime.fault "load %s[%d] out of bounds [0, %d)"
          (Array.unsafe_get bname (opnd (pc + 3))) i (opnd (pc + 6));
      Array.unsafe_set fenv d
        (Array.unsafe_get (Array.unsafe_get bf (opnd (pc + 3))) i);
      Array.unsafe_set ready d done_at;
      let dm = opnd (pc + 7) and ma = opnd (pc + 8) and mb = opnd (pc + 9) in
      st.flops <- st.flops + 1;
      let t =
        simple st fp_lat
          (imax (Array.unsafe_get ready ma) (Array.unsafe_get ready mb))
      in
      Array.unsafe_set fenv dm
        (Array.unsafe_get fenv ma *. Array.unsafe_get fenv mb);
      Array.unsafe_set ready dm t;
      let da = opnd (pc + 10) in
      let ga = opnd (pc + 11) and gb = opnd (pc + 12) in
      st.flops <- st.flops + 1;
      let t =
        simple st fp_lat
          (imax (Array.unsafe_get ready ga) (Array.unsafe_get ready gb))
      in
      Array.unsafe_set fenv da
        (Array.unsafe_get fenv ga +. Array.unsafe_get fenv gb);
      Array.unsafe_set ready da t;
      go (pc + 13)
    | 53 (* POS2: int load ; int load *) ->
      pos_pair pc;
      go (pc + 13)
    | 54 (* POS2FOR: int load ; int load ; for-init *) ->
      pos_pair pc;
      for_init st loops (opnd (pc + 13));
      go (pc + 14)
    | 55 (* FOR_LOOP: fused FOR_NEXT + taken FOR_TEST back-edge *) ->
      let l = opnd (pc + 1) in
      copy_carry st (Array.unsafe_get loops l).l_yield;
      let riv = Array.unsafe_get st.lriv l + 1 in
      Array.unsafe_set st.lriv l riv;
      let i = Array.unsafe_get st.liv l + Array.unsafe_get st.lstep l in
      Array.unsafe_set st.liv l i;
      if i < Array.unsafe_get st.lhi l then begin
        let ivd = opnd (pc + 2) in
        Array.unsafe_set ienv ivd i;
        Array.unsafe_set ready ivd riv;
        (* Same two loop-overhead events the unfused FOR_TEST issues. *)
        let (_ : int) = simple st int_lat riv in
        let (_ : int) = simple st int_lat riv in
        go (opnd (pc + 3))
      end
      else go (pc + 4) (* falls through to FOR_EXIT *)
    | 56 (* FOR_KENTER: statically-taken entry test of a const-bound loop *) ->
      let l = opnd (pc + 1) in
      let riv = Array.unsafe_get st.lriv l in
      let ivd = opnd (pc + 2) in
      Array.unsafe_set ienv ivd (Array.unsafe_get st.liv l);
      Array.unsafe_set ready ivd riv;
      (* Same two loop-overhead events the entry FOR_TEST issues. *)
      let (_ : int) = simple st int_lat riv in
      let (_ : int) = simple st int_lat riv in
      go (pc + 3)
    | _ -> assert false
  in
  go 0;
  { Interp.r_cycles = st.last_retire;
    r_instructions = st.icount;
    r_flops = st.flops;
    r_loads = st.loads;
    r_stores = st.stores;
    r_prefetches = st.pfs }
