(* Top-level execution drivers and the PMU-style report (paper §4.4). *)

open Asap_ir

type report = {
  rp_machine : Machine.t;
  rp_threads : int;
  rp_cycles : int;              (* max over cores *)
  rp_instructions : int;        (* summed over cores *)
  rp_flops : int;
  rp_loads : int;
  rp_stores : int;
  rp_prefetch_instrs : int;
  rp_mem : Hierarchy.stats;
}

let aggregate machine threads (rs : Interp.result array) mem =
  let max_cycles = Array.fold_left (fun m r -> max m r.Interp.r_cycles) 0 rs in
  let sum f = Array.fold_left (fun s r -> s + f r) 0 rs in
  { rp_machine = machine;
    rp_threads = threads;
    rp_cycles = max_cycles;
    rp_instructions = sum (fun r -> r.Interp.r_instructions);
    rp_flops = sum (fun r -> r.Interp.r_flops);
    rp_loads = sum (fun r -> r.Interp.r_loads);
    rp_stores = sum (fun r -> r.Interp.r_stores);
    rp_prefetch_instrs = sum (fun r -> r.Interp.r_prefetches);
    rp_mem = mem }

(** The execution engine: the tree-walking interpreter ({!Interp}) or the
    staged closure compiler ({!Compile}). The two are cycle-exact and
    value-exact drop-ins for each other (differential-tested), so the
    choice is purely a host-speed trade-off. *)
type engine = [ `Interp | `Compiled ]

let default_engine : engine = `Compiled

let engine_of_string = function
  | "interp" | "interpreter" -> Some `Interp
  | "compiled" | "compile" | "closure" -> Some `Compiled
  | _ -> None

let engine_to_string = function `Interp -> "interp" | `Compiled -> "compiled"

(** [run ?slice machine fn ~bufs ~scalars] executes [fn] on one core;
    [slice] restricts the outermost loop's range (used by profiling). *)
let run ?(engine = default_engine) ?slice (machine : Machine.t) (fn : Ir.func)
    ~(bufs : (Ir.buffer * Runtime.rbuf) list) ~(scalars : int list) : report =
  let bound = Runtime.layout fn bufs in
  let hier = Hierarchy.create machine in
  let mem =
    { Interp.m_load = (fun ~pc ~addr ~at -> Hierarchy.load hier ~core:0 ~pc ~addr ~at);
      m_store = (fun ~pc ~addr ~at -> Hierarchy.store hier ~core:0 ~pc ~addr ~at);
      m_prefetch =
        (fun ~addr ~locality ~at ->
          Hierarchy.prefetch hier ~core:0 ~addr ~locality ~at) }
  in
  let width = machine.Machine.width in
  let rob_size = machine.Machine.rob in
  let branch_miss = machine.Machine.branch_miss in
  let r =
    match engine with
    | `Interp ->
      Interp.run ?slice ~width ~rob_size ~branch_miss fn ~bufs:bound ~scalars
        ~mem
    | `Compiled ->
      Compile.run ?slice ~width ~rob_size ~branch_miss
        (Compile.compile fn ~bufs:bound) ~scalars ~mem
  in
  aggregate machine 1 [| r |] (Hierarchy.stats hier)

(** [run_parallel machine ~threads ~outer_extent fn ...] executes [fn] with
    the dense-outer-loop parallelisation strategy: the outermost loop range
    [0, outer_extent) is split into [threads] contiguous slices, one per
    core, on a shared memory hierarchy. *)
let run_parallel ?(engine = default_engine) (machine : Machine.t) ~threads
    ~outer_extent (fn : Ir.func) ~(bufs : (Ir.buffer * Runtime.rbuf) list)
    ~(scalars : int list) : report =
  if threads < 1 || threads > machine.Machine.cores then
    invalid_arg "Exec.run_parallel: bad thread count";
  let bound = Runtime.layout fn bufs in
  let hier = Hierarchy.create machine in
  let chunk = (outer_extent + threads - 1) / threads in
  let slices =
    Array.init threads (fun t ->
        (t * chunk, min outer_extent ((t + 1) * chunk)))
  in
  let rs = Multicore.run ~engine machine hier fn ~bufs:bound ~scalars ~slices in
  aggregate machine threads rs (Hierarchy.stats hier)

(* Derived metrics (paper §5). *)

(** L2 misses per kilo-instruction. *)
let l2_mpki r =
  1000. *. float_of_int r.rp_mem.Hierarchy.st_l2_misses
  /. float_of_int (max 1 r.rp_instructions)

(** Work throughput: non-zeros processed per millisecond (paper §5). *)
let throughput_nnz_per_ms r ~nnz =
  float_of_int nnz /. Machine.cycles_to_ms r.rp_machine r.rp_cycles

(** GFLOP/s at the simulated frequency (for the roofline of Fig. 12). *)
let gflops r =
  float_of_int r.rp_flops
  /. (Machine.cycles_to_ms r.rp_machine r.rp_cycles *. 1e6)

(** Arithmetic intensity (flops per DRAM byte moved). *)
let arithmetic_intensity r =
  float_of_int r.rp_flops
  /. float_of_int
       (max 1 (r.rp_mem.Hierarchy.st_dram_lines * r.rp_machine.Machine.line_bytes))

let summary r =
  Printf.sprintf
    "cycles %d | instr %d | loads %d | stores %d | sw-pf %d (drop %d, useful %d) | L2 miss %d | MPKI %.2f"
    r.rp_cycles r.rp_instructions r.rp_loads r.rp_stores
    r.rp_mem.Hierarchy.st_sw_issued r.rp_mem.Hierarchy.st_sw_dropped
    r.rp_mem.Hierarchy.st_sw_useful r.rp_mem.Hierarchy.st_l2_misses
    (l2_mpki r)
