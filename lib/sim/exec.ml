(* Top-level execution drivers and the PMU-style report (paper §4.4). *)

open Asap_ir

(** One load site of the executed function, resolved from its pc (the
    load's Ir vid) to the buffer it reads and the source loop nest it sits
    in, with the misses attributed to it. *)
type op_miss = {
  om_pc : int;                  (* the load's Ir vid *)
  om_buf : string;              (* buffer read by the load *)
  om_loop : string;             (* loop-tag path, e.g. "rows/cols"; "top" *)
  om_depth : int;               (* loop nesting depth of the site *)
  om_l1_miss : int;
  om_l2_miss : int;
}

type report = {
  rp_machine : Machine.t;
  rp_threads : int;
  rp_cycles : int;              (* max over cores *)
  rp_instructions : int;        (* summed over cores *)
  rp_flops : int;
  rp_loads : int;
  rp_stores : int;
  rp_prefetch_instrs : int;
  rp_mem : Hierarchy.stats;
  rp_op_misses : op_miss list;  (* pc-ascending, zero-miss sites omitted *)
}

(* Walk the function body collecting (vid -> buffer, loop path, depth) for
   every load, so the hierarchy's per-pc miss counts can be resolved to
   source sites. *)
let load_sites (fn : Ir.func) : (int * (string * string * int)) list =
  let acc = ref [] in
  let rec block path depth b = List.iter (stmt path depth) b
  and stmt path depth = function
    | Ir.Let (v, Ir.Load (b, _)) ->
      let loop =
        match path with [] -> "top" | l -> String.concat "/" (List.rev l)
      in
      (* Loop tags are free-form debug labels; keep counter names
         space-free so the dotted catalogue stays machine-friendly. *)
      let loop = String.map (fun c -> if c = ' ' then '_' else c) loop in
      acc := (v.Ir.vid, (b.Ir.bname, loop, depth)) :: !acc
    | Ir.Let _ | Ir.Store _ | Ir.Prefetch _ -> ()
    | Ir.For f -> block (f.Ir.f_tag :: path) (depth + 1) f.Ir.f_body
    | Ir.While w ->
      block (w.Ir.w_tag :: path) (depth + 1) w.Ir.w_cond;
      block (w.Ir.w_tag :: path) (depth + 1) w.Ir.w_body
    | Ir.If (_, t, e) ->
      block path depth t;
      block path depth e
  in
  block [] 0 fn.Ir.fn_body;
  !acc

(* Join the hierarchy's per-pc miss counts with the function's load sites.
   Both inputs are pc-keyed; the output is pc-ascending (the stats lists
   already are). Unresolvable pcs (none in practice) get "?" labels. *)
let op_misses (fn : Ir.func) (mem : Hierarchy.stats) : op_miss list =
  let sites = load_sites fn in
  let find pc =
    match List.assoc_opt pc sites with
    | Some s -> s
    | None -> ("?", "?", 0)
  in
  let l2 = mem.Hierarchy.st_pc_l2_miss in
  List.map
    (fun (pc, l1_misses) ->
      let buf, loop, depth = find pc in
      { om_pc = pc; om_buf = buf; om_loop = loop; om_depth = depth;
        om_l1_miss = l1_misses;
        om_l2_miss =
          (match List.assoc_opt pc l2 with Some n -> n | None -> 0) })
    mem.Hierarchy.st_pc_l1_miss

let aggregate machine threads (fn : Ir.func) (rs : Interp.result array) mem =
  let max_cycles = Array.fold_left (fun m r -> max m r.Interp.r_cycles) 0 rs in
  let sum f = Array.fold_left (fun s r -> s + f r) 0 rs in
  { rp_machine = machine;
    rp_threads = threads;
    rp_cycles = max_cycles;
    rp_instructions = sum (fun r -> r.Interp.r_instructions);
    rp_flops = sum (fun r -> r.Interp.r_flops);
    rp_loads = sum (fun r -> r.Interp.r_loads);
    rp_stores = sum (fun r -> r.Interp.r_stores);
    rp_prefetch_instrs = sum (fun r -> r.Interp.r_prefetches);
    rp_mem = mem;
    rp_op_misses = op_misses fn mem }

(** The execution engine: the tree-walking interpreter ({!Interp}), the
    staged closure compiler ({!Compile}), or the flat-bytecode engine
    with superinstruction fusion ({!Bytecode}). All three are cycle-exact
    and value-exact drop-ins for each other (differential-tested), so the
    choice is purely a host-speed trade-off. *)
type engine = [ `Interp | `Compiled | `Bytecode ]

let default_engine : engine = `Bytecode

(** Canonical engine names, for option docs and error messages. *)
let valid_engines = "interp|compiled|bytecode"

let engine_of_string = function
  | "interp" | "interpreter" -> Some `Interp
  | "compiled" | "compile" | "closure" -> Some `Compiled
  | "bytecode" | "bc" | "flat" -> Some `Bytecode
  | _ -> None

let engine_to_string = function
  | `Interp -> "interp"
  | `Compiled -> "compiled"
  | `Bytecode -> "bytecode"

(* The engine-specific staged form: nothing for the interpreter, the
   closure tree for Compile, the flat program for Bytecode. *)
type staged =
  | S_interp
  | S_closure of Compile.compiled
  | S_bytecode of Bytecode.prog

(* A prepared single-core execution: address layout and (for the staged
   engines) the compiled form, both computed once. The buffer binding is
   captured — re-running reads whatever the bound arrays contain at that
   moment — but the memory hierarchy is created fresh per run, so repeat
   runs are independent simulations. This is the amortisation point the
   serve subsystem's compile cache stores. *)
type prepared = {
  pr_machine : Machine.t;
  pr_fn : Ir.func;
  pr_bound : Runtime.bound array;
  pr_staged : staged;
  pr_spec : Specialize.stats option;  (* Some iff prepared with ~spec *)
}

(** [prepare ?engine ?spec machine fn ~bufs] lays out [bufs] in the
    simulated address space and, for the staged engines, compiles the
    flat program or closure tree — the run-independent half of {!run},
    done once and reused by every {!run_prepared}. When [spec] is given,
    the function is first rewritten by {!Specialize.apply} against those
    facts (any engine; the bytecode engine additionally bakes the
    constant loop bounds into its loop table). *)
let prepare ?(engine = default_engine) ?(spec : Specialize.facts option)
    (machine : Machine.t) (fn : Ir.func)
    ~(bufs : (Ir.buffer * Runtime.rbuf) list) : prepared =
  let fn, sp_stats =
    match spec with
    | None -> (fn, None)
    | Some facts ->
      let fn', st = Specialize.apply facts fn in
      (fn', Some st)
  in
  let bound = Runtime.layout fn bufs in
  let staged =
    match engine with
    | `Interp -> S_interp
    | `Compiled -> S_closure (Compile.compile fn ~bufs:bound)
    | `Bytecode ->
      S_bytecode (Bytecode.compile ~spec:(spec <> None) fn ~bufs:bound)
  in
  { pr_machine = machine; pr_fn = fn; pr_bound = bound; pr_staged = staged;
    pr_spec = sp_stats }

let prepared_engine p : engine =
  match p.pr_staged with
  | S_interp -> `Interp
  | S_closure _ -> `Compiled
  | S_bytecode _ -> `Bytecode

(** Specialization statistics, when the prepared form was specialized. *)
let prepared_spec p = p.pr_spec

(** [run_prepared ?obs ?slice p ~scalars] executes [p] on one core of a
    fresh memory hierarchy. Equal in every report field to the {!run}
    that [p] was prepared from. *)
let run_prepared ?obs ?slice (p : prepared) ~(scalars : int list) : report =
  let machine = p.pr_machine in
  let hier = Hierarchy.create ?obs machine in
  let mem =
    { Interp.m_load = (fun ~pc ~addr ~at -> Hierarchy.load hier ~core:0 ~pc ~addr ~at);
      m_store = (fun ~pc ~addr ~at -> Hierarchy.store hier ~core:0 ~pc ~addr ~at);
      m_prefetch =
        (fun ~addr ~locality ~at ->
          Hierarchy.prefetch hier ~core:0 ~addr ~locality ~at) }
  in
  let width = machine.Machine.width in
  let rob_size = machine.Machine.rob in
  let branch_miss = machine.Machine.branch_miss in
  let r =
    match p.pr_staged with
    | S_interp ->
      Interp.run ?slice ~width ~rob_size ~branch_miss p.pr_fn ~bufs:p.pr_bound
        ~scalars ~mem
    | S_closure c ->
      Compile.run ?slice ~width ~rob_size ~branch_miss c ~scalars ~mem
    | S_bytecode bp ->
      Bytecode.run ?slice ~width ~rob_size ~branch_miss bp ~scalars ~mem
  in
  aggregate machine 1 p.pr_fn [| r |] (Hierarchy.stats hier)

(** [run ?slice machine fn ~bufs ~scalars] executes [fn] on one core;
    [slice] restricts the outermost loop's range (used by profiling). *)
let run ?(engine = default_engine) ?obs ?slice (machine : Machine.t)
    (fn : Ir.func) ~(bufs : (Ir.buffer * Runtime.rbuf) list)
    ~(scalars : int list) : report =
  run_prepared ?obs ?slice (prepare ~engine machine fn ~bufs) ~scalars

(** [run_parallel machine ~threads ~outer_extent fn ...] executes [fn] with
    the dense-outer-loop parallelisation strategy: the outermost loop range
    [0, outer_extent) is split into [threads] contiguous slices, one per
    core, on a shared memory hierarchy. *)
let run_parallel ?(engine = default_engine) ?obs (machine : Machine.t) ~threads
    ~outer_extent (fn : Ir.func) ~(bufs : (Ir.buffer * Runtime.rbuf) list)
    ~(scalars : int list) : report =
  if threads < 1 || threads > machine.Machine.cores then
    invalid_arg "Exec.run_parallel: bad thread count";
  let bound = Runtime.layout fn bufs in
  let hier = Hierarchy.create ?obs machine in
  let chunk = (outer_extent + threads - 1) / threads in
  let slices =
    Array.init threads (fun t ->
        (t * chunk, min outer_extent ((t + 1) * chunk)))
  in
  let rs = Multicore.run ~engine machine hier fn ~bufs:bound ~scalars ~slices in
  aggregate machine threads fn rs (Hierarchy.stats hier)

(* Derived metrics (paper §5). *)

(** L2 misses per kilo-instruction. *)
let l2_mpki r =
  1000. *. float_of_int r.rp_mem.Hierarchy.st_l2_misses
  /. float_of_int (max 1 r.rp_instructions)

(** Work throughput: non-zeros processed per millisecond (paper §5). *)
let throughput_nnz_per_ms r ~nnz =
  float_of_int nnz /. Machine.cycles_to_ms r.rp_machine r.rp_cycles

(** GFLOP/s at the simulated frequency (for the roofline of Fig. 12). *)
let gflops r =
  float_of_int r.rp_flops
  /. (Machine.cycles_to_ms r.rp_machine r.rp_cycles *. 1e6)

(** Arithmetic intensity (flops per DRAM byte moved). *)
let arithmetic_intensity r =
  float_of_int r.rp_flops
  /. float_of_int
       (max 1 (r.rp_mem.Hierarchy.st_dram_lines * r.rp_machine.Machine.line_bytes))

(** Stable accessors over {!report} plus the named-counter registry.
    Consumers should read reports through these rather than record fields:
    the functions are the compatibility surface, the record layout is not.
    The counter-name catalogue is documented in DESIGN.md §3c. *)
module Report = struct
  type t = report

  let machine r = r.rp_machine
  let threads r = r.rp_threads
  let cycles r = r.rp_cycles
  let instructions r = r.rp_instructions
  let flops r = r.rp_flops
  let loads r = r.rp_loads
  let stores r = r.rp_stores
  let prefetch_instrs r = r.rp_prefetch_instrs
  let mem r = r.rp_mem
  let op_misses r = r.rp_op_misses

  let demand_loads r = r.rp_mem.Hierarchy.st_demand_loads
  let demand_stores r = r.rp_mem.Hierarchy.st_demand_stores
  let l1_misses r = r.rp_mem.Hierarchy.st_l1_misses
  let l2_misses r = r.rp_mem.Hierarchy.st_l2_misses
  let l3_misses r = r.rp_mem.Hierarchy.st_l3_misses
  let dram_lines r = r.rp_mem.Hierarchy.st_dram_lines
  let sw_issued r = r.rp_mem.Hierarchy.st_sw_issued
  let sw_dropped r = r.rp_mem.Hierarchy.st_sw_dropped
  let sw_useful r = r.rp_mem.Hierarchy.st_sw_useful

  (** [registry r] is every counter of the report under its stable dotted
      name (the DESIGN.md §3c catalogue): [core.*] for the pipeline,
      [mem.*] for retired memory instructions, [l1./l2./l3./dram.*] for
      the hierarchy, [pf.<slug>.*] for the per-prefetcher lifecycle
      breakdown, and [op.<buf>@<loop>.*] for per-load-site miss
      attribution. *)
  let registry r : Asap_obs.Registry.t =
    let reg = Asap_obs.Registry.create () in
    let set = Asap_obs.Registry.set reg in
    set "core.threads" r.rp_threads;
    set "core.cycles" r.rp_cycles;
    set "core.instructions" r.rp_instructions;
    set "core.flops" r.rp_flops;
    set "mem.loads" r.rp_loads;
    set "mem.stores" r.rp_stores;
    set "mem.prefetches" r.rp_prefetch_instrs;
    let m = r.rp_mem in
    set "mem.demand.loads" m.Hierarchy.st_demand_loads;
    set "mem.demand.stores" m.Hierarchy.st_demand_stores;
    set "l1.miss.demand" m.Hierarchy.st_l1_misses;
    set "l2.miss.demand" m.Hierarchy.st_l2_misses;
    set "l3.miss.demand" m.Hierarchy.st_l3_misses;
    set "dram.lines" m.Hierarchy.st_dram_lines;
    List.iter
      (fun (slug, (p : Hierarchy.pf_stat)) ->
        let pf field v = set ("pf." ^ slug ^ "." ^ field) v in
        pf "issued" p.Hierarchy.p_issued;
        pf "useful" p.Hierarchy.p_useful;
        pf "late" p.Hierarchy.p_late;
        pf "drop.no_mshr" p.Hierarchy.p_drop_mshr;
        pf "drop.present" p.Hierarchy.p_drop_present;
        pf "evicted" p.Hierarchy.p_evicted)
      m.Hierarchy.st_pf;
    (* Load sites sharing a buffer and loop nest merge into one counter
       (several pcs can name the same source site across variants). *)
    List.iter
      (fun om ->
        let op field v =
          Asap_obs.Registry.add reg
            ("op." ^ om.om_buf ^ "@" ^ om.om_loop ^ "." ^ field) v
        in
        op "l1_miss" om.om_l1_miss;
        op "l2_miss" om.om_l2_miss)
      r.rp_op_misses;
    reg

  (** [to_assoc r] is the canonical export: counters sorted by name. *)
  let to_assoc r = Asap_obs.Registry.to_assoc (registry r)

  (** [pp ppf r] prints the registry, one [name value] line per counter. *)
  let pp ppf r = Asap_obs.Registry.pp ppf (registry r)
end

let summary r =
  Printf.sprintf
    "cycles %d | instr %d | loads %d | stores %d | sw-pf %d (drop %d, useful %d) | L2 miss %d | MPKI %.2f"
    (Report.cycles r) (Report.instructions r) (Report.loads r)
    (Report.stores r) (Report.sw_issued r) (Report.sw_dropped r)
    (Report.sw_useful r) (Report.l2_misses r) (l2_mpki r)
