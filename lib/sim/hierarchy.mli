(** The full memory system: per-core L1s, per-cluster L2s with MSHR pools,
    a shared inclusive L3, one DRAM channel, and the Table-2 hardware
    prefetchers observing the demand stream at their levels.

    Fills install tags immediately and park the completion time in the
    cluster's MSHR pool, so later accesses to an in-flight line wait for
    the fill instead of re-requesting it. Demand misses on a full pool
    stall until the earliest completion; prefetches are dropped instead. *)

type t

(** [create ?obs machine] builds a fresh hierarchy (cores and clusters per
    the machine's topology). [obs] (default {!Asap_obs.Sink.null}) receives
    every observable memory-system event; the hierarchy tests its
    [enabled] flag before constructing any event, so a disabled sink costs
    one branch per access. *)
val create : ?obs:Asap_obs.Sink.t -> Machine.t -> t

(** The provenance id of software prefetches in the accuracy counters. *)
val sw_prov : int

(** [load t ~core ~pc ~addr ~at] performs a demand load issued at cycle
    [at]; returns the cycle the data is ready. *)
val load : t -> core:int -> pc:int -> addr:int -> at:int -> int

(** [store t ~core ~pc ~addr ~at] performs a write-allocate store; never
    stalls the core, but misses consume fill bandwidth. *)
val store : t -> core:int -> pc:int -> addr:int -> at:int -> unit

(** [prefetch t ~core ~addr ~locality ~at] performs a software prefetch;
    locality maps to the fill level (3-2 into L1, 1 into L2, 0 into L3). *)
val prefetch : t -> core:int -> addr:int -> locality:int -> at:int -> unit

(** Per-prefetcher lifecycle breakdown (one per provenance id, software
    included). *)
type pf_stat = {
  p_issued : int;
  p_useful : int;
  p_late : int;            (** demand arrived while the fill was in flight *)
  p_drop_mshr : int;       (** dropped: no MSHR free *)
  p_drop_present : int;    (** dropped: line already present or in flight *)
  p_evicted : int;         (** evicted before any demand use *)
}

(** Statistics snapshot for the PMU-style report (paper §4.4). *)
type stats = {
  st_demand_loads : int;
  st_demand_stores : int;
  st_l1_misses : int;
  st_l2_misses : int;          (** went past L2: L3 hit or DRAM *)
  st_l3_misses : int;
  st_dram_lines : int;
  st_sw_issued : int;
  st_sw_dropped : int;
  st_sw_useful : int;
  st_hw_issued : (string * int) list;
  st_hw_useful : (string * int) list;
  st_pf : (string * pf_stat) list;
    (** keyed by counter-name slug ("sw", "l1_ipp", ...), provenance order *)
  st_pc_l1_miss : (int * int) list;
    (** load-miss counts by Ir vid (pc ascending, zero counts omitted) *)
  st_pc_l2_miss : (int * int) list;
}

val stats : t -> stats
