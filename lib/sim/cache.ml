(* Set-associative cache tag store with LRU replacement.

   Only tags are modelled (data correctness is the interpreter's job).
   Each line remembers its provenance — demand fill or the id of the
   prefetcher that brought it in — so prefetch-accuracy counters can tell
   useful prefetches from pollution.

   The per-way metadata ([tag; last_use; prov]) is interleaved in one
   array, one contiguous block per set, rather than kept in three
   parallel arrays: the simulator's own tag state for a large L3 runs to
   hundreds of KiB, so on a random (gather-heavy) access pattern each
   simulated set probe is a cold host-memory touch — with parallel
   arrays it was three. The PR-5 allocation/locality audit measured the
   split layout at ~30% of the whole no-prefetcher miss path. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bits : int;
  block : int;             (* ways * 3: ints of metadata per set *)
  meta : int array;        (* sets*ways*3; per way [tag; last_use; prov],
                              tag -1 = invalid *)
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
  mutable pf_hits : int;   (* demand hits on prefetched lines *)
}

let demand_prov = -1

(* Returned by [lookup] on a miss; distinct from every provenance value
   (demand_prov = -1, prefetcher ids >= 0). *)
let no_hit = -2

(** [line_shift ~line_bytes] is the integer log2 of the line size — the
    shift that turns a byte address into a line address.
    @raise Invalid_argument unless [line_bytes] is a power of two. *)
let line_shift ~line_bytes =
  if line_bytes <= 0 || line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Cache.line_shift: line_bytes not a power of two";
  let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
  go 0 line_bytes

let create ~name ~size_bytes ~ways ~line_bytes =
  let line_bits = line_shift ~line_bytes in
  let lines = size_bytes / line_bytes in
  if lines mod ways <> 0 then invalid_arg "Cache.create: geometry";
  let sets = lines / ways in
  if sets land (sets - 1) <> 0 then invalid_arg "Cache.create: sets not 2^k";
  let meta = Array.make (sets * ways * 3) 0 in
  for w = 0 to (sets * ways) - 1 do
    meta.(3 * w) <- -1;                  (* tag: invalid *)
    meta.((3 * w) + 2) <- demand_prov
  done;
  { name; sets; ways; line_bits; block = ways * 3; meta;
    stamp = 0; hits = 0; misses = 0; pf_hits = 0 }

let set_of t line = (line land (t.sets - 1)) * t.block

(* The scan loops below are top-level functions taking all their state as
   arguments: a local [let rec] capturing variables would allocate a
   closure on every call, and these run on every simulated access. The
   unchecked accesses are in range by construction: [base] is a set base
   from [set_of] and [off] stays below [block], so every index is inside
   the [sets * ways * 3] array. Results are entry indices — the position
   of a way's tag slot; last_use and prov live at +1 and +2. *)

let rec scan_ways (meta : int array) base (line : int) off block =
  if off = block then -1
  else if Array.unsafe_get meta (base + off) = line then base + off
  else scan_ways meta base line (off + 3) block

let rec pick_lru (meta : int array) base off best block =
  if off = block then best
  else
    pick_lru meta base (off + 3)
      (if Array.unsafe_get meta (base + off + 1) < Array.unsafe_get meta (best + 1)
       then base + off
       else best)
      block

(* Entry index of [line]'s tag slot, or -1. *)
let find t line =
  let base = set_of t line in
  scan_ways t.meta base line 0 t.block

(** [lookup t line] checks for [line], updating LRU and hit/miss counters.
    Returns the provenance of the line on a hit, [no_hit] on a miss. This
    runs on every simulated access, hence the int (not option) result. *)
let lookup t line : int =
  t.stamp <- t.stamp + 1;
  let i = find t line in
  if i >= 0 then begin
    t.hits <- t.hits + 1;
    Array.unsafe_set t.meta (i + 1) t.stamp;
    let p = Array.unsafe_get t.meta (i + 2) in
    if p <> demand_prov then begin
      t.pf_hits <- t.pf_hits + 1;
      (* After the first demand use the line counts as demand-resident. *)
      Array.unsafe_set t.meta (i + 2) demand_prov
    end;
    p
  end
  else begin
    t.misses <- t.misses + 1;
    no_hit
  end

(** [probe t line] tests presence without touching LRU or counters. *)
let probe t line = find t line >= 0

(** [insert_evict t line ~prov] installs [line], evicting the LRU way,
    and returns the evicted line's provenance: a prefetcher id when the
    victim was a never-demanded prefetch (its provenance survived because
    [lookup] clears provenance on first demand use), [demand_prov]
    otherwise (demand victim, invalid way, or [line] already present). *)
let insert_evict t line ~prov =
  t.stamp <- t.stamp + 1;
  let i = find t line in
  if i >= 0 then begin
    Array.unsafe_set t.meta (i + 1) t.stamp;
    demand_prov
  end
  else begin
    let base = set_of t line in
    let victim = pick_lru t.meta base 3 base t.block in
    let meta = t.meta in
    let victim_prov =
      if Array.unsafe_get meta victim < 0 then demand_prov
      else Array.unsafe_get meta (victim + 2)
    in
    Array.unsafe_set meta victim line;
    Array.unsafe_set meta (victim + 1) t.stamp;
    Array.unsafe_set meta (victim + 2) prov;
    victim_prov
  end

(** [insert_absent t line ~prov] is [insert_evict] for a line the caller
    has just observed missing (a [lookup]/[probe] miss with nothing in
    between that could install it): skips the presence re-scan, which the
    demand-miss path would otherwise pay at every level it already
    searched. *)
let insert_absent t line ~prov =
  t.stamp <- t.stamp + 1;
  let base = set_of t line in
  let victim = pick_lru t.meta base 3 base t.block in
  let meta = t.meta in
  let victim_prov =
    if Array.unsafe_get meta victim < 0 then demand_prov
    else Array.unsafe_get meta (victim + 2)
  in
  Array.unsafe_set meta victim line;
  Array.unsafe_set meta (victim + 1) t.stamp;
  Array.unsafe_set meta (victim + 2) prov;
  victim_prov

(** [insert t line ~prov] installs [line], evicting the LRU way. No-op if
    already present (refreshes LRU). *)
let insert t line ~prov = ignore (insert_evict t line ~prov)

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.pf_hits <- 0

let accesses t = t.hits + t.misses
