(* Set-associative cache tag store with LRU replacement.

   Only tags are modelled (data correctness is the interpreter's job).
   Each line remembers its provenance — demand fill or the id of the
   prefetcher that brought it in — so prefetch-accuracy counters can tell
   useful prefetches from pollution. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bits : int;
  tags : int array;        (* sets*ways; -1 = invalid, else line address *)
  last_use : int array;    (* LRU stamps *)
  prov : int array;        (* provenance: demand = -1, else prefetcher id *)
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
  mutable pf_hits : int;   (* demand hits on prefetched lines *)
}

let demand_prov = -1

(* Returned by [lookup] on a miss; distinct from every provenance value
   (demand_prov = -1, prefetcher ids >= 0). *)
let no_hit = -2

(** [line_shift ~line_bytes] is the integer log2 of the line size — the
    shift that turns a byte address into a line address.
    @raise Invalid_argument unless [line_bytes] is a power of two. *)
let line_shift ~line_bytes =
  if line_bytes <= 0 || line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Cache.line_shift: line_bytes not a power of two";
  let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
  go 0 line_bytes

let create ~name ~size_bytes ~ways ~line_bytes =
  let line_bits = line_shift ~line_bytes in
  let lines = size_bytes / line_bytes in
  if lines mod ways <> 0 then invalid_arg "Cache.create: geometry";
  let sets = lines / ways in
  if sets land (sets - 1) <> 0 then invalid_arg "Cache.create: sets not 2^k";
  { name; sets; ways; line_bits;
    tags = Array.make (sets * ways) (-1);
    last_use = Array.make (sets * ways) 0;
    prov = Array.make (sets * ways) demand_prov;
    stamp = 0; hits = 0; misses = 0; pf_hits = 0 }

let set_of t line = (line land (t.sets - 1)) * t.ways

(* The scan loops below are top-level functions taking all their state as
   arguments: a local [let rec] capturing variables would allocate a
   closure on every call, and these run on every simulated access. *)

let rec scan_ways (tags : int array) base (line : int) w ways =
  if w = ways then -1
  else if tags.(base + w) = line then base + w
  else scan_ways tags base line (w + 1) ways

let rec pick_lru (last_use : int array) base w best ways =
  if w = ways then best
  else
    pick_lru last_use base (w + 1)
      (if last_use.(base + w) < last_use.(best) then base + w else best)
      ways

(* Way index of [line] or -1. *)
let find t line =
  let base = set_of t line in
  scan_ways t.tags base line 0 t.ways

(** [lookup t line] checks for [line], updating LRU and hit/miss counters.
    Returns the provenance of the line on a hit, [no_hit] on a miss. This
    runs on every simulated access, hence the int (not option) result. *)
let lookup t line : int =
  t.stamp <- t.stamp + 1;
  let i = find t line in
  if i >= 0 then begin
    t.hits <- t.hits + 1;
    t.last_use.(i) <- t.stamp;
    let p = t.prov.(i) in
    if p <> demand_prov then begin
      t.pf_hits <- t.pf_hits + 1;
      (* After the first demand use the line counts as demand-resident. *)
      t.prov.(i) <- demand_prov
    end;
    p
  end
  else begin
    t.misses <- t.misses + 1;
    no_hit
  end

(** [probe t line] tests presence without touching LRU or counters. *)
let probe t line = find t line >= 0

(** [insert_evict t line ~prov] installs [line], evicting the LRU way,
    and returns the evicted line's provenance: a prefetcher id when the
    victim was a never-demanded prefetch (its provenance survived because
    [lookup] clears provenance on first demand use), [demand_prov]
    otherwise (demand victim, invalid way, or [line] already present). *)
let insert_evict t line ~prov =
  t.stamp <- t.stamp + 1;
  let i = find t line in
  if i >= 0 then begin
    t.last_use.(i) <- t.stamp;
    demand_prov
  end
  else begin
    let base = set_of t line in
    let victim = pick_lru t.last_use base 1 base t.ways in
    let victim_prov = if t.tags.(victim) < 0 then demand_prov else t.prov.(victim) in
    t.tags.(victim) <- line;
    t.last_use.(victim) <- t.stamp;
    t.prov.(victim) <- prov;
    victim_prov
  end

(** [insert t line ~prov] installs [line], evicting the LRU way. No-op if
    already present (refreshes LRU). *)
let insert t line ~prov = ignore (insert_evict t line ~prov)

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.pf_hits <- 0

let accesses t = t.hits + t.misses
