(** Set-associative cache tag store with LRU replacement.

    Only tags are modelled (data correctness is the interpreter's job).
    Each line remembers its provenance — demand fill or the id of the
    prefetcher that brought it in — so prefetch-accuracy counters can tell
    useful prefetches from pollution. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bits : int;
  block : int;                 (** ways * 3: ints of metadata per set *)
  meta : int array;
    (** [sets*ways*3]; per way [tag; last_use; prov] interleaved so one
        simulated set probe touches one contiguous host block (tag state
        for a large L3 is hundreds of KiB — three parallel arrays cost
        three cold host-memory touches per random access) *)
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
  mutable pf_hits : int;       (** demand hits on prefetched lines *)
}

(** Provenance value of demand-fetched lines. *)
val demand_prov : int

(** Returned by [lookup] on a miss; distinct from every provenance. *)
val no_hit : int

(** [line_shift ~line_bytes] is the integer log2 of the line size — the
    shift that turns a byte address into a line address.
    @raise Invalid_argument unless [line_bytes] is a power of two. *)
val line_shift : line_bytes:int -> int

(** [create ~name ~size_bytes ~ways ~line_bytes] builds a tag store.
    @raise Invalid_argument unless sets are a power of two. *)
val create : name:string -> size_bytes:int -> ways:int -> line_bytes:int -> t

(** [lookup t line] checks for [line], updating LRU and counters; returns
    the line's provenance on a hit (cleared to demand after first use),
    [no_hit] on a miss. *)
val lookup : t -> int -> int

(** [probe t line] tests presence without touching LRU or counters. *)
val probe : t -> int -> bool

(** [insert t line ~prov] installs [line], evicting the LRU way; refreshes
    LRU if already present. *)
val insert : t -> int -> prov:int -> unit

(** [insert_evict t line ~prov] is [insert] but returns the evicted
    line's provenance: a prefetcher id when the victim was a prefetched
    line that was never demanded, [demand_prov] otherwise. *)
val insert_evict : t -> int -> prov:int -> int

(** [insert_absent t line ~prov] is [insert_evict] for a line the caller
    has just observed missing from [t] (and nothing since the miss could
    have installed it): skips the presence re-scan. *)
val insert_absent : t -> int -> prov:int -> int

val reset_stats : t -> unit
val accesses : t -> int
