(* Closure-compiled execution engine (staged interpretation).

   {!Interp.run} is a tree-walking interpreter: every simulated iteration
   re-pattern-matches each IR statement, re-resolves buffers and element
   widths, and walks carried-value lists with [List.iter2]. This module
   performs that work {e once}, translating an [Ir.func] bound to its
   runtime buffers into a tree of OCaml closures:

   - statement and rvalue dispatch happens at compile time — the simulated
     loop executes an array of direct closure calls;
   - [Load]/[Store]/[Prefetch] bind their {!Runtime.bound} buffer, base
     address, element size and backing array at compile time, so the hot
     paths are plain unboxed array accesses;
   - carried values become preallocated vid arrays copied with a counted
     loop instead of per-iteration list walks;
   - the timing core keeps the ROB slot and the issue-rate quotient
     incrementally, so the per-instruction path allocates nothing (the
     interpreter allocates an [issue] tuple per instruction).

   The engine is a drop-in for {!Interp.run}: same memory port, same
   result type, same traps and faults, and — by construction, checked by
   the differential tests — cycle-exact and value-exact agreement. *)

open Asap_ir

let int_lat = 1
let fp_lat = 3
let st_lat = 1

(* Per-run mutable state threaded through every compiled closure. *)
type state = {
  ienv : int array;
  fenv : float array;
  ready : int array;
  rob : int array;               (* ring of retire times *)
  rob_n : int;
  width : int;
  branch_miss : int;
  mem : Interp.mem;
  mutable icount : int;
  mutable slot : int;            (* icount mod rob_n, kept incrementally *)
  mutable qbase : int;           (* icount / width, kept incrementally *)
  mutable qrem : int;            (* icount mod width *)
  mutable last_retire : int;
  mutable bubble : int;
  mutable flops : int;
  mutable loads : int;
  mutable stores : int;
  mutable pfs : int;
  mutable slice : (int * int) option;  (* pending top-level loop slice *)
}

type code = state -> unit

let[@inline] imax (a : int) (b : int) = if a >= b then a else b

(* Issue time of the next instruction: max(icount/width + bubble, operand
   ready times, retire time of instruction icount - rob_n). Identical to
   Interp's [issue], with the division and modulo replaced by the
   incrementally-maintained [qbase]/[slot]. *)
let[@inline] issue_at st ops_ready =
  imax (st.qbase + st.bubble)
    (imax ops_ready (Array.unsafe_get st.rob st.slot))

let[@inline] retire st completion =
  let r =
    if completion >= st.last_retire then completion else st.last_retire
  in
  Array.unsafe_set st.rob st.slot r;
  st.last_retire <- r;
  st.icount <- st.icount + 1;
  let s = st.slot + 1 in
  st.slot <- (if s = st.rob_n then 0 else s);
  let q = st.qrem + 1 in
  if q = st.width then begin
    st.qrem <- 0;
    st.qbase <- st.qbase + 1
  end
  else st.qrem <- q

let[@inline] simple st lat ops_ready =
  let t = issue_at st ops_ready + lat in
  retire st t;
  t

(* Carried-value plumbing, staged: vids of destinations and sources plus
   per-slot float-ness, copied with a counted loop. *)
type carry = {
  car_dst : int array;
  car_src : int array;
  car_isf : bool array;
}

let carry_of (pairs : (Ir.value * Ir.value) list) : carry =
  let a = Array.of_list pairs in
  { car_dst = Array.map (fun ((d : Ir.value), _) -> d.Ir.vid) a;
    car_src = Array.map (fun (_, (s : Ir.value)) -> s.Ir.vid) a;
    car_isf = Array.map (fun ((d : Ir.value), _) -> d.Ir.vty = Ir.F64) a }

let[@inline] copy_carry st (c : carry) =
  for k = 0 to Array.length c.car_dst - 1 do
    let s = Array.unsafe_get c.car_src k in
    let d = Array.unsafe_get c.car_dst k in
    if Array.unsafe_get c.car_isf k then
      Array.unsafe_set st.fenv d (Array.unsafe_get st.fenv s)
    else Array.unsafe_set st.ienv d (Array.unsafe_get st.ienv s);
    Array.unsafe_set st.ready d (Array.unsafe_get st.ready s)
  done

let seq (cs : code list) : code =
  match cs with
  | [] -> fun _ -> ()
  | [ c0 ] -> c0
  | [ c0; c1 ] -> fun st -> c0 st; c1 st
  | [ c0; c1; c2 ] -> fun st -> c0 st; c1 st; c2 st
  | [ c0; c1; c2; c3 ] -> fun st -> c0 st; c1 st; c2 st; c3 st
  | _ ->
    let a = Array.of_list cs in
    let n = Array.length a in
    fun st ->
      for i = 0 to n - 1 do
        (Array.unsafe_get a i) st
      done

let compile_let (bufs : Runtime.bound array) (v : Ir.value) (rv : Ir.rvalue)
  : code =
  let d = v.Ir.vid in
  match rv with
  | Ir.Const c ->
    (match c with
     | Ir.Cidx x | Ir.Ci64 x ->
       fun st ->
         let t = simple st int_lat 0 in
         st.ienv.(d) <- x;
         st.ready.(d) <- t
     | Ir.Cf64 x ->
       fun st ->
         let t = simple st int_lat 0 in
         st.fenv.(d) <- x;
         st.ready.(d) <- t
     | Ir.Cbool b ->
       let x = if b then 1 else 0 in
       fun st ->
         let t = simple st int_lat 0 in
         st.ienv.(d) <- x;
         st.ready.(d) <- t)
  | Ir.Ibin (op, a, b) ->
    let ai = a.Ir.vid and bi = b.Ir.vid in
    let bin (f : int -> int -> int) : code =
      fun st ->
        let t = simple st int_lat (imax st.ready.(ai) st.ready.(bi)) in
        st.ienv.(d) <- f st.ienv.(ai) st.ienv.(bi);
        st.ready.(d) <- t
    in
    (match op with
     | Ir.Iadd ->
       fun st ->
         let t = simple st int_lat (imax st.ready.(ai) st.ready.(bi)) in
         st.ienv.(d) <- st.ienv.(ai) + st.ienv.(bi);
         st.ready.(d) <- t
     | Ir.Isub ->
       fun st ->
         let t = simple st int_lat (imax st.ready.(ai) st.ready.(bi)) in
         st.ienv.(d) <- st.ienv.(ai) - st.ienv.(bi);
         st.ready.(d) <- t
     | Ir.Imul ->
       fun st ->
         let t = simple st int_lat (imax st.ready.(ai) st.ready.(bi)) in
         st.ienv.(d) <- st.ienv.(ai) * st.ienv.(bi);
         st.ready.(d) <- t
     | Ir.Idiv ->
       bin (fun a b ->
           if b = 0 then raise (Interp.Trap "division by zero") else a / b)
     | Ir.Irem ->
       bin (fun a b ->
           if b = 0 then raise (Interp.Trap "rem by zero") else a mod b)
     | Ir.Imin -> bin (fun a b -> if a <= b then a else b)
     | Ir.Imax -> bin (fun a b -> if a >= b then a else b)
     | Ir.Iand -> bin ( land )
     | Ir.Ior -> bin ( lor )
     | Ir.Ixor -> bin ( lxor )
     | Ir.Ishl -> bin ( lsl ))
  | Ir.Fbin (op, a, b) ->
    let ai = a.Ir.vid and bi = b.Ir.vid in
    (* Each operator gets its own closure so the float path stays unboxed
       (a shared [float -> float -> float] callee would box). *)
    (match op with
     | Ir.Fadd ->
       fun st ->
         st.flops <- st.flops + 1;
         let t = simple st fp_lat (imax st.ready.(ai) st.ready.(bi)) in
         st.fenv.(d) <- st.fenv.(ai) +. st.fenv.(bi);
         st.ready.(d) <- t
     | Ir.Fsub ->
       fun st ->
         st.flops <- st.flops + 1;
         let t = simple st fp_lat (imax st.ready.(ai) st.ready.(bi)) in
         st.fenv.(d) <- st.fenv.(ai) -. st.fenv.(bi);
         st.ready.(d) <- t
     | Ir.Fmul ->
       fun st ->
         st.flops <- st.flops + 1;
         let t = simple st fp_lat (imax st.ready.(ai) st.ready.(bi)) in
         st.fenv.(d) <- st.fenv.(ai) *. st.fenv.(bi);
         st.ready.(d) <- t
     | Ir.Fdiv ->
       fun st ->
         st.flops <- st.flops + 1;
         let t = simple st fp_lat (imax st.ready.(ai) st.ready.(bi)) in
         st.fenv.(d) <- st.fenv.(ai) /. st.fenv.(bi);
         st.ready.(d) <- t
     | Ir.Fmin ->
       fun st ->
         st.flops <- st.flops + 1;
         let t = simple st fp_lat (imax st.ready.(ai) st.ready.(bi)) in
         st.fenv.(d) <- Float.min st.fenv.(ai) st.fenv.(bi);
         st.ready.(d) <- t
     | Ir.Fmax ->
       fun st ->
         st.flops <- st.flops + 1;
         let t = simple st fp_lat (imax st.ready.(ai) st.ready.(bi)) in
         st.fenv.(d) <- Float.max st.fenv.(ai) st.fenv.(bi);
         st.ready.(d) <- t)
  | Ir.Icmp (pred, a, b) ->
    let ai = a.Ir.vid and bi = b.Ir.vid in
    let cmp (f : int -> int -> bool) : code =
      fun st ->
        let t = simple st int_lat (imax st.ready.(ai) st.ready.(bi)) in
        st.ienv.(d) <- (if f st.ienv.(ai) st.ienv.(bi) then 1 else 0);
        st.ready.(d) <- t
    in
    (* Indices and sizes are non-negative throughout, so signed and
       unsigned orders coincide (as in Interp). *)
    (match pred with
     | Ir.Eq -> cmp (fun a b -> a = b)
     | Ir.Ne -> cmp (fun a b -> a <> b)
     | Ir.Ult | Ir.Slt -> cmp (fun a b -> a < b)
     | Ir.Ule | Ir.Sle -> cmp (fun a b -> a <= b)
     | Ir.Ugt | Ir.Sgt -> cmp (fun a b -> a > b)
     | Ir.Uge | Ir.Sge -> cmp (fun a b -> a >= b))
  | Ir.Select (c, a, b) ->
    let ci = c.Ir.vid and ai = a.Ir.vid and bi = b.Ir.vid in
    if v.Ir.vty = Ir.F64 then
      fun st ->
        let t =
          simple st int_lat
            (imax st.ready.(ci) (imax st.ready.(ai) st.ready.(bi)))
        in
        st.fenv.(d) <- (if st.ienv.(ci) <> 0 then st.fenv.(ai) else st.fenv.(bi));
        st.ready.(d) <- t
    else
      fun st ->
        let t =
          simple st int_lat
            (imax st.ready.(ci) (imax st.ready.(ai) st.ready.(bi)))
        in
        st.ienv.(d) <- (if st.ienv.(ci) <> 0 then st.ienv.(ai) else st.ienv.(bi));
        st.ready.(d) <- t
  | Ir.Load (buf, idx) ->
    let b = bufs.(buf.Ir.bid) in
    let base = b.Runtime.base and eb = b.Runtime.ebytes in
    let ix = idx.Ir.vid and bname = buf.Ir.bname in
    (* The memory port observes the (possibly out-of-bounds) address
       before the bounds check faults, exactly as in Interp. *)
    (match b.Runtime.data with
     | Runtime.RI a ->
       let n = Array.length a in
       fun st ->
         st.loads <- st.loads + 1;
         let i = st.ienv.(ix) in
         let t = issue_at st st.ready.(ix) in
         let done_at =
           st.mem.Interp.m_load ~pc:d ~addr:(base + (i * eb)) ~at:t
         in
         retire st done_at;
         if i < 0 || i >= n then
           Runtime.fault "load %s[%d] out of bounds [0, %d)" bname i n;
         st.ienv.(d) <- Array.unsafe_get a i;
         st.ready.(d) <- done_at
     | Runtime.RF a ->
       let n = Array.length a in
       fun st ->
         st.loads <- st.loads + 1;
         let i = st.ienv.(ix) in
         let t = issue_at st st.ready.(ix) in
         let done_at =
           st.mem.Interp.m_load ~pc:d ~addr:(base + (i * eb)) ~at:t
         in
         retire st done_at;
         if i < 0 || i >= n then
           Runtime.fault "load %s[%d] out of bounds [0, %d)" bname i n;
         st.fenv.(d) <- Array.unsafe_get a i;
         st.ready.(d) <- done_at
     | Runtime.RB s ->
       let n = Bytes.length s in
       fun st ->
         st.loads <- st.loads + 1;
         let i = st.ienv.(ix) in
         let t = issue_at st st.ready.(ix) in
         let done_at =
           st.mem.Interp.m_load ~pc:d ~addr:(base + (i * eb)) ~at:t
         in
         retire st done_at;
         if i < 0 || i >= n then
           Runtime.fault "load %s[%d] out of bounds [0, %d)" bname i n;
         st.ienv.(d) <- Bytes.get_uint8 s i;
         st.ready.(d) <- done_at)
  | Ir.Dim buf ->
    let n = Runtime.length_of bufs.(buf.Ir.bid).Runtime.data in
    fun st ->
      let t = simple st int_lat 0 in
      st.ienv.(d) <- n;
      st.ready.(d) <- t
  | Ir.Cast (ty, x) ->
    let xi = x.Ir.vid in
    (match (ty, x.Ir.vty) with
     | Ir.F64, (Ir.Index | Ir.I64 | Ir.I1) ->
       fun st ->
         let t = simple st int_lat st.ready.(xi) in
         st.fenv.(d) <- float_of_int st.ienv.(xi);
         st.ready.(d) <- t
     | (Ir.Index | Ir.I64 | Ir.I1), Ir.F64 ->
       fun st ->
         let t = simple st int_lat st.ready.(xi) in
         st.ienv.(d) <- int_of_float st.fenv.(xi);
         st.ready.(d) <- t
     | _, _ ->
       if v.Ir.vty = Ir.F64 then
         fun st ->
           let t = simple st int_lat st.ready.(xi) in
           st.fenv.(d) <- st.fenv.(xi);
           st.ready.(d) <- t
       else
         fun st ->
           let t = simple st int_lat st.ready.(xi) in
           st.ienv.(d) <- st.ienv.(xi);
           st.ready.(d) <- t)

let rec compile_stmt (bufs : Runtime.bound array) ~top (s : Ir.stmt) : code =
  match s with
  | Ir.Let (v, rv) -> compile_let bufs v rv
  | Ir.Store (buf, idx, v) ->
    let b = bufs.(buf.Ir.bid) in
    let pc = buf.Ir.bid lor 0x10000 in
    let base = b.Runtime.base and eb = b.Runtime.ebytes in
    let ix = idx.Ir.vid and sv = v.Ir.vid in
    let bname = buf.Ir.bname in
    (match (b.Runtime.data, v.Ir.vty = Ir.F64) with
     | Runtime.RF a, true ->
       let n = Array.length a in
       fun st ->
         st.stores <- st.stores + 1;
         let i = st.ienv.(ix) in
         let t = issue_at st (imax st.ready.(ix) st.ready.(sv)) in
         st.mem.Interp.m_store ~pc ~addr:(base + (i * eb)) ~at:t;
         retire st (t + st_lat);
         if i < 0 || i >= n then
           Runtime.fault "store %s[%d] out of bounds [0, %d)" bname i n;
         Array.unsafe_set a i st.fenv.(sv)
     | Runtime.RI a, false ->
       let n = Array.length a in
       fun st ->
         st.stores <- st.stores + 1;
         let i = st.ienv.(ix) in
         let t = issue_at st (imax st.ready.(ix) st.ready.(sv)) in
         st.mem.Interp.m_store ~pc ~addr:(base + (i * eb)) ~at:t;
         retire st (t + st_lat);
         if i < 0 || i >= n then
           Runtime.fault "store %s[%d] out of bounds [0, %d)" bname i n;
         Array.unsafe_set a i st.ienv.(sv)
     | Runtime.RB s, false ->
       let n = Bytes.length s in
       fun st ->
         st.stores <- st.stores + 1;
         let i = st.ienv.(ix) in
         let t = issue_at st (imax st.ready.(ix) st.ready.(sv)) in
         st.mem.Interp.m_store ~pc ~addr:(base + (i * eb)) ~at:t;
         retire st (t + st_lat);
         if i < 0 || i >= n then
           Runtime.fault "store %s[%d] out of bounds [0, %d)" bname i n;
         Bytes.set_uint8 s i (st.ienv.(sv) land 0xff)
     | (Runtime.RF _ | Runtime.RI _ | Runtime.RB _), isf ->
       (* Kind mismatch: defer to Runtime.write for the same fault. *)
       fun st ->
         st.stores <- st.stores + 1;
         let i = st.ienv.(ix) in
         let t = issue_at st (imax st.ready.(ix) st.ready.(sv)) in
         st.mem.Interp.m_store ~pc ~addr:(base + (i * eb)) ~at:t;
         retire st (t + st_lat);
         Runtime.write b i
           (if isf then `F st.fenv.(sv) else `I st.ienv.(sv)))
  | Ir.Prefetch p ->
    let b = bufs.(p.Ir.pbuf.Ir.bid) in
    let base = b.Runtime.base and eb = b.Runtime.ebytes in
    let ix = p.Ir.pidx.Ir.vid and loc = p.Ir.plocality in
    fun st ->
      st.pfs <- st.pfs + 1;
      let i = st.ienv.(ix) in
      let t = issue_at st st.ready.(ix) in
      st.mem.Interp.m_prefetch ~addr:(base + (i * eb)) ~locality:loc ~at:t;
      retire st (t + 1)
  | Ir.For f ->
    let body = compile_block bufs ~top:false f.Ir.f_body in
    let ivd = f.Ir.f_iv.Ir.vid in
    let lo = f.Ir.f_lo.Ir.vid and hi = f.Ir.f_hi.Ir.vid in
    let stp = f.Ir.f_step.Ir.vid in
    let init_c = carry_of f.Ir.f_carried in
    let yield_c =
      carry_of
        (List.map2 (fun (arg, _) y -> (arg, y)) f.Ir.f_carried f.Ir.f_yield)
    in
    let res_c =
      carry_of
        (List.map2 (fun r (arg, _) -> (r, arg)) f.Ir.f_results f.Ir.f_carried)
    in
    fun st ->
      let lo0 = st.ienv.(lo) and hi0 = st.ienv.(hi) in
      let step = st.ienv.(stp) in
      if step <= 0 then raise (Interp.Trap "non-positive loop step");
      let lov, hiv =
        if top then (
          match st.slice with
          | Some (slo, shi) ->
            st.slice <- None;
            (imax lo0 slo, (if hi0 <= shi then hi0 else shi))
          | None -> (lo0, hi0))
        else (lo0, hi0)
      in
      copy_carry st init_c;
      let riv = ref (imax st.ready.(lo) st.ready.(hi)) in
      let i = ref lov in
      while !i < hiv do
        st.ienv.(ivd) <- !i;
        st.ready.(ivd) <- !riv;
        (* Loop overhead: induction update + compare-and-branch. *)
        let (_ : int) = simple st int_lat !riv in
        let (_ : int) = simple st int_lat !riv in
        body st;
        copy_carry st yield_c;
        riv := !riv + 1;
        i := !i + step
      done;
      st.bubble <- st.bubble + st.branch_miss;
      copy_carry st res_c
  | Ir.While w ->
    let cond = compile_block bufs ~top:false w.Ir.w_cond in
    let body = compile_block bufs ~top:false w.Ir.w_body in
    let cv = w.Ir.w_cond_v.Ir.vid in
    let init_c = carry_of w.Ir.w_carried in
    let yield_c =
      carry_of
        (List.map2 (fun (arg, _) y -> (arg, y)) w.Ir.w_carried w.Ir.w_yield)
    in
    let res_c =
      carry_of
        (List.map2 (fun r (arg, _) -> (r, arg)) w.Ir.w_results w.Ir.w_carried)
    in
    fun st ->
      copy_carry st init_c;
      let continue_ = ref true in
      while !continue_ do
        cond st;
        let (_ : int) = simple st int_lat st.ready.(cv) in
        if st.ienv.(cv) <> 0 then begin
          body st;
          copy_carry st yield_c
        end
        else continue_ := false
      done;
      st.bubble <- st.bubble + st.branch_miss;
      copy_carry st res_c
  | Ir.If (c, then_, else_) ->
    let tc = compile_block bufs ~top:false then_ in
    let ec = compile_block bufs ~top:false else_ in
    let cv = c.Ir.vid in
    fun st ->
      let (_ : int) = simple st int_lat st.ready.(cv) in
      if st.ienv.(cv) <> 0 then tc st else ec st

and compile_block bufs ~top (blk : Ir.block) : code =
  seq (List.map (compile_stmt bufs ~top) blk)

type compiled = {
  c_fn : Ir.func;
  c_entry : code;
}

(** [compile fn ~bufs] stages [fn] over the bound buffer array (as
    produced by {!Runtime.layout}) into a closure tree. The result is
    reusable across runs — slices, scalars and the memory port bind at
    {!run} time. *)
let compile (fn : Ir.func) ~(bufs : Runtime.bound array) : compiled =
  { c_fn = fn; c_entry = compile_block bufs ~top:true fn.Ir.fn_body }

(* Scalar-parameter binding, identical traps to Interp. *)
let rec bind_scalars ienv params values =
  match (params, values) with
  | [], [] -> ()
  | Ir.Pbuf _ :: ps, vs -> bind_scalars ienv ps vs
  | Ir.Pscalar (v : Ir.value) :: ps, x :: vs ->
    ienv.(v.Ir.vid) <- x;
    bind_scalars ienv ps vs
  | Ir.Pscalar v :: _, [] ->
    raise (Interp.Trap ("missing scalar argument for " ^ v.Ir.vname))
  | [], _ :: _ -> raise (Interp.Trap "too many scalar arguments")

let run ?slice ?(width = 3) ?(rob_size = 64) ?(branch_miss = 6)
    (c : compiled) ~(scalars : int list) ~(mem : Interp.mem)
  : Interp.result =
  let n = c.c_fn.Ir.fn_nvalues in
  let st =
    { ienv = Array.make n 0;
      fenv = Array.make n 0.;
      ready = Array.make n 0;
      rob = Array.make rob_size 0;
      rob_n = rob_size;
      width;
      branch_miss;
      mem;
      icount = 0; slot = 0; qbase = 0; qrem = 0;
      last_retire = 0; bubble = 0;
      flops = 0; loads = 0; stores = 0; pfs = 0;
      slice }
  in
  bind_scalars st.ienv c.c_fn.Ir.fn_params scalars;
  c.c_entry st;
  { Interp.r_cycles = st.last_retire;
    r_instructions = st.icount;
    r_flops = st.flops;
    r_loads = st.loads;
    r_stores = st.stores;
    r_prefetches = st.pfs }
