(** Ahead-of-time kernel specialization (ROADMAP item 3).

    Rewrites a post-pipeline function against the runtime facts that are
    constant for a built artefact — scalar parameter values (dimension
    extents, dense inner extents, BSR block shapes) and the tuned
    prefetch distance — folding the constants through the body, fully
    unrolling small constant-trip loops, stripping prefetch hooks a zero
    distance makes dead, and sweeping the dead feeder arithmetic.

    The specialized function keeps the generic parameter signature (the
    bound scalar values are simply no longer read) and is re-verified.
    Its virtual timing legitimately improves on the generic function but
    stays identical across all three engines, which the differential
    suite enforces; value results are bit-identical to the generic
    function (operation order is preserved). *)

open Asap_ir

type facts = {
  f_scalars : int list;     (** values for the [Pscalar] params, in order *)
  f_distance : int option;  (** tuned prefetch distance; [Some 0] strips *)
  f_unroll_cap : int;       (** max constant trip count to fully unroll *)
}

(** Default full-unroll trip-count cap (32). *)
val default_unroll_cap : int

(** [make ?distance ?unroll_cap ~scalars ()] bundles the facts. *)
val make : ?distance:int -> ?unroll_cap:int -> scalars:int list -> unit -> facts

type stats = {
  sp_params : int;             (** scalar params materialised *)
  sp_folded : int;             (** constants folded (both passes) *)
  sp_clamps : int;             (** BSR edge clamps proven away (the
                                   extent-divisible-by-block-side case) *)
  sp_unrolled : int;           (** loops fully unrolled *)
  sp_iterations : int;         (** iterations expanded by the unroller *)
  sp_dce : int;                (** dead pure lets removed *)
  sp_prefetch_stripped : int;  (** prefetch hooks stripped *)
}

(** [fingerprint ~kernel ~format ~pipeline ~tuned ~shape] is the cache
    key of a specialized artefact: kernel x format x canonical pipeline
    spec x tuned config x shape class. Distinct shapes yield distinct
    keys, so streaming updates that change the shape class miss and
    rebuild. *)
val fingerprint :
  kernel:string -> format:string -> pipeline:string -> tuned:string ->
  shape:int array -> string

(** [apply facts fn] is the specialized function and what the rewrite
    did. Raises [Invalid_argument] if [facts.f_scalars] does not match
    the function's scalar parameter count or the rewrite breaks the IR
    (verifier-checked). *)
val apply : facts -> Ir.func -> Ir.func * stats
