(** Miss Status Holding Registers: the pool of outstanding fills.

    A demand miss to an in-flight line merges with it. When the pool is
    full, demand misses wait for the earliest completion while prefetches
    are dropped — the resource behaviour the paper's §4.1 argument relies
    on.

    The pool is consulted on every simulated memory access, so the API is
    allocation-free: [find] and [earliest] return completion cycles
    directly, with -1 meaning "absent". Completion times must be
    positive. *)

type t = {
  cap : int;
  lines : int array;           (** line addresses of in-flight fills *)
  dones : int array;           (** their completion cycles (always > 0) *)
  provs : int array;           (** provenance of each fill; -1 = demand *)
  mutable used : int;
  mutable min_done : int;      (** exact min of live [dones]; [max_int] when empty *)
  mutable mask : int;          (** hashed-presence summary of live lines:
                                   a cleared bit proves absence, letting
                                   {!find} skip the scan *)
  mutable drops : int;
}

val create : int -> t

(** [expire t ~now] retires entries whose fill completed by [now]. *)
val expire : t -> now:int -> unit

(** [find t line] is the completion time of an in-flight fill of [line],
    or -1 if none is in flight. *)
val find : t -> int -> int

val full : t -> bool

(** [earliest t] is the soonest completion among in-flight fills, or -1
    when the pool is empty. *)
val earliest : t -> int

(** [take_prov t line] is the provenance of the in-flight fill of [line]
    (-1 for demand fills or when nothing is in flight); clears it so the
    same fill is attributed at most once. *)
val take_prov : t -> int -> int

(** [add ~prov t line done_at] registers a fill ([prov] is -1 for demand
    fills, else the prefetcher's provenance id — required, because an
    optional argument would box a [Some] per miss); the pool must not be
    full and [done_at] must be positive. *)
val add : prov:int -> t -> int -> int -> unit

val reset : t -> unit
