(* Ahead-of-time kernel specialization (ROADMAP item 3).

   [apply] takes the post-pipeline [Ir.func] plus the runtime facts that
   are constant for a given built artefact — the scalar parameter values
   (dimension extents, dense inner extents, BSR block shapes in block
   units) and the tuned prefetch distance — and rewrites the function
   into a shape-specialized form:

   - scalar parameters are materialised as entry-block constants and
     every use constant-folded ({!Asap_ir.Fold}), so the ASaP hook's
     entry sequence [max 1 (dist / max 1 inner_extent)] collapses to a
     literal and address arithmetic against known extents folds away;
   - loops whose trip count becomes a known small constant — the dense
     inner loops of SpMM/SDDMM, the bh x bw BSR block loops — are fully
     unrolled, removing the two per-iteration loop-overhead events, the
     entry guard, and the exit branch-mispredict bubble the timing model
     charges per loop entry;
   - prefetch hooks are stripped when the tuned distance resolves to 0
     (a distance-0 hook only burns issue slots);
   - dead pure lets (the folded distance arithmetic, unused induction
     constants) are swept by a fixpoint DCE that keeps anything that can
     fault or touch memory (loads, unfolded div/rem).

   The specialized function binds the same scalar parameters as the
   generic one (callers' argument lists are unchanged; the bound values
   are simply no longer read) and is re-verified. Its virtual timing
   legitimately differs from the generic function — that is the point —
   but is identical across all three engines for the same specialized
   IR, which the differential suite enforces. The bytecode backend
   additionally recognises constant loop bounds in the specialized
   stream ({!Bytecode.compile} [~spec:true]): baked bound immediates and
   known-taken entry tests cut host dispatch work while issuing exactly
   the same timing events. *)

open Asap_ir

(* --- Facts ----------------------------------------------------------- *)

type facts = {
  f_scalars : int list;    (* values for the Pscalar params, in order *)
  f_distance : int option; (* tuned prefetch distance; [Some 0] strips *)
  f_unroll_cap : int;      (* max constant trip count to fully unroll *)
}

(* BSR blocks are at most a cache line (8 f64) per side in practice and
   the dense SpMM/SDDMM inner extents the suite uses are 8–16; 32 covers
   them all while keeping worst-case code growth bounded. *)
let default_unroll_cap = 32

let make ?distance ?(unroll_cap = default_unroll_cap) ~scalars () =
  { f_scalars = scalars; f_distance = distance; f_unroll_cap = unroll_cap }

type stats = {
  sp_params : int;             (* scalar params materialised *)
  sp_folded : int;             (* constants folded (both passes) *)
  sp_clamps : int;             (* block edge clamps eliminated *)
  sp_unrolled : int;           (* loops fully unrolled *)
  sp_iterations : int;         (* iterations expanded by the unroller *)
  sp_dce : int;                (* dead pure lets removed *)
  sp_prefetch_stripped : int;  (* prefetch hooks stripped *)
}

(* --- Specialization fingerprint -------------------------------------- *)

(* The cache key for a specialized artefact: everything the specialized
   stream depends on. Kernel and format fix the loop structure, the
   canonical pipeline spec fixes the pass tail, the tuned config fixes
   the folded distance, and the shape class fixes every materialised
   extent. Streaming updates that change the shape class therefore miss
   this key and rebuild. *)
let fingerprint ~kernel ~format ~pipeline ~tuned ~shape =
  let dims =
    String.concat "x" (List.map string_of_int (Array.to_list shape))
  in
  String.concat "|" [ "spec"; kernel; format; pipeline; tuned; dims ]

(* --- Fresh-vid allocation and use rewriting --------------------------- *)

type alloc = { mutable next : int }

let fresh (a : alloc) vname vty =
  let v = { Ir.vid = a.next; vname; vty } in
  a.next <- a.next + 1;
  v

(* Rewrite every value *use* through [look]; definitions keep their
   vids. Region arguments and results are definitions; loop bounds,
   carried inits, yields and condition values are uses. *)
let map_uses_rv look = function
  | Ir.Const _ as r -> r
  | Ir.Ibin (op, x, y) -> Ir.Ibin (op, look x, look y)
  | Ir.Fbin (op, x, y) -> Ir.Fbin (op, look x, look y)
  | Ir.Icmp (p, x, y) -> Ir.Icmp (p, look x, look y)
  | Ir.Select (c, x, y) -> Ir.Select (look c, look x, look y)
  | Ir.Load (buf, i) -> Ir.Load (buf, look i)
  | Ir.Dim _ as r -> r
  | Ir.Cast (t, x) -> Ir.Cast (t, look x)

let rec map_uses_block look b = List.map (map_uses_stmt look) b

and map_uses_stmt look = function
  | Ir.Let (v, rv) -> Ir.Let (v, map_uses_rv look rv)
  | Ir.Store (buf, i, v) -> Ir.Store (buf, look i, look v)
  | Ir.Prefetch p -> Ir.Prefetch { p with Ir.pidx = look p.Ir.pidx }
  | Ir.For f ->
    Ir.For
      { f with
        Ir.f_lo = look f.Ir.f_lo;
        f_hi = look f.Ir.f_hi;
        f_step = look f.Ir.f_step;
        f_carried = List.map (fun (arg, init) -> (arg, look init)) f.Ir.f_carried;
        f_body = map_uses_block look f.Ir.f_body;
        f_yield = List.map look f.Ir.f_yield }
  | Ir.While w ->
    Ir.While
      { w with
        Ir.w_carried =
          List.map (fun (arg, init) -> (arg, look init)) w.Ir.w_carried;
        w_cond = map_uses_block look w.Ir.w_cond;
        w_cond_v = look w.Ir.w_cond_v;
        w_body = map_uses_block look w.Ir.w_body;
        w_yield = List.map look w.Ir.w_yield }
  | Ir.If (c, t, e) ->
    Ir.If (look c, map_uses_block look t, map_uses_block look e)

(* Clone a block with fresh vids for every value it defines, applying
   [sub] (iteration-local: induction variable, carried args, body defs)
   then [rsub] (results of previously expanded loops) to uses. SSA ids
   are globally unique, so one flat substitution table needs no scope
   tracking (same scheme as the unroll pass). *)
let clone_body (a : alloc) rsub sub blk =
  let look (v : Ir.value) =
    match Hashtbl.find_opt sub v.Ir.vid with
    | Some v' -> v'
    | None -> (
      match Hashtbl.find_opt rsub v.Ir.vid with Some v' -> v' | None -> v)
  in
  let def (v : Ir.value) =
    let v' = fresh a v.Ir.vname v.Ir.vty in
    Hashtbl.replace sub v.Ir.vid v';
    v'
  in
  let rec go_block b = List.map go_stmt b
  and go_stmt = function
    | Ir.Let (v, rv) ->
      let rv' = map_uses_rv look rv in
      Ir.Let (def v, rv')
    | Ir.Store (buf, i, v) -> Ir.Store (buf, look i, look v)
    | Ir.Prefetch p -> Ir.Prefetch { p with Ir.pidx = look p.Ir.pidx }
    | Ir.For f ->
      (* Unreachable from the unroller (bodies are loop-free by then)
         but kept total for safety. *)
      let f_lo = look f.Ir.f_lo
      and f_hi = look f.Ir.f_hi
      and f_step = look f.Ir.f_step in
      let inits = List.map (fun (_, init) -> look init) f.Ir.f_carried in
      let f_iv = def f.Ir.f_iv in
      let f_carried =
        List.map2 (fun (arg, _) init -> (def arg, init)) f.Ir.f_carried inits
      in
      let f_body = go_block f.Ir.f_body in
      let f_yield = List.map look f.Ir.f_yield in
      let f_results = List.map def f.Ir.f_results in
      Ir.For { f with Ir.f_iv; f_lo; f_hi; f_step; f_carried; f_results;
               f_body; f_yield }
    | Ir.While w ->
      let inits = List.map (fun (_, init) -> look init) w.Ir.w_carried in
      let w_carried =
        List.map2 (fun (arg, _) init -> (def arg, init)) w.Ir.w_carried inits
      in
      let w_cond = go_block w.Ir.w_cond in
      let w_cond_v = look w.Ir.w_cond_v in
      let w_body = go_block w.Ir.w_body in
      let w_yield = List.map look w.Ir.w_yield in
      let w_results = List.map def w.Ir.w_results in
      Ir.While { w with Ir.w_carried; w_results; w_cond; w_cond_v; w_body;
                 w_yield }
    | Ir.If (c, t, e) -> Ir.If (look c, go_block t, go_block e)
  in
  go_block blk

let const_of_ty vty k =
  match vty with
  | Ir.Index -> Ir.Cidx k
  | Ir.I64 -> Ir.Ci64 k
  | Ir.I1 -> Ir.Cbool (k <> 0)
  | Ir.F64 -> invalid_arg "Specialize: float induction variable"

(* --- Block-clamp elimination ----------------------------------------- *)

(* The blocked (BSR) emitter guards each micro loop with an edge clamp:
   rext = min(bh, rows - ib*bh) and cext = min(bw, cols - jb*bw), so the
   last partial block row/column iterates short. Plain folding cannot
   remove these — they depend on the block index — but once the extents
   are materialised the clamp is provably the block side whenever the
   side divides the extent: the row clamp's block index is the enclosing
   loop's induction variable with constant range [0, rows/bh), and the
   column clamp's is a block coordinate loaded from packed storage,
   which {!Asap_tensor.Storage.pack} keeps below cols/bw by construction
   (the same well-formedness the generic program's value space already
   relies on). With the clamps gone the micro loops get literal trip
   counts and the unroller takes them. The pattern — min(s, e - x*s)
   with both s uses the same literal and s | e — only arises in blocked
   emission; prefetch clamps and slice guards have different shapes. *)
let eliminate_block_clamps body =
  let consts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let defs : (int, Ir.rvalue) Hashtbl.t = Hashtbl.create 256 in
  let ranges : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let n = ref 0 in
  let const_of (v : Ir.value) = Hashtbl.find_opt consts v.Ir.vid in
  (* [x] provably stays below [bound]: an induction variable whose
     constant range fits, or a packed block coordinate (Load). *)
  let bounded (x : Ir.value) bound =
    match Hashtbl.find_opt ranges x.Ir.vid with
    | Some (lo, hi) -> lo >= 0 && hi <= bound
    | None -> (
      match Hashtbl.find_opt defs x.Ir.vid with
      | Some (Ir.Load _) -> true
      | _ -> false)
  in
  (* min(s, e - x*s), either operand order on the min and the mul. *)
  let clamp_side (cand : Ir.value) (other : Ir.value) =
    match (const_of cand, Hashtbl.find_opt defs other.Ir.vid) with
    | Some s, Some (Ir.Ibin (Ir.Isub, e_v, m_v)) when s > 0 -> (
      match (const_of e_v, Hashtbl.find_opt defs m_v.Ir.vid) with
      | Some e, Some (Ir.Ibin (Ir.Imul, x, s_v))
        when e mod s = 0 && const_of s_v = Some s && bounded x (e / s) ->
        Some s
      | Some e, Some (Ir.Ibin (Ir.Imul, s_v, x))
        when e mod s = 0 && const_of s_v = Some s && bounded x (e / s) ->
        Some s
      | _ -> None)
    | _ -> None
  in
  let rewrite (v : Ir.value) rv =
    match rv with
    | Ir.Ibin (Ir.Imin, p, q) -> (
      match
        (match clamp_side p q with Some s -> Some s | None -> clamp_side q p)
      with
      | Some s ->
        incr n;
        Ir.Const (const_of_ty v.Ir.vty s)
      | None -> rv)
    | _ -> rv
  in
  let rec go_block b = List.map go_stmt b
  and go_stmt = function
    | Ir.Let (v, rv) ->
      let rv = rewrite v rv in
      Hashtbl.replace defs v.Ir.vid rv;
      (match rv with
       | Ir.Const (Ir.Cidx k | Ir.Ci64 k) -> Hashtbl.replace consts v.Ir.vid k
       | _ -> ());
      Ir.Let (v, rv)
    | Ir.For f ->
      (match (const_of f.Ir.f_lo, const_of f.Ir.f_hi, const_of f.Ir.f_step)
       with
       | Some lo, Some hi, Some step when step > 0 && lo >= 0 ->
         (* The iv's last value is lo + floor((hi-lo-1)/step)*step < hi. *)
         Hashtbl.replace ranges f.Ir.f_iv.Ir.vid (lo, hi)
       | _ -> ());
      Ir.For { f with Ir.f_body = go_block f.Ir.f_body }
    | Ir.While w ->
      Ir.While
        { w with Ir.w_cond = go_block w.Ir.w_cond;
          w_body = go_block w.Ir.w_body }
    | Ir.If (c, t, e) -> Ir.If (c, go_block t, go_block e)
    | (Ir.Store _ | Ir.Prefetch _) as s -> s
  in
  let b = go_block body in
  (b, !n)

(* --- Constant-trip full unrolling ------------------------------------ *)

let rec loop_free b =
  List.for_all
    (function
      | Ir.For _ | Ir.While _ -> false
      | Ir.If (_, t, e) -> loop_free t && loop_free e
      | Ir.Let _ | Ir.Store _ | Ir.Prefetch _ -> true)
    b

(* Walk the body bottom-up expanding every non-top [For] whose bounds
   are literal constants and whose trip count is within [cap]. Loop
   results are substituted with the final carried values via [rsub],
   which the rest of the walk applies to all later uses. Top-level loops
   are kept: they own slice handling (profiling and the dense-outer
   parallel path restrict their range at run time). *)
let unroll_const_loops (a : alloc) cap body =
  let consts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rsub : (int, Ir.value) Hashtbl.t = Hashtbl.create 16 in
  let n_unrolled = ref 0 and n_iters = ref 0 in
  let look (v : Ir.value) =
    match Hashtbl.find_opt rsub v.Ir.vid with Some v' -> v' | None -> v
  in
  let const_of (v : Ir.value) = Hashtbl.find_opt consts v.Ir.vid in
  let rec go_block ~top b = List.concat_map (go_stmt ~top) b
  and go_stmt ~top = function
    | Ir.Let (v, rv) ->
      let rv' = map_uses_rv look rv in
      (match rv' with
       | Ir.Const (Ir.Cidx k | Ir.Ci64 k) -> Hashtbl.replace consts v.Ir.vid k
       | _ -> ());
      [ Ir.Let (v, rv') ]
    | Ir.Store (buf, i, v) -> [ Ir.Store (buf, look i, look v) ]
    | Ir.Prefetch p -> [ Ir.Prefetch { p with Ir.pidx = look p.Ir.pidx } ]
    | Ir.If (c, t, e) ->
      [ Ir.If (look c, go_block ~top:false t, go_block ~top:false e) ]
    | Ir.While w ->
      [ Ir.While
          { w with
            Ir.w_carried =
              List.map (fun (arg, init) -> (arg, look init)) w.Ir.w_carried;
            w_cond = go_block ~top:false w.Ir.w_cond;
            w_cond_v = look w.Ir.w_cond_v;
            w_body = go_block ~top:false w.Ir.w_body;
            w_yield = List.map look w.Ir.w_yield } ]
    | Ir.For f ->
      let f_lo = look f.Ir.f_lo
      and f_hi = look f.Ir.f_hi
      and f_step = look f.Ir.f_step in
      let f_carried =
        List.map (fun (arg, init) -> (arg, look init)) f.Ir.f_carried
      in
      let body' = go_block ~top:false f.Ir.f_body in
      let f_yield = List.map look f.Ir.f_yield in
      let f =
        { f with Ir.f_lo; f_hi; f_step; f_carried; f_body = body'; f_yield }
      in
      let trip =
        match (const_of f_lo, const_of f_hi, const_of f_step) with
        | Some lo, Some hi, Some step when step > 0 ->
          Some (lo, step, if hi <= lo then 0 else (hi - lo + step - 1) / step)
        | _ -> None
      in
      (match trip with
       | Some (lo, step, trip)
         when (not top) && trip <= cap && loop_free body' ->
         incr n_unrolled;
         n_iters := !n_iters + trip;
         let out = ref [] in
         let cur = ref (List.map snd f.Ir.f_carried) in
         for t = 0 to trip - 1 do
           let sub = Hashtbl.create 32 in
           let ivc = fresh a f.Ir.f_iv.Ir.vname f.Ir.f_iv.Ir.vty in
           out :=
             Ir.Let (ivc, Ir.Const (const_of_ty f.Ir.f_iv.Ir.vty (lo + (t * step))))
             :: !out;
           Hashtbl.replace sub f.Ir.f_iv.Ir.vid ivc;
           List.iter2
             (fun (arg, _) v -> Hashtbl.replace sub arg.Ir.vid v)
             f.Ir.f_carried !cur;
           let cloned = clone_body a rsub sub body' in
           out := List.rev_append cloned !out;
           cur :=
             List.map
               (fun (y : Ir.value) ->
                 match Hashtbl.find_opt sub y.Ir.vid with
                 | Some v -> v
                 | None -> y)
               f.Ir.f_yield
         done;
         List.iter2
           (fun (r : Ir.value) v -> Hashtbl.replace rsub r.Ir.vid v)
           f.Ir.f_results !cur;
         List.rev !out
       | _ -> [ Ir.For f ])
  in
  let b = go_block ~top:true body in
  (b, !n_unrolled, !n_iters)

(* --- Dead-code elimination ------------------------------------------- *)

(* A let is removable when its value is unused and evaluating it cannot
   fault or touch the memory hierarchy: loads (cache events, bounds
   faults) and unfolded div/rem (divide-by-zero traps) stay. *)
let pure_rv = function
  | Ir.Const _ | Ir.Fbin _ | Ir.Icmp _ | Ir.Select _ | Ir.Cast _ | Ir.Dim _ ->
    true
  | Ir.Ibin ((Ir.Idiv | Ir.Irem), _, _) -> false
  | Ir.Ibin _ -> true
  | Ir.Load _ -> false

let dce body =
  let removed = ref 0 in
  let rec sweep body =
    let used : (int, unit) Hashtbl.t = Hashtbl.create 256 in
    let u (v : Ir.value) = Hashtbl.replace used v.Ir.vid () in
    let mark_rv = function
      | Ir.Const _ | Ir.Dim _ -> ()
      | Ir.Ibin (_, x, y) | Ir.Fbin (_, x, y) | Ir.Icmp (_, x, y) ->
        u x; u y
      | Ir.Select (c, x, y) -> u c; u x; u y
      | Ir.Load (_, i) -> u i
      | Ir.Cast (_, x) -> u x
    in
    let rec mark_block b = List.iter mark_stmt b
    and mark_stmt = function
      | Ir.Let (_, rv) -> mark_rv rv
      | Ir.Store (_, i, v) -> u i; u v
      | Ir.Prefetch p -> u p.Ir.pidx
      | Ir.For f ->
        u f.Ir.f_lo; u f.Ir.f_hi; u f.Ir.f_step;
        List.iter (fun (_, init) -> u init) f.Ir.f_carried;
        List.iter u f.Ir.f_yield;
        mark_block f.Ir.f_body
      | Ir.While w ->
        List.iter (fun (_, init) -> u init) w.Ir.w_carried;
        u w.Ir.w_cond_v;
        List.iter u w.Ir.w_yield;
        mark_block w.Ir.w_cond;
        mark_block w.Ir.w_body
      | Ir.If (c, t, e) -> u c; mark_block t; mark_block e
    in
    mark_block body;
    let changed = ref false in
    let rec prune b =
      List.filter_map
        (function
          | Ir.Let (v, rv) when pure_rv rv && not (Hashtbl.mem used v.Ir.vid)
            ->
            incr removed;
            changed := true;
            None
          | Ir.For f -> Some (Ir.For { f with Ir.f_body = prune f.Ir.f_body })
          | Ir.While w ->
            Some
              (Ir.While
                 { w with Ir.w_cond = prune w.Ir.w_cond;
                   w_body = prune w.Ir.w_body })
          | Ir.If (c, t, e) -> Some (Ir.If (c, prune t, prune e))
          | s -> Some s)
        b
    in
    let b' = prune body in
    if !changed then sweep b' else b'
  in
  let b = sweep body in
  (b, !removed)

(* --- Prefetch stripping ---------------------------------------------- *)

let strip_prefetch body =
  let n = ref 0 in
  let rec go b =
    List.filter_map
      (function
        | Ir.Prefetch _ ->
          incr n;
          None
        | Ir.For f -> Some (Ir.For { f with Ir.f_body = go f.Ir.f_body })
        | Ir.While w ->
          Some
            (Ir.While
               { w with Ir.w_cond = go w.Ir.w_cond; w_body = go w.Ir.w_body })
        | Ir.If (c, t, e) -> Some (Ir.If (c, go t, go e))
        | s -> Some s)
      b
  in
  let b = go body in
  (b, !n)

(* --- Entry point ------------------------------------------------------ *)

let apply (facts : facts) (fn : Ir.func) : Ir.func * stats =
  let a = { next = fn.Ir.fn_nvalues } in
  let params =
    List.filter_map
      (function Ir.Pscalar v -> Some v | Ir.Pbuf _ -> None)
      fn.Ir.fn_params
  in
  if List.length params <> List.length facts.f_scalars then
    invalid_arg "Specialize.apply: scalar argument count mismatch";
  (* 1. Materialise every scalar parameter as an entry constant and
     redirect its uses there; the parameter itself stays in the
     signature so callers' argument lists are unchanged. *)
  let psub : (int, Ir.value) Hashtbl.t = Hashtbl.create 8 in
  let entry =
    List.map2
      (fun (v : Ir.value) x ->
        let c = fresh a (v.Ir.vname ^ "_k") v.Ir.vty in
        Hashtbl.replace psub v.Ir.vid c;
        Ir.Let (c, Ir.Const (const_of_ty v.Ir.vty x)))
      params facts.f_scalars
  in
  let look (v : Ir.value) =
    match Hashtbl.find_opt psub v.Ir.vid with Some c -> c | None -> v
  in
  let body = entry @ map_uses_block look fn.Ir.fn_body in
  let mk body = { fn with Ir.fn_body = body; Ir.fn_nvalues = a.next } in
  (* 2. Fold parameter constants through the body. *)
  let fn1, fs1 = Fold.run (mk body) in
  (* 3. Eliminate block edge clamps the folded extents prove away, then
     fully unroll constant-trip loops (the clamps were what kept the
     BSR micro-loop bounds dynamic). *)
  let body, n_clamps = eliminate_block_clamps fn1.Ir.fn_body in
  let body, n_unrolled, n_iters =
    unroll_const_loops a facts.f_unroll_cap body
  in
  (* 4. Fold again: induction constants feed address arithmetic. *)
  let fn2, fs2 = Fold.run (mk body) in
  (* 5. Strip prefetch hooks a zero tuned distance makes dead. *)
  let body, n_pf =
    match facts.f_distance with
    | Some 0 -> strip_prefetch fn2.Ir.fn_body
    | _ -> (fn2.Ir.fn_body, 0)
  in
  (* 6. Sweep the dead feeder arithmetic. *)
  let body, n_dce = dce body in
  let fn' = mk body in
  (match Verify.check_result fn' with
   | Ok () -> ()
   | Error m -> invalid_arg ("Specialize.apply: broke the IR: " ^ m));
  ( fn',
    { sp_params = List.length params;
      sp_folded = fs1.Fold.folded + fs2.Fold.folded;
      sp_clamps = n_clamps;
      sp_unrolled = n_unrolled;
      sp_iterations = n_iters;
      sp_dce = n_dce;
      sp_prefetch_stripped = n_pf } )
