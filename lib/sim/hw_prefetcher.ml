(* Hardware prefetchers of the Alder Lake E-core (paper Table 2).

   Each prefetcher observes the demand-access stream at its cache level and
   emits fill requests; the hierarchy pushes those through the shared
   MSHR/bandwidth paths, so inaccurate prefetchers genuinely cost the
   resources the paper's §5.1 insight is about.

   Models are deliberately simple but keep the properties the evaluation
   depends on: the next-line prefetchers are useless (and costly) on
   irregular streams; the IPP tracks only a couple of strided load PCs, so
   it cannot cover all of SpMV's streams (§3.2.1); the streamers cover
   sequential buffers; the AMP fires on repeated deltas, helping 2-D
   strides and polluting on random ones.

   These run on every demand access, so the observation path is
   allocation-free end to end: [pf_observe] writes target line addresses
   into a caller-owned scratch buffer instead of returning a request list
   (the PR-5 allocation audit found the per-access event record plus the
   request cons cells cost ~9 heap words per simulated instruction — the
   single largest constant in the timing path). A request's source id and
   fill level were always the observing prefetcher's own [pf_id]/[pf_level],
   so nothing is lost by dropping the request record. *)

type level = L1 | L2 | L3

(* Prefetcher ids (indices into accuracy counters). *)
let id_l1_nlp = 0
let id_l1_ipp = 1
let id_l2_nlp = 2
let id_mlc = 3
let id_amp = 4
let id_llc = 5
let n_ids = 6

let name_of_id = function
  | 0 -> "L1 NLP" | 1 -> "L1 IPP" | 2 -> "L2 NLP"
  | 3 -> "MLC Streamer" | 4 -> "L2 AMP" | 5 -> "LLC Streamer"
  | _ -> "?"

(* Stable dotted-counter-name components ("pf.<slug>.issued", ...). *)
let slug_of_id = function
  | 0 -> "l1_nlp" | 1 -> "l1_ipp" | 2 -> "l2_nlp"
  | 3 -> "mlc_streamer" | 4 -> "l2_amp" | 5 -> "llc_streamer"
  | _ -> "unknown"

(* Every unit bounds its burst by its degree; 8 leaves headroom over the
   largest default (streamer degree 4). *)
let max_requests = 8

type t = {
  pf_id : int;
  pf_level : level;            (* where it observes and fills *)
  pf_observe :
    pc:int -> addr:int -> line:int -> hit:bool -> out:int array -> int;
}

(** L1 next-line: on a miss, fetch the following line. *)
let l1_nlp () =
  { pf_id = id_l1_nlp; pf_level = L1;
    pf_observe =
      (fun ~pc:_ ~addr:_ ~line ~hit ~out ->
        if hit then 0
        else begin
          out.(0) <- line + 1;
          1
        end) }

(** L2 next-line (default off on the platform). *)
let l2_nlp () =
  { pf_id = id_l2_nlp; pf_level = L2;
    pf_observe =
      (fun ~pc:_ ~addr:_ ~line ~hit ~out ->
        if hit then 0
        else begin
          out.(0) <- line + 1;
          1
        end) }

type ipp_stream = {
  mutable s_pc : int;
  mutable s_last : int;
  mutable s_stride : int;
  mutable s_conf : int;
  mutable s_used : int;
}

(* Top-level search loop: a nested [let rec] closing over the searched-for
   pc would be rebuilt — a fresh heap closure — on every observation (the
   PR-5 allocation audit measured it at ~6 words per L1 access). *)
let rec find_pc (table : ipp_stream array) n pc i =
  if i = n then -1
  else if table.(i).s_pc = pc then i
  else find_pc table n pc (i + 1)

(** L1 instruction-pointer prefetcher: per-PC stride detection with a small
    stream capacity (the paper observes 2 concurrent streams, §3.2.1). *)
let l1_ipp ?(streams = 2) ?(lookahead = 16) () =
  let table =
    Array.init streams (fun _ ->
        { s_pc = -1; s_last = 0; s_stride = 0; s_conf = 0; s_used = 0 })
  in
  (* Hot path: runs on every L1 access, so the searches below are plain
     index loops — no closures, options or refs. *)
  let n = Array.length table in
  (* Defined here (not inside observe) so the closure is built once. *)
  let rec pick_victim i best =
    if i = n then best
    else
      pick_victim (i + 1)
        (if table.(i).s_conf < table.(best).s_conf then i else best)
  in
  { pf_id = id_l1_ipp; pf_level = L1;
    pf_observe =
      (fun ~pc ~addr ~line ~hit:_ ~out ->
        let idx = find_pc table n pc 0 in
        if idx < 0 then begin
          (* Replacement with hysteresis: steal only a zero-confidence
             slot, otherwise decay the weakest stream. Plain LRU would
             thrash under the round-robin PC pattern of a loop body and
             the unit would never lock onto any stream. *)
          let v = table.(pick_victim 1 0) in
          if v.s_conf = 0 then begin
            v.s_pc <- pc;
            v.s_last <- addr;
            v.s_stride <- 0;
            (* A fresh entry starts with one confidence point so it can
               survive until its PC's next access. *)
            v.s_conf <- 1;
            v.s_used <- 0
          end
          else begin
            (* Slow decay: one confidence point per 8 conflicting
               accesses, so established streams survive a loop body's
               other loads. *)
            v.s_used <- v.s_used + 1;
            if v.s_used mod 8 = 0 then v.s_conf <- v.s_conf - 1
          end;
          0
        end
        else begin
          let s = table.(idx) in
          s.s_used <- 0;
          let d = addr - s.s_last in
          if d = s.s_stride && d <> 0 then s.s_conf <- min 4 (s.s_conf + 1)
          else begin
            s.s_stride <- d;
            s.s_conf <- 1
          end;
          s.s_last <- addr;
          if s.s_conf >= 2 then begin
            let target = addr + (s.s_stride * lookahead) in
            if target >= 0 && target asr 6 <> line then begin
              out.(0) <- target asr 6;
              1
            end
            else 0
          end
          else 0
        end) }

type stream_entry = {
  mutable t_page : int;
  mutable t_last : int;
  mutable t_conf : int;
  mutable t_used : int;
}

(* Top-level for the same reason as [find_pc]: no per-observation closure. *)
let rec find_page (table : stream_entry array) n page i =
  if i = n then -1
  else if table.(i).t_page = page then i
  else find_page table n page (i + 1)

(** Streaming prefetcher: forward line streams within a 4 KiB page,
    prefetching [degree] lines past the page's high-water mark.
    Tracking the maximum accessed line (rather than demanding strictly
    consecutive accesses) keeps the unit trained when an L1 prefetcher
    reorders the miss stream. Instantiated at L2 (MLC streamer) and L3
    (LLC streamer). *)
let streamer ~pf_id ~level ?(entries = 16) ?(degree = 4) () =
  let degree = min degree max_requests in
  let table =
    Array.init entries (fun _ ->
        { t_page = -1; t_last = -1; t_conf = 0; t_used = 0 })
  in
  let stamp = ref 0 in
  (* Hot path: runs on every access at its level, so the table searches
     are plain index loops and the burst is written straight into [out]
     with only in-page lines (same lines, same order as a list build). *)
  let n = Array.length table in
  (* Last-hit memo: page walks revisit the same entry for long runs, so
     checking it first skips the linear search on the common path (pure
     host-speed memo — same entry is found either way). *)
  let last_idx = ref 0 in
  let rec pick_victim i best =
    if i = n then best
    else
      pick_victim (i + 1)
        (if table.(i).t_used < table.(best).t_used then i else best)
  in
  let rec put ~page ~from k (out : int array) w =
    if k = 0 then w
    else begin
      let line = from + 1 in
      if line asr 6 = page then begin
        out.(w) <- line;
        put ~page ~from:line (k - 1) out (w + 1)
      end
      else w
    end
  in
  { pf_id; pf_level = level;
    pf_observe =
      (fun ~pc:_ ~addr:_ ~line ~hit:_ ~out ->
        incr stamp;
        let page = line asr 6 in
        let idx =
          if table.(!last_idx).t_page = page then !last_idx
          else begin
            let i = find_page table n page 0 in
            if i >= 0 then last_idx := i;
            i
          end
        in
        if idx < 0 then begin
          let vi = pick_victim 1 0 in
          let v = table.(vi) in
          last_idx := vi;
          v.t_page <- page;
          v.t_last <- line;
          v.t_conf <- 0;
          v.t_used <- !stamp;
          0
        end
        else begin
          let s = table.(idx) in
          s.t_used <- !stamp;
          let delta = line - s.t_last in
          if delta > 0 && delta <= 4 then begin
            s.t_conf <- min 4 (s.t_conf + 1);
            s.t_last <- line
          end
          else if delta > 4 || delta < -4 then begin
            s.t_conf <- 0;
            s.t_last <- line
          end;
          (* Small backward jitter (delta in [-4, 0]) leaves the
             high-water mark and confidence untouched. *)
          if s.t_conf >= 1 && delta > 0 then
            put ~page ~from:s.t_last degree out 0
          else 0
        end) }

let mlc_streamer () = streamer ~pf_id:id_mlc ~level:L2 ()
let llc_streamer () = streamer ~pf_id:id_llc ~level:L3 ~degree:4 ()

(** L2 adaptive multipath: fires when the delta between consecutive lines
    repeats, covering 2-D strided walks; on irregular streams the
    occasional repeated delta produces pure pollution (the paper disables
    it for SpMV). *)
let l2_amp ?(degree = 2) () =
  let degree = min degree max_requests in
  let last_line = ref (-1) and last_delta = ref 0 in
  { pf_id = id_amp; pf_level = L2;
    pf_observe =
      (fun ~pc:_ ~addr:_ ~line ~hit:_ ~out ->
        let d = line - !last_line in
        let fire = !last_line >= 0 && d = !last_delta && d <> 0 in
        last_delta := d;
        last_line := line;
        if fire then begin
          (* Negative targets (a descending delta running past address 0)
             are skipped, matching the old list build's filter. *)
          let w = ref 0 in
          for k = 1 to degree do
            let target = line + (k * d) in
            if target >= 0 then begin
              out.(!w) <- target;
              incr w
            end
          done;
          !w
        end
        else 0) }
