(** Closure-compiled execution engine (staged interpretation).

    Translates an [Ir.func] bound to its runtime buffers {e once} into a
    tree of OCaml closures, hoisting statement dispatch, buffer/type
    resolution, operand indexing and carried-value plumbing out of the
    simulated loop. A drop-in for {!Interp.run}: same memory port, same
    result type, same timing model, same traps and faults — the engines
    agree cycle-exactly and value-exactly (enforced by the differential
    tests in [test/test_engine.ml]). *)

open Asap_ir

(** A staged function: reusable across runs over the same buffer binding.
    Slices, scalars and the memory port bind at {!run} time. *)
type compiled

(** [compile fn ~bufs] stages [fn] over the bound buffer array (as
    produced by {!Runtime.layout}). *)
val compile : Ir.func -> bufs:Runtime.bound array -> compiled

(** [run ?slice ?width ?rob_size ?branch_miss c ~scalars ~mem] executes a
    staged function. Parameters and defaults are identical to
    {!Interp.run}.
    @raise Runtime.Fault on out-of-bounds demand accesses.
    @raise Interp.Trap on dynamic errors. *)
val run :
  ?slice:int * int -> ?width:int -> ?rob_size:int -> ?branch_miss:int ->
  compiled -> scalars:int list -> mem:Interp.mem -> Interp.result
