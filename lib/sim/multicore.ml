(* Multi-core simulation via effect handlers.

   Each core interprets its slice of the kernel as a fiber that performs an
   effect at every memory event; the scheduler always resumes the fiber
   whose next event is earliest in simulated time, so cores interleave
   correctly on the shared L2/L3/DRAM resources. This replaces the paper's
   OpenMP dense-outer-loop execution (§4.3) with deterministic simulated
   parallelism. *)

open Effect
open Effect.Deep

type _ Effect.t +=
  | Eload : { pc : int; addr : int; at : int } -> int Effect.t
  | Estore : { pc : int; addr : int; at : int } -> unit Effect.t
  | Eprefetch : { addr : int; locality : int; at : int } -> unit Effect.t

type req =
  | Rload of { pc : int; addr : int; at : int }
  | Rstore of { pc : int; addr : int; at : int }
  | Rprefetch of { addr : int; locality : int; at : int }

let req_time = function
  | Rload { at; _ } | Rstore { at; _ } | Rprefetch { at; _ } -> at

type step =
  | Done of Interp.result
  | Wait_load of req * (int, step) continuation
  | Wait_unit of req * (unit, step) continuation

let effect_mem : Interp.mem =
  { Interp.m_load = (fun ~pc ~addr ~at -> perform (Eload { pc; addr; at }));
    m_store = (fun ~pc ~addr ~at -> perform (Estore { pc; addr; at }));
    m_prefetch =
      (fun ~addr ~locality ~at -> perform (Eprefetch { addr; locality; at })) }

let handler : (Interp.result, step) handler =
  { retc = (fun r -> Done r);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Eload r ->
          Some
            (fun (k : (a, step) continuation) ->
              Wait_load (Rload { pc = r.pc; addr = r.addr; at = r.at }, k))
        | Estore r ->
          Some
            (fun (k : (a, step) continuation) ->
              Wait_unit (Rstore { pc = r.pc; addr = r.addr; at = r.at }, k))
        | Eprefetch r ->
          Some
            (fun (k : (a, step) continuation) ->
              Wait_unit
                ( Rprefetch
                    { addr = r.addr; locality = r.locality; at = r.at },
                  k ))
        | _ -> None) }

(** [run ?engine machine hier fn ~bufs ~scalars ~slices] executes one
    copy of [fn] per slice (static row partitioning), interleaving their
    memory events on the shared hierarchy. Returns per-core results. With
    the staged engines ([`Bytecode], the default, or [`Compiled]) the
    function is compiled once and the program is shared by all fibers —
    per-run state lives in each fiber's own run, so sharing is safe. *)
let run ?(engine : [ `Interp | `Compiled | `Bytecode ] = `Bytecode)
    (machine : Machine.t)
    (hier : Hierarchy.t) (fn : Asap_ir.Ir.func) ~(bufs : Runtime.bound array)
    ~(scalars : int list) ~(slices : (int * int) array)
  : Interp.result array =
  let n = Array.length slices in
  let core_run : slice:int * int -> Interp.result =
    let width = machine.Machine.width in
    let rob_size = machine.Machine.rob in
    let branch_miss = machine.Machine.branch_miss in
    match engine with
    | `Interp ->
      fun ~slice ->
        Interp.run ~slice ~width ~rob_size ~branch_miss fn ~bufs ~scalars
          ~mem:effect_mem
    | `Compiled ->
      let c = Compile.compile fn ~bufs in
      fun ~slice ->
        Compile.run ~slice ~width ~rob_size ~branch_miss c ~scalars
          ~mem:effect_mem
    | `Bytecode ->
      let p = Bytecode.compile fn ~bufs in
      fun ~slice ->
        Bytecode.run ~slice ~width ~rob_size ~branch_miss p ~scalars
          ~mem:effect_mem
  in
  let steps =
    Array.init n (fun c ->
        match_with (fun () -> core_run ~slice:slices.(c)) () handler)
  in
  let results = Array.make n None in
  let finished = ref 0 in
  Array.iteri
    (fun c s -> match s with Done r -> results.(c) <- Some r; incr finished | _ -> ())
    steps;
  while !finished < n do
    (* Pick the pending core with the earliest event time. *)
    let best = ref (-1) and best_t = ref max_int in
    Array.iteri
      (fun c s ->
        match s with
        | Done _ -> ()
        | Wait_load (r, _) | Wait_unit (r, _) ->
          if req_time r < !best_t then begin
            best := c;
            best_t := req_time r
          end)
      steps;
    let c = !best in
    assert (c >= 0);
    let next =
      match steps.(c) with
      | Done _ -> assert false
      | Wait_load (Rload { pc; addr; at }, k) ->
        let ready = Hierarchy.load hier ~core:c ~pc ~addr ~at in
        continue k ready
      | Wait_load ((Rstore _ | Rprefetch _), _) -> assert false
      | Wait_unit (Rstore { pc; addr; at }, k) ->
        Hierarchy.store hier ~core:c ~pc ~addr ~at;
        continue k ()
      | Wait_unit (Rprefetch { addr; locality; at }, k) ->
        Hierarchy.prefetch hier ~core:c ~addr ~locality ~at;
        continue k ()
      | Wait_unit (Rload _, _) -> assert false
    in
    steps.(c) <- next;
    (match next with
     | Done r ->
       results.(c) <- Some r;
       incr finished
     | Wait_load _ | Wait_unit _ -> ())
  done;
  Array.map Option.get results
