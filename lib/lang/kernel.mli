(** Declarative kernel descriptions — the linalg.generic analogue (paper
    §2.1, Fig. 1a).

    A kernel is an iteration space with parallel/reduction markers, one
    sparse-annotated input operand, further dense inputs, a dense output
    and a scalar body — exactly the semantic payload sparsification
    consumes. *)

module Encoding = Asap_tensor.Encoding

type iterator = Parallel | Reduction

(** The scalar computation: multiply-accumulate for numeric tensors, or the
    boolean and/or pairing used for binary matrices (paper §4.2). *)
type body = Mul_add | And_or

type operand = { o_name : string; o_map : Affine.t }

type t = {
  k_name : string;
  k_iterators : iterator array;
  k_sparse : operand;          (** the annotated input, e.g. B *)
  k_encoding : Encoding.t;
  k_dense_ins : operand list;
  k_out : operand;
  k_body : body;
  k_sorted : bool;             (** coordinates sorted (Fig. 1a line 7) *)
}

(** [n_dims t] is the iteration-space rank. *)
val n_dims : t -> int

(** [validate t] checks map arities, encoding rank, and linalg's
    iterator/output consistency rules.
    @raise Invalid_argument on violation. *)
val validate : t -> t

(** [spmv ?enc ?body ()] is a(i) = B(i,j) * c(j). *)
val spmv : ?enc:Encoding.t -> ?body:body -> unit -> t

(** [spmm ?enc ?body ()] is A(i,k) = B(i,j) * C(j,k). *)
val spmm : ?enc:Encoding.t -> ?body:body -> unit -> t

(** [sddmm ?enc ?body ()] is the sampled dense-dense matrix product
    O(i,j) = S(i,j) * sum_k A(i,k) * B(k,j). The dense contraction
    dimension [k] is absent from the sparse operand, so it lowers as the
    innermost loop inside the sparse (i,j) co-iteration — the inverse
    nesting of SpMM. *)
val sddmm : ?enc:Encoding.t -> ?body:body -> unit -> t

(** [ttv ?enc ()] is the rank-3 tensor-times-vector contraction
    a(i,j) = B(i,j,k) * c(k); the default CSF encoding compresses every
    level, exercising the full §3.2.2 bound recursion. *)
val ttv : ?enc:Encoding.t -> ?body:body -> unit -> t

(** [to_linalg_string t] renders the kernel in the style of Fig. 1a. *)
val to_linalg_string : t -> string
