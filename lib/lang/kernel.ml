(* Declarative kernel descriptions — the linalg.generic analogue.

   A kernel is an iteration space with parallel/reduction markers, one
   sparse-annotated input operand, further dense inputs, a dense output, and
   a scalar body. This carries exactly the semantic payload sparsification
   consumes (paper §2.1, Fig. 1a). *)

module Encoding = Asap_tensor.Encoding

type iterator = Parallel | Reduction

(** The scalar computation of the basic block: multiply-accumulate for
    numeric tensors, and the boolean and/or pairing the paper uses for
    binary matrices (§4.2). *)
type body = Mul_add | And_or

type operand = { o_name : string; o_map : Affine.t }

type t = {
  k_name : string;
  k_iterators : iterator array;        (* one per iteration dimension *)
  k_sparse : operand;                  (* the annotated input, e.g. B *)
  k_encoding : Encoding.t;
  k_dense_ins : operand list;          (* e.g. c or C *)
  k_out : operand;                     (* e.g. a or A *)
  k_body : body;
  k_sorted : bool;                     (* coordinates sorted; Fig. 1a line 7 *)
}

let n_dims t = Array.length t.k_iterators

let validate t =
  let n = n_dims t in
  let check (o : operand) =
    if o.o_map.Affine.n_dims <> n then
      invalid_arg
        (Printf.sprintf "Kernel %s: operand %s map has wrong dimensionality"
           t.k_name o.o_name)
  in
  check t.k_sparse;
  List.iter check t.k_dense_ins;
  check t.k_out;
  if Affine.rank t.k_sparse.o_map <> Encoding.rank t.k_encoding then
    invalid_arg "Kernel: sparse operand rank does not match encoding rank";
  Array.iteri
    (fun d it ->
      match it with
      | Reduction ->
        if Affine.uses t.k_out.o_map d then
          invalid_arg "Kernel: reduction dimension indexes the output"
      | Parallel ->
        (* Linalg semantics: a dimension absent from the output is a
           reduction. The emitter's accumulator placement relies on it. *)
        if not (Affine.uses t.k_out.o_map d) then
          invalid_arg "Kernel: parallel dimension missing from the output")
    t.k_iterators;
  t

(** [spmv ?enc ()] is a(i) = B(i,j) * c(j). *)
let spmv ?(enc = Encoding.csr ()) ?(body = Mul_add) () =
  validate
    { k_name = "spmv";
      k_iterators = [| Parallel; Reduction |];
      k_sparse = { o_name = "B"; o_map = Affine.make ~n_dims:2 [| 0; 1 |] };
      k_encoding = enc;
      k_dense_ins = [ { o_name = "c"; o_map = Affine.make ~n_dims:2 [| 1 |] } ];
      k_out = { o_name = "a"; o_map = Affine.make ~n_dims:2 [| 0 |] };
      k_body = body;
      k_sorted = true }

(** [spmm ?enc ()] is A(i,k) = B(i,j) * C(j,k); the dense operand C has as
    many columns as fit one cache line in the paper's setup (§5.2). *)
let spmm ?(enc = Encoding.csr ()) ?(body = Mul_add) () =
  validate
    { k_name = "spmm";
      k_iterators = [| Parallel; Reduction; Parallel |];
      k_sparse = { o_name = "B"; o_map = Affine.make ~n_dims:3 [| 0; 1 |] };
      k_encoding = enc;
      k_dense_ins =
        [ { o_name = "C"; o_map = Affine.make ~n_dims:3 [| 1; 2 |] } ];
      k_out = { o_name = "A"; o_map = Affine.make ~n_dims:3 [| 0; 2 |] };
      k_body = body;
      k_sorted = true }

(** [sddmm ?enc ()] is the sampled dense-dense matrix product
    O(i,j) = S(i,j) * sum_k A(i,k) * B(k,j): the sparse operand S both
    samples and scales the dense product. The dense contraction
    dimension k is absent from S, so the sparsifier places it as the
    innermost loop *inside* the sparse (i,j) co-iteration — the inverse
    nesting of SpMM, where the dense dimension is outermost-parallel. *)
let sddmm ?(enc = Encoding.csr ()) ?(body = Mul_add) () =
  validate
    { k_name = "sddmm";
      k_iterators = [| Parallel; Parallel; Reduction |];
      k_sparse = { o_name = "S"; o_map = Affine.make ~n_dims:3 [| 0; 1 |] };
      k_encoding = enc;
      k_dense_ins =
        [ { o_name = "A"; o_map = Affine.make ~n_dims:3 [| 0; 2 |] };
          { o_name = "C"; o_map = Affine.make ~n_dims:3 [| 2; 1 |] } ];
      k_out = { o_name = "O"; o_map = Affine.make ~n_dims:3 [| 0; 1 |] };
      k_body = body;
      k_sorted = true }

(** [ttv ?enc ()] is the rank-3 tensor-times-vector contraction
    a(i,j) = B(i,j,k) * c(k). With the CSF encoding every level is
    compressed, so the §3.2.2 bound recursion runs through the full
    position-buffer chain. *)
let ttv ?(enc = Encoding.csf 3) ?(body = Mul_add) () =
  validate
    { k_name = "ttv";
      k_iterators = [| Parallel; Parallel; Reduction |];
      k_sparse = { o_name = "B"; o_map = Affine.make ~n_dims:3 [| 0; 1; 2 |] };
      k_encoding = enc;
      k_dense_ins = [ { o_name = "c"; o_map = Affine.make ~n_dims:3 [| 2 |] } ];
      k_out = { o_name = "a"; o_map = Affine.make ~n_dims:3 [| 0; 1 |] };
      k_body = body;
      k_sorted = true }

(** [to_linalg_string t] renders the kernel in the style of Fig. 1a. *)
let to_linalg_string t =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ops = (t.k_sparse :: t.k_dense_ins) @ [ t.k_out ] in
  List.iter
    (fun o -> add "#m_%s = %s\n" o.o_name (Affine.to_string o.o_map))
    ops;
  add "#attributes = {\n  indexing_maps = [%s],\n"
    (String.concat ", " (List.map (fun o -> "#m_" ^ o.o_name) ops));
  add "  iterator_types = [%s],\n"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (function
               | Parallel -> "\"parallel\""
               | Reduction -> "\"reduction\"")
             t.k_iterators)));
  add "  sorted = %b\n}\n" t.k_sorted;
  add "%%res = linalg.generic #attributes\n  ins(%%%s : tensor<...x..., #%s>%s)\n"
    t.k_sparse.o_name t.k_encoding.Encoding.name
    (String.concat ""
       (List.map (fun o -> Printf.sprintf ", %%%s : tensor<...>" o.o_name)
          t.k_dense_ins));
  add "  outs(%%%s : tensor<...>) {\n" t.k_out.o_name;
  (match t.k_body with
   | Mul_add ->
     add "  ^bb0(%%in: f64, %%in_0: f64, %%out: f64):\n";
     add "    %%1 = arith.mulf %%in, %%in_0 : f64\n";
     add "    %%2 = arith.addf %%out, %%1 : f64\n"
   | And_or ->
     add "  ^bb0(%%in: i8, %%in_0: i8, %%out: i8):\n";
     add "    %%1 = arith.andi %%in, %%in_0 : i8\n";
     add "    %%2 = arith.ori %%out, %%1 : i8\n");
  add "    linalg.yield %%2\n}\n";
  Buffer.contents buf
