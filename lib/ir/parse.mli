(** Textual IR parser: the inverse of {!Printer}.

    Accepts exactly the MLIR-flavoured dialect subset {!Printer.to_string}
    emits — [func.func] with buffer/scalar parameters, [arith.*] value
    operations, [memref.load]/[store]/[prefetch]/[dim], and structured
    [scf.for]/[scf.while]/[scf.if] regions — and rebuilds a verified
    {!Ir.func} with fresh dense value/buffer ids assigned in definition
    order.

    The round-trip contract, exercised by the golden tests:
    - [Printer.to_string (func (Printer.to_string fn)) = Printer.to_string fn]
      (text fixed point), and
    - [equal_func (func (Printer.to_string fn)) fn]
      (alpha-structural identity: same shapes, types, constants, tags and
      buffer names, with value ids compared up to consistent renaming —
      the printer uniquifies duplicate source names, so names themselves
      are not part of the contract). *)

open Ir

(** A parse failure, with its 1-based source position. *)
exception Error of { line : int; col : int; msg : string }

(** [func text] parses one function.
    @raise Error on malformed input (position of the offending token).
    @raise Invalid_argument if the parsed function fails {!Verify.check}
    (cannot happen for printer output). *)
val func : string -> func

(** [func_result text] is [Ok (func text)] or [Error message] with the
    position formatted as ["line:col: msg"]. *)
val func_result : string -> (func, string) result

(** [equal_func a b] is alpha-structural equality: identical structure,
    operation kinds, scalar/element types, constants (floats compared
    bitwise), loop tags and buffer names, with value ids matched up to a
    consistent bijection. *)
val equal_func : func -> func -> bool
