(** Imperative construction of {!Ir} functions.

    The builder keeps a stack of open blocks; region-building combinators
    ({!for_}, {!while_}, {!if_}) push a fresh block, run a user callback
    that emits into it, and pop it into the structured statement.
    Constants are cached and materialised once in the entry block (the
    canonicalisation + LICM MLIR would perform). *)

open Ir

type t

(** Raised by all emitters on operand/type mismatches. *)
exception Type_error of string

val create : unit -> t

(** {1 Parameters} *)

(** [buf b name elem] declares a buffer parameter. *)
val buf : t -> string -> elem -> buffer

(** [scalar_param b name ty] declares a scalar parameter. *)
val scalar_param : t -> string -> scalar -> value

(** {1 Values} *)

(** [let_ b name ty rv] emits [name = rv] and returns the defined value. *)
val let_ : t -> string -> scalar -> rvalue -> value

(** [const b c] is the cached constant [c]. *)
val const : t -> const -> value

(** [index b i] is the cached index constant [i]. *)
val index : t -> int -> value

(** [f64 b x] is the cached f64 constant [x]. *)
val f64 : t -> float -> value

val ibin : t -> ibinop -> value -> value -> value
val iadd : t -> value -> value -> value
val isub : t -> value -> value -> value
val imul : t -> value -> value -> value
val imin : t -> value -> value -> value
val imax : t -> value -> value -> value
val fbin : t -> fbinop -> value -> value -> value
val fadd : t -> value -> value -> value
val fmul : t -> value -> value -> value
val icmp : t -> icmp -> value -> value -> value
val select : t -> value -> value -> value -> value

(** [load b ?name buffer idx] emits a typed load. *)
val load : t -> ?name:string -> buffer -> value -> value

(** [dim b buffer] emits [memref.dim buffer, 0]. *)
val dim : t -> buffer -> value

val cast : t -> scalar -> value -> value

(** [at_entry b f] runs [f] with the function's entry block as the
    emission point: values it creates are materialised before every
    region still being built and so dominate all their uses — the same
    LICM convention as cached constants. [f] may only reference function
    parameters, constants and other entry-block values. *)
val at_entry : t -> (t -> 'a) -> 'a

(** {1 Statements} *)

val store : t -> buffer -> value -> value -> unit

(** [prefetch b ?write ?locality buffer idx] emits [memref.prefetch]. *)
val prefetch : t -> ?write:bool -> ?locality:int -> buffer -> value -> unit

(** [for_ b ?tag ?step ?carried name lo hi body] emits a counted loop.
    [carried] gives (name, type, initial value) per iter_arg; [body]
    receives the induction variable and the region arguments and returns
    the yielded values; the loop's final carried values are returned. *)
val for_ :
  t -> ?tag:string -> ?step:value -> ?carried:(string * scalar * value) list ->
  string -> value -> value -> (value -> value list -> value list) ->
  value list

(** [for0 b ?tag ?step name lo hi body] is {!for_} with no carried
    values. *)
val for0 :
  t -> ?tag:string -> ?step:value -> string -> value -> value ->
  (value -> unit) -> unit

(** [while_ b ?tag carried cond body] emits an scf.while; [cond] returns
    the continuation condition, [body] the next carried values. Returns
    the final carried values. *)
val while_ :
  t -> ?tag:string -> (string * scalar * value) list ->
  (value list -> value) -> (value list -> value list) -> value list

val if_ : t -> value -> (unit -> unit) -> (unit -> unit) -> unit

(** [finish b name] closes the builder and produces the function.
    @raise Invalid_argument if regions remain open. *)
val finish : t -> string -> func
