(* Textual IR parser: the inverse of Printer.

   Line-oriented recursive descent. The printer emits one statement (or
   region delimiter) per line, so each line is classified by its leading
   keyword and parsed with a small cursor; regions recurse on blocks
   terminated by the printer's closing forms ("}", "} else {", "} do {",
   "scf.yield ...", "scf.condition(...) ...").

   Fresh dense value ids are assigned in definition order and buffer ids
   in parameter order; the result is verified before being returned, so
   a successful parse is always a well-formed function. *)

open Ir

exception Error of { line : int; col : int; msg : string }

let err ~line ~col fmt =
  Printf.ksprintf (fun msg -> raise (Error { line; col; msg })) fmt

(* --- Line cursor ------------------------------------------------------ *)

type cursor = { text : string; lnum : int; mutable pos : int }

let cur_err (c : cursor) fmt =
  Printf.ksprintf
    (fun msg -> raise (Error { line = c.lnum; col = c.pos + 1; msg }))
    fmt

let at_end c = c.pos >= String.length c.text

let skip_ws c =
  while (not (at_end c)) && c.text.[c.pos] = ' ' do
    c.pos <- c.pos + 1
  done

let looking_at c s =
  let n = String.length s in
  c.pos + n <= String.length c.text && String.sub c.text c.pos n = s

let eat c s =
  skip_ws c;
  if looking_at c s then c.pos <- c.pos + String.length s
  else cur_err c "expected %S" s

let eat_opt c s =
  skip_ws c;
  if looking_at c s then (c.pos <- c.pos + String.length s; true) else false

let is_ident_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9') || ch = '_'

let ident c =
  skip_ws c;
  let start = c.pos in
  while (not (at_end c)) && is_ident_char c.text.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then cur_err c "expected an identifier";
  String.sub c.text start (c.pos - start)

(* %name — an SSA value or buffer reference. MLIR value ids also admit
   '.', '-' and '+', which the builder's float-constant names use
   (%cf0.5, %cf1e+06); every printed context ends a value with a
   character outside this set, so the wider charset is unambiguous. *)
let is_value_char ch = is_ident_char ch || ch = '.' || ch = '-' || ch = '+'

let pct_name c =
  eat c "%";
  let start = c.pos in
  while (not (at_end c)) && is_value_char c.text.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then cur_err c "expected a name after '%%'";
  String.sub c.text start (c.pos - start)

(* A numeric literal token: everything %g / %d can produce, including
   sign, dot, exponent, nan and inf. *)
let number_token c =
  skip_ws c;
  let start = c.pos in
  let num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
    || ch = 'n' || ch = 'a' || ch = 'i' || ch = 'f' || ch = 'x'
  in
  while (not (at_end c)) && num_char c.text.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then cur_err c "expected a number";
  String.sub c.text start (c.pos - start)

let int_token c =
  let s = number_token c in
  match int_of_string_opt s with
  | Some i -> i
  | None -> cur_err c "bad integer literal %S" s

let scalar_of_name c = function
  | "index" -> Index
  | "i64" -> I64
  | "f64" -> F64
  | "i1" -> I1
  | s -> cur_err c "unknown scalar type %S" s

let scalar_ty c = scalar_of_name c (ident c)

let elem_of_name c = function
  | "i32" -> EIdx32
  | "i64" -> EIdx64
  | "f64" -> EF64
  | "i8" -> EI8
  | s -> cur_err c "unknown element type %S" s

(* memref<?xELEM> *)
let memref_ty c =
  eat c "memref<?x";
  let e = elem_of_name c (ident c) in
  eat c ">";
  e

(* A parameter / result type: memref<?x..> or a scalar name. *)
type pty = Tbuf of elem | Tscalar of scalar

let param_ty c =
  skip_ws c;
  if looking_at c "memref<" then Tbuf (memref_ty c)
  else Tscalar (scalar_ty c)

(* An optional trailing "// tag" comment; the tag runs to end of line. *)
let opt_tag c =
  skip_ws c;
  if looking_at c "//" then begin
    c.pos <- c.pos + 2;
    skip_ws c;
    let s = String.sub c.text c.pos (String.length c.text - c.pos) in
    c.pos <- String.length c.text;
    String.trim s
  end
  else ""

let expect_eol c =
  skip_ws c;
  if not (at_end c) then
    cur_err c "trailing input %S"
      (String.sub c.text c.pos (String.length c.text - c.pos))

(* --- Parser state ----------------------------------------------------- *)

type st = {
  lines : string array;
  mutable ln : int;                       (* index of the next line *)
  mutable next_vid : int;
  vals : (string, value) Hashtbl.t;
  bufs : (string, buffer) Hashtbl.t;
  mutable nbufs : int;
}

let next_line (st : st) : cursor =
  let rec go () =
    if st.ln >= Array.length st.lines then
      err ~line:(Array.length st.lines) ~col:1 "unexpected end of input";
    let raw = st.lines.(st.ln) in
    st.ln <- st.ln + 1;
    if String.trim raw = "" then go ()
    else { text = raw; lnum = st.ln; pos = 0 }
  in
  go ()

let define (st : st) (c : cursor) name ty : value =
  if Hashtbl.mem st.vals name then cur_err c "value %%%s defined twice" name;
  let v = { vid = st.next_vid; vname = name; vty = ty } in
  st.next_vid <- st.next_vid + 1;
  Hashtbl.add st.vals name v;
  v

let define_buf (st : st) (c : cursor) name elem : buffer =
  if Hashtbl.mem st.bufs name then cur_err c "buffer %%%s defined twice" name;
  let b = { bid = st.nbufs; bname = name; belem = elem } in
  st.nbufs <- st.nbufs + 1;
  Hashtbl.add st.bufs name b;
  b

let value_ref (st : st) (c : cursor) : value =
  skip_ws c;
  let col = c.pos + 1 in
  let name = pct_name c in
  match Hashtbl.find_opt st.vals name with
  | Some v -> v
  | None -> err ~line:c.lnum ~col "use of undefined value %%%s" name

let buf_ref (st : st) (c : cursor) : buffer =
  skip_ws c;
  let col = c.pos + 1 in
  let name = pct_name c in
  match Hashtbl.find_opt st.bufs name with
  | Some b -> b
  | None -> err ~line:c.lnum ~col "use of undefined buffer %%%s" name

(* --- Rvalues ---------------------------------------------------------- *)

let ibinop_of_name = function
  | "arith.addi" -> Some Iadd | "arith.subi" -> Some Isub
  | "arith.muli" -> Some Imul | "arith.divui" -> Some Idiv
  | "arith.remui" -> Some Irem | "arith.minui" -> Some Imin
  | "arith.maxui" -> Some Imax | "arith.andi" -> Some Iand
  | "arith.ori" -> Some Ior | "arith.xori" -> Some Ixor
  | "arith.shli" -> Some Ishl
  | _ -> None

let fbinop_of_name = function
  | "arith.addf" -> Some Fadd | "arith.subf" -> Some Fsub
  | "arith.mulf" -> Some Fmul | "arith.divf" -> Some Fdiv
  | "arith.minimumf" -> Some Fmin | "arith.maximumf" -> Some Fmax
  | _ -> None

let icmp_of_name c = function
  | "eq" -> Eq | "ne" -> Ne
  | "ult" -> Ult | "ule" -> Ule | "ugt" -> Ugt | "uge" -> Uge
  | "slt" -> Slt | "sle" -> Sle | "sgt" -> Sgt | "sge" -> Sge
  | s -> cur_err c "unknown cmpi predicate %S" s

(* The operation keyword: dotted identifier like "arith.addi". *)
let op_name c =
  skip_ws c;
  let start = c.pos in
  while (not (at_end c)) && (is_ident_char c.text.[c.pos] || c.text.[c.pos] = '.')
  do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then cur_err c "expected an operation name";
  String.sub c.text start (c.pos - start)

(* Parse "op ..." after "%v = "; returns the rvalue and the result type. *)
let rvalue (st : st) (c : cursor) : rvalue * scalar =
  let op = op_name c in
  match op with
  | "arith.constant" ->
    skip_ws c;
    if looking_at c "true" || looking_at c "false" then begin
      let b = eat_opt c "true" in
      if not b then eat c "false";
      eat c ":"; eat c "i1";
      (Const (Cbool b), I1)
    end
    else begin
      let tok = number_token c in
      eat c ":";
      (match ident c with
       | "index" ->
         (match int_of_string_opt tok with
          | Some i -> (Const (Cidx i), Index)
          | None -> cur_err c "bad index constant %S" tok)
       | "i64" ->
         (match int_of_string_opt tok with
          | Some i -> (Const (Ci64 i), I64)
          | None -> cur_err c "bad i64 constant %S" tok)
       | "f64" ->
         (match float_of_string_opt tok with
          | Some f -> (Const (Cf64 f), F64)
          | None -> cur_err c "bad f64 constant %S" tok)
       | ty -> cur_err c "unknown constant type %S" ty)
    end
  | "arith.cmpi" ->
    let pred = icmp_of_name c (ident c) in
    eat c ",";
    let x = value_ref st c in
    eat c ",";
    let y = value_ref st c in
    eat c ":";
    let (_ : scalar) = scalar_ty c in
    (Icmp (pred, x, y), I1)
  | "arith.select" ->
    let cond = value_ref st c in
    eat c ",";
    let x = value_ref st c in
    eat c ",";
    let y = value_ref st c in
    eat c ":";
    let ty = scalar_ty c in
    (Select (cond, x, y), ty)
  | "arith.index_cast" ->
    let x = value_ref st c in
    eat c ":";
    let from_ty = scalar_ty c in
    if from_ty <> x.vty then
      cur_err c "index_cast: operand is %s, cast written from %s"
        (scalar_name x.vty) (scalar_name from_ty);
    eat c "to";
    let ty = scalar_ty c in
    (Cast (ty, x), ty)
  | "memref.load" ->
    let b = buf_ref st c in
    eat c "[";
    let i = value_ref st c in
    eat c "]"; eat c ":";
    let e = memref_ty c in
    if e <> b.belem then
      cur_err c "load %%%s: element type mismatch" b.bname;
    (Load (b, i), scalar_of_elem b.belem)
  | "memref.dim" ->
    let b = buf_ref st c in
    eat c ","; eat c "0"; eat c ":";
    let (_ : elem) = memref_ty c in
    (Dim b, Index)
  | op ->
    (match ibinop_of_name op with
     | Some bop ->
       let x = value_ref st c in
       eat c ",";
       let y = value_ref st c in
       eat c ":";
       let ty = scalar_ty c in
       (Ibin (bop, x, y), ty)
     | None ->
       (match fbinop_of_name op with
        | Some fop ->
          let x = value_ref st c in
          eat c ",";
          let y = value_ref st c in
          eat c ":"; eat c "f64";
          (Fbin (fop, x, y), F64)
        | None -> cur_err c "unknown operation %S" op))

(* --- Statements and blocks -------------------------------------------- *)

(* How a block's final line ended it. *)
type stop =
  | Sclose                       (* "}" *)
  | Sclose_else                  (* "} else {" *)
  | Syield of value list * cursor  (* "scf.yield ..." *)
  | Scondition of value * cursor (* "scf.condition(%c) ..." *)

let ref_list (st : st) (c : cursor) : value list =
  let rec go acc =
    let v = value_ref st c in
    if eat_opt c "," then go (v :: acc) else List.rev (v :: acc)
  in
  skip_ws c;
  if at_end c then [] else go []

(* "(%a = %i, %b = %j)" — carried bindings: names defined later, inits
   resolved now. *)
let carried_bindings (st : st) (c : cursor) : (string * value) list =
  eat c "(";
  if eat_opt c ")" then []
  else begin
    let rec go acc =
      let name = pct_name c in
      eat c "=";
      let init = value_ref st c in
      if eat_opt c "," then go ((name, init) :: acc)
      else begin
        eat c ")";
        List.rev ((name, init) :: acc)
      end
    in
    go []
  end

let rec block (st : st) : block * stop =
  let rec go acc =
    let c = next_line st in
    skip_ws c;
    if looking_at c "}" then begin
      eat c "}";
      if eat_opt c "else" then begin
        eat c "{"; expect_eol c;
        (List.rev acc, Sclose_else)
      end
      else begin
        expect_eol c;
        (List.rev acc, Sclose)
      end
    end
    else if looking_at c "scf.yield" then begin
      eat c "scf.yield";
      let ys = ref_list st c in
      expect_eol c;
      (List.rev acc, Syield (ys, c))
    end
    else if looking_at c "scf.condition(" then begin
      eat c "scf.condition(";
      let v = value_ref st c in
      eat c ")";
      (* The printer restates the carried args here; they are redundant,
         so parse and discard. *)
      let (_ : value list) = ref_list st c in
      expect_eol c;
      (List.rev acc, Scondition (v, c))
    end
    else go (stmt st c :: acc)
  in
  go []

and stmt (st : st) (c : cursor) : Ir.stmt =
  skip_ws c;
  if looking_at c "memref.store" then begin
    eat c "memref.store";
    let v = value_ref st c in
    eat c ",";
    let b = buf_ref st c in
    eat c "[";
    let i = value_ref st c in
    eat c "]"; eat c ":";
    let (_ : elem) = memref_ty c in
    expect_eol c;
    Store (b, i, v)
  end
  else if looking_at c "memref.prefetch" then begin
    eat c "memref.prefetch";
    let b = buf_ref st c in
    eat c "[";
    let i = value_ref st c in
    eat c "]"; eat c ",";
    let w =
      if eat_opt c "write" then true
      else begin eat c "read"; false end
    in
    eat c ","; eat c "locality<";
    let loc = int_token c in
    eat c ">"; eat c ","; eat c "data"; eat c ":";
    let (_ : elem) = memref_ty c in
    expect_eol c;
    Prefetch { pbuf = b; pidx = i; pwrite = w; plocality = loc }
  end
  else if looking_at c "scf.if" then begin
    eat c "scf.if";
    let cond = value_ref st c in
    eat c "{"; expect_eol c;
    let then_, stop_t = block st in
    (match stop_t with
     | Sclose -> If (cond, then_, [])
     | Sclose_else ->
       let else_, stop_e = block st in
       (match stop_e with
        | Sclose -> If (cond, then_, else_)
        | _ -> cur_err c "scf.if: else block not closed by '}'")
     | _ -> cur_err c "scf.if: block not closed by '}'")
  end
  else begin
    (* "[%r, ... = ] scf.for | scf.while | rvalue" *)
    let result_names = result_head st c in
    skip_ws c;
    if looking_at c "scf.for" then for_stmt st c result_names
    else if looking_at c "scf.while" then while_stmt st c result_names
    else
      match result_names with
      | [ name ] ->
        let rv, ty = rvalue st c in
        expect_eol c;
        Let (define st c name ty, rv)
      | _ -> cur_err c "expected a single result for a value operation"
  end

(* The "%a, %b = " result prefix (possibly empty: plain scf.for/if). *)
and result_head (st : st) (c : cursor) : string list =
  ignore st;
  skip_ws c;
  if not (looking_at c "%") then []
  else begin
    let rec go acc =
      let name = pct_name c in
      if eat_opt c "," then go (name :: acc)
      else begin
        eat c "=";
        List.rev (name :: acc)
      end
    in
    go []
  end

and for_stmt (st : st) (c : cursor) (result_names : string list) : Ir.stmt =
  eat c "scf.for";
  let iv_name = pct_name c in
  eat c "=";
  let lo = value_ref st c in
  eat c "to";
  let hi = value_ref st c in
  eat c "step";
  let step = value_ref st c in
  let carried_raw =
    if eat_opt c "iter_args" then carried_bindings st c else []
  in
  eat c "{";
  let tag = opt_tag c in
  expect_eol c;
  let iv = define st c iv_name Index in
  let carried =
    List.map
      (fun (name, init) -> (define st c name init.vty, init))
      carried_raw
  in
  let body, stop = block st in
  let yield, stop =
    match stop with
    | Syield (ys, yc) ->
      let _, stop2 = ([], ()) in
      ignore stop2;
      (* the yield line is followed by the closing "}" *)
      let c2 = next_line st in
      skip_ws c2;
      eat c2 "}"; expect_eol c2;
      if List.length ys <> List.length carried then
        cur_err yc "scf.yield arity %d does not match %d iter_args"
          (List.length ys) (List.length carried);
      (ys, Sclose)
    | Sclose -> ([], Sclose)
    | _ -> cur_err c "scf.for: body not closed by '}'"
  in
  ignore stop;
  if yield = [] && carried <> [] then
    cur_err c "scf.for with iter_args needs an scf.yield";
  if List.length result_names <> List.length carried then
    cur_err c "scf.for: %d results for %d iter_args"
      (List.length result_names) (List.length carried);
  let results =
    List.map2
      (fun name ((arg : value), _) -> define st c name arg.vty)
      result_names carried
  in
  For
    { f_iv = iv; f_lo = lo; f_hi = hi; f_step = step; f_carried = carried;
      f_results = results; f_body = body; f_yield = yield; f_tag = tag }

and while_stmt (st : st) (c : cursor) (result_names : string list) : Ir.stmt =
  eat c "scf.while";
  let carried_raw = carried_bindings st c in
  eat c "{";
  let tag = opt_tag c in
  expect_eol c;
  let carried =
    List.map
      (fun (name, init) -> (define st c name init.vty, init))
      carried_raw
  in
  let cond, stop = block st in
  let cond_v =
    match stop with
    | Scondition (v, _) -> v
    | _ -> cur_err c "scf.while: condition block needs scf.condition(..)"
  in
  let c2 = next_line st in
  skip_ws c2;
  eat c2 "}"; eat c2 "do"; eat c2 "{"; expect_eol c2;
  let body, stop = block st in
  let yield =
    match stop with
    | Syield (ys, yc) ->
      let c3 = next_line st in
      skip_ws c3;
      eat c3 "}"; expect_eol c3;
      if List.length ys <> List.length carried then
        cur_err yc "scf.while yield arity %d does not match %d carried"
          (List.length ys) (List.length carried);
      ys
    | _ -> cur_err c "scf.while: do block needs a trailing scf.yield"
  in
  if List.length result_names <> List.length carried then
    cur_err c "scf.while: %d results for %d carried values"
      (List.length result_names) (List.length carried);
  let results =
    List.map2
      (fun name ((arg : value), _) -> define st c name arg.vty)
      result_names carried
  in
  While
    { w_carried = carried; w_results = results; w_cond = cond;
      w_cond_v = cond_v; w_body = body; w_yield = yield; w_tag = tag }

(* --- Entry point ------------------------------------------------------ *)

let func (text : string) : func =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let st =
    { lines; ln = 0; next_vid = 0; vals = Hashtbl.create 64;
      bufs = Hashtbl.create 16; nbufs = 0 }
  in
  let c = next_line st in
  eat c "func.func";
  eat c "@";
  let fn_name = ident c in
  eat c "(";
  let params =
    if eat_opt c ")" then []
    else begin
      let rec go acc =
        let name = pct_name c in
        eat c ":";
        let p =
          match param_ty c with
          | Tbuf e -> Pbuf (define_buf st c name e)
          | Tscalar ty -> Pscalar (define st c name ty)
        in
        if eat_opt c "," then go (p :: acc)
        else begin
          eat c ")";
          List.rev (p :: acc)
        end
      in
      go []
    end
  in
  eat c "{"; expect_eol c;
  let body, stop = block st in
  (match stop with
   | Sclose -> ()
   | _ -> err ~line:st.ln ~col:1 "function body not closed by '}'");
  (* Only blank lines may follow. *)
  while st.ln < Array.length st.lines do
    if String.trim st.lines.(st.ln) <> "" then
      err ~line:(st.ln + 1) ~col:1 "trailing input after the function";
    st.ln <- st.ln + 1
  done;
  let fn =
    { fn_name; fn_params = params; fn_body = body;
      fn_nvalues = st.next_vid; fn_nbufs = st.nbufs }
  in
  (match Verify.check_result fn with
   | Ok () -> ()
   | Error m -> invalid_arg ("Ir.Parse: parsed function is invalid: " ^ m));
  fn

let func_result (text : string) : (func, string) result =
  match func text with
  | fn -> Ok fn
  | exception Error { line; col; msg } ->
    Result.Error (Printf.sprintf "%d:%d: %s" line col msg)
  | exception Invalid_argument m -> Result.Error m

(* --- Alpha-structural equality ---------------------------------------- *)

(* Value ids are compared up to a consistent bijection; buffer identity
   requires the same name, element kind and a consistent id pairing.
   Names of values are NOT compared (the printer uniquifies duplicates),
   but loop tags and buffer names are. *)
let equal_func (a : func) (b : func) : bool =
  let vmap : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let vrev : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let bmap : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let brev : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let exception Differ in
  let bij fwd rev x y =
    match (Hashtbl.find_opt fwd x, Hashtbl.find_opt rev y) with
    | None, None ->
      Hashtbl.add fwd x y;
      Hashtbl.add rev y x
    | Some y', Some x' when y' = y && x' = x -> ()
    | _ -> raise Differ
  in
  let value (x : value) (y : value) =
    if x.vty <> y.vty then raise Differ;
    bij vmap vrev x.vid y.vid
  in
  let buffer (x : buffer) (y : buffer) =
    if x.belem <> y.belem || x.bname <> y.bname then raise Differ;
    bij bmap brev x.bid y.bid
  in
  let const_eq x y =
    match (x, y) with
    | Cf64 f, Cf64 g ->
      if Int64.bits_of_float f <> Int64.bits_of_float g then raise Differ
    | _ -> if x <> y then raise Differ
  in
  let values xs ys =
    if List.length xs <> List.length ys then raise Differ;
    List.iter2 value xs ys
  in
  let rvalue_eq x y =
    match (x, y) with
    | Const cx, Const cy -> const_eq cx cy
    | Ibin (ox, a1, b1), Ibin (oy, a2, b2) ->
      if ox <> oy then raise Differ;
      value a1 a2; value b1 b2
    | Fbin (ox, a1, b1), Fbin (oy, a2, b2) ->
      if ox <> oy then raise Differ;
      value a1 a2; value b1 b2
    | Icmp (px, a1, b1), Icmp (py, a2, b2) ->
      if px <> py then raise Differ;
      value a1 a2; value b1 b2
    | Select (c1, a1, b1), Select (c2, a2, b2) ->
      value c1 c2; value a1 a2; value b1 b2
    | Load (b1, i1), Load (b2, i2) -> buffer b1 b2; value i1 i2
    | Dim b1, Dim b2 -> buffer b1 b2
    | Cast (t1, v1), Cast (t2, v2) ->
      if t1 <> t2 then raise Differ;
      value v1 v2
    | _ -> raise Differ
  in
  let rec block_eq xs ys =
    if List.length xs <> List.length ys then raise Differ;
    List.iter2 stmt_eq xs ys
  and stmt_eq x y =
    match (x, y) with
    | Let (v1, r1), Let (v2, r2) ->
      rvalue_eq r1 r2;
      value v1 v2
    | Store (b1, i1, v1), Store (b2, i2, v2) ->
      buffer b1 b2; value i1 i2; value v1 v2
    | Prefetch p1, Prefetch p2 ->
      if p1.pwrite <> p2.pwrite || p1.plocality <> p2.plocality then
        raise Differ;
      buffer p1.pbuf p2.pbuf;
      value p1.pidx p2.pidx
    | For f1, For f2 ->
      if f1.f_tag <> f2.f_tag then raise Differ;
      value f1.f_lo f2.f_lo;
      value f1.f_hi f2.f_hi;
      value f1.f_step f2.f_step;
      if List.length f1.f_carried <> List.length f2.f_carried then
        raise Differ;
      List.iter2 (fun (_, i1) (_, i2) -> value i1 i2) f1.f_carried f2.f_carried;
      value f1.f_iv f2.f_iv;
      List.iter2 (fun (a1, _) (a2, _) -> value a1 a2) f1.f_carried f2.f_carried;
      block_eq f1.f_body f2.f_body;
      values f1.f_yield f2.f_yield;
      values f1.f_results f2.f_results
    | While w1, While w2 ->
      if w1.w_tag <> w2.w_tag then raise Differ;
      if List.length w1.w_carried <> List.length w2.w_carried then
        raise Differ;
      List.iter2 (fun (_, i1) (_, i2) -> value i1 i2) w1.w_carried w2.w_carried;
      List.iter2 (fun (a1, _) (a2, _) -> value a1 a2) w1.w_carried w2.w_carried;
      block_eq w1.w_cond w2.w_cond;
      value w1.w_cond_v w2.w_cond_v;
      block_eq w1.w_body w2.w_body;
      values w1.w_yield w2.w_yield;
      values w1.w_results w2.w_results
    | If (c1, t1, e1), If (c2, t2, e2) ->
      value c1 c2;
      block_eq t1 t2;
      block_eq e1 e2
    | _ -> raise Differ
  in
  match
    if a.fn_name <> b.fn_name then raise Differ;
    if List.length a.fn_params <> List.length b.fn_params then raise Differ;
    List.iter2
      (fun p q ->
        match (p, q) with
        | Pbuf x, Pbuf y -> buffer x y
        | Pscalar x, Pscalar y -> value x y
        | _ -> raise Differ)
      a.fn_params b.fn_params;
    block_eq a.fn_body b.fn_body
  with
  | () -> true
  | exception Differ -> false
