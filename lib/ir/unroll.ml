(* Innermost-loop unrolling (see unroll.mli).

   Shape of the rewrite for [scf.for %i = %lo to %hi step %s] with
   constant step [s = k > 0] and factor [f]:

     %hi'    = max(%hi, %lo)                 trip-count arithmetic is
     %span   = %hi' - %lo                    unsigned, so clamp first
     %trip   = (%span + (k-1)) / k
     %tripm  = (%trip / f) * f               iterations in the main loop
     %mainhi = %lo + %tripm * k
     main:      scf.for %i0 = %lo to %mainhi step (f*k)
                  body[%i0], body[%i0 + k], ... body[%i0 + (f-1)k]
     remainder: scf.for %i = %mainhi to %hi step %s   (original body)

   Replica r's loop-carried arguments are bound to replica r-1's yields,
   so the sequential iteration order — and therefore every value,
   including float accumulation order — is preserved exactly.  The
   remainder loop is the original loop with its lower bound and carried
   inits redirected, keeping the original result values defined for
   downstream uses. *)

open Ir

type stats = { unrolled : int }

(* Fresh-value allocation shared by the whole rewrite. *)
type alloc = { mutable next_vid : int }

let fresh (a : alloc) (v : value) : value =
  let v' = { v with vid = a.next_vid } in
  a.next_vid <- a.next_vid + 1;
  v'

(* Clone a block, assigning fresh ids to every value it defines; [subst]
   maps old vid -> replacement value for both the clone's own definitions
   and any outer substitutions (e.g. the induction variable). *)
let rec clone_block (a : alloc) (subst : (int, value) Hashtbl.t) (b : block) :
    block =
  List.map (clone_stmt a subst) b

and clone_stmt a subst = function
  | Let (v, rv) ->
    let rv' = clone_rvalue subst rv in
    let v' = fresh a v in
    Hashtbl.replace subst v.vid v';
    Let (v', rv')
  | Store (b, i, v) -> Store (b, sub subst i, sub subst v)
  | Prefetch p -> Prefetch { p with pidx = sub subst p.pidx }
  | For f ->
    let f_lo = sub subst f.f_lo
    and f_hi = sub subst f.f_hi
    and f_step = sub subst f.f_step in
    let inits = List.map (fun (_, i) -> sub subst i) f.f_carried in
    let iv = fresh a f.f_iv in
    Hashtbl.replace subst f.f_iv.vid iv;
    let args =
      List.map
        (fun (arg, _) ->
          let arg' = fresh a arg in
          Hashtbl.replace subst arg.vid arg';
          arg')
        f.f_carried
    in
    let body = clone_block a subst f.f_body in
    let yield = List.map (sub subst) f.f_yield in
    let results =
      List.map
        (fun r ->
          let r' = fresh a r in
          Hashtbl.replace subst r.vid r';
          r')
        f.f_results
    in
    For
      { f_iv = iv; f_lo; f_hi; f_step;
        f_carried = List.combine args inits;
        f_results = results; f_body = body; f_yield = yield; f_tag = f.f_tag }
  | While w ->
    let inits = List.map (fun (_, i) -> sub subst i) w.w_carried in
    let args =
      List.map
        (fun (arg, _) ->
          let arg' = fresh a arg in
          Hashtbl.replace subst arg.vid arg';
          arg')
        w.w_carried
    in
    let cond = clone_block a subst w.w_cond in
    let cond_v = sub subst w.w_cond_v in
    let body = clone_block a subst w.w_body in
    let yield = List.map (sub subst) w.w_yield in
    let results =
      List.map
        (fun r ->
          let r' = fresh a r in
          Hashtbl.replace subst r.vid r';
          r')
        w.w_results
    in
    While
      { w_carried = List.combine args inits; w_results = results;
        w_cond = cond; w_cond_v = cond_v; w_body = body; w_yield = yield;
        w_tag = w.w_tag }
  | If (c, t, e) ->
    let c' = sub subst c in
    If (c', clone_block a subst t, clone_block a subst e)

and sub subst (v : value) : value =
  match Hashtbl.find_opt subst v.vid with Some v' -> v' | None -> v

and clone_rvalue subst = function
  | Const _ as r -> r
  | Ibin (op, x, y) -> Ibin (op, sub subst x, sub subst y)
  | Fbin (op, x, y) -> Fbin (op, sub subst x, sub subst y)
  | Icmp (p, x, y) -> Icmp (p, sub subst x, sub subst y)
  | Select (c, x, y) -> Select (sub subst c, sub subst x, sub subst y)
  | Load (b, i) -> Load (b, sub subst i)
  | Dim b -> Dim b
  | Cast (ty, x) -> Cast (ty, sub subst x)

let rec has_loop (b : block) =
  List.exists
    (function
      | For _ | While _ -> true
      | If (_, t, e) -> has_loop t || has_loop e
      | Let _ | Store _ | Prefetch _ -> false)
    b

let run ~factor (fn : func) : func * stats =
  if factor <= 1 then (fn, { unrolled = 0 })
  else begin
    let a = { next_vid = fn.fn_nvalues } in
    let unrolled = ref 0 in
    (* vid -> compile-time index constant, built on the way down (SSA:
       a value has one definition, so the table never needs scoping). *)
    let consts : (int, int) Hashtbl.t = Hashtbl.create 32 in
    let def (name : string) (ty : scalar) (rv : rvalue) : value * stmt =
      let v = { vid = a.next_vid; vname = name; vty = ty } in
      a.next_vid <- a.next_vid + 1;
      (v, Let (v, rv))
    in
    (* Constants needed by the rewrites (unroll factor, per-replica
       offsets) are pure, so they are hoisted to the function entry
       instead of being re-materialised on every trip into the loop. *)
    let hoisted : stmt list ref = ref [] in
    let hoist_const (name : string) (i : int) : value =
      let v = { vid = a.next_vid; vname = name; vty = Index } in
      a.next_vid <- a.next_vid + 1;
      hoisted := Let (v, Const (Cidx i)) :: !hoisted;
      v
    in
    let rec go_block (b : block) : block =
      List.concat_map go_stmt b
    and go_stmt (s : stmt) : stmt list =
      match s with
      | Let (v, (Const (Cidx k) as rv)) ->
        Hashtbl.replace consts v.vid k;
        [ Let (v, rv) ]
      | Let _ | Store _ | Prefetch _ -> [ s ]
      | If (c, t, e) -> [ If (c, go_block t, go_block e) ]
      | While w ->
        [ While { w with w_cond = go_block w.w_cond;
                         w_body = go_block w.w_body } ]
      | For f ->
        (match Hashtbl.find_opt consts f.f_step.vid with
         | Some k when k > 0 && not (has_loop f.f_body) ->
           incr unrolled;
           unroll_for k f
         | _ -> [ For { f with f_body = go_block f.f_body } ])
    and unroll_for (k : int) (f : forloop) : stmt list =
      let iv = f.f_iv in
      let c_fk = hoist_const "ufk" (factor * k) in
      (* Trip-count prelude, on the path into the loop.  For the
         ubiquitous step 1 the group boundary is just
         [hi' - (hi' - lo) mod f]; a general step needs the full
         round-down-trip-count computation. *)
      let hi', s_hi = def "uhi" Index (Ibin (Imax, f.f_hi, f.f_lo)) in
      let span, s_span = def "uspan" Index (Ibin (Isub, hi', f.f_lo)) in
      let prelude, main_hi =
        if k = 1 then begin
          let rem, s_rem = def "urem" Index (Ibin (Irem, span, c_fk)) in
          let main_hi, s_mh = def "umainhi" Index (Ibin (Isub, hi', rem)) in
          ([ s_hi; s_span; s_rem; s_mh ], main_hi)
        end
        else begin
          let c_km1 = hoist_const "uk1" (k - 1) in
          let c_k = hoist_const "uk" k in
          let c_f = hoist_const "uf" factor in
          let spanp, s1 = def "uspanp" Index (Ibin (Iadd, span, c_km1)) in
          let trip, s2 = def "utrip" Index (Ibin (Idiv, spanp, c_k)) in
          let tripd, s3 = def "utripd" Index (Ibin (Idiv, trip, c_f)) in
          let tripm, s4 = def "utripm" Index (Ibin (Imul, tripd, c_f)) in
          let offs, s5 = def "uoffs" Index (Ibin (Imul, tripm, c_k)) in
          let main_hi, s6 = def "umainhi" Index (Ibin (Iadd, f.f_lo, offs)) in
          ([ s_hi; s_span; s1; s2; s3; s4; s5; s6 ], main_hi)
        end
      in
      (* Per-replica induction offsets: pure constants, hoisted. *)
      let offsets =
        List.init (factor - 1) (fun r ->
            hoist_const (Printf.sprintf "uoff%d" (r + 1)) ((r + 1) * k))
      in
      (* Main loop: fresh iv and carried args, body replicated [factor]
         times with replica r's carried args fed by replica r-1's yields. *)
      let iv0 = fresh a iv in
      let args0 =
        List.map
          (fun ((arg : value), init) -> (fresh a arg, init))
          f.f_carried
      in
      let rec replicas r (carried_in : value list) acc =
        if r >= factor then (List.rev acc |> List.concat, carried_in)
        else begin
          let subst : (int, value) Hashtbl.t = Hashtbl.create 32 in
          (* Bind the replica's induction value. *)
          let iv_stmts =
            if r = 0 then begin
              Hashtbl.replace subst iv.vid iv0;
              []
            end
            else begin
              let off = List.nth offsets (r - 1) in
              let iv_r = fresh a iv in
              Hashtbl.replace subst iv.vid iv_r;
              [ Let (iv_r, Ibin (Iadd, iv0, off)) ]
            end
          in
          List.iter2
            (fun ((arg : value), _) (v : value) ->
              Hashtbl.replace subst arg.vid v)
            f.f_carried carried_in;
          let body = clone_block a subst f.f_body in
          let outs = List.map (sub subst) f.f_yield in
          replicas (r + 1) outs ((iv_stmts @ body) :: acc)
        end
      in
      let main_body, main_yield =
        replicas 0 (List.map fst args0) []
      in
      let main_results =
        List.map (fun (r : value) -> fresh a r) f.f_results
      in
      let main =
        For
          { f_iv = iv0; f_lo = f.f_lo; f_hi = main_hi; f_step = c_fk;
            f_carried = args0; f_results = main_results; f_body = main_body;
            f_yield = main_yield;
            f_tag = (if f.f_tag = "" then "unrolled"
                     else f.f_tag ^ " unrolled") }
      in
      (* Remainder: the original loop, restarted at main_hi from the main
         loop's results; keeps the original result values alive. *)
      let rem_inits = List.map2 (fun (arg, _) r -> (arg, r))
          f.f_carried main_results
      in
      let remainder = For { f with f_lo = main_hi; f_carried = rem_inits } in
      prelude @ [ main; remainder ]
    in
    let body = go_block fn.fn_body in
    let body = List.rev !hoisted @ body in
    let fn' = { fn with fn_body = body; fn_nvalues = a.next_vid } in
    (match Verify.check_result fn' with
     | Ok () -> ()
     | Error m -> invalid_arg ("unroll: broke the IR: " ^ m));
    (fn', { unrolled = !unrolled })
  end
