(** Innermost-loop unrolling.

    Rewrites each innermost counted [scf.for] whose step is a
    compile-time-positive constant into a main loop advancing
    [factor * step] per iteration with the body replicated [factor]
    times, followed by a remainder loop for the leftover iterations.

    Value-exact by construction: replicas execute in the original
    iteration order (loop-carried values, including float accumulators,
    thread through the replicas sequentially), so outputs are bit-identical
    on every engine.  Only the virtual-cycle profile changes — fewer
    iterations means less per-iteration loop overhead.

    Loops with a non-constant or non-positive step, and loops containing
    nested loops, are left untouched. *)

type stats = { unrolled : int (** loops rewritten *) }

(** [run ~factor fn] unrolls eligible innermost loops by [factor].
    [factor <= 1] is the identity.  The result is re-verified.
    @raise Invalid_argument if the rewrite breaks the IR (a bug). *)
val run : factor:int -> Ir.func -> Ir.func * stats
