(* MLIR-flavoured textual rendering of Ir functions.

   The output is close to the scf/memref/arith dialects the paper's listings
   use, so that the Fig. 3/5/9 benchmark listings read like the paper. Names
   are made unique by suffixing the SSA id when two values share a name. *)

open Ir

let buf_type b = Printf.sprintf "memref<?x%s>" (elem_name b.belem)

(* Values are rendered by their source name, suffixed with the SSA id when
   the same name is defined more than once in the function (temporaries
   named "t" always carry their id). The rename table is rebuilt per
   function by [to_string]. *)
let rename_table : (int, string) Hashtbl.t = Hashtbl.create 64

let pv (v : value) =
  match Hashtbl.find_opt rename_table v.vid with
  | Some s -> "%" ^ s
  | None ->
    if v.vname = "t" then Printf.sprintf "%%t%d" v.vid
    else Printf.sprintf "%%%s" v.vname

let pb (b : buffer) = Printf.sprintf "%%%s" b.bname

(* Collect every value definition in program order and build unique
   printed names. *)
let build_renames (fn : func) =
  Hashtbl.reset rename_table;
  let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let def (v : value) =
    let name = if v.vname = "t" then Printf.sprintf "t%d" v.vid else v.vname in
    match Hashtbl.find_opt seen name with
    | None ->
      Hashtbl.add seen name 1;
      Hashtbl.replace rename_table v.vid name
    | Some k ->
      Hashtbl.replace seen name (k + 1);
      Hashtbl.replace rename_table v.vid (Printf.sprintf "%s_%d" name v.vid)
  in
  let rec go_block b = List.iter go_stmt b
  and go_stmt = function
    | Let (v, _) -> def v
    | Store _ | Prefetch _ -> ()
    | For f ->
      def f.f_iv;
      List.iter (fun (a, _) -> def a) f.f_carried;
      go_block f.f_body;
      List.iter def f.f_results
    | While w ->
      List.iter (fun (a, _) -> def a) w.w_carried;
      go_block w.w_cond;
      go_block w.w_body;
      List.iter def w.w_results
    | If (_, t, e) -> go_block t; go_block e
  in
  List.iter (function Pscalar v -> def v | Pbuf _ -> ()) fn.fn_params;
  go_block fn.fn_body

(* Shortest %g form that parses back to the same bits, so the textual
   form round-trips through Parse. *)
let float_repr f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f || f <> f then s else Printf.sprintf "%.17g" f

let const_str = function
  | Cidx i -> Printf.sprintf "arith.constant %d : index" i
  | Ci64 i -> Printf.sprintf "arith.constant %d : i64" i
  | Cf64 f -> Printf.sprintf "arith.constant %s : f64" (float_repr f)
  | Cbool b -> Printf.sprintf "arith.constant %b : i1" b

let rvalue_str = function
  | Const c -> const_str c
  | Ibin (op, x, y) ->
    Printf.sprintf "%s %s, %s : %s" (ibinop_name op) (pv x) (pv y)
      (scalar_name x.vty)
  | Fbin (op, x, y) ->
    Printf.sprintf "%s %s, %s : f64" (fbinop_name op) (pv x) (pv y)
  | Icmp (pred, x, y) ->
    Printf.sprintf "arith.cmpi %s, %s, %s : %s" (icmp_name pred) (pv x) (pv y)
      (scalar_name x.vty)
  | Select (c, x, y) ->
    Printf.sprintf "arith.select %s, %s, %s : %s" (pv c) (pv x) (pv y)
      (scalar_name x.vty)
  | Load (b, i) ->
    Printf.sprintf "memref.load %s[%s] : %s" (pb b) (pv i) (buf_type b)
  | Dim b -> Printf.sprintf "memref.dim %s, 0 : %s" (pb b) (buf_type b)
  | Cast (ty, v) ->
    Printf.sprintf "arith.index_cast %s : %s to %s" (pv v)
      (scalar_name v.vty) (scalar_name ty)

let line buf indent fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    fmt

let rec pp_block buf indent (b : block) =
  List.iter (pp_stmt buf indent) b

and pp_stmt buf indent = function
  | Let (v, rv) -> line buf indent "%s = %s" (pv v) (rvalue_str rv)
  | Store (b, i, v) ->
    line buf indent "memref.store %s, %s[%s] : %s" (pv v) (pb b) (pv i)
      (buf_type b)
  | Prefetch p ->
    line buf indent "memref.prefetch %s[%s], %s, locality<%d>, data : %s"
      (pb p.pbuf) (pv p.pidx)
      (if p.pwrite then "write" else "read")
      p.plocality (buf_type p.pbuf)
  | For f ->
    let results =
      match f.f_results with
      | [] -> ""
      | rs -> String.concat ", " (List.map pv rs) ^ " = "
    in
    let iter_args =
      match f.f_carried with
      | [] -> ""
      | cs ->
        " iter_args("
        ^ String.concat ", "
            (List.map (fun (a, i) -> Printf.sprintf "%s = %s" (pv a) (pv i))
               cs)
        ^ ")"
    in
    let tag = if f.f_tag = "" then "" else Printf.sprintf "  // %s" f.f_tag in
    line buf indent "%sscf.for %s = %s to %s step %s%s {%s" results
      (pv f.f_iv) (pv f.f_lo) (pv f.f_hi) (pv f.f_step) iter_args tag;
    pp_block buf (indent + 2) f.f_body;
    (match f.f_yield with
     | [] -> ()
     | ys ->
       line buf (indent + 2) "scf.yield %s"
         (String.concat ", " (List.map pv ys)));
    line buf indent "}"
  | While w ->
    let results =
      match w.w_results with
      | [] -> ""
      | rs -> String.concat ", " (List.map pv rs) ^ " = "
    in
    let args =
      String.concat ", "
        (List.map (fun (a, i) -> Printf.sprintf "%s = %s" (pv a) (pv i))
           w.w_carried)
    in
    let tag = if w.w_tag = "" then "" else Printf.sprintf "  // %s" w.w_tag in
    line buf indent "%sscf.while (%s) {%s" results args tag;
    pp_block buf (indent + 2) w.w_cond;
    line buf (indent + 2) "scf.condition(%s) %s" (pv w.w_cond_v)
      (String.concat ", " (List.map (fun (a, _) -> pv a) w.w_carried));
    line buf indent "} do {";
    pp_block buf (indent + 2) w.w_body;
    line buf (indent + 2) "scf.yield %s"
      (String.concat ", " (List.map pv w.w_yield));
    line buf indent "}"
  | If (c, t, e) ->
    line buf indent "scf.if %s {" (pv c);
    pp_block buf (indent + 2) t;
    (match e with
     | [] -> line buf indent "}"
     | _ ->
       line buf indent "} else {";
       pp_block buf (indent + 2) e;
       line buf indent "}")

(** [to_string fn] renders [fn] as MLIR-flavoured text. *)
let to_string (fn : func) =
  build_renames fn;
  let buf = Buffer.create 1024 in
  let params =
    String.concat ", "
      (List.map
         (function
           | Pbuf b -> Printf.sprintf "%s : %s" (pb b) (buf_type b)
           | Pscalar v ->
             Printf.sprintf "%s : %s" (pv v) (scalar_name v.vty))
         fn.fn_params)
  in
  line buf 0 "func.func @%s(%s) {" fn.fn_name params;
  pp_block buf 2 fn.fn_body;
  line buf 0 "}";
  Buffer.contents buf

let print fn = print_string (to_string fn)
