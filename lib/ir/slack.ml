(* Prefetch-slack scheduling (see slack.mli).

   ASaP emits each prefetch directly after the short Let chain computing
   its (verified-bounded) index, so moving the prefetch alone never gets
   anywhere — the whole backward slice has to travel with it.  Per
   block, per round (up to [max_dist] rounds): every statement in a
   prefetch's dependency slice tries to move one slot up.  A move is
   legal when the statement above does not define one of its operands,
   and — for index loads in the slice — when the statement above cannot
   write memory (a store, or a region that may contain one).  Moving a
   pure definition earlier can never break a later use, so values are
   untouched; only issue timing shifts. *)

open Ir

type stats = { moved : int }

(* The value ids a statement defines at its block's level. *)
let defined (s : stmt) : int list =
  match s with
  | Let (v, _) -> [ v.vid ]
  | For f -> List.map (fun (r : value) -> r.vid) f.f_results
  | While w -> List.map (fun (r : value) -> r.vid) w.w_results
  | Store _ | Prefetch _ | If _ -> []

(* The value ids a movable statement reads. *)
let operands (s : stmt) : int list =
  match s with
  | Prefetch p -> [ p.pidx.vid ]
  | Let (_, rv) ->
    (match rv with
     | Const _ | Dim _ -> []
     | Ibin (_, a, b) | Fbin (_, a, b) | Icmp (_, a, b) ->
       [ a.vid; b.vid ]
     | Select (c, a, b) -> [ c.vid; a.vid; b.vid ]
     | Load (_, i) -> [ i.vid ]
     | Cast (_, a) -> [ a.vid ])
  | Store _ | For _ | While _ | If _ -> []

let may_write_memory = function
  | Store _ | For _ | While _ | If _ -> true
  | Let _ | Prefetch _ -> false

let is_load = function Let (_, Load _) -> true | _ -> false

let run ~max_dist (fn : func) : func * stats =
  if max_dist <= 0 then (fn, { moved = 0 })
  else begin
    let moved = ref 0 in
    let rec go_block (b : block) : block =
      let arr = Array.of_list (List.map go_stmt b) in
      let n = Array.length arr in
      (* Original position of each statement, to count real motion. *)
      let orig = Array.init n (fun i -> i) in
      (* Mark the dependency slices: walk bottom-up from each prefetch,
         collecting the block-level Lets that transitively feed it. *)
      let in_slice = Array.make n false in
      let needed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      for i = n - 1 downto 0 do
        match arr.(i) with
        | Prefetch p ->
          in_slice.(i) <- true;
          Hashtbl.replace needed p.pidx.vid ()
        | Let (v, _) when Hashtbl.mem needed v.vid ->
          in_slice.(i) <- true;
          List.iter (fun vid -> Hashtbl.replace needed vid ()) (operands arr.(i))
        | _ -> ()
      done;
      for _round = 1 to max_dist do
        for pos = 1 to n - 1 do
          if in_slice.(pos) then begin
            let s = arr.(pos) and above = arr.(pos - 1) in
            let blocked =
              List.exists
                (fun vid -> List.mem vid (defined above))
                (operands s)
              || (is_load s && may_write_memory above)
            in
            if not blocked then begin
              arr.(pos - 1) <- s;
              arr.(pos) <- above;
              let t = orig.(pos - 1) in
              orig.(pos - 1) <- orig.(pos);
              orig.(pos) <- t;
              let t = in_slice.(pos - 1) in
              in_slice.(pos - 1) <- in_slice.(pos);
              in_slice.(pos) <- t
            end
          end
        done
      done;
      Array.iteri
        (fun i s ->
          match s with
          | Prefetch _ when orig.(i) > i -> incr moved
          | _ -> ())
        arr;
      Array.to_list arr
    and go_stmt = function
      | (Let _ | Store _ | Prefetch _) as s -> s
      | For f -> For { f with f_body = go_block f.f_body }
      | While w ->
        While { w with w_cond = go_block w.w_cond; w_body = go_block w.w_body }
      | If (c, t, e) -> If (c, go_block t, go_block e)
    in
    let fn' = { fn with fn_body = go_block fn.fn_body } in
    (match Verify.check_result fn' with
     | Ok () -> ()
     | Error m -> invalid_arg ("slack: broke the IR: " ^ m));
    (fn', { moved = !moved })
  end
