(** Prefetch-slack scheduling.

    Hoists [memref.prefetch] statements earlier within their enclosing
    block — bounded by the definition point of the prefetched index (the
    verified-bound value stays in scope, so the move is always safe) and
    by a maximum hoist distance.  Issuing a prefetch earlier gives the
    memory system more slack to complete it before the demand load.

    Values are untouched (prefetch has no data semantics); only the
    virtual-cycle timing can change, identically on every engine. *)

type stats = { moved : int (** prefetches hoisted at least one slot *) }

(** [run ~max_dist fn] hoists each prefetch — together with the Let
    chain computing its index, which travels with it — up to [max_dist]
    slots earlier in its block.  Index loads in the slice never cross a
    statement that can write memory.  [max_dist <= 0] is the identity.
    The result is re-verified.
    @raise Invalid_argument if the rewrite breaks the IR (a bug). *)
val run : max_dist:int -> Ir.func -> Ir.func * stats
