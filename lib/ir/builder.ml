(* Imperative construction of Ir functions.

   The builder keeps a stack of open blocks; region-building combinators
   ([for_], [while_], [if_]) push a fresh block, run a user callback that
   emits into it, and pop it into the structured statement. *)

open Ir

type t = {
  mutable next_value : int;
  mutable next_buffer : int;
  mutable blocks : stmt list ref list;   (* innermost first *)
  mutable params : param list;           (* reverse order *)
  mutable const_cache : (const * value) list;
}

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let create () =
  { next_value = 0; next_buffer = 0; blocks = [ ref [] ]; params = [];
    const_cache = [] }

let fresh_value b name ty =
  let v = { vid = b.next_value; vname = name; vty = ty } in
  b.next_value <- b.next_value + 1;
  v

let emit b s =
  match b.blocks with
  | [] -> invalid_arg "Builder.emit: no open block"
  | top :: _ -> top := s :: !top

let push_block b = b.blocks <- ref [] :: b.blocks

let pop_block b =
  match b.blocks with
  | [] | [ _ ] -> invalid_arg "Builder.pop_block: underflow"
  | top :: rest ->
    b.blocks <- rest;
    List.rev !top

(* Parameters *)

let buf b name elem =
  let buffer = { bid = b.next_buffer; bname = name; belem = elem } in
  b.next_buffer <- b.next_buffer + 1;
  b.params <- Pbuf buffer :: b.params;
  buffer

let scalar_param b name ty =
  let v = fresh_value b name ty in
  b.params <- Pscalar v :: b.params;
  v

(* Value-producing ops *)

let let_ b name ty rv =
  let v = fresh_value b name ty in
  emit b (Let (v, rv));
  v

(* Emit into the function's entry block regardless of open regions; every
   region that is still being built will be appended after [s], so the
   definition dominates all uses. *)
let emit_at_entry b s =
  match List.rev b.blocks with
  | [] -> invalid_arg "Builder.emit_at_entry: no open block"
  | entry :: _ -> entry := s :: !entry

(* Make the entry block the innermost open block for the extent of [f]:
   everything [f] emits goes through the normal [emit] path and lands in
   the entry, ahead of the still-open regions that will close after it. *)
let at_entry b f =
  match List.rev b.blocks with
  | [] -> invalid_arg "Builder.at_entry: no open block"
  | entry :: _ ->
    let saved = b.blocks in
    b.blocks <- [ entry ];
    Fun.protect ~finally:(fun () -> b.blocks <- saved) (fun () -> f b)

let const b c =
  (* Constants are cached per function and materialised once in the entry
     block, as MLIR canonicalisation + LICM would ensure. *)
  match List.assoc_opt c b.const_cache with
  | Some v -> v
  | None ->
    let ty, name =
      match c with
      | Cidx i -> Index, Printf.sprintf "c%d" i
      | Ci64 i -> I64, Printf.sprintf "ci%d" i
      | Cf64 f -> F64, Printf.sprintf "cf%g" f
      | Cbool bo -> I1, if bo then "true" else "false"
    in
    let v = fresh_value b name ty in
    emit_at_entry b (Let (v, Const c));
    b.const_cache <- (c, v) :: b.const_cache;
    v

let index b i = const b (Cidx i)
let f64 b f = const b (Cf64 f)

let check_int_pair op x y =
  if x.vty <> y.vty || (x.vty <> Index && x.vty <> I64 && x.vty <> I1) then
    type_error "%s: operands %s:%s and %s:%s must be matching integers"
      op x.vname (scalar_name x.vty) y.vname (scalar_name y.vty)

let ibin b op x y =
  check_int_pair (ibinop_name op) x y;
  let_ b "t" x.vty (Ibin (op, x, y))

let iadd b x y = ibin b Iadd x y
let isub b x y = ibin b Isub x y
let imul b x y = ibin b Imul x y
let imin b x y = ibin b Imin x y
let imax b x y = ibin b Imax x y

let fbin b op x y =
  if x.vty <> F64 || y.vty <> F64 then
    type_error "%s: operands must be f64" (fbinop_name op);
  let_ b "t" F64 (Fbin (op, x, y))

let fadd b x y = fbin b Fadd x y
let fmul b x y = fbin b Fmul x y

let icmp b pred x y =
  check_int_pair "arith.cmpi" x y;
  let_ b "t" I1 (Icmp (pred, x, y))

let select b c x y =
  if c.vty <> I1 then type_error "select: condition must be i1";
  if x.vty <> y.vty then type_error "select: branch types differ";
  let_ b "t" x.vty (Select (c, x, y))

let load b ?(name = "t") buffer idx =
  if idx.vty <> Index then
    type_error "memref.load %s[%s]: index must have type index, got %s"
      buffer.bname idx.vname (scalar_name idx.vty);
  let_ b name (scalar_of_elem buffer.belem) (Load (buffer, idx))

let dim b buffer = let_ b (buffer.bname ^ "_sz") Index (Dim buffer)

let cast b ty v = let_ b "t" ty (Cast (ty, v))

(* Statements *)

let store b buffer idx v =
  if idx.vty <> Index then
    type_error "memref.store %s[%s]: index must have type index" buffer.bname
      idx.vname;
  if v.vty <> scalar_of_elem buffer.belem then
    type_error "memref.store into %s: value type %s does not match element %s"
      buffer.bname (scalar_name v.vty) (elem_name buffer.belem);
  emit b (Store (buffer, idx, v))

let prefetch b ?(write = false) ?(locality = 2) buffer idx =
  if idx.vty <> Index then
    type_error "memref.prefetch %s: index must have type index" buffer.bname;
  emit b (Prefetch { pbuf = buffer; pidx = idx; pwrite = write;
                     plocality = locality })

let check_yield what carried yield =
  if List.length carried <> List.length yield then
    type_error "%s: yield arity %d does not match %d carried values" what
      (List.length yield) (List.length carried);
  List.iter2
    (fun (arg, _) y ->
      if arg.vty <> y.vty then
        type_error "%s: yield for %s has type %s, expected %s" what arg.vname
          (scalar_name y.vty) (scalar_name arg.vty))
    carried yield

(** [for_ b ~tag name lo hi body] emits a counted loop. [body] receives the
    induction variable and the carried region arguments and returns the
    yielded next values; the final carried values are returned. *)
let for_ b ?(tag = "") ?step ?(carried = []) name lo hi body =
  let step = match step with Some s -> s | None -> index b 1 in
  let iv = fresh_value b name Index in
  let args =
    List.map (fun (nm, ty, _init) -> fresh_value b nm ty) carried
  in
  let inits = List.map (fun (_, _, init) -> (init : value)) carried in
  push_block b;
  let yield = body iv args in
  let blk = pop_block b in
  let carried_pairs = List.combine args inits in
  check_yield "scf.for" carried_pairs yield;
  let results =
    List.map (fun (arg : value) -> fresh_value b (arg.vname ^ "_out") arg.vty)
      args
  in
  emit b
    (For { f_iv = iv; f_lo = lo; f_hi = hi; f_step = step;
           f_carried = carried_pairs; f_results = results; f_body = blk;
           f_yield = yield; f_tag = tag });
  results

(** Simple counted loop with no carried values. *)
let for0 b ?tag ?step name lo hi body =
  let (_ : value list) =
    for_ b ?tag ?step name lo hi (fun iv args ->
        assert (args = []);
        body iv;
        [])
  in
  ()

(** [while_ b ~tag carried cond body] emits an scf.while. [carried] gives
    (name, type, initial value) for each carried value; [cond] and [body]
    receive the region arguments; [cond] returns the continuation condition,
    [body] the next carried values. Returns the final carried values. *)
let while_ b ?(tag = "") carried cond body =
  let args = List.map (fun (nm, ty, _) -> fresh_value b nm ty) carried in
  let inits = List.map (fun (_, _, init) -> (init : value)) carried in
  push_block b;
  let cond_v = cond args in
  let cond_blk = pop_block b in
  if cond_v.vty <> I1 then type_error "scf.while: condition must be i1";
  push_block b;
  let yield = body args in
  let body_blk = pop_block b in
  let carried_pairs = List.combine args inits in
  check_yield "scf.while" carried_pairs yield;
  let results =
    List.map (fun (arg : value) -> fresh_value b (arg.vname ^ "_out") arg.vty)
      args
  in
  emit b
    (While { w_carried = carried_pairs; w_results = results;
             w_cond = cond_blk; w_cond_v = cond_v; w_body = body_blk;
             w_yield = yield; w_tag = tag });
  results

let if_ b cond then_ else_ =
  if cond.vty <> I1 then type_error "scf.if: condition must be i1";
  push_block b;
  then_ ();
  let t = pop_block b in
  push_block b;
  else_ ();
  let e = pop_block b in
  emit b (If (cond, t, e))

(** [finish b name] closes the builder and produces the function. *)
let finish b name =
  match b.blocks with
  | [ top ] ->
    { fn_name = name; fn_params = List.rev b.params;
      fn_body = List.rev !top; fn_nvalues = b.next_value;
      fn_nbufs = b.next_buffer }
  | _ -> invalid_arg "Builder.finish: unclosed regions remain"
