(** Chrome trace_event exporter: consumes {!Sink} events and renders the
    catapult / Perfetto JSON format — one track per core (demand loads as
    duration events, stores and software prefetches as instants), one per
    cache level (demand misses, hardware-prefetch issues, dropped fills),
    and a matched "B"/"E" run span per track. Timestamps are simulated
    cycles, sorted non-decreasing at write time. *)

type t

val create : unit -> t

(** [sink ?pf_name t] adapts [t] to the event-hook interface; [pf_name]
    names hardware-prefetcher provenance ids (default ["pf<i>"]). *)
val sink : ?pf_name:(int -> string) -> t -> Sink.t

(** [n_events t] is the number of body events recorded so far. *)
val n_events : t -> int

(** {1 Direct producers}

    For components that are not behind a {!Sink} — the serve scheduler
    records one complete span per request this way. Tracks are created
    on first use; [args] ride in the event's ["args"] object. *)

(** [add_complete t ~track ~name ~cat ~ts ~dur args] records a complete
    ("X") span; negative [dur] clamps to 0. *)
val add_complete :
  t -> track:string -> name:string -> cat:string -> ts:int -> dur:int ->
  (string * Jsonu.t) list -> unit

(** [add_instant t ~track ~name ~cat ~ts args] records an instant event. *)
val add_instant :
  t -> track:string -> name:string -> cat:string -> ts:int ->
  (string * Jsonu.t) list -> unit

(** [to_json t] is the assembled trace document. *)
val to_json : t -> Jsonu.t

val to_string : t -> string

(** [write t path] writes the trace JSON to [path]. *)
val write : t -> string -> unit
