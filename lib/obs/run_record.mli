(** JSONL run records: one JSON object per line, appended and flushed as
    runs complete — the benchmark grid's machine-readable output. *)

type t

(** [open_path p] opens [p] for appending (creating it if needed). *)
val open_path : string -> t

val of_channel : out_channel -> t

(** [emit t fields] appends one record line and flushes. *)
val emit : t -> (string * Jsonu.t) list -> unit

(** [counters_field reg] is the standard ["counters"] field: the whole
    registry as a sorted JSON object. *)
val counters_field : Registry.t -> string * Jsonu.t

(** [count t] is the number of records emitted so far. *)
val count : t -> int

val close : t -> unit
