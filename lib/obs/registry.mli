(** Named-counter registry: stable dotted names ("core.cycles",
    "l2.miss.demand", "pf.sw.late", ...) mapping to integer counts. The
    canonical export is the name-sorted assoc list, so two registries are
    byte-identical exactly when every counter agrees. The catalogue of
    names is documented in DESIGN.md §3c. *)

type t

val create : unit -> t

(** [set t name v] registers [name] at [v], overwriting. *)
val set : t -> string -> int -> unit

(** [add t name v] adds [v] to [name] (registering at [v] if absent). *)
val add : t -> string -> int -> unit

val get : t -> string -> int option

(** [find t name] defaults to 0: counters that never fired read as 0. *)
val find : t -> string -> int

val cardinal : t -> int

(** [sum_prefix t ?leaf prefix] sums counters whose name starts with
    [prefix] and (when [leaf] is given) ends with [".leaf"]; 0 when
    nothing matches. E.g. [sum_prefix t ~leaf:"ok" "serve.shard."]
    folds [serve.shard.<i>.ok] over every shard. *)
val sum_prefix : t -> ?leaf:string -> string -> int

(** [to_assoc t] is the canonical export: counters sorted by name. *)
val to_assoc : t -> (string * int) list

(** [names t] in sorted order. *)
val names : t -> string list

val of_assoc : (string * int) list -> t

(** [snapshot t] is an immutable copy of [t]'s current counters —
    subsequent mutation of [t] does not affect it. *)
val snapshot : t -> t

(** [diff ~before ~after] is the per-counter change [after - before],
    name-sorted, dropping unchanged counters. Counters absent on one
    side read as 0. *)
val diff : before:t -> after:t -> (string * int) list

(** [to_json t] is one JSON object, keys sorted. *)
val to_json : t -> string

(** [pp ppf t] prints one [name value] line per counter, sorted. *)
val pp : Format.formatter -> t -> unit
