(** Minimal JSON emission for the observability exporters (the container
    has no JSON package; we only ever write JSON). Field order is the
    order callers pass. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float     (** NaN / infinities serialise as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [to_string j] is the compact (single-line) serialisation of [j]. *)
val to_string : t -> string

(** [to_buffer b j] appends the serialisation of [j] to [b]. *)
val to_buffer : Buffer.t -> t -> unit

(** {1 Parsing}

    Added when the serve subsystem made this layer bidirectional
    (request files are JSONL in, run records are JSONL out). *)

(** [of_string s] parses one JSON document. Numbers without ['.'] / ['e']
    parse as [Int], others as [Float]; [\uXXXX] escapes decode to UTF-8.
    Trailing whitespace is allowed, trailing garbage is an [Error]. *)
val of_string : string -> (t, string) result

(** {1 Accessors} — shallow, total destructors for parsed documents. *)

(** [member k j] is field [k] of object [j] ([None] on non-objects). *)
val member : string -> t -> t option

(** [Int], or an integral [Float]. *)
val to_int_opt : t -> int option

(** [Float], or an [Int] widened. *)
val to_float_opt : t -> float option

val to_str_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
