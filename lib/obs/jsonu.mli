(** Minimal JSON emission for the observability exporters (the container
    has no JSON package; we only ever write JSON). Field order is the
    order callers pass. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float     (** NaN / infinities serialise as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [to_string j] is the compact (single-line) serialisation of [j]. *)
val to_string : t -> string

(** [to_buffer b j] appends the serialisation of [j] to [b]. *)
val to_buffer : Buffer.t -> t -> unit
