(** Structured event-trace sink: the zero-cost-when-off hook the memory
    hierarchy reports events through. Producers must test [enabled]
    before constructing an event, so a disabled sink costs one branch per
    access and allocates nothing. *)

(** Cache level that serviced / received an event: 1 = L1, 2 = L2,
    3 = L3, 4 = DRAM; 0 = merged with an in-flight fill (MSHR hit). *)
type level = int

type drop_reason =
  | Mshr_full          (** fill dropped: no MSHR free *)
  | Present            (** fill dropped: line already present or in flight *)

type ev =
  | Load of { core : int; pc : int; addr : int; at : int; ready : int;
              level : level }
  | Store of { core : int; pc : int; addr : int; at : int }
  | Sw_prefetch of { core : int; addr : int; locality : int; at : int;
                     issued : bool }
  | Hw_prefetch of { core : int; src : int; line : int; at : int;
                     level : level }
  | Drop of { core : int; prov : int; line : int; at : int; level : level;
              reason : drop_reason }

type t = { enabled : bool; emit : ev -> unit }

(** The disabled sink; checking [enabled] is the only cost. *)
val null : t

(** [make emit] is an enabled sink forwarding to [emit]. *)
val make : (ev -> unit) -> t

(** [tee a b] forwards to both sinks; enabled iff either is. *)
val tee : t -> t -> t

(** [ev_time e] is the simulated cycle the event occurred at. *)
val ev_time : ev -> int

(** [level_name l] is "L1" / "L2" / "L3" / "DRAM" / "MSHR". *)
val level_name : level -> string
