(* Chrome trace_event exporter.

   Consumes {!Sink} events and renders the catapult / Perfetto JSON
   format (load it at chrome://tracing or https://ui.perfetto.dev). The
   mapping:

   - one track per core ("core0", "core1", ...): every demand load is a
     complete ("X") event spanning issue -> data-ready, named by the
     level that serviced it; stores and software prefetches are instant
     events;
   - one track per cache level ("L1", "L2", "L3", "DRAM", "MSHR"):
     demand misses serviced there, hardware-prefetch issues (named by
     prefetcher) and dropped fills appear as instant events;
   - per track, one "run" duration event (matched "B"/"E" pair) spanning
     the whole simulation, so track extents are visible at a glance.

   Timestamps are simulated cycles reported in the trace's microsecond
   field — the viewer's absolute unit is meaningless for a simulator, so
   1 us = 1 cycle. Events are buffered and sorted by timestamp at write
   time (viewers require non-decreasing ts within a stream). *)

type phase = B | E | X | I

type tev = {
  e_ph : phase;
  e_name : string;
  e_cat : string;
  e_ts : int;
  e_dur : int;                       (* X only *)
  e_tid : int;
  e_args : (string * Jsonu.t) list;
}

type t = {
  mutable events : tev list;         (* body events, reverse order *)
  mutable n : int;
  tracks : (string, int) Hashtbl.t;  (* track name -> tid *)
  mutable track_rev : string list;   (* registration order, reversed *)
  mutable next_tid : int;
}

let create () =
  { events = []; n = 0; tracks = Hashtbl.create 16; track_rev = [];
    next_tid = 1 }

let n_events t = t.n

let tid t track =
  match Hashtbl.find_opt t.tracks track with
  | Some id -> id
  | None ->
    let id = t.next_tid in
    t.next_tid <- id + 1;
    Hashtbl.add t.tracks track id;
    t.track_rev <- track :: t.track_rev;
    id

let push t ev =
  t.events <- ev :: t.events;
  t.n <- t.n + 1

(** [add_complete t ~track ~name ~cat ~ts ~dur args] records a complete
    ("X") span on [track]; negative durations clamp to 0. Used directly
    by non-{!Sink} producers (the serve scheduler's per-request spans). *)
let add_complete t ~track ~name ~cat ~ts ~dur args =
  push t
    { e_ph = X; e_name = name; e_cat = cat; e_ts = ts;
      e_dur = (if dur > 0 then dur else 0); e_tid = tid t track;
      e_args = args }

(** [add_instant t ~track ~name ~cat ~ts args] records an instant ("i")
    event on [track]. *)
let add_instant t ~track ~name ~cat ~ts args =
  push t
    { e_ph = I; e_name = name; e_cat = cat; e_ts = ts; e_dur = 0;
      e_tid = tid t track; e_args = args }

let core_track core = "core" ^ string_of_int core

(** [sink ?pf_name t] adapts [t] to the event-hook interface; [pf_name]
    names hardware-prefetcher provenance ids (default ["pf<i>"]). *)
let sink ?(pf_name = fun i -> "pf" ^ string_of_int i) t : Sink.t =
  Sink.make (fun (e : Sink.ev) ->
      match e with
      | Sink.Load { core; pc; addr; at; ready; level } ->
        add_complete t ~track:(core_track core)
          ~name:("load " ^ Sink.level_name level) ~cat:"mem" ~ts:at
          ~dur:(ready - at)
          [ ("pc", Jsonu.Int pc); ("addr", Jsonu.Int addr) ];
        if level >= 2 then
          add_instant t ~track:(Sink.level_name level) ~name:"demand"
            ~cat:"mem" ~ts:at
            [ ("core", Jsonu.Int core); ("addr", Jsonu.Int addr) ]
      | Sink.Store { core; pc; addr; at } ->
        add_instant t ~track:(core_track core) ~name:"store" ~cat:"mem" ~ts:at
          [ ("pc", Jsonu.Int pc); ("addr", Jsonu.Int addr) ]
      | Sink.Sw_prefetch { core; addr; locality; at; issued } ->
        add_instant t ~track:(core_track core)
          ~name:(if issued then "sw-pf" else "sw-pf drop")
          ~cat:"pf" ~ts:at
          [ ("addr", Jsonu.Int addr); ("locality", Jsonu.Int locality) ]
      | Sink.Hw_prefetch { core; src; line; at; level } ->
        add_instant t ~track:(Sink.level_name level) ~name:(pf_name src)
          ~cat:"pf" ~ts:at
          [ ("core", Jsonu.Int core); ("line", Jsonu.Int line) ]
      | Sink.Drop { core; prov; line; at; level; reason } ->
        add_instant t ~track:(Sink.level_name level)
          ~name:
            (match reason with
             | Sink.Mshr_full -> "drop:no-mshr"
             | Sink.Present -> "drop:present")
          ~cat:"pf" ~ts:at
          [ ("core", Jsonu.Int core); ("prov", Jsonu.Int prov);
            ("line", Jsonu.Int line) ])

let pid = 1

let json_of_tev (e : tev) =
  let base =
    [ ("name", Jsonu.Str e.e_name);
      ("cat", Jsonu.Str e.e_cat);
      ("ph",
       Jsonu.Str
         (match e.e_ph with B -> "B" | E -> "E" | X -> "X" | I -> "i"));
      ("ts", Jsonu.Int e.e_ts);
      ("pid", Jsonu.Int pid);
      ("tid", Jsonu.Int e.e_tid) ]
  in
  let dur = match e.e_ph with X -> [ ("dur", Jsonu.Int e.e_dur) ] | _ -> [] in
  let scope = match e.e_ph with I -> [ ("s", Jsonu.Str "t") ] | _ -> [] in
  let args =
    match e.e_args with [] -> [] | a -> [ ("args", Jsonu.Obj a) ]
  in
  Jsonu.Obj (base @ dur @ scope @ args)

(** [to_json t] assembles the full trace: process/thread metadata, one
    "run" B/E pair per track, and all body events in non-decreasing
    timestamp order. *)
let to_json t =
  let body =
    List.stable_sort
      (fun a b -> compare a.e_ts b.e_ts)
      (List.rev t.events)
  in
  let ts_min = match body with [] -> 0 | e :: _ -> e.e_ts in
  let ts_max = List.fold_left (fun m e -> max m (e.e_ts + e.e_dur)) ts_min body in
  let tracks = List.rev t.track_rev in
  let meta =
    Jsonu.Obj
      [ ("name", Jsonu.Str "process_name"); ("ph", Jsonu.Str "M");
        ("ts", Jsonu.Int 0); ("pid", Jsonu.Int pid); ("tid", Jsonu.Int 0);
        ("args", Jsonu.Obj [ ("name", Jsonu.Str "asap-sim") ]) ]
    :: List.map
         (fun track ->
           Jsonu.Obj
             [ ("name", Jsonu.Str "thread_name"); ("ph", Jsonu.Str "M");
               ("ts", Jsonu.Int 0); ("pid", Jsonu.Int pid);
               ("tid", Jsonu.Int (Hashtbl.find t.tracks track));
               ("args", Jsonu.Obj [ ("name", Jsonu.Str track) ]) ])
         tracks
  in
  let spans ph ts =
    List.map
      (fun track ->
        json_of_tev
          { e_ph = ph; e_name = "run"; e_cat = "run"; e_ts = ts; e_dur = 0;
            e_tid = Hashtbl.find t.tracks track; e_args = [] })
      tracks
  in
  Jsonu.Obj
    [ ("traceEvents",
       Jsonu.List
         (meta @ spans B ts_min @ List.map json_of_tev body @ spans E ts_max));
      ("displayTimeUnit", Jsonu.Str "ms") ]

let to_string t = Jsonu.to_string (to_json t)

(** [write t path] writes the trace JSON to [path]. *)
let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
