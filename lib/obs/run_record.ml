(* JSONL run records.

   One JSON object per line, appended as runs complete — the benchmark
   grid's machine-readable output. Each record is a flat object the
   caller assembles (cell identity, throughput, and the counter registry
   nested under "counters"); this module only owns the framing: append
   mode, one line per record, flush per record so partial grids are
   still readable. *)

type t = { oc : out_channel; mutable n : int }

(** [open_path p] opens [p] for appending (creating it if needed). *)
let open_path path =
  { oc = open_out_gen [ Open_append; Open_creat ] 0o644 path; n = 0 }

let of_channel oc = { oc; n = 0 }

(** [emit t fields] appends one record line and flushes. *)
let emit t fields =
  output_string t.oc (Jsonu.to_string (Jsonu.Obj fields));
  output_char t.oc '\n';
  flush t.oc;
  t.n <- t.n + 1

(** [counters_field reg] is the standard ["counters"] field: the whole
    registry as a sorted JSON object. *)
let counters_field reg =
  ( "counters",
    Jsonu.Obj
      (List.map (fun (k, v) -> (k, Jsonu.Int v)) (Registry.to_assoc reg)) )

let count t = t.n

let close t = close_out t.oc
