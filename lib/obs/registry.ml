(* Named-counter registry.

   Every PMU-style counter carries a stable dotted name ("core.cycles",
   "l2.miss.demand", "pf.sw.late", ...) so consumers address counters by
   name instead of destructuring a record — adding a counter never breaks
   a consumer again. The canonical export is the name-sorted assoc list:
   two registries over the same run are byte-identical exactly when every
   counter agrees, which is what the engine-differential tests compare.

   The name catalogue lives in DESIGN.md §3c; the conventional segments:

     core.*      retired-instruction / cycle counters, per run
     mem.*       demand-access totals at the memory port
     l1.* l2.* l3.* dram.*   per-level demand-miss / traffic counters
     pf.<who>.*  per-prefetcher breakdowns, <who> in {sw, l1_nlp, l1_ipp,
                 l2_nlp, mlc_streamer, l2_amp, llc_streamer}
     op.*        per-IR-op attribution (PC -> op -> loop depth) *)

type t = { tbl : (string, int) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

(** [set t name v] registers [name] with value [v], overwriting any
    previous value. *)
let set t name v = Hashtbl.replace t.tbl name v

(** [add t name v] adds [v] to [name]'s value (registering it at [v] if
    absent). *)
let add t name v =
  match Hashtbl.find_opt t.tbl name with
  | Some x -> Hashtbl.replace t.tbl name (x + v)
  | None -> Hashtbl.replace t.tbl name v

let get t name = Hashtbl.find_opt t.tbl name

(** [find t name] is [get] defaulting to 0 — counters that never fired
    read as zero. *)
let find t name = match get t name with Some v -> v | None -> 0

let cardinal t = Hashtbl.length t.tbl

(** [sum_prefix t ?leaf prefix] sums every counter whose name starts
    with [prefix] — and, when [leaf] is given, also ends with
    [".leaf"] — so fleet aggregates over per-shard counters are derived
    rather than maintained:
    [sum_prefix t ~leaf:"ok" "serve.shard."] folds
    [serve.shard.<i>.ok] over every shard. 0 when nothing matches. *)
let sum_prefix t ?leaf prefix =
  let want name =
    String.starts_with ~prefix name
    && (match leaf with
        | None -> true
        | Some l -> String.ends_with ~suffix:("." ^ l) name)
  in
  Hashtbl.fold (fun k v acc -> if want k then acc + v else acc) t.tbl 0

(** [to_assoc t] is the canonical export: counters sorted by name. *)
let to_assoc t =
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) items

let names t = List.map fst (to_assoc t)

let of_assoc items =
  let t = create () in
  List.iter (fun (k, v) -> set t k v) items;
  t

(** [snapshot t] is an immutable copy of [t]'s current counters. *)
let snapshot t = { tbl = Hashtbl.copy t.tbl }

(** [diff ~before ~after] is the per-counter change [after - before],
    name-sorted, dropping counters whose value did not change. Counters
    absent on one side read as 0, so newly-registered counters appear
    with their full value and deleted ones as a negative delta. *)
let diff ~before ~after =
  let names =
    List.sort_uniq String.compare (names before @ names after)
  in
  List.filter_map
    (fun name ->
      let d = find after name - find before name in
      if d = 0 then None else Some (name, d))
    names

(** [to_json t] is a single JSON object, keys in sorted order. *)
let to_json t =
  Jsonu.to_string (Jsonu.Obj (List.map (fun (k, v) -> (k, Jsonu.Int v)) (to_assoc t)))

(** [pp ppf t] prints one [name value] line per counter, sorted. *)
let pp ppf t =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-36s %d@\n" k v)
    (to_assoc t)
