(* Structured event-trace sink.

   The simulator's memory hierarchy reports every observable memory-system
   event through one of these sinks. The hook is zero-cost when off: the
   hierarchy tests [enabled] (a plain bool) before constructing any event,
   so a disabled sink adds one predictable branch per access and allocates
   nothing — the engine-differential and bench-smoke checks hold the two
   execution engines to cycle-exactness and the tracing-off wall-clock to
   the recorded baseline.

   Events use plain ints (core index, simulated cycles, byte addresses,
   prefetcher provenance ids) so this library depends on nothing; the
   simulator adapts its own types at the call sites. *)

(** Cache level that serviced / received an event: 1 = L1, 2 = L2,
    3 = L3, 4 = DRAM; 0 = merged with an in-flight fill (MSHR hit). *)
type level = int

type drop_reason =
  | Mshr_full          (** fill dropped: no MSHR free *)
  | Present            (** fill dropped: line already present or in flight *)

type ev =
  | Load of { core : int; pc : int; addr : int; at : int; ready : int;
              level : level }
  | Store of { core : int; pc : int; addr : int; at : int }
  | Sw_prefetch of { core : int; addr : int; locality : int; at : int;
                     issued : bool }
  | Hw_prefetch of { core : int; src : int; line : int; at : int;
                     level : level }
  | Drop of { core : int; prov : int; line : int; at : int; level : level;
              reason : drop_reason }

type t = { enabled : bool; emit : ev -> unit }

(** The disabled sink: [enabled = false], emission is [ignore]. Producers
    must check [enabled] before building events; [null] makes the check
    the only cost. *)
let null = { enabled = false; emit = ignore }

let make emit = { enabled = true; emit }

(** [tee a b] forwards every event to both sinks; enabled iff either is.
    Disabled legs are skipped. *)
let tee a b =
  match (a.enabled, b.enabled) with
  | false, false -> null
  | true, false -> a
  | false, true -> b
  | true, true ->
    { enabled = true;
      emit = (fun e -> a.emit e; b.emit e) }

let ev_time = function
  | Load { at; _ } | Store { at; _ } | Sw_prefetch { at; _ }
  | Hw_prefetch { at; _ } | Drop { at; _ } -> at

let level_name = function
  | 0 -> "MSHR"
  | 1 -> "L1"
  | 2 -> "L2"
  | 3 -> "L3"
  | 4 -> "DRAM"
  | n -> "L" ^ string_of_int n
