(* Minimal JSON emission. The observability exporters (counter registry,
   Chrome traces, JSONL run records) only ever *write* JSON, and the
   container has no JSON package, so this is a small purpose-built
   printer: correct string escaping, locale-independent numbers, and
   deterministic field order (callers pass fields in the order they want
   them serialised). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* %.17g round-trips every float; strip to the shortest representation
   the printf family offers that is still exact. Infinities and NaN are
   not valid JSON — clamp them to null. *)
let float_repr x =
  if Float.is_nan x || Float.is_integer (x /. 0.) then None
  else
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then Some s else Some (Printf.sprintf "%.17g" x)

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float x ->
    (match float_repr x with
     | None -> Buffer.add_string b "null"
     | Some s -> Buffer.add_string b s)
  | Str s ->
    Buffer.add_char b '"';
    buf_escape b s;
    Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        buf_escape b k;
        Buffer.add_string b "\":";
        emit b v)
      fields;
    Buffer.add_char b '}'

(** [to_string j] is the compact (single-line) serialisation of [j]. *)
let to_string j =
  let b = Buffer.create 256 in
  emit b j;
  Buffer.contents b

(** [to_buffer b j] appends the serialisation of [j] to [b]. *)
let to_buffer = emit

(* --- Parsing -------------------------------------------------------- *)

(* A small recursive-descent parser, added when the serve subsystem made
   the observability layer bidirectional (request files are JSONL in, run
   records are JSONL out). Accepts standard JSON; numbers without '.',
   'e' or 'E' parse as [Int], everything else as [Float]; [\uXXXX]
   escapes are encoded as UTF-8 (surrogate pairs supported). *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c (Printf.sprintf "expected %c, found %c" ch x)
  | None -> fail c (Printf.sprintf "expected %c, found end of input" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let hex4 c =
  if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let d =
      match c.s.[c.pos + i] with
      | '0' .. '9' as ch -> Char.code ch - Char.code '0'
      | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
      | _ -> fail c "invalid \\u escape"
    in
    v := (!v lsl 4) lor d
  done;
  c.pos <- c.pos + 4;
  !v

let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
       | None -> fail c "unterminated escape"
       | Some ch ->
         c.pos <- c.pos + 1;
         (match ch with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            let cp = hex4 c in
            let cp =
              if cp >= 0xD800 && cp <= 0xDBFF
                 && c.pos + 1 < String.length c.s
                 && c.s.[c.pos] = '\\' && c.s.[c.pos + 1] = 'u'
              then begin
                c.pos <- c.pos + 2;
                let lo = hex4 c in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                else fail c "invalid low surrogate"
              end
              else cp
            in
            add_utf8 b cp
          | _ -> fail c "invalid escape"));
      loop ()
    | Some ch ->
      Buffer.add_char b ch;
      c.pos <- c.pos + 1;
      loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume () = c.pos <- c.pos + 1 in
  if peek c = Some '-' then consume ();
  let rec digits () =
    match peek c with
    | Some ('0' .. '9') -> consume (); digits ()
    | _ -> ()
  in
  digits ();
  if peek c = Some '.' then begin
    is_float := true;
    consume ();
    digits ()
  end;
  (match peek c with
   | Some ('e' | 'E') ->
     is_float := true;
     consume ();
     (match peek c with Some ('+' | '-') -> consume () | _ -> ());
     digits ()
   | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c ("invalid number " ^ text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (* magnitude beyond native int: keep the value, as a float *)
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> fail c ("invalid number " ^ text))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "expected a value, found end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> c.pos <- c.pos + 1; items (v :: acc)
        | Some ']' -> c.pos <- c.pos + 1; List.rev (v :: acc)
        | _ -> fail c "expected , or ] in array"
      in
      List (items [])
    end
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' -> c.pos <- c.pos + 1; fields (kv :: acc)
        | Some '}' -> c.pos <- c.pos + 1; List.rev (kv :: acc)
        | _ -> fail c "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some ch -> fail c (Printf.sprintf "unexpected character %c" ch)

(** [of_string s] parses one JSON document (trailing whitespace allowed,
    trailing garbage rejected). *)
let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos < String.length s then
      Error (Printf.sprintf "at offset %d: trailing garbage" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- Accessors ------------------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
