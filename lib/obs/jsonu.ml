(* Minimal JSON emission. The observability exporters (counter registry,
   Chrome traces, JSONL run records) only ever *write* JSON, and the
   container has no JSON package, so this is a small purpose-built
   printer: correct string escaping, locale-independent numbers, and
   deterministic field order (callers pass fields in the order they want
   them serialised). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* %.17g round-trips every float; strip to the shortest representation
   the printf family offers that is still exact. Infinities and NaN are
   not valid JSON — clamp them to null. *)
let float_repr x =
  if Float.is_nan x || Float.is_integer (x /. 0.) then None
  else
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then Some s else Some (Printf.sprintf "%.17g" x)

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float x ->
    (match float_repr x with
     | None -> Buffer.add_string b "null"
     | Some s -> Buffer.add_string b s)
  | Str s ->
    Buffer.add_char b '"';
    buf_escape b s;
    Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        buf_escape b k;
        Buffer.add_string b "\":";
        emit b v)
      fields;
    Buffer.add_char b '}'

(** [to_string j] is the compact (single-line) serialisation of [j]. *)
let to_string j =
  let b = Buffer.create 256 in
  emit b j;
  Buffer.contents b

(** [to_buffer b j] appends the serialisation of [j] to [b]. *)
let to_buffer = emit
