(* Textual pipeline specifications.

   Grammar (whitespace allowed between tokens):

     spec   ::= item (',' item)*
     item   ::= name params?
     params ::= '{' binding (',' binding)* '}'
     binding ::= name '=' (int | name)

   e.g. "sparsify,asap{d=32},licm,fold,unroll{f=4}".  Parse errors carry
   the 1-based character position of the offending token so CLI and
   config errors can point into the spec string. *)

(** A parameter value: an integer or a bare symbol (e.g. [strategy=both]). *)
type pvalue = Vint of int | Vsym of string

let pvalue_to_string = function
  | Vint i -> string_of_int i
  | Vsym s -> s

(** One pass invocation: name plus explicit parameter bindings, in source
    order. *)
type item = { pi_name : string; pi_params : (string * pvalue) list }

type t = item list

exception Error of { pos : int; msg : string }

let err ~pos fmt = Printf.ksprintf (fun msg -> raise (Error { pos; msg })) fmt

let is_ident_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9') || ch = '_' || ch = '-'

let is_digit ch = ch >= '0' && ch <= '9'

type cursor = { text : string; mutable pos : int }

let at_end c = c.pos >= String.length c.text

let skip_ws c =
  while (not (at_end c)) && (c.text.[c.pos] = ' ' || c.text.[c.pos] = '\t') do
    c.pos <- c.pos + 1
  done

let peek c = if at_end c then None else Some c.text.[c.pos]

let eat c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> err ~pos:(c.pos + 1) "expected '%c'" ch

let ident c =
  skip_ws c;
  let start = c.pos in
  while (not (at_end c)) && is_ident_char c.text.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then err ~pos:(start + 1) "expected a pass or parameter name";
  String.sub c.text start (c.pos - start)

let value c =
  skip_ws c;
  let start = c.pos in
  let negative = (not (at_end c)) && c.text.[c.pos] = '-' in
  if negative then c.pos <- c.pos + 1;
  match peek c with
  | Some ch when is_digit ch ->
    while (not (at_end c)) && is_digit c.text.[c.pos] do
      c.pos <- c.pos + 1
    done;
    Vint (int_of_string (String.sub c.text start (c.pos - start)))
  | _ when negative -> err ~pos:(start + 1) "expected digits after '-'"
  | _ -> Vsym (ident c)

let params c =
  eat c '{';
  let rec go acc =
    let key = ident c in
    eat c '=';
    let v = value c in
    if List.mem_assoc key acc then
      err ~pos:(c.pos + 1) "duplicate parameter %S" key;
    let acc = acc @ [ (key, v) ] in
    skip_ws c;
    match peek c with
    | Some ',' -> c.pos <- c.pos + 1; go acc
    | Some '}' -> c.pos <- c.pos + 1; acc
    | _ -> err ~pos:(c.pos + 1) "expected ',' or '}' in parameter list"
  in
  go []

let item c =
  let name = ident c in
  skip_ws c;
  match peek c with
  | Some '{' -> { pi_name = name; pi_params = params c }
  | _ -> { pi_name = name; pi_params = [] }

let parse (text : string) : t =
  let c = { text; pos = 0 } in
  skip_ws c;
  if at_end c then err ~pos:1 "empty pipeline spec";
  let rec go acc =
    let i = item c in
    skip_ws c;
    match peek c with
    | None -> List.rev (i :: acc)
    | Some ',' -> c.pos <- c.pos + 1; go (i :: acc)
    | Some ch -> err ~pos:(c.pos + 1) "unexpected character '%c'" ch
  in
  go []

let parse_result (text : string) : (t, string) result =
  match parse text with
  | s -> Ok s
  | exception Error { pos; msg } ->
    Result.Error (Printf.sprintf "at %d: %s (in %S)" pos msg text)

let item_to_string { pi_name; pi_params } =
  match pi_params with
  | [] -> pi_name
  | ps ->
    Printf.sprintf "%s{%s}" pi_name
      (String.concat ","
         (List.map (fun (k, v) -> k ^ "=" ^ pvalue_to_string v) ps))

let to_string (s : t) : string =
  String.concat "," (List.map item_to_string s)
