(* The built-in pass set: the existing lowering stages re-expressed as
   registered passes, plus the new unrolling and prefetch-slack
   transforms.  [ensure] is idempotent and called by every entry point
   that consults the registry, so linking this module suffices. *)

module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Sparsify = Asap_sparsifier.Sparsify
module Fold = Asap_ir.Fold
module Licm = Asap_ir.Licm
module Unroll = Asap_ir.Unroll
module Slack = Asap_ir.Slack

let vi i = Spec.Vint i
let vs s = Spec.Vsym s

let int_param name doc default =
  { Pass.p_name = name; p_doc = doc; p_default = vi default; p_syms = [] }

let sym_param name doc default syms =
  { Pass.p_name = name; p_doc = doc; p_default = vs default; p_syms = syms }

let asap_config (ps : Pass.params) : Asap.config =
  { Asap.distance = Pass.pint ps "d";
    locality = Pass.pint ps "l";
    strategy =
      (match Pass.psym ps "strategy" with
       | "inner" -> Asap.Innermost_only
       | "outer" -> Asap.Outer_only
       | _ -> Asap.Both);
    bound_mode =
      (match Pass.psym ps "bound" with
       | "segment" -> Asap.Segment_local
       | _ -> Asap.Semantic);
    step1 = Pass.psym ps "step1" = "true" }

let registered = ref false

let ensure () =
  if not !registered then begin
    registered := true;
    Pass.register
      { Pass.name = "sparsify";
        doc = "lower the kernel to verified imperative IR (entry pass)";
        params = []; counts_sites = false;
        kind = Pass.Entry (fun _ps ?hook k -> Sparsify.run ?hook k) };
    Pass.register
      { Pass.name = "asap";
        doc = "ASaP prefetch injection during sparsification (paper 3.2)";
        params =
          [ int_param "d" "lookahead distance in iterations"
              Asap.default.Asap.distance;
            int_param "l" "prefetch locality hint (0-3)"
              Asap.default.Asap.locality;
            sym_param "strategy" "site placement" "both"
              [ "both"; "inner"; "outer" ];
            sym_param "bound" "step-2 bound" "semantic"
              [ "semantic"; "segment" ];
            sym_param "step1" "emit the step-1 crd prefetch" "true"
              [ "true"; "false" ] ];
        counts_sites = false;
        kind = Pass.Hook (fun ps -> Asap.hook (asap_config ps)) };
    Pass.register
      { Pass.name = "aj";
        doc = "Ainsworth-Jones post-hoc prefetch pass (prior art)";
        params =
          [ int_param "d" "lookahead distance in iterations"
              Aj.default.Aj.distance;
            int_param "l" "prefetch locality hint (0-3)"
              Aj.default.Aj.locality ];
        counts_sites = true;
        kind =
          Pass.Ir_pass
            (fun ps fn ->
              let cfg =
                { Aj.distance = Pass.pint ps "d";
                  locality = Pass.pint ps "l" }
              in
              let fn, stats = Aj.run ~cfg fn in
              (fn, stats.Aj.matched_sites)) };
    Pass.register
      { Pass.name = "fold";
        doc = "constant folding and algebraic simplification";
        params = []; counts_sites = false;
        kind =
          Pass.Ir_pass
            (fun _ps fn ->
              let fn, stats = Fold.run fn in
              (fn, stats.Fold.folded)) };
    Pass.register
      { Pass.name = "licm";
        doc = "loop-invariant code motion";
        params = []; counts_sites = false;
        kind =
          Pass.Ir_pass
            (fun _ps fn ->
              let fn, stats = Licm.run fn in
              (fn, stats.Licm.hoisted)) };
    Pass.register
      { Pass.name = "unroll";
        doc = "unroll innermost constant-step loops (value-exact)";
        params = [ int_param "f" "unroll factor" 4 ];
        counts_sites = false;
        kind =
          Pass.Ir_pass
            (fun ps fn ->
              let fn, stats = Unroll.run ~factor:(Pass.pint ps "f") fn in
              (fn, stats.Unroll.unrolled)) };
    Pass.register
      { Pass.name = "slack";
        doc = "hoist prefetches earlier within their verified bound";
        params = [ int_param "max" "maximum hoist distance in statements" 8 ];
        counts_sites = false;
        kind =
          Pass.Ir_pass
            (fun ps fn ->
              let fn, stats = Slack.run ~max_dist:(Pass.pint ps "max") fn in
              (fn, stats.Slack.moved)) }
  end
