(** Textual pipeline specifications — the "sparsify,asap{d=32},fold"
    surface syntax.

    Grammar (whitespace-tolerant):
    {v
    spec    ::= item (',' item)*
    item    ::= name params?
    params  ::= '{' name '=' (int | name) (',' ...)* '}'
    v}

    Parsing is purely syntactic; pass names and parameters are validated
    against the registry by {!Runner.resolve}. *)

type pvalue = Vint of int | Vsym of string

val pvalue_to_string : pvalue -> string

type item = { pi_name : string; pi_params : (string * pvalue) list }

type t = item list

(** A syntax error at a 1-based character position in the spec string. *)
exception Error of { pos : int; msg : string }

(** @raise Error on malformed input. *)
val parse : string -> t

(** [parse_result s] is [Ok (parse s)] or [Error "at <pos>: <msg> (in ...)"]. *)
val parse_result : string -> (t, string) result

val to_string : t -> string
