(* The pass registry.

   A pass is a named, parameterised transform.  Three kinds exist,
   mirroring where in the lowering flow they plug in:

   - [Entry]: kernel -> IR (sparsification), optionally taking the
     composed prefetch hook of the [Hook] passes that follow it;
   - [Hook]: a prefetch-injection hook that runs *during* an entry pass
     (ASaP needs the emitter's semantic context, so it cannot be a
     post-hoc IR pass);
   - [Ir_pass]: func -> func, re-verified by construction, returning a
     rewrite count for observability.

   Registration is global and happens once at startup (see Builtin);
   duplicate names are programming errors and rejected loudly. *)

module Kernel = Asap_lang.Kernel
module Emitter = Asap_sparsifier.Emitter
module Access = Asap_sparsifier.Access

type params = (string * Spec.pvalue) list

type param_spec = {
  p_name : string;
  p_doc : string;
  p_default : Spec.pvalue;
  p_syms : string list;  (** allowed symbols; [] means integer-valued *)
}

type kind =
  | Entry of (params -> ?hook:Access.hook -> Kernel.t -> Emitter.compiled)
  | Hook of (params -> Access.hook)
  | Ir_pass of (params -> Asap_ir.Ir.func -> Asap_ir.Ir.func * int)

type t = {
  name : string;
  doc : string;
  params : param_spec list;
  kind : kind;
  counts_sites : bool;
      (** the rewrite count contributes to [n_prefetch_sites] *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let register (p : t) : unit =
  if Hashtbl.mem registry p.name then
    invalid_arg
      (Printf.sprintf "Pass.register: duplicate pass name %S" p.name);
  List.iter
    (fun ps ->
      match (ps.p_default, ps.p_syms) with
      | Spec.Vsym s, syms when not (List.mem s syms) ->
        invalid_arg
          (Printf.sprintf
             "Pass.register: %s.%s default %S not among its symbols" p.name
             ps.p_name s)
      | Spec.Vint _, _ :: _ ->
        invalid_arg
          (Printf.sprintf
             "Pass.register: %s.%s has symbols but an integer default"
             p.name ps.p_name)
      | _ -> ())
    p.params;
  Hashtbl.add registry p.name p

let find (name : string) : t option = Hashtbl.find_opt registry name

let all () : t list =
  Hashtbl.fold (fun _ p acc -> p :: acc) registry []
  |> List.sort (fun a b -> compare a.name b.name)

let kind_name (p : t) =
  match p.kind with
  | Entry _ -> "entry"
  | Hook _ -> "hook"
  | Ir_pass _ -> "ir"

(* Parameter access helpers for pass bodies: [resolve]d params always
   contain every declared key, so lookup failures are runner bugs. *)

let pint (ps : params) (key : string) : int =
  match List.assoc_opt key ps with
  | Some (Spec.Vint i) -> i
  | _ -> invalid_arg (Printf.sprintf "Pass.pint: missing int param %S" key)

let psym (ps : params) (key : string) : string =
  match List.assoc_opt key ps with
  | Some (Spec.Vsym s) -> s
  | _ -> invalid_arg (Printf.sprintf "Pass.psym: missing symbol param %S" key)
