(** Pipeline resolution and execution.

    [resolve] validates a spec against the registry (unknown passes or
    parameters raise [Invalid_argument] quoting the offending spec
    substring) and fills parameter defaults; [compile] runs a resolved
    pipeline on a kernel; [canonical] renders the fully-parameterised
    form that serve fingerprints embed. *)

module Kernel = Asap_lang.Kernel
module Emitter = Asap_sparsifier.Emitter
module Registry = Asap_obs.Registry

(** One resolved pass instance: registration + full parameter bindings. *)
type rpass = { pass : Pass.t; args : Pass.params }

type resolved = rpass list

(** [resolve text] parses and validates [text].  Structural rules: at
    most one entry pass and it must come first; hook passes must
    directly follow the entry pass.
    @raise Invalid_argument on syntax errors, unknown passes/parameters,
    type mismatches, or structure violations — always quoting [text]. *)
val resolve : string -> resolved

(** [resolve_spec spec] likewise for an already-parsed spec; [src] is
    the original text used in error messages. *)
val resolve_spec : ?src:string -> Spec.t -> resolved

(** Canonical textual form: every pass with its full parameter list in
    declared order.  [resolve (canonical rs)] resolves to [rs], and two
    pipelines are equivalent iff their canonical forms are equal. *)
val canonical : resolved -> string

(** [canonical_of_string text] = [canonical (resolve text)]. *)
val canonical_of_string : string -> string

type compiled = {
  cc : Emitter.compiled;  (** entry-pass output: layout and metadata *)
  fn : Asap_ir.Ir.func;   (** final function after the IR-pass tail *)
  sites : int;            (** prefetch sites instrumented *)
}

(** [compile ?registry rs k] runs pipeline [rs] on kernel [k]: the entry
    pass with the composed hook prefix, then the IR-pass tail.  When
    [registry] is given, records [pass.<name>.runs] / [.rewrites] /
    [.ns] counters per pass.
    @raise Invalid_argument if [rs] does not start with an entry pass. *)
val compile : ?registry:Registry.t -> resolved -> Kernel.t -> compiled

(** [run_ir ?registry rs fn] runs an IR-only pipeline (no entry or hook
    passes) over an existing function. *)
val run_ir : ?registry:Registry.t -> resolved -> Asap_ir.Ir.func -> Asap_ir.Ir.func
