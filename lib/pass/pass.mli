(** The pass registry: named, parameterised transforms composed by
    pipeline specs (see {!Spec} for syntax, {!Runner} for execution).

    Passes come in three kinds, matching where they plug into lowering:
    [Entry] (kernel -> IR, i.e. sparsification), [Hook] (prefetch
    injection running {e during} the entry pass, which needs the
    emitter's semantic context), and [Ir_pass] (func -> func rewrites,
    always re-verified). *)

module Kernel = Asap_lang.Kernel
module Emitter = Asap_sparsifier.Emitter
module Access = Asap_sparsifier.Access

(** Resolved parameter bindings, every declared key present. *)
type params = (string * Spec.pvalue) list

type param_spec = {
  p_name : string;
  p_doc : string;
  p_default : Spec.pvalue;
  p_syms : string list;  (** allowed symbols; [] means integer-valued *)
}

type kind =
  | Entry of (params -> ?hook:Access.hook -> Kernel.t -> Emitter.compiled)
  | Hook of (params -> Access.hook)
  | Ir_pass of (params -> Asap_ir.Ir.func -> Asap_ir.Ir.func * int)
      (** returns the rewrite count for [pass.<name>.rewrites] *)

type t = {
  name : string;
  doc : string;
  params : param_spec list;
  kind : kind;
  counts_sites : bool;
      (** the rewrite count contributes to [n_prefetch_sites] *)
}

(** [register p] adds [p] to the global registry.
    @raise Invalid_argument on a duplicate name or an inconsistent
    parameter schema. *)
val register : t -> unit

val find : string -> t option

(** All registered passes, sorted by name. *)
val all : unit -> t list

val kind_name : t -> string

(** [pint ps key] / [psym ps key] read a resolved parameter; resolved
    parameter lists always contain every declared key, so a miss is a
    runner bug and raises [Invalid_argument]. *)
val pint : params -> string -> int

val psym : params -> string -> string
