(* Pipeline resolution and execution.

   [resolve] turns a syntactic {!Spec.t} into registry-validated pass
   instances with every parameter defaulted, enforcing the structural
   rules (one entry pass, first; hook passes directly after it).  The
   canonical form of a resolved pipeline — full parameters in declared
   order — is what serve fingerprints embed, so two spellings of the
   same pipeline share one artefact and two different pipelines never
   collide. *)

module Kernel = Asap_lang.Kernel
module Emitter = Asap_sparsifier.Emitter
module Access = Asap_sparsifier.Access
module Registry = Asap_obs.Registry

type rpass = { pass : Pass.t; args : Pass.params }

type resolved = rpass list

let fail fmt = Printf.ksprintf invalid_arg fmt

(* Validate one item against its registration: unknown names and
   parameters are rejected with the offending spec substring quoted. *)
let resolve_item (src : string) (it : Spec.item) : rpass =
  Builtin.ensure ();
  match Pass.find it.Spec.pi_name with
  | None ->
    fail "pipeline spec: unknown pass %S in %S" it.Spec.pi_name src
  | Some pass ->
    List.iter
      (fun (k, v) ->
        match List.find_opt (fun p -> p.Pass.p_name = k) pass.Pass.params with
        | None ->
          fail "pipeline spec: pass %S has no parameter %S (in %S)"
            pass.Pass.name k src
        | Some ps ->
          (match (v, ps.Pass.p_syms) with
           | Spec.Vint _, [] -> ()
           | Spec.Vint _, _ :: _ ->
             fail
               "pipeline spec: %s.%s takes a symbol (one of %s), got an \
                integer (in %S)"
               pass.Pass.name k
               (String.concat "|" ps.Pass.p_syms)
               src
           | Spec.Vsym s, syms ->
             if syms = [] then
               fail "pipeline spec: %s.%s takes an integer, got %S (in %S)"
                 pass.Pass.name k s src
             else if not (List.mem s syms) then
               fail "pipeline spec: %s.%s must be one of %s, got %S (in %S)"
                 pass.Pass.name k (String.concat "|" syms) s src))
      it.Spec.pi_params;
    let args =
      List.map
        (fun ps ->
          ( ps.Pass.p_name,
            match List.assoc_opt ps.Pass.p_name it.Spec.pi_params with
            | Some v -> v
            | None -> ps.Pass.p_default ))
        pass.Pass.params
    in
    { pass; args }

let check_structure (src : string) (rs : resolved) : unit =
  List.iteri
    (fun i r ->
      match r.pass.Pass.kind with
      | Pass.Entry _ ->
        if i <> 0 then
          fail "pipeline spec: entry pass %S must come first (in %S)"
            r.pass.Pass.name src
      | Pass.Hook _ ->
        let after_entry_or_hook =
          i > 0
          &&
          match (List.nth rs (i - 1)).pass.Pass.kind with
          | Pass.Entry _ | Pass.Hook _ -> true
          | Pass.Ir_pass _ -> false
        in
        if not after_entry_or_hook then
          fail
            "pipeline spec: hook pass %S must directly follow the entry \
             pass (in %S)"
            r.pass.Pass.name src
      | Pass.Ir_pass _ -> ())
    rs

let resolve_spec ?(src = "") (spec : Spec.t) : resolved =
  let src = if src = "" then Spec.to_string spec else src in
  let rs = List.map (resolve_item src) spec in
  check_structure src rs;
  rs

let resolve (text : string) : resolved =
  match Spec.parse text with
  | spec -> resolve_spec ~src:text spec
  | exception Spec.Error { pos; msg } ->
    fail "pipeline spec: at %d: %s (in %S)" pos msg text

(* Canonical form: every pass with its full parameter list in declared
   order.  Parsing the canonical form resolves to the same pipeline. *)
let canonical (rs : resolved) : string =
  Spec.to_string
    (List.map
       (fun r -> { Spec.pi_name = r.pass.Pass.name; pi_params = r.args })
       rs)

let canonical_of_string (text : string) : string = canonical (resolve text)

(* --- Execution -------------------------------------------------------- *)

type compiled = {
  cc : Emitter.compiled;
  fn : Asap_ir.Ir.func;
  sites : int;
}

let note (registry : Registry.t option) (name : string) (rewrites : int)
    (ns : int) =
  match registry with
  | None -> ()
  | Some reg ->
    Registry.add reg (Printf.sprintf "pass.%s.runs" name) 1;
    Registry.add reg (Printf.sprintf "pass.%s.rewrites" name) rewrites;
    Registry.add reg (Printf.sprintf "pass.%s.ns" name) ns

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  (r, ns)

(* Run the Ir_pass tail over [fn]. *)
let run_tail ?registry (rs : resolved) (fn : Asap_ir.Ir.func) :
    Asap_ir.Ir.func * int =
  List.fold_left
    (fun (fn, sites) r ->
      match r.pass.Pass.kind with
      | Pass.Entry _ | Pass.Hook _ ->
        fail "pipeline: pass %S cannot run on already-lowered IR"
          r.pass.Pass.name
      | Pass.Ir_pass f ->
        let (fn, rewrites), ns = timed (fun () -> f r.args fn) in
        note registry r.pass.Pass.name rewrites ns;
        (fn, if r.pass.Pass.counts_sites then sites + rewrites else sites))
    (fn, 0) rs

let run_ir ?registry (rs : resolved) (fn : Asap_ir.Ir.func) : Asap_ir.Ir.func =
  fst (run_tail ?registry rs fn)

let compile ?registry (rs : resolved) (k : Kernel.t) : compiled =
  match rs with
  | [] -> fail "pipeline: empty resolved pipeline"
  | entry :: rest ->
    let entry_f =
      match entry.pass.Pass.kind with
      | Pass.Entry f -> f
      | _ ->
        fail "pipeline: %S is not an entry pass (a spec must start with \
              one, e.g. \"sparsify\")"
          entry.pass.Pass.name
    in
    (* Peel the hook prefix; compose hooks in order. *)
    let rec split_hooks acc = function
      | r :: tl when (match r.pass.Pass.kind with
                      | Pass.Hook _ -> true
                      | _ -> false) -> split_hooks (r :: acc) tl
      | tl -> (List.rev acc, tl)
    in
    let hook_passes, tail = split_hooks [] rest in
    let hook =
      match hook_passes with
      | [] -> None
      | _ ->
        let hooks =
          List.map
            (fun r ->
              match r.pass.Pass.kind with
              | Pass.Hook f -> f r.args
              | _ -> assert false)
            hook_passes
        in
        Some (fun b site -> List.iter (fun h -> h b site) hooks)
    in
    let cc, ns =
      timed (fun () ->
          match hook with
          | None -> entry_f entry.args k
          | Some hook -> entry_f entry.args ~hook k)
    in
    note registry entry.pass.Pass.name 0 ns;
    List.iter
      (fun r -> note registry r.pass.Pass.name cc.Emitter.n_sites 0)
      hook_passes;
    let hook_sites = if hook = None then 0 else cc.Emitter.n_sites in
    let fn, pass_sites = run_tail ?registry tail cc.Emitter.fn in
    { cc; fn; sites = hook_sites + pass_sites }
