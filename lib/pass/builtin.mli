(** The built-in pass set.

    [ensure ()] registers (idempotently) the standard passes:

    - [sparsify] — the entry pass, kernel -> verified IR;
    - [asap] — ASaP prefetch-injection hook
      ([d], [l], [strategy], [bound], [step1]);
    - [aj] — Ainsworth-Jones post-hoc prefetch pass ([d], [l]);
    - [fold] — constant folding;
    - [licm] — loop-invariant code motion;
    - [unroll] — innermost-loop unrolling ([f]);
    - [slack] — prefetch-slack scheduling ([max]).

    Every entry point that consults the registry calls this first, so
    user code never needs to. *)

val ensure : unit -> unit
