(** Indirect-access sites (paper §3.1).

    Sparsification knows the exact moment an iterate-and-locate
    co-iteration materialises an indirect access [t[crd[p]]]: when it
    emits the coordinate load inside a position loop. A {!site} is the
    full semantic context handed to a prefetch hook at that moment — the
    information a post-hoc pass cannot see and must re-derive
    (incompletely) from low-level IR. *)

open Asap_ir

(** One dense operand reached through the coordinate. The prefetch address
    for a lookahead coordinate [j'] is [base + j' * scale]. *)
type target = {
  t_buf : Ir.buffer;           (** the indirectly indexed buffer *)
  t_scale : Ir.value option;   (** [None] for a trailing map position
                                   (scale 1), else the row length *)
  t_base : Ir.value option;    (** partial address over the operand's other
                                   already-resolved dimensions *)
  t_write : bool;              (** scatter target (e.g. CSC SpMV output) *)
}

type site = {
  s_level : int;               (** storage level producing the coordinate *)
  s_dim : int;                 (** iteration dimension resolved here *)
  s_innermost : bool;          (** no further loops below the site loop *)
  s_crd : Ir.buffer;           (** coordinate buffer of the level *)
  s_iv : Ir.value;             (** the position iterator (jj) *)
  s_lo : Ir.value;             (** position-loop lower bound *)
  s_hi : Ir.value;             (** position-loop upper bound (segment end) *)
  s_bound : Ir.value;          (** ASaP's semantic bound: size(crd) - 1,
                                   hoisted to the prologue (§3.2.2) *)
  s_step_elems : int;          (** tensor elements one iterator step covers —
                                   1 normally, [bh*bw] at a blocked level, so
                                   hooks can measure lookahead in blocks *)
  s_inner_extent : Ir.value option;
                               (** product of the dense-only loop extents
                                   below the sparse levels (SDDMM's and
                                   SpMM's k): element updates one iterator
                                   step performs, by which hooks shrink
                                   their element-counted lookahead; [None]
                                   when the body is O(1) per step *)
  s_targets : target list;
}

(** A prefetch hook runs with the builder positioned just after the
    coordinate load inside the position loop and may emit any prefetching
    sequence. *)
type hook = Builder.t -> site -> unit
