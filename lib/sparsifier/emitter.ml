(* Sparsification: lowering a Kernel over a sparse encoding to imperative IR
   (paper §2.4 and §3.1).

   The emitter walks the sparse operand's storage levels in iteration-graph
   order, generating one loop per level: dense levels become counted loops
   over the dimension extent, compressed levels become position loops over
   pos/crd segments, and the COO pair (compressed non-unique over singleton)
   becomes the while/dedup structure of Fig. 3a. Remaining dense-only
   dimensions (SpMM's k) become innermost counted loops.

   Reductions are accumulated in an scf.for iter_arg once the output address
   is fully resolved (Fig. 3b's a[i] += ... with the load/store hoisted out
   of the inner loop); otherwise the body updates memory directly (Fig. 9).

   When a position loop materialises a coordinate that indirectly indexes a
   dense operand — the iterate-and-locate co-iteration of Fig. 4c — the
   emitter calls the prefetch [hook] with the full semantic context
   (Access.site). ASaP is such a hook; the baseline passes [None]. *)

module Kernel = Asap_lang.Kernel
module Affine = Asap_lang.Affine
module Encoding = Asap_tensor.Encoding
open Asap_ir

(** How each buffer parameter of the generated function must be bound at
    run time, in parameter order. *)
type binding =
  | Bpos of int                 (* positions buffer of storage level l *)
  | Bcrd of int                 (* coordinates buffer of storage level l *)
  | Bvals                       (* values buffer of the sparse operand *)
  | Bdense of string            (* dense operand, by kernel operand name *)

type compiled = {
  fn : Ir.func;
  kernel : Kernel.t;
  buffers : (Ir.buffer * binding) list;
  scalars : (Ir.value * int) list;  (* scalar param -> iteration dim extent *)
  n_sites : int;                    (* indirect-access sites encountered *)
}

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let compile ?(hook : Access.hook option) ?fn_name (k : Kernel.t) : compiled =
  let g = Iteration_graph.build k in
  let enc = k.Kernel.k_encoding in
  let r = Encoding.rank enc in
  let n = Kernel.n_dims k in
  let names = Affine.dim_names n in
  let b = Builder.create () in
  let idx_elem =
    match enc.Encoding.width with Encoding.W32 -> Ir.EIdx32 | Encoding.W64 -> Ir.EIdx64
  in
  let val_elem =
    match k.Kernel.k_body with Kernel.Mul_add -> Ir.EF64 | Kernel.And_or -> Ir.EI8
  in
  let sname = k.Kernel.k_sparse.Kernel.o_name in
  let bindings = ref [] in
  let add_buf name elem bind =
    let buffer = Builder.buf b name elem in
    bindings := (buffer, bind) :: !bindings;
    buffer
  in
  (* Buffer parameters: per-level pos/crd, sparse values, dense operands. *)
  let pos_bufs = Array.make r None and crd_bufs = Array.make r None in
  for l = 0 to r - 1 do
    let d = g.Iteration_graph.sparse_dims.(l) in
    if Encoding.has_pos enc.Encoding.levels.(l) then
      pos_bufs.(l) <-
        Some (add_buf (Printf.sprintf "%s%s_pos" sname names.(d)) idx_elem (Bpos l));
    if Encoding.has_crd enc.Encoding.levels.(l) then
      crd_bufs.(l) <-
        Some (add_buf (Printf.sprintf "%s%s_crd" sname names.(d)) idx_elem (Bcrd l))
  done;
  let vals_buf = add_buf (sname ^ "_vals") val_elem Bvals in
  let dense_buf (o : Kernel.operand) =
    add_buf o.Kernel.o_name val_elem (Bdense o.Kernel.o_name)
  in
  let ins_bufs = List.map (fun o -> (o, dense_buf o)) k.Kernel.k_dense_ins in
  let out_buf = dense_buf k.Kernel.k_out in
  (* Scalar parameters: the extent of every iteration dimension. *)
  let extents =
    Array.init n (fun d -> Builder.scalar_param b ("d_" ^ names.(d)) Ir.Index)
  in
  let scalars = Array.to_list (Array.mapi (fun d v -> (v, d)) extents) in

  (* ---- Prologue ---------------------------------------------------- *)
  let c0 = Builder.index b 0 and c1 = Builder.index b 1 in
  (* Row-major strides per dense operand, as SSA values. *)
  let strides_of (o : Kernel.operand) =
    let res = o.Kernel.o_map.Affine.results in
    let m = Array.length res in
    let strides = Array.make m c1 in
    for t = m - 2 downto 0 do
      strides.(t) <-
        (if strides.(t + 1) == c1 then extents.(res.(t + 1))
         else Builder.imul b strides.(t + 1) extents.(res.(t + 1)))
    done;
    strides
  in
  let all_ops = (k.Kernel.k_out, out_buf) :: ins_bufs in
  let strides =
    List.map (fun (o, buffer) -> (o.Kernel.o_name, (o, buffer, strides_of o))) all_ops
  in
  (* Blocked encodings tile the coordinate space: level [l] indexes block
     coordinates, so node counts divide the extent by the block side
     (ceiling — edge blocks are padded). *)
  let block_side l =
    match enc.Encoding.block with
    | None -> 1
    | Some (bh, bw) -> if l = 0 then bh else bw
  in
  let ceildiv_extent v side =
    if side = 1 then v
    else
      Builder.ibin b Ir.Idiv
        (Builder.iadd b v (Builder.index b (side - 1)))
        (Builder.index b side)
  in
  (* Semantic crd-buffer bounds (paper §3.2.2): node count per level via the
     recursive chain of position-buffer loads, hoisted into the prologue.
     Only computed when a hook wants them. For blocked levels the recursion
     runs in block units: the dense count is ceil(extent / side) and the
     resulting bound is a block index — the hook rescales its lookahead by
     bh*bw ({!Access.site.s_step_elems}). *)
  let semantic_bounds = Array.make r None in
  if hook <> None then begin
    let cnt = ref None in
    (* None encodes the root's single segment (count known = 1). *)
    for l = 0 to r - 1 do
      let d = g.Iteration_graph.sparse_dims.(l) in
      (match enc.Encoding.levels.(l) with
       | Encoding.Dense ->
         let here = ceildiv_extent extents.(d) (block_side l) in
         cnt :=
           Some
             (match !cnt with
              | None -> here
              | Some c -> Builder.imul b c here)
       | Encoding.Compressed _ ->
         let pos = Option.get pos_bufs.(l) in
         let idx = match !cnt with None -> c1 | Some c -> c in
         cnt := Some (Builder.load b ~name:(pos.Ir.bname ^ "_end") pos idx)
       | Encoding.Singleton -> ());
      match (enc.Encoding.levels.(l), !cnt) with
      | (Encoding.Compressed _ | Encoding.Singleton), Some c ->
        semantic_bounds.(l) <- Some (Builder.isub b c c1)
      | _ -> ()
    done
  end;

  (* ---- State ------------------------------------------------------- *)
  let coords = Array.make n None in
  let n_sites = ref 0 in
  let dense_only = Iteration_graph.dense_only_dims g in
  (* Work per sparse step: dense-only loops (SDDMM's and SpMM's k) run in
     full below every sparse iteration, so one step performs the product
     of their extents in element updates. Hooks divide their lookahead by
     it — a step that runs d_k times longer needs a d_k-times shorter
     head start. Hoisted here into the prologue with the §3.2.2 bounds. *)
  let inner_extent =
    if hook = None then None
    else
      List.fold_left
        (fun acc d ->
          match acc with
          | None -> Some extents.(d)
          | Some c -> Some (Builder.imul b c extents.(d)))
        None dense_only
  in
  let out_map = k.Kernel.k_out.Kernel.o_map in
  let out_resolved () =
    Array.for_all (fun d -> coords.(d) <> None) out_map.Affine.results
  in
  let operand_address (o : Kernel.operand) strides_arr =
    let res = o.Kernel.o_map.Affine.results in
    let m = Array.length res in
    let term t =
      let c = Option.get coords.(res.(t)) in
      if t = m - 1 then c else Builder.imul b c strides_arr.(t)
    in
    let addr = ref (term 0) in
    for t = 1 to m - 1 do
      addr := Builder.iadd b !addr (term t)
    done;
    !addr
  in
  let out_address () =
    let _, _, s = List.assoc k.Kernel.k_out.Kernel.o_name strides in
    operand_address k.Kernel.k_out s
  in
  let acc_ty =
    match k.Kernel.k_body with Kernel.Mul_add -> Ir.F64 | Kernel.And_or -> Ir.I64
  in
  let combine_mul x y =
    match k.Kernel.k_body with
    | Kernel.Mul_add -> Builder.fmul b x y
    | Kernel.And_or -> Builder.ibin b Ir.Iand x y
  in
  let combine_add x y =
    match k.Kernel.k_body with
    | Kernel.Mul_add -> Builder.fadd b x y
    | Kernel.And_or -> Builder.ibin b Ir.Ior x y
  in

  (* Prefetch-site construction for a position loop that resolves dimension
     [d] at level [l] with iterator [iv] over [lo, hi). The target's base
     covers the operand's other already-resolved dimensions (e.g. i*Nj for
     a(i,j) at a j-resolving site), so the lookahead prefetch lands on the
     right row. *)
  let site_base (o : Kernel.operand) strides_arr ~skip =
    let res = o.Kernel.o_map.Affine.results in
    let base = ref None in
    Array.iteri
      (fun t d' ->
        if t <> skip then
          match coords.(d') with
          | None -> ()
          | Some coord ->
            let term =
              if strides_arr.(t) == c1 then coord
              else Builder.imul b coord strides_arr.(t)
            in
            base :=
              Some
                (match !base with
                 | None -> term
                 | Some acc_addr -> Builder.iadd b acc_addr term))
      res;
    !base
  in
  let site_targets d =
    let target_of ~write (o : Kernel.operand) buffer =
      match Affine.result_of_dim o.Kernel.o_map d with
      | None -> None
      | Some t ->
        let _, _, s = List.assoc o.Kernel.o_name strides in
        let scale = if t = Array.length s - 1 then None else Some s.(t) in
        Some
          { Access.t_buf = buffer; t_scale = scale;
            t_base = site_base o s ~skip:t; t_write = write }
    in
    let ins_targets =
      List.filter_map
        (fun (o, buffer) -> target_of ~write:false o buffer)
        ins_bufs
    in
    let out_target =
      Option.to_list (target_of ~write:true k.Kernel.k_out out_buf)
    in
    ins_targets @ out_target
  in
  let fire_hook ~l ~d ~innermost ~iv ~lo ~hi =
    match hook with
    | None -> ()
    | Some h ->
      let targets = site_targets d in
      if targets <> [] then begin
        incr n_sites;
        h b
          { Access.s_level = l; s_dim = d; s_innermost = innermost;
            s_crd = Option.get crd_bufs.(l); s_iv = iv; s_lo = lo; s_hi = hi;
            s_bound = Option.get semantic_bounds.(l); s_step_elems = 1;
            s_inner_extent = inner_extent; s_targets = targets }
      end
  in

  (* ---- Loop nest --------------------------------------------------- *)
  (* A loop that threads the reduction accumulator: if one is open it is
     carried through; if the loop iterates a reduction dimension and the
     output address is already resolved, a fresh accumulator is opened
     (load before, store after). [inside] receives the induction variable
     and the accumulator state and returns the updated accumulator. *)
  let emit_loop ~tag name lo hi ~dim acc inside =
    match acc with
    | Some (a : Ir.value) ->
      let results =
        Builder.for_ b ~tag ~carried:[ ("acc", a.Ir.vty, a) ] name lo hi
          (fun iv args ->
            match inside iv (Some (List.hd args)) with
            | Some a' -> [ a' ]
            | None -> assert false)
      in
      Some (List.hd results)
    | None ->
      let opens =
        k.Kernel.k_iterators.(dim) = Kernel.Reduction && out_resolved ()
      in
      if opens then begin
        let addr = out_address () in
        let a0 = Builder.load b ~name:"acc0" out_buf addr in
        let a0 =
          if a0.Ir.vty = acc_ty then a0 else Builder.cast b acc_ty a0
        in
        let results =
          Builder.for_ b ~tag ~carried:[ ("acc", acc_ty, a0) ] name lo hi
            (fun iv args ->
              match inside iv (Some (List.hd args)) with
              | Some a' -> [ a' ]
              | None -> assert false)
        in
        Builder.store b out_buf addr (List.hd results);
        None
      end
      else begin
        Builder.for0 b ~tag name lo hi (fun iv ->
            match inside iv None with
            | None -> ()
            | Some _ -> assert false);
        None
      end
  in

  (* Partial address of operand [o]: the sum of coord*stride terms whose
     dimension is already resolved. Emitted before the innermost dense
     loops, hoisting the loop-invariant address arithmetic LICM would. *)
  let partial_address (o : Kernel.operand) strides_arr =
    let res = o.Kernel.o_map.Affine.results in
    let base = ref None in
    Array.iteri
      (fun t d ->
        match coords.(d) with
        | None -> ()
        | Some coord ->
          let term =
            if strides_arr.(t) == c1 then coord
            else Builder.imul b coord strides_arr.(t)
          in
          base :=
            Some
              (match !base with
               | None -> term
               | Some acc_addr -> Builder.iadd b acc_addr term))
      res;
    !base
  in
  (* The scalar body: [sv] and the address bases are hoisted to the point
     where the sparse levels are fully resolved. *)
  let emit_body ~sv ~bases acc =
    let dense_term (o : Kernel.operand) strides_arr base =
      let res = o.Kernel.o_map.Affine.results in
      let addr = ref base in
      Array.iteri
        (fun t d ->
          if List.mem d dense_only then
            match coords.(d) with
            | None -> ()
            | Some coord ->
              let term =
                if strides_arr.(t) == c1 then coord
                else Builder.imul b coord strides_arr.(t)
              in
              addr :=
                Some
                  (match !addr with
                   | None -> term
                   | Some a -> Builder.iadd b a term))
        res;
      Option.get !addr
    in
    let prod =
      List.fold_left
        (fun p (o, buffer) ->
          let _, _, s = List.assoc o.Kernel.o_name strides in
          let base = List.assoc o.Kernel.o_name bases in
          let addr = dense_term o s base in
          let dv = Builder.load b ~name:(o.Kernel.o_name ^ "val") buffer addr in
          combine_mul p dv)
        sv ins_bufs
    in
    match acc with
    | Some a -> Some (combine_add a prod)
    | None ->
      let _, _, s = List.assoc k.Kernel.k_out.Kernel.o_name strides in
      let base = List.assoc k.Kernel.k_out.Kernel.o_name bases in
      let addr = dense_term k.Kernel.k_out s base in
      let cur = Builder.load b ~name:"outv" out_buf addr in
      let sum = combine_add cur prod in
      Builder.store b out_buf addr sum;
      None
  in

  (* Innermost dense-only dimensions (e.g. SpMM's k). *)
  let rec emit_dense_dims dims ~sv ~bases acc =
    match dims with
    | [] -> emit_body ~sv ~bases acc
    | d :: rest ->
      emit_loop ~tag:("dense dim " ^ names.(d)) names.(d) c0 extents.(d)
        ~dim:d acc (fun iv acc' ->
          coords.(d) <- Some iv;
          let res = emit_dense_dims rest ~sv ~bases acc' in
          coords.(d) <- None;
          res)
  in
  (* At the leaf of the sparse levels: hoist the values load and the
     resolved part of every operand address before the dense loops. *)
  let emit_leaf leaf acc =
    let sv = Builder.load b ~name:"bval" vals_buf leaf in
    (* The output's base is only needed when no accumulator carries the
       reduction (otherwise the load/store pair was hoisted already). *)
    let ops =
      match acc with
      | Some _ -> ins_bufs
      | None -> (k.Kernel.k_out, out_buf) :: ins_bufs
    in
    let bases =
      List.map
        (fun (o, (_ : Ir.buffer)) ->
          let _, _, s = List.assoc o.Kernel.o_name strides in
          (o.Kernel.o_name, partial_address o s))
        ops
    in
    emit_dense_dims dense_only ~sv ~bases acc
  in

  (* node: index of the current tree node at level [l]; [`Zero] at the root
     avoids emitting dead arithmetic for the common top-level case. *)
  let node_value = function `Zero -> c0 | `V v -> v in
  let rec emit_level l node acc =
    if l = r then emit_leaf (node_value node) acc
    else
      let d = g.Iteration_graph.sparse_dims.(l) in
      let innermost = l = r - 1 && dense_only = [] in
      match enc.Encoding.levels.(l) with
      | Encoding.Dense ->
        let lsize = extents.(d) in
        emit_loop ~tag:("dense level " ^ names.(d)) names.(d) c0 lsize ~dim:d
          acc (fun iv acc' ->
            coords.(d) <- Some iv;
            let node' =
              match node with
              | `Zero -> `V iv
              | `V v -> `V (Builder.iadd b (Builder.imul b v lsize) iv)
            in
            let res = emit_level (l + 1) node' acc' in
            coords.(d) <- None;
            res)
      | Encoding.Compressed { unique = true } ->
        let pos = Option.get pos_bufs.(l) and crd = Option.get crd_bufs.(l) in
        let lo, hi =
          match node with
          | `Zero ->
            (Builder.load b ~name:"lo" pos c0, Builder.load b ~name:"hi" pos c1)
          | `V v ->
            let v1 = Builder.iadd b v c1 in
            (Builder.load b ~name:"lo" pos v, Builder.load b ~name:"hi" pos v1)
        in
        let iv_name = names.(d) ^ names.(d) in
        emit_loop ~tag:("compressed level " ^ names.(d)) iv_name lo hi ~dim:d
          acc (fun iv acc' ->
            let coord = Builder.load b ~name:names.(d) crd iv in
            coords.(d) <- Some coord;
            fire_hook ~l ~d ~innermost ~iv ~lo ~hi;
            let res = emit_level (l + 1) (`V iv) acc' in
            coords.(d) <- None;
            res)
      | Encoding.Compressed { unique = false } ->
        (* The COO pair: a while loop over duplicate-coordinate segments
           (Fig. 3a), fused with the singleton level below. *)
        if l <> 0 then unsupported "non-unique compressed below the top level";
        if l + 1 >= r || enc.Encoding.levels.(l + 1) <> Encoding.Singleton then
          unsupported "non-unique compressed must be followed by singleton";
        if acc <> None then unsupported "open accumulator above a COO segment";
        let pos = Option.get pos_bufs.(l) and crd = Option.get crd_bufs.(l) in
        let lo = Builder.load b ~name:"lo" pos c0 in
        let hi = Builder.load b ~name:"hi" pos c1 in
        let hi_m1 = Builder.isub b hi c1 in
        let (_ : Ir.value list) =
          Builder.while_ b ~tag:("coo segments " ^ names.(d))
            [ (names.(d) ^ names.(d), Ir.Index, lo) ]
            (fun args ->
              let ii = List.hd args in
              Builder.icmp b Ir.Ult ii hi)
            (fun args ->
              let ii = List.hd args in
              let coord = Builder.load b ~name:names.(d) crd ii in
              coords.(d) <- Some coord;
              (* Deduplicate: scan forward while the coordinate repeats.
                 The clamp to hi-1 makes the conjunction safe without
                 short-circuit evaluation. *)
              let se0 = Builder.iadd b ii c1 in
              let se_final =
                Builder.while_ b ~tag:"dedup"
                  [ ("seg_end", Ir.Index, se0) ]
                  (fun args' ->
                    let se = List.hd args' in
                    let in_range = Builder.icmp b Ir.Ult se hi in
                    let safe = Builder.imin b se hi_m1 in
                    let v = Builder.load b ~name:"dup" crd safe in
                    let same = Builder.icmp b Ir.Eq v coord in
                    Builder.ibin b Ir.Iand in_range same)
                  (fun args' -> [ Builder.iadd b (List.hd args') c1 ])
                |> List.hd
              in
              (* Singleton level: iterate the segment's elements. *)
              let d' = g.Iteration_graph.sparse_dims.(l + 1) in
              let crd' = Option.get crd_bufs.(l + 1) in
              let innermost' = l + 1 = r - 1 && dense_only = [] in
              let iv_name = names.(d') ^ names.(d') in
              let (_ : Ir.value option) =
                emit_loop ~tag:("coo elements " ^ names.(d')) iv_name ii
                  se_final ~dim:d' None (fun jj acc' ->
                    let coord' = Builder.load b ~name:names.(d') crd' jj in
                    coords.(d') <- Some coord';
                    fire_hook ~l:(l + 1) ~d:d' ~innermost:innermost' ~iv:jj
                      ~lo:ii ~hi:se_final;
                    let res = emit_level (l + 2) (`V jj) acc' in
                    coords.(d') <- None;
                    res)
              in
              coords.(d) <- None;
              [ se_final ])
        in
        None
      | Encoding.Singleton ->
        (* Standalone singleton (outside the COO pair): exactly one child,
           coordinate read off the crd buffer. *)
        let crd = Option.get crd_bufs.(l) in
        let coord = Builder.load b ~name:names.(d) crd (node_value node) in
        coords.(d) <- Some coord;
        let res = emit_level (l + 1) node acc in
        coords.(d) <- None;
        res
  in
  (* ---- Blocked loop nest ------------------------------------------- *)
  (* BSR-style encodings: the two storage levels index block coordinates
     (dense block rows over compressed block columns), and each stored
     block expands through two micro-loops clamped to the matrix edge.
     Element coordinates are reconstructed affinely (i = ib*bh + r,
     j = jb*bw + c) and the leaf value index is p*bh*bw + r*bw + c.
     Prefetch sites fire at the block-column position loop: the lookahead
     coordinate is a block column, so target scales carry an extra *bw
     and the hook rescales its distance by bh*bw (s_step_elems). *)
  let site_targets_blocked d cbw =
    List.map
      (fun (t : Access.target) ->
        let scale =
          match t.Access.t_scale with
          | None -> cbw
          | Some s -> Builder.imul b s cbw
        in
        { t with Access.t_scale = Some scale })
      (site_targets d)
  in
  let fire_hook_blocked ~l ~d ~iv ~lo ~hi ~bh ~bw ~cbw =
    match hook with
    | None -> ()
    | Some h ->
      let targets = site_targets_blocked d cbw in
      if targets <> [] then begin
        incr n_sites;
        h b
          { Access.s_level = l; s_dim = d; s_innermost = false;
            s_crd = Option.get crd_bufs.(l); s_iv = iv; s_lo = lo; s_hi = hi;
            s_bound = Option.get semantic_bounds.(l);
            s_step_elems = bh * bw; s_inner_extent = inner_extent;
            s_targets = targets }
      end
  in
  let emit_blocked ~bh ~bw =
    let d0 = g.Iteration_graph.sparse_dims.(0)
    and d1 = g.Iteration_graph.sparse_dims.(1) in
    let cbh = Builder.index b bh and cbw = Builder.index b bw in
    let cbe = Builder.index b (bh * bw) in
    let pos = Option.get pos_bufs.(1) and crd = Option.get crd_bufs.(1) in
    let nbr = ceildiv_extent extents.(d0) bh in
    let (_ : Ir.value option) =
      emit_loop ~tag:("block rows " ^ names.(d0)) ("b" ^ names.(d0)) c0 nbr
        ~dim:d0 None (fun ib acc0 ->
          let i0 = Builder.imul b ib cbh in
          let rext = Builder.imin b cbh (Builder.isub b extents.(d0) i0) in
          let ib1 = Builder.iadd b ib c1 in
          let lo = Builder.load b ~name:"lo" pos ib in
          let hi = Builder.load b ~name:"hi" pos ib1 in
          emit_loop ~tag:("block cols " ^ names.(d1))
            (names.(d1) ^ names.(d1)) lo hi ~dim:d1 acc0 (fun p accp ->
              let jb = Builder.load b ~name:("b" ^ names.(d1)) crd p in
              fire_hook_blocked ~l:1 ~d:d1 ~iv:p ~lo ~hi ~bh ~bw ~cbw;
              let j0 = Builder.imul b jb cbw in
              let cext =
                Builder.imin b cbw (Builder.isub b extents.(d1) j0)
              in
              let vbase = Builder.imul b p cbe in
              emit_loop ~tag:"block micro rows" (names.(d0) ^ "b") c0 rext
                ~dim:d0 accp (fun rr accr ->
                  let i = Builder.iadd b i0 rr in
                  coords.(d0) <- Some i;
                  let rowb = Builder.iadd b vbase (Builder.imul b rr cbw) in
                  let res =
                    emit_loop ~tag:"block micro cols" (names.(d1) ^ "b") c0
                      cext ~dim:d1 accr (fun cc accc ->
                        let j = Builder.iadd b j0 cc in
                        coords.(d1) <- Some j;
                        let leaf = Builder.iadd b rowb cc in
                        let res = emit_leaf leaf accc in
                        coords.(d1) <- None;
                        res)
                  in
                  coords.(d0) <- None;
                  res)))
    in
    ()
  in
  (match enc.Encoding.block with
   | Some (bh, bw) ->
     if r <> 2 then unsupported "blocked encodings must be rank-2";
     emit_blocked ~bh ~bw
   | None ->
     let (_ : Ir.value option) = emit_level 0 `Zero None in
     ());
  let default_name = Printf.sprintf "%s_%s" k.Kernel.k_name
      (String.lowercase_ascii enc.Encoding.name)
  in
  let fn = Builder.finish b (Option.value fn_name ~default:default_name) in
  { fn; kernel = k; buffers = List.rev !bindings; scalars;
    n_sites = !n_sites }
