(** The unified serving configuration: one record naming the whole
    entry-point surface — fleet width, per-shard queue/cache capacity,
    per-tenant admission quotas, engine/tune-mode overrides, deadline
    policy and host parallelism — consumed by {!Scheduler.run} and
    threaded through [asapc serve]/[genreqs] and [bench/serve]. Mirrors
    {!Asap_core.Driver.Cfg}'s role for single executions: [default]
    plus [with_*] builders instead of scattered knobs.

    Migration from the old surface: the historical [Scheduler.cfg]
    record still compiles through the deprecated {!Scheduler.replay}
    wrapper; new code writes
    [Scheduler.run Config.(default |> with_jobs 4 |> with_shards 8)]. *)

module Exec = Asap_sim.Exec
module Tuning = Asap_core.Tuning

(** What happens to a request whose deadline expired while it queued. *)
type deadline_policy =
  | Degrade  (** serve its prefetch-free baseline entry (the default) *)
  | Drop     (** shed it at dispatch time *)
  | Ignore   (** serve the requested variant anyway *)

val deadline_policy_to_string : deadline_policy -> string
val deadline_policy_of_string : string -> deadline_policy option
val valid_deadline_policies : string

type t = {
  shards : int;            (** fleet width; 1 = the classic scheduler *)
  servers : int;           (** virtual servers per shard *)
  queue_limit : int;       (** per-shard FIFO depth; past it arrivals shed *)
  cache_capacity : int;    (** per-shard LRU entries; 0 disables cache,
                               memoised builds and batching *)
  compile_ms : float;      (** virtual sparsify+compile penalty per miss *)
  batching : bool;         (** serve same-fingerprint waiters together *)
  stealing : bool;         (** idle shards steal from the longest queue *)
  vnodes : int;            (** router ring points per shard *)
  quota_default : int option;     (** per-tenant in-queue cap *)
  quotas : (string * int) list;   (** per-tenant overrides *)
  deadline_policy : deadline_policy;
  engine : Exec.engine option;    (** override every request's engine *)
  tune_mode : Tuning.mode option; (** override every request's tune_mode *)
  specialize : bool option;       (** override every request's specialize *)
  pipelines : (string * string) list;
      (** per-tenant pass-pipeline specs; a tenant's entry overrides
          the pipeline of every one of its requests *)
  jobs : int;              (** host domains for the build pass *)
}

(** One shard, 2 servers, queue 64, cache 128, 0.05 ms compile penalty,
    batching and stealing on, no quotas, [Degrade] deadlines, no
    overrides, sequential build — the historical scheduler defaults. *)
val default : t

val with_shards : int -> t -> t
val with_servers : int -> t -> t
val with_queue_limit : int -> t -> t
val with_cache_capacity : int -> t -> t
val with_compile_ms : float -> t -> t
val with_batching : bool -> t -> t
val with_stealing : bool -> t -> t
val with_vnodes : int -> t -> t

(** [with_quota q t] sets the default per-tenant in-queue quota
    ([None] removes it). *)
val with_quota : int option -> t -> t

val with_quotas : (string * int) list -> t -> t
val with_deadline_policy : deadline_policy -> t -> t
val with_engine : Exec.engine -> t -> t
val with_tune_mode : Tuning.mode -> t -> t
val with_specialize : bool -> t -> t
val with_pipelines : (string * string) list -> t -> t
val with_jobs : int -> t -> t

(** [quota_of t tenant] is the quota that applies to [tenant]: its
    [quotas] entry if present, else [quota_default]. *)
val quota_of : t -> string -> int option

(** [pipeline_of t tenant] is the pipeline override applying to
    [tenant]'s requests, if any. *)
val pipeline_of : t -> string -> string option

(** @raise Invalid_argument on a malformed configuration (including an
    invalid per-tenant pipeline spec). *)
val validate : t -> unit
