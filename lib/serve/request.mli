(** The serving request model: one value naming everything needed to
    reproduce a kernel execution (kernel, format, matrix-by-spec,
    variant, engine, machine preset) plus scheduling metadata (id,
    virtual arrival time, optional latency budget). Travels as JSONL. *)

module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Driver = Asap_core.Driver
module Pipeline = Asap_core.Pipeline
module Jsonu = Asap_obs.Jsonu
module Tuning = Asap_core.Tuning

type kernel = [ `Spmv | `Spmm | `Sddmm | `Ttv ]

(** [`Tuned] defers the variant choice to profile-guided tuning at build
    time; the others name a fixed variant (default configurations). *)
type variant = [ `Baseline | `Asap | `Aj | `Tuned ]

(** A latency budget relative to arrival, in virtual time: milliseconds,
    or simulated cycles of the request's machine. *)
type deadline = Ms of float | Cycles of int

type t = {
  id : string;
  kernel : kernel;
  format : string;
      (** coo/csr/csc/dcsr/bsr[<bh>x<bw>] for the matrix kernels; csf
          for ttv *)
  matrix : string;          (** {!Asap_workloads.Generate.of_spec} string *)
  variant : variant;
  engine : Exec.engine;
  machine : string;         (** preset name, see {!machine_of} *)
  tune_mode : Tuning.mode;  (** how a [`Tuned] variant is decided *)
  pipeline : string option;
      (** explicit pass-pipeline spec; overrides [variant]'s default
          pipeline at build time and supersedes tuning *)
  tenant : string;          (** admission-quota accounting key *)
  arrival_ms : float;       (** virtual arrival time *)
  deadline : deadline option;
  specialize : bool;
      (** build and serve the ahead-of-time specialized artefact
          ({!Asap_sim.Specialize}); enters the fingerprint, so
          specialized and generic entries never share a cache slot *)
}

(** ["default"] — the tenant of requests that don't name one. *)
val default_tenant : string

val kernel_to_string : kernel -> string
val kernel_of_string : string -> kernel option
val variant_to_string : variant -> string
val variant_of_string : string -> variant option

(** [encoding_of_format k fmt] is the encoding named by [fmt] if it fits
    kernel [k]. The matrix kernels additionally accept ["bsr"] (4x4
    blocks) and ["bsr<bh>x<bw>"]. *)
val encoding_of_format : kernel -> string -> Encoding.t option

(** [spec r] is the {!Driver.kernel_spec} the request names.
    @raise Invalid_argument on a kernel/format mismatch. *)
val spec : t -> Driver.kernel_spec

(** [fixed_variant v] is the pipeline variant for non-[`Tuned] cases. *)
val fixed_variant : variant -> Pipeline.variant option

val machine_presets : string list

(** [machine_of r] resolves the machine preset ([default] / [optimized]
    / [optimized-spmm] over the scaled evaluation machine).
    @raise Invalid_argument on an unknown preset. *)
val machine_of : t -> Machine.t

(** [deadline_ms r machine] is the absolute virtual-time deadline
    (arrival + budget), if the request carries one. *)
val deadline_ms : t -> Machine.t -> float option

(** [fingerprint r] is the canonical cache key: every field affecting
    the built artefact and nothing that doesn't (id, tenant, arrival,
    deadline excluded; [tune_mode] included only for [`Tuned] requests,
    which are the only ones whose artefact it shapes).  A pipeline
    override enters in canonical form — spellings that resolve to the
    same fully-parameterised pipeline share one cache entry, distinct
    pipelines never collide.
    @raise Invalid_argument if [pipeline] holds an invalid spec (JSONL
    ingest rejects those up front; only hand-built requests can). *)
val fingerprint : t -> string

(** [fallback r] is the degraded form a timed-out request is served as:
    the untuned, prefetch-free baseline (any pipeline override is
    dropped with the rest of the machinery it named). *)
val fallback : t -> t

val to_json : t -> Jsonu.t

(** [to_line r] is the one-line JSONL form. *)
val to_line : t -> string

val of_json : Jsonu.t -> (t, string) result
val of_line : string -> (t, string) result

(** [load path] reads a JSONL request file; blank and [#] lines are
    skipped; errors carry the 1-based line number. A [{"kind":
    "update"}] line is an error here — mixed streams go through
    {!load_items}. *)
val load : string -> (t list, string) result

(** Streaming updates: batched delta messages that mutate a matrix
    artefact mid-replay. Requests arriving at or after an update see
    the updated matrix; earlier arrivals keep the version they saw
    (arrival-time consistency), so a replay stays a pure function of
    the item stream. *)
module Update : sig
  type t = {
    u_id : string;
    u_matrix : string;  (** {!Asap_workloads.Generate.of_spec} string *)
    u_at_ms : float;    (** virtual fire time *)
    u_deltas : (int * int * float) array;
        (** each (i, j, v) sets entry (i, j) to v *)
  }

  val to_json : t -> Jsonu.t
  val to_line : t -> string
  val of_json : Jsonu.t -> (t, string) result

  (** [apply u coo] applies every delta (set semantics: existing
      entries replaced, fresh coordinates appended in delta order).
      @raise Invalid_argument on rank <> 2 or out-of-bounds deltas. *)
  val apply : t -> Asap_tensor.Coo.t -> Asap_tensor.Coo.t
end

(** One line of a mixed request/update stream. *)
type item = Req of t | Up of Update.t

val item_of_line : string -> (item, string) result

(** [load_items path] reads a mixed JSONL stream (requests plus
    [{"kind": "update", ...}] lines) in file order; blank and [#]
    lines are skipped; errors carry the 1-based line number. *)
val load_items : string -> (item list, string) result

(** [split_items items] separates requests from updates, each in
    stream order. *)
val split_items : item list -> t list * Update.t list
