(** Synthetic serving traffic: Zipf hot/cold profile selection with
    exponential inter-arrival gaps, fully determined by an explicit
    seed. *)

module Exec = Asap_sim.Exec
module Tuning = Asap_core.Tuning

type profile = {
  p_kernel : Request.kernel;
  p_format : string;
  p_matrix : string;          (** {!Asap_workloads.Generate.of_spec} *)
  p_variant : Request.variant;
  p_engine : Exec.engine;
  p_machine : string;
  p_tune_mode : Tuning.mode;
  p_specialize : bool;        (** request the AoT-specialized artefact *)
}

(** [profile matrix] with defaults: SpMV, csr, ASaP variant, default
    engine, "optimized" machine, sweep tuning, no specialization. *)
val profile :
  ?kernel:Request.kernel -> ?format:string -> ?variant:Request.variant ->
  ?engine:Exec.engine -> ?machine:string -> ?tune_mode:Tuning.mode ->
  ?specialize:bool -> string -> profile

(** A 10-profile spread over the workload suite, hot head first (Zipf
    weight falls with list position). *)
val default_profiles : unit -> profile list

(** [hot_cold ~seed ~n profiles] draws [n] requests: profile [i] with
    Zipf weight [1/(i+1)^alpha] (default 1.2), arrivals spaced by
    exponential gaps of mean [mean_gap_ms] (default 0.05 virtual ms),
    ids ["r%05d"]. [deadline_ms], if given, attaches that relative
    budget to every request. [tenants] is a weighted
    [(name, weight)] list each request's tenant is drawn from; with
    fewer than two tenants no RNG draw is consumed, so legacy
    (seed, n) traces stay byte-identical.
    @raise Invalid_argument on a non-positive tenant weight. *)
val hot_cold :
  ?alpha:float -> ?mean_gap_ms:float -> ?deadline_ms:float ->
  ?tenants:(string * float) list -> seed:int -> n:int -> profile list ->
  Request.t list

(** [update_stream ~seed ~n profiles] draws [n] streaming updates
    against the rank-2 matrices of [profiles] (uniform spec choice,
    exponential gaps of mean [mean_gap_ms], default 1 virtual ms;
    [deltas_per_update] uniform in-bounds deltas each, default 4), ids
    ["u%05d"]. Uses an RNG stream independent of {!hot_cold}'s, so
    pairing a request mix with an update stream never perturbs the
    requests. @raise Invalid_argument when no profile is rank-2 or on
    a bad spec. *)
val update_stream :
  ?mean_gap_ms:float -> ?deltas_per_update:int -> seed:int -> n:int ->
  profile list -> Request.Update.t list
