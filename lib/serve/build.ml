(* Building one cache entry: the expensive, host-side half of serving.

   An entry holds everything a fingerprint's repeat requests reuse:
   the prepared execution (sparsified + prefetch-injected IR, packed
   storage, simulated address layout, staged closure — {!Driver.Prep}),
   the tuning decision when the request asked for [`Tuned], and the
   canonical result of one cold execution. The simulator is
   deterministic, so every execution of the same preparation yields an
   identical report — the cold run's result IS the result of every
   repeat request, which is what lets cache hits skip host work
   entirely.

   Virtual service costs derive from the same build: [run_ms] is the
   kernel's simulated cycles at the machine's frequency, and [tune_ms]
   is the virtual cost of making the tuning decision — summed profile
   cycles for sweep-mode tuning, the O(nnz) feature-extraction cost for
   model-mode (microseconds, the whole point of the cost model), their
   sum for hybrid — charged to cache misses in virtual time.

   The matrix is packed once here and shared by both the tuning profile
   runs and the prepared execution; packing is variant-independent, so
   neither side repeats it. *)

module Coo = Asap_tensor.Coo
module Storage = Asap_tensor.Storage
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Driver = Asap_core.Driver
module Pipeline = Asap_core.Pipeline
module Tuning = Asap_core.Tuning
module Select = Asap_model.Select
module Asap = Asap_prefetch.Asap

type entry = {
  e_fp : string;                      (* Request.fingerprint *)
  e_machine : Machine.t;
  e_prep : Driver.Prep.t;
  e_decide : Select.decision option;  (* Some iff variant was `Tuned … *)
  e_tune_fell_back : bool;            (* … and tuning was inapplicable *)
  e_result : Driver.result;           (* the canonical cold run *)
  e_run_ms : float;                   (* virtual per-execution cost *)
  e_tune_ms : float;                  (* virtual decision cost on miss *)
  e_spec : bool;                      (* an AoT-specialized artefact *)
  e_spec_ns : int;                    (* host ns spent preparing it *)
}

let run_ms (e : entry) = e.e_run_ms
let result (e : entry) = e.e_result

(** [miss_penalty_ms ~compile_ms e] is the virtual time a cache miss on
    [e]'s fingerprint charges before service can start: the configured
    sparsify+compile penalty plus the entry's tuning-decision cost. *)
let miss_penalty_ms ~compile_ms (e : entry) = compile_ms +. e.e_tune_ms

(* Profile-guided tuning needs a rank-2 matrix under an encoding with a
   dense top level (the profile slice is a row range); the model path
   shares the rank-2 restriction. Anything else gracefully falls back to
   the default ASaP variant rather than failing the request. When tuning
   applies, the storage packed for the profile runs is returned so the
   prepared execution reuses it. *)
let decide_variant ?prepack (req : Request.t) (machine : Machine.t)
    (coo : Coo.t) :
    Pipeline.variant * Select.decision option * bool * Storage.t option =
  match (req.Request.pipeline, Request.fixed_variant req.Request.variant) with
  | Some _, Some v ->
    (* An explicit pipeline fixes the pass stack outright: nothing left
       to tune, no decision cost on miss. *)
    (v, None, false, None)
  | Some _, None -> (Pipeline.Asap Asap.default, None, false, None)
  | None, Some v -> (v, None, false, None)
  | None, None ->
    let fallback = (Pipeline.Asap Asap.default, None, true, None) in
    (match Request.encoding_of_format req.Request.kernel req.Request.format with
     | None -> fallback
     | Some enc when req.Request.kernel <> `Ttv && Coo.rank coo = 2 ->
       (match
          let st =
            match prepack with
            | Some st -> st
            | None -> Storage.pack enc coo
          in
          ( Select.decide ~engine:req.Request.engine ~jobs:1 ~st
              ~mode:req.Request.tune_mode machine enc coo,
            st )
        with
        | d, st -> (d.Select.d_chosen, Some d, false, Some st)
        | exception Invalid_argument _ -> fallback)
     | Some _ -> fallback)

(** [build ?st req coo] assembles the cache entry for [req]'s
    fingerprint: decide the variant (if asked), prepare, and execute
    once cold. [st], if given, must be the packed storage of [req]'s
    format over exactly [coo] — the scheduler's pack-memoisation
    pre-pass supplies it so repeated formats of one matrix pack once.
    Safe to call from a {!Par} worker — it touches no shared state
    ([~jobs:1] tuning). *)
let build ?st:(prepack : Storage.t option) (req : Request.t) (coo : Coo.t) :
    entry =
  let machine = Request.machine_of req in
  let variant, decide, fell_back, st =
    decide_variant ?prepack req machine coo
  in
  let st = match st with Some _ -> st | None -> prepack in
  let tune_ms =
    match decide with
    | None -> 0.
    | Some d -> Machine.cycles_to_ms machine d.Select.d_tune_cycles
  in
  let cfg =
    Driver.Cfg.make ~engine:req.Request.engine
      ~tune_mode:req.Request.tune_mode ?pipeline:req.Request.pipeline ?st
      ~specialize:req.Request.specialize ~machine ~variant ()
  in
  let t0 = if req.Request.specialize then Some (Unix.gettimeofday ()) else None in
  let prep = Driver.Prep.make cfg (Request.spec req) coo in
  let spec_ns =
    match t0 with
    | None -> 0
    | Some t0 -> int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
  in
  let result = Driver.Prep.exec prep in
  let run_ms =
    Machine.cycles_to_ms machine (Exec.Report.cycles result.Driver.report)
  in
  { e_fp = Request.fingerprint req; e_machine = machine; e_prep = prep;
    e_decide = decide; e_tune_fell_back = fell_back; e_result = result;
    e_run_ms = run_ms; e_tune_ms = tune_ms;
    e_spec = req.Request.specialize; e_spec_ns = spec_ns }
