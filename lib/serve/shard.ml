(* Per-shard runtime state of the fleet replay.

   A shard owns what a single classic scheduler owned: a bounded FIFO
   queue of admitted request indices, a bank of virtual servers (their
   next-free virtual times), and its own compile/tune LRU. The fleet
   scheduler drives an array of these from one sequential discrete-event
   loop, so nothing here needs synchronisation — the mutability is plain
   record fields, and every counter is attributed to exactly one shard:
   admission (queue/quota sheds, queue peak) to the request's home
   shard, service (batches, cache traffic, steals) to the shard whose
   server dispatched it. *)

type t = {
  index : int;
  lru : (string, Build.entry) Lru.t;   (* this shard's compile/tune cache *)
  free : float array;                  (* per-server next-free virtual ms *)
  mutable queue : int list;            (* admitted request indices, FIFO *)
  mutable qlen : int;
  mutable queue_peak : int;
  mutable shed : int;                  (* admission sheds (queue + quota) *)
  mutable batches : int;               (* dispatches serving > 1 request *)
  mutable batch_max : int;
  mutable steals_in : int;             (* batches this shard's servers stole *)
  mutable steals_out : int;            (* batches stolen from this queue *)
  mutable invalidated : int;           (* LRU entries dropped by updates *)
  mutable stale_hits : int;            (* hits on a wrong-version entry *)
}

let create ~index ~servers ~cache_capacity =
  { index; lru = Lru.create ~capacity:cache_capacity;
    free = Array.make servers 0.; queue = []; qlen = 0; queue_peak = 0;
    shed = 0; batches = 0; batch_max = 0; steals_in = 0; steals_out = 0;
    invalidated = 0; stale_hits = 0 }

let enqueue t i =
  t.queue <- t.queue @ [ i ];
  t.qlen <- t.qlen + 1;
  if t.qlen > t.queue_peak then t.queue_peak <- t.qlen

(** [head t] is the oldest queued index, if any. *)
let head t = match t.queue with [] -> None | i :: _ -> Some i

(** [min_server t] is the earliest-free server (lowest index on ties). *)
let min_server t =
  let s = ref 0 in
  for k = 1 to Array.length t.free - 1 do
    if t.free.(k) < t.free.(!s) then s := k
  done;
  !s

(** [take t] pops the queue head. @raise Invalid_argument if empty. *)
let take t =
  match t.queue with
  | [] -> invalid_arg "Shard.take: empty queue"
  | h :: rest ->
    t.queue <- rest;
    t.qlen <- t.qlen - 1;
    h

(** [take_matching t pred] removes every queued index satisfying [pred],
    in queue order — the same-fingerprint co-batch of a dispatch. *)
let take_matching t pred =
  let same, other = List.partition pred t.queue in
  t.queue <- other;
  t.qlen <- List.length other;
  same

let note_batch t nb =
  if nb > 1 then t.batches <- t.batches + 1;
  if nb > t.batch_max then t.batch_max <- nb
