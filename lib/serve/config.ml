(* The unified serving configuration.

   Before the fleet, serve knobs were scattered: [Scheduler.cfg] held
   the queue/cache shape, the CLI re-plumbed tune-mode overrides by
   rewriting requests, and the bench layer patched record fields
   inline. [Config.t] consolidates the whole entry-point surface —
   fleet width, per-shard capacity, per-tenant admission quotas, engine
   and tune-mode overrides, deadline policy, host parallelism — into
   one record with [default] plus [with_*] builders, mirroring
   [Driver.Cfg]'s role for single executions. [Scheduler.run] consumes
   it; the old [Scheduler.cfg]/[replay] surface survives as a
   deprecated wrapper over this record.

   [default] is a one-shard fleet identical to the historical
   single-scheduler defaults (2 servers, queue 64, cache 128, 0.05 ms
   compile penalty, batching on, sequential build), so migrating a
   caller is mechanical: [Scheduler.replay { default_cfg with jobs }]
   becomes [Scheduler.run Config.(with_jobs jobs default)]. *)

module Exec = Asap_sim.Exec
module Tuning = Asap_core.Tuning

(* What happens to a request whose deadline expired while it queued. *)
type deadline_policy =
  | Degrade  (* serve its prefetch-free baseline entry (historical) *)
  | Drop     (* shed it at dispatch time *)
  | Ignore   (* serve the requested variant anyway *)

let deadline_policy_to_string = function
  | Degrade -> "degrade"
  | Drop -> "drop"
  | Ignore -> "ignore"

let deadline_policy_of_string = function
  | "degrade" -> Some Degrade
  | "drop" -> Some Drop
  | "ignore" -> Some Ignore
  | _ -> None

let valid_deadline_policies = "degrade|drop|ignore"

type t = {
  shards : int;            (* fleet width; 1 = the classic scheduler *)
  servers : int;           (* virtual servers per shard *)
  queue_limit : int;       (* per-shard FIFO depth; past it arrivals shed *)
  cache_capacity : int;    (* per-shard LRU entries; 0 disables cache AND
                              memoised builds AND batching *)
  compile_ms : float;      (* virtual sparsify+compile penalty per miss *)
  batching : bool;         (* serve same-fingerprint waiters together *)
  stealing : bool;         (* idle shards steal from the longest queue *)
  vnodes : int;            (* router ring points per shard *)
  quota_default : int option;     (* per-tenant in-queue cap; None = none *)
  quotas : (string * int) list;   (* per-tenant overrides of the default *)
  deadline_policy : deadline_policy;
  engine : Exec.engine option;    (* override every request's engine *)
  tune_mode : Tuning.mode option; (* override every request's tune_mode *)
  specialize : bool option;       (* override every request's specialize *)
  pipelines : (string * string) list;
                           (* per-tenant pass-pipeline spec overrides *)
  jobs : int;              (* host domains for the build pass *)
}

let default =
  { shards = 1; servers = 2; queue_limit = 64; cache_capacity = 128;
    compile_ms = 0.05; batching = true; stealing = true;
    vnodes = Router.default_vnodes; quota_default = None; quotas = [];
    deadline_policy = Degrade; engine = None; tune_mode = None;
    specialize = None; pipelines = []; jobs = 1 }

let with_shards shards t = { t with shards }
let with_servers servers t = { t with servers }
let with_queue_limit queue_limit t = { t with queue_limit }
let with_cache_capacity cache_capacity t = { t with cache_capacity }
let with_compile_ms compile_ms t = { t with compile_ms }
let with_batching batching t = { t with batching }
let with_stealing stealing t = { t with stealing }
let with_vnodes vnodes t = { t with vnodes }
let with_quota quota_default t = { t with quota_default }
let with_quotas quotas t = { t with quotas }
let with_deadline_policy deadline_policy t = { t with deadline_policy }
let with_engine engine t = { t with engine = Some engine }
let with_tune_mode tune_mode t = { t with tune_mode = Some tune_mode }
let with_specialize specialize t = { t with specialize = Some specialize }
let with_pipelines pipelines t = { t with pipelines }
let with_jobs jobs t = { t with jobs }

(** [pipeline_of t tenant] is the pipeline override that applies to
    [tenant]'s requests, if any. *)
let pipeline_of t tenant = List.assoc_opt tenant t.pipelines

(** [quota_of t tenant] is the admission quota that applies to [tenant]:
    its [quotas] entry if present, else [quota_default]. *)
let quota_of t tenant =
  match List.assoc_opt tenant t.quotas with
  | Some q -> Some q
  | None -> t.quota_default

let validate t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if t.shards < 1 then fail "Serve.Config: shards < 1";
  if t.servers < 1 then fail "Serve.Config: servers < 1";
  if t.queue_limit < 1 then fail "Serve.Config: queue_limit < 1";
  if t.cache_capacity < 0 then fail "Serve.Config: negative cache_capacity";
  if t.vnodes < 1 then fail "Serve.Config: vnodes < 1";
  if t.jobs < 1 then fail "Serve.Config: jobs < 1";
  (match t.quota_default with
   | Some q when q < 0 -> fail "Serve.Config: negative quota"
   | _ -> ());
  List.iter
    (fun (tenant, q) ->
      if q < 0 then fail "Serve.Config: negative quota for tenant %S" tenant)
    t.quotas;
  List.iter
    (fun (tenant, spec) ->
      match Asap_pass.Runner.resolve spec with
      | (_ : Asap_pass.Runner.resolved) -> ()
      | exception Invalid_argument m ->
        fail "Serve.Config: bad pipeline for tenant %S: %s" tenant m)
    t.pipelines
