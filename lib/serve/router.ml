(* Consistent-hash request routing.

   The fleet routes every request to a home shard by hashing its
   artefact fingerprint onto a ring of virtual nodes: each shard owns
   [vnodes] points on the ring and a fingerprint belongs to the shard
   owning the first point at or clockwise of its own hash. Two
   properties matter here:

   - Determinism: the ring is a pure function of (shards, vnodes) and
     the hash is in-repo FNV-1a, so routing never depends on the host,
     OCaml's [Hashtbl.hash] seed, or process history. The fleet replay
     stays byte-identical at any [--jobs].

   - Stability under resizing: growing the fleet from N to N+1 shards
     only adds the new shard's points; every existing point keeps its
     position, so a fingerprint either stays put or moves to the new
     shard — about 1/(N+1) of the keyspace, instead of the (N-1)/N a
     modulo hash would reshuffle. Tuned-prefetch cache entries keyed by
     fingerprint therefore mostly stay on their warm shard across fleet
     resizes. *)

type t = {
  shards : int;
  points : (int * int) array;  (* (ring point, shard), sorted *)
}

(* FNV-1a, 64-bit, folded to a non-negative OCaml int. Stable across
   hosts and runs (unlike [Hashtbl.hash] on marshalled trees). The raw
   FNV fold alone is not enough here: its final multiply spreads the
   last byte only up to bit ~48, so strings sharing a prefix and
   differing in a trailing counter ("shard:4:0" .. "shard:4:63") keep
   near-identical top bits and clump together on the ring, starving a
   new shard of arc. A 64-bit avalanche finalizer after the fold gives
   every input byte full-width influence. *)
let hash (s : string) : int =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  let mix h =
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xff51afd7ed558ccdL in
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
    Int64.logxor h (Int64.shift_right_logical h 33)
  in
  Int64.to_int (mix !h) land max_int

let default_vnodes = 64

let create ?(vnodes = default_vnodes) ~shards () =
  if shards < 1 then invalid_arg "Router.create: shards < 1";
  if vnodes < 1 then invalid_arg "Router.create: vnodes < 1";
  let points =
    Array.init (shards * vnodes) (fun i ->
        let s = i / vnodes and r = i mod vnodes in
        (hash (Printf.sprintf "shard:%d:%d" s r), s))
  in
  Array.sort compare points;
  { shards; points }

let shards t = t.shards

let shard_of t key =
  if t.shards = 1 then 0
  else begin
    let h = hash key in
    let n = Array.length t.points in
    (* First point >= h; past the last point wraps to the first. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
    done;
    snd t.points.(if !lo = n then 0 else !lo)
  end
