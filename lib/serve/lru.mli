(** A small deterministic LRU map (the compile/tune cache): recency by
    monotonic tick, O(capacity) scan eviction, built-in hit/miss/evict
    counters. [capacity = 0] is the valid cache-disabled degenerate. *)

type ('k, 'v) t

(** @raise Invalid_argument on negative capacity. *)
val create : capacity:int -> ('k, 'v) t

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

(** [find t k] is the cached value, refreshing recency; counts a hit or
    miss. Always misses at capacity 0. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v] inserts (or refreshes) [k]; returns the evicted key if
    the insert pushed one out. No-op at capacity 0. *)
val add : ('k, 'v) t -> 'k -> 'v -> 'k option

(** [remove t k] drops [k]'s entry, returning it. Not an eviction: no
    counter moves — callers account invalidations themselves. *)
val remove : ('k, 'v) t -> 'k -> 'v option

(** [remove_if t pred] drops every entry whose key satisfies [pred];
    returns the count dropped. *)
val remove_if : ('k, 'v) t -> ('k -> bool) -> int

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int
