(** The deterministic serving fleet: replay a request list through
    [shards] shards — each owning virtual servers, a bounded FIFO queue
    and a compile/tune LRU — with consistent-hash routing on artefact
    fingerprints, cross-shard work stealing, per-tenant admission
    quotas, same-fingerprint batching and a configurable deadline
    policy.

    Host parallelism only accelerates the build pass (entries are built
    once per distinct fingerprint on {!Asap_core.Par} slices leased per
    shard, results index-slotted); scheduling itself is a sequential
    discrete-event simulation in virtual time, so {!run} is a pure
    function of the request list and {!Config.t} — byte-identical
    records at any [jobs]. See DESIGN.md §3f for the router → shard →
    steal path and the determinism argument. *)

module Driver = Asap_core.Driver
module Registry = Asap_obs.Registry
module Chrome = Asap_obs.Chrome
module Jsonu = Asap_obs.Jsonu

(** The legacy single-scheduler configuration — superseded by
    {!Config.t}, kept so pre-fleet callers keep compiling. A [cfg] is
    exactly a one-shard [Config.t] without quotas or overrides. *)
type cfg = {
  servers : int;          (** virtual servers draining the queue *)
  queue_limit : int;      (** bounded FIFO depth; arrivals past it shed *)
  cache_capacity : int;   (** LRU entries; 0 disables cache, memoised
                              builds and batching (uncached baseline) *)
  compile_ms : float;     (** virtual sparsify+compile penalty per miss *)
  batching : bool;        (** serve same-fingerprint waiters together *)
  jobs : int;             (** host domains for the build pass *)
}

(** 2 servers, queue 64, cache 128, 0.05 ms compile penalty, batching
    on, sequential build. *)
val default_cfg : cfg

type outcome =
  | Served      (** on time (or no deadline) with the requested variant *)
  | Degraded    (** deadline expired before dispatch; served as baseline *)
  | Shed        (** rejected by admission control (queue full or tenant
                    quota), or dropped at dispatch under [Config.Drop] *)

val outcome_to_string : outcome -> string

type record = {
  r_index : int;                   (** position in the input list *)
  r_req : Request.t;
  r_outcome : outcome;
  r_fp : string;                   (** fingerprint actually served *)
  r_hit : bool;                    (** cache hit at dispatch *)
  r_batch : int;                   (** its dispatch batch size; 0 = shed *)
  r_queue_ms : float;              (** admission wait: dispatch - arrival *)
  r_service_ms : float;            (** own run + (on miss) build penalty *)
  r_finish_ms : float;             (** virtual completion; arrival if shed *)
  r_shard : int;                   (** shard whose server dispatched it *)
  r_home : int;                    (** shard its fingerprint routed to *)
  r_stolen : bool;                 (** served by a shard other than home *)
  r_result : Driver.result option; (** [None] for shed *)
}

type replayed = {
  rp_records : record array;       (** input order *)
  rp_summary : Slo.summary;        (** fleet-wide *)
  rp_shards : Slo.shard_summary array;
  rp_registry : Registry.t;
    (** [serve.*] counters: per-shard [serve.shard.<i>.*], per-tenant
        [serve.tenant.<t>.*] (requests / ok / degraded / shed /
        quota_shed), fleet totals derived from the per-shard leaves via
        {!Registry.sum_prefix}, plus the tuning-decision counters
        [serve.tune.sweep_runs] / [serve.tune.model_decisions] /
        [serve.tune.rollbacks] and the hybrid-mode agreement counters
        [tune.model.agree] / [tune.model.disagree] /
        [tune.model.delta_cycles], aggregated deterministically over
        the build list. Specialization: [serve.spec.hit] (specialized
        entries served from cache), [serve.spec.miss] (specialized
        builds), [serve.spec.build_ns] (host time spent preparing them
        — wall-clock, informative only). Pack memoisation:
        [serve.pack.hit] / [serve.pack.miss] (packs reused / performed
        by the build pass's shared-storage pre-pass) *)
}

(** [run ?trace ?updates config requests] replays the fleet:
    engine/tune-mode overrides from [config] are applied to every
    request first, each distinct fingerprint builds once
    (host-parallel, per-shard {!Asap_core.Par.lease} slices), then the
    sequential virtual-time loop routes, admits (quota, then queue
    limit), batches, steals and serves. [trace], if given, receives
    per-request spans on per-shard-server tracks and shed instants.

    [updates] is a stream of {!Request.Update} delta messages: a
    request arriving at or after an update to its matrix is served
    from the updated matrix under a version-suffixed fingerprint
    (earlier arrivals keep the version they saw), and when an update
    fires, every cached entry of an older version of that matrix is
    dropped from every shard's LRU — counted as
    [serve.(shard.<i>.)cache.invalidated], with
    [...cache.stale_hit] proving no hit ever served a wrong-version
    entry. Versioning is a pure function of the item stream, so
    records stay byte-identical at any [jobs].
    @raise Invalid_argument on a bad config, unknown matrix spec,
    malformed request or out-of-bounds update delta. *)
val run :
  ?trace:Chrome.t -> ?updates:Request.Update.t list -> Config.t ->
  Request.t list -> replayed

(** [replay ?trace cfg requests] is {!run} over the one-shard
    [Config.t] equivalent to [cfg] — byte-identical to the historical
    single-scheduler replay. *)
val replay : ?trace:Chrome.t -> cfg -> Request.t list -> replayed
[@@ocaml.deprecated
  "Scheduler.replay/cfg are superseded by Scheduler.run over \
   Serve.Config — e.g. run Config.(default |> with_jobs 4 |> \
   with_shards 8) reqs."]

(** [record_to_json r] / [record_to_line r]: one record as a (one-line)
    JSON object of virtual quantities only — byte-comparable across
    runs and host parallelism. *)
val record_to_json : record -> Jsonu.t

val record_to_line : record -> string
