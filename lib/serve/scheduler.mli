(** The deterministic request scheduler: replay a request list through a
    fleet of virtual servers draining a bounded FIFO queue, with a
    compile/tune LRU cache, same-fingerprint batching, admission-control
    shedding, and deadline degradation.

    Host parallelism only accelerates the build pass (entries are built
    once per distinct fingerprint on a {!Asap_core.Par} pool, results
    index-slotted); scheduling itself is a sequential discrete-event
    simulation in virtual time, so {!replay} is a pure function of the
    request list — byte-identical records at any [jobs]. *)

module Driver = Asap_core.Driver
module Registry = Asap_obs.Registry
module Chrome = Asap_obs.Chrome
module Jsonu = Asap_obs.Jsonu

type cfg = {
  servers : int;          (** virtual servers draining the queue *)
  queue_limit : int;      (** bounded FIFO depth; arrivals past it shed *)
  cache_capacity : int;   (** LRU entries; 0 disables cache, memoised
                              builds and batching (uncached baseline) *)
  compile_ms : float;     (** virtual sparsify+compile penalty per miss *)
  batching : bool;        (** serve same-fingerprint waiters together *)
  jobs : int;             (** host domains for the build pass *)
}

(** 2 servers, queue 64, cache 128, 0.05 ms compile penalty, batching
    on, sequential build. *)
val default_cfg : cfg

type outcome =
  | Served      (** on time (or no deadline) with the requested variant *)
  | Degraded    (** deadline expired before dispatch; served as baseline *)
  | Shed        (** rejected by admission control (queue full) *)

val outcome_to_string : outcome -> string

type record = {
  r_index : int;                   (** position in the input list *)
  r_req : Request.t;
  r_outcome : outcome;
  r_fp : string;                   (** fingerprint actually served *)
  r_hit : bool;                    (** cache hit at dispatch *)
  r_batch : int;                   (** its dispatch batch size; 0 = shed *)
  r_queue_ms : float;              (** admission wait: dispatch - arrival *)
  r_service_ms : float;            (** own run + (on miss) build penalty *)
  r_finish_ms : float;             (** virtual completion; arrival if shed *)
  r_result : Driver.result option; (** [None] for shed *)
}

type replayed = {
  rp_records : record array;       (** input order *)
  rp_summary : Slo.summary;
  rp_registry : Registry.t;
    (** [serve.*] counters, including the tuning-decision counters
        [serve.tune.sweep_runs] / [serve.tune.model_decisions] /
        [serve.tune.rollbacks] and the hybrid-mode agreement counters
        [tune.model.agree] / [tune.model.disagree] /
        [tune.model.delta_cycles], aggregated deterministically over
        the build list *)
}

(** [replay ?trace cfg requests] runs the full two-pass replay. [trace],
    if given, receives per-request spans on per-server tracks and shed
    instants. @raise Invalid_argument on a bad config, unknown matrix
    spec or malformed request. *)
val replay : ?trace:Chrome.t -> cfg -> Request.t list -> replayed

(** [record_to_json r] / [record_to_line r]: one record as a (one-line)
    JSON object of virtual quantities only — byte-comparable across
    runs and host parallelism. *)
val record_to_json : record -> Jsonu.t

val record_to_line : record -> string
