(* The deterministic serving fleet.

   Serving must produce the same results whatever the host parallelism,
   so the replay is split into two passes:

   Pass 1 (host time, parallel): the set of distinct fingerprints is
   collected in sorted order and each entry is built once on a {!Par}
   domain pool — sparsify, prefetch-inject, pack, lay out, stage the
   closure, tune if asked, and run once cold. Results land in
   index-slotted arrays, so this pass is deterministic for any [jobs].
   With more than one shard the keys are grouped by their home shard
   (consistent hash of the fingerprint) and each group builds on its
   {!Par.lease} slice of one persistent pool — a per-shard worker
   budget over the same domains. Repeat fingerprints never rebuild:
   this is the host-side half of the compile/tune cache. With the cache
   disabled ([cache_capacity = 0]) the memoisation is disabled too —
   every request builds its own entry, which is the honest baseline the
   serve bench compares against.

   Pass 2 (virtual time, sequential): a discrete-event simulation of
   the fleet — [shards] shards, each owning [servers] identical virtual
   servers, a bounded FIFO queue and its own LRU, drained by one global
   earliest-dispatch loop. Every request is admitted to the home shard
   its fingerprint hashes to (per-tenant quotas and the per-shard queue
   limit shed at admission); an idle shard steals the head batch of the
   longest queue; same-fingerprint waiters are served as one batch; a
   request whose deadline expired while queued is degraded, dropped or
   served anyway per the configured policy. All times are virtual
   milliseconds derived from simulated cycles, and every scheduling
   decision (candidate order, tie-breaks, admission chronology) is a
   pure function of the request list and config — byte-identical
   records at any [jobs].

   Determinism argument for the loop: dispatch candidates are settled
   one event at a time. The next event is either the earliest pending
   arrival (admitted to its home shard, possibly shed) or the earliest
   candidate dispatch (t0, serving shard, source shard), whichever is
   earlier — arrivals win ties, lower shard index breaks candidate
   ties. Host parallelism never enters: virtual times come from the
   deterministic build pass, and the fleet state is plain sequential
   OCaml. With [shards = 1] the loop specialises to the classic
   single-scheduler chronology (one candidate, stepwise admission
   admits exactly the arrivals at or before its t0), so the deprecated
   {!replay} wrapper reproduces historical records byte-for-byte. *)

module Coo = Asap_tensor.Coo
module Storage = Asap_tensor.Storage
module Driver = Asap_core.Driver
module Par = Asap_core.Par
module Generate = Asap_workloads.Generate
module Registry = Asap_obs.Registry
module Chrome = Asap_obs.Chrome
module Jsonu = Asap_obs.Jsonu
module Select = Asap_model.Select

type cfg = {
  servers : int;          (* virtual servers draining the queue *)
  queue_limit : int;      (* bounded FIFO depth; arrivals past it shed *)
  cache_capacity : int;   (* LRU entries; 0 disables cache AND memoised
                             builds AND batching (the uncached baseline) *)
  compile_ms : float;     (* virtual sparsify+compile penalty per miss *)
  batching : bool;        (* serve same-fingerprint waiters together *)
  jobs : int;             (* host domains for the build pass *)
}

let default_cfg =
  { servers = 2; queue_limit = 64; cache_capacity = 128; compile_ms = 0.05;
    batching = true; jobs = 1 }

type outcome = Served | Degraded | Shed

let outcome_to_string = function
  | Served -> "ok"
  | Degraded -> "degraded"
  | Shed -> "shed"

type record = {
  r_index : int;                   (* position in the input list *)
  r_req : Request.t;
  r_outcome : outcome;
  r_fp : string;                   (* fingerprint actually served *)
  r_hit : bool;                    (* cache hit at dispatch *)
  r_batch : int;                   (* size of its dispatch batch; 0 = shed *)
  r_queue_ms : float;              (* admission wait: dispatch - arrival *)
  r_service_ms : float;            (* own run + (miss) build penalty *)
  r_finish_ms : float;             (* virtual completion; arrival if shed *)
  r_shard : int;                   (* shard whose server dispatched it *)
  r_home : int;                    (* shard its fingerprint routed to *)
  r_stolen : bool;                 (* served by a shard other than home *)
  r_result : Driver.result option; (* None for shed *)
}

type replayed = {
  rp_records : record array;       (* input order *)
  rp_summary : Slo.summary;
  rp_shards : Slo.shard_summary array;
  rp_registry : Registry.t;
}

(* Matrices are named by spec string; resolve each distinct spec once,
   in parallel (generation is deterministic, results index-slotted). *)
let build_matrices ~jobs (reqs : Request.t array) :
    (string, Coo.t) Hashtbl.t =
  let specs =
    Array.to_list reqs
    |> List.map (fun r -> r.Request.matrix)
    |> List.sort_uniq String.compare
    |> Array.of_list
  in
  let coos =
    Par.map ~jobs
      (fun spec ->
        match Generate.of_spec spec with
        | Ok coo -> coo
        | Error e -> invalid_arg ("Scheduler: " ^ e))
      specs
  in
  let tbl = Hashtbl.create (Array.length specs) in
  Array.iteri (fun i spec -> Hashtbl.add tbl spec coos.(i)) specs;
  tbl

let us_of_ms ms = int_of_float (Float.round (ms *. 1000.))

let run ?(trace : Chrome.t option) ?(updates : Request.Update.t list = [])
    (config : Config.t) (requests : Request.t list) : replayed =
  Config.validate config;
  (* Config-level overrides rewrite the requests up front (they change
     fingerprints, so they must precede routing and building). *)
  let requests =
    match
      ( config.Config.engine, config.Config.tune_mode,
        config.Config.specialize, config.Config.pipelines )
    with
    | None, None, None, [] -> requests
    | engine, tune_mode, specialize, _ ->
      List.map
        (fun r ->
          let r =
            match engine with
            | Some e -> { r with Request.engine = e }
            | None -> r
          in
          let r =
            match tune_mode with
            | Some m -> { r with Request.tune_mode = m }
            | None -> r
          in
          let r =
            match specialize with
            | Some s -> { r with Request.specialize = s }
            | None -> r
          in
          match Config.pipeline_of config r.Request.tenant with
          | Some p -> { r with Request.pipeline = Some p }
          | None -> r)
        requests
  in
  let reqs = Array.of_list requests in
  let n = Array.length reqs in
  (* --- Streaming updates: versions --------------------------------- *)
  (* Updates sorted by fire time (stable on stream order); a request's
     version is the number of its matrix's updates at or before its
     arrival — a pure function of the item stream, so versioning (and
     with it every fingerprint) is identical at any [jobs]. *)
  let upd_sorted =
    List.stable_sort
      (fun a b -> compare a.Request.Update.u_at_ms b.Request.Update.u_at_ms)
      updates
  in
  let upd_by_matrix : (string, Request.Update.t array) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun u ->
      let m = u.Request.Update.u_matrix in
      let prev =
        Option.value (Hashtbl.find_opt upd_by_matrix m) ~default:[||]
      in
      Hashtbl.replace upd_by_matrix m (Array.append prev [| u |]))
    upd_sorted;
  let version_at (matrix : string) (t : float) : int =
    match Hashtbl.find_opt upd_by_matrix matrix with
    | None -> 0
    | Some us ->
      let v = ref 0 in
      Array.iter
        (fun u -> if u.Request.Update.u_at_ms <= t then incr v)
        us;
      !v
  in
  let ver =
    Array.map
      (fun r -> version_at r.Request.matrix r.Request.arrival_ms)
      reqs
  in
  (* Version 0 keeps the bare fingerprint, so update-free replays are
     byte-identical to what they were before updates existed. *)
  let vkey key v = if v = 0 then key else Printf.sprintf "%s|v%d" key v in
  let caching = config.Config.cache_capacity > 0 in
  let nshards = config.Config.shards in
  let router = Router.create ~vnodes:config.Config.vnodes ~shards:nshards () in
  let jobs = config.Config.jobs in

  (* --- Pass 1: host-side builds ------------------------------------ *)
  let matrices = build_matrices ~jobs reqs in
  (* Versioned matrices: version v of a spec is its base generation with
     the first v updates applied cumulatively (sequential — deltas are
     small next to generation, and the fold is inherently ordered). *)
  let mat_v : (string * int, Coo.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter (fun spec coo -> Hashtbl.add mat_v (spec, 0) coo) matrices;
  Hashtbl.iter
    (fun spec us ->
      if Hashtbl.mem matrices spec then begin
        let coo = ref (Hashtbl.find matrices spec) in
        Array.iteri
          (fun k u ->
            coo := Request.Update.apply u !coo;
            Hashtbl.replace mat_v (spec, k + 1) !coo)
          us
      end)
    upd_by_matrix;
  let coo_of r v = Hashtbl.find mat_v (r.Request.matrix, v) in
  let fp =
    Array.mapi (fun i r -> vkey (Request.fingerprint r) ver.(i)) reqs
  in
  let fb_req = Array.map Request.fallback reqs in
  (* The fallback shares matrix and arrival, hence the version. *)
  let fb_fp =
    Array.mapi (fun i r -> vkey (Request.fingerprint r) ver.(i)) fb_req
  in
  let has_deadline = Array.map (fun r -> r.Request.deadline <> None) reqs in
  (* --- Pack-memoisation pre-pass ----------------------------------- *)
  (* Packing is a pure function of (matrix, version, encoding), and many
     distinct fingerprints share one: same matrix under the same format
     across variants, engines or tuning modes. Each distinct triple
     packs once here (sorted keys, index-slotted Par.map — jobs-
     invariant) and every build consumes the shared storage. The format
     enters the key in canonical form so spellings that resolve to the
     same encoding (["bsr"] vs ["bsr4x4"]) share one pack. Disabled
     with the cache ([cache_capacity = 0]): the uncached baseline pays
     every pack, like it pays every build. *)
  let pack_norm fmt = if String.equal fmt "bsr" then "bsr4x4" else fmt in
  let pack_key_of (req : Request.t) v : (string * int * string) option =
    match
      Request.encoding_of_format req.Request.kernel req.Request.format
    with
    | Some _ when req.Request.kernel <> `Ttv ->
      if Coo.rank (coo_of req v) = 2 then
        Some (req.Request.matrix, v, pack_norm req.Request.format)
      else None
    | _ -> None
  in
  let pack_rep : (string * int * string, Request.t * int) Hashtbl.t =
    Hashtbl.create 16
  in
  if caching then
    Array.iteri
      (fun i r ->
        match pack_key_of r ver.(i) with
        | Some k ->
          if not (Hashtbl.mem pack_rep k) then Hashtbl.add pack_rep k (r, ver.(i))
        | None -> ())
      reqs;
  let pack_keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) pack_rep []
    |> List.sort compare |> Array.of_list
  in
  let packed =
    Par.map ~jobs
      (fun k ->
        let req, v = Hashtbl.find pack_rep k in
        let enc =
          Option.get
            (Request.encoding_of_format req.Request.kernel req.Request.format)
        in
        Storage.pack enc (coo_of req v))
      pack_keys
  in
  let prepack_tbl :
      (string * int * string, Storage.t) Hashtbl.t =
    Hashtbl.create (Array.length pack_keys)
  in
  Array.iteri (fun i k -> Hashtbl.add prepack_tbl k packed.(i)) pack_keys;
  let prepack_of req v =
    match pack_key_of req v with
    | Some k -> Hashtbl.find_opt prepack_tbl k
    | None -> None
  in
  let build_one ((req : Request.t), v) =
    match prepack_of req v with
    | Some st -> Build.build ~st req (coo_of req v)
    | None -> Build.build req (coo_of req v)
  in
  (* Fingerprint -> (matrix, version), for update invalidation and the
     stale-hit invariant check at dispatch. *)
  let fp_meta : (string, string * int) Hashtbl.t = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i r ->
      Hashtbl.replace fp_meta fp.(i) (r.Request.matrix, ver.(i));
      Hashtbl.replace fp_meta fb_fp.(i) (r.Request.matrix, ver.(i)))
    reqs;
  (* Work items: with caching, one per distinct fingerprint (plus the
     fallback fingerprint of every deadline-carrying request — built
     eagerly so degradation never blocks); without, one per request.
     [built] keeps every entry in a deterministic order (sorted
     fingerprints when caching — grouped by home shard for a fleet —
     input order otherwise) so the tuning counters aggregated from them
     are jobs-invariant. *)
  let entry_for, builds, built, pack_uses =
    if caching then begin
      (* Representative request per fingerprint: the first (by input
         index) request — or fallback form — that produces it, paired
         with its matrix version. Only fields inside the (versioned)
         fingerprint affect the build, so any representative yields the
         same entry. *)
      let rep : (string, Request.t * int) Hashtbl.t =
        Hashtbl.create (2 * n)
      in
      let note key req v =
        if not (Hashtbl.mem rep key) then Hashtbl.add rep key (req, v)
      in
      Array.iteri
        (fun i r ->
          note fp.(i) r ver.(i);
          if has_deadline.(i) then note fb_fp.(i) fb_req.(i) ver.(i))
        reqs;
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) rep []
        |> List.sort String.compare |> Array.of_list
      in
      let keys, entries =
        if nshards = 1 then
          ( keys,
            Par.map ~jobs (fun key -> build_one (Hashtbl.find rep key)) keys )
        else begin
          (* Group the keys by home shard (each group stays sorted) and
             build every group on its leased slice of one persistent
             pool — shard i's builds use shard i's worker budget. *)
          let groups = Array.make nshards [] in
          Array.iter
            (fun key ->
              let s = Router.shard_of router key in
              groups.(s) <- key :: groups.(s))
            keys;
          let groups =
            Array.map (fun g -> Array.of_list (List.rev g)) groups
          in
          let build_group slice_map g =
            slice_map (fun key -> build_one (Hashtbl.find rep key)) g
          in
          let per_shard =
            if jobs > 1 then begin
              let pool = Par.pool ~workers:(jobs - 1) in
              let slices = Par.lease pool ~shards:nshards in
              let r =
                Array.mapi
                  (fun s g -> build_group (Par.map_slice slices.(s)) g)
                  groups
              in
              Par.shutdown pool;
              r
            end
            else Array.map (build_group Array.map) groups
          in
          ( Array.concat (Array.to_list groups),
            Array.concat (Array.to_list per_shard) )
        end
      in
      let tbl = Hashtbl.create (Array.length keys) in
      Array.iteri (fun i key -> Hashtbl.add tbl key entries.(i)) keys;
      (* Builds that consumed a shared pack, counted over the
         deterministic key list — jobs-invariant, like the builds. *)
      let pack_uses =
        Array.fold_left
          (fun acc key ->
            let req, v = Hashtbl.find rep key in
            if prepack_of req v <> None then acc + 1 else acc)
          0 keys
      in
      let lookup i = function
        | `Primary -> Hashtbl.find tbl fp.(i)
        | `Fallback -> Hashtbl.find tbl fb_fp.(i)
      in
      (lookup, Array.length keys, entries, pack_uses)
    end
    else begin
      (* Uncached baseline: every request pays its own build — primaries
         first, then the fallbacks of deadline-carrying requests, all in
         input order so results stay index-slotted. *)
      let fb_idx =
        Array.to_list (Array.init n Fun.id)
        |> List.filter (fun i -> has_deadline.(i))
        |> Array.of_list
      in
      let work =
        Array.append
          (Array.mapi (fun i r -> (r, ver.(i))) reqs)
          (Array.map (fun i -> (fb_req.(i), ver.(i))) fb_idx)
      in
      let entries = Par.map ~jobs build_one work in
      let prim = Array.sub entries 0 n in
      let fbent : Build.entry option array = Array.make n None in
      Array.iteri (fun k i -> fbent.(i) <- Some entries.(n + k)) fb_idx;
      let lookup i = function
        | `Primary -> prim.(i)
        | `Fallback -> Option.get fbent.(i)
      in
      (lookup, Array.length work, entries, 0)
    end
  in

  (* --- Pass 2: virtual-time discrete-event simulation --------------- *)
  let arrival i = reqs.(i).Request.arrival_ms in
  let deadline_abs =
    Array.mapi
      (fun i r ->
        if has_deadline.(i) then Request.deadline_ms r (Request.machine_of r)
        else None)
      reqs
  in
  let home = Array.map (fun key -> Router.shard_of router key) fp in
  (* Arrivals in (arrival, index) order. *)
  let pending =
    ref
      (List.stable_sort
         (fun a b -> compare (arrival a) (arrival b))
         (List.init n Fun.id))
  in
  let shards =
    Array.init nshards (fun index ->
        Shard.create ~index ~servers:config.Config.servers
          ~cache_capacity:config.Config.cache_capacity)
  in
  (* Update events in fire order, each tagged with the version it brings
     its matrix to. Firing drops every cached entry of an older version
     of that matrix from every shard's LRU — post-update requests carry
     new fingerprints and can never hit them anyway, but reclaiming the
     slots keeps the cache honest and the counter observable. *)
  let update_events =
    let count : (string, int) Hashtbl.t = Hashtbl.create 8 in
    List.map
      (fun u ->
        let m = u.Request.Update.u_matrix in
        let c = 1 + Option.value (Hashtbl.find_opt count m) ~default:0 in
        Hashtbl.replace count m c;
        (u, c))
      upd_sorted
  in
  let pending_updates = ref update_events in
  let fire_update ((u : Request.Update.t), vnew) =
    Array.iter
      (fun sh ->
        let removed =
          Lru.remove_if sh.Shard.lru (fun key ->
              match Hashtbl.find_opt fp_meta key with
              | Some (m, v) ->
                String.equal m u.Request.Update.u_matrix && v < vnew
              | None -> false)
        in
        sh.Shard.invalidated <- sh.Shard.invalidated + removed)
      shards
  in
  let tenant_queued : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let tenant_quota_shed : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let tcount tenant =
    match Hashtbl.find_opt tenant_queued tenant with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add tenant_queued tenant r;
      r
  in
  let total_q = ref 0 in
  let fleet_queue_peak = ref 0 in
  let inflight_peak = ref 0 in
  let steals = ref 0 in
  (* Specialized artefacts served from cache, counted at the sequential
     dispatch loop — jobs-invariant like every pass-2 quantity. *)
  let spec_hits = ref 0 in
  let recs : record option array = Array.make n None in
  let trace_shed i =
    match trace with
    | None -> ()
    | Some tr ->
      Chrome.add_instant tr ~track:"admission" ~name:reqs.(i).Request.id
        ~cat:"shed" ~ts:(us_of_ms (arrival i))
        [ ("fp", Jsonu.Str fp.(i)) ]
  in
  (* Admission sheds (queue full or quota) are attributed to the
     request's home shard; its record never reached a server, so
     r_shard = r_home. *)
  let shed_at_admission why i =
    let s = home.(i) in
    shards.(s).Shard.shed <- shards.(s).Shard.shed + 1;
    (if why = `Quota then
       let t = reqs.(i).Request.tenant in
       Hashtbl.replace tenant_quota_shed t
         (1 + Option.value (Hashtbl.find_opt tenant_quota_shed t) ~default:0));
    recs.(i) <-
      Some
        { r_index = i; r_req = reqs.(i); r_outcome = Shed; r_fp = fp.(i);
          r_hit = false; r_batch = 0; r_queue_ms = 0.; r_service_ms = 0.;
          r_finish_ms = arrival i; r_shard = s; r_home = s; r_stolen = false;
          r_result = None };
    trace_shed i
  in
  let admit_one i =
    let tenant = reqs.(i).Request.tenant in
    let tc = tcount tenant in
    let over_quota =
      match Config.quota_of config tenant with
      | Some q -> !tc >= q
      | None -> false
    in
    if over_quota then shed_at_admission `Quota i
    else begin
      let sh = shards.(home.(i)) in
      if sh.Shard.qlen >= config.Config.queue_limit then
        shed_at_admission `Queue i
      else begin
        Shard.enqueue sh i;
        incr tc;
        incr total_q;
        if !total_q > !fleet_queue_peak then fleet_queue_peak := !total_q
      end
    end
  in
  let unqueued i =
    decr (tcount reqs.(i).Request.tenant);
    decr total_q
  in
  (* The earliest possible dispatch across the fleet:
     (t0, serving shard, source shard). A shard with work serves its own
     head; an idle shard (stealing on) targets the longest other queue
     (lowest index on ties). Own-queue candidates are scanned first and
     [consider] keeps the incumbent on ties, so a steal fires only when
     it is *strictly* earlier than every home dispatch — an equally-free
     home shard keeps its own work (and its cache locality) instead of
     losing it to a lower-indexed idle shard. Ties within each class go
     to the lowest serving shard. *)
  let best_candidate () =
    let best = ref None in
    let consider t srv src =
      match !best with
      | Some (bt, _, _) when bt <= t -> ()
      | _ -> best := Some (t, srv, src)
    in
    for s = 0 to nshards - 1 do
      let sh = shards.(s) in
      match Shard.head sh with
      | Some h ->
        consider (Float.max sh.Shard.free.(Shard.min_server sh) (arrival h)) s s
      | None -> ()
    done;
    if config.Config.stealing then
      for s = 0 to nshards - 1 do
        let sh = shards.(s) in
        if Shard.head sh = None then begin
          let v = ref (-1) in
          for u = 0 to nshards - 1 do
            if
              u <> s
              && shards.(u).Shard.qlen > 0
              && (!v < 0 || shards.(u).Shard.qlen > shards.(!v).Shard.qlen)
            then v := u
          done;
          if !v >= 0 then begin
            let h = Option.get (Shard.head shards.(!v)) in
            consider
              (Float.max sh.Shard.free.(Shard.min_server sh) (arrival h))
              s !v
          end
        end
      done;
    !best
  in
  let expired ~t0 i =
    match deadline_abs.(i) with Some d -> t0 > d | None -> false
  in
  let dispatch t0 s v =
    let sh = shards.(s) and src = shards.(v) in
    let k = Shard.min_server sh in
    let h = Shard.take src in
    unqueued h;
    if config.Config.deadline_policy = Config.Drop && expired ~t0 h then begin
      (* Dropped at dispatch: shed without consuming server time,
         attributed to the queue it waited in. *)
      src.Shard.shed <- src.Shard.shed + 1;
      recs.(h) <-
        Some
          { r_index = h; r_req = reqs.(h); r_outcome = Shed; r_fp = fp.(h);
            r_hit = false; r_batch = 0; r_queue_ms = t0 -. arrival h;
            r_service_ms = 0.; r_finish_ms = t0; r_shard = v;
            r_home = home.(h); r_stolen = false; r_result = None };
      trace_shed h
    end
    else begin
      let eff i =
        match config.Config.deadline_policy with
        | Config.Degrade when expired ~t0 i -> `Fallback
        | Config.Degrade | Config.Drop | Config.Ignore -> `Primary
      in
      let fp_of i = function `Primary -> fp.(i) | `Fallback -> fb_fp.(i) in
      let eh = eff h in
      let key = fp_of h eh in
      let batch =
        if config.Config.batching && caching then begin
          (* Under Drop, expired same-key waiters stay queued (they drop
             when they reach the head) instead of riding the batch. *)
          let mates =
            Shard.take_matching src (fun j ->
                String.equal (fp_of j (eff j)) key
                && not
                     (config.Config.deadline_policy = Config.Drop
                      && expired ~t0 j))
          in
          List.iter unqueued mates;
          h :: mates
        end
        else [ h ]
      in
      let nb = List.length batch in
      Shard.note_batch sh nb;
      if s <> v then begin
        incr steals;
        sh.Shard.steals_in <- sh.Shard.steals_in + 1;
        src.Shard.steals_out <- src.Shard.steals_out + 1
      end;
      let entry = entry_for h eh in
      let hit = Lru.find sh.Shard.lru key <> None in
      (* Stale-hit invariant: a hit's entry version must be exactly the
         version the request's arrival pinned. Versioned fingerprints
         make a violation structurally impossible; the counter proves
         it stayed that way. *)
      (if hit then
         match Hashtbl.find_opt fp_meta key with
         | Some (_, v_entry) when v_entry <> ver.(h) ->
           sh.Shard.stale_hits <- sh.Shard.stale_hits + 1
         | _ -> ());
      if hit && entry.Build.e_spec then spec_hits := !spec_hits + nb;
      if not hit then ignore (Lru.add sh.Shard.lru key entry);
      let penalty =
        if hit then 0.
        else Build.miss_penalty_ms ~compile_ms:config.Config.compile_ms entry
      in
      let run_ms = entry.Build.e_run_ms in
      List.iteri
        (fun pos j ->
          let start = t0 +. penalty +. (run_ms *. float_of_int pos) in
          let finish = start +. run_ms in
          let outcome = if eff j = `Fallback then Degraded else Served in
          assert (t0 -. arrival j >= 0.);
          recs.(j) <-
            Some
              { r_index = j; r_req = reqs.(j); r_outcome = outcome;
                r_fp = key; r_hit = hit; r_batch = nb;
                r_queue_ms = t0 -. arrival j;
                r_service_ms = (if pos = 0 then penalty +. run_ms else run_ms);
                r_finish_ms = finish; r_shard = s; r_home = home.(j);
                r_stolen = s <> v; r_result = Some entry.Build.e_result };
          match trace with
          | None -> ()
          | Some tr ->
            let ts = if pos = 0 then us_of_ms t0 else us_of_ms start in
            let track =
              if nshards = 1 then Printf.sprintf "server%d" k
              else Printf.sprintf "shard%d.server%d" s k
            in
            Chrome.add_complete tr ~track ~name:reqs.(j).Request.id
              ~cat:"serve" ~ts
              ~dur:(us_of_ms finish - ts)
              [ ("fp", Jsonu.Str key);
                ("hit", Jsonu.Bool hit);
                ("outcome", Jsonu.Str (outcome_to_string outcome));
                ("batch", Jsonu.Int nb) ])
        batch;
      sh.Shard.free.(k) <- t0 +. penalty +. (run_ms *. float_of_int nb);
      let inflight =
        Array.fold_left
          (fun acc sh ->
            Array.fold_left
              (fun acc f -> if f > t0 then acc + 1 else acc)
              acc sh.Shard.free)
          0 shards
      in
      if inflight > !inflight_peak then inflight_peak := inflight
    end
  in
  (* The settle loop: one event per iteration — the earliest pending
     arrival when it is at or before the earliest candidate dispatch
     (so admission chronology is exact: a dispatch at t0 sees exactly
     the arrivals <= t0, as the classic scheduler's admit_until did),
     otherwise that dispatch. Each iteration strictly shrinks
     [pending] or a queue, so the loop terminates. *)
  (* An update at time t fires before arrivals at t (that arrival's
     version already counts it) and before dispatches at t (a dispatch
     must never see an entry an update at the same instant should have
     dropped). All three event classes are drained sequentially, so the
     chronology is jobs-invariant. *)
  let update_due t =
    match !pending_updates with
    | (u, _) :: _ -> u.Request.Update.u_at_ms <= t
    | [] -> false
  in
  let fire_next () =
    match !pending_updates with
    | e :: rest ->
      pending_updates := rest;
      fire_update e
    | [] -> ()
  in
  let continue = ref true in
  while !continue do
    match (best_candidate (), !pending) with
    | None, [] ->
      if !pending_updates = [] then continue := false else fire_next ()
    | None, i :: rest ->
      if update_due (arrival i) then fire_next ()
      else begin
        pending := rest;
        admit_one i
      end
    | Some (t0, s, v), p ->
      (match p with
       | i :: rest when arrival i <= t0 ->
         if update_due (arrival i) then fire_next ()
         else begin
           pending := rest;
           admit_one i
         end
       | _ -> if update_due t0 then fire_next () else dispatch t0 s v)
  done;

  (* --- Summarise ---------------------------------------------------- *)
  let records =
    Array.mapi
      (fun i r ->
        match r with
        | Some r -> r
        | None -> invalid_arg (Printf.sprintf "Scheduler: request %d lost" i))
      recs
  in
  (* Per-shard served counts and latencies, attributed to the serving
     shard, accumulated in input order (so pooled latencies match the
     classic single-shard order exactly). *)
  let ok_s = Array.make nshards 0 in
  let deg_s = Array.make nshards 0 in
  let lats_s = Array.make nshards [] in
  let lats = ref [] in
  let makespan = ref 0. in
  Array.iter
    (fun r ->
      match r.r_outcome with
      | Shed -> ()
      | Served | Degraded ->
        (match r.r_outcome with
         | Served -> ok_s.(r.r_shard) <- ok_s.(r.r_shard) + 1
         | _ -> deg_s.(r.r_shard) <- deg_s.(r.r_shard) + 1);
        let lat = r.r_finish_ms -. r.r_req.Request.arrival_ms in
        lats_s.(r.r_shard) <- lat :: lats_s.(r.r_shard);
        lats := lat :: !lats;
        if r.r_finish_ms > !makespan then makespan := r.r_finish_ms)
    records;
  let shard_summaries =
    Array.init nshards (fun s ->
        let sh = shards.(s) in
        Slo.shard_make ~index:s
          ~latencies_ms:(Array.of_list (List.rev lats_s.(s)))
          ~ok:ok_s.(s) ~degraded:deg_s.(s) ~shed:sh.Shard.shed
          ~hits:(Lru.hits sh.Shard.lru) ~misses:(Lru.misses sh.Shard.lru)
          ~evictions:(Lru.evictions sh.Shard.lru) ~batches:sh.Shard.batches
          ~batch_max:sh.Shard.batch_max ~queue_peak:sh.Shard.queue_peak
          ~steals_in:sh.Shard.steals_in ~steals_out:sh.Shard.steals_out
          ~invalidated:sh.Shard.invalidated
          ~stale_hits:sh.Shard.stale_hits ())
  in
  let registry = Registry.create () in
  Array.iter (Slo.shard_register registry) shard_summaries;
  (* Fleet totals over additive leaves are DERIVED from the per-shard
     counters just registered, not maintained separately — the
     aggregation is a fold over the registry, deterministic because the
     leaves are commutative sums. *)
  let fleet leaf = Registry.sum_prefix registry ~leaf "serve.shard." in
  let batch_max =
    Array.fold_left (fun m sh -> max m sh.Shard.batch_max) 0 shards
  in
  let summary =
    Slo.make
      ~latencies_ms:(Array.of_list (List.rev !lats))
      ~ok:(fleet "ok") ~degraded:(fleet "degraded") ~shed:(fleet "shed")
      ~hits:(fleet "cache.hit") ~misses:(fleet "cache.miss")
      ~evictions:(fleet "cache.evict") ~batches:(fleet "batch.count")
      ~batch_max ~queue_peak:!fleet_queue_peak ~inflight_peak:!inflight_peak
      ~builds ~steals:!steals ~makespan_ms:!makespan
      ~invalidated:(fleet "cache.invalidated")
      ~stale_hits:(fleet "cache.stale_hit") ()
  in
  Slo.register registry summary;
  (* Per-tenant admission accounting, sorted by tenant name. *)
  let tenants =
    Array.fold_left
      (fun acc r -> r.r_req.Request.tenant :: acc)
      (Hashtbl.fold (fun t _ acc -> t :: acc) tenant_quota_shed [])
      records
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun t ->
      let pre leaf = Printf.sprintf "serve.tenant.%s.%s" t leaf in
      let requests = ref 0 and ok = ref 0 and deg = ref 0 and shed = ref 0 in
      Array.iter
        (fun r ->
          if String.equal r.r_req.Request.tenant t then begin
            incr requests;
            match r.r_outcome with
            | Served -> incr ok
            | Degraded -> incr deg
            | Shed -> incr shed
          end)
        records;
      Registry.set registry (pre "requests") !requests;
      Registry.set registry (pre "ok") !ok;
      Registry.set registry (pre "degraded") !deg;
      Registry.set registry (pre "shed") !shed;
      Registry.set registry (pre "quota_shed")
        (Option.value (Hashtbl.find_opt tenant_quota_shed t) ~default:0))
    tenants;
  (* Tuning-decision counters, aggregated over the deterministic build
     list: how many builds swept, how many ran the model, how many
     rolled prefetching back — and, for hybrid builds, whether the model
     agreed with the sweep and the profiled-cycle regret when not. *)
  Array.iter
    (fun (e : Build.entry) ->
      match e.Build.e_decide with
      | None -> ()
      | Some d ->
        if d.Select.d_sweep <> None then
          Registry.add registry "serve.tune.sweep_runs" 1;
        if d.Select.d_model <> None then
          Registry.add registry "serve.tune.model_decisions" 1;
        (match d.Select.d_chosen with
         | Asap_core.Pipeline.Baseline ->
           Registry.add registry "serve.tune.rollbacks" 1
         | _ -> ());
        (match d.Select.d_agree with
         | Some true -> Registry.add registry "tune.model.agree" 1
         | Some false ->
           Registry.add registry "tune.model.disagree" 1;
           (match d.Select.d_delta_cycles with
            | Some dc -> Registry.add registry "tune.model.delta_cycles" dc
            | None -> ())
         | None -> ()))
    built;
  (* Specialization counters: misses are the specialized builds (each
     build IS a cache miss), hits the specialized entries served from a
     shard LRU at dispatch, build_ns the host time Prep.make spent under
     specialization (a wall-clock quantity — informative, not part of
     the byte-identical record surface). Pack memoisation mirrors the
     shape: misses are the packs performed, hits the builds that reused
     one. *)
  let spec_misses =
    Array.fold_left
      (fun acc (e : Build.entry) -> if e.Build.e_spec then acc + 1 else acc)
      0 built
  in
  let spec_build_ns =
    Array.fold_left (fun acc (e : Build.entry) -> acc + e.Build.e_spec_ns) 0 built
  in
  Registry.set registry "serve.spec.hit" !spec_hits;
  Registry.set registry "serve.spec.miss" spec_misses;
  Registry.set registry "serve.spec.build_ns" spec_build_ns;
  Registry.set registry "serve.pack.hit" (max 0 (pack_uses - Array.length pack_keys));
  Registry.set registry "serve.pack.miss" (Array.length pack_keys);
  { rp_records = records; rp_summary = summary; rp_shards = shard_summaries;
    rp_registry = registry }

(* The legacy single-scheduler surface: a [cfg] is a one-shard
   [Config.t]. Kept so pre-fleet callers keep compiling; new code uses
   [run] with [Config] builders. *)
let replay ?trace (cfg : cfg) (requests : Request.t list) : replayed =
  run ?trace
    { Config.default with
      Config.servers = cfg.servers;
      queue_limit = cfg.queue_limit;
      cache_capacity = cfg.cache_capacity;
      compile_ms = cfg.compile_ms;
      batching = cfg.batching;
      jobs = cfg.jobs }
    requests

(* One record as a JSONL object — virtual quantities only, so replay
   output is byte-comparable across runs and host parallelism. *)
let checksum (res : Driver.result) : float =
  match (res.Driver.out_f, res.Driver.out_b) with
  | Some a, _ -> Array.fold_left ( +. ) 0. a
  | None, Some b ->
    let acc = ref 0 in
    Bytes.iter (fun c -> acc := !acc + Char.code c) b;
    float_of_int !acc
  | None, None -> 0.

let record_to_json (r : record) : Jsonu.t =
  let base =
    [ ("index", Jsonu.Int r.r_index);
      ("id", Jsonu.Str r.r_req.Request.id);
      ("tenant", Jsonu.Str r.r_req.Request.tenant);
      ("outcome", Jsonu.Str (outcome_to_string r.r_outcome));
      ("fp", Jsonu.Str r.r_fp);
      ("hit", Jsonu.Bool r.r_hit);
      ("batch", Jsonu.Int r.r_batch);
      ("shard", Jsonu.Int r.r_shard);
      ("home", Jsonu.Int r.r_home);
      ("stolen", Jsonu.Bool r.r_stolen);
      ("queue_ms", Jsonu.Float r.r_queue_ms);
      ("service_ms", Jsonu.Float r.r_service_ms);
      ("finish_ms", Jsonu.Float r.r_finish_ms) ]
  in
  let result =
    match r.r_result with
    | None -> []
    | Some res ->
      let report = res.Driver.report in
      [ ("cycles", Jsonu.Int (Asap_sim.Exec.Report.cycles report));
        ("checksum", Jsonu.Float (checksum res)) ]
  in
  Jsonu.Obj (base @ result)

let record_to_line (r : record) : string = Jsonu.to_string (record_to_json r)
