(* The deterministic request scheduler.

   Serving must produce the same results whatever the host parallelism,
   so the replay is split into two passes:

   Pass 1 (host time, parallel): the set of distinct fingerprints is
   collected in sorted order and each entry is built once on a {!Par}
   domain pool — sparsify, prefetch-inject, pack, lay out, stage the
   closure, tune if asked, and run once cold. Results land in
   index-slotted arrays, so this pass is deterministic for any [jobs].
   Repeat fingerprints never rebuild: this is the host-side half of the
   compile/tune cache. With the cache disabled ([cache_capacity = 0])
   the memoisation is disabled too — every request builds its own entry,
   which is the honest baseline the serve bench compares against.

   Pass 2 (virtual time, sequential): a discrete-event simulation of the
   serving fleet — [servers] identical virtual servers drain a bounded
   FIFO queue. Admission control sheds arrivals past [queue_limit]; the
   LRU cache charges misses a virtual compile+tune penalty; same-
   fingerprint waiters are served as one batch; a request whose deadline
   has expired by dispatch time degrades to its prefetch-free baseline
   entry instead of failing. All times are virtual milliseconds derived
   from simulated cycles, so the pass is a pure function of the request
   list — byte-identical records at any [jobs]. *)

module Coo = Asap_tensor.Coo
module Driver = Asap_core.Driver
module Par = Asap_core.Par
module Generate = Asap_workloads.Generate
module Registry = Asap_obs.Registry
module Chrome = Asap_obs.Chrome
module Jsonu = Asap_obs.Jsonu
module Select = Asap_model.Select

type cfg = {
  servers : int;          (* virtual servers draining the queue *)
  queue_limit : int;      (* bounded FIFO depth; arrivals past it shed *)
  cache_capacity : int;   (* LRU entries; 0 disables cache AND memoised
                             builds AND batching (the uncached baseline) *)
  compile_ms : float;     (* virtual sparsify+compile penalty per miss *)
  batching : bool;        (* serve same-fingerprint waiters together *)
  jobs : int;             (* host domains for the build pass *)
}

let default_cfg =
  { servers = 2; queue_limit = 64; cache_capacity = 128; compile_ms = 0.05;
    batching = true; jobs = 1 }

type outcome = Served | Degraded | Shed

let outcome_to_string = function
  | Served -> "ok"
  | Degraded -> "degraded"
  | Shed -> "shed"

type record = {
  r_index : int;                   (* position in the input list *)
  r_req : Request.t;
  r_outcome : outcome;
  r_fp : string;                   (* fingerprint actually served *)
  r_hit : bool;                    (* cache hit at dispatch *)
  r_batch : int;                   (* size of its dispatch batch; 0 = shed *)
  r_queue_ms : float;              (* admission wait: dispatch - arrival *)
  r_service_ms : float;            (* own run + (miss) build penalty *)
  r_finish_ms : float;             (* virtual completion; arrival if shed *)
  r_result : Driver.result option; (* None for shed *)
}

type replayed = {
  rp_records : record array;       (* input order *)
  rp_summary : Slo.summary;
  rp_registry : Registry.t;
}

(* Matrices are named by spec string; resolve each distinct spec once,
   in parallel (generation is deterministic, results index-slotted). *)
let build_matrices ~jobs (reqs : Request.t array) :
    (string, Coo.t) Hashtbl.t =
  let specs =
    Array.to_list reqs
    |> List.map (fun r -> r.Request.matrix)
    |> List.sort_uniq String.compare
    |> Array.of_list
  in
  let coos =
    Par.map ~jobs
      (fun spec ->
        match Generate.of_spec spec with
        | Ok coo -> coo
        | Error e -> invalid_arg ("Scheduler: " ^ e))
      specs
  in
  let tbl = Hashtbl.create (Array.length specs) in
  Array.iteri (fun i spec -> Hashtbl.add tbl spec coos.(i)) specs;
  tbl

let us_of_ms ms = int_of_float (Float.round (ms *. 1000.))

let replay ?(trace : Chrome.t option) (cfg : cfg)
    (requests : Request.t list) : replayed =
  if cfg.servers < 1 then invalid_arg "Scheduler.replay: servers < 1";
  if cfg.queue_limit < 1 then invalid_arg "Scheduler.replay: queue_limit < 1";
  let reqs = Array.of_list requests in
  let n = Array.length reqs in
  let caching = cfg.cache_capacity > 0 in

  (* --- Pass 1: host-side builds ------------------------------------ *)
  let matrices = build_matrices ~jobs:cfg.jobs reqs in
  let coo_of r = Hashtbl.find matrices r.Request.matrix in
  let fp = Array.map Request.fingerprint reqs in
  let fb_req = Array.map Request.fallback reqs in
  let fb_fp = Array.map Request.fingerprint fb_req in
  let has_deadline = Array.map (fun r -> r.Request.deadline <> None) reqs in
  let build_one (req : Request.t) = Build.build req (coo_of req) in
  (* Work items: with caching, one per distinct fingerprint (plus the
     fallback fingerprint of every deadline-carrying request — built
     eagerly so degradation never blocks); without, one per request.
     [built] keeps every entry in a deterministic order (sorted
     fingerprints when caching, input order otherwise) so the tuning
     counters aggregated from them are jobs-invariant. *)
  let entry_for, builds, built =
    if caching then begin
      (* Representative request per fingerprint: the first (by input
         index) request — or fallback form — that produces it. Only
         fields inside the fingerprint affect the build, so any
         representative yields the same entry. *)
      let rep : (string, Request.t) Hashtbl.t = Hashtbl.create (2 * n) in
      let note key req =
        if not (Hashtbl.mem rep key) then Hashtbl.add rep key req
      in
      Array.iteri
        (fun i r ->
          note fp.(i) r;
          if has_deadline.(i) then note fb_fp.(i) fb_req.(i))
        reqs;
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) rep []
        |> List.sort String.compare |> Array.of_list
      in
      let entries =
        Par.map ~jobs:cfg.jobs
          (fun key -> build_one (Hashtbl.find rep key))
          keys
      in
      let tbl = Hashtbl.create (Array.length keys) in
      Array.iteri (fun i key -> Hashtbl.add tbl key entries.(i)) keys;
      let lookup i = function
        | `Primary -> Hashtbl.find tbl fp.(i)
        | `Fallback -> Hashtbl.find tbl fb_fp.(i)
      in
      (lookup, Array.length keys, entries)
    end
    else begin
      (* Uncached baseline: every request pays its own build — primaries
         first, then the fallbacks of deadline-carrying requests, all in
         input order so results stay index-slotted. *)
      let fb_idx =
        Array.to_list (Array.init n Fun.id)
        |> List.filter (fun i -> has_deadline.(i))
        |> Array.of_list
      in
      let work =
        Array.append
          (Array.map (fun r -> r) reqs)
          (Array.map (fun i -> fb_req.(i)) fb_idx)
      in
      let entries = Par.map ~jobs:cfg.jobs build_one work in
      let prim = Array.sub entries 0 n in
      let fbent : Build.entry option array = Array.make n None in
      Array.iteri (fun k i -> fbent.(i) <- Some entries.(n + k)) fb_idx;
      let lookup i = function
        | `Primary -> prim.(i)
        | `Fallback -> Option.get fbent.(i)
      in
      (lookup, Array.length work, entries)
    end
  in

  (* --- Pass 2: virtual-time discrete-event simulation --------------- *)
  let arrival i = reqs.(i).Request.arrival_ms in
  let deadline_abs =
    Array.mapi
      (fun i r ->
        if has_deadline.(i) then
          Request.deadline_ms r (Request.machine_of r)
        else None)
      reqs
  in
  (* Arrivals in (arrival, index) order; queue is the bounded FIFO. *)
  let pending =
    ref
      (List.stable_sort
         (fun a b -> compare (arrival a) (arrival b))
         (List.init n Fun.id))
  in
  let queue : int list ref = ref [] in
  let qlen = ref 0 in
  let free = Array.make cfg.servers 0. in
  let lru : (string, Build.entry) Lru.t =
    Lru.create ~capacity:cfg.cache_capacity
  in
  let recs : record option array = Array.make n None in
  let batches = ref 0 in
  let batch_max = ref 0 in
  let queue_peak = ref 0 in
  let inflight_peak = ref 0 in
  let shed i =
    recs.(i) <-
      Some
        { r_index = i; r_req = reqs.(i); r_outcome = Shed; r_fp = fp.(i);
          r_hit = false; r_batch = 0; r_queue_ms = 0.; r_service_ms = 0.;
          r_finish_ms = arrival i; r_result = None };
    match trace with
    | None -> ()
    | Some tr ->
      Chrome.add_instant tr ~track:"admission" ~name:reqs.(i).Request.id
        ~cat:"shed" ~ts:(us_of_ms (arrival i))
        [ ("fp", Jsonu.Str fp.(i)) ]
  in
  let admit_until t0 =
    let continue = ref true in
    while !continue do
      match !pending with
      | i :: rest when arrival i <= t0 ->
        pending := rest;
        if !qlen >= cfg.queue_limit then shed i
        else begin
          queue := !queue @ [ i ];
          incr qlen;
          if !qlen > !queue_peak then queue_peak := !qlen
        end
      | _ -> continue := false
    done
  in
  let min_server () =
    let s = ref 0 in
    for k = 1 to cfg.servers - 1 do
      if free.(k) < free.(!s) then s := k
    done;
    !s
  in
  (* The dispatch loop. The dispatch time [t0] is non-decreasing: each
     iteration sets [free.(s)] to at least [t0], so the minimum free
     time never moves backwards, and the empty-queue branch only moves
     forward to the next arrival. *)
  let continue = ref true in
  while !continue do
    match (!queue, !pending) with
    | [], [] -> continue := false
    | q, p ->
      let s = min_server () in
      (* Clamp dispatch to the arrival of whatever is served next: the
         queue head if one is waiting (queue arrivals are non-decreasing
         since admission drains [pending] in sorted order), else the next
         pending arrival. Without the clamp an idle server ([free.(s)]
         behind the head's arrival) would dispatch before the request
         exists, yielding negative queue latencies. *)
      let t0 =
        match (q, p) with
        | [], i :: _ -> Float.max free.(s) (arrival i)
        | h :: _, _ -> Float.max free.(s) (arrival h)
        | [], [] -> assert false (* outer match ends the loop *)
      in
      admit_until t0;
      (match !queue with
       | [] ->
         (* Only reachable if admission shed everything it admitted,
            which cannot happen into an empty queue (queue_limit >= 1). *)
         assert false
       | h :: rest ->
         queue := rest;
         decr qlen;
         let eff i =
           match deadline_abs.(i) with
           | Some d when t0 > d -> `Fallback
           | _ -> `Primary
         in
         let fp_of i = function
           | `Primary -> fp.(i)
           | `Fallback -> fb_fp.(i)
         in
         let eh = eff h in
         let key = fp_of h eh in
         let batch =
           if cfg.batching && caching then begin
             let same, other =
               List.partition (fun j -> String.equal (fp_of j (eff j)) key) !queue
             in
             queue := other;
             qlen := List.length other;
             h :: same
           end
           else [ h ]
         in
         let nb = List.length batch in
         if nb > 1 then incr batches;
         if nb > !batch_max then batch_max := nb;
         let entry = entry_for h eh in
         let hit = Lru.find lru key <> None in
         if not hit then ignore (Lru.add lru key entry);
         let penalty =
           if hit then 0. else cfg.compile_ms +. entry.Build.e_tune_ms
         in
         let run = entry.Build.e_run_ms in
         List.iteri
           (fun pos j ->
             let start = t0 +. penalty +. (run *. float_of_int pos) in
             let finish = start +. run in
             let outcome = if eff j = `Fallback then Degraded else Served in
             assert (t0 -. arrival j >= 0.);
             recs.(j) <-
               Some
                 { r_index = j; r_req = reqs.(j); r_outcome = outcome;
                   r_fp = key; r_hit = hit; r_batch = nb;
                   r_queue_ms = t0 -. arrival j;
                   r_service_ms =
                     (if pos = 0 then penalty +. run else run);
                   r_finish_ms = finish;
                   r_result = Some entry.Build.e_result };
             match trace with
             | None -> ()
             | Some tr ->
               let ts = if pos = 0 then us_of_ms t0 else us_of_ms start in
               Chrome.add_complete tr
                 ~track:(Printf.sprintf "server%d" s)
                 ~name:reqs.(j).Request.id ~cat:"serve" ~ts
                 ~dur:(us_of_ms finish - ts)
                 [ ("fp", Jsonu.Str key);
                   ("hit", Jsonu.Bool hit);
                   ("outcome", Jsonu.Str (outcome_to_string outcome));
                   ("batch", Jsonu.Int nb) ])
           batch;
         free.(s) <- t0 +. penalty +. (run *. float_of_int nb);
         let inflight =
           Array.fold_left
             (fun acc f -> if f > t0 then acc + 1 else acc)
             0 free
         in
         if inflight > !inflight_peak then inflight_peak := inflight)
  done;

  (* --- Summarise ---------------------------------------------------- *)
  let records =
    Array.mapi
      (fun i r ->
        match r with
        | Some r -> r
        | None -> invalid_arg (Printf.sprintf "Scheduler: request %d lost" i))
      recs
  in
  let ok = ref 0 and degraded = ref 0 and shed_n = ref 0 in
  let lats = ref [] in
  let makespan = ref 0. in
  Array.iter
    (fun r ->
      (match r.r_outcome with
       | Served -> incr ok
       | Degraded -> incr degraded
       | Shed -> incr shed_n);
      if r.r_outcome <> Shed then begin
        lats := (r.r_finish_ms -. r.r_req.Request.arrival_ms) :: !lats;
        if r.r_finish_ms > !makespan then makespan := r.r_finish_ms
      end)
    records;
  let summary =
    Slo.make
      ~latencies_ms:(Array.of_list (List.rev !lats))
      ~ok:!ok ~degraded:!degraded ~shed:!shed_n ~hits:(Lru.hits lru)
      ~misses:(Lru.misses lru) ~evictions:(Lru.evictions lru)
      ~batches:!batches ~batch_max:!batch_max ~queue_peak:!queue_peak
      ~inflight_peak:!inflight_peak ~builds ~makespan_ms:!makespan
  in
  let registry = Slo.registry summary in
  (* Tuning-decision counters, aggregated over the deterministic build
     list: how many builds swept, how many ran the model, how many
     rolled prefetching back — and, for hybrid builds, whether the model
     agreed with the sweep and the profiled-cycle regret when not. *)
  Array.iter
    (fun (e : Build.entry) ->
      match e.Build.e_decide with
      | None -> ()
      | Some d ->
        if d.Select.d_sweep <> None then
          Registry.add registry "serve.tune.sweep_runs" 1;
        if d.Select.d_model <> None then
          Registry.add registry "serve.tune.model_decisions" 1;
        (match d.Select.d_chosen with
         | Asap_core.Pipeline.Baseline ->
           Registry.add registry "serve.tune.rollbacks" 1
         | _ -> ());
        (match d.Select.d_agree with
         | Some true -> Registry.add registry "tune.model.agree" 1
         | Some false ->
           Registry.add registry "tune.model.disagree" 1;
           (match d.Select.d_delta_cycles with
            | Some dc -> Registry.add registry "tune.model.delta_cycles" dc
            | None -> ())
         | None -> ()))
    built;
  { rp_records = records; rp_summary = summary; rp_registry = registry }

(* One record as a JSONL object — virtual quantities only, so replay
   output is byte-comparable across runs and host parallelism. *)
let checksum (res : Driver.result) : float =
  match (res.Driver.out_f, res.Driver.out_b) with
  | Some a, _ -> Array.fold_left ( +. ) 0. a
  | None, Some b ->
    let acc = ref 0 in
    Bytes.iter (fun c -> acc := !acc + Char.code c) b;
    float_of_int !acc
  | None, None -> 0.

let record_to_json (r : record) : Jsonu.t =
  let base =
    [ ("index", Jsonu.Int r.r_index);
      ("id", Jsonu.Str r.r_req.Request.id);
      ("outcome", Jsonu.Str (outcome_to_string r.r_outcome));
      ("fp", Jsonu.Str r.r_fp);
      ("hit", Jsonu.Bool r.r_hit);
      ("batch", Jsonu.Int r.r_batch);
      ("queue_ms", Jsonu.Float r.r_queue_ms);
      ("service_ms", Jsonu.Float r.r_service_ms);
      ("finish_ms", Jsonu.Float r.r_finish_ms) ]
  in
  let result =
    match r.r_result with
    | None -> []
    | Some res ->
      let report = res.Driver.report in
      [ ("cycles", Jsonu.Int (Asap_sim.Exec.Report.cycles report));
        ("checksum", Jsonu.Float (checksum res)) ]
  in
  Jsonu.Obj (base @ result)

let record_to_line (r : record) : string = Jsonu.to_string (record_to_json r)
