(* A small LRU map for the compile/tune cache.

   Recency is a monotonic tick stamped on every find/add; eviction scans
   for the minimum stamp. The scan is O(capacity), which is fine at the
   cache sizes that make sense here (tens to hundreds of compiled
   kernels) and keeps the structure trivially deterministic: stamps are
   unique, so the victim is always uniquely determined by the operation
   sequence. [capacity = 0] is a valid degenerate cache that stores
   nothing — the cache-disabled baseline. *)

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, 'v * int ref) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { capacity; tbl = Hashtbl.create (max 16 capacity); tick = 0;
    hits = 0; misses = 0; evictions = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl

(** [find t k] is the cached value, refreshing its recency; counts a hit
    or a miss. *)
let find t k =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.tbl k with
  | Some (v, stamp) ->
    stamp := t.tick;
    t.hits <- t.hits + 1;
    Some v
  | None ->
    t.misses <- t.misses + 1;
    None

(** [add t k v] inserts (or refreshes) [k]; returns the evicted key, if
    the insert pushed one out. A no-op at capacity 0. *)
let add t k v =
  if t.capacity = 0 then None
  else begin
    t.tick <- t.tick + 1;
    if Hashtbl.mem t.tbl k then begin
      Hashtbl.replace t.tbl k (v, ref t.tick);
      None
    end
    else begin
      let victim =
        if Hashtbl.length t.tbl < t.capacity then None
        else
          Hashtbl.fold
            (fun k' (_, stamp) acc ->
              match acc with
              | Some (_, s) when s <= !stamp -> acc
              | _ -> Some (k', !stamp))
            t.tbl None
      in
      (match victim with
       | Some (k', _) ->
         Hashtbl.remove t.tbl k';
         t.evictions <- t.evictions + 1
       | None -> ());
      Hashtbl.replace t.tbl k (v, ref t.tick);
      Option.map fst victim
    end
  end

(** [remove t k] drops [k]'s entry, returning it. Removal is not an
    eviction (the entry was invalidated, not displaced), so no counter
    moves — callers account invalidations themselves. *)
let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some (v, _) ->
    Hashtbl.remove t.tbl k;
    Some v

(** [remove_if t pred] drops every entry whose key satisfies [pred];
    returns how many were dropped. *)
let remove_if t pred =
  let victims =
    Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) victims;
  List.length victims

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
