(* Synthetic serving traffic.

   Real serving load is skewed: a few hot kernel configurations take
   most of the traffic while a long tail of cold ones churns the cache.
   [hot_cold] models that with a Zipf distribution over a profile list —
   profile [i] drawn with weight 1/(i+1)^alpha — and exponential
   inter-arrival gaps, all from an explicit {!Asap_workloads.Rng} seed
   so a (seed, n, profiles) triple always yields the same request list. *)

module Exec = Asap_sim.Exec
module Rng = Asap_workloads.Rng
module Generate = Asap_workloads.Generate
module Coo = Asap_tensor.Coo
module Tuning = Asap_core.Tuning

type profile = {
  p_kernel : Request.kernel;
  p_format : string;
  p_matrix : string;
  p_variant : Request.variant;
  p_engine : Exec.engine;
  p_machine : string;
  p_tune_mode : Tuning.mode;
  p_specialize : bool;
}

let profile ?(kernel = `Spmv) ?(format = "csr") ?(variant = `Asap)
    ?(engine = Exec.default_engine) ?(machine = "optimized")
    ?(tune_mode = Tuning.default_mode) ?(specialize = false) matrix =
  { p_kernel = kernel; p_format = format; p_matrix = matrix;
    p_variant = variant; p_engine = engine; p_machine = machine;
    p_tune_mode = tune_mode; p_specialize = specialize }

(* A small spread over the workload suite: hot head on the irregular
   matrices prefetching helps most, cold tail over formats, variants and
   kernels. Order matters — Zipf weight falls with position. *)
let default_profiles () : profile list =
  [ profile "powerlaw:3000,6";
    profile ~variant:`Tuned "powerlaw:3000,6";
    profile ~format:"dcsr" "heavytail:2500,10000,10";
    profile "uniform:2500,12000";
    profile ~variant:`Baseline "powerlaw:3000,6";
    profile ~kernel:`Spmm "road:2000,3";
    profile ~format:"csc" "uniform:2500,12000";
    profile "banded:2500,8";
    profile ~kernel:`Ttv ~format:"csf" "tensor3:40,40,40,8000";
    profile ~variant:`Aj "stencil2d:50";
    (* Scenario-diversity tail: the sampled dense-dense product and a
       blocked format, cold enough not to displace the classic head. *)
    profile ~kernel:`Sddmm "powerlaw:3000,6";
    profile ~format:"bsr4x4" "fem:180,4,3";
  ]

(* Cumulative Zipf weights over profile positions: [cum.(i)] is the sum
   of [1/(j+1)^alpha] for [j <= i]. Computed once per request list. *)
let zipf_cumulative ~alpha (nprof : int) : float array =
  let acc = ref 0. in
  Array.init nprof (fun i ->
      acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) alpha);
      !acc)

(* Inverse-CDF pick from precomputed cumulative weights. *)
let zipf_pick rng (cum : float array) : int =
  let nprof = Array.length cum in
  let u = Rng.float rng *. cum.(nprof - 1) in
  let pick = ref (nprof - 1) in
  (try
     Array.iteri
       (fun i ci ->
         if u < ci then begin
           pick := i;
           raise Exit
         end)
       cum
   with Exit -> ());
  !pick

let hot_cold ?(alpha = 1.2) ?(mean_gap_ms = 0.05) ?deadline_ms
    ?(tenants = []) ~seed ~n (profiles : profile list) : Request.t list =
  if n < 0 then invalid_arg "Mix.hot_cold: n < 0";
  let profs = Array.of_list profiles in
  let nprof = Array.length profs in
  if nprof = 0 then invalid_arg "Mix.hot_cold: no profiles";
  List.iter
    (fun (name, w) ->
      if w <= 0. then
        invalid_arg
          (Printf.sprintf "Mix.hot_cold: non-positive weight for tenant %S"
             name))
    tenants;
  let rng = Rng.create seed in
  let cum = zipf_cumulative ~alpha nprof in
  (* Tenant draws happen only with >= 2 tenants, and strictly after the
     profile and gap draws, so single-tenant (and legacy no-tenant)
     traces consume the exact same RNG stream as before tenants
     existed — byte-identical request lists for old (seed, n) pairs. *)
  let tenant_cum =
    if List.length tenants < 2 then [||]
    else begin
      let acc = ref 0. in
      Array.of_list
        (List.map
           (fun (name, w) ->
             acc := !acc +. w;
             (name, !acc))
           tenants)
    end
  in
  let pick_tenant () =
    match tenants with
    | [] -> Request.default_tenant
    | [ (name, _) ] -> name
    | _ ->
      let total = snd tenant_cum.(Array.length tenant_cum - 1) in
      let u = Rng.float rng *. total in
      let pick = ref (fst tenant_cum.(Array.length tenant_cum - 1)) in
      (try
         Array.iter
           (fun (name, ci) ->
             if u < ci then begin
               pick := name;
               raise Exit
             end)
           tenant_cum
       with Exit -> ());
      !pick
  in
  let t = ref 0. in
  List.init n (fun i ->
      let p = profs.(zipf_pick rng cum) in
      let gap = -.mean_gap_ms *. log (1. -. Rng.float rng) in
      t := !t +. gap;
      let tenant = pick_tenant () in
      { Request.id = Printf.sprintf "r%05d" i;
        kernel = p.p_kernel; format = p.p_format; matrix = p.p_matrix;
        variant = p.p_variant; engine = p.p_engine; machine = p.p_machine;
        tune_mode = p.p_tune_mode; pipeline = None; tenant; arrival_ms = !t;
        deadline = Option.map (fun ms -> Request.Ms ms) deadline_ms;
        specialize = p.p_specialize })

(* Streaming deltas against the rank-2 matrices of a profile list. The
   generator resolves each distinct spec once (deterministically) just
   to learn its shape, then draws uniform in-bounds coordinates — so an
   (seed, n, profiles) triple always yields the same update stream, on
   a separate RNG stream from {!hot_cold} (seeds are xored with a tag)
   so adding updates never perturbs the request draw. *)
let update_stream ?(mean_gap_ms = 1.0) ?(deltas_per_update = 4) ~seed ~n
    (profiles : profile list) : Request.Update.t list =
  if n < 0 then invalid_arg "Mix.update_stream: n < 0";
  if deltas_per_update < 1 then
    invalid_arg "Mix.update_stream: deltas_per_update < 1";
  let specs =
    List.filter_map
      (fun p -> if p.p_kernel = `Ttv then None else Some p.p_matrix)
      profiles
    |> List.fold_left (fun acc s -> if List.mem s acc then acc else s :: acc) []
    |> List.rev
  in
  if specs = [] then invalid_arg "Mix.update_stream: no rank-2 profiles";
  let shapes =
    List.map
      (fun spec ->
        match Generate.of_spec spec with
        | Ok coo -> (spec, coo.Coo.dims.(0), coo.Coo.dims.(1))
        | Error e -> invalid_arg ("Mix.update_stream: " ^ e))
      specs
    |> Array.of_list
  in
  let rng = Rng.create (seed lxor 0x5eed_a11d) in
  let t = ref 0. in
  List.init n (fun k ->
      let spec, rows, cols = shapes.(Rng.int rng (Array.length shapes)) in
      let gap = -.mean_gap_ms *. log (1. -. Rng.float rng) in
      t := !t +. gap;
      let deltas =
        Array.init deltas_per_update (fun _ ->
            let i = Rng.int rng rows in
            let j = Rng.int rng cols in
            ((i, j, (2. *. Rng.float rng) -. 1.)))
      in
      { Request.Update.u_id = Printf.sprintf "u%05d" k; u_matrix = spec;
        u_at_ms = !t; u_deltas = deltas })
