(** Latency/SLO summaries over a replay — fleet-wide and per shard.
    Latencies are virtual (simulated) milliseconds, so percentiles are
    deterministic replay properties; host wall time lives only in the
    bench layer. Exports as [serve.*] counters (times as integer
    microseconds); per-shard counters as [serve.shard.<i>.<leaf>] so
    fleet aggregates can be derived with
    {!Asap_obs.Registry.sum_prefix}.

    Percentiles use the nearest-rank estimator: the smallest observed
    sample x with at least p% of samples <= x. With fewer than
    [min_samples ~p] samples it degenerates to the maximum, so
    {!percentile_opt} returns [None] below that threshold and the tail
    fields of summaries are options. *)

module Registry = Asap_obs.Registry
module Jsonu = Asap_obs.Jsonu

type summary = {
  s_total : int;
  s_ok : int;
  s_degraded : int;
  s_shed : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_batches : int;           (** dispatches serving more than one request *)
  s_batch_max : int;
  s_queue_peak : int;        (** peak total queued across the fleet *)
  s_inflight_peak : int;
  s_builds : int;            (** host-side entry builds performed *)
  s_steals : int;            (** cross-shard batches stolen *)
  s_invalidated : int;       (** LRU entries dropped by streaming updates *)
  s_stale_hits : int;
      (** cache hits serving a wrong-version entry — 0 is the
          versioned-fingerprint invariant *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float option;   (** [None] below 100 samples *)
  s_p999_ms : float option;  (** [None] below 1000 samples *)
  s_makespan_ms : float;     (** virtual time of the last finish *)
  s_throughput_rps : float;  (** served / virtual makespan *)
}

(** [percentile xs ~p] is the nearest-rank percentile ([p] in [0,100]);
    0 on empty input. Degenerates to the sample maximum once [p]
    exceeds the sample's rank resolution — see {!percentile_opt}. *)
val percentile : float array -> p:float -> float

(** [min_samples ~p] is the smallest sample count whose nearest-rank
    p-th percentile is not simply the maximum: ceil (100 / (100 - p)) —
    100 for p99, 1000 for p99.9. @raise Invalid_argument outside
    (0, 100). *)
val min_samples : p:float -> int

(** [percentile_opt xs ~p] is {!percentile} when
    [Array.length xs >= min_samples ~p], [None] otherwise. *)
val percentile_opt : float array -> p:float -> float option

val make :
  ?invalidated:int -> ?stale_hits:int -> latencies_ms:float array ->
  ok:int -> degraded:int -> shed:int -> hits:int -> misses:int ->
  evictions:int -> batches:int -> batch_max:int -> queue_peak:int ->
  inflight_peak:int -> builds:int -> steals:int -> makespan_ms:float ->
  unit -> summary

(** [hit_rate s] is hits / (hits + misses); 0 without lookups. *)
val hit_rate : summary -> float

(** [register reg s] exports the summary as [serve.*] counters into an
    existing registry; unresolvable tail percentiles are omitted. *)
val register : Registry.t -> summary -> unit

(** [registry s] is {!register} into a fresh registry. *)
val registry : summary -> Registry.t

val to_json : summary -> Jsonu.t
val pp : Format.formatter -> summary -> unit

(** One shard's slice of the fleet summary. Admission sheds are
    attributed to the request's home shard; service counters (batches,
    cache traffic, steals) to the shard whose server dispatched. *)
type shard_summary = {
  sh_index : int;
  sh_ok : int;
  sh_degraded : int;
  sh_shed : int;
  sh_hits : int;
  sh_misses : int;
  sh_evictions : int;
  sh_batches : int;
  sh_batch_max : int;
  sh_queue_peak : int;
  sh_steals_in : int;        (** batches this shard's servers stole *)
  sh_steals_out : int;       (** batches stolen from this shard's queue *)
  sh_invalidated : int;      (** LRU entries dropped by streaming updates *)
  sh_stale_hits : int;       (** wrong-version cache hits (invariant: 0) *)
  sh_p50_ms : float option;  (** [None] below the rank resolution *)
  sh_p95_ms : float option;
  sh_p99_ms : float option;
  sh_p999_ms : float option;
}

val shard_make :
  ?invalidated:int -> ?stale_hits:int -> index:int ->
  latencies_ms:float array -> ok:int -> degraded:int -> shed:int ->
  hits:int -> misses:int -> evictions:int -> batches:int -> batch_max:int ->
  queue_peak:int -> steals_in:int -> steals_out:int -> unit -> shard_summary

(** [shard_register reg sh] exports [serve.shard.<i>.<leaf>] counters
    (ok / degraded / shed / cache.* / batch.* / queue.peak / steal.* /
    resolvable [lat.*_us]). *)
val shard_register : Registry.t -> shard_summary -> unit

val shard_to_json : shard_summary -> Jsonu.t
val pp_shard : Format.formatter -> shard_summary -> unit
