(** Latency/SLO summaries over a replay. Latencies are virtual
    (simulated) milliseconds, so percentiles are deterministic replay
    properties; host wall time lives only in the bench layer. Exports as
    [serve.*] counters (times as integer microseconds). *)

module Registry = Asap_obs.Registry
module Jsonu = Asap_obs.Jsonu

type summary = {
  s_total : int;
  s_ok : int;
  s_degraded : int;
  s_shed : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_batches : int;           (** dispatches serving more than one request *)
  s_batch_max : int;
  s_queue_peak : int;
  s_inflight_peak : int;
  s_builds : int;            (** host-side entry builds performed *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float;
  s_makespan_ms : float;     (** virtual time of the last finish *)
  s_throughput_rps : float;  (** served / virtual makespan *)
}

(** [percentile xs ~p] is the nearest-rank percentile ([p] in [0,100]);
    0 on empty input. *)
val percentile : float array -> p:float -> float

val make :
  latencies_ms:float array -> ok:int -> degraded:int -> shed:int ->
  hits:int -> misses:int -> evictions:int -> batches:int -> batch_max:int ->
  queue_peak:int -> inflight_peak:int -> builds:int -> makespan_ms:float ->
  summary

(** [hit_rate s] is hits / (hits + misses); 0 without lookups. *)
val hit_rate : summary -> float

(** [registry s] exports the summary as [serve.*] counters. *)
val registry : summary -> Registry.t

val to_json : summary -> Jsonu.t
val pp : Format.formatter -> summary -> unit
