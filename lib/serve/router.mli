(** Consistent-hash request routing: fingerprints map to home shards
    through a ring of virtual nodes. Routing is a pure function of
    (shards, vnodes) over an in-repo FNV-1a hash — deterministic across
    hosts and runs — and growing the fleet moves only the keys claimed
    by the new shard's points (about 1/(N+1) of the keyspace), so warm
    per-shard caches survive resizes. *)

type t

(** Ring points per shard; more points → better balance, larger ring. *)
val default_vnodes : int

(** [create ~shards ()] builds the ring. @raise Invalid_argument if
    [shards < 1] or [vnodes < 1]. *)
val create : ?vnodes:int -> shards:int -> unit -> t

val shards : t -> int

(** [shard_of t key] is [key]'s home shard in [0, shards t). *)
val shard_of : t -> string -> int

(** [hash s] is the stable 64-bit FNV-1a hash folded to a non-negative
    int (exposed for tests and tooling). *)
val hash : string -> int
