(* The serving request model.

   A request names everything needed to reproduce one kernel execution:
   the kernel family, the sparse format, the matrix (by deterministic
   generator spec, so requests are self-contained values rather than
   paths), the code variant, the engine and the machine preset — plus
   scheduling metadata: a stable id, a virtual arrival time and an
   optional latency budget. Requests travel as JSONL (one object per
   line), parsed with the in-repo {!Asap_obs.Jsonu} parser. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Driver = Asap_core.Driver
module Pipeline = Asap_core.Pipeline
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Jsonu = Asap_obs.Jsonu
module Tuning = Asap_core.Tuning

type kernel = [ `Spmv | `Spmm | `Sddmm | `Ttv ]

(** [`Tuned] defers the variant choice to profile-guided {!Tuning.tune}
    at build time; the others name a fixed variant with its default
    configuration. *)
type variant = [ `Baseline | `Asap | `Aj | `Tuned ]

(** A latency budget relative to the request's arrival, in virtual
    (simulated) time: milliseconds directly, or simulated cycles of the
    request's machine. *)
type deadline = Ms of float | Cycles of int

type t = {
  id : string;
  kernel : kernel;
  format : string;          (* coo/csr/csc/dcsr; csf for ttv *)
  matrix : string;          (* Generate.of_spec string *)
  variant : variant;
  engine : Exec.engine;
  machine : string;         (* preset name, see machine_of *)
  tune_mode : Tuning.mode;  (* how a `Tuned variant is decided *)
  pipeline : string option; (* explicit pass-pipeline spec override *)
  tenant : string;          (* admission-quota accounting key *)
  arrival_ms : float;       (* virtual arrival time *)
  deadline : deadline option;
  specialize : bool;        (* serve the AoT-specialized artefact *)
}

let default_tenant = "default"

let kernel_to_string = function
  | `Spmv -> "spmv"
  | `Spmm -> "spmm"
  | `Sddmm -> "sddmm"
  | `Ttv -> "ttv"

let kernel_of_string = function
  | "spmv" -> Some `Spmv
  | "spmm" -> Some `Spmm
  | "sddmm" -> Some `Sddmm
  | "ttv" -> Some `Ttv
  | _ -> None

let variant_to_string = function
  | `Baseline -> "baseline"
  | `Asap -> "asap"
  | `Aj -> "aj"
  | `Tuned -> "tuned"

let variant_of_string = function
  | "baseline" -> Some `Baseline
  | "asap" -> Some `Asap
  | "aj" -> Some `Aj
  | "tuned" -> Some `Tuned
  | _ -> None

(* "bsr" is the 4x4 default; "bsr<bh>x<bw>" names the block shape
   explicitly (e.g. "bsr2x8"). *)
let bsr_of_format (format : string) : Encoding.t option =
  if String.equal format "bsr" then Some (Encoding.bsr ~bh:4 ~bw:4 ())
  else
    match Scanf.sscanf_opt format "bsr%dx%d%!" (fun bh bw -> (bh, bw)) with
    | Some (bh, bw) when bh >= 1 && bw >= 1 -> Some (Encoding.bsr ~bh ~bw ())
    | _ -> None

let encoding_of_format (k : kernel) (format : string) : Encoding.t option =
  match (k, format) with
  | (`Spmv | `Spmm | `Sddmm), "coo" -> Some (Encoding.coo ())
  | (`Spmv | `Spmm | `Sddmm), "csr" -> Some (Encoding.csr ())
  | (`Spmv | `Spmm | `Sddmm), "csc" -> Some (Encoding.csc ())
  | (`Spmv | `Spmm | `Sddmm), "dcsr" -> Some (Encoding.dcsr ())
  | (`Spmv | `Spmm | `Sddmm), f when String.length f >= 3 -> bsr_of_format f
  | `Ttv, "csf" -> Some (Encoding.csf 3)
  | _ -> None

(** [spec r] is the {!Driver.kernel_spec} the request names.
    @raise Invalid_argument on a kernel/format mismatch. *)
let spec (r : t) : Driver.kernel_spec =
  match (r.kernel, encoding_of_format r.kernel r.format) with
  | _, None ->
    invalid_arg
      (Printf.sprintf "Request %s: format %S does not fit kernel %s" r.id
         r.format (kernel_to_string r.kernel))
  | `Spmv, Some enc -> Driver.Spmv enc
  | `Spmm, Some enc -> Driver.Spmm enc
  | `Sddmm, Some enc -> Driver.Sddmm enc
  | `Ttv, Some enc -> Driver.Ttv (Some enc)

(** [fixed_variant v] is the pipeline variant for the non-[`Tuned]
    cases (default configurations). *)
let fixed_variant : variant -> Pipeline.variant option = function
  | `Baseline -> Some Pipeline.Baseline
  | `Asap -> Some (Pipeline.Asap Asap.default)
  | `Aj -> Some (Pipeline.Ainsworth_jones Aj.default)
  | `Tuned -> None

let machine_presets = [ "default"; "optimized"; "optimized-spmm" ]

(** [machine_of r] resolves the request's machine preset. The presets
    mirror the CLI's [--hw] choices over the scaled evaluation machine.
    @raise Invalid_argument on an unknown preset. *)
let machine_of (r : t) : Machine.t =
  match r.machine with
  | "default" -> Machine.gracemont_scaled ~hw:Machine.hw_default ()
  | "optimized" -> Machine.gracemont_scaled ~hw:Machine.hw_optimized ()
  | "optimized-spmm" ->
    Machine.gracemont_scaled ~hw:Machine.hw_optimized_spmm ()
  | m ->
    invalid_arg
      (Printf.sprintf "Request %s: unknown machine preset %S (expected %s)"
         r.id m (String.concat "/" machine_presets))

(** [deadline_ms r machine] is the absolute virtual-time deadline, if
    any: arrival plus the budget (cycle budgets convert at the machine's
    frequency). *)
let deadline_ms (r : t) (machine : Machine.t) : float option =
  match r.deadline with
  | None -> None
  | Some (Ms b) -> Some (r.arrival_ms +. b)
  | Some (Cycles c) -> Some (r.arrival_ms +. Machine.cycles_to_ms machine c)

(** [fingerprint r] is the canonical cache key: every field that affects
    the built artefact (sparsified IR, compiled closure, tuning
    decision) and nothing that doesn't (id, arrival, deadline). Equal
    fingerprints are servable by one cache entry — the tenant is
    scheduling metadata like id and arrival, so tenants share entries. *)
let fingerprint (r : t) : string =
  let base =
    [ kernel_to_string r.kernel; r.format; r.matrix; r.machine;
      variant_to_string r.variant; Exec.engine_to_string r.engine ]
  in
  (* The tuning mode only shapes the artefact when there is a tuning
     decision to make; fixed-variant requests share cache entries across
     modes.  An explicit pipeline fixes the artefact outright, so it
     supersedes the mode either way. *)
  let base =
    match (r.pipeline, r.variant) with
    | Some _, _ | None, (`Baseline | `Asap | `Aj) -> base
    | None, `Tuned -> base @ [ Tuning.mode_to_string r.tune_mode ]
  in
  (* Canonical form, not the spelling: "asap" and "asap{d=32,...}" with
     default parameters are the same artefact and must share an entry. *)
  let base =
    match r.pipeline with
    | None -> base
    | Some p -> base @ [ "pipeline=" ^ Asap_pass.Runner.canonical_of_string p ]
  in
  (* A specialized artefact bakes the request's resolved facts into its
     bytecode, so it can never serve (or be served by) the generic
     entry of the same build inputs. *)
  let base = if r.specialize then base @ [ "spec" ] else base in
  String.concat "|" base

(** [fallback r] is the degraded form a timed-out request is served as:
    the untuned, prefetch-free baseline of the same kernel on the same
    matrix and machine. *)
let fallback (r : t) : t = { r with variant = `Baseline; pipeline = None }

(* --- JSONL ----------------------------------------------------------- *)

let to_json (r : t) : Jsonu.t =
  let base =
    [ ("id", Jsonu.Str r.id);
      ("kernel", Jsonu.Str (kernel_to_string r.kernel));
      ("format", Jsonu.Str r.format);
      ("matrix", Jsonu.Str r.matrix);
      ("variant", Jsonu.Str (variant_to_string r.variant));
      ("engine", Jsonu.Str (Exec.engine_to_string r.engine));
      ("machine", Jsonu.Str r.machine);
      ("tune_mode", Jsonu.Str (Tuning.mode_to_string r.tune_mode));
      ("tenant", Jsonu.Str r.tenant);
      ("arrival_ms", Jsonu.Float r.arrival_ms) ]
  in
  let base =
    match r.pipeline with
    | None -> base
    | Some p -> base @ [ ("pipeline", Jsonu.Str p) ]
  in
  (* Emitted only when set, so pre-specialization streams round-trip
     byte-identically. *)
  let base =
    if r.specialize then base @ [ ("specialize", Jsonu.Bool true) ] else base
  in
  let deadline =
    match r.deadline with
    | None -> []
    | Some (Ms b) -> [ ("deadline_ms", Jsonu.Float b) ]
    | Some (Cycles c) -> [ ("deadline_cycles", Jsonu.Int c) ]
  in
  Jsonu.Obj (base @ deadline)

let to_line r = Jsonu.to_string (to_json r)

(** [of_json j] parses one request object. Required fields: [id],
    [kernel], [matrix]. Defaults: format [csr] ([csf] for ttv), variant
    [asap], the default engine, machine [optimized], tune_mode [sweep],
    tenant [default], arrival 0, no deadline, no pipeline override
    (an explicit ["pipeline"] spec is validated against the pass
    registry at ingest). *)
let of_json (j : Jsonu.t) : (t, string) result =
  let str k = Option.bind (Jsonu.member k j) Jsonu.to_str_opt in
  let num k = Option.bind (Jsonu.member k j) Jsonu.to_float_opt in
  let intf k = Option.bind (Jsonu.member k j) Jsonu.to_int_opt in
  match Jsonu.member "kind" j with
  | Some (Jsonu.Str kind) when not (String.equal kind "request") ->
    Error
      (Printf.sprintf
         "item of kind %S in a request-only stream (updates need \
          Request.load_items)"
         kind)
  | _ ->
  match (str "id", str "kernel", str "matrix") with
  | None, _, _ -> Error "request missing \"id\""
  | _, None, _ -> Error "request missing \"kernel\""
  | _, _, None -> Error "request missing \"matrix\""
  | Some id, Some kernel, Some matrix ->
    (match kernel_of_string kernel with
     | None -> Error (Printf.sprintf "request %s: unknown kernel %S" id kernel)
     | Some kernel ->
       let format =
         match str "format" with
         | Some f -> f
         | None -> (match kernel with `Ttv -> "csf" | _ -> "csr")
       in
       let format_r =
         if encoding_of_format kernel format = None then
           Error
             (Printf.sprintf "request %s: format %S does not fit kernel %s" id
                format (kernel_to_string kernel))
         else Ok format
       in
       let variant_r =
         match str "variant" with
         | None -> Ok `Asap
         | Some v ->
           (match variant_of_string v with
            | Some v -> Ok v
            | None ->
              Error (Printf.sprintf "request %s: unknown variant %S" id v))
       in
       let engine_r =
         match str "engine" with
         | None -> Ok Exec.default_engine
         | Some e ->
           (match Exec.engine_of_string e with
            | Some e -> Ok e
            | None ->
              Error
                (Printf.sprintf "request %s: unknown engine %S (expected %s)"
                   id e Exec.valid_engines))
       in
       let tune_mode_r =
         match str "tune_mode" with
         | None -> Ok Tuning.default_mode
         | Some m ->
           (match Tuning.mode_of_string m with
            | Some m -> Ok m
            | None ->
              Error
                (Printf.sprintf
                   "request %s: unknown tune_mode %S (expected %s)" id m
                   Tuning.valid_modes))
       in
       let pipeline_r =
         match str "pipeline" with
         | None -> Ok None
         | Some p ->
           (* Validate against the pass registry up front: a request
              carrying a bad spec must fail at ingest with a line
              number, not deep inside a build worker. *)
           (match Asap_pass.Runner.resolve p with
            | (_ : Asap_pass.Runner.resolved) -> Ok (Some p)
            | exception Invalid_argument m ->
              Error (Printf.sprintf "request %s: bad pipeline: %s" id m))
       in
       let machine_r =
         (* Validate the preset at ingest: an unknown machine must fail
            with this line's number, not as an Invalid_argument from
            machine_of deep inside a build worker. *)
         let m = Option.value (str "machine") ~default:"optimized" in
         if List.mem m machine_presets then Ok m
         else
           Error
             (Printf.sprintf
                "request %s: unknown machine preset %S (expected %s)" id m
                (String.concat "/" machine_presets))
       in
       let deadline =
         match (num "deadline_ms", intf "deadline_cycles") with
         | Some b, _ -> Some (Ms b)
         | None, Some c -> Some (Cycles c)
         | None, None -> None
       in
       (match (format_r, variant_r, engine_r, tune_mode_r, pipeline_r,
               machine_r)
        with
        | Error e, _, _, _, _, _ | _, Error e, _, _, _, _
        | _, _, Error e, _, _, _ | _, _, _, Error e, _, _
        | _, _, _, _, Error e, _ | _, _, _, _, _, Error e -> Error e
        | Ok format, Ok variant, Ok engine, Ok tune_mode, Ok pipeline,
          Ok machine ->
          let specialize =
            match Jsonu.member "specialize" j with
            | Some b -> Option.value (Jsonu.to_bool_opt b) ~default:false
            | None -> false
          in
          Ok
            { id; kernel; format; matrix; variant; engine; tune_mode;
              pipeline; machine;
              tenant = Option.value (str "tenant") ~default:default_tenant;
              arrival_ms = Option.value (num "arrival_ms") ~default:0.;
              deadline; specialize }))

let of_line (line : string) : (t, string) result =
  match Jsonu.of_string line with
  | Error e -> Error ("bad request JSON: " ^ e)
  | Ok j -> of_json j

(** [load path] reads a JSONL request file; blank lines and [#]-comment
    lines are skipped. Errors carry the 1-based line number. *)
let load (path : string) : (t list, string) result =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = In_channel.input_lines ic in
      let rec go n acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then go (n + 1) acc rest
          else
            (match of_line line with
             | Ok r -> go (n + 1) (r :: acc) rest
             | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
      in
      go 1 [] lines)

(* --- Streaming updates ------------------------------------------------ *)

module Update = struct
  (* A batched delta message against a matrix artefact: at virtual time
     [u_at_ms] the matrix named by spec [u_matrix] changes — every
     (i, j, v) delta sets entry (i, j) to v. Requests arriving at or
     after an update see the updated matrix; requests that arrived
     before it keep the version their arrival saw (arrival-time
     consistency), which is what makes the replay a pure function of
     the item list. *)
  type t = {
    u_id : string;
    u_matrix : string;                 (* Generate.of_spec string *)
    u_at_ms : float;                   (* virtual fire time *)
    u_deltas : (int * int * float) array;
  }

  let to_json (u : t) : Jsonu.t =
    Jsonu.Obj
      [ ("kind", Jsonu.Str "update");
        ("id", Jsonu.Str u.u_id);
        ("matrix", Jsonu.Str u.u_matrix);
        ("at_ms", Jsonu.Float u.u_at_ms);
        ("deltas",
         Jsonu.List
           (Array.to_list
              (Array.map
                 (fun (i, j, v) ->
                   Jsonu.List [ Jsonu.Int i; Jsonu.Int j; Jsonu.Float v ])
                 u.u_deltas))) ]

  let to_line u = Jsonu.to_string (to_json u)

  let of_json (j : Jsonu.t) : (t, string) result =
    let str k = Option.bind (Jsonu.member k j) Jsonu.to_str_opt in
    let num k = Option.bind (Jsonu.member k j) Jsonu.to_float_opt in
    match (str "id", str "matrix") with
    | None, _ -> Error "update missing \"id\""
    | _, None -> Error "update missing \"matrix\""
    | Some u_id, Some u_matrix ->
      let delta_of = function
        | Jsonu.List [ i; jj; v ] ->
          (match (Jsonu.to_int_opt i, Jsonu.to_int_opt jj,
                  Jsonu.to_float_opt v)
           with
           | Some i, Some jj, Some v when i >= 0 && jj >= 0 ->
             Ok (i, jj, v)
           | _ -> Error ())
        | _ -> Error ()
      in
      let deltas_r =
        match Jsonu.member "deltas" j with
        | None -> Error (Printf.sprintf "update %s: missing \"deltas\"" u_id)
        | Some d ->
          (match Jsonu.to_list_opt d with
           | None ->
             Error (Printf.sprintf "update %s: \"deltas\" not a list" u_id)
           | Some ds ->
             let rec go k acc = function
               | [] -> Ok (Array.of_list (List.rev acc))
               | d :: rest ->
                 (match delta_of d with
                  | Ok t -> go (k + 1) (t :: acc) rest
                  | Error () ->
                    Error
                      (Printf.sprintf
                         "update %s: delta %d is not [i, j, v] with \
                          non-negative coordinates"
                         u_id (k + 1)))
             in
             go 0 [] ds)
      in
      (match deltas_r with
       | Error e -> Error e
       | Ok u_deltas ->
         Ok
           { u_id; u_matrix;
             u_at_ms = Option.value (num "at_ms") ~default:0.; u_deltas })

  (** [apply u coo] is [coo] with every delta applied (set semantics:
      existing entries at (i, j) are replaced — duplicates collapse to
      the new value — and fresh coordinates append in delta order).
      @raise Invalid_argument on rank <> 2 or out-of-bounds deltas. *)
  let apply (u : t) (coo : Coo.t) : Coo.t =
    if Coo.rank coo <> 2 then
      invalid_arg
        (Printf.sprintf "Update %s: matrix %s is not rank-2" u.u_id
           u.u_matrix);
    let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
    let value : (int * int, float) Hashtbl.t =
      Hashtbl.create (max 16 (Array.length u.u_deltas))
    in
    Array.iter
      (fun (i, j, v) ->
        if i >= rows || j >= cols then
          invalid_arg
            (Printf.sprintf "Update %s: delta (%d, %d) outside %dx%d" u.u_id
               i j rows cols);
        Hashtbl.replace value (i, j) v)
      u.u_deltas;
    let n = Coo.nnz coo in
    let vals = Array.copy coo.Coo.vals in
    (* Set an existing coordinate's first occurrence to the new value and
       zero the rest: duplicate base entries sum under sorted_dedup, so
       the stored total is exactly the delta's value. *)
    let hit : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
    for k = 0 to n - 1 do
      let key = (coo.Coo.coords.(k).(0), coo.Coo.coords.(k).(1)) in
      match Hashtbl.find_opt value key with
      | None -> ()
      | Some v ->
        vals.(k) <- (if Hashtbl.mem hit key then 0. else v);
        Hashtbl.replace hit key ()
    done;
    (* Fresh coordinates append in first-occurrence delta order. *)
    let fresh = ref [] in
    let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
    Array.iter
      (fun (i, j, _) ->
        let key = (i, j) in
        if not (Hashtbl.mem hit key || Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          fresh := key :: !fresh
        end)
      u.u_deltas;
    let fresh = List.rev !fresh in
    let coords =
      Array.append
        (Array.map Array.copy coo.Coo.coords)
        (Array.of_list (List.map (fun (i, j) -> [| i; j |]) fresh))
    in
    let vals =
      Array.append vals
        (Array.of_list
           (List.map (fun key -> Hashtbl.find value key) fresh))
    in
    Coo.create ~dims:(Array.copy coo.Coo.dims) ~coords ~vals
end

(** A line of a mixed request/update stream. *)
type item = Req of t | Up of Update.t

let item_of_line (line : string) : (item, string) result =
  match Jsonu.of_string line with
  | Error e -> Error ("bad item JSON: " ^ e)
  | Ok j ->
    (match Jsonu.member "kind" j with
     | Some (Jsonu.Str "update") -> Result.map (fun u -> Up u) (Update.of_json j)
     | _ -> Result.map (fun r -> Req r) (of_json j))

(** [load_items path] reads a mixed JSONL stream: request lines plus
    [{"kind": "update", ...}] lines; blank and [#] lines are skipped;
    errors carry the 1-based line number. Items keep file order. *)
let load_items (path : string) : (item list, string) result =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = In_channel.input_lines ic in
      let rec go n acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then go (n + 1) acc rest
          else
            (match item_of_line line with
             | Ok it -> go (n + 1) (it :: acc) rest
             | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
      in
      go 1 [] lines)

(** [split_items items] separates a mixed stream into its requests and
    updates, each in stream order. *)
let split_items (items : item list) : t list * Update.t list =
  let reqs, ups =
    List.fold_left
      (fun (rs, us) -> function
        | Req r -> (r :: rs, us)
        | Up u -> (rs, u :: us))
      ([], []) items
  in
  (List.rev reqs, List.rev ups)
