(* The serving request model.

   A request names everything needed to reproduce one kernel execution:
   the kernel family, the sparse format, the matrix (by deterministic
   generator spec, so requests are self-contained values rather than
   paths), the code variant, the engine and the machine preset — plus
   scheduling metadata: a stable id, a virtual arrival time and an
   optional latency budget. Requests travel as JSONL (one object per
   line), parsed with the in-repo {!Asap_obs.Jsonu} parser. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Driver = Asap_core.Driver
module Pipeline = Asap_core.Pipeline
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Jsonu = Asap_obs.Jsonu
module Tuning = Asap_core.Tuning

type kernel = [ `Spmv | `Spmm | `Ttv ]

(** [`Tuned] defers the variant choice to profile-guided {!Tuning.tune}
    at build time; the others name a fixed variant with its default
    configuration. *)
type variant = [ `Baseline | `Asap | `Aj | `Tuned ]

(** A latency budget relative to the request's arrival, in virtual
    (simulated) time: milliseconds directly, or simulated cycles of the
    request's machine. *)
type deadline = Ms of float | Cycles of int

type t = {
  id : string;
  kernel : kernel;
  format : string;          (* coo/csr/csc/dcsr; csf for ttv *)
  matrix : string;          (* Generate.of_spec string *)
  variant : variant;
  engine : Exec.engine;
  machine : string;         (* preset name, see machine_of *)
  tune_mode : Tuning.mode;  (* how a `Tuned variant is decided *)
  pipeline : string option; (* explicit pass-pipeline spec override *)
  tenant : string;          (* admission-quota accounting key *)
  arrival_ms : float;       (* virtual arrival time *)
  deadline : deadline option;
}

let default_tenant = "default"

let kernel_to_string = function
  | `Spmv -> "spmv"
  | `Spmm -> "spmm"
  | `Ttv -> "ttv"

let kernel_of_string = function
  | "spmv" -> Some `Spmv
  | "spmm" -> Some `Spmm
  | "ttv" -> Some `Ttv
  | _ -> None

let variant_to_string = function
  | `Baseline -> "baseline"
  | `Asap -> "asap"
  | `Aj -> "aj"
  | `Tuned -> "tuned"

let variant_of_string = function
  | "baseline" -> Some `Baseline
  | "asap" -> Some `Asap
  | "aj" -> Some `Aj
  | "tuned" -> Some `Tuned
  | _ -> None

let encoding_of_format (k : kernel) (format : string) : Encoding.t option =
  match (k, format) with
  | (`Spmv | `Spmm), "coo" -> Some (Encoding.coo ())
  | (`Spmv | `Spmm), "csr" -> Some (Encoding.csr ())
  | (`Spmv | `Spmm), "csc" -> Some (Encoding.csc ())
  | (`Spmv | `Spmm), "dcsr" -> Some (Encoding.dcsr ())
  | `Ttv, "csf" -> Some (Encoding.csf 3)
  | _ -> None

(** [spec r] is the {!Driver.kernel_spec} the request names.
    @raise Invalid_argument on a kernel/format mismatch. *)
let spec (r : t) : Driver.kernel_spec =
  match (r.kernel, encoding_of_format r.kernel r.format) with
  | _, None ->
    invalid_arg
      (Printf.sprintf "Request %s: format %S does not fit kernel %s" r.id
         r.format (kernel_to_string r.kernel))
  | `Spmv, Some enc -> Driver.Spmv enc
  | `Spmm, Some enc -> Driver.Spmm enc
  | `Ttv, Some enc -> Driver.Ttv (Some enc)

(** [fixed_variant v] is the pipeline variant for the non-[`Tuned]
    cases (default configurations). *)
let fixed_variant : variant -> Pipeline.variant option = function
  | `Baseline -> Some Pipeline.Baseline
  | `Asap -> Some (Pipeline.Asap Asap.default)
  | `Aj -> Some (Pipeline.Ainsworth_jones Aj.default)
  | `Tuned -> None

let machine_presets = [ "default"; "optimized"; "optimized-spmm" ]

(** [machine_of r] resolves the request's machine preset. The presets
    mirror the CLI's [--hw] choices over the scaled evaluation machine.
    @raise Invalid_argument on an unknown preset. *)
let machine_of (r : t) : Machine.t =
  match r.machine with
  | "default" -> Machine.gracemont_scaled ~hw:Machine.hw_default ()
  | "optimized" -> Machine.gracemont_scaled ~hw:Machine.hw_optimized ()
  | "optimized-spmm" ->
    Machine.gracemont_scaled ~hw:Machine.hw_optimized_spmm ()
  | m ->
    invalid_arg
      (Printf.sprintf "Request %s: unknown machine preset %S (expected %s)"
         r.id m (String.concat "/" machine_presets))

(** [deadline_ms r machine] is the absolute virtual-time deadline, if
    any: arrival plus the budget (cycle budgets convert at the machine's
    frequency). *)
let deadline_ms (r : t) (machine : Machine.t) : float option =
  match r.deadline with
  | None -> None
  | Some (Ms b) -> Some (r.arrival_ms +. b)
  | Some (Cycles c) -> Some (r.arrival_ms +. Machine.cycles_to_ms machine c)

(** [fingerprint r] is the canonical cache key: every field that affects
    the built artefact (sparsified IR, compiled closure, tuning
    decision) and nothing that doesn't (id, arrival, deadline). Equal
    fingerprints are servable by one cache entry — the tenant is
    scheduling metadata like id and arrival, so tenants share entries. *)
let fingerprint (r : t) : string =
  let base =
    [ kernel_to_string r.kernel; r.format; r.matrix; r.machine;
      variant_to_string r.variant; Exec.engine_to_string r.engine ]
  in
  (* The tuning mode only shapes the artefact when there is a tuning
     decision to make; fixed-variant requests share cache entries across
     modes.  An explicit pipeline fixes the artefact outright, so it
     supersedes the mode either way. *)
  let base =
    match (r.pipeline, r.variant) with
    | Some _, _ | None, (`Baseline | `Asap | `Aj) -> base
    | None, `Tuned -> base @ [ Tuning.mode_to_string r.tune_mode ]
  in
  (* Canonical form, not the spelling: "asap" and "asap{d=32,...}" with
     default parameters are the same artefact and must share an entry. *)
  let base =
    match r.pipeline with
    | None -> base
    | Some p -> base @ [ "pipeline=" ^ Asap_pass.Runner.canonical_of_string p ]
  in
  String.concat "|" base

(** [fallback r] is the degraded form a timed-out request is served as:
    the untuned, prefetch-free baseline of the same kernel on the same
    matrix and machine. *)
let fallback (r : t) : t = { r with variant = `Baseline; pipeline = None }

(* --- JSONL ----------------------------------------------------------- *)

let to_json (r : t) : Jsonu.t =
  let base =
    [ ("id", Jsonu.Str r.id);
      ("kernel", Jsonu.Str (kernel_to_string r.kernel));
      ("format", Jsonu.Str r.format);
      ("matrix", Jsonu.Str r.matrix);
      ("variant", Jsonu.Str (variant_to_string r.variant));
      ("engine", Jsonu.Str (Exec.engine_to_string r.engine));
      ("machine", Jsonu.Str r.machine);
      ("tune_mode", Jsonu.Str (Tuning.mode_to_string r.tune_mode));
      ("tenant", Jsonu.Str r.tenant);
      ("arrival_ms", Jsonu.Float r.arrival_ms) ]
  in
  let base =
    match r.pipeline with
    | None -> base
    | Some p -> base @ [ ("pipeline", Jsonu.Str p) ]
  in
  let deadline =
    match r.deadline with
    | None -> []
    | Some (Ms b) -> [ ("deadline_ms", Jsonu.Float b) ]
    | Some (Cycles c) -> [ ("deadline_cycles", Jsonu.Int c) ]
  in
  Jsonu.Obj (base @ deadline)

let to_line r = Jsonu.to_string (to_json r)

(** [of_json j] parses one request object. Required fields: [id],
    [kernel], [matrix]. Defaults: format [csr] ([csf] for ttv), variant
    [asap], the default engine, machine [optimized], tune_mode [sweep],
    tenant [default], arrival 0, no deadline, no pipeline override
    (an explicit ["pipeline"] spec is validated against the pass
    registry at ingest). *)
let of_json (j : Jsonu.t) : (t, string) result =
  let str k = Option.bind (Jsonu.member k j) Jsonu.to_str_opt in
  let num k = Option.bind (Jsonu.member k j) Jsonu.to_float_opt in
  let intf k = Option.bind (Jsonu.member k j) Jsonu.to_int_opt in
  match (str "id", str "kernel", str "matrix") with
  | None, _, _ -> Error "request missing \"id\""
  | _, None, _ -> Error "request missing \"kernel\""
  | _, _, None -> Error "request missing \"matrix\""
  | Some id, Some kernel, Some matrix ->
    (match kernel_of_string kernel with
     | None -> Error (Printf.sprintf "request %s: unknown kernel %S" id kernel)
     | Some kernel ->
       let format =
         match str "format" with
         | Some f -> f
         | None -> (match kernel with `Ttv -> "csf" | _ -> "csr")
       in
       let format_r =
         if encoding_of_format kernel format = None then
           Error
             (Printf.sprintf "request %s: format %S does not fit kernel %s" id
                format (kernel_to_string kernel))
         else Ok format
       in
       let variant_r =
         match str "variant" with
         | None -> Ok `Asap
         | Some v ->
           (match variant_of_string v with
            | Some v -> Ok v
            | None ->
              Error (Printf.sprintf "request %s: unknown variant %S" id v))
       in
       let engine_r =
         match str "engine" with
         | None -> Ok Exec.default_engine
         | Some e ->
           (match Exec.engine_of_string e with
            | Some e -> Ok e
            | None ->
              Error
                (Printf.sprintf "request %s: unknown engine %S (expected %s)"
                   id e Exec.valid_engines))
       in
       let tune_mode_r =
         match str "tune_mode" with
         | None -> Ok Tuning.default_mode
         | Some m ->
           (match Tuning.mode_of_string m with
            | Some m -> Ok m
            | None ->
              Error
                (Printf.sprintf
                   "request %s: unknown tune_mode %S (expected %s)" id m
                   Tuning.valid_modes))
       in
       let pipeline_r =
         match str "pipeline" with
         | None -> Ok None
         | Some p ->
           (* Validate against the pass registry up front: a request
              carrying a bad spec must fail at ingest with a line
              number, not deep inside a build worker. *)
           (match Asap_pass.Runner.resolve p with
            | (_ : Asap_pass.Runner.resolved) -> Ok (Some p)
            | exception Invalid_argument m ->
              Error (Printf.sprintf "request %s: bad pipeline: %s" id m))
       in
       let deadline =
         match (num "deadline_ms", intf "deadline_cycles") with
         | Some b, _ -> Some (Ms b)
         | None, Some c -> Some (Cycles c)
         | None, None -> None
       in
       (match (format_r, variant_r, engine_r, tune_mode_r, pipeline_r) with
        | Error e, _, _, _, _ | _, Error e, _, _, _ | _, _, Error e, _, _
        | _, _, _, Error e, _ | _, _, _, _, Error e -> Error e
        | Ok format, Ok variant, Ok engine, Ok tune_mode, Ok pipeline ->
          Ok
            { id; kernel; format; matrix; variant; engine; tune_mode;
              pipeline;
              machine = Option.value (str "machine") ~default:"optimized";
              tenant = Option.value (str "tenant") ~default:default_tenant;
              arrival_ms = Option.value (num "arrival_ms") ~default:0.;
              deadline }))

let of_line (line : string) : (t, string) result =
  match Jsonu.of_string line with
  | Error e -> Error ("bad request JSON: " ^ e)
  | Ok j -> of_json j

(** [load path] reads a JSONL request file; blank lines and [#]-comment
    lines are skipped. Errors carry the 1-based line number. *)
let load (path : string) : (t list, string) result =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = In_channel.input_lines ic in
      let rec go n acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then go (n + 1) acc rest
          else
            (match of_line line with
             | Ok r -> go (n + 1) (r :: acc) rest
             | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
      in
      go 1 [] lines)
