(** Per-shard runtime state of the fleet replay: a bounded FIFO queue of
    request indices, a bank of virtual servers, and the shard's own
    compile/tune {!Lru} — driven by the fleet scheduler's sequential
    discrete-event loop, so no synchronisation is involved. *)

type t = {
  index : int;
  lru : (string, Build.entry) Lru.t;
  free : float array;        (** per-server next-free virtual ms *)
  mutable queue : int list;  (** admitted request indices, FIFO *)
  mutable qlen : int;
  mutable queue_peak : int;
  mutable shed : int;        (** admission sheds (queue full or quota) *)
  mutable batches : int;     (** dispatches serving more than one request *)
  mutable batch_max : int;
  mutable steals_in : int;   (** batches this shard's servers stole *)
  mutable steals_out : int;  (** batches stolen from this shard's queue *)
  mutable invalidated : int;
      (** LRU entries dropped by streaming-update invalidation *)
  mutable stale_hits : int;
      (** cache hits serving an entry of a version other than the
          request's — 0 is the versioned-fingerprint invariant *)
}

val create : index:int -> servers:int -> cache_capacity:int -> t

(** [enqueue t i] appends [i], maintaining [qlen] and [queue_peak]. *)
val enqueue : t -> int -> unit

val head : t -> int option

(** Earliest-free server index (lowest index on ties). *)
val min_server : t -> int

(** Pops the queue head. @raise Invalid_argument if empty. *)
val take : t -> int

(** [take_matching t pred] removes every queued index satisfying [pred],
    in queue order. *)
val take_matching : t -> (int -> bool) -> int list

(** [note_batch t nb] records a dispatch of [nb] requests. *)
val note_batch : t -> int -> unit
