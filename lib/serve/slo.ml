(* Latency/SLO summaries over a replay.

   Latencies are virtual (simulated) milliseconds — finish minus
   arrival for every request that was actually served — so percentiles
   are deterministic replay properties, not host measurements. The host
   wall clock appears only in the separate throughput numbers the bench
   layer reports. Counters export under the [serve.*] segment of the
   DESIGN.md §3c catalogue; times go in as integer microseconds (the
   registry is integral), rates as milli-units. *)

module Registry = Asap_obs.Registry
module Jsonu = Asap_obs.Jsonu

type summary = {
  s_total : int;
  s_ok : int;
  s_degraded : int;
  s_shed : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_batches : int;            (* dispatches serving more than one request *)
  s_batch_max : int;
  s_queue_peak : int;
  s_inflight_peak : int;
  s_builds : int;             (* host-side entry builds performed *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float;
  s_makespan_ms : float;      (* virtual time of the last finish *)
  s_throughput_rps : float;   (* served / virtual makespan *)
}

(** [percentile xs ~p] is the nearest-rank percentile ([p] in [0,100])
    of [xs] (not required sorted; empty yields 0). *)
let percentile (xs : float array) ~(p : float) : float =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let make ~latencies_ms ~ok ~degraded ~shed ~hits ~misses ~evictions ~batches
    ~batch_max ~queue_peak ~inflight_peak ~builds ~makespan_ms : summary =
  let served = ok + degraded in
  { s_total = ok + degraded + shed; s_ok = ok; s_degraded = degraded;
    s_shed = shed; s_hits = hits; s_misses = misses;
    s_evictions = evictions; s_batches = batches; s_batch_max = batch_max;
    s_queue_peak = queue_peak; s_inflight_peak = inflight_peak;
    s_builds = builds;
    s_p50_ms = percentile latencies_ms ~p:50.;
    s_p95_ms = percentile latencies_ms ~p:95.;
    s_p99_ms = percentile latencies_ms ~p:99.;
    s_makespan_ms = makespan_ms;
    s_throughput_rps =
      (if makespan_ms > 0. then 1000. *. float_of_int served /. makespan_ms
       else 0.) }

(** [hit_rate s] is hits / (hits + misses), 0 when the cache saw no
    lookups. *)
let hit_rate (s : summary) : float =
  let n = s.s_hits + s.s_misses in
  if n = 0 then 0. else float_of_int s.s_hits /. float_of_int n

let us ms = int_of_float (Float.round (ms *. 1000.))

(** [registry s] exports the summary as [serve.*] counters (times as
    integer microseconds, throughput as milli-requests/s). *)
let registry (s : summary) : Registry.t =
  let reg = Registry.create () in
  let set = Registry.set reg in
  set "serve.requests" s.s_total;
  set "serve.ok" s.s_ok;
  set "serve.degraded" s.s_degraded;
  set "serve.shed" s.s_shed;
  set "serve.cache.hit" s.s_hits;
  set "serve.cache.miss" s.s_misses;
  set "serve.cache.evict" s.s_evictions;
  set "serve.batch.count" s.s_batches;
  set "serve.batch.max" s.s_batch_max;
  set "serve.queue.peak" s.s_queue_peak;
  set "serve.inflight.peak" s.s_inflight_peak;
  set "serve.build.host" s.s_builds;
  set "serve.lat.p50_us" (us s.s_p50_ms);
  set "serve.lat.p95_us" (us s.s_p95_ms);
  set "serve.lat.p99_us" (us s.s_p99_ms);
  set "serve.makespan_us" (us s.s_makespan_ms);
  set "serve.throughput_mrps" (int_of_float (Float.round (s.s_throughput_rps *. 1000.)));
  reg

let to_json (s : summary) : Jsonu.t =
  Jsonu.Obj
    [ ("requests", Jsonu.Int s.s_total);
      ("ok", Jsonu.Int s.s_ok);
      ("degraded", Jsonu.Int s.s_degraded);
      ("shed", Jsonu.Int s.s_shed);
      ("cache_hit", Jsonu.Int s.s_hits);
      ("cache_miss", Jsonu.Int s.s_misses);
      ("cache_evict", Jsonu.Int s.s_evictions);
      ("hit_rate", Jsonu.Float (hit_rate s));
      ("batches", Jsonu.Int s.s_batches);
      ("batch_max", Jsonu.Int s.s_batch_max);
      ("queue_peak", Jsonu.Int s.s_queue_peak);
      ("inflight_peak", Jsonu.Int s.s_inflight_peak);
      ("builds", Jsonu.Int s.s_builds);
      ("p50_ms", Jsonu.Float s.s_p50_ms);
      ("p95_ms", Jsonu.Float s.s_p95_ms);
      ("p99_ms", Jsonu.Float s.s_p99_ms);
      ("makespan_ms", Jsonu.Float s.s_makespan_ms);
      ("throughput_rps", Jsonu.Float s.s_throughput_rps) ]

let pp ppf (s : summary) =
  Format.fprintf ppf
    "@[<v>requests %d: %d ok, %d degraded, %d shed@,\
     cache: %d hit / %d miss / %d evict (hit rate %.2f)@,\
     batching: %d batched dispatches, largest %d@,\
     peaks: queue %d, in-flight %d; host builds %d@,\
     latency p50/p95/p99: %.3f / %.3f / %.3f ms@,\
     makespan %.3f ms, throughput %.1f req/s (virtual)@]"
    s.s_total s.s_ok s.s_degraded s.s_shed s.s_hits s.s_misses s.s_evictions
    (hit_rate s) s.s_batches s.s_batch_max s.s_queue_peak s.s_inflight_peak
    s.s_builds s.s_p50_ms s.s_p95_ms s.s_p99_ms s.s_makespan_ms
    s.s_throughput_rps
