(* Latency/SLO summaries over a replay — fleet-wide and per shard.

   Latencies are virtual (simulated) milliseconds — finish minus
   arrival for every request that was actually served — so percentiles
   are deterministic replay properties, not host measurements. The host
   wall clock appears only in the separate throughput numbers the bench
   layer reports. Counters export under the [serve.*] segment of the
   DESIGN.md §3c catalogue — per-shard counters as
   [serve.shard.<i>.<leaf>], so fleet aggregates can be *derived* with
   {!Asap_obs.Registry.sum_prefix} instead of maintained separately —
   times go in as integer microseconds (the registry is integral),
   rates as milli-units.

   Percentile estimator: nearest-rank — the smallest sample x such that
   at least p% of the samples are <= x (sorted.(ceil (p/100 * n)) with
   1-based rank). It is exact in the sense that it always returns an
   observed sample, but it says nothing a sample of size n cannot
   support: with n < 100/(100-p) every sample sits below the requested
   rank resolution and nearest-rank degenerates to "the maximum", which
   reads as a meaningful tail estimate when it is not (a 5-request
   shard has no p99.9). {!percentile_opt} therefore returns [None]
   below that threshold; the raw {!percentile} survives for callers
   that want the degenerate value knowingly. *)

module Registry = Asap_obs.Registry
module Jsonu = Asap_obs.Jsonu

type summary = {
  s_total : int;
  s_ok : int;
  s_degraded : int;
  s_shed : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_batches : int;            (* dispatches serving more than one request *)
  s_batch_max : int;
  s_queue_peak : int;         (* peak total queued across the fleet *)
  s_inflight_peak : int;
  s_builds : int;             (* host-side entry builds performed *)
  s_steals : int;             (* cross-shard batches stolen *)
  s_invalidated : int;        (* LRU entries dropped by updates *)
  s_stale_hits : int;         (* wrong-version cache hits (invariant: 0) *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float option;    (* None below 100 samples *)
  s_p999_ms : float option;   (* None below 1000 samples *)
  s_makespan_ms : float;      (* virtual time of the last finish *)
  s_throughput_rps : float;   (* served / virtual makespan *)
}

(** [percentile xs ~p] is the nearest-rank percentile ([p] in [0,100])
    of [xs] (not required sorted; empty yields 0). Degenerates to the
    sample maximum once [p] exceeds the sample's rank resolution — see
    {!percentile_opt} for the honest variant. *)
let percentile (xs : float array) ~(p : float) : float =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(** [min_samples ~p] is the smallest sample count whose nearest-rank
    p-th percentile is not simply the maximum: ceil (100 / (100 - p)).
    100 for p99, 1000 for p99.9. @raise Invalid_argument outside
    (0, 100). *)
let min_samples ~(p : float) : int =
  if p <= 0. || p >= 100. then
    invalid_arg "Slo.min_samples: p outside (0, 100)";
  (* The epsilon absorbs binary-float noise in 100/(100-p): p = 99.9
     computes to 1000.0000000000009, which must not ceil to 1001. *)
  int_of_float (ceil (100. /. (100. -. p) -. 1e-6))

(** [percentile_opt xs ~p] is {!percentile} when the sample can resolve
    the requested quantile ([length xs >= min_samples ~p]), [None]
    otherwise — a tiny per-shard sample yields no tail estimate rather
    than a misleading one. *)
let percentile_opt (xs : float array) ~(p : float) : float option =
  if Array.length xs < min_samples ~p then None
  else Some (percentile xs ~p)

let make ?(invalidated = 0) ?(stale_hits = 0) ~latencies_ms ~ok ~degraded
    ~shed ~hits ~misses ~evictions ~batches ~batch_max ~queue_peak
    ~inflight_peak ~builds ~steals ~makespan_ms () : summary =
  let served = ok + degraded in
  { s_total = ok + degraded + shed; s_ok = ok; s_degraded = degraded;
    s_shed = shed; s_hits = hits; s_misses = misses;
    s_evictions = evictions; s_batches = batches; s_batch_max = batch_max;
    s_queue_peak = queue_peak; s_inflight_peak = inflight_peak;
    s_builds = builds; s_steals = steals; s_invalidated = invalidated;
    s_stale_hits = stale_hits;
    s_p50_ms = percentile latencies_ms ~p:50.;
    s_p95_ms = percentile latencies_ms ~p:95.;
    s_p99_ms = percentile_opt latencies_ms ~p:99.;
    s_p999_ms = percentile_opt latencies_ms ~p:99.9;
    s_makespan_ms = makespan_ms;
    s_throughput_rps =
      (if makespan_ms > 0. then 1000. *. float_of_int served /. makespan_ms
       else 0.) }

(** [hit_rate s] is hits / (hits + misses), 0 when the cache saw no
    lookups. *)
let hit_rate (s : summary) : float =
  let n = s.s_hits + s.s_misses in
  if n = 0 then 0. else float_of_int s.s_hits /. float_of_int n

let us ms = int_of_float (Float.round (ms *. 1000.))

(** [register reg s] exports the summary as [serve.*] counters into
    [reg] (times as integer microseconds, throughput as
    milli-requests/s). Tail percentiles the sample cannot resolve are
    omitted, not exported as 0. *)
let register (reg : Registry.t) (s : summary) : unit =
  let set = Registry.set reg in
  set "serve.requests" s.s_total;
  set "serve.ok" s.s_ok;
  set "serve.degraded" s.s_degraded;
  set "serve.shed" s.s_shed;
  set "serve.cache.hit" s.s_hits;
  set "serve.cache.miss" s.s_misses;
  set "serve.cache.evict" s.s_evictions;
  set "serve.batch.count" s.s_batches;
  set "serve.batch.max" s.s_batch_max;
  set "serve.queue.peak" s.s_queue_peak;
  set "serve.inflight.peak" s.s_inflight_peak;
  set "serve.build.host" s.s_builds;
  set "serve.steal.count" s.s_steals;
  set "serve.cache.invalidated" s.s_invalidated;
  set "serve.cache.stale_hit" s.s_stale_hits;
  set "serve.lat.p50_us" (us s.s_p50_ms);
  set "serve.lat.p95_us" (us s.s_p95_ms);
  (match s.s_p99_ms with
   | Some v -> set "serve.lat.p99_us" (us v)
   | None -> ());
  (match s.s_p999_ms with
   | Some v -> set "serve.lat.p999_us" (us v)
   | None -> ());
  set "serve.makespan_us" (us s.s_makespan_ms);
  set "serve.throughput_mrps"
    (int_of_float (Float.round (s.s_throughput_rps *. 1000.)))

(** [registry s] is {!register} into a fresh registry. *)
let registry (s : summary) : Registry.t =
  let reg = Registry.create () in
  register reg s;
  reg

let opt_json = function Some v -> Jsonu.Float v | None -> Jsonu.Null

let to_json (s : summary) : Jsonu.t =
  Jsonu.Obj
    [ ("requests", Jsonu.Int s.s_total);
      ("ok", Jsonu.Int s.s_ok);
      ("degraded", Jsonu.Int s.s_degraded);
      ("shed", Jsonu.Int s.s_shed);
      ("cache_hit", Jsonu.Int s.s_hits);
      ("cache_miss", Jsonu.Int s.s_misses);
      ("cache_evict", Jsonu.Int s.s_evictions);
      ("cache_invalidated", Jsonu.Int s.s_invalidated);
      ("cache_stale_hit", Jsonu.Int s.s_stale_hits);
      ("hit_rate", Jsonu.Float (hit_rate s));
      ("batches", Jsonu.Int s.s_batches);
      ("batch_max", Jsonu.Int s.s_batch_max);
      ("queue_peak", Jsonu.Int s.s_queue_peak);
      ("inflight_peak", Jsonu.Int s.s_inflight_peak);
      ("builds", Jsonu.Int s.s_builds);
      ("steals", Jsonu.Int s.s_steals);
      ("p50_ms", Jsonu.Float s.s_p50_ms);
      ("p95_ms", Jsonu.Float s.s_p95_ms);
      ("p99_ms", opt_json s.s_p99_ms);
      ("p999_ms", opt_json s.s_p999_ms);
      ("makespan_ms", Jsonu.Float s.s_makespan_ms);
      ("throughput_rps", Jsonu.Float s.s_throughput_rps) ]

let pp_opt ppf = function
  | Some v -> Format.fprintf ppf "%.3f" v
  | None -> Format.pp_print_string ppf "n/a"

let pp ppf (s : summary) =
  Format.fprintf ppf
    "@[<v>requests %d: %d ok, %d degraded, %d shed@,\
     cache: %d hit / %d miss / %d evict (hit rate %.2f)@,\
     batching: %d batched dispatches, largest %d; %d stolen@,\
     peaks: queue %d, in-flight %d; host builds %d@,\
     latency p50/p95/p99/p99.9: %.3f / %.3f / %a / %a ms@,\
     makespan %.3f ms, throughput %.1f req/s (virtual)@]"
    s.s_total s.s_ok s.s_degraded s.s_shed s.s_hits s.s_misses s.s_evictions
    (hit_rate s) s.s_batches s.s_batch_max s.s_steals s.s_queue_peak
    s.s_inflight_peak s.s_builds s.s_p50_ms s.s_p95_ms pp_opt s.s_p99_ms
    pp_opt s.s_p999_ms s.s_makespan_ms s.s_throughput_rps

(* --- Per-shard summaries --------------------------------------------- *)

type shard_summary = {
  sh_index : int;
  sh_ok : int;
  sh_degraded : int;
  sh_shed : int;              (* admission sheds on this home shard *)
  sh_hits : int;
  sh_misses : int;
  sh_evictions : int;
  sh_batches : int;
  sh_batch_max : int;
  sh_queue_peak : int;
  sh_steals_in : int;         (* batches this shard's servers stole *)
  sh_steals_out : int;        (* batches stolen from this shard's queue *)
  sh_invalidated : int;       (* LRU entries dropped by updates *)
  sh_stale_hits : int;        (* wrong-version cache hits (invariant: 0) *)
  sh_p50_ms : float option;   (* None below the rank resolution *)
  sh_p95_ms : float option;
  sh_p99_ms : float option;
  sh_p999_ms : float option;
}

(** [shard_make ~index ~latencies_ms ...] builds one shard's summary;
    every percentile goes through {!percentile_opt} — per-shard samples
    are routinely tiny, and a 5-request shard has no p99. *)
let shard_make ?(invalidated = 0) ?(stale_hits = 0) ~index ~latencies_ms ~ok
    ~degraded ~shed ~hits ~misses ~evictions ~batches ~batch_max ~queue_peak
    ~steals_in ~steals_out () : shard_summary =
  { sh_index = index; sh_ok = ok; sh_degraded = degraded; sh_shed = shed;
    sh_hits = hits; sh_misses = misses; sh_evictions = evictions;
    sh_batches = batches; sh_batch_max = batch_max;
    sh_queue_peak = queue_peak; sh_steals_in = steals_in;
    sh_steals_out = steals_out; sh_invalidated = invalidated;
    sh_stale_hits = stale_hits;
    sh_p50_ms = percentile_opt latencies_ms ~p:50.;
    sh_p95_ms = percentile_opt latencies_ms ~p:95.;
    sh_p99_ms = percentile_opt latencies_ms ~p:99.;
    sh_p999_ms = percentile_opt latencies_ms ~p:99.9 }

(** [shard_register reg sh] exports [serve.shard.<i>.<leaf>] counters:
    ok / degraded / shed / cache.hit / cache.miss / cache.evict /
    batch.count / batch.max / queue.peak / steal.in / steal.out and the
    resolvable [lat.*_us] percentiles. Fleet totals over additive
    leaves are derived with [Registry.sum_prefix ~leaf "serve.shard."]. *)
let shard_register (reg : Registry.t) (sh : shard_summary) : unit =
  let set leaf v =
    Registry.set reg (Printf.sprintf "serve.shard.%d.%s" sh.sh_index leaf) v
  in
  set "ok" sh.sh_ok;
  set "degraded" sh.sh_degraded;
  set "shed" sh.sh_shed;
  set "cache.hit" sh.sh_hits;
  set "cache.miss" sh.sh_misses;
  set "cache.evict" sh.sh_evictions;
  set "batch.count" sh.sh_batches;
  set "batch.max" sh.sh_batch_max;
  set "queue.peak" sh.sh_queue_peak;
  set "steal.in" sh.sh_steals_in;
  set "steal.out" sh.sh_steals_out;
  set "cache.invalidated" sh.sh_invalidated;
  set "cache.stale_hit" sh.sh_stale_hits;
  let set_lat leaf = function
    | Some v -> set leaf (us v)
    | None -> ()
  in
  set_lat "lat.p50_us" sh.sh_p50_ms;
  set_lat "lat.p95_us" sh.sh_p95_ms;
  set_lat "lat.p99_us" sh.sh_p99_ms;
  set_lat "lat.p999_us" sh.sh_p999_ms

let shard_to_json (sh : shard_summary) : Jsonu.t =
  Jsonu.Obj
    [ ("shard", Jsonu.Int sh.sh_index);
      ("ok", Jsonu.Int sh.sh_ok);
      ("degraded", Jsonu.Int sh.sh_degraded);
      ("shed", Jsonu.Int sh.sh_shed);
      ("cache_hit", Jsonu.Int sh.sh_hits);
      ("cache_miss", Jsonu.Int sh.sh_misses);
      ("cache_evict", Jsonu.Int sh.sh_evictions);
      ("cache_invalidated", Jsonu.Int sh.sh_invalidated);
      ("cache_stale_hit", Jsonu.Int sh.sh_stale_hits);
      ("batches", Jsonu.Int sh.sh_batches);
      ("batch_max", Jsonu.Int sh.sh_batch_max);
      ("queue_peak", Jsonu.Int sh.sh_queue_peak);
      ("steal_in", Jsonu.Int sh.sh_steals_in);
      ("steal_out", Jsonu.Int sh.sh_steals_out);
      ("p50_ms", opt_json sh.sh_p50_ms);
      ("p95_ms", opt_json sh.sh_p95_ms);
      ("p99_ms", opt_json sh.sh_p99_ms);
      ("p999_ms", opt_json sh.sh_p999_ms) ]

let pp_shard ppf (sh : shard_summary) =
  Format.fprintf ppf
    "shard %d: %d ok, %d degraded, %d shed; cache %d/%d/%d; steal %d in \
     / %d out; p50/p95 %a / %a ms"
    sh.sh_index sh.sh_ok sh.sh_degraded sh.sh_shed sh.sh_hits sh.sh_misses
    sh.sh_evictions sh.sh_steals_in sh.sh_steals_out pp_opt sh.sh_p50_ms
    pp_opt sh.sh_p95_ms
