(** Building one cache entry — the expensive host-side half of serving:
    the prepared execution ({!Asap_core.Driver.Prep}), the tuning
    decision for [`Tuned] requests (under the request's tuning mode:
    sweep, model or hybrid — {!Asap_model.Select}), and the canonical
    result of one cold run (the simulator is deterministic, so repeats
    are identical and cache hits skip host work entirely). Virtual
    service costs ride along: [run_ms] (simulated kernel time) and
    [tune_ms] (simulated decision time — profile runs for sweep,
    feature extraction for model — charged to cache misses). The matrix
    is packed once and shared by the profile runs and the prepared
    execution. *)

module Coo = Asap_tensor.Coo
module Machine = Asap_sim.Machine
module Driver = Asap_core.Driver
module Select = Asap_model.Select

type entry = {
  e_fp : string;                      (** {!Request.fingerprint} *)
  e_machine : Machine.t;
  e_prep : Driver.Prep.t;
  e_decide : Select.decision option;  (** Some iff variant was [`Tuned] … *)
  e_tune_fell_back : bool;            (** … and tuning was inapplicable *)
  e_result : Driver.result;           (** the canonical cold run *)
  e_run_ms : float;                   (** virtual per-execution cost *)
  e_tune_ms : float;                  (** virtual decision cost on miss *)
  e_spec : bool;                      (** an AoT-specialized artefact *)
  e_spec_ns : int;                    (** host ns spent preparing it *)
}

val run_ms : entry -> float
val result : entry -> Driver.result

(** [miss_penalty_ms ~compile_ms e] is the virtual time a cache miss
    charges before service: the compile penalty plus [e]'s
    tuning-decision cost. *)
val miss_penalty_ms : compile_ms:float -> entry -> float

(** [build ?st req coo] assembles the entry for [req]'s fingerprint:
    decide the variant (if asked; falls back to default ASaP when
    tuning is inapplicable), prepare, and execute once cold. [st], if
    given, must be the packed storage of [req]'s format over exactly
    [coo] — the scheduler's pack-memoisation pre-pass supplies it so
    repeated formats of one matrix pack once. Safe to call from a
    {!Par} worker. *)
val build : ?st:Asap_tensor.Storage.t -> Request.t -> Coo.t -> entry
