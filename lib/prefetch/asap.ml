(* ASaP prefetch injection (paper §3.2, Fig. 5).

   Runs as a sparsification hook: at every iterate-and-locate site it emits
   the three-step sequence

     1. prefetch crd[jj + 2*distance]            (cover the step-2 operand)
     2. j_ahead = load crd[min(jj + distance, bound)]
     3. prefetch target[j_ahead * scale]         (one per reached operand)

   The defining difference from prior art is the bound in step 2: ASaP uses
   the sparsification-time knowledge of the whole coordinate buffer's size
   (hoisted into the prologue via the recursive pos-chain of §3.2.2), so
   prefetching runs across segment boundaries; the [Segment_local] ablation
   reproduces the Ainsworth & Jones behaviour of clamping to the enclosing
   loop's bound. *)

module Access = Asap_sparsifier.Access
open Asap_ir

(** Where prefetches may be injected relative to the loop nest. The paper
    uses innermost-loop prefetching for SpMV (§5.1) and outer-loop
    prefetching for SpMM (§5.2); [Both] lets the site decide. *)
type strategy = Innermost_only | Outer_only | Both

(** Step-2 bound selection (§3.2.2): [Semantic] is ASaP's whole-buffer
    bound; [Segment_local] clamps to the current segment, the prior-art
    behaviour kept as an ablation. *)
type bound_mode = Semantic | Segment_local

type config = {
  distance : int;          (* lookahead in iterations (paper: 45) *)
  locality : int;          (* prefetch locality hint (paper: 2) *)
  strategy : strategy;
  bound_mode : bound_mode;
  step1 : bool;            (* emit the step-1 crd prefetch (§3.2.1) *)
}

let default =
  { distance = 45; locality = 2; strategy = Both; bound_mode = Semantic;
    step1 = true }

(** [hook cfg] is the sparsification hook implementing the scheme. *)
let hook (cfg : config) : Access.hook =
 fun b site ->
  let allowed =
    match cfg.strategy with
    | Both -> true
    | Innermost_only -> site.Access.s_innermost
    | Outer_only -> not site.Access.s_innermost
  in
  if allowed && site.Access.s_targets <> [] then begin
    (* The configured distance counts tensor elements; an iterator step
       that covers several elements needs a proportionally shorter
       lookahead (at least one — §3.2.2 extended to element strides).
       Two step sizes compose here: a blocked level consumes bh*bw
       elements per iteration (static), and dense-only loops below the
       sparse levels (SDDMM's and SpMM's k) replay the body once per
       element of their extent (a runtime dimension, so the division is
       emitted into the entry block rather than folded). *)
    let dist_iters = max 1 (cfg.distance / site.Access.s_step_elems) in
    let dist, twice =
      match site.Access.s_inner_extent with
      | None ->
        (Builder.index b dist_iters,
         lazy (Builder.index b (2 * dist_iters)))
      | Some ext ->
        let dist =
          Builder.at_entry b (fun b ->
            let c1 = Builder.index b 1 in
            Builder.imax b c1
              (Builder.ibin b Ir.Idiv
                 (Builder.index b dist_iters)
                 (Builder.imax b c1 ext)))
        in
        (dist, lazy (Builder.at_entry b (fun b -> Builder.iadd b dist dist)))
    in
    if cfg.step1 then begin
      let idx1 = Builder.iadd b site.Access.s_iv (Lazy.force twice) in
      Builder.prefetch b ~locality:cfg.locality site.Access.s_crd idx1
    end;
    let bound =
      match cfg.bound_mode with
      | Semantic -> site.Access.s_bound
      | Segment_local ->
        Builder.isub b site.Access.s_hi (Builder.index b 1)
    in
    let ahead_raw = Builder.iadd b site.Access.s_iv dist in
    let clamped = Builder.imin b ahead_raw bound in
    let j_ahead = Builder.load b ~name:"j_ahead" site.Access.s_crd clamped in
    List.iter
      (fun (t : Access.target) ->
        let scaled =
          match t.Access.t_scale with
          | None -> j_ahead
          | Some scale -> Builder.imul b j_ahead scale
        in
        let addr =
          match t.Access.t_base with
          | None -> scaled
          | Some base -> Builder.iadd b base scaled
        in
        Builder.prefetch b ~write:t.Access.t_write ~locality:cfg.locality
          t.Access.t_buf addr)
      site.Access.s_targets
  end
