(* Synthetic sparse matrix generators.

   Stand-ins for the SuiteSparse families the paper evaluates (§4.2): the
   benchmark shapes only depend on structural statistics — row-degree
   distribution, column locality (reuse distance of the dense operand), and
   footprint relative to the caches — which these generators control
   directly. All generation is deterministic in the seed. *)

module Coo = Asap_tensor.Coo

(* Dedup/sort once at the end; duplicate coordinates are summed by
   [Coo.sorted_dedup] inside [Storage.pack], so generators may emit
   collisions freely. *)
let of_rowcols ~rows ~cols entries rng =
  let n = List.length entries in
  let coords = Array.make n [||] and vals = Array.make n 0. in
  List.iteri
    (fun k (i, j) ->
      coords.(k) <- [| i; j |];
      vals.(k) <- 0.5 +. Rng.float rng)
    entries;
  Coo.create ~dims:[| rows; cols |] ~coords ~vals

(** Uniform random matrix: every non-zero position independent — the worst
    case for locality (GAP-urand style). *)
let uniform ~seed ~rows ~cols ~nnz () =
  let rng = Rng.create seed in
  let entries = ref [] in
  for _ = 1 to nnz do
    entries := (Rng.int rng rows, Rng.int rng cols) :: !entries
  done;
  of_rowcols ~rows ~cols !entries rng

(** Power-law graph adjacency (SNAP/LAW/GAP style): row degrees follow a
    bounded Pareto with exponent [alpha]; a fraction [locality] of the
    columns are drawn near the diagonal (web-graph clustering), the rest
    uniformly. Low [alpha] gives the heavy skew of twitter-like graphs. *)
let power_law ~seed ~rows ~cols ~avg_deg ~alpha ?(locality = 0.0)
    ?(max_deg_frac = 0.01) () =
  let rng = Rng.create seed in
  let x_max = max 4 (int_of_float (float_of_int cols *. max_deg_frac)) in
  let entries = ref [] in
  (* Scale sampled degrees so the expected average matches avg_deg. *)
  let sample () = Rng.power_law rng ~alpha ~x_min:1 ~x_max in
  let probe = Array.init 1024 (fun _ -> sample ()) in
  let probe_mean =
    float_of_int (Array.fold_left ( + ) 0 probe) /. 1024.
  in
  let scale = float_of_int avg_deg /. probe_mean in
  for i = 0 to rows - 1 do
    let d =
      max 1 (int_of_float (Float.round (float_of_int (sample ()) *. scale)))
    in
    for _ = 1 to min d x_max do
      let j =
        if Rng.float rng < locality then begin
          let w = max 16 (cols / 64) in
          let base = i * cols / rows in
          let off = Rng.int rng (2 * w) - w in
          let j = base + off in
          if j < 0 then j + cols else if j >= cols then j - cols else j
        end
        else Rng.int rng cols
      in
      entries := (i, j) :: !entries
    done
  done;
  of_rowcols ~rows ~cols !entries rng

(** Banded matrix: [band] diagonals around the main one — structured,
    cache-friendly (the "Others" bucket). *)
let banded ~seed ~n ~band () =
  let rng = Rng.create seed in
  let entries = ref [] in
  for i = 0 to n - 1 do
    for o = -band to band do
      let j = i + o in
      if j >= 0 && j < n then entries := (i, j) :: !entries
    done
  done;
  of_rowcols ~rows:n ~cols:n !entries rng

(** 5-point 2-D stencil on a [side] x [side] grid (PDE discretisation). *)
let stencil_2d ~seed ~side () =
  let rng = Rng.create seed in
  let n = side * side in
  let idx x y = (x * side) + y in
  let entries = ref [] in
  for x = 0 to side - 1 do
    for y = 0 to side - 1 do
      let i = idx x y in
      entries := (i, i) :: !entries;
      if x > 0 then entries := (i, idx (x - 1) y) :: !entries;
      if x < side - 1 then entries := (i, idx (x + 1) y) :: !entries;
      if y > 0 then entries := (i, idx x (y - 1)) :: !entries;
      if y < side - 1 then entries := (i, idx x (y + 1)) :: !entries
    done
  done;
  of_rowcols ~rows:n ~cols:n !entries rng

(** 7-point 3-D stencil on a [side]^3 grid. *)
let stencil_3d ~seed ~side () =
  let rng = Rng.create seed in
  let n = side * side * side in
  let idx x y z = (((x * side) + y) * side) + z in
  let entries = ref [] in
  for x = 0 to side - 1 do
    for y = 0 to side - 1 do
      for z = 0 to side - 1 do
        let i = idx x y z in
        let push j = entries := (i, j) :: !entries in
        push i;
        if x > 0 then push (idx (x - 1) y z);
        if x < side - 1 then push (idx (x + 1) y z);
        if y > 0 then push (idx x (y - 1) z);
        if y < side - 1 then push (idx x (y + 1) z);
        if z > 0 then push (idx x y (z - 1));
        if z < side - 1 then push (idx x y (z + 1))
      done
    done
  done;
  of_rowcols ~rows:n ~cols:n !entries rng

(** FEM-like block-banded matrix: dense [blk] x [blk] element blocks along
    a band (Janna-collection style: large rows, strong locality). *)
let fem_blocks ~seed ~nblocks ~blk ~reach () =
  let rng = Rng.create seed in
  let n = nblocks * blk in
  let entries = ref [] in
  for b = 0 to nblocks - 1 do
    for nb = max 0 (b - reach) to min (nblocks - 1) (b + reach) do
      for r = 0 to blk - 1 do
        for c = 0 to blk - 1 do
          entries := ((b * blk) + r, (nb * blk) + c) :: !entries
        done
      done
    done
  done;
  of_rowcols ~rows:n ~cols:n !entries rng

(** Road-network-like graph: constant small degree, strongly local columns
    with occasional long-range links (DIMACS10 street networks). *)
let road ~seed ~n ~deg () =
  let rng = Rng.create seed in
  let entries = ref [] in
  for i = 0 to n - 1 do
    for _ = 1 to deg do
      let j =
        if Rng.float rng < 0.95 then begin
          let off = Rng.int rng 64 - 32 in
          let j = i + off in
          if j < 0 then j + n else if j >= n then j - n else j
        end
        else Rng.int rng n
      in
      entries := (i, j) :: !entries
    done
  done;
  of_rowcols ~rows:n ~cols:n !entries rng

(** Uniform random rank-3 tensor (for CSF / tensor-times-vector runs). *)
let tensor3 ~seed ~dims ~nnz () =
  if Array.length dims <> 3 then invalid_arg "Generate.tensor3: need 3 dims";
  let rng = Rng.create seed in
  let coords = Array.make nnz [||] and vals = Array.make nnz 0. in
  for k = 0 to nnz - 1 do
    coords.(k) <-
      [| Rng.int rng dims.(0); Rng.int rng dims.(1); Rng.int rng dims.(2) |];
    vals.(k) <- 0.5 +. Rng.float rng
  done;
  Coo.create ~dims ~coords ~vals

(** Heavy-tailed trace matrix (MAWI packet traces): a handful of huge rows
    (backbone hosts) over a sea of tiny ones. *)
let heavy_tail ~seed ~rows ~cols ~nnz ~hubs () =
  let rng = Rng.create seed in
  let entries = ref [] in
  let hub_nnz = nnz / 2 in
  for _ = 1 to hub_nnz do
    let i = Rng.int rng hubs in
    entries := (i, Rng.int rng cols) :: !entries
  done;
  for _ = 1 to nnz - hub_nnz do
    entries := (hubs + Rng.int rng (rows - hubs), Rng.int rng cols) :: !entries
  done;
  of_rowcols ~rows ~cols !entries rng

(* --- Spec-string constructor ---------------------------------------- *)

(* One textual name per generator family, so matrices can be carried by
   value in CLI flags, serve request files and benchmark manifests
   instead of by .mtx path. The grammar is "kind:arg,arg[@seed]"; every
   spec is deterministic, so equal specs name equal matrices — the serve
   cache fingerprints rely on that. *)

let spec_grammar =
  "powerlaw:<n>,<deg> | uniform:<n>,<nnz> | banded:<n>,<band> | \
   road:<n>,<deg> | stencil2d:<side> | stencil3d:<side> | \
   fem:<nblocks>,<blk>,<reach> | heavytail:<rows>,<nnz>,<hubs> | \
   tensor3:<d1>,<d2>,<d3>,<nnz>  (each optionally @<seed>, default 1)"

(** [of_spec s] builds the matrix named by spec string [s]; [Error]
    carries the expected grammar. *)
let of_spec (spec : string) : (Coo.t, string) result =
  let usage kind = Error ("bad " ^ kind ^ " spec; expected " ^ spec_grammar) in
  let spec, seed =
    match String.split_on_char '@' spec with
    | [ s ] -> (s, Ok 1)
    | [ s; seed ] ->
      (s, match int_of_string_opt seed with
          | Some n -> Ok n
          | None -> Error ("bad seed in spec: " ^ seed))
    | _ -> (spec, Error ("bad spec: " ^ spec))
  in
  match seed with
  | Error e -> Error e
  | Ok seed ->
    (match String.split_on_char ':' spec with
     | [ kind; rest ] ->
       let args = List.map int_of_string_opt (String.split_on_char ',' rest) in
       let all_ok = List.for_all Option.is_some args in
       if not all_ok then usage kind
       else
         (match (kind, List.map Option.get args) with
          | "powerlaw", [ n; d ] ->
            Ok (power_law ~seed ~rows:n ~cols:n ~avg_deg:d ~alpha:2.0 ())
          | "uniform", [ n; nnz ] -> Ok (uniform ~seed ~rows:n ~cols:n ~nnz ())
          | "banded", [ n; band ] -> Ok (banded ~seed ~n ~band ())
          | "road", [ n; deg ] -> Ok (road ~seed ~n ~deg ())
          | "stencil2d", [ side ] -> Ok (stencil_2d ~seed ~side ())
          | "stencil3d", [ side ] -> Ok (stencil_3d ~seed ~side ())
          | "fem", [ nblocks; blk; reach ] ->
            Ok (fem_blocks ~seed ~nblocks ~blk ~reach ())
          | "heavytail", [ rows; nnz; hubs ] ->
            Ok (heavy_tail ~seed ~rows ~cols:rows ~nnz ~hubs ())
          | "tensor3", [ d1; d2; d3; nnz ] ->
            Ok (tensor3 ~seed ~dims:[| d1; d2; d3 |] ~nnz ())
          | _ -> usage kind)
     | _ -> Error ("unknown generator spec: " ^ spec ^ "; expected "
                   ^ spec_grammar))
