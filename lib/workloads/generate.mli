(** Synthetic sparse matrix generators.

    Stand-ins for the SuiteSparse families the paper evaluates (§4.2): the
    benchmark shapes only depend on structural statistics — row-degree
    distribution, column locality (reuse distance of the dense operand)
    and footprint relative to the caches — which these generators control
    directly. All generation is deterministic in the seed. *)

module Coo = Asap_tensor.Coo

(** Uniform random positions — the worst case for locality (GAP-urand
    style). *)
val uniform : seed:int -> rows:int -> cols:int -> nnz:int -> unit -> Coo.t

(** Power-law graph adjacency (SNAP/LAW/GAP style): bounded-Pareto row
    degrees with exponent [alpha]; a fraction [locality] of columns is
    drawn near the diagonal (web-graph clustering). [max_deg_frac] caps the
    hub degree as a fraction of [cols]. *)
val power_law :
  seed:int -> rows:int -> cols:int -> avg_deg:int -> alpha:float ->
  ?locality:float -> ?max_deg_frac:float -> unit -> Coo.t

(** [band] diagonals around the main one — structured and cache-friendly. *)
val banded : seed:int -> n:int -> band:int -> unit -> Coo.t

(** 5-point 2-D stencil on a [side] x [side] grid. *)
val stencil_2d : seed:int -> side:int -> unit -> Coo.t

(** 7-point 3-D stencil on a [side]^3 grid. *)
val stencil_3d : seed:int -> side:int -> unit -> Coo.t

(** FEM-like block-banded matrix (Janna-collection style): dense
    [blk] x [blk] blocks within [reach] block-columns of the diagonal. *)
val fem_blocks :
  seed:int -> nblocks:int -> blk:int -> reach:int -> unit -> Coo.t

(** Road-network-like graph: constant small degree, strongly local columns
    with occasional long-range links (DIMACS10 street networks). *)
val road : seed:int -> n:int -> deg:int -> unit -> Coo.t

(** Uniform random rank-3 tensor (for CSF / tensor-times-vector runs). *)
val tensor3 : seed:int -> dims:int array -> nnz:int -> unit -> Coo.t

(** Heavy-tailed trace matrix (MAWI-style): [hubs] huge rows over a sea of
    tiny ones. *)
val heavy_tail :
  seed:int -> rows:int -> cols:int -> nnz:int -> hubs:int -> unit -> Coo.t

(** The grammar accepted by {!of_spec}, for error messages and docs. *)
val spec_grammar : string

(** [of_spec s] builds the matrix named by a spec string of the form
    ["kind:arg,arg\[@seed\]"] (e.g. ["powerlaw:100000,8"],
    ["tensor3:64,64,64,20000@7"]; seed defaults to 1). Deterministic:
    equal specs name equal matrices — cache fingerprints rely on this. *)
val of_spec : string -> (Coo.t, string) result
