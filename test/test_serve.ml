(* Serving subsystem tests: the request model round-trips through JSONL,
   the LRU counts hits/misses/evictions deterministically, and the
   fleet replay is a pure function of the request list and config —
   byte-equal records at any host parallelism and shard count, repeat
   fingerprints never rebuilt, routing stable under fleet resizes,
   stealing/quotas/shedding/degradation/batching all observable in the
   records. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Generate = Asap_workloads.Generate
module Request = Asap_serve.Request
module Lru = Asap_serve.Lru
module Build = Asap_serve.Build
module Mix = Asap_serve.Mix
module Router = Asap_serve.Router
module Config = Asap_serve.Config
module Scheduler = Asap_serve.Scheduler
module Slo = Asap_serve.Slo
module Registry = Asap_obs.Registry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Small matrices keep every build cheap; the scheduler's behaviour is
   what is under test. *)
let req ?(id = "r0") ?(kernel = `Spmv) ?(format = "csr")
    ?(matrix = "powerlaw:400,5") ?(variant : Request.variant = `Asap)
    ?(tune_mode = Asap_core.Tuning.default_mode) ?pipeline
    ?(tenant = Request.default_tenant) ?(arrival = 0.) ?deadline
    ?(specialize = false) () : Request.t =
  { Request.id; kernel; format; matrix; variant;
    engine = Exec.default_engine; machine = "optimized"; tune_mode; pipeline;
    tenant; arrival_ms = arrival; deadline; specialize }

let small_profiles () =
  [ Mix.profile "powerlaw:400,5";
    Mix.profile ~variant:`Tuned "powerlaw:400,5";
    Mix.profile ~format:"dcsr" "uniform:300,1200";
    Mix.profile ~kernel:`Ttv ~format:"csf" "tensor3:12,12,12,400";
    Mix.profile ~variant:`Baseline "banded:300,4" ]

let lines rp =
  Array.to_list (Array.map Scheduler.record_to_line rp.Scheduler.rp_records)

(* --- Request model ---------------------------------------------------- *)

let test_request_roundtrip () =
  List.iter
    (fun r ->
      match Request.of_line (Request.to_line r) with
      | Ok r' -> check ("roundtrip " ^ r.Request.id) true (r = r')
      | Error e -> Alcotest.fail e)
    [ req ();
      req ~id:"r1" ~kernel:`Spmm ~format:"dcsr" ~variant:`Tuned ~arrival:3.5
        ~deadline:(Request.Ms 0.25) ();
      req ~id:"r2" ~kernel:`Ttv ~format:"csf" ~matrix:"tensor3:12,12,12,400"
        ~deadline:(Request.Cycles 9000) ();
      req ~id:"r3" ~variant:`Baseline ~format:"csc" ();
      req ~id:"r4" ~tenant:"acme" ();
      req ~id:"r5" ~pipeline:"sparsify,asap{d=16},unroll{f=2}" () ];
  (* A request that names no tenant parses as the default tenant. *)
  match
    Request.of_line {| {"id":"x","kernel":"spmv","matrix":"powerlaw:400,5"} |}
  with
  | Ok r ->
    check "absent tenant defaults" true
      (r.Request.tenant = Request.default_tenant)
  | Error e -> Alcotest.fail e

let test_request_fingerprint () =
  let a = req () in
  (* id, tenant, arrival and deadline are scheduling metadata, not
     cache key. *)
  let b = { a with Request.id = "other"; tenant = "acme"; arrival_ms = 9.;
            deadline = Some (Request.Ms 1.) } in
  check "metadata outside key" true
    (Request.fingerprint a = Request.fingerprint b);
  List.iter
    (fun c ->
      check "artefact fields inside key" true
        (Request.fingerprint a <> Request.fingerprint c))
    [ { a with Request.format = "csc" };
      { a with Request.matrix = "powerlaw:401,5" };
      { a with Request.variant = `Baseline };
      { a with Request.machine = "default" } ];
  let fb = Request.fallback a in
  check "fallback is baseline" true (fb.Request.variant = `Baseline);
  check "fallback keeps identity" true (fb.Request.id = a.Request.id)

let test_request_errors () =
  List.iter
    (fun line -> check line true (Result.is_error (Request.of_line line)))
    [ "{}";                                          (* missing fields *)
      {| {"id":"x","kernel":"qr","matrix":"m"} |};   (* unknown kernel *)
      {| {"id":"x","kernel":"spmv","matrix":"m","format":"csf"} |};
      "not json" ];
  (* Ttv with a matrix format (and vice versa) is a spec mismatch. *)
  (try
     ignore (Request.spec (req ~kernel:`Ttv ~format:"csr" ()));
     Alcotest.fail "accepted ttv over csr"
   with Invalid_argument _ -> ())

(* --- Pipeline specs in serve ------------------------------------------- *)

let test_request_pipeline () =
  let a = req () in
  let p = req ~pipeline:"sparsify,asap{d=16}" () in
  check "pipeline inside key" true
    (Request.fingerprint a <> Request.fingerprint p);
  (* Spellings of one pipeline share a fingerprint: the key embeds the
     canonical form, with defaults filled. *)
  check "spellings share the key" true
    (Request.fingerprint p
     = Request.fingerprint
         (req ~pipeline:" sparsify , asap { d = 16 , l = 2 } " ()));
  check "distinct specs distinct keys" true
    (Request.fingerprint p
     <> Request.fingerprint
          (req ~pipeline:"sparsify,asap{d=16},unroll{f=4}" ()));
  (* An explicit pipeline supersedes tuning: the tune mode no longer
     reaches the key. *)
  let tuned m = req ~variant:`Tuned ~tune_mode:m ~pipeline:"sparsify,fold" () in
  check "pipeline supersedes tune_mode" true
    (Request.fingerprint (tuned `Sweep) = Request.fingerprint (tuned `Model));
  check "tune_mode still keyed without pipeline" true
    (Request.fingerprint (req ~variant:`Tuned ~tune_mode:`Sweep ())
     <> Request.fingerprint (req ~variant:`Tuned ~tune_mode:`Model ()));
  (* Degraded fallback rebuilds the plain baseline artefact. *)
  check "fallback drops pipeline" true
    ((Request.fallback p).Request.pipeline = None);
  (* Bad specs are rejected at JSONL ingest, not at build time. *)
  (match
     Request.of_line
       {| {"id":"x","kernel":"spmv","matrix":"powerlaw:400,5",
           "pipeline":"sparsify,nope"} |}
   with
   | Ok _ -> Alcotest.fail "ingested unknown pass"
   | Error e ->
     check "ingest error names the pass" true
       (Astring_contains.contains e "nope"));
  (* And in Config.validate for tenant overrides. *)
  try
    Config.validate Config.(with_pipelines [ ("acme", "nope" ) ] default);
    Alcotest.fail "accepted bad tenant pipeline"
  with Invalid_argument m ->
    check "config error names tenant" true (Astring_contains.contains m "acme")

let test_replay_tenant_pipelines () =
  (* Per-tenant pipeline overrides: replay stays byte-equal at any host
     parallelism, and the override visibly changes the records. *)
  let reqs =
    Mix.hot_cold ~seed:7 ~n:40
      ~tenants:[ ("a", 1.); ("b", 1.) ]
      (small_profiles ())
  in
  let cfg =
    Config.(
      default |> with_pipelines [ ("a", "sparsify,asap{d=16},unroll{f=2}") ])
  in
  let run jobs = lines (Scheduler.run Config.(with_jobs jobs cfg) reqs) in
  let l1 = run 1 in
  Alcotest.(check (list string)) "pipelines: jobs 1 = jobs 4 (byte)" l1 (run 4);
  check "override changes the records" true
    (l1 <> lines (Scheduler.run Config.default reqs));
  (* Distinct specs are distinct cache entries; spellings of one spec
     share an artefact. *)
  let r0 = req ~id:"p0" () in
  let r1 = { r0 with Request.id = "p1";
             pipeline = Some "sparsify,asap{d=16}" } in
  (* Same pipeline, different spelling, arriving well after [r1]'s build
     has completed — must hit the cached artefact. *)
  let r2 = { r0 with Request.id = "p2"; arrival_ms = 1e6;
             pipeline = Some " sparsify , asap { d = 16 } " } in
  let rp = Scheduler.run Config.default [ r0; r1; r2 ] in
  check_int "distinct spec builds separately" 2 rp.Scheduler.rp_summary.Slo.s_builds;
  check_int "spellings share the artefact" 1 rp.Scheduler.rp_summary.Slo.s_hits

(* --- Lru --------------------------------------------------------------- *)

let test_lru () =
  let l = Lru.create ~capacity:2 in
  check "miss on empty" true (Lru.find l "a" = None);
  ignore (Lru.add l "a" 1);
  ignore (Lru.add l "b" 2);
  check "hit a" true (Lru.find l "a" = Some 1);
  (* "b" is now least-recently used; inserting "c" evicts it. *)
  check "evicts lru" true (Lru.add l "c" 3 = Some "b");
  check "b gone" true (Lru.find l "b" = None);
  check "a stays" true (Lru.find l "a" = Some 1);
  check_int "hits" 2 (Lru.hits l);
  check_int "misses" 2 (Lru.misses l);
  check_int "evictions" 1 (Lru.evictions l);
  check_int "length" 2 (Lru.length l);
  (* Capacity 0: the valid disabled cache — always miss, never stores. *)
  let z = Lru.create ~capacity:0 in
  ignore (Lru.add z "a" 1);
  check "capacity 0 never stores" true (Lru.find z "a" = None);
  check_int "capacity 0 length" 0 (Lru.length z);
  (try
     ignore (Lru.create ~capacity:(-1));
     Alcotest.fail "accepted negative capacity"
   with Invalid_argument _ -> ())

(* --- Scheduler: determinism ------------------------------------------- *)

let test_replay_deterministic_across_jobs () =
  let reqs = Mix.hot_cold ~seed:5 ~n:60 (small_profiles ()) in
  let run jobs =
    lines (Scheduler.run Config.(with_jobs jobs default) reqs)
  in
  let l1 = run 1 in
  Alcotest.(check (list string)) "jobs 1 = jobs 4 (byte)" l1 (run 4);
  Alcotest.(check (list string)) "replay is reproducible" l1 (run 1)

let test_replay_cache_counters () =
  let reqs = Mix.hot_cold ~seed:6 ~n:50 (small_profiles ()) in
  let uniq =
    List.sort_uniq String.compare (List.map Request.fingerprint reqs)
  in
  let rp = Scheduler.run Config.default reqs in
  let s = rp.Scheduler.rp_summary in
  (* Repeat fingerprints never re-sparsify/re-compile: exactly one host
     build per distinct fingerprint (no deadlines, so no fallbacks). *)
  check_int "builds = distinct fingerprints" (List.length uniq)
    s.Slo.s_builds;
  check_int "misses = distinct fingerprints" (List.length uniq)
    s.Slo.s_misses;
  check "repeats hit" true (s.Slo.s_hits > 0);
  check_int "all served" 50 s.Slo.s_ok;
  check_int "registry mirrors summary" s.Slo.s_hits
    (Registry.find rp.Scheduler.rp_registry "serve.cache.hit");
  (* Cache off: every request rebuilds and misses. *)
  let off = Scheduler.run Config.(with_cache_capacity 0 default) reqs in
  check_int "uncached builds = requests" 50 off.Scheduler.rp_summary.Slo.s_builds;
  check_int "uncached misses = dispatches" 50
    off.Scheduler.rp_summary.Slo.s_misses;
  check_int "uncached hits" 0 off.Scheduler.rp_summary.Slo.s_hits

let test_replay_eviction () =
  (* Two alternating fingerprints through a 1-entry cache: every
     dispatch misses and (from the second on) evicts. *)
  let reqs =
    List.init 8 (fun i ->
        req
          ~id:(Printf.sprintf "r%d" i)
          ~matrix:(if i mod 2 = 0 then "powerlaw:400,5" else "banded:300,4")
          ~arrival:(float_of_int i)
          ())
  in
  let rp =
    Scheduler.run
      Config.(default |> with_cache_capacity 1 |> with_servers 1)
      reqs
  in
  let s = rp.Scheduler.rp_summary in
  check_int "no hits" 0 s.Slo.s_hits;
  check_int "evictions" 7 s.Slo.s_evictions;
  check_int "but only two builds" 2 s.Slo.s_builds

(* --- Scheduler: shedding, deadlines, batching ------------------------- *)

let test_replay_shedding () =
  (* A burst of 12 simultaneous arrivals into a queue of 4: admission at
     t=0 fills the queue (the head included) and sheds the other 8
     before any dispatch frees a slot. Shed records carry no result. *)
  let reqs =
    List.init 12 (fun i -> req ~id:(Printf.sprintf "r%02d" i) ())
  in
  let rp =
    Scheduler.run
      Config.(
        default |> with_queue_limit 4 |> with_servers 1
        |> with_batching false)
      reqs
  in
  let s = rp.Scheduler.rp_summary in
  check_int "shed" 8 s.Slo.s_shed;
  check_int "served" 4 s.Slo.s_ok;
  check_int "queue peak" 4 s.Slo.s_queue_peak;
  Array.iter
    (fun (r : Scheduler.record) ->
      if r.Scheduler.r_outcome = Scheduler.Shed then begin
        check "shed has no result" true (r.Scheduler.r_result = None);
        check "shed finishes at arrival" true
          (r.Scheduler.r_finish_ms = r.Scheduler.r_req.Request.arrival_ms)
      end)
    rp.Scheduler.rp_records

let test_replay_deadline_degrades () =
  (* One server; the first request occupies it long enough that the
     second's deadline expires in the queue — it must be served as the
     baseline fallback, not dropped. *)
  let reqs =
    [ req ~id:"warm" ();
      req ~id:"late" ~deadline:(Request.Ms 1e-6) ();
      req ~id:"slack" ~deadline:(Request.Ms 1e6) () ]
  in
  let rp =
    Scheduler.run
      Config.(default |> with_servers 1 |> with_batching false)
      reqs
  in
  let by_id id =
    Array.to_list rp.Scheduler.rp_records
    |> List.find (fun r -> r.Scheduler.r_req.Request.id = id)
  in
  let late = by_id "late" in
  check "late degraded" true (late.Scheduler.r_outcome = Scheduler.Degraded);
  check "late served as fallback fingerprint" true
    (late.Scheduler.r_fp
     = Request.fingerprint (Request.fallback late.Scheduler.r_req));
  check "late still has a result" true (late.Scheduler.r_result <> None);
  check "slack kept its variant" true
    ((by_id "slack").Scheduler.r_outcome = Scheduler.Served);
  check_int "summary counts one degrade" 1
    rp.Scheduler.rp_summary.Slo.s_degraded

let test_replay_batching () =
  (* Five same-fingerprint requests queued behind a warmer dispatch as
     one batch when batching is on, five when off. *)
  let reqs =
    req ~id:"warm" ~matrix:"banded:300,4" ()
    :: List.init 5 (fun i -> req ~id:(Printf.sprintf "r%d" i) ())
  in
  let run batching =
    (Scheduler.run
       Config.(default |> with_servers 1 |> with_batching batching)
       reqs)
      .Scheduler.rp_summary
  in
  let on = run true and off = run false in
  check "batched dispatch" true (on.Slo.s_batch_max = 5);
  check_int "no batches when off" 0 off.Slo.s_batches;
  (* Batch members share one cache lookup, so hits differ; outcomes
     don't. *)
  check_int "same served count" on.Slo.s_ok off.Slo.s_ok

(* --- Scheduler: served results = direct Driver runs -------------------- *)

let test_replay_matches_driver () =
  let r = req () in
  let rp = Scheduler.run Config.default [ r ] in
  let rec_ = rp.Scheduler.rp_records.(0) in
  let coo = Result.get_ok (Generate.of_spec r.Request.matrix) in
  let cfg =
    Driver.Cfg.make ~engine:r.Request.engine
      ~machine:(Request.machine_of r)
      ~variant:(Option.get (Request.fixed_variant r.Request.variant))
      ()
  in
  let direct = Driver.run cfg (Request.spec r) coo in
  let served = Option.get rec_.Scheduler.r_result in
  check "served counters = direct run" true
    (served.Driver.counters = direct.Driver.counters);
  check "served output = direct run" true
    (served.Driver.out_f = direct.Driver.out_f)

(* --- Tuning modes through the scheduler ------------------------------- *)

(* A [`Tuned] mix under one tuning mode. Both specs are rank-2 so every
   request takes the real tuning path (sweep, model or both). *)
let tuned_mix ~tune_mode ~seed ~n () =
  Mix.hot_cold ~seed ~n
    [ Mix.profile ~variant:`Tuned ~tune_mode "powerlaw:400,5";
      Mix.profile ~variant:`Tuned ~tune_mode "banded:300,4" ]

(* Hybrid serves the sweep's decision: replayed records carry the same
   outcomes and byte-identical execution results as sweep mode. Only the
   decision's bookkeeping differs — fingerprints name the mode, and
   service time charges the extra model pass on misses. *)
let test_hybrid_serves_sweep_decision () =
  let run tune_mode =
    Scheduler.run Config.default (tuned_mix ~tune_mode ~seed:7 ~n:40 ())
  in
  let sw = run `Sweep and hy = run `Hybrid in
  check_int "same record count"
    (Array.length sw.Scheduler.rp_records)
    (Array.length hy.Scheduler.rp_records);
  Array.iteri
    (fun i s ->
      let h = hy.Scheduler.rp_records.(i) in
      check "same outcome" true
        (s.Scheduler.r_outcome = h.Scheduler.r_outcome);
      check "same hit/miss" true (s.Scheduler.r_hit = h.Scheduler.r_hit);
      (* The served artefact is the same code: identical simulated
         counters and output. *)
      (match (s.Scheduler.r_result, h.Scheduler.r_result) with
       | Some a, Some b ->
         check "same counters" true (a.Driver.counters = b.Driver.counters);
         check "same output" true (a.Driver.out_f = b.Driver.out_f)
       | None, None -> ()
       | _ -> Alcotest.fail "served/shed mismatch between modes");
      (* Fingerprints differ only in the mode suffix. *)
      let strip fp =
        match String.rindex_opt fp '|' with
        | Some j -> String.sub fp 0 j
        | None -> fp
      in
      check "same fingerprint modulo mode" true
        (strip s.Scheduler.r_fp = strip h.Scheduler.r_fp))
    sw.Scheduler.rp_records;
  (* Hybrid records the agreement it observed, one verdict per build. *)
  let agree = Registry.find hy.Scheduler.rp_registry "tune.model.agree"
  and disagree =
    Registry.find hy.Scheduler.rp_registry "tune.model.disagree"
  in
  check_int "one verdict per build"
    hy.Scheduler.rp_summary.Slo.s_builds (agree + disagree)

let test_hybrid_replay_jobs_invariant () =
  let reqs = tuned_mix ~tune_mode:`Hybrid ~seed:8 ~n:40 () in
  let run jobs =
    lines (Scheduler.run Config.(with_jobs jobs default) reqs)
  in
  Alcotest.(check (list string)) "hybrid jobs 1 = jobs 4 (byte)" (run 1)
    (run 4)

(* The serve.tune.* counters: sweep runs and model decisions are counted
   per build under the mode that made them, and rollbacks count decisions
   that chose baseline. *)
let test_tune_mode_counters () =
  let run tune_mode =
    Scheduler.run Config.default (tuned_mix ~tune_mode ~seed:9 ~n:30 ())
  in
  let find rp k = Registry.find rp.Scheduler.rp_registry k in
  let sw = run `Sweep in
  let builds = sw.Scheduler.rp_summary.Slo.s_builds in
  check_int "sweep: one sweep per build" builds
    (find sw "serve.tune.sweep_runs");
  check_int "sweep: no model decisions" 0
    (find sw "serve.tune.model_decisions");
  (* banded:300,4 rolls back, powerlaw:400,5 doesn't: both decisions
     visible. *)
  check "sweep: some rollbacks" true (find sw "serve.tune.rollbacks" > 0);
  check "sweep: not all rollbacks" true
    (find sw "serve.tune.rollbacks" < builds);
  let md = run `Model in
  check_int "model: one decision per build"
    md.Scheduler.rp_summary.Slo.s_builds
    (find md "serve.tune.model_decisions");
  check_int "model: no sweeps" 0 (find md "serve.tune.sweep_runs");
  let hy = run `Hybrid in
  let hb = hy.Scheduler.rp_summary.Slo.s_builds in
  check_int "hybrid: sweeps" hb (find hy "serve.tune.sweep_runs");
  check_int "hybrid: model decisions" hb
    (find hy "serve.tune.model_decisions");
  (* The pinned mix is inside the model's calibrated regime. *)
  check_int "hybrid: full agreement" hb (find hy "tune.model.agree")

(* tune_mode round-trips through JSONL and scopes the cache key: it only
   splits fingerprints when there is a tuning decision to make. *)
let test_tune_mode_request_plumbing () =
  List.iter
    (fun tune_mode ->
      let r = req ~variant:`Tuned ~tune_mode () in
      match Request.of_line (Request.to_line r) with
      | Ok r' -> check "tune_mode roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    [ `Sweep; `Model; `Hybrid ];
  let tuned = req ~variant:`Tuned () in
  check "tuned: mode splits the key" true
    (Request.fingerprint { tuned with Request.tune_mode = `Model }
     <> Request.fingerprint { tuned with Request.tune_mode = `Sweep });
  let fixed = req ~variant:`Asap () in
  check "fixed variant: mode outside the key" true
    (Request.fingerprint { fixed with Request.tune_mode = `Model }
     = Request.fingerprint { fixed with Request.tune_mode = `Sweep });
  check "unknown mode rejected" true
    (Result.is_error
       (Request.of_line
          {| {"id":"x","kernel":"spmv","matrix":"powerlaw:400,5","format":"csr","variant":"tuned","tune_mode":"oracle"} |}))

(* Driver.Prep reuse: repeated exec on one preparation is byte-stable
   and equals a fresh Driver.run — the property the cache rests on. *)
let test_prep_exec_stable () =
  let coo = Result.get_ok (Generate.of_spec "powerlaw:400,5") in
  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let cfg =
    Driver.Cfg.make ~machine
      ~variant:(Pipeline.Asap Asap_prefetch.Asap.default) ()
  in
  let spec = Driver.Spmv (Encoding.csr ()) in
  let prep = Driver.Prep.make cfg spec coo in
  let a = Driver.Prep.exec prep in
  let a_out = Option.map Array.copy a.Driver.out_f in
  let a_counters = a.Driver.counters in
  let b = Driver.Prep.exec prep in
  check "exec twice: same counters" true (b.Driver.counters = a_counters);
  check "exec twice: same output" true
    (Option.map Array.copy b.Driver.out_f = a_out);
  let fresh = Driver.run cfg spec coo in
  check "prep = fresh run" true (fresh.Driver.counters = a_counters)

(* --- Router: consistent hashing --------------------------------------- *)

let test_router_stability () =
  let keys = List.init 2000 (Printf.sprintf "artefact|key|%d") in
  let r4 = Router.create ~shards:4 () in
  let r5 = Router.create ~shards:5 () in
  (* Balance: every shard of the 4-ring owns a non-trivial key share. *)
  let counts = Array.make 4 0 in
  List.iter
    (fun k ->
      let s = Router.shard_of r4 k in
      counts.(s) <- counts.(s) + 1)
    keys;
  Array.iteri
    (fun s c ->
      check (Printf.sprintf "shard %d owns keys" s) true (c > 2000 / 16))
    counts;
  (* Stability: growing 4 -> 5 only moves keys onto the new shard, and
     only about 1/5 of them (a modulo hash would reshuffle ~4/5). *)
  let moved =
    List.filter (fun k -> Router.shard_of r4 k <> Router.shard_of r5 k) keys
  in
  List.iter
    (fun k ->
      check "moved keys land on the new shard" true
        (Router.shard_of r5 k = 4))
    moved;
  let frac = float_of_int (List.length moved) /. 2000. in
  check "moved fraction bounded" true (frac > 0.05 && frac < 0.35);
  (* Same (shards, vnodes) -> same ring, and routing is pure. *)
  let r4' = Router.create ~shards:4 () in
  List.iter
    (fun k ->
      check_int "ring is deterministic" (Router.shard_of r4 k)
        (Router.shard_of r4' k))
    keys

(* --- Fleet: determinism, stealing, quotas ------------------------------ *)

let fleet_mix ~seed ~n () =
  Mix.hot_cold ~mean_gap_ms:0.002 ~seed ~n
    ~tenants:[ ("alpha", 3.); ("beta", 1.) ]
    (small_profiles ())

let test_fleet_jobs_invariant () =
  let reqs = fleet_mix ~seed:12 ~n:60 () in
  let config =
    Config.(
      default |> with_shards 4 |> with_quotas [ ("alpha", 24) ])
  in
  let run jobs = lines (Scheduler.run (Config.with_jobs jobs config) reqs) in
  let l1 = run 1 in
  Alcotest.(check (list string)) "fleet jobs 1 = jobs 4 (byte)" l1 (run 4);
  (* Sanity: the fleet actually fanned out. *)
  let rp = Scheduler.run (Config.with_jobs 4 config) reqs in
  let active =
    Array.to_list rp.Scheduler.rp_shards
    |> List.filter (fun sh -> sh.Slo.sh_ok + sh.Slo.sh_degraded > 0)
  in
  check "several shards served" true (List.length active >= 2)

(* The deprecated single-scheduler wrapper must reproduce Scheduler.run
   over the equivalent one-shard Config byte-for-byte. *)
module Compat = struct
  [@@@ocaml.alert "-deprecated"]

  let replay_default reqs = Scheduler.replay Scheduler.default_cfg reqs
end

let test_deprecated_replay_compat () =
  let reqs = Mix.hot_cold ~seed:5 ~n:40 (small_profiles ()) in
  Alcotest.(check (list string)) "replay cfg = run Config (byte)"
    (lines (Scheduler.run Config.default reqs))
    (lines (Compat.replay_default reqs));
  (* One-shard records carry trivial fleet fields. *)
  Array.iter
    (fun (r : Scheduler.record) ->
      check "one shard" true (r.Scheduler.r_shard = 0);
      check "never stolen" true (not r.Scheduler.r_stolen))
    (Compat.replay_default reqs).Scheduler.rp_records

let test_work_stealing () =
  (* Twenty same-fingerprint requests all route to one home shard; with
     stealing on, the other three shards' idle servers drain it. *)
  let reqs =
    List.init 20 (fun i ->
        req
          ~id:(Printf.sprintf "r%02d" i)
          ~matrix:"banded:300,4"
          ~arrival:(0.0001 *. float_of_int i)
          ())
  in
  let run stealing =
    Scheduler.run
      Config.(
        default |> with_shards 4 |> with_servers 1 |> with_batching false
        |> with_stealing stealing)
      reqs
  in
  let on = run true and off = run false in
  check "steals happen" true (on.Scheduler.rp_summary.Slo.s_steals > 0);
  check_int "registry counts steals" on.Scheduler.rp_summary.Slo.s_steals
    (Registry.find on.Scheduler.rp_registry "serve.steal.count");
  check "stolen records marked" true
    (Array.exists
       (fun (r : Scheduler.record) ->
         r.Scheduler.r_stolen && r.Scheduler.r_shard <> r.Scheduler.r_home)
       on.Scheduler.rp_records);
  (* steal.in / steal.out balance across the fleet. *)
  check_int "steal in = steal out"
    (Registry.sum_prefix on.Scheduler.rp_registry ~leaf:"steal.in"
       "serve.shard.")
    (Registry.sum_prefix on.Scheduler.rp_registry ~leaf:"steal.out"
       "serve.shard.");
  check_int "no steals when disabled" 0 off.Scheduler.rp_summary.Slo.s_steals;
  Array.iter
    (fun (r : Scheduler.record) ->
      check "stealing off: served at home" true
        (r.Scheduler.r_shard = r.Scheduler.r_home))
    off.Scheduler.rp_records;
  (* Both runs serve everything — stealing changes placement, not
     outcomes, for this unloaded trace. *)
  check_int "same served count" on.Scheduler.rp_summary.Slo.s_ok
    off.Scheduler.rp_summary.Slo.s_ok

let test_tenant_quota () =
  (* Six simultaneous arrivals of tenant a against a quota of 1: the
     first queues, the other five shed at admission; tenant b is
     unconstrained. *)
  let reqs =
    List.init 6 (fun i -> req ~id:(Printf.sprintf "a%d" i) ~tenant:"a" ())
    @ [ req ~id:"b0" ~tenant:"b" (); req ~id:"b1" ~tenant:"b" () ]
  in
  let rp =
    Scheduler.run
      Config.(
        default |> with_servers 1 |> with_batching false
        |> with_quotas [ ("a", 1) ])
      reqs
  in
  let find = Registry.find rp.Scheduler.rp_registry in
  check_int "a served" 1 (find "serve.tenant.a.ok");
  check_int "a quota-shed" 5 (find "serve.tenant.a.quota_shed");
  check_int "b served" 2 (find "serve.tenant.b.ok");
  check_int "b quota-shed" 0 (find "serve.tenant.b.quota_shed");
  check_int "fleet shed" 5 rp.Scheduler.rp_summary.Slo.s_shed;
  (* quota_of resolves overrides before the default. *)
  let c = Config.(default |> with_quota (Some 7) |> with_quotas [ ("a", 1) ]) in
  check "override wins" true (Config.quota_of c "a" = Some 1);
  check "default applies" true (Config.quota_of c "z" = Some 7)

let test_tenant_quota_zipf () =
  (* A skewed two-tenant Zipf burst: the heavy tenant exhausts its quota
     while the light tenant is never quota- or queue-shed. *)
  let reqs =
    Mix.hot_cold ~mean_gap_ms:0.0005 ~seed:13 ~n:80
      ~tenants:[ ("heavy", 8.); ("light", 1.) ]
      (small_profiles ())
  in
  check "both tenants drawn" true
    (List.exists (fun r -> r.Request.tenant = "light") reqs
     && List.exists (fun r -> r.Request.tenant = "heavy") reqs);
  let rp =
    Scheduler.run
      Config.(
        default |> with_servers 1 |> with_batching false
        |> with_queue_limit 128
        |> with_quotas [ ("heavy", 2) ])
      reqs
  in
  let find = Registry.find rp.Scheduler.rp_registry in
  check "heavy quota-shed" true (find "serve.tenant.heavy.quota_shed" > 0);
  check_int "light never quota-shed" 0 (find "serve.tenant.light.quota_shed");
  check_int "light never shed" 0 (find "serve.tenant.light.shed");
  check "light served" true (find "serve.tenant.light.ok" > 0);
  check_int "tenant sheds sum to fleet"
    rp.Scheduler.rp_summary.Slo.s_shed
    (find "serve.tenant.heavy.shed" + find "serve.tenant.light.shed")

let test_deadline_policies () =
  let reqs =
    [ req ~id:"warm" ();
      req ~id:"late" ~deadline:(Request.Ms 1e-6) ();
      req ~id:"slack" ~deadline:(Request.Ms 1e6) () ]
  in
  let run policy =
    Scheduler.run
      Config.(
        default |> with_servers 1 |> with_batching false
        |> with_deadline_policy policy)
      reqs
  in
  let by_id rp id =
    Array.to_list rp.Scheduler.rp_records
    |> List.find (fun r -> r.Scheduler.r_req.Request.id = id)
  in
  (* Drop: the expired request sheds at dispatch time — no result, and
     its finish is the dispatch instant, not its arrival. *)
  let dr = run Config.Drop in
  let late = by_id dr "late" in
  check "drop: late shed" true (late.Scheduler.r_outcome = Scheduler.Shed);
  check "drop: no result" true (late.Scheduler.r_result = None);
  check "drop: finish at dispatch" true
    (late.Scheduler.r_finish_ms > late.Scheduler.r_req.Request.arrival_ms);
  check "drop: slack served" true
    ((by_id dr "slack").Scheduler.r_outcome = Scheduler.Served);
  check_int "drop: one shed" 1 dr.Scheduler.rp_summary.Slo.s_shed;
  (* Ignore: the expired request is served with its requested variant. *)
  let ig = run Config.Ignore in
  let late = by_id ig "late" in
  check "ignore: late served" true
    (late.Scheduler.r_outcome = Scheduler.Served);
  check "ignore: primary fingerprint" true
    (late.Scheduler.r_fp = Request.fingerprint late.Scheduler.r_req);
  check_int "ignore: nothing degraded" 0
    ig.Scheduler.rp_summary.Slo.s_degraded

let test_derived_aggregates () =
  (* Fleet totals in the registry are derived from the per-shard
     counters; the sum_prefix fold must agree with both the summary and
     a manual per-shard sum. *)
  let rp =
    Scheduler.run
      Config.(with_shards 4 default)
      (fleet_mix ~seed:14 ~n:50 ())
  in
  let reg = rp.Scheduler.rp_registry in
  let manual leaf =
    List.fold_left
      (fun acc s ->
        acc + Registry.find reg (Printf.sprintf "serve.shard.%d.%s" s leaf))
      0 [ 0; 1; 2; 3 ]
  in
  List.iter
    (fun (leaf, fleet_name) ->
      let derived = Registry.sum_prefix reg ~leaf "serve.shard." in
      check_int ("derived = manual " ^ leaf) (manual leaf) derived;
      check_int ("derived = fleet " ^ fleet_name) derived
        (Registry.find reg fleet_name))
    [ ("ok", "serve.ok"); ("degraded", "serve.degraded");
      ("shed", "serve.shed"); ("cache.hit", "serve.cache.hit");
      ("cache.miss", "serve.cache.miss");
      ("batch.count", "serve.batch.count") ];
  check_int "summary ok = derived ok" rp.Scheduler.rp_summary.Slo.s_ok
    (Registry.find reg "serve.ok")

(* --- Slo: percentile estimator ----------------------------------------- *)

let test_percentile_resolution () =
  check_int "p50 needs 2" 2 (Slo.min_samples ~p:50.);
  check_int "p95 needs 20" 20 (Slo.min_samples ~p:95.);
  check_int "p99 needs 100" 100 (Slo.min_samples ~p:99.);
  check_int "p99.9 needs 1000" 1000 (Slo.min_samples ~p:99.9);
  let xs n = Array.init n (fun i -> float_of_int (i + 1)) in
  check "p99 unresolvable at 99" true
    (Slo.percentile_opt (xs 99) ~p:99. = None);
  check "p99 resolvable at 100" true
    (Slo.percentile_opt (xs 100) ~p:99. = Some 99.);
  check "p99.9 unresolvable at 100" true
    (Slo.percentile_opt (xs 100) ~p:99.9 = None);
  check "tiny sample has no p50" true
    (Slo.percentile_opt [| 4.2 |] ~p:50. = None);
  (* The raw estimator still answers (degenerately) on tiny samples. *)
  check "raw percentile degenerates to max" true
    (Slo.percentile [| 4.2 |] ~p:99. = 4.2);
  (try
     ignore (Slo.min_samples ~p:100.);
     Alcotest.fail "accepted p = 100"
   with Invalid_argument _ -> ())

let test_config_validate () =
  List.iter
    (fun c ->
      try
        Config.validate c;
        Alcotest.fail "accepted invalid config"
      with Invalid_argument _ -> ())
    [ Config.(with_shards 0 default);
      Config.(with_servers 0 default);
      Config.(with_queue_limit 0 default);
      Config.(with_cache_capacity (-1) default);
      Config.(with_vnodes 0 default);
      Config.(with_jobs 0 default);
      Config.(with_quota (Some (-1)) default);
      Config.(with_quotas [ ("a", -2) ] default) ];
  Config.validate Config.default

(* --- Mix: tenants ------------------------------------------------------ *)

let test_mix_tenants () =
  (* Fewer than two tenants consume no RNG draw: the request stream is
     byte-identical to the legacy no-tenant mix, tenant field aside. *)
  let plain = Mix.hot_cold ~seed:15 ~n:30 (small_profiles ()) in
  let one =
    Mix.hot_cold ~seed:15 ~n:30 ~tenants:[ ("acme", 1.) ] (small_profiles ())
  in
  List.iter2
    (fun p o ->
      check "single tenant stamps only the tenant" true
        (p = { o with Request.tenant = Request.default_tenant });
      check "tenant stamped" true (o.Request.tenant = "acme"))
    plain one;
  (* Two-tenant draws are deterministic per seed. *)
  let two () =
    Mix.hot_cold ~seed:16 ~n:30
      ~tenants:[ ("a", 3.); ("b", 1.) ]
      (small_profiles ())
  in
  check "two-tenant mix reproducible" true (two () = two ());
  (try
     ignore
       (Mix.hot_cold ~seed:1 ~n:1 ~tenants:[ ("a", 0.) ] (small_profiles ()));
     Alcotest.fail "accepted zero tenant weight"
   with Invalid_argument _ -> ())

(* --- Streaming updates ------------------------------------------------- *)

let upd ?(id = "u0") ?(matrix = "powerlaw:400,5") ?(at = 0.) deltas
    : Request.Update.t =
  { Request.Update.u_id = id; u_matrix = matrix; u_at_ms = at;
    u_deltas = Array.of_list deltas }

let contains = Astring_contains.contains

let with_jsonl lines f =
  let path = Filename.temp_file "serve_items" ".jsonl" in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_update_jsonl () =
  let u = upd ~id:"u7" ~at:1.25 [ (3, 4, 0.5); (0, 0, -1.0) ] in
  (match Request.item_of_line (Request.Update.to_line u) with
   | Ok (Request.Up u') -> check "update line roundtrip" true (u = u')
   | Ok (Request.Req _) -> Alcotest.fail "update parsed as a request"
   | Error e -> Alcotest.fail e);
  (match Request.item_of_line (Request.to_line (req ())) with
   | Ok (Request.Req _) -> ()
   | _ -> Alcotest.fail "request line did not dispatch as Req");
  (* Malformed deltas are rejected with the 1-based delta position. *)
  (match
     Request.item_of_line
       {| {"kind":"update","id":"u1","matrix":"m",
           "deltas":[[0,0,1.0],[1,-2,3.0]]} |}
   with
   | Error e -> check "bad delta is positional" true (contains e "delta 2")
   | Ok _ -> Alcotest.fail "accepted a negative delta coordinate");
  (* Request.load is a request-only stream: an update line is an error
     at its 1-based line, pointing at load_items. *)
  let rline = Request.to_line (req ()) in
  let uline = Request.Update.to_line u in
  with_jsonl [ rline; uline ] (fun path ->
      (match Request.load path with
       | Ok _ -> Alcotest.fail "Request.load accepted an update line"
       | Error e ->
         check "load names the kind" true (contains e "request-only");
         check "load points at line 2" true (contains e (path ^ ":2")));
      match Request.load_items path with
      | Error e -> Alcotest.fail e
      | Ok items ->
        let rs, us = Request.split_items items in
        check_int "one request" 1 (List.length rs);
        check_int "one update" 1 (List.length us));
  (* Unknown machine presets fail at ingest, with the line position. *)
  with_jsonl
    [ {| {"id":"x","kernel":"spmv","matrix":"powerlaw:400,5","machine":"warp9"} |} ]
    (fun path ->
      match Request.load path with
      | Ok _ -> Alcotest.fail "ingested an unknown machine preset"
      | Error e ->
        check "machine error names the preset" true (contains e "warp9");
        check "machine error is positional" true (contains e (path ^ ":1")))

let test_update_apply () =
  (* Set semantics over a COO with a duplicate entry: the delta must
     replace the summed value, later deltas to one coordinate win, and
     fresh coordinates append. *)
  let coo =
    Coo.of_triples ~rows:4 ~cols:4 [ (0, 0, 1.); (1, 2, 5.); (0, 0, 2.) ]
  in
  let u = upd ~matrix:"m" [ (0, 0, 9.); (3, 3, 7.); (3, 3, 8.) ] in
  let d = Coo.to_dense (Coo.sorted_dedup (Request.Update.apply u coo)) in
  check "existing coordinate set, duplicates collapsed" true (d.(0) = 9.);
  check "untouched entry survives" true (d.((1 * 4) + 2) = 5.);
  check "fresh coordinate appended, last delta wins" true
    (d.((3 * 4) + 3) = 8.);
  (try
     ignore (Request.Update.apply (upd ~matrix:"m" [ (4, 0, 1.) ]) coo);
     Alcotest.fail "accepted an out-of-bounds delta"
   with Invalid_argument _ -> ())

let test_streaming_updates () =
  let profiles = small_profiles () in
  let reqs = Mix.hot_cold ~seed:31 ~n:40 profiles in
  let updates = Mix.update_stream ~seed:31 ~n:6 ~mean_gap_ms:0.3 profiles in
  let run jobs =
    Scheduler.run ~updates Config.(with_jobs jobs default) reqs
  in
  let a = run 1 and b = run 4 in
  check "update replay byte-identical across jobs" true (lines a = lines b);
  check "invalidations fired" true
    (a.Scheduler.rp_summary.Slo.s_invalidated > 0);
  check_int "no stale hits" 0 a.Scheduler.rp_summary.Slo.s_stale_hits;
  check "a versioned fingerprint was served" true
    (Array.exists
       (fun r -> contains r.Scheduler.r_fp "|v")
       a.Scheduler.rp_records);
  check "registry counts invalidations" true
    (Registry.find a.Scheduler.rp_registry "serve.cache.invalidated" > 0);
  check_int "registry stale-hit stays zero" 0
    (Registry.find a.Scheduler.rp_registry "serve.cache.stale_hit");
  (* An empty update stream is byte-identical to the pre-update path. *)
  let plain = Scheduler.run Config.default reqs in
  let plain2 = Scheduler.run ~updates:[] Config.default reqs in
  check "no updates = legacy replay" true (lines plain = lines plain2);
  check_int "no invalidations without updates" 0
    plain.Scheduler.rp_summary.Slo.s_invalidated

let test_update_versioning_order () =
  (* Two identical requests around one update: the earlier keeps the
     suffix-free v0 key, the later is served from the updated matrix
     under a version-suffixed key, and the v0 cache entry is dropped. *)
  let r0 = req ~id:"a" ~arrival:0.0 () in
  let r1 = req ~id:"b" ~arrival:2.0 () in
  let u = upd ~at:1.0 [ (0, 0, 1234.5) ] in
  let rp = Scheduler.run ~updates:[ u ] Config.default [ r0; r1 ] in
  let rec0 = rp.Scheduler.rp_records.(0)
  and rec1 = rp.Scheduler.rp_records.(1) in
  check "pre-update arrival keeps the unsuffixed key" true
    (not (contains rec0.Scheduler.r_fp "|v"));
  check "post-update arrival versioned" true
    (contains rec1.Scheduler.r_fp "|v1");
  check "the update invalidated the v0 entry" true
    (rp.Scheduler.rp_summary.Slo.s_invalidated >= 1);
  check_int "no stale hits" 0 rp.Scheduler.rp_summary.Slo.s_stale_hits;
  (* The served outputs must actually differ — the delta reached the
     kernel, not just the cache key. *)
  match (rec0.Scheduler.r_result, rec1.Scheduler.r_result) with
  | Some a, Some b ->
    check "update changed the served result" true
      (a.Driver.out_f <> b.Driver.out_f)
  | _ -> Alcotest.fail "expected both requests served"

let suite =
  [ Alcotest.test_case "request jsonl roundtrip" `Quick
      test_request_roundtrip;
    Alcotest.test_case "update jsonl + ingest validation" `Quick
      test_update_jsonl;
    Alcotest.test_case "update apply semantics" `Quick test_update_apply;
    Alcotest.test_case "streaming updates replay" `Slow
      test_streaming_updates;
    Alcotest.test_case "update versioning order" `Quick
      test_update_versioning_order;
    Alcotest.test_case "request fingerprint" `Quick test_request_fingerprint;
    Alcotest.test_case "request errors" `Quick test_request_errors;
    Alcotest.test_case "request pipeline" `Quick test_request_pipeline;
    Alcotest.test_case "replay tenant pipelines" `Slow
      test_replay_tenant_pipelines;
    Alcotest.test_case "lru" `Quick test_lru;
    Alcotest.test_case "replay deterministic across jobs" `Slow
      test_replay_deterministic_across_jobs;
    Alcotest.test_case "replay cache counters" `Slow
      test_replay_cache_counters;
    Alcotest.test_case "replay eviction" `Quick test_replay_eviction;
    Alcotest.test_case "replay shedding" `Quick test_replay_shedding;
    Alcotest.test_case "replay deadline degrades" `Quick
      test_replay_deadline_degrades;
    Alcotest.test_case "replay batching" `Quick test_replay_batching;
    Alcotest.test_case "replay matches driver" `Quick
      test_replay_matches_driver;
    Alcotest.test_case "hybrid serves sweep decision" `Slow
      test_hybrid_serves_sweep_decision;
    Alcotest.test_case "hybrid replay jobs-invariant" `Slow
      test_hybrid_replay_jobs_invariant;
    Alcotest.test_case "tune-mode counters" `Slow test_tune_mode_counters;
    Alcotest.test_case "tune-mode request plumbing" `Quick
      test_tune_mode_request_plumbing;
    Alcotest.test_case "prep exec stable" `Quick test_prep_exec_stable;
    Alcotest.test_case "router stability" `Quick test_router_stability;
    Alcotest.test_case "fleet jobs-invariant" `Slow test_fleet_jobs_invariant;
    Alcotest.test_case "deprecated replay compat" `Slow
      test_deprecated_replay_compat;
    Alcotest.test_case "work stealing" `Quick test_work_stealing;
    Alcotest.test_case "tenant quota" `Quick test_tenant_quota;
    Alcotest.test_case "tenant quota under zipf" `Slow test_tenant_quota_zipf;
    Alcotest.test_case "deadline policies" `Quick test_deadline_policies;
    Alcotest.test_case "derived fleet aggregates" `Slow
      test_derived_aggregates;
    Alcotest.test_case "percentile resolution" `Quick
      test_percentile_resolution;
    Alcotest.test_case "config validate" `Quick test_config_validate;
    Alcotest.test_case "mix tenants" `Quick test_mix_tenants ]
