(* Serving subsystem tests: the request model round-trips through JSONL,
   the LRU counts hits/misses/evictions deterministically, and the
   scheduler replay is a pure function of the request list — byte-equal
   records at any host parallelism, repeat fingerprints never rebuilt,
   shedding/degradation/batching all observable in the records. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Generate = Asap_workloads.Generate
module Request = Asap_serve.Request
module Lru = Asap_serve.Lru
module Build = Asap_serve.Build
module Mix = Asap_serve.Mix
module Scheduler = Asap_serve.Scheduler
module Slo = Asap_serve.Slo
module Registry = Asap_obs.Registry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Small matrices keep every build cheap; the scheduler's behaviour is
   what is under test. *)
let req ?(id = "r0") ?(kernel = `Spmv) ?(format = "csr")
    ?(matrix = "powerlaw:400,5") ?(variant : Request.variant = `Asap)
    ?(tune_mode = Asap_core.Tuning.default_mode) ?(arrival = 0.) ?deadline ()
    : Request.t =
  { Request.id; kernel; format; matrix; variant;
    engine = Exec.default_engine; machine = "optimized"; tune_mode;
    arrival_ms = arrival; deadline }

let small_profiles () =
  [ Mix.profile "powerlaw:400,5";
    Mix.profile ~variant:`Tuned "powerlaw:400,5";
    Mix.profile ~format:"dcsr" "uniform:300,1200";
    Mix.profile ~kernel:`Ttv ~format:"csf" "tensor3:12,12,12,400";
    Mix.profile ~variant:`Baseline "banded:300,4" ]

let lines rp =
  Array.to_list (Array.map Scheduler.record_to_line rp.Scheduler.rp_records)

(* --- Request model ---------------------------------------------------- *)

let test_request_roundtrip () =
  List.iter
    (fun r ->
      match Request.of_line (Request.to_line r) with
      | Ok r' -> check ("roundtrip " ^ r.Request.id) true (r = r')
      | Error e -> Alcotest.fail e)
    [ req ();
      req ~id:"r1" ~kernel:`Spmm ~format:"dcsr" ~variant:`Tuned ~arrival:3.5
        ~deadline:(Request.Ms 0.25) ();
      req ~id:"r2" ~kernel:`Ttv ~format:"csf" ~matrix:"tensor3:12,12,12,400"
        ~deadline:(Request.Cycles 9000) ();
      req ~id:"r3" ~variant:`Baseline ~format:"csc" () ]

let test_request_fingerprint () =
  let a = req () in
  (* id, arrival and deadline are scheduling metadata, not cache key. *)
  let b = { a with Request.id = "other"; arrival_ms = 9.;
            deadline = Some (Request.Ms 1.) } in
  check "metadata outside key" true
    (Request.fingerprint a = Request.fingerprint b);
  List.iter
    (fun c ->
      check "artefact fields inside key" true
        (Request.fingerprint a <> Request.fingerprint c))
    [ { a with Request.format = "csc" };
      { a with Request.matrix = "powerlaw:401,5" };
      { a with Request.variant = `Baseline };
      { a with Request.machine = "default" } ];
  let fb = Request.fallback a in
  check "fallback is baseline" true (fb.Request.variant = `Baseline);
  check "fallback keeps identity" true (fb.Request.id = a.Request.id)

let test_request_errors () =
  List.iter
    (fun line -> check line true (Result.is_error (Request.of_line line)))
    [ "{}";                                          (* missing fields *)
      {| {"id":"x","kernel":"qr","matrix":"m"} |};   (* unknown kernel *)
      {| {"id":"x","kernel":"spmv","matrix":"m","format":"csf"} |};
      "not json" ];
  (* Ttv with a matrix format (and vice versa) is a spec mismatch. *)
  (try
     ignore (Request.spec (req ~kernel:`Ttv ~format:"csr" ()));
     Alcotest.fail "accepted ttv over csr"
   with Invalid_argument _ -> ())

(* --- Lru --------------------------------------------------------------- *)

let test_lru () =
  let l = Lru.create ~capacity:2 in
  check "miss on empty" true (Lru.find l "a" = None);
  ignore (Lru.add l "a" 1);
  ignore (Lru.add l "b" 2);
  check "hit a" true (Lru.find l "a" = Some 1);
  (* "b" is now least-recently used; inserting "c" evicts it. *)
  check "evicts lru" true (Lru.add l "c" 3 = Some "b");
  check "b gone" true (Lru.find l "b" = None);
  check "a stays" true (Lru.find l "a" = Some 1);
  check_int "hits" 2 (Lru.hits l);
  check_int "misses" 2 (Lru.misses l);
  check_int "evictions" 1 (Lru.evictions l);
  check_int "length" 2 (Lru.length l);
  (* Capacity 0: the valid disabled cache — always miss, never stores. *)
  let z = Lru.create ~capacity:0 in
  ignore (Lru.add z "a" 1);
  check "capacity 0 never stores" true (Lru.find z "a" = None);
  check_int "capacity 0 length" 0 (Lru.length z);
  (try
     ignore (Lru.create ~capacity:(-1));
     Alcotest.fail "accepted negative capacity"
   with Invalid_argument _ -> ())

(* --- Scheduler: determinism ------------------------------------------- *)

let test_replay_deterministic_across_jobs () =
  let reqs = Mix.hot_cold ~seed:5 ~n:60 (small_profiles ()) in
  let run jobs =
    let cfg = { Scheduler.default_cfg with Scheduler.jobs } in
    lines (Scheduler.replay cfg reqs)
  in
  let l1 = run 1 in
  Alcotest.(check (list string)) "jobs 1 = jobs 4 (byte)" l1 (run 4);
  Alcotest.(check (list string)) "replay is reproducible" l1 (run 1)

let test_replay_cache_counters () =
  let reqs = Mix.hot_cold ~seed:6 ~n:50 (small_profiles ()) in
  let uniq =
    List.sort_uniq String.compare (List.map Request.fingerprint reqs)
  in
  let rp = Scheduler.replay Scheduler.default_cfg reqs in
  let s = rp.Scheduler.rp_summary in
  (* Repeat fingerprints never re-sparsify/re-compile: exactly one host
     build per distinct fingerprint (no deadlines, so no fallbacks). *)
  check_int "builds = distinct fingerprints" (List.length uniq)
    s.Slo.s_builds;
  check_int "misses = distinct fingerprints" (List.length uniq)
    s.Slo.s_misses;
  check "repeats hit" true (s.Slo.s_hits > 0);
  check_int "all served" 50 s.Slo.s_ok;
  check_int "registry mirrors summary" s.Slo.s_hits
    (Registry.find rp.Scheduler.rp_registry "serve.cache.hit");
  (* Cache off: every request rebuilds and misses. *)
  let off =
    Scheduler.replay
      { Scheduler.default_cfg with Scheduler.cache_capacity = 0 }
      reqs
  in
  check_int "uncached builds = requests" 50 off.Scheduler.rp_summary.Slo.s_builds;
  check_int "uncached misses = dispatches" 50
    off.Scheduler.rp_summary.Slo.s_misses;
  check_int "uncached hits" 0 off.Scheduler.rp_summary.Slo.s_hits

let test_replay_eviction () =
  (* Two alternating fingerprints through a 1-entry cache: every
     dispatch misses and (from the second on) evicts. *)
  let reqs =
    List.init 8 (fun i ->
        req
          ~id:(Printf.sprintf "r%d" i)
          ~matrix:(if i mod 2 = 0 then "powerlaw:400,5" else "banded:300,4")
          ~arrival:(float_of_int i)
          ())
  in
  let rp =
    Scheduler.replay
      { Scheduler.default_cfg with Scheduler.cache_capacity = 1; servers = 1 }
      reqs
  in
  let s = rp.Scheduler.rp_summary in
  check_int "no hits" 0 s.Slo.s_hits;
  check_int "evictions" 7 s.Slo.s_evictions;
  check_int "but only two builds" 2 s.Slo.s_builds

(* --- Scheduler: shedding, deadlines, batching ------------------------- *)

let test_replay_shedding () =
  (* A burst of 12 simultaneous arrivals into a queue of 4: admission at
     t=0 fills the queue (the head included) and sheds the other 8
     before any dispatch frees a slot. Shed records carry no result. *)
  let reqs =
    List.init 12 (fun i -> req ~id:(Printf.sprintf "r%02d" i) ())
  in
  let rp =
    Scheduler.replay
      { Scheduler.default_cfg with
        Scheduler.queue_limit = 4; servers = 1; batching = false }
      reqs
  in
  let s = rp.Scheduler.rp_summary in
  check_int "shed" 8 s.Slo.s_shed;
  check_int "served" 4 s.Slo.s_ok;
  check_int "queue peak" 4 s.Slo.s_queue_peak;
  Array.iter
    (fun (r : Scheduler.record) ->
      if r.Scheduler.r_outcome = Scheduler.Shed then begin
        check "shed has no result" true (r.Scheduler.r_result = None);
        check "shed finishes at arrival" true
          (r.Scheduler.r_finish_ms = r.Scheduler.r_req.Request.arrival_ms)
      end)
    rp.Scheduler.rp_records

let test_replay_deadline_degrades () =
  (* One server; the first request occupies it long enough that the
     second's deadline expires in the queue — it must be served as the
     baseline fallback, not dropped. *)
  let reqs =
    [ req ~id:"warm" ();
      req ~id:"late" ~deadline:(Request.Ms 1e-6) ();
      req ~id:"slack" ~deadline:(Request.Ms 1e6) () ]
  in
  let rp =
    Scheduler.replay
      { Scheduler.default_cfg with Scheduler.servers = 1; batching = false }
      reqs
  in
  let by_id id =
    Array.to_list rp.Scheduler.rp_records
    |> List.find (fun r -> r.Scheduler.r_req.Request.id = id)
  in
  let late = by_id "late" in
  check "late degraded" true (late.Scheduler.r_outcome = Scheduler.Degraded);
  check "late served as fallback fingerprint" true
    (late.Scheduler.r_fp
     = Request.fingerprint (Request.fallback late.Scheduler.r_req));
  check "late still has a result" true (late.Scheduler.r_result <> None);
  check "slack kept its variant" true
    ((by_id "slack").Scheduler.r_outcome = Scheduler.Served);
  check_int "summary counts one degrade" 1
    rp.Scheduler.rp_summary.Slo.s_degraded

let test_replay_batching () =
  (* Five same-fingerprint requests queued behind a warmer dispatch as
     one batch when batching is on, five when off. *)
  let reqs =
    req ~id:"warm" ~matrix:"banded:300,4" ()
    :: List.init 5 (fun i -> req ~id:(Printf.sprintf "r%d" i) ())
  in
  let run batching =
    (Scheduler.replay
       { Scheduler.default_cfg with Scheduler.servers = 1; batching }
       reqs)
      .Scheduler.rp_summary
  in
  let on = run true and off = run false in
  check "batched dispatch" true (on.Slo.s_batch_max = 5);
  check_int "no batches when off" 0 off.Slo.s_batches;
  (* Batch members share one cache lookup, so hits differ; outcomes
     don't. *)
  check_int "same served count" on.Slo.s_ok off.Slo.s_ok

(* --- Scheduler: served results = direct Driver runs -------------------- *)

let test_replay_matches_driver () =
  let r = req () in
  let rp = Scheduler.replay Scheduler.default_cfg [ r ] in
  let rec_ = rp.Scheduler.rp_records.(0) in
  let coo = Result.get_ok (Generate.of_spec r.Request.matrix) in
  let cfg =
    Driver.Cfg.make ~engine:r.Request.engine
      ~machine:(Request.machine_of r)
      ~variant:(Option.get (Request.fixed_variant r.Request.variant))
      ()
  in
  let direct = Driver.run cfg (Request.spec r) coo in
  let served = Option.get rec_.Scheduler.r_result in
  check "served counters = direct run" true
    (served.Driver.counters = direct.Driver.counters);
  check "served output = direct run" true
    (served.Driver.out_f = direct.Driver.out_f)

(* --- Tuning modes through the scheduler ------------------------------- *)

(* A [`Tuned] mix under one tuning mode. Both specs are rank-2 so every
   request takes the real tuning path (sweep, model or both). *)
let tuned_mix ~tune_mode ~seed ~n () =
  Mix.hot_cold ~seed ~n
    [ Mix.profile ~variant:`Tuned ~tune_mode "powerlaw:400,5";
      Mix.profile ~variant:`Tuned ~tune_mode "banded:300,4" ]

(* Hybrid serves the sweep's decision: replayed records carry the same
   outcomes and byte-identical execution results as sweep mode. Only the
   decision's bookkeeping differs — fingerprints name the mode, and
   service time charges the extra model pass on misses. *)
let test_hybrid_serves_sweep_decision () =
  let run tune_mode =
    Scheduler.replay Scheduler.default_cfg
      (tuned_mix ~tune_mode ~seed:7 ~n:40 ())
  in
  let sw = run `Sweep and hy = run `Hybrid in
  check_int "same record count"
    (Array.length sw.Scheduler.rp_records)
    (Array.length hy.Scheduler.rp_records);
  Array.iteri
    (fun i s ->
      let h = hy.Scheduler.rp_records.(i) in
      check "same outcome" true
        (s.Scheduler.r_outcome = h.Scheduler.r_outcome);
      check "same hit/miss" true (s.Scheduler.r_hit = h.Scheduler.r_hit);
      (* The served artefact is the same code: identical simulated
         counters and output. *)
      (match (s.Scheduler.r_result, h.Scheduler.r_result) with
       | Some a, Some b ->
         check "same counters" true (a.Driver.counters = b.Driver.counters);
         check "same output" true (a.Driver.out_f = b.Driver.out_f)
       | None, None -> ()
       | _ -> Alcotest.fail "served/shed mismatch between modes");
      (* Fingerprints differ only in the mode suffix. *)
      let strip fp =
        match String.rindex_opt fp '|' with
        | Some j -> String.sub fp 0 j
        | None -> fp
      in
      check "same fingerprint modulo mode" true
        (strip s.Scheduler.r_fp = strip h.Scheduler.r_fp))
    sw.Scheduler.rp_records;
  (* Hybrid records the agreement it observed, one verdict per build. *)
  let agree = Registry.find hy.Scheduler.rp_registry "tune.model.agree"
  and disagree =
    Registry.find hy.Scheduler.rp_registry "tune.model.disagree"
  in
  check_int "one verdict per build"
    hy.Scheduler.rp_summary.Slo.s_builds (agree + disagree)

let test_hybrid_replay_jobs_invariant () =
  let reqs = tuned_mix ~tune_mode:`Hybrid ~seed:8 ~n:40 () in
  let run jobs =
    lines (Scheduler.replay { Scheduler.default_cfg with Scheduler.jobs } reqs)
  in
  Alcotest.(check (list string)) "hybrid jobs 1 = jobs 4 (byte)" (run 1)
    (run 4)

(* The serve.tune.* counters: sweep runs and model decisions are counted
   per build under the mode that made them, and rollbacks count decisions
   that chose baseline. *)
let test_tune_mode_counters () =
  let run tune_mode =
    Scheduler.replay Scheduler.default_cfg
      (tuned_mix ~tune_mode ~seed:9 ~n:30 ())
  in
  let find rp k = Registry.find rp.Scheduler.rp_registry k in
  let sw = run `Sweep in
  let builds = sw.Scheduler.rp_summary.Slo.s_builds in
  check_int "sweep: one sweep per build" builds
    (find sw "serve.tune.sweep_runs");
  check_int "sweep: no model decisions" 0
    (find sw "serve.tune.model_decisions");
  (* banded:300,4 rolls back, powerlaw:400,5 doesn't: both decisions
     visible. *)
  check "sweep: some rollbacks" true (find sw "serve.tune.rollbacks" > 0);
  check "sweep: not all rollbacks" true
    (find sw "serve.tune.rollbacks" < builds);
  let md = run `Model in
  check_int "model: one decision per build"
    md.Scheduler.rp_summary.Slo.s_builds
    (find md "serve.tune.model_decisions");
  check_int "model: no sweeps" 0 (find md "serve.tune.sweep_runs");
  let hy = run `Hybrid in
  let hb = hy.Scheduler.rp_summary.Slo.s_builds in
  check_int "hybrid: sweeps" hb (find hy "serve.tune.sweep_runs");
  check_int "hybrid: model decisions" hb
    (find hy "serve.tune.model_decisions");
  (* The pinned mix is inside the model's calibrated regime. *)
  check_int "hybrid: full agreement" hb (find hy "tune.model.agree")

(* tune_mode round-trips through JSONL and scopes the cache key: it only
   splits fingerprints when there is a tuning decision to make. *)
let test_tune_mode_request_plumbing () =
  List.iter
    (fun tune_mode ->
      let r = req ~variant:`Tuned ~tune_mode () in
      match Request.of_line (Request.to_line r) with
      | Ok r' -> check "tune_mode roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    [ `Sweep; `Model; `Hybrid ];
  let tuned = req ~variant:`Tuned () in
  check "tuned: mode splits the key" true
    (Request.fingerprint { tuned with Request.tune_mode = `Model }
     <> Request.fingerprint { tuned with Request.tune_mode = `Sweep });
  let fixed = req ~variant:`Asap () in
  check "fixed variant: mode outside the key" true
    (Request.fingerprint { fixed with Request.tune_mode = `Model }
     = Request.fingerprint { fixed with Request.tune_mode = `Sweep });
  check "unknown mode rejected" true
    (Result.is_error
       (Request.of_line
          {| {"id":"x","kernel":"spmv","matrix":"powerlaw:400,5","format":"csr","variant":"tuned","tune_mode":"oracle"} |}))

(* Driver.Prep reuse: repeated exec on one preparation is byte-stable
   and equals a fresh Driver.run — the property the cache rests on. *)
let test_prep_exec_stable () =
  let coo = Result.get_ok (Generate.of_spec "powerlaw:400,5") in
  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let cfg =
    Driver.Cfg.make ~machine
      ~variant:(Pipeline.Asap Asap_prefetch.Asap.default) ()
  in
  let spec = Driver.Spmv (Encoding.csr ()) in
  let prep = Driver.Prep.make cfg spec coo in
  let a = Driver.Prep.exec prep in
  let a_out = Option.map Array.copy a.Driver.out_f in
  let a_counters = a.Driver.counters in
  let b = Driver.Prep.exec prep in
  check "exec twice: same counters" true (b.Driver.counters = a_counters);
  check "exec twice: same output" true
    (Option.map Array.copy b.Driver.out_f = a_out);
  let fresh = Driver.run cfg spec coo in
  check "prep = fresh run" true (fresh.Driver.counters = a_counters)

let suite =
  [ Alcotest.test_case "request jsonl roundtrip" `Quick
      test_request_roundtrip;
    Alcotest.test_case "request fingerprint" `Quick test_request_fingerprint;
    Alcotest.test_case "request errors" `Quick test_request_errors;
    Alcotest.test_case "lru" `Quick test_lru;
    Alcotest.test_case "replay deterministic across jobs" `Slow
      test_replay_deterministic_across_jobs;
    Alcotest.test_case "replay cache counters" `Slow
      test_replay_cache_counters;
    Alcotest.test_case "replay eviction" `Quick test_replay_eviction;
    Alcotest.test_case "replay shedding" `Quick test_replay_shedding;
    Alcotest.test_case "replay deadline degrades" `Quick
      test_replay_deadline_degrades;
    Alcotest.test_case "replay batching" `Quick test_replay_batching;
    Alcotest.test_case "replay matches driver" `Quick
      test_replay_matches_driver;
    Alcotest.test_case "hybrid serves sweep decision" `Slow
      test_hybrid_serves_sweep_decision;
    Alcotest.test_case "hybrid replay jobs-invariant" `Slow
      test_hybrid_replay_jobs_invariant;
    Alcotest.test_case "tune-mode counters" `Slow test_tune_mode_counters;
    Alcotest.test_case "tune-mode request plumbing" `Quick
      test_tune_mode_request_plumbing;
    Alcotest.test_case "prep exec stable" `Quick test_prep_exec_stable ]
